package scorep_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	scorep "repro"
)

// runExperimentWorkload drives a profiled+traced session through a
// deterministic task workload and returns its finished results.
func runExperimentWorkload(t *testing.T, prefix string, tasks int, opts ...scorep.Option) *scorep.Results {
	t.Helper()
	s := scorep.NewSession(opts...)
	par := scorep.RegisterRegion(prefix+".parallel", "experiment_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion(prefix+".task", "experiment_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion(prefix+".taskwait", "experiment_test.go", 3, scorep.RegionTaskwait)
	s.Parallel(2, par, func(th *scorep.Thread) {
		if th.ID != 0 {
			return
		}
		for i := 0; i < tasks; i++ {
			th.NewTask(task, func(*scorep.Thread) {})
		}
		th.Taskwait(tw)
	})
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExperimentRoundTrip(t *testing.T) {
	res := runExperimentWorkload(t, "er", 64, scorep.WithTracing())
	dir := filepath.Join(t.TempDir(), "scorep-roundtrip")
	if err := res.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := exp.Meta
	if m.FormatVersion != scorep.ExperimentMetaVersion {
		t.Errorf("meta format version = %d, want %d", m.FormatVersion, scorep.ExperimentMetaVersion)
	}
	if !m.HasProfile || !m.HasTrace {
		t.Fatalf("meta = %+v, want profile and trace present", m)
	}
	if !m.Config.Profiling || !m.Config.Tracing {
		t.Errorf("config = %+v, want profiling and tracing recorded", m.Config)
	}
	if m.Config.Scheduler != scorep.SchedCentralQueue.String() {
		t.Errorf("scheduler = %q, want %q", m.Config.Scheduler, scorep.SchedCentralQueue)
	}
	if m.Threads != 2 || m.TasksCreated != 64 {
		t.Errorf("threads/tasks = %d/%d, want 2/64", m.Threads, m.TasksCreated)
	}
	if m.GOMAXPROCS != runtime.GOMAXPROCS(0) || m.GoVersion != runtime.Version() {
		t.Errorf("environment meta = %+v, want current process values", m)
	}
	if m.WallTimeNs <= 0 || m.CreatedUnixNs <= 0 {
		t.Errorf("timing meta = %+v, want positive wall and creation time", m)
	}
	if m.ProfileFormat == "" || m.TraceFormat == "" {
		t.Errorf("format versions missing from meta: %+v", m)
	}

	// The archived report must round-trip byte-identically: serializing
	// the live report, the file contents and serializing the reloaded
	// report are all the same bytes.
	var live bytes.Buffer
	if err := scorep.WriteReportJSON(&live, res.Report()); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(exp.ProfilePath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), onDisk) {
		t.Error("profile.json differs from the live report's serialization")
	}
	loaded, err := exp.Report()
	if err != nil {
		t.Fatal(err)
	}
	var reloaded bytes.Buffer
	if err := scorep.WriteReportJSON(&reloaded, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), reloaded.Bytes()) {
		t.Error("report JSON is not byte-identical after OpenExperiment")
	}

	// The archived trace must reproduce the live run's analysis exactly
	// (the streaming analysis over trace.otf2 vs. the in-memory one).
	liveA := res.TraceAnalysis()
	loadedA, err := exp.TraceAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveA, loadedA) {
		t.Errorf("trace analysis differs after round trip:\nlive:   %+v\nloaded: %+v", liveA, loadedA)
	}
	tr, err := exp.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != res.Trace().NumEvents() {
		t.Errorf("trace events = %d, want %d", tr.NumEvents(), res.Trace().NumEvents())
	}
	if len(exp.Warnings()) != 0 {
		t.Errorf("unexpected warnings on an intact archive: %v", exp.Warnings())
	}

	// Findings derive from the same report on both sides.
	expFindings, err := exp.Findings()
	if err != nil {
		t.Fatal(err)
	}
	if len(expFindings) != len(res.Findings()) {
		t.Errorf("findings = %d, want %d as live", len(expFindings), len(res.Findings()))
	}
}

// TestExperimentAnalysisParallelism checks the archived trace loads and
// analyzes identically through the parallel decode pipeline.
func TestExperimentAnalysisParallelism(t *testing.T) {
	res := runExperimentWorkload(t, "eap", 128, scorep.WithTracing())
	dir := filepath.Join(t.TempDir(), "scorep-parallel")
	if err := res.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}

	seq, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq.AnalysisParallelism = 1
	par, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	par.AnalysisParallelism = 4

	wantA, err := seq.TraceAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := par.TraceAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantA, gotA) {
		t.Errorf("parallel experiment analysis diverges:\n got %+v\nwant %+v", gotA, wantA)
	}

	wantTr, err := seq.Trace()
	if err != nil {
		t.Fatal(err)
	}
	gotTr, err := par.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if gotTr.NumEvents() != wantTr.NumEvents() || len(gotTr.Threads) != len(wantTr.Threads) {
		t.Errorf("parallel trace load = %d events/%d threads, want %d/%d",
			gotTr.NumEvents(), len(gotTr.Threads), wantTr.NumEvents(), len(wantTr.Threads))
	}
}

// TestOpenExperimentTruncatedTrace models the crashed-run case: the
// experiment's trace.otf2 is cut off mid-chunk, and OpenExperiment
// salvages the intact prefix instead of failing.
func TestOpenExperimentTruncatedTrace(t *testing.T) {
	// Enough tasks that thread 0's create events span multiple archive
	// chunks (32 KiB each), so a truncated file retains a usable prefix.
	res := runExperimentWorkload(t, "ec", 8000, scorep.WithTracing())
	dir := filepath.Join(t.TempDir(), "scorep-crashed")
	if err := res.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.otf2")
	fi, err := os.Stat(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut deep into the event stream: a v2 archive ends with its footer
	// index and trailer, so a small tail cut would lose only the index
	// (and with it the seekable fast path), not events.
	if err := os.Truncate(tracePath, fi.Size()*3/5); err != nil {
		t.Fatal(err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := exp.Trace()
	if err != nil {
		t.Fatalf("truncated trace must salvage, got error: %v", err)
	}
	if tr == nil || tr.NumEvents() == 0 {
		t.Fatal("salvaged prefix holds no events")
	}
	if tr.NumEvents() >= res.Trace().NumEvents() {
		t.Errorf("salvaged %d events, want fewer than the %d recorded", tr.NumEvents(), res.Trace().NumEvents())
	}
	if len(exp.Warnings()) == 0 {
		t.Error("truncation must surface as a warning")
	}
	a, err := exp.TraceAnalysis()
	if err != nil || a == nil {
		t.Fatalf("streaming analysis of the salvaged prefix failed: %v", err)
	}
	if got := len(exp.Warnings()); got != 1 {
		t.Errorf("warnings = %d (%v), want the truncation reported exactly once", got, exp.Warnings())
	}
	// The profile is unaffected by the trace truncation.
	rep, err := exp.Report()
	if err != nil || rep == nil {
		t.Fatalf("report unreadable after trace truncation: %v", err)
	}
}

func TestExperimentWithoutArtifacts(t *testing.T) {
	res := runExperimentWorkload(t, "ee", 4, scorep.WithoutProfiling())
	dir := filepath.Join(t.TempDir(), "scorep-bare")
	if err := res.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Meta.HasProfile || exp.Meta.HasTrace {
		t.Fatalf("meta = %+v, want no artifacts", exp.Meta)
	}
	if rep, err := exp.Report(); rep != nil || err != nil {
		t.Errorf("Report() = (%v, %v), want (nil, nil)", rep, err)
	}
	if tr, err := exp.Trace(); tr != nil || err != nil {
		t.Errorf("Trace() = (%v, %v), want (nil, nil)", tr, err)
	}
	if fs, err := exp.Findings(); fs != nil || err != nil {
		t.Errorf("Findings() = (%v, %v), want (nil, nil)", fs, err)
	}
}

// TestSaveExperimentOverwriteRemovesStaleArtifacts re-saves a
// profile-only run into a directory that previously held a traced run:
// the orphaned trace.otf2 must not survive next to a meta.json that
// disclaims it.
func TestSaveExperimentOverwriteRemovesStaleArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "scorep-reused")
	traced := runExperimentWorkload(t, "eo1", 16, scorep.WithTracing())
	if err := traced.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}
	profiledOnly := runExperimentWorkload(t, "eo2", 16)
	if err := profiledOnly.SaveExperiment(dir); err != nil {
		t.Fatal(err)
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Meta.HasTrace {
		t.Error("re-saved profile-only experiment still claims a trace")
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.otf2")); !os.IsNotExist(err) {
		t.Errorf("stale trace.otf2 survived the re-save (stat err = %v)", err)
	}
	if rep, err := exp.Report(); err != nil || rep == nil {
		t.Errorf("re-saved profile unreadable: %v", err)
	}
}

func TestOpenExperimentErrors(t *testing.T) {
	if _, err := scorep.OpenExperiment(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scorep.OpenExperiment(dir); err == nil {
		t.Error("corrupt meta.json accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"formatVersion": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scorep.OpenExperiment(dir); err == nil {
		t.Error("future meta format version accepted")
	}
}
