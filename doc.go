// Package scorep (module "repro") is a Go reproduction of "Profiling of
// OpenMP Tasks with Score-P" (Lorenz, Philippen, Schmidl, Wolf;
// ICPP 2012): the first call-path profiler that remains correct for
// OpenMP 3.0 tied tasks.
//
// The package is the public facade over the internal implementation:
//
//   - an OpenMP-3.0-like tasking runtime (parallel regions, tied tasks,
//     taskwait, task-draining barriers, if/final clauses),
//   - the paper's task-aware call-path profiling algorithm (per-instance
//     call trees, stub nodes under scheduling points, suspend/resume time
//     subtraction, merged per-construct task trees),
//   - OTF2-style event tracing with bounded-memory recording and
//     out-of-core analysis,
//   - OPARI2/POMP2-style instrumentation wrappers,
//   - CUBE-like aggregation, rendering and serialization of profiles.
//
// # Session lifecycle
//
// Like Score-P, a measured run passes once through one configured
// measurement environment and leaves one experiment archive behind. The
// lifecycle is configure → run → End → Results → experiment archive:
//
//	s := scorep.NewSession(scorep.WithTracing())       // 1. configure
//
//	par := scorep.RegisterRegion("my.parallel", "main.go", 10, scorep.RegionParallel)
//	task := scorep.RegisterRegion("my.task", "main.go", 12, scorep.RegionTask)
//	tw := scorep.RegisterRegion("my.taskwait", "main.go", 14, scorep.RegionTaskwait)
//
//	s.Parallel(4, par, func(t *scorep.Thread) {        // 2. run
//	    if t.ID == 0 {
//	        for i := 0; i < 100; i++ {
//	            t.NewTask(task, func(c *scorep.Thread) { work() })
//	        }
//	        t.Taskwait(tw)
//	    }
//	})
//
//	res, err := s.End()                                // 3. finalize
//	scorep.RenderReport(os.Stdout, res.Report(), scorep.RenderOptions{})
//	res.TraceAnalysis()                                // §VII trace metrics
//	res.Findings()                                     // automatic diagnosis
//	err = res.SaveExperiment("scorep-myrun")           // 4. archive
//
// NewSession's functional options select the subsystems: WithProfiling
// (on by default) / WithoutProfiling, WithTracing or
// WithStreamingTrace(sink, chunkEvents) for traces larger than memory,
// WithFilter(patterns...) for measurement filtering,
// WithScheduler(kind), WithClock(clk), WithListener(extra),
// WithExperimentDirectory(dir) to save the archive automatically at
// End, and WithAnalysisParallelism(workers) to pin the worker count
// Results.TraceAnalysis shards over (default: one per processor; the
// analysis result is identical at every setting).
//
// # Experiment archives
//
// Results.SaveExperiment(dir) writes the Score-P measurement-directory
// analog: profile.json (the CUBE-style report), trace.otf2 (the binary
// event trace) and meta.json (configuration, thread count, GOMAXPROCS,
// scheduler, wall time, format versions). scorep.OpenExperiment(dir)
// loads it back for offline analysis — scorep-report, scorep-analyze,
// scorep-timeline and scorep-convert all accept -exp <dir>. A trace cut
// off by a crashed run is salvaged to its intact prefix, reported via
// Experiment.Warnings.
//
// # Environment variables
//
// NewSessionFromEnv configures a session the way Score-P instruments
// are configured, from the environment (overriding any base options):
//
//   - SCOREP_ENABLE_PROFILING: enable call-path profiling
//     (true/false, yes/no, on/off, 1/0; default true).
//   - SCOREP_ENABLE_TRACING: record an event trace (same booleans;
//     default false).
//   - SCOREP_FILTERING: comma-separated region filter patterns;
//     a trailing '*' matches by prefix ("noisy_*,tiny_helper").
//   - SCOREP_EXPERIMENT_DIRECTORY: experiment archive directory;
//     Session.End saves the archive there automatically.
//   - SCOREP_TASK_SCHEDULER: "central-queue" (default, the libgomp
//     model the paper measured) or "work-stealing".
//   - SCOREP_TRACE_COMPRESSION: "none" (default) or "flate" — block
//     compression of the archived trace's event chunks (the
//     WithTraceCompression option; recorded in meta.json).
//   - SCOREP_TRACE_SINK: scorep-daemon address ("unix:///path.sock",
//     "tcp://host:port", or a bare host:port) — stream the trace to the
//     measurement service instead of keeping it locally (the
//     WithRemoteTrace option; implies tracing).
//   - SCOREP_TRACE_SINK_RETRIES: initial connect attempts to the
//     daemon, an integer >= 1 (the WithRemoteTraceRetry option).
//   - SCOREP_TRACE_SINK_RECONNECTS: reconnect attempts per outage, an
//     integer >= 0; 0 disables mid-stream reconnection (the
//     WithRemoteTraceReconnect option).
//   - SCOREP_TRACE_SINK_FALLBACK: local archive path the stream spills
//     to when the daemon is lost for good; "off" or "none" disables
//     the default fallback (the WithRemoteTraceFallback option).
//   - SCOREP_FLIGHT_RECORDER: flight-recorder tracing (see Flight
//     recorder below). A boolean spelling toggles the mode with the
//     default ring depth; an integer >= 1 enables it with that many
//     retained chunks per thread (the WithFlightRecorder option;
//     implies tracing). Anything else is an error.
//   - SCOREP_DUMP_SIGNAL: the OS signal that triggers a flight-recorder
//     dump — HUP, INT, QUIT, USR1, USR2 or TERM, case-insensitive,
//     with or without the "SIG" prefix ("USR2", "sigusr2"); "none" or
//     "off" disables the signal trigger (the WithDumpSignal option;
//     default SIGUSR1). Anything else is an error.
//
// # Remote tracing
//
// WithRemoteTrace(addr) switches a session into the multi-process
// measurement mode: instead of buffering or saving the trace locally,
// events are encoded through the same per-thread archive-writer path
// and shipped to a scorep-daemon measurement service, where each
// process's stream becomes one shard — trace-<id>.otf2 — of a fleet
// experiment. WithRemoteTraceStream(id) names the stream (default:
// pid-derived; the daemon uniquifies collisions); Session.End closes
// the stream and waits for the daemon's seal acknowledgment.
// RemoteTraceSink exposes the underlying client. The client buffers
// frames in bounded memory and a background sender drains them, so a
// slow daemon never blocks the event hot path until the buffer is
// actually full; the full-buffer policy is block (lossless, default)
// or drop-with-count (DialTraceSink + TraceSinkDrop, the power-user
// form). Connections are established lazily with retry/backoff, so
// daemon and clients can start in any order; a connection severed
// mid-run is survived by reconnect and byte-exact resume, and a
// daemon lost for good degrades to a local fallback archive — see
// Fault tolerance below.
//
// The daemon is cmd/scorep-daemon:
//
//	scorep-daemon -listen unix:///tmp/scorep-daemon.sock -exp scorep-fleet
//	              [-streams N] [-drain-timeout 10s] [-idle-timeout 0]
//	              [-handshake-timeout 10s] [-quiet]
//
// It accepts any number of concurrent streams (sharded ingest — no
// cross-stream lock anywhere on the data path), writes each stream to
// its own shard file as bytes arrive (so a crashed client leaves a
// salvageable prefix, and never disturbs other shards), and on
// shutdown — SIGINT/SIGTERM, or after -streams N streams have sealed —
// writes the fleet experiment's meta.json. scorep-report and
// scorep-analyze render such experiments per shard plus a fleet
// aggregate; programmatically, OpenExperiment + TraceShards +
// ShardTraceAnalysis + FleetTraceAnalysis do the same, and
// SaveFleetExperiment seals a directory of shards (with or without a
// stream manifest — shards are globbed and probed when absent).
//
// The wire protocol (version 1) is reimplementable from this
// paragraph. All integers are unsigned LEB128 varints ("uvarint")
// unless stated. A client connects (unix or TCP socket) and sends a
// handshake: the 7 bytes "SPSINK\x00", one version byte (0x01), then
// uvarint(len(id)) and the id bytes — 1..128 bytes drawn from
// [A-Za-z0-9._-]. After the handshake the client sends frames, each a
// one-byte kind: 'F' (data) followed by uvarint(n) and n payload
// bytes, 1 <= n <= 4 MiB; or 'Z' (end of stream) followed by
// uvarint(droppedEvents), the count of event batches the client shed
// under the drop policy. 'Z' is the last thing a client sends. The
// concatenation of all 'F' payloads, in order, is exactly one SPOTF2
// binary trace archive (see Trace formats); the daemon is a pure byte
// relay and never parses, splits, or re-frames archive bytes, which is
// what makes a received shard bit-identical to a locally written
// archive. After 'Z' the daemon syncs the shard file and answers a
// 2-byte acknowledgment: 'A' then a status byte — 0 for sealed, 1 for
// ingest failure — and closes. A malformed handshake closes the
// connection without registering a stream; a connection severed before
// 'Z' keeps the flushed prefix on disk, marked incomplete.
//
// # Fault tolerance
//
// The fleet pipeline is built so that any single failure — a severed
// connection, a crashed or restarted daemon, a full disk under one
// shard, a wedged client — costs at most one stream's tail, and loses
// it loudly: every surviving shard stays salvageable, every loss is
// counted, and a loss the client's replay window covers is no loss at
// all (the resumed shard is bit-identical to an undisturbed run).
//
// Wire protocol version 2 adds resumable streams to the v1 byte
// stream above; a v2 daemon still accepts v1 sessions unchanged. The
// v2 handshake is the v1 handshake with version byte 0x02 and one
// extra field: uvarint(token), a nonzero random stream token. The
// daemon replies with a hello — 'H', one status byte (0 new stream, 1
// resumed), then uvarint(durable), the count of archive bytes it
// holds durably for this stream; the client must continue sending
// from exactly that archive offset. As data frames arrive the daemon
// periodically flushes the shard and acknowledges progress with 'K'
// followed by uvarint(durable) (every 256 KiB by default; the
// WithAckInterval server option tunes it). The client keeps a bounded
// replay window of bytes at and above the last ack (WithReplayWindow,
// default 4 MiB), evicting only below it. When a connection dies
// mid-stream, the client redials with jittered exponential backoff
// under a per-outage attempt count and elapsed-time budget
// (WithReconnect) and handshakes again with the same id and token:
// the daemon re-registers the stream, truncates nothing, and tells it
// where to resume. A client whose window no longer reaches the
// daemon's durable offset (the daemon lost flushed-but-unsealed bytes
// in a crash beyond what the window retains) does not guess: archive
// chunks chain per-thread timestamp deltas, so appending after a hole
// would corrupt the shard. It declares the gap with a 'G' frame
// followed by uvarint(gapBytes); the daemon seals the shard at its
// durable prefix — a valid, salvageable archive — records the counted
// gap, and answers 'A' with status 2 (gap-sealed). The daemon may
// also send the final 'A' mid-stream with status 1 when its own disk
// fails; only that one shard is affected. Stream identity is (id,
// token): a reconnect with a matching pair resumes (preempting a
// half-dead previous connection first), a different token under the
// same id is a different process and gets a uniquified id, and a
// sealed-incomplete stream refuses resumption explicitly rather than
// growing a corrupt tail.
//
// Daemon crash recovery. The daemon journals stream identity and
// status — never byte counts it would have to trust — to
// sink-journal.json in the experiment directory, written atomically
// (temp file + rename) on every registration and seal. The journal is
// JSON: {"version": 1, "streams": [{"id", "token", "file", "bytes",
// "frames", "droppedEvents", "gapBytes", "resumes", "complete",
// "sealed", "err"}, ...]}. A daemon restarted over the directory
// replays it: for each stream it re-derives the durable byte count
// from the shard file itself by scanning the longest intact chunk
// prefix (the same cut-point logic the lenient readers use) and
// truncating the file to that boundary — so a flush torn by the crash
// is discarded rather than resumed after. Sealed streams keep their
// recorded fate (a sealed-complete shard that lost bytes on disk is
// demoted to failed, never silently shortened); unsealed streams wait
// for their client's reconnect, whose replay window covers the
// truncated tail — the crash-recovered shard then seals bit-identical
// to an undisturbed run. Sealed streams recovered from the journal
// count toward the daemon's -streams exit threshold.
//
// Degradation. Failures that cannot be resumed degrade one step at a
// time, never silently: a daemon-side disk failure (ENOSPC, short
// write) on one shard seals that shard failed-but-salvaged while
// every other stream keeps ingesting; a client that exhausts its
// reconnect budget, hits an unresumable gap, or is refused by the
// daemon spills the stream losslessly to a local fallback archive
// (WithFallbackArchive; sessions default to <experiment
// dir>/fallback.otf2 when an experiment directory is configured, see
// WithRemoteTraceFallback) — the whole retained window is written
// first, so a fallback starting at archive offset 0 is a complete
// standalone archive, and one starting higher continues the daemon
// shard's durable prefix from exactly where it was sealed (shard
// bytes + gap = fallback start offset; the fallback file is not
// named trace-*.otf2, so shard globbing never confuses the two). The
// session records the outcome in meta.json (RemoteFallback,
// RemoteResumes, RemoteGapBytes) and exposes it via
// Results.RemoteFallback/RemoteResumes/RemoteGapBytes. On the server,
// a handshake read deadline (WithHandshakeTimeout) keeps half-open
// connections from parking goroutines forever, and a per-stream idle
// watchdog (WithIdleTimeout; -idle-timeout on the daemon) seals a
// wedged stream's intact prefix without disturbing its neighbors.
// Shutdown drains: the daemon's first SIGINT/SIGTERM stops accepting
// and gives in-flight streams -drain-timeout to finish before
// severing them (a second signal severs immediately); severed shards
// keep their durable prefix and stay resumable by a restarted daemon.
//
// The fault-injection harness behind these guarantees is the reusable
// internal/faultinject package: net.Conn wrappers that sever after an
// exact byte count, slice writes, or add latency, and io.Writer
// wrappers that return ENOSPC after a capacity or fail transiently
// with EIO — the sink tests drive the full fault matrix (mid-frame
// sever, daemon kill+restart, one-shard disk fault, reconnect-budget
// exhaustion, at 1 and 4 concurrent streams) deterministically
// through them.
//
// # Flight recorder
//
// WithFlightRecorder(ringChunks) turns tracing into crash-safe
// always-on measurement: instead of accumulating the whole run (memory
// grows without bound) or streaming it to disk (I/O on the hot path),
// each thread retains only its most recent window of events, and that
// window can be materialized as a complete, analyzable experiment at
// any moment — which is what makes it safe to leave measurement on in
// production and still capture the moments that matter: the window
// that led up to a crash, a stall, or an operator's signal.
//
// The retention mechanism: events accumulate into the thread's current
// chunk of WithFlightChunkEvents(n) events (default: the streaming
// chunk size); a full chunk is sealed into a per-thread ring of
// ringChunks chunks (<= 0 picks DefaultFlightRingChunks); once the
// ring is full, each seal evicts the oldest chunk whole, adding its
// event count to the thread's dropped-events and dropped-chunks
// counters. Memory is O(threads x ringChunks x chunkEvents) regardless
// of run length, and steady-state recording reuses the evicted chunk's
// backing array — the per-event path stays zero-allocation (the
// flight/record bench and the alloc gate in CI hold it there). Nothing
// is ever dropped silently: every evicted event is counted, the counts
// travel inside every dump, and every CLI surfaces them.
//
// A dump — Session.DumpFlightRecorder(dir), or any trigger below —
// snapshots every thread's retained window (concurrently with
// recording; the rings are only briefly locked per thread, the session
// is never paused) and writes an ordinary experiment directory:
// trace.otf2, a valid SPOTF2 v2 archive holding the window's events,
// definitions and footer index, plus meta.json with the session
// configuration and the eviction accounting (meta's "flightRecorder"
// object: ringChunks, chunkEvents, retainedEvents, droppedEvents,
// droppedChunks, trigger, and partial+error when the archive write
// failed midway). The archive additionally embeds the accounting as a
// chunk of kind 'F' placed directly after the header, before all event
// data — so even a dump cut off by a full disk keeps its accounting
// inside the salvageable prefix (see Trace formats for the payload
// layout). Dump directories are read by OpenExperiment and every CLI
// like any experiment; an empty dir argument auto-numbers flight-NNN
// under the session's experiment directory (scorep-flight-NNN in the
// working directory otherwise).
//
// Four triggers produce dumps. (1) The explicit API call above.
// (2) An OS signal: SIGUSR1 by default, rebindable or disableable via
// WithDumpSignal / SCOREP_DUMP_SIGNAL — `kill -USR1 <pid>` captures a
// production process's last window without touching it. (3) Panic
// salvage: `defer s.DumpOnPanic(dir)` around measured code dumps the
// window that led up to a panic and then re-panics with the original
// value, so the crash still crashes but its prehistory survives.
// (4) A bottleneck threshold: WithBottleneckTrigger(minSeverity,
// interval) analyzes the current window every interval with the
// automatic bottleneck analysis and dumps once when any finding's
// severity (0..1) reaches minSeverity — the trace of a degradation is
// captured while it happens, not reconstructed after.
//
// Introspection is live and free of event copying:
// Session.FlightRecorderStats returns the ring configuration,
// per-thread retained/dropped counters and the dump-trigger history;
// Session.FlightRecorderHandler serves the same JSON over HTTP (GET)
// and accepts dump-now requests (POST, optional "dir" parameter); the
// expvar "scorep.flightrecorder" publishes it to any expvar scraper.
// Session.End of a flight session returns the final window as the
// trace, Results.FlightRecorder reports its accounting, and a saved
// experiment records both. Session.WriteFlightRecorderArchive streams
// the current window as a bare archive to any io.Writer for custom
// sinks.
//
// # Power-user layer
//
// The session owns the wiring; the pieces stay exported for custom
// setups: NewMeasurement/NewMeasurementWithClock (profiling),
// NewTraceRecorder/NewStreamingTraceRecorder (tracing),
// NewFlightTraceRecorder (flight-recorder tracing), NewFilter,
// NewTee (fan out one event stream to several listeners), NewRuntime,
// and the report/trace serialization functions. Results.Locations
// exposes the raw per-thread profiles behind Results.Report.
//
// # Overhead
//
// The per-event measurement path is zero-allocation and lock-free in
// steady state, in every listener configuration. Each listener kind
// owns a typed per-thread slot on the runtime thread (Thread.Profile
// for the profiling measurement, Thread.TraceData for the trace
// recorder), assigned once at ThreadBegin — so an event never takes a
// lock, consults a map, or allocates, even when profiling and tracing
// observe the same stream. The canonical profiling+tracing pair is
// fused inside the Tee: one clock read per event feeds both listeners
// (halving the dominant cost on hosts with ~30ns clock reads) and
// profile and trace see identical timestamps. Derived task-creation
// regions are cached on the task region itself, filter verdicts are
// cached per interned region, and call-tree nodes and task instances
// are recycled through per-thread pools backed by chunked arenas.
//
// Measured per-event cost on a 1-core linux/amd64 container (Go 1.24,
// ~33ns clock read; enter+exit pair, i.e. two events per op — see
// bench_baseline.json and BENCH_PR4.json for the full trajectory):
//
//	configuration            before       after     allocs/op
//	uninstrumented           3.3 ns       3.4 ns    0
//	profiling                83 ns        85 ns     0
//	profiling+filter         112 ns       95 ns     0      (-15%)
//	tracing (streaming)      86 ns        83 ns     0
//	profiling+tracing        210 ns       94 ns     0      (-55%, fused Tee)
//	task, 5 events           583 ns       325 ns    2->0   (-44%, profiling+tracing)
//
// Downstream of the per-event path, the trace pipeline is parallel end
// to end. On the write side, the archive Writer encodes every event in
// the flushing thread's own chunk buffer — region interning is an
// atomic-publish table, sealed chunk buffers are recycled through a
// sync.Pool, and the only shared lock is held exactly for the append
// of a framed chunk to the underlying file. One thread blocked in a
// slow sink write therefore never stalls recording, encoding, or even
// flushing progress on other threads (before, a single writer mutex
// serialized all of it). On the read side, AnalyzeTraceArchiveParallel
// (otf2.AnalyzeParallel; scorep-analyze/-timeline/-convert -parallel N)
// runs the out-of-core analysis with a sequential frame scanner
// fanning chunk decoding out to a worker pool, while per-thread shards
// re-serialize each thread's chunks in archive order — Scalasca's
// parallel trace-analysis structure. Memory stays O(workers x chunk),
// and the merged result is reflect.DeepEqual- and JSON-byte-identical
// to the sequential analysis, also for truncated archives (CI cmp's
// the -parallel 1 and -parallel 4 JSON outputs on every change).
//
// Archive pipeline throughput on the same 1-core container (1.05M-event
// archive, 4 trace threads, min of 3 reps; see BENCH_PR5.json — a
// single hardware thread cannot exhibit parallel speedup, so the
// multi-worker rows bound the coordination overhead from above; the
// scaling acceptance runs on multi-core CI):
//
//	stage                           throughput       per event
//	concurrent write, 1 thread      119M events/s    8.4 ns, 6.3 bytes
//	concurrent write, 4 threads     54M events/s     (4 goroutines timeslicing 1 core)
//	decode (ReadAll, pre-sized)     5.7M events/s    175 ns
//	analyze sequential              17.3M events/s   58 ns
//	analyze parallel, 4 workers     20.1M events/s   50 ns — faster than
//	  sequential even on one core (decode overlaps the frame scan);
//	  identical results, scaling with cores on multi-core hosts
//
// The format v2 refactor (footer index, per-chunk time bounds, optional
// compression — see Trace formats below) left the write hot path at
// parity and made windowed reads an order of magnitude cheaper. On the
// same 1-core container (1.05M-event archive; see BENCH_PR6.json):
//
//	v2 write, 1 thread              97M events/s     10.3 ns, 6.3 bytes — vs
//	  v1 96M events/s: the index costs two compares per event plus one
//	  ChunkRef per sealed chunk (CI gates the v2:v1 ratio at 95%)
//	flate-compressed write          21M events/s     1.37 bytes/event (4.6x
//	  smaller; DEFLATE runs outside all shared locks)
//	indexed seek + chunk decode     120 us/chunk     42M events/s, 0 allocs
//	windowed analyze (10% window)   3.6 ms           reads 12% of chunks —
//	  11x faster than the 40 ms full sequential analysis, identical output
//
// The remote sink adds a net section measuring the same event stream
// shipped through the daemon socket versus written straight to a file
// (net/write/{file,socket} at 1 and 4 concurrent streams, events/sec;
// see BENCH_PR7.json) — the socket numbers include framing, the unix
// socket hop, the daemon's ingest write and the seal acknowledgment.
// On the 1-core container a single stream runs at sink parity (15M
// events/s either way: the background sender overlaps the socket hop
// with encoding); at 4 streams the client senders and daemon ingest
// goroutines timeslice the one core (26M file vs 9M socket), with 0
// steady-state allocs/op in both variants.
//
// Reproduce with:
//
//	go run ./cmd/scorep-bench -baseline BENCH_PR7.json -out BENCH_PR8.json
//
// scorep-bench runs the Fig. 13/14/15 experiments and these
// microbenchmarks with warmup and repetitions and emits machine-readable
// JSON (ns/op, allocs/op, bytes/event, events/sec, deltas vs. the
// committed baseline). The stream section covers the whole pipeline:
// stream/record (per-event record path), stream/write (concurrent
// archive writes, 1 vs 4 threads at GOMAXPROCS 1 and 4, plus v1 and
// compressed encodings), stream/decode and stream/analyze (sequential
// vs parallel, incl. stream/analyze/bottlenecks for the bottleneck
// pass), stream/seek (index-driven random chunk access) and
// stream/analyze/windowed (time-window queries, with a chunk-read-frac
// metric). CI runs `scorep-bench -quick -check-allocs -check-write-gate`
// on every change and fails when a hot-path benchmark allocates more
// per op than the committed baseline, or when v2 write throughput falls
// below 95% of v1 measured in the same run (paired fixed-work rounds,
// upper-quartile ratio — machine-independent where committed wall-clock
// numbers are not).
//
// # Scheduler design
//
// The runtime ships two task schedulers. The default central queue —
// one mutex-protected team-wide queue — models the GCC 4.6 libgomp the
// paper measured, whose lock contention is the root cause of the
// paper's Fig. 15 slowdowns and Table III management-time explosion;
// it is kept as the ablation baseline. The work-stealing scheduler
// gives each thread a lock-free Chase–Lev deque: the owner pushes and
// pops newest-first (LIFO) at the bottom without locks or — except for
// the last element — CAS, keeping it on cache-hot recently created
// tasks, while thieves steal oldest-first (FIFO) at the top via a CAS,
// taking the largest pending piece of work per synchronization.
//
// Threads that run out of work descend a spin→yield→park ladder:
// bounded spinning, a few cooperative yields, then parking on a
// per-team notifier signaled by task publication, task completion and
// barrier release. A parked thief is woken the moment work appears, at
// any GOMAXPROCS, and an idle team burns no CPU at barriers. TeamStats
// reports steal/steal-attempt/park/wake counters and a per-thread
// steal histogram so benchmarks can quantify scheduler contention.
//
// # Trace formats
//
// The runtime's event stream can be recorded as an event trace — the
// OTF2/tracing side of Score-P the paper's conclusion points to. Two
// on-disk formats exist:
//
//   - JSONL: one JSON object per event ("{"t":0,"ts":123,"ev":"ENTER",
//     "r":"fib.task",...}"), human-greppable, ~100 bytes/event
//     (WriteTraceJSONL/ReadTraceJSONL).
//   - Binary archive: an OTF2-style chunked binary format, ~5-6
//     bytes/event (WriteTraceArchive/ReadTraceArchive). The archive is
//     a "SPOTF2\x00" + version header followed by self-describing
//     chunks (one byte kind, uvarint length, payload). Definition
//     chunks intern strings and regions and declare clock properties;
//     event chunks carry per-thread runs of records encoded as a type
//     byte, a zig-zag varint delta to the thread's previous timestamp,
//     a region reference and a task ID, all LEB128 varints. The full
//     byte-level specification lives in the internal/otf2 package
//     comment; the format is reimplementable from those docs alone.
//
// Archives are written in format version 2 by default: the Writer
// additionally tracks each event chunk's byte offset, event count and
// inclusive timestamp bounds, and Close appends a footer index chunk
// ('I') plus a fixed 14-byte trailer ('T' frame, little-endian index
// offset, "SPIX" magic) — so a reader locates the index in O(1) seeks
// from the end of the file. WithCompression(TraceCompressionFlate) (or
// scorep-convert -compress) DEFLATEs each sealed event chunk into a 'C'
// chunk; v1 readers are unaffected because v1 archives contain neither.
// A flight-recorder dump (see Flight recorder) additionally carries one
// chunk of kind 'F' placed directly after the header — before any event
// chunk, so a dump truncated by a disk fault still keeps its accounting
// in the salvageable prefix. Its payload is uvarint(ringChunks)
// uvarint(chunkEvents) uvarint(retainedEvents) uvarint(nthreads),
// followed per thread (ascending thread ID) by varint(tid)
// uvarint(droppedEvents) uvarint(droppedChunks). 'F' is v2-only and is
// skipped like any other unknown chunk kind by readers that predate it.
// TraceArchiveFormatVersion(1) / scorep-convert -format-version 1
// downgrade to the sequential-only v1 byte stream — v1 -> v2 -> v1
// round-trips the event stream byte-identically, and v1 archives stay
// fully readable (they simply fall back to the sequential scan).
//
// The index exists for time-window queries: a TraceQuery (a time window
// [MinTime, MaxTime] and/or a thread-ID subset) handed to
// AnalyzeTraceArchiveQuery/ReadTraceArchiveQuery — or to the tools as
// -window t0:t1 and -threads a,b,c (-tids on scorep-analyze and
// scorep-timeline, whose -threads already names the live-run width) —
// prunes non-matching chunks by their indexed bounds and reads only the
// rest: O(matching chunks), not O(archive), with the Indexed /
// ChunksRead / ChunksTotal counters reported in TraceQueryStats. The
// result is defined to be reflect.DeepEqual- and JSON-byte-identical to
// decoding the whole archive and filtering with TraceQuery.Filter,
// at every worker count, on both the indexed path and the sequential
// fallback (v1 input, or a v2 archive whose index was lost to a crash —
// which still salvages the intact prefix). scorep-convert -stats
// reports the physical layout: format version, index presence,
// per-thread chunk counts and the compression ratio.
//
// Because the archive is chunked and append-only, a crashed run still
// yields a readable prefix, recording can run in bounded memory
// (WithStreamingTrace flushes full per-thread chunks to a
// TraceArchiveWriter instead of buffering the run in RAM), and
// AnalyzeTraceArchive replays an archive through per-thread state
// machines in O(chunk) memory — out-of-core analysis of traces far
// larger than RAM. AnalyzeTraceArchiveParallel and
// ReadTraceArchiveParallel spread the chunk decoding over a worker
// pool with per-thread in-order shards (O(workers x chunk) memory,
// identical results); the CLIs expose the knob as -parallel N (0 = one
// worker per processor, 1 = sequential). The scorep-convert command
// converts between the two formats and reports size/event statistics;
// scorep-timeline and scorep-analyze accept either format, chosen by
// file extension (".otf2" is binary).
//
// # Bottleneck analysis
//
// The bottleneck analysis is the Scalasca-style automatic step the
// paper's conclusion points to: it consumes the per-thread event
// streams (in memory, out of core over an archive, or per shard of a
// fleet experiment) and answers "where did the time go, whose fault
// was it, and what would fixing it buy". Entry points:
// Results.Bottlenecks, Experiment.Bottlenecks / BottlenecksQuery /
// ShardBottlenecks / FleetBottlenecks, AnalyzeBottlenecks (in-memory),
// AnalyzeTraceArchiveBottlenecks (out-of-core, same access structure
// and salvage contract as AnalyzeTraceArchiveQuery) and
// MergeBottleneckAnalyses (fleet). On the command line:
// scorep-analyze -bottlenecks (any trace-bearing input; honors
// -window, -tids, -parallel and -json), and scorep-report prints the
// fleet bottleneck summary of a fleet experiment. The result is
// reflect.DeepEqual- and JSON-byte-identical at every worker count and
// on every access path; region references are plain name strings, and
// all iteration orders and tie-breaks are deterministic.
//
// Wait-state classification. A thread's idle time is measured inside
// top-level synchronization instances — the interval from entering a
// Taskwait, Barrier or ImplicitBarrier region at nesting depth zero to
// the matching exit. Within such an instance, every sub-interval where
// the thread executes no task fragment is idle, and each idle
// nanosecond is classified exactly once:
//
//   - LATE_TASK_SPAWN: idle before the first execution of a task that
//     another thread was still creating — the portion of the task's
//     first dispatch gap that precedes the creator's EvTaskCreateEnd.
//     The cause is the creating thread; the region is the task's.
//     (Idle after the create completed, resume gaps, and gaps before
//     self-created tasks count as plain dispatch latency, not waiting.)
//   - STARVED_THIEF: idle while a task created by a different thread
//     was pending — created but not yet begun anywhere. Work existed
//     and was not distributed. The cause is the creator whose pending
//     windows overlap the idle span longest (ties: smallest thread
//     id); the region is that creator's most-overlapping task's.
//   - BARRIER_IMBALANCE: idle (not already classified as starvation)
//     between the thread's own arrival at a collective barrier
//     instance and the last participant's arrival. Barrier instances
//     are matched across threads by region and per-thread visit
//     ordinal, and need >= 2 participants; the cause is the last
//     arriver (ties: smallest thread id).
//
// The remainder is reported as unclassified idle. Wait states are
// aggregated per (kind, victim, cause, region) with interval counts,
// and per-thread totals (ThreadWaits) partition each thread's idle
// exactly.
//
// Critical path. The task-graph critical path is reconstructed by a
// backward walk from the last-finishing thread's last event: task
// segments attribute their inclusive time to the task's region; at a
// task's first fragment the walk takes the spawn edge to the creating
// thread at EvTaskCreateEnd (the gap in between is SpawnWait); at a
// resumed fragment it takes the join edge to the completion that
// unblocked the scheduling point (JoinWait); at a barrier exit it
// jumps to the last arriver (the skew is in Other). The invariant
// Length == sum(Regions[i].Time) + SpawnWait + JoinWait + Other always
// holds. Per region, Share is its fraction of the path, and the
// what-if model is fixed-path: shrinking a region by X% saves X% of
// its on-path time (WhatIf10/25/50 = Time/10, Time/4, Time/2) — an
// upper bound on the wall-time reduction, since the path can re-route
// through other work once shortened.
//
// Findings. Wait states aggregate into Results.Findings-style typed
// findings (LATE_TASK_SPAWN, STARVED_THIEF, BARRIER_IMBALANCE) with
// severity = waited time / (wall time x threads) clamped to [0, 1] and
// an Attribution naming victim and cause threads, the region, and the
// waited time (victim -1 = several threads); the largest non-implicit
// critical-path region becomes a CRITICAL_PATH_HOTSPOT finding whose
// severity is its path share. A fleet's per-shard analyses merge into
// a FleetSummary: per wait-state kind the fleet-summed time and the
// worst shard, plus the shard with the longest critical path.
//
// The stream/analyze/bottlenecks benches measure the out-of-core
// bottleneck pass on the 1M-event archive (sequential vs 4 workers;
// see BENCH_PR8.json), and CI cmp's the -bottlenecks -json outputs at
// -parallel 1 and 4 on every change.
//
// See examples/ for runnable programs (quickstart is the Session-API
// walkthrough) and internal/exp for the harness that regenerates every
// figure and table of the paper's evaluation.
package scorep
