// Package scorep (module "repro") is a Go reproduction of "Profiling of
// OpenMP Tasks with Score-P" (Lorenz, Philippen, Schmidl, Wolf;
// ICPP 2012): the first call-path profiler that remains correct for
// OpenMP 3.0 tied tasks.
//
// The package is the public facade over the internal implementation:
//
//   - an OpenMP-3.0-like tasking runtime (parallel regions, tied tasks,
//     taskwait, task-draining barriers, if/final clauses),
//   - the paper's task-aware call-path profiling algorithm (per-instance
//     call trees, stub nodes under scheduling points, suspend/resume time
//     subtraction, merged per-construct task trees),
//   - OPARI2/POMP2-style instrumentation wrappers,
//   - CUBE-like aggregation, rendering and serialization of profiles.
//
// # Quickstart
//
//	m := scorep.NewMeasurement()
//	rt := scorep.NewRuntime(m)
//
//	par := scorep.RegisterRegion("my.parallel", "main.go", 10, scorep.RegionParallel)
//	task := scorep.RegisterRegion("my.task", "main.go", 12, scorep.RegionTask)
//	tw := scorep.RegisterRegion("my.taskwait", "main.go", 14, scorep.RegionTaskwait)
//
//	rt.Parallel(4, par, func(t *scorep.Thread) {
//	    if t.ID == 0 {
//	        for i := 0; i < 100; i++ {
//	            t.NewTask(task, func(c *scorep.Thread) { work() })
//	        }
//	        t.Taskwait(tw)
//	    }
//	})
//
//	m.Finish()
//	report := scorep.AggregateReport(m.Locations())
//	scorep.RenderReport(os.Stdout, report, scorep.RenderOptions{})
//
// See examples/ for runnable programs and internal/exp for the harness
// that regenerates every figure and table of the paper's evaluation.
package scorep
