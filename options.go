package scorep

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/sink"
)

// Option configures a Session. Options are applied in order; later
// options override earlier ones, which lets NewSessionFromEnv layer the
// environment over programmatic defaults.
type Option func(*sessionConfig)

// sessionConfig is the resolved measurement-environment configuration.
// It is assembled by NewSession from the options and recorded verbatim
// in the experiment archive's meta.json.
type sessionConfig struct {
	profiling       bool
	tracing         bool
	streamingSink   TraceEventSink
	streamingChunk  int
	remoteAddr      string
	remoteStream    string
	remoteRetry     *remoteRetryConfig
	remoteReconnect *remoteReconnectConfig
	remoteFallback  *string // nil: auto (expDir/fallback.otf2), "": disabled
	filters         []string
	sched           SchedulerKind
	clk             Clock
	extra           []Listener
	expDir          string
	analysisWorkers int
	traceComp       TraceCompression

	// Flight-recorder configuration: flightRing > 0 selects the
	// ring-buffer tracing mode; dumpSignal/dumpSignalSet and btTrigger
	// arm the automatic dump triggers.
	flightRing    int
	flightChunk   int
	dumpSignal    os.Signal
	dumpSignalSet bool
	btTrigger     *bottleneckTriggerConfig
}

type bottleneckTriggerConfig struct {
	minSeverity float64
	interval    time.Duration
}

func defaultConfig() sessionConfig {
	// Profiling on, tracing off: Score-P's defaults
	// (SCOREP_ENABLE_PROFILING=true, SCOREP_ENABLE_TRACING=false).
	return sessionConfig{profiling: true, sched: SchedCentralQueue}
}

// WithProfiling enables call-path profiling (the default). Session.End
// then exposes the aggregated profile via Results.Report.
func WithProfiling() Option {
	return func(c *sessionConfig) { c.profiling = true }
}

// WithoutProfiling disables profiling — the uninstrumented baseline of
// the overhead experiments, or a pure tracing run.
func WithoutProfiling() Option {
	return func(c *sessionConfig) { c.profiling = false }
}

// WithTracing enables in-memory event tracing. Session.End then exposes
// the recording via Results.Trace and its derived metrics via
// Results.TraceAnalysis. For runs whose trace may outgrow memory use
// WithStreamingTrace instead. Combined with profiling (the default),
// the session wires the fused profiling+tracing Tee: both listeners
// share one clock read per event and see identical timestamps.
func WithTracing() Option {
	return func(c *sessionConfig) {
		c.tracing = true
		c.streamingSink = nil
		c.remoteAddr = ""
		c.flightRing = 0
	}
}

// WithoutTracing disables event tracing (the default), overriding an
// earlier WithTracing/WithStreamingTrace — the programmatic form of
// SCOREP_ENABLE_TRACING=false.
func WithoutTracing() Option {
	return func(c *sessionConfig) {
		c.tracing = false
		c.streamingSink = nil
		c.remoteAddr = ""
		c.flightRing = 0
	}
}

// WithStreamingTrace enables bounded-memory event tracing: full
// per-thread chunks of chunkEvents events are flushed to sink
// (typically a TraceArchiveWriter) instead of accumulating in RAM.
// chunkEvents <= 0 picks a default. The sink is owned by the caller:
// close it after Session.End, which surfaces the first sink write error.
// Results.Trace returns nil in this mode — the recording lives in
// whatever the sink wrote.
func WithStreamingTrace(sink TraceEventSink, chunkEvents int) Option {
	return func(c *sessionConfig) {
		c.tracing = true
		c.streamingSink = sink
		c.streamingChunk = chunkEvents
		c.remoteAddr = ""
		c.flightRing = 0
	}
}

// WithRemoteTrace streams the event trace to a scorep-daemon
// measurement service at addr ("unix:///path.sock", "tcp://host:port",
// or a bare host:port) instead of keeping or saving it locally — the
// multi-process measurement mode, where each process's stream becomes
// one shard of the daemon's fleet experiment. It implies tracing, in
// the bounded-memory streaming mode: events are encoded through the
// per-thread archive writer and shipped by a background sender with
// bounded buffering (blocking the producer when the daemon falls
// behind; see DialTraceSink for the drop-with-count alternative).
//
// The connection is established lazily with retry/backoff, so the
// daemon may still be starting when the session begins. A malformed
// address, a connect failure after retries, or any transport error
// surfaces at Session.End, which closes the stream and waits for the
// daemon's seal acknowledgment.
func WithRemoteTrace(addr string) Option {
	return func(c *sessionConfig) {
		c.tracing = true
		c.streamingSink = nil
		c.remoteAddr = addr
		c.flightRing = 0
	}
}

// WithFlightRecorder enables flight-recorder tracing: an always-on
// bounded recording that retains only the most recent window of each
// thread's event stream — ringChunks sealed chunks per thread (<= 0
// picks the default, 8), oldest chunk evicted first with the evicted
// events counted per thread. Memory is O(threads x ring), forever, so
// the mode can stay on in production runs of any length. The window is
// materialized on demand as a complete, valid trace archive by
// Session.DumpFlightRecorder, the configured dump signal (SIGUSR1 by
// default; see WithDumpSignal), Session.DumpOnPanic, or the bottleneck
// threshold trigger (WithBottleneckTrigger); at End the retained window
// becomes Results.Trace like an ordinary in-memory recording, with its
// eviction accounting in Results.FlightRecorder and meta.json.
//
// Flight recording is an exclusive tracing mode: it overrides an
// earlier WithStreamingTrace/WithRemoteTrace, and a later one overrides
// it.
func WithFlightRecorder(ringChunks int) Option {
	return func(c *sessionConfig) {
		c.tracing = true
		c.streamingSink = nil
		c.remoteAddr = ""
		c.flightRing = ringChunks
		if c.flightRing <= 0 {
			c.flightRing = DefaultFlightRingChunks
		}
	}
}

// WithFlightChunkEvents sets the flight recorder's chunk granularity:
// events per sealed ring chunk (<= 0 picks the default, 4096). The
// retained window is ringChunks x chunkEvents events per thread, plus
// one partial chunk. Ignored without WithFlightRecorder.
func WithFlightChunkEvents(n int) Option {
	return func(c *sessionConfig) { c.flightChunk = n }
}

// WithDumpSignal selects the OS signal that triggers a flight-recorder
// dump (default SIGUSR1). The dump is written to an automatically
// numbered directory — flight-NNN under the experiment directory when
// one is configured, scorep-flight-NNN in the working directory
// otherwise. Passing nil disables the signal trigger. Ignored without
// WithFlightRecorder.
func WithDumpSignal(sig os.Signal) Option {
	return func(c *sessionConfig) {
		c.dumpSignal = sig
		c.dumpSignalSet = true
	}
}

// WithBottleneckTrigger arms the analysis-driven dump trigger of a
// flight-recorder session: every interval (<= 0 picks 1s) the retained
// window is snapshotted and run through the bottleneck analysis, and
// when any finding's severity reaches minSeverity (clamped to [0,1];
// severities are wait time over the run's total thread-time budget) a
// dump is written to an automatically numbered directory and the
// trigger disarms — one dump per session, capturing the window that
// first showed the problem. Ignored without WithFlightRecorder.
func WithBottleneckTrigger(minSeverity float64, interval time.Duration) Option {
	return func(c *sessionConfig) {
		c.btTrigger = &bottleneckTriggerConfig{minSeverity: minSeverity, interval: interval}
	}
}

// WithRemoteTraceStream names this process's stream — and thereby its
// shard file, trace-<id>.otf2, in the daemon's fleet experiment. The
// default is pid-derived and unique per host; the daemon additionally
// uniquifies collisions. Ignored without WithRemoteTrace.
func WithRemoteTraceStream(id string) Option {
	return func(c *sessionConfig) { c.remoteStream = id }
}

type remoteRetryConfig struct {
	attempts int
	backoff  time.Duration
}

type remoteReconnectConfig struct {
	attempts int
	backoff  time.Duration
	budget   time.Duration
}

// WithRemoteTraceRetry shapes the remote sink's initial connect loop:
// up to attempts dials with a jittered doubling backoff between them
// (attempts <= 1 means a single attempt; backoff <= 0 keeps the
// default). Ignored without WithRemoteTrace.
func WithRemoteTraceRetry(attempts int, backoff time.Duration) Option {
	return func(c *sessionConfig) {
		c.remoteRetry = &remoteRetryConfig{attempts: attempts, backoff: backoff}
	}
}

// WithRemoteTraceReconnect shapes the remote sink's per-outage
// reconnect loop — a severed connection or restarted daemon is
// survived by up to attempts redials (jittered doubling backoff,
// bounded by a total elapsed budget per outage) and byte-exact resume.
// attempts <= 0 disables reconnection: a severed connection is then
// terminal (or degrades to the fallback archive). Ignored without
// WithRemoteTrace.
func WithRemoteTraceReconnect(attempts int, backoff, budget time.Duration) Option {
	return func(c *sessionConfig) {
		c.remoteReconnect = &remoteReconnectConfig{attempts: attempts, backoff: backoff, budget: budget}
	}
}

// WithRemoteTraceFallback names the local archive file a remote-tracing
// session spills the trace to when the daemon is lost for good (connect
// or reconnect budget exhausted, unresumable gap, daemon-reported
// ingest failure) — the run then still ends with a lossless local
// recording, noted in meta.json as RemoteFallback. The default is
// automatic: <experiment dir>/fallback.otf2 when an experiment
// directory is configured, otherwise no fallback. An empty path
// disables spilling entirely (terminal transport failures surface as
// errors at End). Ignored without WithRemoteTrace.
func WithRemoteTraceFallback(path string) Option {
	return func(c *sessionConfig) { c.remoteFallback = &path }
}

// WithFilter wraps the profiling measurement in a region filter —
// Score-P's measurement filtering, the standard remedy when
// instrumentation of small functions dominates overhead. Patterns
// ending in '*' exclude by prefix, others by exact region name;
// construct regions (parallel/task/barriers/taskwaits) always pass
// through. The filter applies to profiling only; a trace records the
// full event stream.
func WithFilter(patterns ...string) Option {
	return func(c *sessionConfig) { c.filters = append(c.filters, patterns...) }
}

// WithScheduler selects the runtime's task scheduler (default
// SchedCentralQueue, the libgomp model the paper evaluated;
// SchedWorkStealing is the modern alternative).
func WithScheduler(kind SchedulerKind) Option {
	return func(c *sessionConfig) { c.sched = kind }
}

// WithClock sets the measurement time source for profiles and traces
// (default: the monotonic system clock). Tests use a manual clock for
// deterministic results.
func WithClock(clk Clock) Option {
	return func(c *sessionConfig) { c.clk = clk }
}

// WithListener attaches an extra listener to the runtime's event
// stream, alongside whatever the session itself wires up (custom
// counters, debugging taps, ...).
func WithListener(extra Listener) Option {
	return func(c *sessionConfig) {
		if extra != nil {
			c.extra = append(c.extra, extra)
		}
	}
}

// WithAnalysisParallelism sets the worker count used by
// Results.TraceAnalysis to derive the trace metrics: per-thread event
// streams are independent (as in Scalasca's parallel trace analysis),
// so the analysis shards across workers and merges deterministically —
// the result is identical at every worker count. workers <= 0 (the
// default) uses one worker per processor; workers == 1 forces the
// strictly sequential path. The parallelism is an analysis-time knob
// only: it affects neither the measurement nor the archived data.
func WithAnalysisParallelism(workers int) Option {
	return func(c *sessionConfig) { c.analysisWorkers = workers }
}

// WithTraceCompression selects the compression of archived trace
// event chunks (default TraceCompressionNone). It applies wherever the
// session itself writes an archive — today the trace.otf2 of an
// experiment directory; a WithStreamingTrace sink is constructed by
// the caller, who passes TraceArchiveCompression to
// NewTraceArchiveWriter directly. Chunks stay independently decodable,
// so seeking, time-window queries and parallel decode are unaffected.
func WithTraceCompression(c TraceCompression) Option {
	return func(cfg *sessionConfig) { cfg.traceComp = c }
}

// WithExperimentDirectory sets the on-disk experiment archive
// directory: Session.End automatically calls Results.SaveExperiment on
// it, the analog of Score-P's scorep-<name>/ output directory
// (SCOREP_EXPERIMENT_DIRECTORY).
func WithExperimentDirectory(dir string) Option {
	return func(c *sessionConfig) { c.expDir = dir }
}

// Score-P-style environment variables honored by NewSessionFromEnv.
const (
	EnvEnableProfiling     = "SCOREP_ENABLE_PROFILING"      // bool: profile the run (default true)
	EnvEnableTracing       = "SCOREP_ENABLE_TRACING"        // bool: record an event trace (default false)
	EnvFiltering           = "SCOREP_FILTERING"             // comma-separated region filter patterns
	EnvExperimentDirectory = "SCOREP_EXPERIMENT_DIRECTORY"  // experiment archive directory, saved at End
	EnvTaskScheduler       = "SCOREP_TASK_SCHEDULER"        // "central-queue" or "work-stealing"
	EnvTraceCompression    = "SCOREP_TRACE_COMPRESSION"     // "none" or "flate": archived trace compression
	EnvTraceSink           = "SCOREP_TRACE_SINK"            // scorep-daemon address: stream the trace remotely
	EnvTraceSinkRetries    = "SCOREP_TRACE_SINK_RETRIES"    // int: initial connect attempts to the daemon
	EnvTraceSinkReconnects = "SCOREP_TRACE_SINK_RECONNECTS" // int: reconnect attempts per outage (0 disables)
	EnvTraceSinkFallback   = "SCOREP_TRACE_SINK_FALLBACK"   // path: local spill archive ("off" disables)
	EnvFlightRecorder      = "SCOREP_FLIGHT_RECORDER"       // bool or ring size: flight-recorder tracing
	EnvDumpSignal          = "SCOREP_DUMP_SIGNAL"           // signal name triggering a dump ("none" disables)
)

// NewSessionFromEnv creates a session configured from Score-P-style
// environment variables, layered over the given base options (the
// environment wins, like Score-P's runtime configuration overriding
// compiled-in defaults). Unset variables leave the base configuration
// untouched; malformed values are reported as errors rather than
// silently ignored.
func NewSessionFromEnv(opts ...Option) (*Session, error) {
	envOpts, err := optionsFromEnv()
	if err != nil {
		return nil, err
	}
	return NewSession(append(append([]Option{}, opts...), envOpts...)...), nil
}

func optionsFromEnv() ([]Option, error) {
	var opts []Option
	if v, ok := os.LookupEnv(EnvEnableProfiling); ok {
		on, err := parseEnvBool(EnvEnableProfiling, v)
		if err != nil {
			return nil, err
		}
		if on {
			opts = append(opts, WithProfiling())
		} else {
			opts = append(opts, WithoutProfiling())
		}
	}
	if v, ok := os.LookupEnv(EnvEnableTracing); ok {
		on, err := parseEnvBool(EnvEnableTracing, v)
		if err != nil {
			return nil, err
		}
		if on {
			// Unlike WithTracing, keep a programmatically configured
			// streaming sink: the variable says "trace", not "trace in
			// memory".
			opts = append(opts, func(c *sessionConfig) { c.tracing = true })
		} else {
			opts = append(opts, WithoutTracing())
		}
	}
	if v, ok := os.LookupEnv(EnvFiltering); ok {
		var patterns []string
		for _, p := range strings.Split(v, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
		// The environment wins: its pattern list replaces compiled-in
		// filters (unlike WithFilter, which appends), and an empty value
		// disables filtering altogether.
		opts = append(opts, func(c *sessionConfig) { c.filters = patterns })
	}
	if v, ok := os.LookupEnv(EnvExperimentDirectory); ok && v != "" {
		opts = append(opts, WithExperimentDirectory(v))
	}
	if v, ok := os.LookupEnv(EnvTaskScheduler); ok {
		kind, err := parseSchedulerName(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", EnvTaskScheduler, err)
		}
		opts = append(opts, WithScheduler(kind))
	}
	if v, ok := os.LookupEnv(EnvTraceCompression); ok {
		comp, err := ParseTraceCompression(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", EnvTraceCompression, err)
		}
		opts = append(opts, WithTraceCompression(comp))
	}
	if v, ok := os.LookupEnv(EnvTraceSink); ok && v != "" {
		// Validate eagerly: a typo in the address should fail the run's
		// start, not be discovered at End after measuring for an hour.
		if _, _, err := sink.SplitAddr(v); err != nil {
			return nil, fmt.Errorf("%s: %w", EnvTraceSink, err)
		}
		opts = append(opts, WithRemoteTrace(v))
	}
	if v, ok := os.LookupEnv(EnvTraceSinkRetries); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%s: invalid attempt count %q (want an integer >= 1)", EnvTraceSinkRetries, v)
		}
		opts = append(opts, WithRemoteTraceRetry(n, 0))
	}
	if v, ok := os.LookupEnv(EnvTraceSinkReconnects); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s: invalid attempt count %q (want an integer >= 0)", EnvTraceSinkReconnects, v)
		}
		opts = append(opts, WithRemoteTraceReconnect(n, 0, 0))
	}
	if v, ok := os.LookupEnv(EnvTraceSinkFallback); ok {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "off", "none":
			v = ""
		}
		opts = append(opts, WithRemoteTraceFallback(v))
	}
	if v, ok := os.LookupEnv(EnvFlightRecorder); ok {
		// Boolean spellings toggle the mode with the default ring; an
		// integer >= 1 both enables it and sets the ring depth.
		if on, err := parseEnvBool(EnvFlightRecorder, v); err == nil {
			if on {
				opts = append(opts, WithFlightRecorder(0))
			} else {
				opts = append(opts, func(c *sessionConfig) { c.flightRing = 0 })
			}
		} else if n, nerr := strconv.Atoi(strings.TrimSpace(v)); nerr == nil && n >= 1 {
			opts = append(opts, WithFlightRecorder(n))
		} else {
			return nil, fmt.Errorf("%s: invalid flight-recorder setting %q (want a boolean or a ring size >= 1)",
				EnvFlightRecorder, v)
		}
	}
	if v, ok := os.LookupEnv(EnvDumpSignal); ok {
		sig, err := parseSignalName(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", EnvDumpSignal, err)
		}
		opts = append(opts, WithDumpSignal(sig))
	}
	return opts, nil
}

// parseEnvBool accepts the spellings Score-P's configuration system
// does: true/false, yes/no, on/off, 1/0 (case-insensitive).
func parseEnvBool(name, v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "true", "yes", "on", "1":
		return true, nil
	case "false", "no", "off", "0":
		return false, nil
	}
	return false, fmt.Errorf("%s: invalid boolean %q (want true/false, yes/no, on/off, 1/0)", name, v)
}

// parseSignalName maps a signal name to the os.Signal a dump trigger
// can listen for. The optional "SIG" prefix and case are ignored;
// "none" and "off" disable the trigger (nil signal).
func parseSignalName(v string) (os.Signal, error) {
	name := strings.ToUpper(strings.TrimSpace(v))
	name = strings.TrimPrefix(name, "SIG")
	switch name {
	case "NONE", "OFF", "":
		return nil, nil
	case "HUP":
		return syscall.SIGHUP, nil
	case "INT":
		return syscall.SIGINT, nil
	case "QUIT":
		return syscall.SIGQUIT, nil
	case "USR1":
		return syscall.SIGUSR1, nil
	case "USR2":
		return syscall.SIGUSR2, nil
	case "TERM":
		return syscall.SIGTERM, nil
	}
	return nil, fmt.Errorf("unknown signal %q (want HUP, INT, QUIT, USR1, USR2, TERM, or \"none\")", v)
}

// parseSchedulerName maps a scheduler name (as printed by
// SchedulerKind.String) back to its kind.
func parseSchedulerName(v string) (SchedulerKind, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "central-queue", "central":
		return SchedCentralQueue, nil
	case "work-stealing", "stealing":
		return SchedWorkStealing, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want %q or %q)",
		v, SchedCentralQueue, SchedWorkStealing)
}
