package scorep

import (
	"io"
	"time"

	"repro/internal/analyze"
	"repro/internal/bottleneck"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/otf2"
	"repro/internal/pomp"
	"repro/internal/region"
	"repro/internal/sink"
	"repro/internal/trace"
)

// Runtime is the OpenMP-like tasking runtime executing parallel regions
// and explicit tied tasks.
type Runtime = omp.Runtime

// Thread is one worker of a team; it is the execution context handed to
// parallel-region bodies and task bodies.
type Thread = omp.Thread

// Task is one explicit task instance.
type Task = omp.Task

// TaskFunc is an explicit task body.
type TaskFunc = omp.TaskFunc

// TaskOpt is a task-creation clause (If, Final, Untied).
type TaskOpt = omp.TaskOpt

// Listener receives the runtime's POMP2-style event stream.
type Listener = omp.Listener

// Measurement translates runtime events into per-thread task-aware
// profiles (the Score-P measurement core).
type Measurement = measure.Measurement

// ThreadProfile is one thread's (location's) profile.
type ThreadProfile = core.ThreadProfile

// ProfileNode is a call-tree node of a thread profile.
type ProfileNode = core.Node

// TaskInstance is the profiling state of one active task instance.
type TaskInstance = core.TaskInstance

// Report is an aggregated cross-thread profile.
type Report = cube.Report

// ReportNode is a node of the aggregated profile.
type ReportNode = cube.Node

// RenderOptions controls text rendering of reports.
type RenderOptions = cube.RenderOptions

// Region is an interned source-region descriptor.
type Region = region.Region

// RegionType classifies regions.
type RegionType = region.Type

// Clock is the measurement time source interface.
type Clock = clock.Clock

// Region types, re-exported for instrumentation code.
const (
	RegionFunction        = region.UserFunction
	RegionParallel        = region.Parallel
	RegionTask            = region.Task
	RegionTaskCreate      = region.TaskCreate
	RegionTaskwait        = region.Taskwait
	RegionBarrier         = region.Barrier
	RegionImplicitBarrier = region.ImplicitBarrier
	RegionSingle          = region.Single
	RegionMaster          = region.Master
	RegionCritical        = region.Critical
	RegionLoop            = region.Loop
)

// NewRuntime creates a runtime emitting events to l. Pass a
// *Measurement to profile, or nil for an uninstrumented runtime.
func NewRuntime(l Listener) *Runtime {
	if l == nil {
		// An explicitly nil listener must also compare equal to nil
		// through the interface, so plain nil is passed on.
		return omp.NewRuntime(nil)
	}
	return omp.NewRuntime(l)
}

// NewMeasurement creates a measurement using the monotonic system clock.
func NewMeasurement() *Measurement { return measure.New() }

// NewMeasurementWithClock creates a measurement with an explicit clock
// (tests use a manual clock for deterministic profiles).
func NewMeasurementWithClock(clk Clock) *Measurement {
	return measure.NewWithClock(clk, region.Default)
}

// NewManualClock returns a deterministic test clock starting at start.
func NewManualClock(start int64) *clock.Manual { return clock.NewManual(start) }

// RegisterRegion interns a region descriptor in the default registry.
func RegisterRegion(name, file string, line int, typ RegionType) *Region {
	return region.MustRegister(name, file, line, typ)
}

// AggregateReport merges per-thread profiles into a report.
func AggregateReport(locations []*ThreadProfile) *Report {
	return cube.Aggregate(locations)
}

// RenderReport writes a report as a text tree (the CUBE-view analog).
func RenderReport(w io.Writer, r *Report, opt RenderOptions) error {
	return cube.Render(w, r, opt)
}

// WriteReportJSON serializes a report.
func WriteReportJSON(w io.Writer, r *Report) error { return cube.WriteJSON(w, r) }

// ReadReportJSON deserializes a report written by WriteReportJSON.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	return cube.ReadJSON(rd, region.NewRegistry())
}

// WriteReportCSV emits the report as CSV rows.
func WriteReportCSV(w io.Writer, r *Report) error { return cube.WriteCSV(w, r) }

// InstrumentFunction wraps a user function body with enter/exit events
// (compiler-instrumentation analog).
func InstrumentFunction(t *Thread, r *Region, fn func()) { pomp.Function(t, r, fn) }

// ParameterInt records parameter instrumentation on the current call
// path (the paper's Table IV mechanism).
func ParameterInt(t *Thread, name string, value int64) { pomp.ParameterInt(t, name, value) }

// ParameterString records string-valued parameter instrumentation.
func ParameterString(t *Thread, name, value string) { pomp.ParameterString(t, name, value) }

// SchedulerKind selects the runtime's task scheduler.
type SchedulerKind = omp.SchedulerKind

// Scheduler kinds: the central team queue models the libgomp version the
// paper evaluated (default); work stealing is the modern alternative
// exposed for ablations.
const (
	SchedCentralQueue = omp.SchedCentralQueue
	SchedWorkStealing = omp.SchedWorkStealing
)

// TeamStats reports the scheduler counters of the last parallel region:
// task totals, steal/steal-attempt/park/wake counts and the per-thread
// steal histogram. Obtain it from Runtime.LastTeamStats.
type TeamStats = omp.TeamStats

// TraceRecorder records the runtime's event stream as an event trace
// (the OTF2/tracing side of Score-P).
type TraceRecorder = trace.Recorder

// Trace is a finished event-trace recording.
type Trace = trace.Trace

// TraceAnalysis holds trace-derived management/execution metrics.
type TraceAnalysis = trace.Analysis

// NewTraceRecorder creates an event-trace recorder on the system clock.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder(clock.NewSystem()) }

// NewTee fans the runtime event stream out to several listeners, e.g. a
// Measurement and a TraceRecorder simultaneously. The canonical
// (Measurement or Filter, TraceRecorder) pair sharing one clock — what
// NewSession(WithTracing()) wires — takes a fused fast path: one clock
// read per event feeds both listeners with identical timestamps and no
// interface dispatch.
func NewTee(listeners ...Listener) Listener { return trace.NewTee(listeners...) }

// AnalyzeTrace derives the paper's §VII metrics (dispatch latency,
// management/execution ratio) from a recorded trace.
func AnalyzeTrace(tr *Trace) *TraceAnalysis { return trace.Analyze(tr) }

// AnalyzeTraceParallel is AnalyzeTrace sharded over up to workers
// goroutines, one per trace thread at a time — per-thread streams are
// independent, like Scalasca's parallel trace analysis. workers <= 0
// uses one worker per processor, workers == 1 is exactly AnalyzeTrace;
// the result is reflect.DeepEqual-identical at every setting.
func AnalyzeTraceParallel(tr *Trace, workers int) *TraceAnalysis {
	return trace.AnalyzeParallel(tr, workers)
}

// WriteTraceJSONL serializes a trace as JSON Lines.
func WriteTraceJSONL(w io.Writer, tr *Trace) error { return trace.WriteJSONL(w, tr) }

// ReadTraceJSONL deserializes a trace written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) (*Trace, error) {
	return trace.ReadJSONL(r, region.NewRegistry())
}

// TraceEvent is one trace record, the unit a TraceEventSink receives.
type TraceEvent = trace.Event

// TraceEventSink receives per-thread event chunks flushed by a
// streaming trace recorder; a TraceArchiveWriter is one.
type TraceEventSink = trace.EventSink

// TraceArchiveWriter streams events into a compact binary archive (the
// OTF2-style format; see internal/otf2 for the layout specification).
type TraceArchiveWriter = otf2.Writer

// TraceArchiveOption configures a TraceArchiveWriter (compression,
// format version, chunk size).
type TraceArchiveOption = otf2.WriterOption

// TraceCompression selects the archive's per-chunk event compression.
type TraceCompression = otf2.Compression

// Trace archive compression methods.
const (
	// TraceCompressionNone stores event chunks verbatim (the default).
	TraceCompressionNone = otf2.CompressionNone
	// TraceCompressionFlate DEFLATE-compresses each sealed event chunk;
	// chunks stay independently decodable, so seeking and parallel
	// decode are unaffected.
	TraceCompressionFlate = otf2.CompressionFlate
)

// ParseTraceCompression maps a compression name ("none", "flate") to
// its method, accepting "" as none.
func ParseTraceCompression(s string) (TraceCompression, error) {
	return otf2.ParseCompression(s)
}

// TraceArchiveCompression returns an option selecting the archive's
// event-chunk compression (requires the current format version).
func TraceArchiveCompression(c TraceCompression) TraceArchiveOption {
	return otf2.WithCompression(c)
}

// TraceArchiveFormatVersion returns an option pinning the archive
// format version: 2 (the default) writes the seekable indexed format,
// 1 writes archives byte-compatible with pre-index readers.
func TraceArchiveFormatVersion(v int) TraceArchiveOption {
	return otf2.WithVersion(v)
}

// NewTraceArchiveWriter starts a binary trace archive on w.
func NewTraceArchiveWriter(w io.Writer, opts ...TraceArchiveOption) *TraceArchiveWriter {
	return otf2.NewWriter(w, opts...)
}

// TraceSinkClient streams one process's event trace to a scorep-daemon
// measurement service (see WithRemoteTrace for the session-integrated
// form). It is a TraceEventSink: events encode through the per-thread
// archive-writer path into a bounded frame buffer drained by a
// background sender.
type TraceSinkClient = sink.Client

// TraceSinkServer is the daemon side of the measurement service:
// sharded ingest of many concurrent client streams, one archive per
// stream (cmd/scorep-daemon wraps it; embed it for in-process fleets).
type TraceSinkServer = sink.Server

// TraceSinkClientOption configures a TraceSinkClient.
type TraceSinkClientOption = sink.ClientOption

// TraceSinkServerOption configures a TraceSinkServer.
type TraceSinkServerOption = sink.ServerOption

// TraceSinkStreamInfo describes one stream a TraceSinkServer ingested.
type TraceSinkStreamInfo = sink.StreamInfo

// TraceSinkBackpressure selects a client's full-buffer policy.
type TraceSinkBackpressure = sink.BackpressurePolicy

// Backpressure policies for a TraceSinkClient whose daemon falls
// behind: block the producer (lossless, the default) or drop whole
// event batches before encoding, counting them.
const (
	TraceSinkBlock = sink.BackpressureBlock
	TraceSinkDrop  = sink.BackpressureDrop
)

// DialTraceSink creates a client streaming to the daemon at addr
// ("unix:///path.sock", "tcp://host:port", or a bare host:port). The
// connection is established lazily with retry/backoff. Close the
// client after the recorder's Finish; Close seals the stream and
// surfaces daemon-side failures. Sessions normally use WithRemoteTrace
// instead; Dial is the power-user form for custom recorders or
// non-default backpressure.
func DialTraceSink(addr string, opts ...TraceSinkClientOption) (*TraceSinkClient, error) {
	return sink.Dial(addr, opts...)
}

// NewTraceSinkServer creates a measurement-service server ingesting
// shards into dir. Drive it with Serve on a listener (or ServeConn for
// in-process streams), Close it, then seal the fleet experiment with
// SaveFleetExperiment over its Streams.
func NewTraceSinkServer(dir string, opts ...TraceSinkServerOption) (*TraceSinkServer, error) {
	return sink.NewServer(dir, opts...)
}

// TraceSinkStreamID names the client's stream and thereby its shard
// file (trace-<id>.otf2) in the daemon's fleet experiment.
func TraceSinkStreamID(id string) TraceSinkClientOption { return sink.WithStreamID(id) }

// TraceSinkBufferBytes bounds the client's framed send buffer.
func TraceSinkBufferBytes(n int) TraceSinkClientOption { return sink.WithBufferBytes(n) }

// TraceSinkBackpressurePolicy selects the client's full-buffer policy
// (default TraceSinkBlock).
func TraceSinkBackpressurePolicy(p TraceSinkBackpressure) TraceSinkClientOption {
	return sink.WithBackpressure(p)
}

// TraceSinkDialRetry shapes the client's initial connect loop: up to
// attempts dials with a jittered doubling backoff between them.
func TraceSinkDialRetry(attempts int, backoff time.Duration) TraceSinkClientOption {
	return sink.WithDialRetry(attempts, backoff)
}

// TraceSinkReconnect shapes the client's per-outage reconnect loop — a
// severed connection or restarted daemon is survived by up to attempts
// redials (jittered doubling backoff, bounded by a total elapsed
// budget per outage) and byte-exact replay from the daemon's durable
// offset. attempts <= 0 disables reconnection.
func TraceSinkReconnect(attempts int, backoff, budget time.Duration) TraceSinkClientOption {
	return sink.WithReconnect(attempts, backoff, budget)
}

// TraceSinkReplayWindow sets how many daemon-acked bytes the client
// retains for crash-recovery replay: a restarted daemon whose durable
// offset regressed to a chunk boundary is resumed byte-exactly as long
// as the regression fits the window; a larger regression becomes an
// explicit, counted gap.
func TraceSinkReplayWindow(n int) TraceSinkClientOption {
	return sink.WithReplayWindow(n)
}

// TraceSinkFallbackArchive names a local archive the client spills the
// stream to, losslessly, when the daemon is lost for good (budget
// exhaustion, unresumable gap, ingest failure).
func TraceSinkFallbackArchive(path string) TraceSinkClientOption {
	return sink.WithFallbackArchive(path)
}

// NewStreamingTraceRecorder creates a bounded-memory event-trace
// recorder on the system clock: full per-thread chunks are flushed to
// sink (typically a TraceArchiveWriter) instead of accumulating in RAM,
// so trace size is limited by disk, not memory. chunkEvents <= 0 picks
// a default. Call Finish, check Err, then close the sink.
func NewStreamingTraceRecorder(sink TraceEventSink, chunkEvents int) *TraceRecorder {
	return trace.NewStreamingRecorder(clock.NewSystem(), sink, chunkEvents)
}

// TraceFlightStats is a flight-recorder retention/eviction snapshot:
// what the per-thread rings currently hold and what they have dropped.
type TraceFlightStats = trace.FlightStats

// TraceFlightThreadStats is one thread's share of a TraceFlightStats.
type TraceFlightThreadStats = trace.FlightThreadStats

// TraceFlightInfo is the eviction accounting embedded in a
// flight-recorder dump archive (the 'F' chunk): how much the dump
// retained and how much the rings had evicted before it.
type TraceFlightInfo = otf2.FlightInfo

// TraceFlightThreadInfo is one thread's share of a TraceFlightInfo.
type TraceFlightThreadInfo = otf2.FlightThreadInfo

// NewFlightTraceRecorder creates a flight-recorder event-trace recorder
// on the system clock: each thread retains only its last ringChunks
// sealed chunks of chunkEvents events (plus the partial chunk being
// filled), evicting the oldest chunk whole when the ring is full —
// always-on recording in O(ringChunks*chunkEvents) memory per thread.
// ringChunks <= 0 picks DefaultFlightRingChunks, chunkEvents <= 0 the
// streaming default. Snapshot the retained window any time with
// FlightSnapshot; Finish returns the final window. Most callers want
// the Session layer instead (WithFlightRecorder), which adds triggered
// dumps.
func NewFlightTraceRecorder(ringChunks, chunkEvents int) *TraceRecorder {
	return trace.NewFlightRecorder(clock.NewSystem(), ringChunks, chunkEvents)
}

// WriteTraceFlightDump serializes a flight-recorder snapshot as a valid
// binary trace archive with the eviction accounting (info) embedded as
// the archive's first chunk, before definitions and events — so even a
// truncated dump that kept only a short prefix still states its dropped
// counts. Readers treat the result like any other archive.
func WriteTraceFlightDump(w io.Writer, tr *Trace, info *TraceFlightInfo, opts ...TraceArchiveOption) error {
	return otf2.WriteFlightDump(w, tr, info, opts...)
}

// WriteTraceArchive serializes a trace in the binary archive format —
// typically 15-20x smaller than WriteTraceJSONL (more with
// TraceArchiveCompression).
func WriteTraceArchive(w io.Writer, tr *Trace, opts ...TraceArchiveOption) error {
	return otf2.Write(w, tr, opts...)
}

// ReadTraceArchive deserializes a binary trace archive.
func ReadTraceArchive(r io.Reader) (*Trace, error) {
	return otf2.ReadAll(r, region.NewRegistry())
}

// ReadTraceArchiveParallel is ReadTraceArchive with chunk decoding
// spread over up to workers goroutines (<= 0: one per processor, 1:
// strictly sequential); the loaded trace is identical either way.
func ReadTraceArchiveParallel(r io.Reader, workers int) (*Trace, error) {
	return otf2.ReadAllParallel(r, region.NewRegistry(), workers)
}

// AnalyzeTraceArchive runs the streaming trace analysis directly over a
// binary archive in bounded memory, without loading the trace; the
// result is identical to AnalyzeTrace of the same recording.
func AnalyzeTraceArchive(r io.Reader) (*TraceAnalysis, error) { return otf2.Analyze(r) }

// TraceArchiveStats describes an archive file's physical layout —
// format version, footer index, per-thread chunk counts, compression
// effectiveness, and (for flight-recorder dumps) the embedded eviction
// accounting.
type TraceArchiveStats = otf2.ArchiveStats

// StatTraceArchive reads an archive file's layout statistics without
// decoding its events (see scorep-convert -stats).
func StatTraceArchive(path string) (*TraceArchiveStats, error) { return otf2.StatFile(path) }

// AnalyzeTraceArchiveParallel is AnalyzeTraceArchive with a sequential
// frame scanner fanning chunk decoding out to a worker pool and
// per-thread analysis shards (the parallel out-of-core mode; memory
// stays O(workers x chunk)). workers <= 0 uses one worker per
// processor, workers == 1 is exactly AnalyzeTraceArchive; the analysis
// is reflect.DeepEqual-identical at every setting.
func AnalyzeTraceArchiveParallel(r io.Reader, workers int) (*TraceAnalysis, error) {
	return otf2.AnalyzeParallel(r, workers)
}

// TraceQuery selects a slice of a trace: a time window (inclusive, when
// Windowed is set) and/or a thread subset (nil Threads means all). The
// zero TraceQuery matches everything. Every query-taking API — the
// archive readers here, Experiment, the CLI -window/-threads flags — is
// defined against the same reference: filter the fully decoded trace
// with TraceQuery.Filter, then proceed as usual.
type TraceQuery = trace.Query

// TraceQueryStats reports how a query executed: whether the archive's
// footer index drove chunk selection, and how many of the archive's
// event chunks were actually read.
type TraceQueryStats = otf2.QueryStats

// ParseTraceWindow parses a "t0:t1" time-window flag value (either
// bound may be empty for an open end) into inclusive bounds.
func ParseTraceWindow(s string) (minTime, maxTime int64, err error) {
	return trace.ParseWindow(s)
}

// ParseTraceThreads parses a comma-separated thread-ID list flag value
// into a sorted, deduplicated thread set.
func ParseTraceThreads(s string) ([]int, error) { return trace.ParseThreadList(s) }

// AnalyzeTraceArchiveQuery analyzes the sub-trace of an archive
// matching q. When r seeks and the archive carries a footer index
// (format v2), only the chunks whose thread and time bounds can match
// are read and decoded — O(matching chunks), not O(archive); v1 and
// truncated archives fall back to the sequential scan with event-level
// filtering, preserving the salvage contract. The analysis is
// reflect.DeepEqual-identical to AnalyzeTrace of q.Filter of the full
// recording at every worker count.
func AnalyzeTraceArchiveQuery(r io.Reader, q TraceQuery, workers int) (*TraceAnalysis, TraceQueryStats, error) {
	return otf2.AnalyzeQuery(r, q, workers)
}

// ReadTraceArchiveQuery loads the sub-trace of an archive matching q,
// with the same index-driven access and fallback as
// AnalyzeTraceArchiveQuery. The loaded trace equals q.Filter of the
// full decode: threads without matching events are absent.
func ReadTraceArchiveQuery(r io.Reader, q TraceQuery, workers int) (*Trace, TraceQueryStats, error) {
	return otf2.ReadAllQuery(r, region.NewRegistry(), q, workers)
}

// BottleneckAnalysis is the Scalasca-style automatic bottleneck report:
// wait-state classification with root-cause attribution (late task
// spawn, starved thief, barrier imbalance), the task-graph critical
// path, and per-region what-if savings projections. See the "Bottleneck
// analysis" section of the package documentation for the detection
// rules.
type BottleneckAnalysis = bottleneck.Analysis

// BottleneckWaitState is one classified wait aggregate of a bottleneck
// analysis.
type BottleneckWaitState = bottleneck.WaitState

// BottleneckCriticalPath is the reconstructed task-graph critical path.
type BottleneckCriticalPath = bottleneck.CriticalPath

// BottleneckFleetSummary aggregates per-shard bottleneck analyses of a
// fleet experiment.
type BottleneckFleetSummary = bottleneck.FleetSummary

// AnalyzeBottlenecks runs the bottleneck analysis over an in-memory
// trace; workers as in AnalyzeTraceParallel (<= 0 one per processor).
// The result is identical at every worker count.
func AnalyzeBottlenecks(tr *Trace, workers int) *BottleneckAnalysis {
	return bottleneck.AnalyzeQuery(tr, TraceQuery{}, workers)
}

// AnalyzeTraceArchiveBottlenecks runs the bottleneck analysis over the
// sub-trace of an archive matching q, with the same index-driven
// access, sequential fallback and truncation salvage as
// AnalyzeTraceArchiveQuery.
func AnalyzeTraceArchiveBottlenecks(r io.Reader, q TraceQuery, workers int) (*BottleneckAnalysis, TraceQueryStats, error) {
	return otf2.AnalyzeBottlenecks(r, q, workers)
}

// MergeBottleneckAnalyses folds per-shard bottleneck analyses (keyed by
// shard stream id) into the fleet summary: per-kind fleet-summed wait
// totals with the worst shard each, and the longest critical path.
func MergeBottleneckAnalyses(shards map[string]*BottleneckAnalysis) *BottleneckFleetSummary {
	return bottleneck.MergeFleet(shards)
}

// ReportDiff is a structural diff of two reports of the same program —
// the run-comparison workflow enabled by the paper's runtime-independent
// call-tree structure (Section IV-B3).
type ReportDiff = cube.ReportDiff

// DiffNode is one node of a report diff.
type DiffNode = cube.DiffNode

// DiffReports structurally diffs baseline a against candidate b.
func DiffReports(a, b *Report) *ReportDiff { return cube.Diff(a, b) }

// RenderReportDiff writes a report diff as a text tree.
func RenderReportDiff(w io.Writer, rd *ReportDiff) error { return cube.RenderDiff(w, rd) }

// Filter wraps a Measurement and drops events of excluded user regions —
// Score-P's measurement filtering, the standard remedy when
// instrumentation of small functions dominates overhead.
type Filter = measure.Filter

// NewFilter creates a filtering listener around m; patterns ending in
// '*' exclude by prefix, others by exact region name. Construct regions
// (parallel/task/barriers/taskwaits) always pass through.
func NewFilter(m *Measurement, patterns ...string) *Filter {
	return measure.NewFilter(m, patterns...)
}

// TimelineOptions controls trace timeline rendering.
type TimelineOptions = trace.TimelineOptions

// RenderTimeline writes per-thread task timelines of a trace (the
// plain-text Vampir-view counterpart).
func RenderTimeline(w io.Writer, tr *Trace, opt TimelineOptions) error {
	return trace.RenderTimeline(w, tr, opt)
}

// Utilization is a per-thread share-of-time summary of a trace.
type Utilization = trace.Utilization

// ComputeUtilization derives per-thread utilization from a trace.
func ComputeUtilization(tr *Trace) []Utilization { return trace.ComputeUtilization(tr) }

// Finding is one automatically diagnosed tasking inefficiency.
type Finding = analyze.Finding

// FindingKind identifies the diagnosis pattern behind a Finding or a
// classified wait state.
type FindingKind = analyze.Kind

// AnalyzeReport diagnoses tasking inefficiencies in a report using the
// paper's Section III patterns (small tasks, creation overhead, single
// creator, barrier waiting, task shortage) with default thresholds.
func AnalyzeReport(r *Report) []Finding {
	return analyze.Analyze(r, analyze.Thresholds{})
}

// FormatFindings renders findings as text.
func FormatFindings(w io.Writer, fs []Finding) { analyze.Format(w, fs) }

// If models the OpenMP if(expr) task clause.
func If(expr bool) TaskOpt { return omp.If(expr) }

// Final models the OpenMP final(expr) task clause.
func Final(expr bool) TaskOpt { return omp.Final(expr) }

// Untied models the untied clause; tasks are demoted to tied, the
// paper's Section IV-D work-around.
func Untied() TaskOpt { return omp.Untied() }
