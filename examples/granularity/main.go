// granularity demonstrates the paper's central optimization message —
// "the appropriate granularity of tasks is essential" — by sweeping the
// cut-off depth of the fib benchmark and reporting, per depth:
//
//   - the number of tasks created,
//   - the mean task execution time from the task profile,
//   - the kernel runtime,
//
// showing the sweet spot between load balance (enough tasks) and
// management overhead (not too many).
//
// Run: go run ./examples/granularity [-n 27] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"time"

	scorep "repro"
)

var (
	parR  = scorep.RegisterRegion("granularity.parallel", "granularity/main.go", 1, scorep.RegionParallel)
	taskR = scorep.RegisterRegion("granularity.task", "granularity/main.go", 2, scorep.RegionTask)
	twR   = scorep.RegisterRegion("granularity.taskwait", "granularity/main.go", 3, scorep.RegionTaskwait)
)

func fibSerial(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func fibTasks(t *scorep.Thread, n, depth, cutoff int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	if depth >= cutoff {
		*out = fibSerial(n)
		return
	}
	var a, b uint64
	t.NewTask(taskR, func(c *scorep.Thread) { fibTasks(c, n-1, depth+1, cutoff, &a) })
	t.NewTask(taskR, func(c *scorep.Thread) { fibTasks(c, n-2, depth+1, cutoff, &b) })
	t.Taskwait(twR)
	*out = a + b
}

func main() {
	n := flag.Int("n", 27, "fib argument")
	threads := flag.Int("threads", 8, "threads")
	flag.Parse()

	fmt.Printf("fib(%d) cut-off sweep, %d threads\n", *n, *threads)
	fmt.Printf("%-8s %12s %14s %14s %12s\n", "cutoff", "tasks", "mean task", "kernel time", "result")

	for cutoff := 1; cutoff <= *n; cutoff += 3 {
		s := scorep.NewSession() // one measurement environment per sweep point
		var result uint64
		start := time.Now()
		s.Parallel(*threads, parR, func(t *scorep.Thread) {
			if t.ID == 0 {
				fibTasks(t, *n, 0, cutoff, &result)
			}
		})
		elapsed := time.Since(start)
		res, _ := s.End()
		tree := res.Report().TaskTree("granularity.task")
		var count int64
		var mean float64
		if tree != nil {
			count = tree.Dur.Count
			mean = tree.Dur.Mean()
		}
		fmt.Printf("%-8d %12d %13.2fµs %14v %12d\n", cutoff, count, mean/1e3, elapsed, result)
		if count > 2_000_000 {
			fmt.Println("(stopping sweep: task counts explode beyond this depth)")
			break
		}
	}
	fmt.Println("\nReading: too few tasks -> poor balance; too many -> management overhead")
	fmt.Println("dominates (the paper's 'very small tasks may cause high overhead').")
}
