// imbalance shows how to read stub nodes — the paper's mechanism for
// separating useful task execution from waiting/management time inside
// barriers (Fig. 5: "113s of task execution happened inside the barrier.
// 103s time is still spent inside the barrier not executing a task").
//
// A deliberately imbalanced workload (one thread creates a few large
// tasks) is profiled; the per-thread breakdown of the implicit barrier
// and its stub child shows which threads worked and which waited.
//
// Run: go run ./examples/imbalance
package main

import (
	"fmt"
	"os"

	scorep "repro"
)

var (
	parR  = scorep.RegisterRegion("imbalance.parallel", "imbalance/main.go", 1, scorep.RegionParallel)
	taskR = scorep.RegisterRegion("imbalance.task", "imbalance/main.go", 2, scorep.RegionTask)
)

func burn(units int) int {
	s := 0
	for i := 0; i < units*1_000_000; i++ {
		s += i % 13
	}
	return s
}

func main() {
	const threads = 4
	s := scorep.NewSession()

	sink := 0
	s.Parallel(threads, parR, func(t *scorep.Thread) {
		if t.ID != 0 {
			return // everything happens in the implicit barrier
		}
		// Three large tasks for four threads: one thread must idle.
		for i := 0; i < 3; i++ {
			t.NewTask(taskR, func(c *scorep.Thread) { sink += burn(40) })
		}
	})
	res, _ := s.End()
	rep := res.Report()

	if err := scorep.RenderReport(os.Stdout, rep, scorep.RenderOptions{PerThread: true}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Programmatic reading of the imbalance: per-thread barrier time
	// split into task execution (stub) and waiting (exclusive).
	barrier := rep.Main.FindPath("imbalance.parallel", "imbalance.parallel (implicit barrier)")
	if barrier == nil {
		fmt.Fprintln(os.Stderr, "no implicit barrier node found")
		os.Exit(1)
	}
	stub := barrier.Find("task imbalance.task")
	fmt.Println("\nper-thread barrier decomposition (paper Fig. 5 reading):")
	fmt.Printf("%-8s %16s %16s\n", "thread", "task execution", "waiting")
	for tid := 0; tid < threads; tid++ {
		var taskNs int64
		if stub != nil {
			taskNs = stub.PerThreadDur[tid].Sum
		}
		waitNs := barrier.ExclusiveSumThread(tid)
		fmt.Printf("%-8d %15.1fms %15.1fms\n", tid, float64(taskNs)/1e6, float64(waitNs)/1e6)
	}
	fmt.Println("\nThreads with near-zero task time and large waiting time are starved:")
	fmt.Println("too few (or too large) tasks — the load-balancing limit of large tasks.")
}
