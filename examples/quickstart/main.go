// Quickstart: instrument a small task program with the Session API and
// print the resulting task-aware profile.
//
// The program mirrors the paper's running example (Figs. 6-11): an
// implicit task creates explicit tasks, the tasks suspend at taskwaits,
// and the profile separates waiting time from task-execution time via
// stub nodes while merging all instances of a construct into one task
// tree. The whole measurement lifecycle is three calls: NewSession,
// End, Report.
//
// Run: go run ./examples/quickstart [-exp dir]
package main

import (
	"flag"
	"fmt"
	"os"

	scorep "repro"
)

var (
	parRegion  = scorep.RegisterRegion("example.parallel", "quickstart/main.go", 28, scorep.RegionParallel)
	taskRegion = scorep.RegisterRegion("example.task", "quickstart/main.go", 29, scorep.RegionTask)
	twRegion   = scorep.RegisterRegion("example.taskwait", "quickstart/main.go", 30, scorep.RegionTaskwait)
	workRegion = scorep.RegisterRegion("busywork", "quickstart/main.go", 31, scorep.RegionFunction)
)

// busywork burns deterministic CPU so the profile has visible times.
func busywork(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i % 7
	}
	return s
}

func main() {
	expDir := flag.String("exp", "", "also save an experiment archive to this directory")
	flag.Parse()

	// 1. Create the measurement environment. Profiling is on by default;
	//    add scorep.WithTracing() for an event trace, or use
	//    scorep.NewSessionFromEnv() to configure via SCOREP_* variables.
	var opts []scorep.Option
	if *expDir != "" {
		opts = append(opts, scorep.WithExperimentDirectory(*expDir))
	}
	s := scorep.NewSession(opts...)

	// 2. Run a parallel region; thread 0 creates tasks of one construct,
	//    each task does instrumented work and a nested child + taskwait.
	sink := 0
	s.Parallel(4, parRegion, func(t *scorep.Thread) {
		if t.ID != 0 {
			return // other threads pick up tasks in the implicit barrier
		}
		for i := 0; i < 64; i++ {
			t.NewTask(taskRegion, func(c *scorep.Thread) {
				scorep.InstrumentFunction(c, workRegion, func() {
					sink += busywork(200_000)
				})
				// A nested child task; the taskwait is the scheduling
				// point where this instance may be suspended.
				c.NewTask(taskRegion, func(gc *scorep.Thread) {
					scorep.InstrumentFunction(gc, workRegion, func() {
						sink += busywork(50_000)
					})
				})
				c.Taskwait(twRegion)
			})
		}
		t.Taskwait(twRegion)
	})

	// 3. End the session (this also saves the experiment archive when
	//    -exp is given) and render the aggregated report.
	res, err := s.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report := res.Report()
	if err := scorep.RenderReport(os.Stdout, report, scorep.RenderOptions{}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 4. Read the headline numbers programmatically.
	tree := report.TaskTree("example.task")
	fmt.Printf("\ntask instances: %d, mean execution time: %.1fµs (suspensions subtracted)\n",
		tree.Dur.Count, tree.Dur.Mean()/1e3)
	fmt.Printf("max concurrently active task instances per thread: %d\n", report.MaxConcurrent)
	if *expDir != "" {
		fmt.Printf("experiment archive written to %s (inspect with scorep-report -exp)\n", *expDir)
	}
}
