// flightrecorder demonstrates crash-safe always-on measurement: the
// session records into a flight-recorder ring that retains only the
// last few sealed chunks per thread (O(1) memory however long the run),
// and the retained window can be dumped as a complete, analyzable
// experiment at any moment — by API call, by OS signal, or by the
// panic-salvage wrapper when the measured code crashes.
//
// While it runs, send the process SIGUSR1 (`kill -USR1 <pid>`) and a
// dump directory flight-NNN appears under the experiment directory;
// afterwards the program takes one explicit dump itself. Every dump is
// a normal experiment directory: inspect it with
//
//	scorep-analyze -exp <dir>/flight-001 -bottlenecks
//	scorep-report <dir>/flight-001
//
// and the reported dropped-events/chunks counts say how much history
// the ring evicted before the dump.
//
// Run: go run ./examples/flightrecorder [-exp dir] [-dur 3s] [-panic]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	scorep "repro"
)

var (
	parR  = scorep.RegisterRegion("flight.parallel", "flightrecorder/main.go", 1, scorep.RegionParallel)
	taskR = scorep.RegisterRegion("flight.task", "flightrecorder/main.go", 2, scorep.RegionTask)
	twR   = scorep.RegisterRegion("flight.taskwait", "flightrecorder/main.go", 3, scorep.RegionTaskwait)
	workR = scorep.RegisterRegion("flight.busywork", "flightrecorder/main.go", 4, scorep.RegionFunction)
)

// busywork burns deterministic CPU so the trace has visible durations.
func busywork(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i % 7
	}
	return s
}

// round runs one instrumented parallel region: thread 0 creates a batch
// of tasks, the team drains them in the implicit barrier.
func round(s *scorep.Session, threads, tasks int, sink *int) {
	s.Parallel(threads, parR, func(t *scorep.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < tasks; i++ {
			t.NewTask(taskR, func(c *scorep.Thread) {
				scorep.InstrumentFunction(c, workR, func() {
					*sink += busywork(20_000)
				})
			})
		}
		t.Taskwait(twR)
	})
}

func main() {
	expDir := flag.String("exp", "flight-demo", "experiment directory (dumps land in <dir>/flight-NNN)")
	dur := flag.Duration("dur", 3*time.Second, "how long to keep recording (send SIGUSR1 meanwhile)")
	threads := flag.Int("threads", 4, "threads per parallel region")
	ring := flag.Int("ring", 4, "retained sealed chunks per thread")
	chunk := flag.Int("chunk", 256, "events per chunk")
	doPanic := flag.Bool("panic", false, "crash the workload to demonstrate the panic-salvage dump")
	flag.Parse()

	// Always-on measurement: the ring keeps the last ring*chunk events
	// per thread, everything older is evicted (and counted as dropped).
	s := scorep.NewSession(
		scorep.WithFlightRecorder(*ring),
		scorep.WithFlightChunkEvents(*chunk),
		scorep.WithExperimentDirectory(*expDir),
	)
	fmt.Printf("recording with flight recorder (ring %dx%d) for %s — pid %d, try: kill -USR1 %d\n",
		*ring, *chunk, *dur, os.Getpid(), os.Getpid())

	sink := 0
	if *doPanic {
		// The salvage wrapper dumps the window that led up to the crash
		// before re-panicking; the outer recover just keeps the demo alive.
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Printf("workload panicked (%v) — crash window dumped\n", r)
				}
			}()
			defer s.DumpOnPanic("")
			round(s, *threads, 64, &sink)
			panic("simulated crash in measured code")
		}()
	}

	deadline := time.Now().Add(*dur)
	for time.Now().Before(deadline) {
		round(s, *threads, 64, &sink)
	}

	// Live introspection: what do the rings hold right now, what was
	// evicted, how many dumps have triggers taken so far? The same JSON
	// is served by s.FlightRecorderHandler() and the expvar
	// "scorep.flightrecorder".
	st := s.FlightRecorderStats()
	fmt.Printf("live: retained-events=%d dropped-events=%d dropped-chunks=%d dumps-so-far=%d\n",
		st.RetainedEvents, st.DroppedEvents, st.DroppedChunks, st.Dumps)
	if st.LastDumpDir != "" {
		fmt.Printf("last dump: %s (trigger=%s)\n", st.LastDumpDir, st.LastTrigger)
	}

	// An explicit dump: a complete experiment directory with the current
	// window, readable by scorep-analyze / scorep-report / scorep-convert.
	dir, err := s.DumpFlightRecorder("")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dumped window to %s (scorep-analyze -exp %s -bottlenecks)\n", dir, dir)

	res, err := s.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if fr := res.FlightRecorder(); fr != nil {
		fmt.Printf("final window: retained-events=%d dropped-events=%d dropped-chunks=%d (sink %d)\n",
			fr.RetainedEvents, fr.DroppedEvents, fr.DroppedChunks, sink)
	}
}
