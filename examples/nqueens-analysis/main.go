// nqueens-analysis reproduces the paper's Section VI workflow on the
// nqueens code:
//
//  1. profile the non-cut-off version and observe that most task time is
//     spent creating child tasks (mean task time vs. mean creation time),
//  2. compare region exclusive times across thread counts (Table III),
//  3. split the task statistics by recursion depth with parameter
//     instrumentation (Table IV) to pick the cut-off level,
//  4. apply the cut-off and measure the speedup.
//
// Run: go run ./examples/nqueens-analysis [-size small] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bots"
	"repro/internal/exp"
)

func main() {
	sizeName := flag.String("size", "small", "input size: tiny|small|medium")
	threads := flag.Int("threads", 4, "threads for the profiling steps")
	flag.Parse()

	size, err := bots.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	cfg := exp.Config{Size: size, Threads: []int{1, 2, 4, 8}, Reps: 1, Warmup: 1}

	fmt.Printf("== Step 1: first impression (profile, %d threads) ==\n", *threads)
	rows1 := exp.Table1TaskGranularity(exp.Config{Size: size}, *threads)
	for _, r := range rows1 {
		if r.Code == "nqueens" {
			fmt.Printf("nqueens: %d task instances, mean exclusive execution %.2fµs\n",
				r.NumTasks, r.MeanTimeNs/1e3)
			fmt.Println("-> many tiny tasks: task management dominates (paper: 0.30µs work vs 0.86µs creation)")
		}
	}

	fmt.Println("\n== Step 2: region times across thread counts (Table III) ==")
	exp.FormatTable3(os.Stdout, exp.Table3NQueensRegions(cfg))
	fmt.Println("-> creation/taskwait/barrier shares grow with threads while task work stays flat:")
	fmt.Println("   runtime-internal task management is the bottleneck.")

	fmt.Println("\n== Step 3: per-depth statistics via parameter instrumentation (Table IV) ==")
	exp.FormatTable4(os.Stdout, exp.Table4NQueensDepth(cfg, *threads))
	fmt.Println("-> top levels contribute few, coarse tasks; deep levels contribute millions of")
	fmt.Println("   tiny ones. A depth-3 cut-off keeps enough parallelism to fill 8 threads.")

	fmt.Println("\n== Step 4: apply the cut-off (Section VI conclusion) ==")
	exp.FormatCaseStudy(os.Stdout, exp.CaseStudyNQueens(cfg, *threads))
}
