// trace-analysis demonstrates the tracing side of the measurement system
// and the analysis the paper's conclusion proposes (§VII): deriving the
// runtime's task dispatch latency — "the time between the enter of the
// last synchronization point and the task switch event" — and the
// "ratio of overall management time to exclusive execution time".
//
// It runs the same workload twice, with coarse and with tiny tasks,
// through a session recording profile and trace simultaneously
// (Score-P's combined mode), and shows the management ratio exploding
// for the tiny tasks while the automatic profile analysis names the
// pattern.
//
// Run: go run ./examples/trace-analysis
package main

import (
	"fmt"
	"os"
	"sync/atomic"

	scorep "repro"
)

var (
	parR  = scorep.RegisterRegion("trace.parallel", "trace-analysis/main.go", 1, scorep.RegionParallel)
	taskR = scorep.RegisterRegion("trace.task", "trace-analysis/main.go", 2, scorep.RegionTask)
	twR   = scorep.RegisterRegion("trace.taskwait", "trace-analysis/main.go", 3, scorep.RegionTaskwait)
)

func run(label string, tasks, workUnits int) {
	// One session records profile and trace simultaneously (Score-P's
	// combined mode; the session wires the tee internally).
	s := scorep.NewSession(scorep.WithTracing())

	var sink atomic.Int64
	s.Parallel(4, parR, func(t *scorep.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < tasks; i++ {
			t.NewTask(taskR, func(*scorep.Thread) {
				s := 0
				for j := 0; j < workUnits; j++ {
					s += j % 7
				}
				sink.Add(int64(s))
			})
		}
		t.Taskwait(twR)
	})
	res, _ := s.End()

	fmt.Printf("== %s: %d tasks x %d work units ==\n", label, tasks, workUnits)
	res.TraceAnalysis().Format(os.Stdout)

	fmt.Println("\nautomatic profile diagnosis:")
	scorep.FormatFindings(os.Stdout, res.Findings())
	fmt.Println()
}

// runStreaming repeats the tiny-task workload with the bounded-memory
// pipeline: events stream through per-thread chunks into a binary
// otf2-style archive as they happen (nothing accumulates in RAM), and
// the analysis then replays the archive in O(chunk) memory — the
// configuration for traces far larger than memory.
func runStreaming(tasks, workUnits int) {
	f, err := os.CreateTemp("", "trace-*.otf2")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())

	aw := scorep.NewTraceArchiveWriter(f)
	s := scorep.NewSession(scorep.WithoutProfiling(), scorep.WithStreamingTrace(aw, 1024))

	var sink atomic.Int64
	s.Parallel(4, parR, func(t *scorep.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < tasks; i++ {
			t.NewTask(taskR, func(*scorep.Thread) {
				s := 0
				for j := 0; j < workUnits; j++ {
					s += j % 7
				}
				sink.Add(int64(s))
			})
		}
		t.Taskwait(twR)
	})
	// End flushes the remaining partial chunks and surfaces the first
	// sink write error; the caller still owns (and closes) the sink.
	if _, err := s.End(); err != nil {
		panic(err)
	}
	if err := aw.Close(); err != nil {
		panic(err)
	}

	fi, err := f.Stat()
	if err != nil {
		panic(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		panic(err)
	}
	a, err := scorep.AnalyzeTraceArchive(f)
	f.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("== streamed to disk: %d tasks, archive %d bytes ==\n", tasks, fi.Size())
	a.Format(os.Stdout)
	fmt.Println()
}

func main() {
	run("coarse tasks", 64, 2_000_000)
	run("tiny tasks", 50_000, 40)
	runStreaming(50_000, 40)
	fmt.Println("Reading: with tiny tasks the dispatch latency rivals the execution time")
	fmt.Println("(management/execution ratio near or above 1) — the paper's 'very small")
	fmt.Println("tasks may cause high overhead' issue, now visible without a timeline GUI.")
	fmt.Println("The streamed run shows the same metrics derived without ever holding the")
	fmt.Println("trace in memory: recording and analysis both run in bounded space.")
}
