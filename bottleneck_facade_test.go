package scorep_test

import (
	"reflect"
	"testing"
	"time"

	scorep "repro"
)

// bottleneckWorkload records a two-thread workload with a cross-thread
// spawn (thread 0 creates, the thief steals) under a deterministic
// clock, so every run produces the identical trace.
func bottleneckWorkload(s *scorep.Session, par, task, tw *scorep.Region) {
	s.Parallel(2, par, func(th *scorep.Thread) {
		if th.ID == 0 {
			for i := 0; i < 30; i++ {
				th.NewTask(task, func(*scorep.Thread) {})
			}
		}
		th.Taskwait(tw)
	})
}

// TestResultsBottlenecks checks the session facade: Bottlenecks is
// derived from the recorded trace, cached, identical to the direct
// analysis at every worker count, and nil without an in-memory trace.
func TestResultsBottlenecks(t *testing.T) {
	par := scorep.RegisterRegion("bf.parallel", "bottleneck_facade_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion("bf.task", "bottleneck_facade_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion("bf.taskwait", "bottleneck_facade_test.go", 3, scorep.RegionTaskwait)

	s := scorep.NewSession(scorep.WithTracing(), scorep.WithClock(countingClock()))
	bottleneckWorkload(s, par, task, tw)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	b := res.Bottlenecks()
	if b == nil || b.Threads != 2 {
		t.Fatalf("Bottlenecks = %+v, want a 2-thread analysis", b)
	}
	if got := res.Bottlenecks(); got != b {
		t.Fatal("Bottlenecks not cached")
	}
	for _, workers := range []int{1, 4} {
		if want := scorep.AnalyzeBottlenecks(res.Trace(), workers); !reflect.DeepEqual(b, want) {
			t.Fatalf("Bottlenecks != AnalyzeBottlenecks(trace, %d)", workers)
		}
	}

	// No in-memory trace (profiling-only session): nil, not a panic.
	p := scorep.NewSession()
	p.Parallel(1, par, func(*scorep.Thread) {})
	pres, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	if pres.Bottlenecks() != nil {
		t.Fatal("Bottlenecks on a non-tracing session should be nil")
	}
}

// TestExperimentBottlenecks round-trips the analysis through an
// experiment archive: the out-of-core result over the saved trace must
// equal the live in-memory one, windowed queries must match filtering,
// and the accessor must cache.
func TestExperimentBottlenecks(t *testing.T) {
	par := scorep.RegisterRegion("be.parallel", "bottleneck_facade_test.go", 10, scorep.RegionParallel)
	task := scorep.RegisterRegion("be.task", "bottleneck_facade_test.go", 11, scorep.RegionTask)
	tw := scorep.RegisterRegion("be.taskwait", "bottleneck_facade_test.go", 12, scorep.RegionTaskwait)

	dir := t.TempDir()
	s := scorep.NewSession(scorep.WithTracing(), scorep.WithClock(countingClock()),
		scorep.WithExperimentDirectory(dir))
	bottleneckWorkload(s, par, task, tw)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	want := res.Bottlenecks()

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exp.Bottlenecks()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("experiment bottleneck analysis differs from live analysis:\nlive: %+v\nexp:  %+v", want, got)
	}
	if again, _ := exp.Bottlenecks(); again != got {
		t.Fatal("Experiment.Bottlenecks not cached")
	}

	// A windowed query over the archive equals analyzing the filtered
	// in-memory trace.
	mid := (want.StartTime + want.EndTime) / 2
	q := scorep.TraceQuery{Windowed: true, MinTime: want.StartTime, MaxTime: mid}
	qgot, _, err := exp.BottlenecksQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if qwant := scorep.AnalyzeBottlenecks(q.Filter(res.Trace()), 1); !reflect.DeepEqual(qgot, qwant) {
		t.Fatal("BottlenecksQuery != AnalyzeBottlenecks(filtered trace)")
	}
	if len(exp.Warnings()) != 0 {
		t.Fatalf("clean experiment produced warnings: %v", exp.Warnings())
	}
}

// TestFleetBottlenecks streams two sessions into an in-process daemon
// and checks the facade's fleet summary against the per-shard analyses:
// every kind total is the sum over shards, the worst shard carries the
// max, and the longest critical path is the max across shards. The
// two-thread workload's schedule (who steals what) varies run to run,
// so the assertions are built from the shards themselves rather than a
// separately recorded reference.
func TestFleetBottlenecks(t *testing.T) {
	par := scorep.RegisterRegion("bfl.parallel", "bottleneck_facade_test.go", 20, scorep.RegionParallel)
	task := scorep.RegisterRegion("bfl.task", "bottleneck_facade_test.go", 21, scorep.RegionTask)
	tw := scorep.RegisterRegion("bfl.taskwait", "bottleneck_facade_test.go", 22, scorep.RegionTaskwait)

	srv, dir, addr := startFleetDaemon(t)
	start := time.Now()
	for _, id := range []string{"alpha", "beta"} {
		s := scorep.NewSession(
			scorep.WithRemoteTrace(addr),
			scorep.WithRemoteTraceStream(id),
			scorep.WithoutProfiling(),
			scorep.WithClock(countingClock()))
		bottleneckWorkload(s, par, task, tw)
		if _, err := s.End(); err != nil {
			t.Fatalf("session %s: %v", id, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var shards []scorep.TraceShard
	for _, st := range srv.Streams() {
		shards = append(shards, scorep.TraceShard{
			File: st.File, Stream: st.ID, Bytes: st.Bytes,
			DroppedEvents: st.DroppedEvents, Complete: st.Complete,
		})
	}
	if err := scorep.SaveFleetExperiment(dir, time.Since(start), shards); err != nil {
		t.Fatal(err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Per-shard ground truth straight off the shard archives.
	wantKind := map[scorep.FindingKind]int64{}
	worstKind := map[scorep.FindingKind]int64{}
	var longest int64
	analyses := map[string]*scorep.BottleneckAnalysis{}
	for i, sh := range exp.TraceShards() {
		a, err := exp.ShardBottlenecks(i)
		if err != nil {
			t.Fatal(err)
		}
		if a == nil || a.Threads != 2 {
			t.Fatalf("shard %s bottleneck analysis = %+v, want 2 threads", sh.Stream, a)
		}
		if again, _ := exp.ShardBottlenecks(i); again != a {
			t.Fatalf("shard %s bottleneck analysis not cached", sh.Stream)
		}
		perShard := map[scorep.FindingKind]int64{}
		for _, ws := range a.WaitStates {
			perShard[ws.Kind] += ws.Time
		}
		for k, tot := range perShard {
			wantKind[k] += tot
			if tot > worstKind[k] {
				worstKind[k] = tot
			}
		}
		if a.CriticalPath.Length > longest {
			longest = a.CriticalPath.Length
		}
		analyses[sh.Stream] = a
	}
	if longest <= 0 {
		t.Fatalf("no shard produced a critical path (lengths from %d shard(s))", len(analyses))
	}

	fleet, err := exp.FleetBottlenecks()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shards != 2 {
		t.Fatalf("fleet.Shards = %d, want 2", fleet.Shards)
	}
	gotKind := map[scorep.FindingKind]int64{}
	for _, kt := range fleet.Kinds {
		gotKind[kt.Kind] = kt.Time
		if kt.WorstTime != worstKind[kt.Kind] {
			t.Fatalf("kind %v worst-shard time = %d, want max per-shard total %d", kt.Kind, kt.WorstTime, worstKind[kt.Kind])
		}
	}
	if !reflect.DeepEqual(gotKind, wantKind) {
		t.Fatalf("fleet kind totals = %v, want per-shard sums %v", gotKind, wantKind)
	}
	if fleet.LongestPathLength != longest {
		t.Fatalf("fleet longest path = %d, want max shard path %d", fleet.LongestPathLength, longest)
	}
	// The facade summary must be exactly the fleet merge of the shard
	// analyses keyed by stream id.
	if want := scorep.MergeBottleneckAnalyses(analyses); !reflect.DeepEqual(fleet, want) {
		t.Fatalf("FleetBottlenecks = %+v, want MergeBottleneckAnalyses of the shards %+v", fleet, want)
	}
}
