// Allocation-regression tests for the per-event hot path: in steady
// state (pools warm, caches populated, chunk buffers at capacity) no
// event may allocate — the zero-alloc contract behind the overhead
// numbers in doc.go's "Overhead" section and the scorep-bench gate in
// CI.
package scorep_test

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/pomp"
	"repro/internal/region"
	"repro/internal/trace"
)

type zeroAllocSink struct{}

func (zeroAllocSink) WriteEvents(int, []trace.Event) error { return nil }

func zeroAllocNopTask(*omp.Thread) {}

func zeroAllocNopFn() {}

// zeroAllocRegions interns one workload's regions in a fresh registry.
type zeroAllocRegions struct {
	par, work, task, tw *region.Region
}

func newZeroAllocRegions(reg *region.Registry) zeroAllocRegions {
	return zeroAllocRegions{
		par:  reg.Register("za.par", "alloc.go", 1, region.Parallel),
		work: reg.Register("za.work", "alloc.go", 2, region.UserFunction),
		task: reg.Register("za.task", "alloc.go", 3, region.Task),
		tw:   reg.Register("za.tw", "alloc.go", 4, region.Taskwait),
	}
}

// assertZeroAllocs runs the steady-state probes on one listener
// configuration inside a single-thread parallel region.
func assertZeroAllocs(t *testing.T, cfg string, l omp.Listener, reg *region.Registry, rs zeroAllocRegions) {
	t.Helper()
	rt := omp.NewRuntimeWithRegistry(l, reg)
	rt.Parallel(1, rs.par, func(th *omp.Thread) {
		// Warm every path this test measures: call-tree nodes, the
		// create-region cache, task/instance pools, deque and
		// child-entry capacity, and (streaming) chunk buffers across
		// several flushes.
		for i := 0; i < 1024; i++ {
			pomp.Function(th, rs.work, zeroAllocNopFn)
			th.NewTask(rs.task, zeroAllocNopTask, omp.If(false))
			th.NewTask(rs.task, zeroAllocNopTask)
			if i%32 == 31 {
				th.Taskwait(rs.tw)
			}
		}
		th.Taskwait(rs.tw)

		if a := testing.AllocsPerRun(512, func() {
			pomp.Function(th, rs.work, zeroAllocNopFn)
		}); a != 0 {
			t.Errorf("%s: steady-state Enter/Exit allocates %v/op, want 0", cfg, a)
		}
		if a := testing.AllocsPerRun(512, func() {
			th.NewTask(rs.task, zeroAllocNopTask, omp.If(false))
		}); a != 0 {
			t.Errorf("%s: undeferred TaskBegin/TaskEnd allocates %v/op, want 0", cfg, a)
		}
		n := 0
		if a := testing.AllocsPerRun(512, func() {
			th.NewTask(rs.task, zeroAllocNopTask)
			n++
			if n%32 == 0 {
				th.Taskwait(rs.tw)
			}
		}); a != 0 {
			t.Errorf("%s: deferred spawn+execute allocates %v/op, want 0", cfg, a)
		}
		th.Taskwait(rs.tw)
	})
}

// TestHotPathZeroAllocs asserts the zero-alloc contract for the
// profiling listener alone, the streaming trace recorder alone
// (amortized over chunk flushes), and the canonical fused
// profiling+tracing Tee.
func TestHotPathZeroAllocs(t *testing.T) {
	t.Run("profile", func(t *testing.T) {
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		m := measure.NewWithClock(clock.NewSystem(), reg)
		assertZeroAllocs(t, "profile", m, reg, rs)
		m.Finish()
	})
	t.Run("stream-trace", func(t *testing.T) {
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		rec := trace.NewStreamingRecorder(clock.NewSystem(), zeroAllocSink{}, 256)
		assertZeroAllocs(t, "stream-trace", rec, reg, rs)
		rec.Finish()
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("flight-trace", func(t *testing.T) {
		// Ring 4 x 64 events: 1024 warmup iterations fill the ring many
		// times over, so the probes measure steady-state eviction — the
		// sealed chunk swaps into the ring and the evicted chunk's
		// backing array is reused, with no allocation per event.
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		rec := trace.NewFlightRecorder(clock.NewSystem(), 4, 64)
		assertZeroAllocs(t, "flight-trace", rec, reg, rs)
		rec.Finish()
	})
	t.Run("fused-profile+flight", func(t *testing.T) {
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, reg)
		rec := trace.NewFlightRecorder(clk, 4, 64)
		assertZeroAllocs(t, "fused-profile+flight", trace.NewTee(m, rec), reg, rs)
		m.Finish()
		rec.Finish()
	})
	t.Run("fused-profile+trace", func(t *testing.T) {
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, reg)
		rec := trace.NewStreamingRecorder(clk, zeroAllocSink{}, 256)
		assertZeroAllocs(t, "fused-profile+trace", trace.NewTee(m, rec), reg, rs)
		m.Finish()
		rec.Finish()
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fused-profile+filter+trace", func(t *testing.T) {
		reg := region.NewRegistry()
		rs := newZeroAllocRegions(reg)
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, reg)
		f := measure.NewFilter(m, "zz_never_*", "zz_nomatch")
		rec := trace.NewStreamingRecorder(clk, zeroAllocSink{}, 256)
		assertZeroAllocs(t, "fused-profile+filter+trace", trace.NewTee(f, rec), reg, rs)
		m.Finish()
		rec.Finish()
	})
}
