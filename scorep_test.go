package scorep_test

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	scorep "repro"
)

// TestPublicAPIEndToEnd exercises the documented quickstart flow through
// the facade only: runtime, measurement, instrumentation, report,
// serialization.
func TestPublicAPIEndToEnd(t *testing.T) {
	par := scorep.RegisterRegion("api.parallel", "api_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion("api.task", "api_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion("api.taskwait", "api_test.go", 3, scorep.RegionTaskwait)
	work := scorep.RegisterRegion("api.work", "api_test.go", 4, scorep.RegionFunction)

	m := scorep.NewMeasurement()
	rt := scorep.NewRuntime(m)

	var done atomic.Int64
	rt.Parallel(4, par, func(th *scorep.Thread) {
		if th.ID != 0 {
			return
		}
		for i := 0; i < 32; i++ {
			i := i
			th.NewTask(task, func(c *scorep.Thread) {
				scorep.ParameterInt(c, "bucket", int64(i%4))
				scorep.InstrumentFunction(c, work, func() {
					s := 0
					for j := 0; j < 1000; j++ {
						s += j
					}
					_ = s
					done.Add(1)
				})
			})
		}
		th.Taskwait(tw)
	})
	if done.Load() != 32 {
		t.Fatalf("tasks done = %d", done.Load())
	}
	m.Finish()
	rep := scorep.AggregateReport(m.Locations())

	tree := rep.TaskTree("api.task")
	if tree == nil || tree.Dur.Count != 32 {
		t.Fatalf("task tree wrong: %+v", tree)
	}

	var text bytes.Buffer
	if err := scorep.RenderReport(&text, rep, scorep.RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "api.task") {
		t.Error("render missing task construct")
	}

	var js bytes.Buffer
	if err := scorep.WriteReportJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	back, err := scorep.ReadReportJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	if back.TaskTree("api.task") == nil || back.TaskTree("api.task").Dur.Count != 32 {
		t.Error("JSON round trip lost task tree")
	}

	var csv bytes.Buffer
	if err := scorep.WriteReportCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "api.work") {
		t.Error("CSV missing instrumented function")
	}
}

// TestTaskClausesThroughFacade checks If/Final/Untied re-exports.
func TestTaskClausesThroughFacade(t *testing.T) {
	par := scorep.RegisterRegion("api2.parallel", "api_test.go", 10, scorep.RegionParallel)
	task := scorep.RegisterRegion("api2.task", "api_test.go", 11, scorep.RegionTask)

	rt := scorep.NewRuntime(nil)
	ran := 0
	rt.Parallel(1, par, func(th *scorep.Thread) {
		th.NewTask(task, func(*scorep.Thread) { ran++ }, scorep.If(false))
		if ran != 1 {
			t.Error("if(false) task not undeferred")
		}
		th.NewTask(task, func(c *scorep.Thread) {
			c.NewTask(task, func(*scorep.Thread) { ran++ })
			if ran != 2 {
				t.Error("final-context child not inline")
			}
		}, scorep.Final(true), scorep.Untied())
	})
	if rt.UntiedCount() != 1 {
		t.Errorf("untied demotions = %d", rt.UntiedCount())
	}
}

// TestManualClockMeasurement verifies deterministic measurement through
// the facade clock injection.
func TestManualClockMeasurement(t *testing.T) {
	clk := scorep.NewManualClock(0)
	m := scorep.NewMeasurementWithClock(clk)
	rt := scorep.NewRuntime(m)
	par := scorep.RegisterRegion("api3.parallel", "api_test.go", 20, scorep.RegionParallel)
	work := scorep.RegisterRegion("api3.work", "api_test.go", 21, scorep.RegionFunction)
	rt.Parallel(1, par, func(th *scorep.Thread) {
		scorep.InstrumentFunction(th, work, func() { clk.Advance(123) })
	})
	m.Finish()
	rep := scorep.AggregateReport(m.Locations())
	n := rep.Main.FindPath("api3.parallel", "api3.work")
	if n == nil || n.Dur.Sum != 123 {
		t.Fatalf("manual-clock work time wrong: %+v", n)
	}
}
