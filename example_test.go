package scorep_test

import (
	"fmt"
	"os"

	scorep "repro"
)

// ExampleNewSession shows the whole measurement lifecycle: configure a
// session, run instrumented code on its runtime, End it, read the
// results.
func ExampleNewSession() {
	par := scorep.RegisterRegion("exdoc.parallel", "example_test.go", 10, scorep.RegionParallel)
	task := scorep.RegisterRegion("exdoc.task", "example_test.go", 11, scorep.RegionTask)
	tw := scorep.RegisterRegion("exdoc.taskwait", "example_test.go", 12, scorep.RegionTaskwait)

	s := scorep.NewSession() // profiling on, tracing off: Score-P's defaults
	s.Parallel(2, par, func(t *scorep.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < 8; i++ {
			t.NewTask(task, func(*scorep.Thread) { /* work */ })
		}
		t.Taskwait(tw)
	})
	res, err := s.End()
	if err != nil {
		fmt.Println("end:", err)
		return
	}

	tree := res.Report().TaskTree("exdoc.task")
	fmt.Printf("task instances: %d\n", tree.Dur.Count)
	fmt.Printf("tasks created: %d\n", res.TeamStats().TasksCreated)
	// res.SaveExperiment("scorep-run") would archive profile+meta on disk.

	// Output:
	// task instances: 8
	// tasks created: 8
}

// ExampleNewSession_tracing records profile and event trace
// simultaneously and derives the paper's §VII trace metrics.
func ExampleNewSession_tracing() {
	par := scorep.RegisterRegion("extr.parallel", "example_test.go", 20, scorep.RegionParallel)
	task := scorep.RegisterRegion("extr.task", "example_test.go", 21, scorep.RegionTask)
	tw := scorep.RegisterRegion("extr.taskwait", "example_test.go", 22, scorep.RegionTaskwait)

	s := scorep.NewSession(scorep.WithTracing())
	s.Parallel(2, par, func(t *scorep.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < 16; i++ {
			t.NewTask(task, func(*scorep.Thread) { /* work */ })
		}
		t.Taskwait(tw)
	})
	res, err := s.End()
	if err != nil {
		fmt.Println("end:", err)
		return
	}

	a := res.TraceAnalysis()
	fmt.Printf("task fragments: %d\n", a.TaskExecution.Count)
	fmt.Printf("trace recorded: %v\n", res.Trace().NumEvents() > 0)

	// Output:
	// task fragments: 16
	// trace recorded: true
}

// ExampleNewSessionFromEnv configures the measurement environment the
// way Score-P instruments do: through SCOREP_* environment variables.
func ExampleNewSessionFromEnv() {
	os.Setenv("SCOREP_ENABLE_PROFILING", "false")
	os.Setenv("SCOREP_ENABLE_TRACING", "true")
	os.Setenv("SCOREP_TASK_SCHEDULER", "work-stealing")
	defer os.Unsetenv("SCOREP_ENABLE_PROFILING")
	defer os.Unsetenv("SCOREP_ENABLE_TRACING")
	defer os.Unsetenv("SCOREP_TASK_SCHEDULER")

	s, err := scorep.NewSessionFromEnv()
	if err != nil {
		fmt.Println("env:", err)
		return
	}
	fmt.Printf("profiling: %v\n", s.Profiling())
	fmt.Printf("tracing: %v\n", s.Tracing())
	fmt.Printf("scheduler: %v\n", s.Scheduler())
	// With SCOREP_EXPERIMENT_DIRECTORY set, s.End() would also save the
	// experiment archive there.

	// Output:
	// profiling: false
	// tracing: true
	// scheduler: work-stealing
}
