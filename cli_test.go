package scorep_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds and exercises every cmd/ binary end to
// end: profile a run, save it, render it, diff it, analyze it, and draw
// its timeline. Skipped with -short.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()

	bin := map[string]string{}
	for _, name := range []string{"scorep-bots", "scorep-exp", "scorep-report", "scorep-analyze", "scorep-timeline", "scorep-convert"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bin[name] = out
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin[name], args...)
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, b)
		}
		return string(b)
	}
	// runOut captures stdout only — for byte-identity comparisons that
	// must not see informational stderr notes (e.g. index chunk counts).
	runOut := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin[name], args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\n%s%s", name, args, err, stdout.String(), stderr.String())
		}
		return stdout.String()
	}

	repA := filepath.Join(dir, "a.json")
	repB := filepath.Join(dir, "b.json")
	tracePath := filepath.Join(dir, "t.jsonl")

	// scorep-bots: run, verify, save profiles.
	out := run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "2", "-json", repA)
	if !strings.Contains(out, "verification: OK") {
		t.Errorf("scorep-bots did not verify:\n%s", out)
	}
	if !strings.Contains(out, "TASK TREES") {
		t.Errorf("scorep-bots printed no task trees:\n%s", out)
	}
	run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "4", "-cutoff", "-json", repB)

	// scorep-report: render, CSV, diff.
	out = run("scorep-report", "-in", repA)
	if !strings.Contains(out, "fib.task") {
		t.Errorf("report render missing task construct:\n%s", out)
	}
	out = run("scorep-report", "-in", repA, "-csv")
	if !strings.Contains(out, "tree,path,kind") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	out = run("scorep-report", "-in", repA, "-diff", repB, "-top", "5")
	if !strings.Contains(out, "delta=") {
		t.Errorf("diff output missing deltas:\n%s", out)
	}

	// scorep-exp: one quick table.
	out = run("scorep-exp", "-table", "2", "-size", "tiny")
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "alignment") {
		t.Errorf("scorep-exp table 2 malformed:\n%s", out)
	}

	// scorep-analyze: saved report and live run.
	out = run("scorep-analyze", "-in", repA)
	if !strings.Contains(out, "finding") && !strings.Contains(out, "no tasking inefficiencies") {
		t.Errorf("scorep-analyze produced no verdict:\n%s", out)
	}
	out = run("scorep-analyze", "-code", "fib", "-size", "tiny", "-threads", "2")
	if !strings.Contains(out, "management/execution ratio") {
		t.Errorf("live analyze missing trace metrics:\n%s", out)
	}
	// -json works in every mode: a report input emits its findings in
	// the same envelope the trace modes use.
	out = runOut("scorep-analyze", "-in", repA, "-json")
	if !strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Errorf("scorep-analyze -in -json did not emit a JSON object:\n%s", out)
	}

	// scorep-timeline: live run with save, then re-render from file.
	out = run("scorep-timeline", "-code", "sort", "-size", "tiny", "-threads", "2", "-save", tracePath)
	if !strings.Contains(out, "legend:") {
		t.Errorf("timeline missing legend:\n%s", out)
	}
	out = run("scorep-timeline", "-in", tracePath, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from saved trace failed:\n%s", out)
	}

	// scorep-convert: JSONL -> binary archive -> JSONL round trip with
	// stats; the reconstructed JSONL must be byte-identical and the
	// archive must hit the format's compression target (<= 1/8 the
	// bytes/event of JSONL on a real BOTS trace). fib tiny records
	// ~50k events, enough that the archive's fixed header/definition
	// overhead is irrelevant.
	fibTracePath := filepath.Join(dir, "fib.jsonl")
	archivePath := filepath.Join(dir, "fib.otf2")
	trace2Path := filepath.Join(dir, "fib2.jsonl")
	run("scorep-timeline", "-code", "fib", "-size", "tiny", "-threads", "2", "-save", fibTracePath)
	out = run("scorep-convert", "-in", fibTracePath, "-out", archivePath, "-stats")
	if !strings.Contains(out, "format=otf2") {
		t.Errorf("convert stats missing archive line:\n%s", out)
	}
	run("scorep-convert", "-in", archivePath, "-out", trace2Path)
	a, err := os.ReadFile(fibTracePath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(trace2Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSONL -> archive -> JSONL is not lossless")
	}
	fiJSON, err := os.Stat(fibTracePath)
	if err != nil {
		t.Fatal(err)
	}
	fiBin, err := os.Stat(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	if fiBin.Size()*8 > fiJSON.Size() {
		t.Errorf("archive %d bytes vs JSONL %d bytes: compression below 8x", fiBin.Size(), fiJSON.Size())
	}

	// scorep-timeline and scorep-analyze both consume the archive.
	out = run("scorep-timeline", "-in", archivePath, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from archive failed:\n%s", out)
	}
	out = run("scorep-analyze", "-trace", archivePath)
	if !strings.Contains(out, "management/execution ratio") {
		t.Errorf("streaming analyze of archive failed:\n%s", out)
	}

	// Parallel out-of-core analysis is byte-identical to sequential:
	// the -json outputs at -parallel 1 and -parallel 4 must cmp equal,
	// and the parallel decode path renders the same timeline.
	seqJSON := runOut("scorep-analyze", "-trace", archivePath, "-json", "-parallel", "1")
	parJSON := runOut("scorep-analyze", "-trace", archivePath, "-json", "-parallel", "4")
	if seqJSON != parJSON {
		t.Errorf("parallel analysis JSON differs from sequential:\nseq: %s\npar: %s", seqJSON, parJSON)
	}
	if !strings.Contains(seqJSON, "ManagementRatio") {
		t.Errorf("-json analysis output malformed:\n%s", seqJSON)
	}
	// The bottleneck analysis is deterministic too, and rides the same
	// JSON envelope (its findings are surfaced at the top level).
	seqBN := runOut("scorep-analyze", "-trace", archivePath, "-bottlenecks", "-json", "-parallel", "1")
	parBN := runOut("scorep-analyze", "-trace", archivePath, "-bottlenecks", "-json", "-parallel", "4")
	if seqBN != parBN {
		t.Errorf("parallel bottleneck JSON differs from sequential:\nseq: %s\npar: %s", seqBN, parBN)
	}
	if !strings.Contains(seqBN, `"bottlenecks"`) || !strings.Contains(seqBN, "CriticalPath") ||
		!strings.Contains(seqBN, `"findings"`) {
		t.Errorf("-bottlenecks -json output malformed:\n%s", seqBN)
	}
	out = run("scorep-analyze", "-trace", archivePath, "-bottlenecks")
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "per-thread waits:") {
		t.Errorf("-bottlenecks text output malformed:\n%s", out)
	}
	seqTL := run("scorep-timeline", "-in", archivePath, "-width", "40", "-parallel", "1")
	parTL := run("scorep-timeline", "-in", archivePath, "-width", "40", "-parallel", "4")
	if seqTL != parTL {
		t.Error("timeline rendered from parallel decode differs from sequential")
	}

	// Experiment archive round trip: one scorep-bots run writes the
	// archive, every offline tool reads it back.
	expDir := filepath.Join(dir, "exp-fib")
	expJSON := filepath.Join(dir, "exp-live.json")
	out = run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "2", "-exp", expDir, "-json", expJSON)
	if !strings.Contains(out, "wrote experiment "+expDir) {
		t.Errorf("scorep-bots did not report the experiment:\n%s", out)
	}
	// The archived profile is byte-identical to the live run's -json.
	liveJSON, err := os.ReadFile(expJSON)
	if err != nil {
		t.Fatal(err)
	}
	archivedJSON, err := os.ReadFile(filepath.Join(expDir, "profile.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, archivedJSON) {
		t.Error("experiment profile.json differs from the live report JSON")
	}
	out = run("scorep-report", "-exp", expDir)
	if !strings.Contains(out, "fib.task") {
		t.Errorf("report from experiment missing task construct:\n%s", out)
	}
	out = run("scorep-analyze", "-exp", expDir)
	if !strings.Contains(out, "management/execution ratio") || !strings.Contains(out, "config:") {
		t.Errorf("analyze of experiment incomplete:\n%s", out)
	}
	out = run("scorep-timeline", "-exp", expDir, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from experiment failed:\n%s", out)
	}
	out = run("scorep-convert", "-exp", expDir, "-stats")
	if !strings.Contains(out, "format=otf2") {
		t.Errorf("convert from experiment failed:\n%s", out)
	}

	// Format v2 seekable-archive flows: version up/downgrade round
	// trips, compression, windowed/thread-subset queries and the
	// enriched -stats report.
	v1Path := filepath.Join(dir, "fib-v1.otf2")
	v2Path := filepath.Join(dir, "fib-v2.otf2")
	v1bPath := filepath.Join(dir, "fib-v1b.otf2")
	run("scorep-convert", "-in", archivePath, "-out", v1Path, "-format-version", "1")
	run("scorep-convert", "-in", v1Path, "-out", v2Path)
	run("scorep-convert", "-in", v2Path, "-out", v1bPath, "-format-version", "1")
	// The writer is deterministic, so v1 -> v2 reproduces the original
	// v2 archive byte-for-byte, and v2 -> v1 -> read -> v1 is stable.
	v2New, err := os.ReadFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	v2Orig, err := os.ReadFile(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2New, v2Orig) {
		t.Error("v1 -> v2 upgrade is not byte-identical to the original v2 archive")
	}
	v1A, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v1B, err := os.ReadFile(v1bPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1A, v1B) {
		t.Error("v2 -> v1 downgrade is not byte-identical across conversions")
	}
	// v1 archives stay readable and analyze identically to v2.
	if got := runOut("scorep-analyze", "-trace", v1Path, "-json"); got != seqJSON {
		t.Errorf("v1 archive analysis differs from v2:\n%s", got)
	}

	// -stats reports the archive layout: version, index, chunk counts.
	out = run("scorep-convert", "-in", archivePath, "-stats")
	if !strings.Contains(out, "version=2") || !strings.Contains(out, "indexed=true") ||
		!strings.Contains(out, "thread-chunks=") {
		t.Errorf("-stats missing v2 layout fields:\n%s", out)
	}
	out = run("scorep-convert", "-in", v1Path, "-stats")
	if !strings.Contains(out, "version=1") || !strings.Contains(out, "indexed=false") {
		t.Errorf("-stats mislabels a v1 archive:\n%s", out)
	}

	// Compressed archives shrink and decode identically.
	zPath := filepath.Join(dir, "fib-z.otf2")
	out = run("scorep-convert", "-in", archivePath, "-out", zPath, "-compress", "-stats")
	if !strings.Contains(out, "compression-ratio=") {
		t.Errorf("-stats missing compression ratio:\n%s", out)
	}
	fiZ, err := os.Stat(zPath)
	if err != nil {
		t.Fatal(err)
	}
	if fiZ.Size() >= fiBin.Size() {
		t.Errorf("compressed archive %d bytes >= uncompressed %d", fiZ.Size(), fiBin.Size())
	}
	if got := runOut("scorep-analyze", "-trace", zPath, "-json"); got != seqJSON {
		t.Errorf("compressed archive analysis differs:\n%s", got)
	}

	// Query flags: an all-open window is a no-op, and analyzing a
	// thread-subset conversion equals analyzing the full archive with
	// the same -tids filter — byte-identical JSON, the filter-then-
	// analyze reference executed through two different tools.
	if got := runOut("scorep-analyze", "-trace", archivePath, "-json", "-window", ":"); got != seqJSON {
		t.Errorf("-window : (all-open) changed the analysis:\n%s", got)
	}
	t0Path := filepath.Join(dir, "fib-t0.otf2")
	run("scorep-convert", "-in", archivePath, "-out", t0Path, "-threads", "0")
	subsetJSON := runOut("scorep-analyze", "-trace", t0Path, "-json")
	tidsJSON := runOut("scorep-analyze", "-trace", archivePath, "-json", "-tids", "0")
	if subsetJSON != tidsJSON {
		t.Errorf("-tids 0 analysis differs from converted thread-0 subset:\nsubset: %s\ntids: %s", subsetJSON, tidsJSON)
	}
	if subsetJSON == seqJSON {
		t.Error("thread-0 subset analysis unexpectedly equals the full analysis")
	}
	// Windowed queries agree across worker counts, byte for byte.
	if w1, w4 := runOut("scorep-analyze", "-trace", archivePath, "-json", "-window", "0:", "-parallel", "1"),
		runOut("scorep-analyze", "-trace", archivePath, "-json", "-window", "0:", "-parallel", "4"); w1 != w4 {
		t.Errorf("windowed analysis differs across -parallel:\n1: %s\n4: %s", w1, w4)
	}
	out = run("scorep-timeline", "-in", archivePath, "-width", "40", "-tids", "0")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline with -tids failed:\n%s", out)
	}
	out = run("scorep-report", "-exp", expDir, "-window", ":")
	if !strings.Contains(out, "trace metrics") || !strings.Contains(out, "management/execution ratio") {
		t.Errorf("report -window missing trace metrics section:\n%s", out)
	}
	out = run("scorep-analyze", "-exp", expDir, "-window", ":")
	if !strings.Contains(out, "management/execution ratio") {
		t.Errorf("analyze -exp -window failed:\n%s", out)
	}

	// Ambiguous flag combinations are rejected, not silently resolved.
	mustFail := func(name string, args ...string) {
		t.Helper()
		if b, err := exec.Command(bin[name], args...).CombinedOutput(); err == nil {
			t.Errorf("%s %v should reject conflicting flags:\n%s", name, args, b)
		}
	}
	mustFail("scorep-bots", "-code", "fib", "-size", "tiny", "-uninstrumented", "-exp", expDir)
	mustFail("scorep-timeline", "-in", tracePath, "-exp", expDir)
	mustFail("scorep-analyze", "-in", repA, "-trace", tracePath)
	mustFail("scorep-convert", "-in", tracePath, "-exp", expDir, "-stats")
	mustFail("scorep-analyze", "-in", repA, "-bottlenecks")   // a report holds no trace
	mustFail("scorep-analyze", "-in", repA, "-parallel", "4") // -parallel is trace-analysis only
	mustFail("scorep-report", "-in", repA, "-parallel", "2")  // -parallel is -diff only
	// Query/compression flags apply to specific modes only.
	mustFail("scorep-analyze", "-in", repA, "-window", ":")                                            // a report holds no trace
	mustFail("scorep-analyze", "-code", "fib", "-size", "tiny", "-tids", "0")                          // live runs aren't sliceable
	mustFail("scorep-analyze", "-trace", archivePath, "-compress")                                     // -compress needs -save-trace
	mustFail("scorep-analyze", "-trace", archivePath, "-window", "junk")                               // malformed window
	mustFail("scorep-timeline", "-code", "fib", "-size", "tiny", "-window", ":")                       // live runs aren't sliceable
	mustFail("scorep-timeline", "-in", archivePath, "-compress")                                       // -compress needs -save
	mustFail("scorep-convert", "-in", archivePath, "-out", trace2Path, "-compress")                    // JSONL can't compress
	mustFail("scorep-convert", "-in", archivePath, "-out", zPath, "-compress", "-format-version", "1") // v1 predates compression
	mustFail("scorep-convert", "-in", archivePath, "-stats", "-window", ":")                           // a sub-trace needs -out
	mustFail("scorep-convert", "-in", fibTracePath, "-out", trace2Path, "-format-version", "2")        // version is archive-only
	mustFail("scorep-report", "-in", repA, "-diff", repB, "-window", ":")                              // diff has no trace section
	mustFail("scorep-report", "-exp", expDir, "-csv", "-window", ":")                                  // CSV has no trace section
	mustFail("scorep-report", "-in", repA, "-window", ":")                                             // plain reports hold no trace
}
