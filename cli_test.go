package scorep_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds and exercises every cmd/ binary end to
// end: profile a run, save it, render it, diff it, analyze it, and draw
// its timeline. Skipped with -short.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()

	bin := map[string]string{}
	for _, name := range []string{"scorep-bots", "scorep-exp", "scorep-report", "scorep-analyze", "scorep-timeline", "scorep-convert"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bin[name] = out
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin[name], args...)
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, b)
		}
		return string(b)
	}

	repA := filepath.Join(dir, "a.json")
	repB := filepath.Join(dir, "b.json")
	tracePath := filepath.Join(dir, "t.jsonl")

	// scorep-bots: run, verify, save profiles.
	out := run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "2", "-json", repA)
	if !strings.Contains(out, "verification: OK") {
		t.Errorf("scorep-bots did not verify:\n%s", out)
	}
	if !strings.Contains(out, "TASK TREES") {
		t.Errorf("scorep-bots printed no task trees:\n%s", out)
	}
	run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "4", "-cutoff", "-json", repB)

	// scorep-report: render, CSV, diff.
	out = run("scorep-report", "-in", repA)
	if !strings.Contains(out, "fib.task") {
		t.Errorf("report render missing task construct:\n%s", out)
	}
	out = run("scorep-report", "-in", repA, "-csv")
	if !strings.Contains(out, "tree,path,kind") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	out = run("scorep-report", "-in", repA, "-diff", repB, "-top", "5")
	if !strings.Contains(out, "delta=") {
		t.Errorf("diff output missing deltas:\n%s", out)
	}

	// scorep-exp: one quick table.
	out = run("scorep-exp", "-table", "2", "-size", "tiny")
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "alignment") {
		t.Errorf("scorep-exp table 2 malformed:\n%s", out)
	}

	// scorep-analyze: saved report and live run.
	out = run("scorep-analyze", "-in", repA)
	if !strings.Contains(out, "finding") && !strings.Contains(out, "no tasking inefficiencies") {
		t.Errorf("scorep-analyze produced no verdict:\n%s", out)
	}
	out = run("scorep-analyze", "-code", "fib", "-size", "tiny", "-threads", "2")
	if !strings.Contains(out, "management/execution ratio") {
		t.Errorf("live analyze missing trace metrics:\n%s", out)
	}

	// scorep-timeline: live run with save, then re-render from file.
	out = run("scorep-timeline", "-code", "sort", "-size", "tiny", "-threads", "2", "-save", tracePath)
	if !strings.Contains(out, "legend:") {
		t.Errorf("timeline missing legend:\n%s", out)
	}
	out = run("scorep-timeline", "-in", tracePath, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from saved trace failed:\n%s", out)
	}

	// scorep-convert: JSONL -> binary archive -> JSONL round trip with
	// stats; the reconstructed JSONL must be byte-identical and the
	// archive must hit the format's compression target (<= 1/8 the
	// bytes/event of JSONL on a real BOTS trace). fib tiny records
	// ~50k events, enough that the archive's fixed header/definition
	// overhead is irrelevant.
	fibTracePath := filepath.Join(dir, "fib.jsonl")
	archivePath := filepath.Join(dir, "fib.otf2")
	trace2Path := filepath.Join(dir, "fib2.jsonl")
	run("scorep-timeline", "-code", "fib", "-size", "tiny", "-threads", "2", "-save", fibTracePath)
	out = run("scorep-convert", "-in", fibTracePath, "-out", archivePath, "-stats")
	if !strings.Contains(out, "format=otf2") {
		t.Errorf("convert stats missing archive line:\n%s", out)
	}
	run("scorep-convert", "-in", archivePath, "-out", trace2Path)
	a, err := os.ReadFile(fibTracePath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(trace2Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSONL -> archive -> JSONL is not lossless")
	}
	fiJSON, err := os.Stat(fibTracePath)
	if err != nil {
		t.Fatal(err)
	}
	fiBin, err := os.Stat(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	if fiBin.Size()*8 > fiJSON.Size() {
		t.Errorf("archive %d bytes vs JSONL %d bytes: compression below 8x", fiBin.Size(), fiJSON.Size())
	}

	// scorep-timeline and scorep-analyze both consume the archive.
	out = run("scorep-timeline", "-in", archivePath, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from archive failed:\n%s", out)
	}
	out = run("scorep-analyze", "-trace", archivePath)
	if !strings.Contains(out, "management/execution ratio") {
		t.Errorf("streaming analyze of archive failed:\n%s", out)
	}

	// Parallel out-of-core analysis is byte-identical to sequential:
	// the -json outputs at -parallel 1 and -parallel 4 must cmp equal,
	// and the parallel decode path renders the same timeline.
	seqJSON := run("scorep-analyze", "-trace", archivePath, "-json", "-parallel", "1")
	parJSON := run("scorep-analyze", "-trace", archivePath, "-json", "-parallel", "4")
	if seqJSON != parJSON {
		t.Errorf("parallel analysis JSON differs from sequential:\nseq: %s\npar: %s", seqJSON, parJSON)
	}
	if !strings.Contains(seqJSON, "ManagementRatio") {
		t.Errorf("-json analysis output malformed:\n%s", seqJSON)
	}
	seqTL := run("scorep-timeline", "-in", archivePath, "-width", "40", "-parallel", "1")
	parTL := run("scorep-timeline", "-in", archivePath, "-width", "40", "-parallel", "4")
	if seqTL != parTL {
		t.Error("timeline rendered from parallel decode differs from sequential")
	}

	// Experiment archive round trip: one scorep-bots run writes the
	// archive, every offline tool reads it back.
	expDir := filepath.Join(dir, "exp-fib")
	expJSON := filepath.Join(dir, "exp-live.json")
	out = run("scorep-bots", "-code", "fib", "-size", "tiny", "-threads", "2", "-exp", expDir, "-json", expJSON)
	if !strings.Contains(out, "wrote experiment "+expDir) {
		t.Errorf("scorep-bots did not report the experiment:\n%s", out)
	}
	// The archived profile is byte-identical to the live run's -json.
	liveJSON, err := os.ReadFile(expJSON)
	if err != nil {
		t.Fatal(err)
	}
	archivedJSON, err := os.ReadFile(filepath.Join(expDir, "profile.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, archivedJSON) {
		t.Error("experiment profile.json differs from the live report JSON")
	}
	out = run("scorep-report", "-exp", expDir)
	if !strings.Contains(out, "fib.task") {
		t.Errorf("report from experiment missing task construct:\n%s", out)
	}
	out = run("scorep-analyze", "-exp", expDir)
	if !strings.Contains(out, "management/execution ratio") || !strings.Contains(out, "config:") {
		t.Errorf("analyze of experiment incomplete:\n%s", out)
	}
	out = run("scorep-timeline", "-exp", expDir, "-width", "40")
	if !strings.Contains(out, "thread") {
		t.Errorf("timeline from experiment failed:\n%s", out)
	}
	out = run("scorep-convert", "-exp", expDir, "-stats")
	if !strings.Contains(out, "format=otf2") {
		t.Errorf("convert from experiment failed:\n%s", out)
	}

	// Ambiguous flag combinations are rejected, not silently resolved.
	mustFail := func(name string, args ...string) {
		t.Helper()
		if b, err := exec.Command(bin[name], args...).CombinedOutput(); err == nil {
			t.Errorf("%s %v should reject conflicting flags:\n%s", name, args, b)
		}
	}
	mustFail("scorep-bots", "-code", "fib", "-size", "tiny", "-uninstrumented", "-exp", expDir)
	mustFail("scorep-timeline", "-in", tracePath, "-exp", expDir)
	mustFail("scorep-analyze", "-in", repA, "-trace", tracePath)
	mustFail("scorep-convert", "-in", tracePath, "-exp", expDir, "-stats")
	mustFail("scorep-analyze", "-in", repA, "-json")          // -json is trace-analysis only
	mustFail("scorep-analyze", "-in", repA, "-parallel", "4") // -parallel is trace-analysis only
	mustFail("scorep-report", "-in", repA, "-parallel", "2")  // -parallel is -diff only
}
