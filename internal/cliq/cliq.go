// Package cliq parses the trace-query CLI flags shared by the scorep
// tools (-window t0:t1 and a comma-separated thread-ID list) into a
// trace.Query, so every tool rejects malformed values with the same
// messages and slices traces with the same semantics.
package cliq

import (
	"fmt"

	"repro/internal/trace"
)

// Build assembles a query from the raw -window and thread-list flag
// values ("" means unset). threadsFlag names the thread-list flag in
// error messages (tools running BOTS codes call it -tids, because
// -threads is the live run's thread count there).
func Build(window, threads, threadsFlag string) (trace.Query, error) {
	var q trace.Query
	if window != "" {
		minTime, maxTime, err := trace.ParseWindow(window)
		if err != nil {
			return q, fmt.Errorf("-window: %w", err)
		}
		q.Windowed = true
		q.MinTime, q.MaxTime = minTime, maxTime
	}
	if threads != "" {
		tids, err := trace.ParseThreadList(threads)
		if err != nil {
			return q, fmt.Errorf("-%s: %w", threadsFlag, err)
		}
		q.Threads = tids
	}
	return q, nil
}
