package otf2

import (
	"encoding/binary"
	"io"
	"sort"

	"repro/internal/trace"
)

// FlightThreadInfo is one thread's eviction accounting in a
// flight-recorder dump: how many events and chunks that thread's ring
// discarded before the dump was taken.
type FlightThreadInfo struct {
	Thread        int
	DroppedEvents uint64
	DroppedChunks uint64
}

// FlightInfo is the decoded 'F' chunk of a flight-recorder dump: the
// ring configuration, the retained window size, and the per-thread
// dropped-event/chunk totals (ascending thread ID). It is how an
// archive states "this is the tail of a longer run, and this much of
// the front was evicted" — the accounting every reader and CLI
// surfaces so window truncation is visible, never silent.
type FlightInfo struct {
	// RingChunks and ChunkEvents state the recorder configuration: each
	// thread retained at most RingChunks sealed chunks of ChunkEvents
	// events (plus one partial chunk).
	RingChunks  int
	ChunkEvents int
	// RetainedEvents is the total event count the dump retained across
	// all threads.
	RetainedEvents int
	// DroppedEvents and DroppedChunks total the per-thread counters.
	DroppedEvents uint64
	DroppedChunks uint64
	// Threads holds the per-thread accounting, ascending by thread ID.
	Threads []FlightThreadInfo
}

// FlightInfoFromStats converts a recorder's trace.FlightStats snapshot
// into the archive's FlightInfo form.
func FlightInfoFromStats(st trace.FlightStats) *FlightInfo {
	info := &FlightInfo{
		RingChunks:     st.RingChunks,
		ChunkEvents:    st.ChunkEvents,
		RetainedEvents: st.RetainedEvents,
		DroppedEvents:  st.DroppedEvents,
		DroppedChunks:  st.DroppedChunks,
	}
	for _, ts := range st.Threads {
		info.Threads = append(info.Threads, FlightThreadInfo{
			Thread:        ts.Thread,
			DroppedEvents: ts.DroppedEvents,
			DroppedChunks: ts.DroppedChunks,
		})
	}
	return info
}

// appendFlightPayload encodes info as an 'F' chunk payload.
func appendFlightPayload(p []byte, info *FlightInfo) []byte {
	p = binary.AppendUvarint(p, uint64(info.RingChunks))
	p = binary.AppendUvarint(p, uint64(info.ChunkEvents))
	p = binary.AppendUvarint(p, uint64(info.RetainedEvents))
	p = binary.AppendUvarint(p, uint64(len(info.Threads)))
	for _, ts := range info.Threads {
		p = binary.AppendVarint(p, int64(ts.Thread))
		p = binary.AppendUvarint(p, ts.DroppedEvents)
		p = binary.AppendUvarint(p, ts.DroppedChunks)
	}
	return p
}

// decodeFlightInfo parses an 'F' chunk payload.
func decodeFlightInfo(payload []byte) (*FlightInfo, error) {
	c := cursor{payload: payload}
	ring, err := c.uvarint("flight ring chunks")
	if err != nil {
		return nil, err
	}
	chunk, err := c.uvarint("flight chunk events")
	if err != nil {
		return nil, err
	}
	retained, err := c.uvarint("flight retained events")
	if err != nil {
		return nil, err
	}
	n, err := c.uvarint("flight thread count")
	if err != nil {
		return nil, err
	}
	if maxFit := uint64(len(payload)-c.pos)/3 + 1; n > maxFit {
		return nil, corrupt("flight thread count %d overruns chunk", n)
	}
	info := &FlightInfo{
		RingChunks:     int(ring),
		ChunkEvents:    int(chunk),
		RetainedEvents: int(retained),
		Threads:        make([]FlightThreadInfo, 0, n),
	}
	for i := uint64(0); i < n; i++ {
		tid, err := c.varint("flight thread id")
		if err != nil {
			return nil, err
		}
		de, err := c.uvarint("flight dropped events")
		if err != nil {
			return nil, err
		}
		dc, err := c.uvarint("flight dropped chunks")
		if err != nil {
			return nil, err
		}
		info.Threads = append(info.Threads, FlightThreadInfo{
			Thread:        int(tid),
			DroppedEvents: de,
			DroppedChunks: dc,
		})
		info.DroppedEvents += de
		info.DroppedChunks += dc
	}
	return info, nil
}

// WriteFlightInfo appends info's 'F' chunk to the archive. A
// flight-recorder dump calls it first, before any event is written, so
// the accounting chunk lands directly after the header — inside the
// salvageable prefix of even a dump cut off by a full disk. Requires
// format version 2.
func (w *Writer) WriteFlightInfo(info *FlightInfo) error {
	if err := w.Err(); err != nil {
		return err
	}
	if w.version != version2 {
		w.setErr(corrupt("flight-recorder accounting requires format version 2"))
		return w.Err()
	}
	p := appendFlightPayload(make([]byte, 0, 16+24*len(info.Threads)), info)
	w.iomu.Lock()
	w.writeChunkLocked(chunkFlight, p, nil)
	w.iomu.Unlock()
	return w.Err()
}

// WriteFlightDump serializes a flight-recorder window as a complete
// archive on w: the 'F' accounting chunk first, then the retained
// events ordered by thread then time, then (v2) the footer index and
// trailer. The result is a valid archive every reader, query and
// analysis path consumes like any other; its FlightInfo travels with
// it.
func WriteFlightDump(w io.Writer, tr *trace.Trace, info *FlightInfo, opts ...WriterOption) error {
	aw := NewWriter(w, opts...)
	if info != nil {
		if err := aw.WriteFlightInfo(info); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := aw.WriteEvents(id, tr.Threads[id]); err != nil {
			return err
		}
	}
	return aw.Close()
}
