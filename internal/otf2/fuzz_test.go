package otf2

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/region"
	"repro/internal/trace"
)

// corruptTail returns a copy of data with the byte n before the end
// flipped — aimed at the trailer, index chunk or compressed payloads
// that all sit at the back of a v2 archive.
func corruptTail(data []byte, n int) []byte {
	out := append([]byte(nil), data...)
	if n < len(out) {
		out[len(out)-1-n] ^= 0xff
	}
	return out
}

// FuzzCodec throws arbitrary bytes at the archive reader: decoding must
// never panic, and whatever decodes successfully must survive a
// re-encode → re-decode round trip unchanged (the codec is a bijection
// on its image).
func FuzzCodec(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, sampleTrace(region.NewRegistry())); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])      // truncated v2 (index lost)
	f.Add([]byte(magic + "\x01"))                    // v1 header only
	f.Add([]byte(magic + "\x02"))                    // v2 header only
	f.Add([]byte("SPOTF2\x00\x01D\x03\x01\x80\x01")) // tiny defs chunk
	f.Add([]byte{})
	// v2-specific seeds: valid archives with compression, a damaged
	// trailer, a corrupted index payload and a corrupted compressed
	// chunk — the decoder must reject or salvage, never panic.
	var compressed bytes.Buffer
	if err := Write(&compressed, sampleTrace(region.NewRegistry()), WithCompression(CompressionFlate)); err != nil {
		f.Fatal(err)
	}
	f.Add(compressed.Bytes())
	f.Add(corruptTail(valid.Bytes(), 1))                                                  // trailer magic damaged
	f.Add(corruptTail(valid.Bytes(), 6))                                                  // index offset damaged
	f.Add(corruptTail(compressed.Bytes(), 30))                                            // inside the index chunk
	f.Add(corruptTail(compressed.Bytes(), 80))                                            // inside a flate stream
	f.Add(valid.Bytes()[: len(valid.Bytes())-trailerLen : len(valid.Bytes())-trailerLen]) // trailer sheared off

	f.Fuzz(func(t *testing.T, data []byte) {
		// The query planner must never panic either, whatever the bytes
		// (it exercises ReadIndex, ReadChunkAt, inflateChunk and the
		// indexed worker pool on top of the plain decoder).
		q := Query{Windowed: true, MinTime: 10, MaxTime: 1 << 40}
		if a, _, err := AnalyzeQuery(bytes.NewReader(data), q, 2); err == nil {
			ref, _, rerr := ReadAllQuery(bytes.NewReader(data), region.NewRegistry(), q, 1)
			if rerr != nil {
				t.Fatalf("AnalyzeQuery accepted input ReadAllQuery rejects: %v", rerr)
			}
			if want := trace.Analyze(ref); !reflect.DeepEqual(a, want) {
				t.Fatalf("AnalyzeQuery != analyze(ReadAllQuery): %+v vs %+v", a, want)
			}
		}
		tr, err := ReadAll(bytes.NewReader(data), region.NewRegistry())
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding decoded trace: %v", err)
		}
		tr2, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if len(tr2.Threads) != len(tr.Threads) {
			t.Fatalf("thread count changed: %d -> %d", len(tr.Threads), len(tr2.Threads))
		}
		for tid, evs := range tr.Threads {
			evs2 := tr2.Threads[tid]
			if len(evs2) != len(evs) {
				t.Fatalf("thread %d: event count changed: %d -> %d", tid, len(evs), len(evs2))
			}
			for i := range evs {
				if !eventsEqual(evs[i], evs2[i]) {
					t.Fatalf("thread %d event %d changed: %+v -> %+v", tid, i, evs[i], evs2[i])
				}
			}
		}
	})
}
