package otf2

import (
	"bytes"
	"testing"

	"repro/internal/region"
)

// FuzzCodec throws arbitrary bytes at the archive reader: decoding must
// never panic, and whatever decodes successfully must survive a
// re-encode → re-decode round trip unchanged (the codec is a bijection
// on its image).
func FuzzCodec(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, sampleTrace(region.NewRegistry())); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])      // truncated archive
	f.Add([]byte(magic + "\x01"))                    // header only
	f.Add([]byte("SPOTF2\x00\x01D\x03\x01\x80\x01")) // tiny defs chunk
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadAll(bytes.NewReader(data), region.NewRegistry())
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding decoded trace: %v", err)
		}
		tr2, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if len(tr2.Threads) != len(tr.Threads) {
			t.Fatalf("thread count changed: %d -> %d", len(tr.Threads), len(tr2.Threads))
		}
		for tid, evs := range tr.Threads {
			evs2 := tr2.Threads[tid]
			if len(evs2) != len(evs) {
				t.Fatalf("thread %d: event count changed: %d -> %d", tid, len(evs), len(evs2))
			}
			for i := range evs {
				if !eventsEqual(evs[i], evs2[i]) {
					t.Fatalf("thread %d event %d changed: %+v -> %+v", tid, i, evs[i], evs2[i])
				}
			}
		}
	})
}
