package otf2

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/bottleneck"
	"repro/internal/region"
	"repro/internal/trace"
)

// AnalyzeBottlenecks runs the bottleneck analysis (wait-state
// classification, critical path, what-if savings) over the sub-trace of
// an archive matching q, using up to workers decode goroutines (<= 0
// one per processor). It has the same access structure and guarantees
// as AnalyzeQuery: index-driven chunk selection when a footer index is
// readable, the sequential scan with event-level filtering otherwise,
// and the v1 salvage contract — a truncated archive yields the intact
// prefix's analysis alongside an error wrapping ErrTruncated.
//
// The result is reflect.DeepEqual-identical to fully decoding the
// archive, filtering with q, and running bottleneck.Analyze on that —
// at every worker count and on both access paths.
func AnalyzeBottlenecks(r io.Reader, q Query, workers int) (*bottleneck.Analysis, QueryStats, error) {
	workers = normWorkers(workers)
	if rs, ok := r.(io.ReadSeeker); ok {
		if ix, err := ReadIndex(rs); err == nil {
			pc := bottleneck.NewParallelCollector()
			consume := func(tid int, events []trace.Event) {
				if len(events) > 0 {
					pc.ObserveBatch(tid, events)
				}
			}
			st, err := runIndexed(rs, ix, q, region.NewRegistry(), workers, true, consume)
			if err != nil {
				return nil, st, err
			}
			return pc.Finish(), st, nil
		}
		// No readable index (v1 archive, crashed run, damaged trailer):
		// rewind and scan sequentially.
		if _, err := rs.Seek(0, io.SeekStart); err != nil {
			return nil, QueryStats{}, err
		}
	}
	var st QueryStats
	if workers == 1 {
		c := bottleneck.NewCollector()
		rd, err := NewReader(r, region.NewRegistry())
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				return c.Finish(), st, err
			}
			return nil, st, err
		}
		for {
			tid, ev, err := rd.Next()
			if err == io.EOF {
				return c.Finish(), st, nil
			}
			if errors.Is(err, ErrTruncated) {
				return c.Finish(), st, err
			}
			if err != nil {
				return nil, st, err
			}
			c.ObserveQuery(tid, ev, q)
		}
	}
	pc := bottleneck.NewParallelCollector()
	err := runPipeline(r, region.NewRegistry(), workers, true, func(tid int, events []trace.Event) {
		pc.ObserveBatchQuery(tid, events, q)
	})
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, st, err
	}
	return pc.Finish(), st, err
}

// AnalyzeFileBottlenecks runs the bottleneck analysis over the
// sub-trace of a trace file matching q, with the same lenient
// truncation policy, index-driven access and fallback as
// AnalyzeFileQuery. JSONL traces are loaded and filtered in memory.
func AnalyzeFileBottlenecks(path string, q Query, workers int) (*bottleneck.Analysis, QueryStats, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return nil, QueryStats{}, "", err
		}
		return bottleneck.AnalyzeQuery(tr, q, workers), QueryStats{}, warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, QueryStats{}, "", err
	}
	defer f.Close()
	a, st, err := AnalyzeBottlenecks(f, q, workers)
	if errors.Is(err, ErrTruncated) {
		return a, st, fmt.Sprintf("%v; analyzing the intact prefix", err), nil
	}
	return a, st, "", err
}
