package otf2

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
	"repro/internal/trace"
)

// multiChunkArchive serializes tr with a small chunk size so the
// archive spans many chunks per thread.
func multiChunkArchive(t *testing.T, tr *trace.Trace, chunkBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	aw := NewWriterSize(&buf, chunkBytes)
	for _, tid := range tr.ThreadIDs() {
		if err := aw.WriteEvents(tid, tr.Threads[tid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalyzeParallelMatchesSequential checks the parallel out-of-core
// analysis is reflect.DeepEqual-identical to the sequential one across
// worker counts, on a multi-thread multi-chunk archive.
func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	tr := benchTrace(4, 3000)
	data := multiChunkArchive(t, tr, 1024)

	want, err := Analyze(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		got, err := AnalyzeParallel(bytes.NewReader(data), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel analysis diverges:\n got %+v\nwant %+v", workers, got, want)
		}
	}

	// Single-thread archives exercise the chunk-level (not thread-level)
	// parallelism: every chunk decodes concurrently, one shard applies.
	one := benchTrace(1, 5000)
	oneData := multiChunkArchive(t, one, 1024)
	want1, err := Analyze(bytes.NewReader(oneData))
	if err != nil {
		t.Fatal(err)
	}
	got1, err := AnalyzeParallel(bytes.NewReader(oneData), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want1, got1) {
		t.Fatal("single-thread parallel analysis diverges from sequential")
	}
}

// TestAnalyzeParallelTruncated cuts a multi-chunk archive mid-chunk:
// sequential and parallel analysis must salvage the same intact prefix
// (DeepEqual) and both surface ErrTruncated.
func TestAnalyzeParallelTruncated(t *testing.T) {
	tr := benchTrace(4, 2000)
	data := multiChunkArchive(t, tr, 1024)

	for _, cut := range []int{len(data) - 7, len(data) / 2, len(data) / 3} {
		prefix := data[:cut]
		want, serr := Analyze(bytes.NewReader(prefix))
		if !errors.Is(serr, ErrTruncated) {
			t.Fatalf("cut %d: sequential err = %v, want ErrTruncated", cut, serr)
		}
		got, perr := AnalyzeParallel(bytes.NewReader(prefix), 4)
		if !errors.Is(perr, ErrTruncated) {
			t.Fatalf("cut %d: parallel err = %v, want ErrTruncated", cut, perr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cut %d: truncated parallel analysis diverges:\n got %+v\nwant %+v", cut, got, want)
		}
	}
}

// TestReadAllParallelMatchesReadAll checks parallel decoding loads the
// exact same trace as the sequential reader, intact and truncated.
func TestReadAllParallelMatchesReadAll(t *testing.T) {
	tr := benchTrace(4, 2000)
	data := multiChunkArchive(t, tr, 1024)

	want, err := ReadAll(bytes.NewReader(data), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllParallel(bytes.NewReader(data), region.NewRegistry(), 4)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, want, got)

	cut := len(data) - 9
	wantCut, serr := ReadAll(bytes.NewReader(data[:cut]), region.NewRegistry())
	if !errors.Is(serr, ErrTruncated) {
		t.Fatalf("sequential err = %v, want ErrTruncated", serr)
	}
	gotCut, perr := ReadAllParallel(bytes.NewReader(data[:cut]), region.NewRegistry(), 4)
	if !errors.Is(perr, ErrTruncated) {
		t.Fatalf("parallel err = %v, want ErrTruncated", perr)
	}
	tracesEqual(t, wantCut, gotCut)
}

// TestReadAllParallelRegionIdentity checks parallel decoding preserves
// pointer-interned regions like the sequential reader does.
func TestReadAllParallelRegionIdentity(t *testing.T) {
	tr := benchTrace(2, 500)
	data := multiChunkArchive(t, tr, 1024)
	got, err := ReadAllParallel(bytes.NewReader(data), region.NewRegistry(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var task *region.Region
	for _, evs := range got.Threads {
		for _, ev := range evs {
			if ev.Region == nil || ev.Region.Name != "bench.task" {
				continue
			}
			if task == nil {
				task = ev.Region
			} else if ev.Region != task {
				t.Fatal("same region decoded to distinct pointers across chunks")
			}
		}
	}
	if task == nil {
		t.Fatal("no task-region events decoded")
	}
}

// TestConcurrentWriterStreams drives one Writer from many goroutines —
// the shape of runtime threads flushing recorder chunks concurrently —
// and checks every thread's event stream survives bit-exact, in order.
// Run under -race this is the writer's concurrency proof.
func TestConcurrentWriterStreams(t *testing.T) {
	const threads = 8
	const events = 5000
	reg := region.NewRegistry()
	regions := []*region.Region{
		reg.Register("par", "w.go", 1, region.Parallel),
		reg.Register("task", "w.go", 2, region.Task),
		reg.Register("tw", "w.go", 3, region.Taskwait),
		nil,
	}

	var buf bytes.Buffer
	w := NewWriterSize(&buf, 1024)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ts := int64(tid * 10)
			for i := 0; i < events; i += 50 {
				batch := make([]trace.Event, 0, 50)
				for j := 0; j < 50; j++ {
					ts += int64(1 + (i+j)%7)
					batch = append(batch, trace.Event{
						Time:   ts,
						Type:   trace.EventType((i + j) % int(trace.EvThreadEnd+1)),
						Region: regions[(tid+i+j)%len(regions)],
						TaskID: uint64(tid)<<32 + uint64(i+j),
					})
				}
				if err := w.WriteEvents(tid, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Threads) != threads {
		t.Fatalf("decoded %d threads, want %d", len(got.Threads), threads)
	}
	for tid := 0; tid < threads; tid++ {
		evs := got.Threads[tid]
		if len(evs) != events {
			t.Fatalf("thread %d: %d events, want %d", tid, len(evs), events)
		}
		ts := int64(tid * 10)
		for i, ev := range evs {
			wantTs := ts + int64(1+i%7)
			ts = wantTs
			if ev.Time != wantTs || ev.TaskID != uint64(tid)<<32+uint64(i) {
				t.Fatalf("thread %d event %d = %+v, want time %d task %d", tid, i, ev, wantTs, uint64(tid)<<32+uint64(i))
			}
		}
	}

	// The concurrently written archive must analyze identically to its
	// own parallel re-analysis — the full write→read determinism loop.
	want, err := Analyze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := AnalyzeParallel(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, gotA) {
		t.Fatal("analysis of concurrently written archive diverges between sequential and parallel")
	}
}

// gatedWriter blocks the first underlying chunk append until released,
// modeling one slow sink flush (an NFS hiccup, a saturated disk).
type gatedWriter struct {
	entered chan struct{} // closed when the first Write blocks
	release chan struct{}
	once    sync.Once
	n       int64
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	g.n += int64(len(p))
	return len(p), nil
}

// TestSlowSinkFlushDoesNotStallOtherThreads asserts the tentpole's
// write-side property end to end through the streaming Recorder: while
// thread A's chunk flush is stuck inside the underlying sink write,
// thread B keeps recording events — and even flushing recorder chunks
// into the shared Writer — without blocking. Under the old
// single-mutex writer B's first flush would deadlock behind A.
func TestSlowSinkFlushDoesNotStallOtherThreads(t *testing.T) {
	gw := &gatedWriter{entered: make(chan struct{}), release: make(chan struct{})}
	// Writer chunks are large (64 KiB) so B's recorder flushes never
	// seal a writer chunk; A seals (and blocks) via a small dedicated
	// budget of large events.
	w := NewWriterSize(gw, 64*1024)
	rec := trace.NewStreamingRecorder(clock.NewManual(0), w, 64)
	reg := region.NewRegistry()
	task := reg.Register("slow.task", "s.go", 1, region.Task)

	thA := &omp.Thread{ID: 0}
	thB := &omp.Thread{ID: 1}
	rec.ThreadBegin(thA)
	rec.ThreadBegin(thB)

	aBlocked := make(chan struct{})
	go func() {
		// ~70 KiB of encoded events: guaranteed to seal a 64 KiB writer
		// chunk and hit the gated underlying write.
		for i := 0; i < 64*1024; i++ {
			rec.TaskBegin(thA, &omp.Task{ID: uint64(i), Region: task})
		}
		close(aBlocked)
	}()
	<-gw.entered // A is stuck inside the sink write

	// B records (and flushes) 4096 events; with the old global writer
	// lock the first of B's 64 recorder-chunk flushes would block until
	// A's sink write returns.
	bDone := make(chan struct{})
	go func() {
		for i := 0; i < 4096; i++ {
			rec.TaskEnd(thB, &omp.Task{ID: uint64(i), Region: task})
		}
		close(bDone)
	}()
	select {
	case <-bDone:
	case <-time.After(10 * time.Second):
		t.Fatal("thread B's recording stalled behind thread A's slow sink flush")
	}
	select {
	case <-aBlocked:
		t.Fatal("thread A should still be blocked in the gated sink write")
	default:
	}

	close(gw.release)
	<-aBlocked
	rec.Finish()
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if gw.n == 0 {
		t.Fatal("no archive bytes reached the sink")
	}
}

// TestWriterManyDefsOneBatch regression-tests the pending-definitions
// bound: one WriteEvents batch interning far more definition bytes than
// a chunk can hold must seal them into multiple chunk-bounded 'D'
// chunks, never one oversized chunk the Reader rejects.
func TestWriterManyDefsOneBatch(t *testing.T) {
	reg := region.NewRegistry()
	var buf bytes.Buffer
	w := NewWriterSize(&buf, 1024)
	const n = 2000 // ~2000 region+string records >> 1 KiB of definitions
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{
			Time:   int64(i),
			Type:   trace.EvTaskBegin,
			Region: reg.Register(fmt.Sprintf("defs.batch.%04d", i), "d.go", i, region.Task),
			TaskID: uint64(i),
		}
	}
	if err := w.WriteEvents(0, evs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatalf("archive with a one-batch definition flood failed to decode: %v", err)
	}
	if got.NumEvents() != n {
		t.Fatalf("decoded %d events, want %d", got.NumEvents(), n)
	}
}

// TestWriterDefsBeforeEvents stresses the definition-ordering
// invariant under concurrency: regions interned on one thread while
// another thread seals chunks must always have their definition chunk
// written before any event chunk referencing them (the reader fails
// with "undefined region" otherwise).
func TestWriterDefsBeforeEvents(t *testing.T) {
	reg := region.NewRegistry()
	var buf bytes.Buffer
	w := NewWriterSize(&buf, 1024)
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ts := int64(0)
			for i := 0; i < 2000; i++ {
				// A steady drip of brand-new regions forces interning
				// to race with chunk seals on the other threads.
				r := reg.Register(fmt.Sprintf("r%d.%d", tid, i), "d.go", i, region.Task)
				ts += 3
				if err := w.WriteEvent(tid, trace.Event{Time: ts, Type: trace.EvTaskBegin, Region: r, TaskID: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatalf("archive with racing definitions failed to decode: %v", err)
	}
	if n := got.NumEvents(); n != 4*2000 {
		t.Fatalf("decoded %d events, want %d", n, 4*2000)
	}
}
