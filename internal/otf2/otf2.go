// Package otf2 implements a compact binary trace-archive format for the
// runtime's event traces — the OTF2-style storage layer the paper's
// tool chain (Score-P writing OTF2 archives, read by Scalasca/Vampir)
// uses for event tracing. It replaces the verbose JSONL stand-in for
// large runs: delta-encoded timestamps and LEB128 variable-length
// integers bring the cost per event from ~100 bytes of JSON down to a
// handful of bytes, and the chunked, streaming design lets both
// recording and analysis run in bounded memory on traces far larger
// than RAM.
//
// # Archive layout
//
// An archive is a header followed by a sequence of self-describing
// chunks. All multi-byte integers are LEB128 varints as produced by
// encoding/binary: "uvarint" below is binary.AppendUvarint, "varint" is
// the zig-zag-encoded signed form binary.AppendVarint. There is no
// archive-level trailer: a crashed or killed run leaves a truncated
// final chunk, and every complete chunk before it remains readable (the
// reader reports the cut as ErrTruncated).
//
//	archive := header chunk*
//	header  := "SPOTF2\x00" version        // 7 magic bytes + 1 version byte (currently 1)
//	chunk   := kind uvarint(len) payload   // kind is one byte; len = payload length in bytes
//
// Two chunk kinds exist in version 1; readers skip chunks with unknown
// kinds so the format can grow.
//
//	kind 'D' — definitions
//	kind 'E' — events
//
// # Definitions
//
// Definition chunks intern the static entities event records reference,
// mirroring OTF2's global definitions. A definitions payload is a
// sequence of records, each introduced by a one-byte tag:
//
//	0x01 clock  := uvarint(resolution) varint(globalOffset)
//	0x02 string := uvarint(stringID) uvarint(byteLen) bytes
//	0x03 region := uvarint(regionID) uvarint(nameStringID) uvarint(fileStringID)
//	               uvarint(line) uvarint(regionType)
//
// The clock record states the timer resolution in ticks per second
// (1e9 for this runtime's nanosecond clock) and the offset added to
// timestamps to recover the recording epoch. String and region IDs are
// dense, start at 0, and must be defined before the first event record
// that references them; the writer emits definitions incrementally, in
// a 'D' chunk immediately preceding the first 'E' chunk that needs
// them, so the readable prefix of a truncated archive is always
// self-contained. regionType is the ordinal of region.Type.
//
// # Events
//
// An event payload carries one run of events of a single thread:
//
//	events := varint(threadID) uvarint(count) event[count]
//	event  := type varint(timeDelta) uvarint(regionRef) uvarint(taskID)
//
// type is one byte, the ordinal of trace.EventType. timeDelta is the
// difference to the previous event of the same thread (across chunks;
// the first event of a thread is a delta against 0). regionRef is 0 for
// events without a region, otherwise regionID+1. Chunks of different
// threads appear in flush order and carry no cross-thread ordering, as
// in any distributed trace; per-thread order is the record order.
//
// # API
//
// Writer streams events into an archive with one in-memory chunk buffer
// per thread (it implements trace.EventSink, so a trace.Recorder in
// bounded-memory mode can flush straight into it). The Writer encodes
// concurrently: each thread's events are encoded in that thread's own
// buffer, region interning publishes atomically, and the writer's only
// shared lock is held just for the append of a framed chunk to the
// underlying io.Writer — one thread's slow sink flush never blocks
// recording or flushing on the others. Reader iterates an archive
// event by event via Next in O(chunk) memory; ReadAll loads a whole
// archive into a trace.Trace, and Analyze runs the streaming trace
// analysis without ever materializing the trace. AnalyzeParallel and
// ReadAllParallel are the multi-core variants: a sequential frame
// scanner fans chunk decoding out to a worker pool while per-thread
// shards replay each thread's chunks in archive order, keeping memory
// at O(workers x chunk) and the results identical to the sequential
// paths (reflect.DeepEqual, including for truncated archives).
package otf2

import (
	"errors"
	"fmt"

	"repro/internal/region"
	"repro/internal/trace"
)

// Format constants. magic is 7 bytes so the header including the
// version byte is 8 bytes total.
const (
	magic   = "SPOTF2\x00"
	version = 1

	chunkDefs   = 'D'
	chunkEvents = 'E'

	defClock  = 0x01
	defString = 0x02
	defRegion = 0x03

	// maxChunkLen caps the declared payload length a reader will
	// allocate, guarding against corrupt or hostile headers.
	maxChunkLen = 1 << 26

	// maxEventType is the highest trace.EventType ordinal in format
	// version 1.
	maxEventType = uint8(trace.EvThreadEnd)

	// maxRegionType is the highest region.Type ordinal in format
	// version 1.
	maxRegionType = uint64(region.Parameter)
)

// Ext is the file extension conventionally used for archives.
const Ext = ".otf2"

// FormatVersion is the archive format version this package writes —
// the header's version byte. Experiment metadata records it so offline
// tooling can tell which reader an archive needs.
const FormatVersion = version

// ErrTruncated marks an archive cut off mid-chunk — the typical state
// after a crashed run. Every event returned before the error belongs to
// the intact prefix and is valid.
var ErrTruncated = errors.New("otf2: archive truncated")

// corrupt builds a format-violation error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("otf2: corrupt archive: "+format, args...)
}
