// Package otf2 implements a compact binary trace-archive format for the
// runtime's event traces — the OTF2-style storage layer the paper's
// tool chain (Score-P writing OTF2 archives, read by Scalasca/Vampir)
// uses for event tracing. It replaces the verbose JSONL stand-in for
// large runs: delta-encoded timestamps and LEB128 variable-length
// integers bring the cost per event from ~100 bytes of JSON down to a
// handful of bytes, and the chunked, streaming design lets both
// recording and analysis run in bounded memory on traces far larger
// than RAM. Format version 2 additionally makes archives seekable:
// sealed event chunks may be block-compressed, and a footer index plus
// fixed-size trailer let a reader open a time window or thread subset
// in O(matching chunks) instead of O(archive).
//
// # Archive layout
//
// An archive is a header followed by a sequence of self-describing
// chunks. All multi-byte integers are LEB128 varints as produced by
// encoding/binary: "uvarint" below is binary.AppendUvarint, "varint" is
// the zig-zag-encoded signed form binary.AppendVarint.
//
//	archive := header chunk*
//	header  := "SPOTF2\x00" version        // 7 magic bytes + 1 version byte (1 or 2)
//	chunk   := kind uvarint(len) payload   // kind is one byte; len = payload length in bytes
//
// Version 1 defines chunk kinds 'D' (definitions) and 'E' (events) and
// has no archive-level trailer: a crashed or killed run leaves a
// truncated final chunk, and every complete chunk before it remains
// readable (the reader reports the cut as ErrTruncated). Version 2
// keeps 'D' and 'E' byte-identical and adds three chunk kinds:
//
//	kind 'D' — definitions                       (v1 and v2)
//	kind 'E' — events, raw                       (v1 and v2)
//	kind 'C' — events, compressed                (v2)
//	kind 'I' — footer index                      (v2)
//	kind 'T' — trailer locating the index        (v2)
//	kind 'F' — flight-recorder accounting        (v2)
//
// Readers skip chunks with unknown kinds so the format can grow; a v2
// archive read front to back therefore decodes on the v1 chunk walk
// ('I' and 'T' are skipped like any unknown kind). The index and
// trailer are written once, by Close; an archive cut before them (a
// crashed run) degrades to exactly the v1 contract — sequential read,
// intact prefix, ErrTruncated.
//
// # Definitions
//
// Definition chunks intern the static entities event records reference,
// mirroring OTF2's global definitions. A definitions payload is a
// sequence of records, each introduced by a one-byte tag:
//
//	0x01 clock  := uvarint(resolution) varint(globalOffset)
//	0x02 string := uvarint(stringID) uvarint(byteLen) bytes
//	0x03 region := uvarint(regionID) uvarint(nameStringID) uvarint(fileStringID)
//	               uvarint(line) uvarint(regionType)
//
// The clock record states the timer resolution in ticks per second
// (1e9 for this runtime's nanosecond clock) and the offset added to
// timestamps to recover the recording epoch. String and region IDs are
// dense, start at 0, and must be defined before the first event record
// that references them; the writer emits definitions incrementally, in
// a 'D' chunk immediately preceding the first 'E' chunk that needs
// them, so the readable prefix of a truncated archive is always
// self-contained. regionType is the ordinal of region.Type.
//
// # Events
//
// An event payload carries one run of events of a single thread:
//
//	events := varint(threadID) uvarint(count) event[count]
//	event  := type varint(timeDelta) uvarint(regionRef) uvarint(taskID)
//
// type is one byte, the ordinal of trace.EventType. timeDelta is the
// difference to the previous event of the same thread (across chunks;
// the first event of a thread is a delta against 0). regionRef is 0 for
// events without a region, otherwise regionID+1. Chunks of different
// threads appear in flush order and carry no cross-thread ordering, as
// in any distributed trace; per-thread order is the record order.
//
// # Compressed events (v2)
//
// A 'C' chunk is an 'E' chunk whose payload was compressed when the
// chunk was sealed:
//
//	compressed := method uvarint(rawLen) cdata
//
// method is one byte (1 = DEFLATE, RFC 1951, as produced by
// compress/flate; 0 is reserved for "stored" and never written).
// rawLen is the byte length of the uncompressed payload — a complete
// 'E' payload including its threadID/count head — and cdata is its
// DEFLATE stream. rawLen is bounded by the chunk-length limit; readers
// reject larger declarations before allocating. The writer keeps a
// sealed chunk raw when compression does not shrink it, so 'E' and 'C'
// chunks may interleave freely within one archive.
//
// # Flight-recorder accounting (v2)
//
// An archive dumped from a flight recorder (a ring buffer retaining
// only the most recent window of the event stream) carries one 'F'
// chunk stating what the window dropped, so truncation is visible to
// every consumer:
//
//	flight := uvarint(ringChunks) uvarint(chunkEvents) uvarint(retainedEvents)
//	          uvarint(nthreads) fthread[nthreads]
//	fthread := varint(threadID) uvarint(droppedEvents) uvarint(droppedChunks)
//
// ringChunks and chunkEvents state the ring configuration (chunks per
// thread, events per chunk); retainedEvents is the total event count
// the dump retained; per thread (ascending ID) the dropped counters
// tally the events and chunks evicted from that thread's ring before
// the dump. The writer emits the 'F' chunk directly after the header,
// before any definition or event chunk, so even a dump cut off by a
// full disk keeps its accounting in the salvageable prefix. Readers
// that predate the chunk kind skip it like any unknown kind.
//
// # Footer index and trailer (v2)
//
// Close appends one 'I' chunk describing every definition and event
// chunk written, then a fixed-size 'T' chunk locating it:
//
//	index    := uvarint(ndefs) uvarint(defOffset)[ndefs]
//	            uvarint(nthreads) thread[nthreads]
//	thread   := varint(threadID) uvarint(nchunks) centry[nchunks]
//	centry   := uvarint(offset) uvarint(eventCount)
//	            varint(baseTime) varint(minTime) varint(maxTime)
//	trailer  := uint64le(indexOffset) "SPIX"    // exactly 12 payload bytes
//
// All offsets are absolute byte positions of a chunk's kind byte,
// counted from the start of the archive. Threads appear in ascending
// thread-ID order; a thread's centries appear in archive order, with
// offsets strictly increasing. baseTime is the thread's running
// timestamp before the chunk's first event — its first timeDelta is
// relative to baseTime — so any event chunk can be decoded standalone
// after seeking to its offset. minTime and maxTime are the inclusive
// bounds of the chunk's absolute event timestamps, the pruning
// predicate for time-window queries. The 'T' chunk is always the last
// 14 bytes of a complete archive (1 kind byte, 1 length byte — 12
// encodes as a single-byte uvarint — and the 12-byte payload), so a
// reader locates the index by reading the final 14 bytes, verifying
// kind, length and the "SPIX" magic, and seeking to indexOffset. A
// failed trailer check means "no index" (v1 archive, crashed run,
// or trailing garbage) and readers fall back to the sequential walk.
//
// # API
//
// Writer streams events into an archive with one in-memory chunk buffer
// per thread (it implements trace.EventSink, so a trace.Recorder in
// bounded-memory mode can flush straight into it). The Writer encodes
// concurrently: each thread's events are encoded in that thread's own
// buffer, region interning publishes atomically, and the writer's only
// shared lock is held just for the append of a framed chunk to the
// underlying io.Writer — one thread's slow sink flush never blocks
// recording or flushing on the others; with WithCompression, chunk
// payloads are compressed outside that lock too. Reader iterates an
// archive event by event via Next in O(chunk) memory; ReadAll loads a
// whole archive into a trace.Trace, and Analyze runs the streaming
// trace analysis without ever materializing the trace. AnalyzeParallel
// and ReadAllParallel are the multi-core variants: a sequential frame
// scanner fans chunk decoding out to a worker pool while per-thread
// shards replay each thread's chunks in archive order, keeping memory
// at O(workers x chunk) and the results identical to the sequential
// paths (reflect.DeepEqual, including for truncated archives).
//
// Queries are the seekable layer on top: ReadIndex locates and decodes
// the footer index in O(1) seeks, Reader.Seek repositions at an indexed
// chunk, and AnalyzeQuery/ReadAllQuery plan a trace.Query (time window
// + thread subset) over the index so only matching chunks are read and
// decoded — falling back to the sequential scan, with identical
// results and the same ErrTruncated salvage, when no index is present.
package otf2

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/region"
	"repro/internal/trace"
)

// Format constants. magic is 7 bytes so the header including the
// version byte is 8 bytes total.
const (
	magic = "SPOTF2\x00"

	// version1 is the original sequential format; version2 adds
	// compressed chunks and the footer index. The writer emits version2
	// unless configured down; the reader accepts both.
	version1 = 1
	version2 = 2

	chunkDefs       = 'D'
	chunkEvents     = 'E'
	chunkCompressed = 'C'
	chunkIndex      = 'I'
	chunkTrailer    = 'T'
	chunkFlight     = 'F'

	defClock  = 0x01
	defString = 0x02
	defRegion = 0x03

	// compressed-chunk method bytes.
	compMethodFlate = 1

	// trailerPayloadLen is the fixed 'T' payload size: an 8-byte LE
	// index offset plus the 4-byte trailerMagic. trailerLen adds the
	// kind byte and the single-byte uvarint length, making a complete
	// trailer exactly 14 bytes — the fixed suffix ReadIndex inspects.
	trailerPayloadLen = 12
	trailerLen        = trailerPayloadLen + 2
	trailerMagic      = "SPIX"

	// maxChunkLen caps the declared payload length a reader will
	// allocate, guarding against corrupt or hostile headers. It also
	// caps the declared rawLen of a compressed chunk.
	maxChunkLen = 1 << 26

	// maxEventType is the highest trace.EventType ordinal in format
	// versions 1 and 2.
	maxEventType = uint8(trace.EvThreadEnd)

	// maxRegionType is the highest region.Type ordinal in format
	// versions 1 and 2.
	maxRegionType = uint64(region.Parameter)
)

// Ext is the file extension conventionally used for archives.
const Ext = ".otf2"

// FormatVersion is the archive format version this package writes by
// default — the header's version byte. Experiment metadata records it
// so offline tooling can tell which reader an archive needs.
const FormatVersion = version2

// Compression selects the block compression applied to sealed event
// chunks of a version-2 archive (the 'C' chunk kind). It trades write
// CPU for archive size; reading decompresses transparently either way.
type Compression int

const (
	// CompressionNone writes raw 'E' chunks only (the default).
	CompressionNone Compression = iota
	// CompressionFlate DEFLATE-compresses each sealed chunk payload
	// (compress/flate at BestSpeed), keeping chunks that do not shrink
	// raw.
	CompressionFlate
)

// String renders the compression the way CLI flags and meta.json spell
// it.
func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionFlate:
		return "flate"
	}
	return fmt.Sprintf("compression(%d)", int(c))
}

// ParseCompression maps a compression name (as printed by String) back
// to its value.
func ParseCompression(s string) (Compression, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return CompressionNone, nil
	case "flate", "deflate":
		return CompressionFlate, nil
	}
	return 0, fmt.Errorf("unknown compression %q (want %q or %q)",
		s, CompressionNone, CompressionFlate)
}

// ErrTruncated marks an archive cut off mid-chunk — the typical state
// after a crashed run. Every event returned before the error belongs to
// the intact prefix and is valid.
var ErrTruncated = errors.New("otf2: archive truncated")

// ErrNoIndex reports that an archive carries no readable footer index —
// it is a v1 archive, a v2 archive cut off before Close, or its trailer
// is damaged. Sequential access still works; ReadIndex callers fall
// back to it.
var ErrNoIndex = errors.New("otf2: archive has no index")

// corrupt builds a format-violation error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("otf2: corrupt archive: "+format, args...)
}
