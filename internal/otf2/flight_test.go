package otf2

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/region"
	"repro/internal/trace"
)

// flightTestTrace builds a small deterministic trace plus the matching
// eviction accounting, as a flight snapshot would produce them.
func flightTestTrace(t *testing.T) (*trace.Trace, trace.FlightStats) {
	t.Helper()
	reg := region.NewRegistry()
	work := reg.Register("work", "f.go", 1, region.Task)
	tr := &trace.Trace{Threads: map[int][]trace.Event{}}
	retained := 0
	for tid := 0; tid < 3; tid++ {
		for i := 0; i < 10+tid; i++ {
			tr.Threads[tid] = append(tr.Threads[tid], trace.Event{
				Time: int64(100*tid + i), Type: trace.EvEnter, Region: work, TaskID: uint64(tid),
			})
			retained++
		}
	}
	st := trace.FlightStats{
		RingChunks: 4, ChunkEvents: 8, RetainedEvents: retained,
		DroppedEvents: 1234, DroppedChunks: 17,
		Threads: []trace.FlightThreadStats{
			{Thread: 0, RetainedEvents: 10, DroppedEvents: 1000, DroppedChunks: 10},
			{Thread: 1, RetainedEvents: 11, DroppedEvents: 200, DroppedChunks: 5},
			{Thread: 2, RetainedEvents: 12, DroppedEvents: 34, DroppedChunks: 2},
		},
	}
	return tr, st
}

func TestWriteFlightDumpRoundTrip(t *testing.T) {
	tr, st := flightTestTrace(t)
	info := FlightInfoFromStats(st)

	for _, comp := range []Compression{CompressionNone, CompressionFlate} {
		var buf bytes.Buffer
		if err := WriteFlightDump(&buf, tr, info, WithCompression(comp)); err != nil {
			t.Fatalf("%v: WriteFlightDump: %v", comp, err)
		}

		// The dump is a normal archive: events round-trip exactly.
		r, err := NewReader(bytes.NewReader(buf.Bytes()), region.NewRegistry())
		if err != nil {
			t.Fatalf("%v: NewReader: %v", comp, err)
		}
		got := &trace.Trace{Threads: map[int][]trace.Event{}}
		for {
			tid, ev, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%v: Next: %v", comp, err)
			}
			got.Threads[tid] = append(got.Threads[tid], ev)
		}
		if got.NumEvents() != tr.NumEvents() || len(got.Threads) != len(tr.Threads) {
			t.Fatalf("%v: round-trip lost events: %d/%d", comp, got.NumEvents(), tr.NumEvents())
		}
		for tid, evs := range tr.Threads {
			for i, ev := range evs {
				g := got.Threads[tid][i]
				if g.Time != ev.Time || g.Type != ev.Type || g.TaskID != ev.TaskID || g.Region.Name != ev.Region.Name {
					t.Fatalf("%v: thread %d event %d = %+v, want %+v", comp, tid, i, g, ev)
				}
			}
		}

		// ...and it carries the accounting chunk.
		fi := r.FlightInfo()
		if fi == nil {
			t.Fatalf("%v: reader did not surface FlightInfo", comp)
		}
		if !reflect.DeepEqual(fi, info) {
			t.Fatalf("%v: FlightInfo = %+v, want %+v", comp, fi, info)
		}
	}
}

func TestWriteFlightDumpIndexedAndStatted(t *testing.T) {
	tr, st := flightTestTrace(t)
	path := filepath.Join(t.TempDir(), "dump.otf2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFlightDump(f, tr, FlightInfoFromStats(st)); err != nil {
		t.Fatalf("WriteFlightDump: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	astats, err := StatFile(path)
	if err != nil {
		t.Fatalf("StatFile: %v", err)
	}
	if !astats.Indexed {
		t.Fatal("flight dump has no footer index")
	}
	if astats.Flight == nil {
		t.Fatal("StatFile did not surface the flight accounting")
	}
	if astats.Flight.DroppedEvents != st.DroppedEvents || astats.Flight.DroppedChunks != st.DroppedChunks ||
		astats.Flight.RetainedEvents != st.RetainedEvents {
		t.Fatalf("StatFile flight = %+v, want counts %d/%d/%d",
			astats.Flight, st.RetainedEvents, st.DroppedEvents, st.DroppedChunks)
	}

	// Time-window queries go through the index like any v2 archive.
	a, qst, warn, err := AnalyzeFileQuery(path, Query{}, 1)
	if err != nil || a == nil {
		t.Fatalf("AnalyzeFileQuery: %v", err)
	}
	if warn != "" {
		t.Fatalf("unexpected salvage warning on a complete dump: %s", warn)
	}
	if !qst.Indexed {
		t.Fatal("query did not use the dump's index")
	}
}

func TestWriteFlightDumpNilInfo(t *testing.T) {
	tr, _ := flightTestTrace(t)
	var buf bytes.Buffer
	if err := WriteFlightDump(&buf, tr, nil, WithCompression(CompressionNone)); err != nil {
		t.Fatalf("WriteFlightDump(nil info): %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if r.FlightInfo() != nil {
		t.Fatal("nil info produced an accounting chunk")
	}
}

func TestWriteFlightInfoRequiresV2(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithVersion(1))
	if err := w.WriteFlightInfo(&FlightInfo{RingChunks: 2, ChunkEvents: 4}); err == nil {
		t.Fatal("WriteFlightInfo on a v1 archive did not error")
	}
}

// TestFlightDumpDiskFullSalvage writes a dump onto a nearly-full fake
// disk: the write must surface the injected error, and the intact
// prefix must still open, still state its dropped counts (the
// accounting chunk is the first chunk, ahead of any event data), and
// salvage every fully-written event chunk.
func TestFlightDumpDiskFullSalvage(t *testing.T) {
	tr, st := flightTestTrace(t)
	info := FlightInfoFromStats(st)

	var full bytes.Buffer
	if err := WriteFlightDump(&full, tr, info, WithCompression(CompressionNone)); err != nil {
		t.Fatal(err)
	}

	// Cut the disk just after the first event chunk's worth of bytes.
	capacity := int64(full.Len()) * 2 / 3
	var got bytes.Buffer
	fw := faultinject.NewWriter(&got, faultinject.CapacityBytes(capacity))
	err := WriteFlightDump(fw, tr, info, WithCompression(CompressionNone))
	if err == nil {
		t.Fatal("dump to a full disk did not surface the write error")
	}

	path := filepath.Join(t.TempDir(), "partial.otf2")
	if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// The prefix is salvageable and its accounting is intact.
	if n, err := IntactPrefixSize(path); err != nil || n <= 0 {
		t.Fatalf("IntactPrefixSize = %d, %v", n, err)
	}
	salv, _, err := ReadFileLenient(path, region.NewRegistry(), 1)
	if err != nil {
		t.Fatalf("ReadFileLenient on partial dump: %v", err)
	}
	if salv.NumEvents() == 0 || salv.NumEvents() >= tr.NumEvents() {
		t.Fatalf("salvaged %d events, want a proper non-empty prefix of %d", salv.NumEvents(), tr.NumEvents())
	}
	astats, err := StatFile(path)
	if err != nil {
		t.Fatalf("StatFile on partial dump: %v", err)
	}
	if astats.Flight == nil || astats.Flight.DroppedEvents != st.DroppedEvents {
		t.Fatalf("partial dump lost the flight accounting: %+v", astats.Flight)
	}
	if astats.Indexed {
		t.Fatal("truncated dump claims a footer index")
	}
}

func TestFlightInfoChunkSkippedByOldReaders(t *testing.T) {
	// Readers must treat a trailing unknown-to-them accounting chunk the
	// way they treat any unknown kind: decoding events still works even
	// when the info chunk is not first (defensive reordering).
	tr, st := flightTestTrace(t)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ids := tr.ThreadIDs()
	if err := w.WriteEvents(ids[0], tr.Threads[ids[0]]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFlightInfo(FlightInfoFromStats(st)); err != nil {
		t.Fatal(err)
	}
	for _, tid := range ids[1:] {
		if err := w.WriteEvents(tid, tr.Threads[tid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatalf("ReadAll with mid-archive accounting chunk: %v", err)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Fatalf("events = %d, want %d", got.NumEvents(), tr.NumEvents())
	}
}
