package otf2

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/region"
	"repro/internal/trace"
)

// queryArchive writes tr as an archive with small chunks so queries
// have many chunks to prune.
func queryArchive(t *testing.T, tr *trace.Trace, opts ...WriterOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr, append([]WriterOption{WithChunkBytes(1024)}, opts...)...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// queryCases covers the edge cases the query semantics are defined on:
// full matches, interior windows, empty and inverted windows,
// out-of-range bounds, thread subsets, and combinations.
func queryCases(tr *trace.Trace) []Query {
	var minT, maxT int64
	first := true
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if first || ev.Time < minT {
				minT = ev.Time
			}
			if first || ev.Time > maxT {
				maxT = ev.Time
			}
			first = false
		}
	}
	mid := (minT + maxT) / 2
	tids := tr.ThreadIDs()
	qs := []Query{
		{}, // all
		{Windowed: true, MinTime: minT, MaxTime: maxT},
		{Windowed: true, MinTime: mid, MaxTime: maxT},
		{Windowed: true, MinTime: minT, MaxTime: mid},
		{Windowed: true, MinTime: mid - (maxT-minT)/8, MaxTime: mid + (maxT-minT)/8},
		{Windowed: true, MinTime: maxT + 1, MaxTime: maxT + 1000}, // out of range high
		{Windowed: true, MinTime: minT - 1000, MaxTime: minT - 1}, // out of range low
		{Windowed: true, MinTime: mid, MaxTime: mid - 1},          // inverted: empty
	}
	if len(tids) > 1 {
		qs = append(qs,
			Query{Threads: tids[:1]},
			Query{Threads: tids[1:2], Windowed: true, MinTime: mid, MaxTime: maxT},
			Query{Threads: []int{tids[0], tids[len(tids)-1]}},
			Query{Threads: []int{1 << 20}}, // nonexistent thread
		)
	}
	return qs
}

// TestQueryMatchesFilterReference checks the defining property of every
// query path: the result equals fully decoding, filtering with
// Query.Filter, and then reading/analyzing — at worker counts 1 and 4,
// on indexed (v2), compressed, and fallback (v1) archives.
func TestQueryMatchesFilterReference(t *testing.T) {
	tr := benchTrace(3, 400)
	archives := map[string][]byte{
		"v2":       queryArchive(t, tr),
		"v2-flate": queryArchive(t, tr, WithCompression(CompressionFlate)),
		"v1":       queryArchive(t, tr, WithVersion(1)),
	}
	for name, archive := range archives {
		full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", name, err)
		}
		for _, q := range queryCases(full) {
			wantTr := q.Filter(full)
			wantA := trace.Analyze(wantTr)
			for _, workers := range []int{1, 4} {
				gotA, st, err := AnalyzeQuery(bytes.NewReader(archive), q, workers)
				if err != nil {
					t.Fatalf("%s workers=%d %v: AnalyzeQuery: %v", name, workers, q, err)
				}
				if !reflect.DeepEqual(gotA, wantA) {
					t.Errorf("%s workers=%d %v: AnalyzeQuery != analyze(filter(full))", name, workers, q)
				}
				if wantIndexed := name != "v1"; st.Indexed != wantIndexed {
					t.Errorf("%s workers=%d %v: stats.Indexed = %v, want %v", name, workers, q, st.Indexed, wantIndexed)
				}
				gotTr, _, err := ReadAllQuery(bytes.NewReader(archive), region.NewRegistry(), q, workers)
				if err != nil {
					t.Fatalf("%s workers=%d %v: ReadAllQuery: %v", name, workers, q, err)
				}
				tracesEqual(t, wantTr, gotTr)
			}
		}
	}
}

// TestQueryReadsOnlyMatchingChunks is the acceptance check for the
// seekable layer: a windowed query on a >=1M-event v2 archive must
// read (and decode) only the chunks whose indexed time bounds overlap
// the window — O(matching chunks), not O(archive).
func TestQueryReadsOnlyMatchingChunks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >=1M-event archive")
	}
	tr := benchTrace(4, 1<<16) // 4 threads x 65536 tasks x 4+ events > 1M events
	if n := tr.NumEvents(); n < 1_000_000 {
		t.Fatalf("test trace has %d events, want >= 1M", n)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()

	var minT, maxT int64
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if ev.Time > maxT {
				maxT = ev.Time
			}
		}
	}
	// A narrow interior window: an eighth of the time range.
	q := Query{Windowed: true, MinTime: minT + (maxT-minT)/2, MaxTime: minT + (maxT-minT)/2 + (maxT-minT)/8}

	got, st, err := AnalyzeQuery(bytes.NewReader(archive), q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Indexed {
		t.Fatal("v2 archive did not take the indexed path")
	}
	if st.ChunksTotal < 100 {
		t.Fatalf("archive has only %d chunks; chunk pruning is not meaningfully tested", st.ChunksTotal)
	}
	if st.ChunksRead >= st.ChunksTotal/2 {
		t.Fatalf("windowed query read %d of %d chunks; want a pruned minority", st.ChunksRead, st.ChunksTotal)
	}
	full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Analyze(q.Filter(full))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("windowed indexed analysis differs from filtered full analysis")
	}

	// The zero query over the same archive must read every chunk and
	// reproduce the plain analysis exactly.
	all, st, err := AnalyzeQuery(bytes.NewReader(archive), Query{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksRead != st.ChunksTotal {
		t.Fatalf("zero query read %d of %d chunks", st.ChunksRead, st.ChunksTotal)
	}
	seq, err := Analyze(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, seq) {
		t.Fatal("indexed full-archive analysis differs from sequential analysis")
	}
}

// TestCompressedRoundTrip checks that compressed archives decode
// identically to uncompressed ones, shrink the file, and interoperate
// with every reader path.
func TestCompressedRoundTrip(t *testing.T) {
	tr := benchTrace(2, 500)
	raw := queryArchive(t, tr)
	comp := queryArchive(t, tr, WithCompression(CompressionFlate))
	if len(comp) >= len(raw) {
		t.Fatalf("compressed archive is %d bytes, raw %d: no shrink", len(comp), len(raw))
	}
	want, err := ReadAll(bytes.NewReader(raw), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(comp), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, want, got)
	gotPar, err := ReadAllParallel(bytes.NewReader(comp), region.NewRegistry(), 4)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, want, gotPar)
	wantA, err := Analyze(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := AnalyzeParallel(bytes.NewReader(comp), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatal("parallel analysis of compressed archive differs")
	}
}

// TestVersionRoundTrip checks v1 <-> v2 conversion round-trips the
// event stream byte-identically: writing the same trace at either
// version and converting back reproduces the original archive bytes
// (the writer is deterministic).
func TestVersionRoundTrip(t *testing.T) {
	tr := benchTrace(2, 300)
	v1 := queryArchive(t, tr, WithVersion(1))
	v2 := queryArchive(t, tr)

	if v1[len(magic)] != version1 || v2[len(magic)] != version2 {
		t.Fatal("version bytes not as configured")
	}

	// v1 -> v2 -> v1: decode and re-encode at each step.
	up, err := ReadAll(bytes.NewReader(v1), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var upBuf bytes.Buffer
	if err := Write(&upBuf, up, WithChunkBytes(1024)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(upBuf.Bytes(), v2) {
		t.Fatal("v1->v2 upgrade is not byte-identical to a direct v2 write")
	}
	down, err := ReadAll(bytes.NewReader(upBuf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var downBuf bytes.Buffer
	if err := Write(&downBuf, down, WithChunkBytes(1024), WithVersion(1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(downBuf.Bytes(), v1) {
		t.Fatal("v2->v1 downgrade is not byte-identical to a direct v1 write")
	}
}

// TestV1ArchiveBytesUnchanged pins the compatibility guarantee: a v1
// archive written by the new writer is byte-for-byte the v2 archive
// minus the version byte, index and trailer — 'D' and 'E' chunks are
// untouched by the format revision.
func TestV1ArchiveBytesUnchanged(t *testing.T) {
	tr := benchTrace(2, 200)
	v1 := queryArchive(t, tr, WithVersion(1))
	v2 := queryArchive(t, tr)

	// Locate the index chunk offset from the trailer: everything before
	// it must equal the v1 byte stream (bar the version byte).
	tail := v2[len(v2)-trailerLen:]
	if tail[0] != chunkTrailer {
		t.Fatal("archive does not end in a trailer chunk")
	}
	idxOff := int64(uint64(tail[2]) | uint64(tail[3])<<8 | uint64(tail[4])<<16 | uint64(tail[5])<<24 |
		uint64(tail[6])<<32 | uint64(tail[7])<<40 | uint64(tail[8])<<48 | uint64(tail[9])<<56)
	body2 := v2[len(magic)+1 : idxOff]
	body1 := v1[len(magic)+1:]
	if !bytes.Equal(body1, body2) {
		t.Fatal("v1 and v2 chunk streams differ outside the index/trailer")
	}
}

// TestTruncatedV2SalvagesViaSequentialFallback cuts a v2 archive so the
// index is lost and checks queries still salvage the intact prefix via
// the sequential fallback, reporting ErrTruncated.
func TestTruncatedV2SalvagesViaSequentialFallback(t *testing.T) {
	tr := benchTrace(2, 400)
	archive := queryArchive(t, tr)
	cut := int(lastEventChunkOffset(t, archive)) + 3

	if _, err := ReadIndex(bytes.NewReader(archive[:cut])); err == nil {
		t.Fatal("truncated archive still has a readable index")
	}
	for _, workers := range []int{1, 4} {
		a, st, err := AnalyzeQuery(bytes.NewReader(archive[:cut]), Query{}, workers)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("workers=%d: err = %v, want ErrTruncated", workers, err)
		}
		if st.Indexed {
			t.Fatalf("workers=%d: truncated archive took the indexed path", workers)
		}
		if a == nil || len(a.PerThread) == 0 {
			t.Fatalf("workers=%d: no analysis salvaged", workers)
		}
		tr2, _, err := ReadAllQuery(bytes.NewReader(archive[:cut]), region.NewRegistry(), Query{}, workers)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("workers=%d: ReadAllQuery err = %v, want ErrTruncated", workers, err)
		}
		if tr2 == nil || tr2.NumEvents() == 0 || tr2.NumEvents() >= tr.NumEvents() {
			t.Fatalf("workers=%d: salvaged %d events, want non-empty strict prefix", workers, tr2.NumEvents())
		}
	}
}

// TestReaderSeekDecodesIndexedChunk drives the random-access primitives
// directly: PrimeDefinitions + Seek must reproduce exactly the events a
// sequential walk attributes to that chunk.
func TestReaderSeekDecodesIndexedChunk(t *testing.T) {
	tr := benchTrace(2, 300)
	archive := queryArchive(t, tr)
	ix, err := ReadIndex(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range ix.Threads {
		pos := 0
		for ci, cr := range tc.Chunks {
			rd, err := NewReader(bytes.NewReader(archive), region.NewRegistry())
			if err != nil {
				t.Fatal(err)
			}
			if err := rd.PrimeDefinitions(ix.DefOffsets); err != nil {
				t.Fatal(err)
			}
			if err := rd.Seek(tc.Thread, cr); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < cr.Events; i++ {
				tid, ev, err := rd.Next()
				if err != nil {
					t.Fatalf("thread %d chunk %d event %d: %v", tc.Thread, ci, i, err)
				}
				if tid != tc.Thread {
					t.Fatalf("thread %d chunk %d: Next returned thread %d", tc.Thread, ci, tid)
				}
				want := full.Threads[tc.Thread][pos]
				if !eventsEqual(ev, want) {
					t.Fatalf("thread %d chunk %d event %d: got %+v want %+v", tc.Thread, ci, i, ev, want)
				}
				pos++
			}
		}
		if pos != len(full.Threads[tc.Thread]) {
			t.Fatalf("thread %d: index covers %d events, trace has %d", tc.Thread, pos, len(full.Threads[tc.Thread]))
		}
	}
}

// TestIndexMatchesArchive validates the invariants the planner relies
// on: offsets point at event chunks, counts and time bounds match the
// decoded contents.
func TestIndexMatchesArchive(t *testing.T) {
	tr := benchTrace(3, 200)
	for _, opts := range [][]WriterOption{nil, {WithCompression(CompressionFlate)}} {
		archive := queryArchive(t, tr, opts...)
		ix, err := ReadIndex(bytes.NewReader(archive))
		if err != nil {
			t.Fatal(err)
		}
		if ix.NumEvents() != tr.NumEvents() {
			t.Fatalf("index declares %d events, trace has %d", ix.NumEvents(), tr.NumEvents())
		}
		full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range ix.Threads {
			pos := 0
			for _, cr := range tc.Chunks {
				kind, _, err := ReadChunkAt(bytes.NewReader(archive), cr.Offset)
				if err != nil {
					t.Fatal(err)
				}
				if kind != chunkEvents && kind != chunkCompressed {
					t.Fatalf("index points at %q chunk", kind)
				}
				evs := full.Threads[tc.Thread][pos : pos+int(cr.Events)]
				var minT, maxT int64
				for i, ev := range evs {
					if i == 0 || ev.Time < minT {
						minT = ev.Time
					}
					if i == 0 || ev.Time > maxT {
						maxT = ev.Time
					}
				}
				if minT != cr.MinTime || maxT != cr.MaxTime {
					t.Fatalf("thread %d chunk at %d: bounds [%d,%d], events span [%d,%d]",
						tc.Thread, cr.Offset, cr.MinTime, cr.MaxTime, minT, maxT)
				}
				pos += int(cr.Events)
			}
		}
	}
}

// TestQueryRandomizedProperty fuzzes query windows over random traces:
// every (archive x query x workers) combination must equal the
// filter-then-analyze reference.
func TestQueryRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		opts := []WriterOption{WithChunkBytes(1024)}
		if rng.Intn(2) == 1 {
			opts = append(opts, WithCompression(CompressionFlate))
		}
		if err := Write(&buf, tr, opts...); err != nil {
			t.Fatal(err)
		}
		archive := buf.Bytes()
		full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		q := Query{}
		if rng.Intn(4) > 0 {
			q.Windowed = true
			q.MinTime = rng.Int63n(2000) - 500
			q.MaxTime = q.MinTime + rng.Int63n(1500) - 200
		}
		if rng.Intn(3) == 0 {
			q.Threads = []int{rng.Intn(4)}
		}
		want := trace.Analyze(q.Filter(full))
		for _, workers := range []int{1, 4} {
			got, _, err := AnalyzeQuery(bytes.NewReader(archive), q, workers)
			if err != nil {
				t.Fatalf("round %d workers %d: %v", round, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d workers %d query %v: mismatch", round, workers, q)
			}
		}
	}
}
