package otf2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/region"
	"repro/internal/trace"
)

// DefaultChunkBytes is the per-thread chunk buffer threshold used by
// NewWriter. A thread's buffered events are framed and written out once
// their encoding reaches this size.
const DefaultChunkBytes = 32 * 1024

// IsArchivePath reports whether path names a binary archive by
// extension (".otf2"); anything else is treated as JSONL by the tools.
func IsArchivePath(p string) bool {
	return strings.EqualFold(filepath.Ext(p), Ext)
}

// Writer streams an event trace into an archive. It keeps one chunk
// buffer per thread plus the pending-definitions buffer in memory —
// nothing proportional to trace length. Writer is safe for concurrent
// use, so runtime threads can flush their recorder chunks into it
// directly; it implements trace.EventSink.
//
// Errors from the underlying io.Writer are latched: the first error is
// returned by every subsequent call, including Close.
type Writer struct {
	mu         sync.Mutex
	bw         *bufio.Writer
	chunkBytes int
	err        error

	strings    map[string]uint64
	regions    map[*region.Region]uint64
	defs       []byte // pending definition records, framed before the next event chunk
	threads    map[int]*threadBuf
	threadSeen []int // insertion order, for deterministic Flush
}

// threadBuf accumulates the encoded events of one thread until they
// fill a chunk.
type threadBuf struct {
	buf      []byte
	count    uint64
	lastTime int64
}

// NewWriter starts an archive on w with the default chunk size, writing
// the header and clock properties (nanosecond resolution, zero offset)
// immediately.
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, DefaultChunkBytes)
}

// NewWriterSize is NewWriter with an explicit per-thread chunk buffer
// threshold in bytes (clamped to [1 KiB, 16 MiB]; the threshold trades
// archive-interleaving granularity against memory per thread). The
// upper clamp keeps every emitted chunk well under the reader's
// maxChunkLen sanity limit, so the Writer can never produce an archive
// its own Reader rejects.
func NewWriterSize(w io.Writer, chunkBytes int) *Writer {
	if chunkBytes < 1024 {
		chunkBytes = 1024
	}
	if chunkBytes > maxChunkLen/4 {
		chunkBytes = maxChunkLen / 4
	}
	wr := &Writer{
		bw:         bufio.NewWriter(w),
		chunkBytes: chunkBytes,
		strings:    make(map[string]uint64),
		regions:    make(map[*region.Region]uint64),
		threads:    make(map[int]*threadBuf),
	}
	_, wr.err = wr.bw.WriteString(magic)
	if wr.err == nil {
		wr.err = wr.bw.WriteByte(version)
	}
	// Clock properties: the runtime clock ticks in nanoseconds from an
	// arbitrary epoch.
	wr.defs = append(wr.defs, defClock)
	wr.defs = binary.AppendUvarint(wr.defs, 1e9)
	wr.defs = binary.AppendVarint(wr.defs, 0)
	return wr
}

// internString interns s, queueing a definition record on first use.
func (w *Writer) internString(s string) uint64 {
	id, ok := w.strings[s]
	if ok {
		return id
	}
	if len(s) >= maxChunkLen/2 {
		// A single definition record cannot be split across chunks, so
		// a string this long would produce a 'D' chunk the Reader
		// rejects; refuse it up front instead of writing an unreadable
		// archive.
		if w.err == nil {
			w.err = fmt.Errorf("otf2: string of %d bytes exceeds the encodable limit", len(s))
		}
		return 0
	}
	id = uint64(len(w.strings))
	w.strings[s] = id
	w.defs = append(w.defs, defString)
	w.defs = binary.AppendUvarint(w.defs, id)
	w.defs = binary.AppendUvarint(w.defs, uint64(len(s)))
	w.defs = append(w.defs, s...)
	return id
}

// internRegion interns r, queueing string and region definition records
// on first use, and returns the event-record regionRef (regionID+1).
func (w *Writer) internRegion(r *region.Region) uint64 {
	if r == nil {
		return 0
	}
	id, ok := w.regions[r]
	if !ok {
		name := w.internString(r.Name)
		file := w.internString(r.File)
		id = uint64(len(w.regions))
		w.regions[r] = id
		w.defs = append(w.defs, defRegion)
		w.defs = binary.AppendUvarint(w.defs, id)
		w.defs = binary.AppendUvarint(w.defs, name)
		w.defs = binary.AppendUvarint(w.defs, file)
		w.defs = binary.AppendUvarint(w.defs, uint64(r.Line))
		w.defs = binary.AppendUvarint(w.defs, uint64(r.Type))
	}
	return id + 1
}

// writeChunk frames one chunk whose payload is head followed by body
// (either may be empty); splitting the payload lets emit prepend the
// per-chunk event header without copying the chunk buffer. Caller
// holds w.mu.
func (w *Writer) writeChunk(kind byte, head, body []byte) {
	if w.err != nil {
		return
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(head)+len(body)))
	if _, err := w.bw.Write(hdr[:1+n]); err != nil {
		w.err = err
		return
	}
	if len(head) > 0 {
		if _, err := w.bw.Write(head); err != nil {
			w.err = err
			return
		}
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			w.err = err
		}
	}
}

// flushDefs writes pending definition records as a chunk. Caller holds
// w.mu. Emitting definitions early is always safe — the format only
// requires them before the first event chunk that references them.
func (w *Writer) flushDefs() {
	if len(w.defs) > 0 {
		w.writeChunk(chunkDefs, w.defs, nil)
		w.defs = w.defs[:0]
	}
}

// emit flushes pending definitions and then thread tid's buffered
// events as chunks. Caller holds w.mu.
func (w *Writer) emit(tid int, tb *threadBuf) {
	if tb.count == 0 {
		return
	}
	w.flushDefs()
	var head []byte
	head = binary.AppendVarint(head, int64(tid))
	head = binary.AppendUvarint(head, tb.count)
	w.writeChunk(chunkEvents, head, tb.buf)
	tb.buf = tb.buf[:0]
	tb.count = 0
}

// WriteEvents appends a batch of events of one thread, flushing full
// chunks as the per-thread buffer fills. It implements trace.EventSink,
// so it can serve as the flush target of a trace.Recorder in
// bounded-memory mode.
func (w *Writer) WriteEvents(thread int, events []trace.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tb, ok := w.threads[thread]
	if !ok {
		tb = &threadBuf{}
		w.threads[thread] = tb
		w.threadSeen = append(w.threadSeen, thread)
	}
	for _, ev := range events {
		ref := w.internRegion(ev.Region)
		tb.buf = append(tb.buf, byte(ev.Type))
		tb.buf = binary.AppendVarint(tb.buf, ev.Time-tb.lastTime)
		tb.buf = binary.AppendUvarint(tb.buf, ref)
		tb.buf = binary.AppendUvarint(tb.buf, ev.TaskID)
		tb.lastTime = ev.Time
		tb.count++
		if len(tb.buf) >= w.chunkBytes {
			w.emit(thread, tb)
		}
		// Definitions accumulate independently of event chunks (many
		// distinct regions, few events); bound them the same way so a
		// 'D' chunk can never outgrow the reader's limit either.
		if len(w.defs) >= w.chunkBytes {
			w.flushDefs()
		}
	}
	return w.err
}

// WriteEvent appends a single event of one thread.
func (w *Writer) WriteEvent(thread int, ev trace.Event) error {
	return w.WriteEvents(thread, []trace.Event{ev})
}

// Flush writes out every partially filled chunk buffer (in first-seen
// thread order, for deterministic output) and flushes the underlying
// buffered writer. The Writer remains usable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, tid := range w.threadSeen {
		w.emit(tid, w.threads[tid])
	}
	// An event-less archive still declares its clock properties.
	w.flushDefs()
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	return w.err
}

// Close flushes the archive. It does not close the underlying
// io.Writer (the Writer did not open it).
func (w *Writer) Close() error { return w.Flush() }

// Write serializes a whole in-memory trace as an archive on w, ordered
// by thread then time like WriteJSONL.
func Write(w io.Writer, tr *trace.Trace) error {
	aw := NewWriter(w)
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := aw.WriteEvents(id, tr.Threads[id]); err != nil {
			return err
		}
	}
	return aw.Close()
}
