package otf2

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/region"
	"repro/internal/trace"
)

// DefaultChunkBytes is the per-thread chunk buffer threshold used by
// NewWriter. A thread's buffered events are framed and written out once
// their encoding reaches this size.
const DefaultChunkBytes = 32 * 1024

// IsArchivePath reports whether path names a binary archive by
// extension (".otf2"); anything else is treated as JSONL by the tools.
func IsArchivePath(p string) bool {
	return strings.EqualFold(filepath.Ext(p), Ext)
}

// Writer streams an event trace into an archive. It keeps one chunk
// buffer per thread plus the pending-definitions buffer in memory —
// nothing proportional to trace length. Writer is safe for concurrent
// use, so runtime threads can flush their recorder chunks into it
// directly; it implements trace.EventSink.
//
// Concurrency design: all event encoding happens outside any shared
// lock, in the calling thread's own chunk buffer. Region interning is
// an atomic-publish structure (lock-free lookups once a region is
// interned; a short-lived intern lock assigns IDs and queues definition
// records on first use). The only shared lock, iomu, is held exactly
// for the append of a fully framed chunk to the underlying io.Writer —
// so a streaming flush of thread A (even one blocked in a slow sink)
// never blocks recording or encoding on thread B. Sealed chunk buffers
// are recycled through a sync.Pool instead of being regrown.
//
// Errors from the underlying io.Writer are latched: the first error is
// returned by every subsequent call, including Close.
//
// By default the Writer emits format version 2: it tracks per-chunk
// time bounds and byte offsets and appends the footer index and trailer
// on Close, so readers can seek. WithCompression additionally DEFLATEs
// each sealed chunk payload (outside all shared locks). WithVersion(1)
// downgrades to the index-less v1 byte stream for interoperability.
type Writer struct {
	bw         *bufio.Writer
	chunkBytes int
	version    byte
	comp       Compression

	// err latches the first failure; it is an atomic pointer so every
	// path can check it without taking a lock.
	err atomic.Pointer[error]

	// iomu serializes appends to the underlying writer. It is held only
	// while a framed chunk (or the buffered header) is written out,
	// never while events are encoded.
	iomu sync.Mutex

	// Interning state. regionRefs maps *region.Region to its event
	// regionRef (regionID+1) and is published atomically after the
	// region's definition record has been queued, so lookups are
	// lock-free. internMu guards ID assignment, the string table, the
	// pending-definitions buffer and the thread registration list.
	internMu   sync.Mutex
	regionRefs sync.Map // *region.Region -> uint64 regionRef
	strings    map[string]uint64
	nregions   uint64
	defs       []byte      // open definition-record buffer, framed before the next event chunk
	defsSealed [][]byte    // full definition payloads sealed at record boundaries, each chunk-bounded
	defsBig    atomic.Bool // set when definitions were sealed; drained outside internMu
	threadSeen []int       // first-registration order, for deterministic Flush

	threads sync.Map // int -> *threadBuf

	// Index state, guarded by iomu (it changes only while a chunk is
	// appended). off is the byte offset the next chunk will start at;
	// defOffs and chunkMeta record every written 'D' and event chunk for
	// the footer index; closed latches Close so the index and trailer
	// are appended exactly once.
	off       int64
	defOffs   []int64
	chunkMeta map[int][]ChunkRef
	closed    bool
}

// threadBuf accumulates the encoded events of one thread until they
// fill a chunk. Its mutex is per-thread — uncontended while each
// runtime thread flushes only its own ID, but it keeps the Writer
// correct for callers that share a thread ID across goroutines and for
// Flush sealing partial chunks concurrently with writes.
type threadBuf struct {
	mu       sync.Mutex
	buf      []byte
	count    uint64
	lastTime int64

	// Per-chunk index metadata: chunkBase is the thread's running
	// timestamp before the open chunk's first event (the value the
	// chunk's first delta is relative to); minT/maxT bound the open
	// chunk's absolute timestamps. Reset by seal.
	chunkBase  int64
	minT, maxT int64

	// Two-entry region-ref cache: consecutive events overwhelmingly
	// reference the same one or two regions (enter/exit pairs, task
	// lifecycles), so the shared interning structure is consulted only
	// on a region change — keeping the per-event encode cost a couple
	// of pointer compares instead of a concurrent-map load.
	reg0, reg1 *region.Region
	ref0, ref1 uint64
}

// chunkPool recycles sealed chunk buffers (and the reader side's
// payload buffers): a seal hands its full buffer to the io path and
// continues encoding into a pooled one, so steady-state streaming
// allocates no new chunk-sized buffers.
var chunkPool sync.Pool

// newChunkBuf returns an empty buffer with at least size capacity.
func newChunkBuf(size int) []byte {
	if v := chunkPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= size {
			return b[:0]
		}
	}
	// Headroom for the event that overshoots the seal threshold.
	return make([]byte, 0, size+64)
}

// putChunkBuf recycles b.
func putChunkBuf(b []byte) {
	if cap(b) > 0 {
		chunkPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is amortized per chunk, not per event
	}
}

// WriterOption configures a Writer at construction.
type WriterOption func(*writerConfig)

type writerConfig struct {
	chunkBytes int
	version    byte
	comp       Compression
}

// WithChunkBytes sets the per-thread chunk buffer threshold in bytes
// (clamped to [1 KiB, 16 MiB]; the threshold trades
// archive-interleaving granularity against memory per thread). The
// upper clamp keeps every emitted chunk well under the reader's
// maxChunkLen sanity limit, so the Writer can never produce an archive
// its own Reader rejects.
func WithChunkBytes(n int) WriterOption {
	return func(c *writerConfig) { c.chunkBytes = n }
}

// WithCompression selects the block compression for sealed event
// chunks. Compression requires format version 2; combining it with
// WithVersion(1) is an error the Writer latches.
func WithCompression(comp Compression) WriterOption {
	return func(c *writerConfig) { c.comp = comp }
}

// WithVersion selects the archive format version to emit: 2 (the
// default: seekable, footer index, optional compression) or 1 (the
// sequential-only byte stream, for downgrading archives). Any other
// value is an error the Writer latches.
func WithVersion(v int) WriterOption {
	return func(c *writerConfig) { c.version = byte(v) }
}

// NewWriter starts an archive on w, writing the header and clock
// properties (nanosecond resolution, zero offset) immediately. With no
// options it emits an uncompressed format-version-2 archive with the
// default chunk size.
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	cfg := writerConfig{chunkBytes: DefaultChunkBytes, version: version2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.chunkBytes < 1024 {
		cfg.chunkBytes = 1024
	}
	if cfg.chunkBytes > maxChunkLen/4 {
		cfg.chunkBytes = maxChunkLen / 4
	}
	wr := &Writer{
		bw:         bufio.NewWriter(w),
		chunkBytes: cfg.chunkBytes,
		version:    cfg.version,
		comp:       cfg.comp,
		strings:    make(map[string]uint64),
	}
	switch {
	case cfg.version != version1 && cfg.version != version2:
		wr.setErr(fmt.Errorf("otf2: unsupported format version %d", cfg.version))
	case cfg.version == version1 && cfg.comp != CompressionNone:
		wr.setErr(fmt.Errorf("otf2: format version 1 does not support compression (%v)", cfg.comp))
	case cfg.comp != CompressionNone && cfg.comp != CompressionFlate:
		wr.setErr(fmt.Errorf("otf2: unknown compression %d", cfg.comp))
	}
	if wr.version == version2 {
		wr.chunkMeta = make(map[int][]ChunkRef)
	}
	if _, err := wr.bw.WriteString(magic); err != nil {
		wr.setErr(err)
	} else if err := wr.bw.WriteByte(wr.version); err != nil {
		wr.setErr(err)
	}
	wr.off = int64(len(magic)) + 1
	// Clock properties: the runtime clock ticks in nanoseconds from an
	// arbitrary epoch.
	wr.defs = append(wr.defs, defClock)
	wr.defs = binary.AppendUvarint(wr.defs, 1e9)
	wr.defs = binary.AppendVarint(wr.defs, 0)
	return wr
}

// NewWriterSize is NewWriter with an explicit chunk buffer threshold —
// shorthand for NewWriter(w, WithChunkBytes(chunkBytes)).
func NewWriterSize(w io.Writer, chunkBytes int) *Writer {
	return NewWriter(w, WithChunkBytes(chunkBytes))
}

// Err returns the first latched error, or nil.
func (w *Writer) Err() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

// setErr latches the first non-nil error.
func (w *Writer) setErr(err error) {
	if err != nil {
		w.err.CompareAndSwap(nil, &err)
	}
}

// internStringLocked interns s, queueing a definition record on first
// use. Caller holds internMu.
func (w *Writer) internStringLocked(s string) uint64 {
	id, ok := w.strings[s]
	if ok {
		return id
	}
	if len(s) >= maxChunkLen/2 {
		// A single definition record cannot be split across chunks, so
		// a string this long would produce a 'D' chunk the Reader
		// rejects; refuse it up front instead of writing an unreadable
		// archive.
		w.setErr(fmt.Errorf("otf2: string of %d bytes exceeds the encodable limit", len(s)))
		return 0
	}
	id = uint64(len(w.strings))
	w.strings[s] = id
	w.defs = append(w.defs, defString)
	w.defs = binary.AppendUvarint(w.defs, id)
	w.defs = binary.AppendUvarint(w.defs, uint64(len(s)))
	w.defs = append(w.defs, s...)
	w.sealDefsLocked()
	return id
}

// sealDefsLocked moves the open definition buffer onto the sealed list
// once it reaches the chunk threshold. Sealing happens only at record
// boundaries, so every sealed payload is at most chunkBytes plus one
// record (a string record is bounded by internStringLocked's length
// check) — well under the reader's maxChunkLen limit, preserving the
// invariant that the Writer can never produce an archive its own
// Reader rejects. Caller holds internMu.
func (w *Writer) sealDefsLocked() {
	if len(w.defs) >= w.chunkBytes {
		w.defsSealed = append(w.defsSealed, w.defs)
		w.defs = nil
		w.defsBig.Store(true)
	}
}

// internRegion returns r's event-record regionRef (regionID+1),
// interning it on first use. The fast path is a lock-free map load; the
// slow path runs once per distinct region.
func (w *Writer) internRegion(r *region.Region) uint64 {
	if r == nil {
		return 0
	}
	if v, ok := w.regionRefs.Load(r); ok {
		return v.(uint64)
	}
	return w.internRegionSlow(r)
}

func (w *Writer) internRegionSlow(r *region.Region) uint64 {
	w.internMu.Lock()
	defer w.internMu.Unlock()
	if v, ok := w.regionRefs.Load(r); ok {
		return v.(uint64)
	}
	name := w.internStringLocked(r.Name)
	file := w.internStringLocked(r.File)
	id := w.nregions
	w.nregions++
	w.defs = append(w.defs, defRegion)
	w.defs = binary.AppendUvarint(w.defs, id)
	w.defs = binary.AppendUvarint(w.defs, name)
	w.defs = binary.AppendUvarint(w.defs, file)
	w.defs = binary.AppendUvarint(w.defs, uint64(r.Line))
	w.defs = binary.AppendUvarint(w.defs, uint64(r.Type))
	// Definitions accumulate independently of event chunks (many
	// distinct regions, few events); seal them like event chunks so a
	// 'D' chunk can never outgrow the reader's limit. The drain itself
	// happens outside internMu (lock order: iomu before internMu).
	w.sealDefsLocked()
	// Publish last: by the time another thread sees the ref, the
	// definition record is queued ahead of any chunk seal.
	w.regionRefs.Store(r, id+1)
	return id + 1
}

// resetChunkMeta opens a fresh chunk's index metadata: the next delta
// is relative to lastTime, and the time bounds start at their
// sentinels (minT > maxT means "no events yet").
func (tb *threadBuf) resetChunkMeta() {
	tb.chunkBase = tb.lastTime
	tb.minT = int64(^uint64(0) >> 1) // math.MaxInt64
	tb.maxT = -tb.minT - 1           // math.MinInt64
}

// threadBuf returns (registering on first use) thread id's chunk buffer.
func (w *Writer) threadBuf(id int) *threadBuf {
	if v, ok := w.threads.Load(id); ok {
		return v.(*threadBuf)
	}
	tb := &threadBuf{buf: newChunkBuf(w.chunkBytes)}
	tb.resetChunkMeta()
	if v, loaded := w.threads.LoadOrStore(id, tb); loaded {
		putChunkBuf(tb.buf)
		return v.(*threadBuf)
	}
	w.internMu.Lock()
	w.threadSeen = append(w.threadSeen, id)
	w.internMu.Unlock()
	return tb
}

// writeChunkLocked frames one chunk whose payload is head followed by
// body (either may be empty); splitting the payload lets the seal path
// prepend the per-chunk event header without copying the chunk buffer.
// Caller holds iomu.
func (w *Writer) writeChunkLocked(kind byte, head, body []byte) {
	if w.Err() != nil {
		return
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(head)+len(body)))
	if _, err := w.bw.Write(hdr[:1+n]); err != nil {
		w.setErr(err)
		return
	}
	if len(head) > 0 {
		if _, err := w.bw.Write(head); err != nil {
			w.setErr(err)
			return
		}
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			w.setErr(err)
			return
		}
	}
	w.off += int64(1+n) + int64(len(head)) + int64(len(body))
}

// flushDefsLocked takes ownership of the pending definition records and
// writes them as a chunk. Caller holds iomu; internMu is taken only for
// the swap, so interning threads are never blocked on sink I/O.
// Emitting definitions early is always safe — the format only requires
// them before the first event chunk that references them, and the swap
// happens under iomu, so a definition queued before a seal can never be
// written after that seal's event chunk.
func (w *Writer) flushDefsLocked() {
	w.internMu.Lock()
	sealed := w.defsSealed
	w.defsSealed = nil
	defs := w.defs
	w.defs = nil
	w.defsBig.Store(false)
	w.internMu.Unlock()
	for _, p := range sealed {
		w.recordDefLocked()
		w.writeChunkLocked(chunkDefs, p, nil)
	}
	if len(defs) > 0 {
		w.recordDefLocked()
		w.writeChunkLocked(chunkDefs, defs, nil)
	}
}

// recordDefLocked records the offset of the 'D' chunk about to be
// written for the footer index. Caller holds iomu.
func (w *Writer) recordDefLocked() {
	if w.version == version2 && w.Err() == nil {
		w.defOffs = append(w.defOffs, w.off)
	}
}

// flushDefs drains oversized pending definitions outside the encode path.
func (w *Writer) flushDefs() {
	w.iomu.Lock()
	w.flushDefsLocked()
	w.iomu.Unlock()
}

// flatePool recycles flate.Writer instances across seals: constructing
// one allocates the full DEFLATE state (~hundreds of KiB), Reset reuses
// it.
var flatePool sync.Pool

// appendWriter adapts an append-grown byte slice to io.Writer for the
// flate encoder.
type appendWriter struct{ b []byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}

// compressChunk DEFLATEs a sealed event payload (head ++ body) into a
// complete 'C' chunk payload (method byte, uvarint rawLen, DEFLATE
// stream), returned in a pooled buffer. ok is false — and no buffer is
// returned — when compression failed to shrink the payload, in which
// case the caller writes the raw 'E' chunk instead.
func compressChunk(head, body []byte) (c []byte, ok bool) {
	rawLen := len(head) + len(body)
	aw := &appendWriter{b: newChunkBuf(rawLen)}
	aw.b = append(aw.b, compMethodFlate)
	aw.b = binary.AppendUvarint(aw.b, uint64(rawLen))
	var fw *flate.Writer
	if v := flatePool.Get(); v != nil {
		fw = v.(*flate.Writer)
		fw.Reset(aw)
	} else {
		fw, _ = flate.NewWriter(aw, flate.BestSpeed)
	}
	_, werr := fw.Write(head)
	if werr == nil {
		_, werr = fw.Write(body)
	}
	cerr := fw.Close()
	flatePool.Put(fw)
	if werr != nil || cerr != nil || len(aw.b) >= rawLen {
		putChunkBuf(aw.b)
		return nil, false
	}
	return aw.b, true
}

// seal frames tb's buffered events and appends them to the archive,
// handing tb a fresh pooled buffer. Caller holds tb.mu; compression (if
// configured) runs here, outside every shared lock; iomu is held only
// for the final append of the already-framed bytes.
func (w *Writer) seal(tid int, tb *threadBuf) {
	if tb.count == 0 {
		return
	}
	payload := tb.buf
	count := tb.count
	base, minT, maxT := tb.chunkBase, tb.minT, tb.maxT
	tb.buf = newChunkBuf(w.chunkBytes)
	tb.count = 0
	tb.resetChunkMeta()

	var head [2 * binary.MaxVarintLen64]byte
	n := binary.PutVarint(head[:], int64(tid))
	n += binary.PutUvarint(head[n:], count)

	kind := byte(chunkEvents)
	outHead, outBody := head[:n], payload
	var cbuf []byte
	if w.comp == CompressionFlate && w.Err() == nil {
		if c, ok := compressChunk(head[:n], payload); ok {
			kind, outHead, outBody, cbuf = chunkCompressed, nil, c, c
		}
	}

	w.iomu.Lock()
	w.flushDefsLocked()
	if w.version == version2 && w.Err() == nil {
		w.chunkMeta[tid] = append(w.chunkMeta[tid], ChunkRef{
			Offset: w.off, Events: count,
			BaseTime: base, MinTime: minT, MaxTime: maxT,
		})
	}
	w.writeChunkLocked(kind, outHead, outBody)
	w.iomu.Unlock()
	putChunkBuf(payload)
	if cbuf != nil {
		putChunkBuf(cbuf)
	}
}

// WriteEvents appends a batch of events of one thread, flushing full
// chunks as the per-thread buffer fills. It implements trace.EventSink,
// so it can serve as the flush target of a trace.Recorder in
// bounded-memory mode. Encoding runs entirely in the thread's own
// buffer; concurrent batches of different threads never contend.
func (w *Writer) WriteEvents(thread int, events []trace.Event) error {
	if err := w.Err(); err != nil {
		return err
	}
	tb := w.threadBuf(thread)
	tb.mu.Lock()
	for i := range events {
		ev := &events[i]
		var ref uint64
		switch r := ev.Region; r {
		case nil:
		case tb.reg0:
			ref = tb.ref0
		case tb.reg1:
			ref = tb.ref1
		default:
			ref = w.internRegion(r)
			tb.reg1, tb.ref1 = tb.reg0, tb.ref0
			tb.reg0, tb.ref0 = r, ref
		}
		tb.buf = append(tb.buf, byte(ev.Type))
		tb.buf = binary.AppendVarint(tb.buf, ev.Time-tb.lastTime)
		tb.buf = binary.AppendUvarint(tb.buf, ref)
		tb.buf = binary.AppendUvarint(tb.buf, ev.TaskID)
		tb.lastTime = ev.Time
		// Chunk time bounds for the footer index: two predictable
		// compares per event, no branches taken on a monotone clock
		// beyond the max update.
		if ev.Time < tb.minT {
			tb.minT = ev.Time
		}
		if ev.Time > tb.maxT {
			tb.maxT = ev.Time
		}
		tb.count++
		if len(tb.buf) >= w.chunkBytes {
			w.seal(thread, tb)
		}
	}
	tb.mu.Unlock()
	if w.defsBig.Load() {
		w.flushDefs()
	}
	return w.Err()
}

// WriteEvent appends a single event of one thread.
func (w *Writer) WriteEvent(thread int, ev trace.Event) error {
	return w.WriteEvents(thread, []trace.Event{ev})
}

// Flush writes out every partially filled chunk buffer (in first-seen
// thread order, for deterministic output) and flushes the underlying
// buffered writer. The Writer remains usable.
func (w *Writer) Flush() error {
	w.internMu.Lock()
	seen := append([]int(nil), w.threadSeen...)
	w.internMu.Unlock()
	for _, tid := range seen {
		v, ok := w.threads.Load(tid)
		if !ok {
			continue
		}
		tb := v.(*threadBuf)
		tb.mu.Lock()
		w.seal(tid, tb)
		tb.mu.Unlock()
	}
	w.iomu.Lock()
	// An event-less archive still declares its clock properties.
	w.flushDefsLocked()
	if w.Err() == nil {
		w.setErr(w.bw.Flush())
	}
	w.iomu.Unlock()
	return w.Err()
}

// Close flushes the archive and, for format version 2, appends the
// footer index chunk and the fixed-size trailer (exactly once; Close is
// idempotent). The archive must not be written to afterwards — later
// chunks would displace the trailer from the end of the file and
// readers would fall back to the sequential, index-less walk. Close
// does not close the underlying io.Writer (the Writer did not open it).
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.iomu.Lock()
	defer w.iomu.Unlock()
	if w.closed || w.version != version2 {
		w.closed = true
		return w.Err()
	}
	w.closed = true
	p := w.appendIndexLocked(make([]byte, 0, 64+24*len(w.defOffs)))
	if len(p) > maxChunkLen {
		// An index the Reader would reject (an archive of tens of
		// millions of chunks) is worse than none: leave the archive
		// sequential-only rather than unreadable.
		return w.Err()
	}
	idxOff := w.off
	w.writeChunkLocked(chunkIndex, p, nil)
	var tp [trailerPayloadLen]byte
	binary.LittleEndian.PutUint64(tp[:8], uint64(idxOff))
	copy(tp[8:], trailerMagic)
	w.writeChunkLocked(chunkTrailer, tp[:], nil)
	if w.Err() == nil {
		w.setErr(w.bw.Flush())
	}
	return w.Err()
}

// appendIndexLocked encodes the footer-index payload: the 'D' chunk
// offsets, then per thread (ascending ID) the per-chunk offset, event
// count and time bounds in archive order. Caller holds iomu.
func (w *Writer) appendIndexLocked(p []byte) []byte {
	p = binary.AppendUvarint(p, uint64(len(w.defOffs)))
	for _, off := range w.defOffs {
		p = binary.AppendUvarint(p, uint64(off))
	}
	tids := make([]int, 0, len(w.chunkMeta))
	for tid := range w.chunkMeta {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	p = binary.AppendUvarint(p, uint64(len(tids)))
	for _, tid := range tids {
		refs := w.chunkMeta[tid]
		p = binary.AppendVarint(p, int64(tid))
		p = binary.AppendUvarint(p, uint64(len(refs)))
		for _, cr := range refs {
			p = binary.AppendUvarint(p, uint64(cr.Offset))
			p = binary.AppendUvarint(p, cr.Events)
			p = binary.AppendVarint(p, cr.BaseTime)
			p = binary.AppendVarint(p, cr.MinTime)
			p = binary.AppendVarint(p, cr.MaxTime)
		}
	}
	return p
}

// Write serializes a whole in-memory trace as an archive on w, ordered
// by thread then time like WriteJSONL. Options configure the format
// (version, chunk size, compression) as in NewWriter.
func Write(w io.Writer, tr *trace.Trace, opts ...WriterOption) error {
	aw := NewWriter(w, opts...)
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := aw.WriteEvents(id, tr.Threads[id]); err != nil {
			return err
		}
	}
	return aw.Close()
}
