package otf2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/region"
	"repro/internal/trace"
)

// DefaultChunkBytes is the per-thread chunk buffer threshold used by
// NewWriter. A thread's buffered events are framed and written out once
// their encoding reaches this size.
const DefaultChunkBytes = 32 * 1024

// IsArchivePath reports whether path names a binary archive by
// extension (".otf2"); anything else is treated as JSONL by the tools.
func IsArchivePath(p string) bool {
	return strings.EqualFold(filepath.Ext(p), Ext)
}

// Writer streams an event trace into an archive. It keeps one chunk
// buffer per thread plus the pending-definitions buffer in memory —
// nothing proportional to trace length. Writer is safe for concurrent
// use, so runtime threads can flush their recorder chunks into it
// directly; it implements trace.EventSink.
//
// Concurrency design: all event encoding happens outside any shared
// lock, in the calling thread's own chunk buffer. Region interning is
// an atomic-publish structure (lock-free lookups once a region is
// interned; a short-lived intern lock assigns IDs and queues definition
// records on first use). The only shared lock, iomu, is held exactly
// for the append of a fully framed chunk to the underlying io.Writer —
// so a streaming flush of thread A (even one blocked in a slow sink)
// never blocks recording or encoding on thread B. Sealed chunk buffers
// are recycled through a sync.Pool instead of being regrown.
//
// Errors from the underlying io.Writer are latched: the first error is
// returned by every subsequent call, including Close.
type Writer struct {
	bw         *bufio.Writer
	chunkBytes int

	// err latches the first failure; it is an atomic pointer so every
	// path can check it without taking a lock.
	err atomic.Pointer[error]

	// iomu serializes appends to the underlying writer. It is held only
	// while a framed chunk (or the buffered header) is written out,
	// never while events are encoded.
	iomu sync.Mutex

	// Interning state. regionRefs maps *region.Region to its event
	// regionRef (regionID+1) and is published atomically after the
	// region's definition record has been queued, so lookups are
	// lock-free. internMu guards ID assignment, the string table, the
	// pending-definitions buffer and the thread registration list.
	internMu   sync.Mutex
	regionRefs sync.Map // *region.Region -> uint64 regionRef
	strings    map[string]uint64
	nregions   uint64
	defs       []byte      // open definition-record buffer, framed before the next event chunk
	defsSealed [][]byte    // full definition payloads sealed at record boundaries, each chunk-bounded
	defsBig    atomic.Bool // set when definitions were sealed; drained outside internMu
	threadSeen []int       // first-registration order, for deterministic Flush

	threads sync.Map // int -> *threadBuf
}

// threadBuf accumulates the encoded events of one thread until they
// fill a chunk. Its mutex is per-thread — uncontended while each
// runtime thread flushes only its own ID, but it keeps the Writer
// correct for callers that share a thread ID across goroutines and for
// Flush sealing partial chunks concurrently with writes.
type threadBuf struct {
	mu       sync.Mutex
	buf      []byte
	count    uint64
	lastTime int64

	// Two-entry region-ref cache: consecutive events overwhelmingly
	// reference the same one or two regions (enter/exit pairs, task
	// lifecycles), so the shared interning structure is consulted only
	// on a region change — keeping the per-event encode cost a couple
	// of pointer compares instead of a concurrent-map load.
	reg0, reg1 *region.Region
	ref0, ref1 uint64
}

// chunkPool recycles sealed chunk buffers (and the reader side's
// payload buffers): a seal hands its full buffer to the io path and
// continues encoding into a pooled one, so steady-state streaming
// allocates no new chunk-sized buffers.
var chunkPool sync.Pool

// newChunkBuf returns an empty buffer with at least size capacity.
func newChunkBuf(size int) []byte {
	if v := chunkPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= size {
			return b[:0]
		}
	}
	// Headroom for the event that overshoots the seal threshold.
	return make([]byte, 0, size+64)
}

// putChunkBuf recycles b.
func putChunkBuf(b []byte) {
	if cap(b) > 0 {
		chunkPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is amortized per chunk, not per event
	}
}

// NewWriter starts an archive on w with the default chunk size, writing
// the header and clock properties (nanosecond resolution, zero offset)
// immediately.
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, DefaultChunkBytes)
}

// NewWriterSize is NewWriter with an explicit per-thread chunk buffer
// threshold in bytes (clamped to [1 KiB, 16 MiB]; the threshold trades
// archive-interleaving granularity against memory per thread). The
// upper clamp keeps every emitted chunk well under the reader's
// maxChunkLen sanity limit, so the Writer can never produce an archive
// its own Reader rejects.
func NewWriterSize(w io.Writer, chunkBytes int) *Writer {
	if chunkBytes < 1024 {
		chunkBytes = 1024
	}
	if chunkBytes > maxChunkLen/4 {
		chunkBytes = maxChunkLen / 4
	}
	wr := &Writer{
		bw:         bufio.NewWriter(w),
		chunkBytes: chunkBytes,
		strings:    make(map[string]uint64),
	}
	if _, err := wr.bw.WriteString(magic); err != nil {
		wr.setErr(err)
	} else if err := wr.bw.WriteByte(version); err != nil {
		wr.setErr(err)
	}
	// Clock properties: the runtime clock ticks in nanoseconds from an
	// arbitrary epoch.
	wr.defs = append(wr.defs, defClock)
	wr.defs = binary.AppendUvarint(wr.defs, 1e9)
	wr.defs = binary.AppendVarint(wr.defs, 0)
	return wr
}

// Err returns the first latched error, or nil.
func (w *Writer) Err() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

// setErr latches the first non-nil error.
func (w *Writer) setErr(err error) {
	if err != nil {
		w.err.CompareAndSwap(nil, &err)
	}
}

// internStringLocked interns s, queueing a definition record on first
// use. Caller holds internMu.
func (w *Writer) internStringLocked(s string) uint64 {
	id, ok := w.strings[s]
	if ok {
		return id
	}
	if len(s) >= maxChunkLen/2 {
		// A single definition record cannot be split across chunks, so
		// a string this long would produce a 'D' chunk the Reader
		// rejects; refuse it up front instead of writing an unreadable
		// archive.
		w.setErr(fmt.Errorf("otf2: string of %d bytes exceeds the encodable limit", len(s)))
		return 0
	}
	id = uint64(len(w.strings))
	w.strings[s] = id
	w.defs = append(w.defs, defString)
	w.defs = binary.AppendUvarint(w.defs, id)
	w.defs = binary.AppendUvarint(w.defs, uint64(len(s)))
	w.defs = append(w.defs, s...)
	w.sealDefsLocked()
	return id
}

// sealDefsLocked moves the open definition buffer onto the sealed list
// once it reaches the chunk threshold. Sealing happens only at record
// boundaries, so every sealed payload is at most chunkBytes plus one
// record (a string record is bounded by internStringLocked's length
// check) — well under the reader's maxChunkLen limit, preserving the
// invariant that the Writer can never produce an archive its own
// Reader rejects. Caller holds internMu.
func (w *Writer) sealDefsLocked() {
	if len(w.defs) >= w.chunkBytes {
		w.defsSealed = append(w.defsSealed, w.defs)
		w.defs = nil
		w.defsBig.Store(true)
	}
}

// internRegion returns r's event-record regionRef (regionID+1),
// interning it on first use. The fast path is a lock-free map load; the
// slow path runs once per distinct region.
func (w *Writer) internRegion(r *region.Region) uint64 {
	if r == nil {
		return 0
	}
	if v, ok := w.regionRefs.Load(r); ok {
		return v.(uint64)
	}
	return w.internRegionSlow(r)
}

func (w *Writer) internRegionSlow(r *region.Region) uint64 {
	w.internMu.Lock()
	defer w.internMu.Unlock()
	if v, ok := w.regionRefs.Load(r); ok {
		return v.(uint64)
	}
	name := w.internStringLocked(r.Name)
	file := w.internStringLocked(r.File)
	id := w.nregions
	w.nregions++
	w.defs = append(w.defs, defRegion)
	w.defs = binary.AppendUvarint(w.defs, id)
	w.defs = binary.AppendUvarint(w.defs, name)
	w.defs = binary.AppendUvarint(w.defs, file)
	w.defs = binary.AppendUvarint(w.defs, uint64(r.Line))
	w.defs = binary.AppendUvarint(w.defs, uint64(r.Type))
	// Definitions accumulate independently of event chunks (many
	// distinct regions, few events); seal them like event chunks so a
	// 'D' chunk can never outgrow the reader's limit. The drain itself
	// happens outside internMu (lock order: iomu before internMu).
	w.sealDefsLocked()
	// Publish last: by the time another thread sees the ref, the
	// definition record is queued ahead of any chunk seal.
	w.regionRefs.Store(r, id+1)
	return id + 1
}

// threadBuf returns (registering on first use) thread id's chunk buffer.
func (w *Writer) threadBuf(id int) *threadBuf {
	if v, ok := w.threads.Load(id); ok {
		return v.(*threadBuf)
	}
	tb := &threadBuf{buf: newChunkBuf(w.chunkBytes)}
	if v, loaded := w.threads.LoadOrStore(id, tb); loaded {
		putChunkBuf(tb.buf)
		return v.(*threadBuf)
	}
	w.internMu.Lock()
	w.threadSeen = append(w.threadSeen, id)
	w.internMu.Unlock()
	return tb
}

// writeChunkLocked frames one chunk whose payload is head followed by
// body (either may be empty); splitting the payload lets the seal path
// prepend the per-chunk event header without copying the chunk buffer.
// Caller holds iomu.
func (w *Writer) writeChunkLocked(kind byte, head, body []byte) {
	if w.Err() != nil {
		return
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(head)+len(body)))
	if _, err := w.bw.Write(hdr[:1+n]); err != nil {
		w.setErr(err)
		return
	}
	if len(head) > 0 {
		if _, err := w.bw.Write(head); err != nil {
			w.setErr(err)
			return
		}
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			w.setErr(err)
		}
	}
}

// flushDefsLocked takes ownership of the pending definition records and
// writes them as a chunk. Caller holds iomu; internMu is taken only for
// the swap, so interning threads are never blocked on sink I/O.
// Emitting definitions early is always safe — the format only requires
// them before the first event chunk that references them, and the swap
// happens under iomu, so a definition queued before a seal can never be
// written after that seal's event chunk.
func (w *Writer) flushDefsLocked() {
	w.internMu.Lock()
	sealed := w.defsSealed
	w.defsSealed = nil
	defs := w.defs
	w.defs = nil
	w.defsBig.Store(false)
	w.internMu.Unlock()
	for _, p := range sealed {
		w.writeChunkLocked(chunkDefs, p, nil)
	}
	if len(defs) > 0 {
		w.writeChunkLocked(chunkDefs, defs, nil)
	}
}

// flushDefs drains oversized pending definitions outside the encode path.
func (w *Writer) flushDefs() {
	w.iomu.Lock()
	w.flushDefsLocked()
	w.iomu.Unlock()
}

// seal frames tb's buffered events and appends them to the archive,
// handing tb a fresh pooled buffer. Caller holds tb.mu; iomu is held
// only for the final append of the already-framed bytes.
func (w *Writer) seal(tid int, tb *threadBuf) {
	if tb.count == 0 {
		return
	}
	payload := tb.buf
	count := tb.count
	tb.buf = newChunkBuf(w.chunkBytes)
	tb.count = 0

	var head [2 * binary.MaxVarintLen64]byte
	n := binary.PutVarint(head[:], int64(tid))
	n += binary.PutUvarint(head[n:], count)

	w.iomu.Lock()
	w.flushDefsLocked()
	w.writeChunkLocked(chunkEvents, head[:n], payload)
	w.iomu.Unlock()
	putChunkBuf(payload)
}

// WriteEvents appends a batch of events of one thread, flushing full
// chunks as the per-thread buffer fills. It implements trace.EventSink,
// so it can serve as the flush target of a trace.Recorder in
// bounded-memory mode. Encoding runs entirely in the thread's own
// buffer; concurrent batches of different threads never contend.
func (w *Writer) WriteEvents(thread int, events []trace.Event) error {
	if err := w.Err(); err != nil {
		return err
	}
	tb := w.threadBuf(thread)
	tb.mu.Lock()
	for i := range events {
		ev := &events[i]
		var ref uint64
		switch r := ev.Region; r {
		case nil:
		case tb.reg0:
			ref = tb.ref0
		case tb.reg1:
			ref = tb.ref1
		default:
			ref = w.internRegion(r)
			tb.reg1, tb.ref1 = tb.reg0, tb.ref0
			tb.reg0, tb.ref0 = r, ref
		}
		tb.buf = append(tb.buf, byte(ev.Type))
		tb.buf = binary.AppendVarint(tb.buf, ev.Time-tb.lastTime)
		tb.buf = binary.AppendUvarint(tb.buf, ref)
		tb.buf = binary.AppendUvarint(tb.buf, ev.TaskID)
		tb.lastTime = ev.Time
		tb.count++
		if len(tb.buf) >= w.chunkBytes {
			w.seal(thread, tb)
		}
	}
	tb.mu.Unlock()
	if w.defsBig.Load() {
		w.flushDefs()
	}
	return w.Err()
}

// WriteEvent appends a single event of one thread.
func (w *Writer) WriteEvent(thread int, ev trace.Event) error {
	return w.WriteEvents(thread, []trace.Event{ev})
}

// Flush writes out every partially filled chunk buffer (in first-seen
// thread order, for deterministic output) and flushes the underlying
// buffered writer. The Writer remains usable.
func (w *Writer) Flush() error {
	w.internMu.Lock()
	seen := append([]int(nil), w.threadSeen...)
	w.internMu.Unlock()
	for _, tid := range seen {
		v, ok := w.threads.Load(tid)
		if !ok {
			continue
		}
		tb := v.(*threadBuf)
		tb.mu.Lock()
		w.seal(tid, tb)
		tb.mu.Unlock()
	}
	w.iomu.Lock()
	// An event-less archive still declares its clock properties.
	w.flushDefsLocked()
	if w.Err() == nil {
		w.setErr(w.bw.Flush())
	}
	w.iomu.Unlock()
	return w.Err()
}

// Close flushes the archive. It does not close the underlying
// io.Writer (the Writer did not open it).
func (w *Writer) Close() error { return w.Flush() }

// Write serializes a whole in-memory trace as an archive on w, ordered
// by thread then time like WriteJSONL.
func Write(w io.Writer, tr *trace.Trace) error {
	aw := NewWriter(w)
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := aw.WriteEvents(id, tr.Threads[id]); err != nil {
			return err
		}
	}
	return aw.Close()
}
