package otf2

import (
	"bufio"
	"errors"
	"io"
	"sync"

	"repro/internal/region"
	"repro/internal/trace"
)

// Query selects a slice of an archive: a time window and/or a thread
// subset. It is trace.Query verbatim — every layer of the stack speaks
// the same query vocabulary.
type Query = trace.Query

// QueryStats reports how a query executed against an archive. The
// chunk counters are filled by the index-driven path: ChunksRead out of
// ChunksTotal event chunks were actually read and decoded — the
// O(matching chunks) guarantee a seekable archive exists for. On the
// sequential fallback (v1 archive, missing or damaged index) Indexed is
// false and the counters are zero; the whole archive was scanned.
type QueryStats struct {
	Indexed     bool
	ChunksTotal int
	ChunksRead  int
}

// AnalyzeQuery runs the trace analysis over the sub-trace of an archive
// matching q, using up to workers decode goroutines (<= 0 one per
// processor). When r is an io.ReadSeeker and the archive carries a
// footer index, only the chunks whose thread and time bounds can match
// are read and decoded — O(matching chunks), not O(archive). Otherwise
// it falls back to the sequential scan with event-level filtering,
// preserving the v1 salvage contract: a truncated archive yields the
// intact prefix's (filtered) analysis alongside an error wrapping
// ErrTruncated.
//
// The result is reflect.DeepEqual-identical to fully decoding the
// archive, filtering with q.Filter, and analyzing that — at every
// worker count and on both the indexed and the fallback path.
func AnalyzeQuery(r io.Reader, q Query, workers int) (*trace.Analysis, QueryStats, error) {
	workers = normWorkers(workers)
	if rs, ok := r.(io.ReadSeeker); ok {
		if ix, err := ReadIndex(rs); err == nil {
			pa := trace.NewParallelAnalyzer()
			consume := func(tid int, events []trace.Event) {
				if len(events) > 0 {
					pa.ObserveBatch(tid, events)
				}
			}
			st, err := runIndexed(rs, ix, q, region.NewRegistry(), workers, true, consume)
			if err != nil {
				return nil, st, err
			}
			return pa.Finish(), st, nil
		}
		// No readable index (v1 archive, crashed run, damaged trailer):
		// rewind and scan sequentially.
		if _, err := rs.Seek(0, io.SeekStart); err != nil {
			return nil, QueryStats{}, err
		}
	}
	var st QueryStats
	if workers == 1 {
		sa := trace.NewStreamAnalyzer()
		rd, err := NewReader(r, region.NewRegistry())
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				return sa.Finish(), st, err
			}
			return nil, st, err
		}
		for {
			tid, ev, err := rd.Next()
			if err == io.EOF {
				return sa.Finish(), st, nil
			}
			if errors.Is(err, ErrTruncated) {
				return sa.Finish(), st, err
			}
			if err != nil {
				return nil, st, err
			}
			sa.ObserveQuery(tid, ev, q)
		}
	}
	pa := trace.NewParallelAnalyzer()
	err := runPipeline(r, region.NewRegistry(), workers, true, func(tid int, events []trace.Event) {
		pa.ObserveBatchQuery(tid, events, q)
	})
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, st, err
	}
	return pa.Finish(), st, err
}

// ReadAllQuery loads the sub-trace of an archive matching q, interning
// regions into reg — the decode counterpart of AnalyzeQuery, with the
// same index-driven access, sequential fallback and salvage contract.
// The loaded trace is reflect.DeepEqual-identical to
// q.Filter(ReadAll(...)): threads without matching events are absent.
func ReadAllQuery(r io.Reader, reg *region.Registry, q Query, workers int) (*trace.Trace, QueryStats, error) {
	workers = normWorkers(workers)
	if rs, ok := r.(io.ReadSeeker); ok {
		if ix, err := ReadIndex(rs); err == nil {
			tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
			var mu sync.Mutex
			consume := func(tid int, events []trace.Event) {
				if len(events) == 0 {
					return
				}
				mu.Lock()
				evs := tr.Threads[tid]
				mu.Unlock()
				// Per-thread serial by the shard contract; only the map
				// access needs the lock.
				if evs == nil {
					mu.Lock()
					tr.Threads[tid] = events
					mu.Unlock()
					return
				}
				evs = append(evs, events...)
				mu.Lock()
				tr.Threads[tid] = evs
				mu.Unlock()
			}
			st, err := runIndexed(rs, ix, q, reg, workers, false, consume)
			if err != nil {
				return nil, st, err
			}
			return tr, st, nil
		}
		if _, err := rs.Seek(0, io.SeekStart); err != nil {
			return nil, QueryStats{}, err
		}
	}
	// Sequential fallback: full decode, then the reference filter — the
	// semantics every query path is defined against.
	var st QueryStats
	tr, err := ReadAllParallel(r, reg, workers)
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, st, err
	}
	return q.Filter(tr), st, err
}

// iJob is one indexed chunk handed to the query worker pool. Unlike the
// sequential pipeline's chunkJob, the payload may still be compressed
// (the index names the thread, so inflation can run on the workers) and
// decoding starts from the chunk's indexed BaseTime, producing absolute
// timestamps immediately.
type iJob struct {
	sh         *shard
	seq        int
	idx        int // dispatch index, for earliest-error selection
	payload    []byte
	compressed bool
	ref        ChunkRef
	q          Query
	regions    map[uint64]*region.Region
}

// decodeIndexedRun inflates (if needed) and decodes one indexed chunk,
// keeping only events inside the query window. It consumes j.payload
// (returning it to the chunk pool) and produces absolute timestamps.
func decodeIndexedRun(j *iJob) (*decodedRun, error) {
	payload := j.payload
	if j.compressed {
		raw, err := inflateChunk(newChunkBuf(0), payload)
		putChunkBuf(payload)
		if err != nil {
			putChunkBuf(raw)
			return nil, err
		}
		payload = raw
	}
	c := cursor{payload: payload}
	tid, err := c.varint("event chunk thread")
	if err == nil && int(tid) != j.sh.tid {
		err = corrupt("index lists chunk at %d under thread %d, payload says %d", j.ref.Offset, j.sh.tid, tid)
	}
	var count uint64
	if err == nil {
		count, err = c.uvarint("event chunk count")
	}
	if err != nil {
		putChunkBuf(payload)
		return nil, err
	}
	n := int(count)
	if maxFit := (len(payload)-c.pos)/minEventBytes + 1; n > maxFit {
		n = maxFit
	}
	var events []trace.Event
	if j.sh.recycle {
		events = newRunBuf(n)
	} else {
		events = make([]trace.Event, 0, n)
	}
	last := j.ref.BaseTime
	for i := uint64(0); i < count; i++ {
		ev, err := decodeEvent(&c, j.regions, &last)
		if err != nil {
			if j.sh.recycle {
				putRunBuf(events)
			}
			putChunkBuf(payload)
			return nil, err
		}
		if j.q.MatchTime(ev.Time) {
			events = append(events, ev)
		}
	}
	putChunkBuf(payload)
	return &decodedRun{events: events}, nil
}

// runIndexed executes a query plan over an indexed archive: it loads
// all definition chunks via the index, selects the event chunks whose
// thread and time bounds can match, and streams exactly those — in
// ascending offset order, one seek each — to a worker pool that
// inflates, decodes and window-filters them. Per-thread shards apply
// runs in archive order (without rebasing: indexed chunks decode with
// absolute timestamps), so consume sees each thread's events in order.
func runIndexed(rs io.ReadSeeker, ix *Index, q Query, reg *region.Registry, workers int, recycle bool, consume func(int, []trace.Event)) (QueryStats, error) {
	st := QueryStats{Indexed: true}
	tables := newDefTables()
	for _, off := range ix.DefOffsets {
		kind, payload, err := ReadChunkAt(rs, off)
		if err != nil {
			return st, err
		}
		if kind != chunkDefs {
			return st, corrupt("index lists definition chunk at %d, found %q", off, kind)
		}
		c := cursor{payload: payload}
		if err := tables.decodeDefs(&c, reg); err != nil {
			return st, err
		}
	}
	var sel []plannedChunk
	if q.Empty() {
		st.ChunksTotal = ix.NumChunks()
	} else {
		sel, st.ChunksTotal = ix.selectChunks(q.MatchThread, q.Overlaps)
	}
	st.ChunksRead = len(sel)
	if len(sel) == 0 {
		return st, nil
	}

	lat := &errLatch{done: make(chan struct{})}
	jobs := make(chan *iJob, workers)
	inflight := make(chan struct{}, 4*workers)
	release := func() { <-inflight }

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if lat.p.Load() != nil {
					putChunkBuf(j.payload)
					release()
					continue
				}
				run, err := decodeIndexedRun(j)
				if err != nil {
					lat.latch(j.idx, err)
					release()
					continue
				}
				j.sh.deliver(j.seq, run, consume, release)
			}
		}()
	}

	shards := make(map[int]*shard)
	br := bufio.NewReader(rs)
	var scanErr error
	scanned := len(sel)
scan:
	for i, pc := range sel {
		if lat.p.Load() != nil {
			scanned = i
			break
		}
		if _, err := rs.Seek(pc.ref.Offset, io.SeekStart); err != nil {
			scanErr = err
			scanned = i
			break
		}
		br.Reset(rs)
		kind, payload, err := readChunkInto(br, newChunkBuf(0))
		if err == io.EOF {
			err = cutOrIOErr("reading chunk", io.ErrUnexpectedEOF)
		}
		if err != nil {
			putChunkBuf(payload)
			scanErr = err
			scanned = i
			break
		}
		if kind != chunkEvents && kind != chunkCompressed {
			putChunkBuf(payload)
			scanErr = corrupt("index lists event chunk at %d, found %q", pc.ref.Offset, kind)
			scanned = i
			break
		}
		sh := shards[pc.tid]
		if sh == nil {
			sh = &shard{tid: pc.tid, recycle: recycle, absolute: true}
			shards[pc.tid] = sh
		}
		job := &iJob{
			sh: sh, seq: pc.seq, idx: i,
			payload: payload, compressed: kind == chunkCompressed,
			ref: pc.ref, q: q, regions: tables.regions,
		}
		select {
		case inflight <- struct{}{}:
		case <-lat.done:
			// A worker failed; stop scanning rather than wait on a
			// window that may never drain.
			putChunkBuf(payload)
			scanned = i
			break scan
		}
		jobs <- job
	}
	close(jobs)
	wg.Wait()

	// A decode error earlier in the plan outranks a later scan error,
	// matching the order a sequential execution would hit them in.
	if werr := lat.p.Load(); werr != nil && (scanErr == nil || werr.idx < scanned) {
		return st, werr.err
	}
	return st, scanErr
}
