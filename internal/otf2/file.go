package otf2

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/region"
	"repro/internal/trace"
)

// ReadFile loads a trace file in the format chosen by its extension
// (".otf2" is a binary archive, anything else JSONL), interning regions
// into reg. Archives are decoded with workers goroutines (<= 0 one per
// processor, 1 strictly sequential; JSONL is always sequential). An
// archive cut off mid-chunk (crashed run) is salvaged: the intact
// prefix is returned together with an error wrapping ErrTruncated, and
// the caller decides whether to use it.
func ReadFile(path string, reg *region.Registry, workers int) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if IsArchivePath(path) {
		return ReadAllParallel(f, reg, workers)
	}
	return trace.ReadJSONL(f, reg)
}

// ReadFileLenient is ReadFile with the warn-and-continue truncation
// policy applied: an archive cut off mid-chunk (the typical state after
// a crashed or killed run) yields the salvaged intact prefix and a
// human-readable warning instead of an error. Anything else — I/O
// failures, corruption, a bad JSONL line — still fails. The warning is
// "" for an intact trace.
func ReadFileLenient(path string, reg *region.Registry, workers int) (*trace.Trace, string, error) {
	tr, err := ReadFile(path, reg, workers)
	if errors.Is(err, ErrTruncated) {
		return tr, fmt.Sprintf("%v; using the intact prefix (%d events)", err, tr.NumEvents()), nil
	}
	return tr, "", err
}

// AnalyzeFile runs the trace analysis over a trace file in either
// format (by extension, like ReadFile). Archives are replayed streaming
// in O(workers x chunk) memory, so they may be far larger than RAM;
// workers <= 0 analyzes with one worker per processor, workers == 1
// strictly sequentially — the result is identical either way.
// Truncated archives are salvaged under the same lenient policy as
// ReadFileLenient: the analysis of the intact prefix is returned with a
// warning.
func AnalyzeFile(path string, workers int) (*trace.Analysis, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return nil, "", err
		}
		return trace.AnalyzeParallel(tr, workers), warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	a, err := AnalyzeParallel(f, workers)
	if errors.Is(err, ErrTruncated) {
		return a, fmt.Sprintf("%v; analyzing the intact prefix", err), nil
	}
	return a, "", err
}

// CountFileEvents counts a trace file's events. Archives are iterated
// without materializing the trace, in O(chunk) memory; truncation is
// salvaged leniently, returning the intact prefix's count plus a
// warning.
func CountFileEvents(path string) (int, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return 0, "", err
		}
		return tr.NumEvents(), warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	rd, err := NewReader(f, region.NewRegistry())
	events := 0
	if err == nil {
		for {
			if _, _, err = rd.Next(); err != nil {
				break
			}
			events++
		}
	}
	if err != nil && err != io.EOF {
		if !errors.Is(err, ErrTruncated) {
			return 0, "", err
		}
		return events, fmt.Sprintf("%v; counting the intact prefix", err), nil
	}
	return events, "", nil
}

// AnalyzeFileQuery runs the trace analysis over the sub-trace of a
// trace file matching q, with the same lenient truncation policy as
// AnalyzeFile. Archives carrying a footer index are accessed through
// it, reading only the chunks whose thread and time bounds can match;
// v1, truncated and JSONL traces fall back to a full scan with
// event-level filtering. The analysis is always identical to
// filtering the fully decoded trace with q and analyzing that.
func AnalyzeFileQuery(path string, q Query, workers int) (*trace.Analysis, QueryStats, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return nil, QueryStats{}, "", err
		}
		return trace.AnalyzeParallel(q.Filter(tr), workers), QueryStats{}, warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, QueryStats{}, "", err
	}
	defer f.Close()
	a, st, err := AnalyzeQuery(f, q, workers)
	if errors.Is(err, ErrTruncated) {
		return a, st, fmt.Sprintf("%v; analyzing the intact prefix", err), nil
	}
	return a, st, "", err
}

// ReadFileQuery loads the sub-trace of a trace file matching q, with
// the same index-driven access, fallback and lenient salvage as
// AnalyzeFileQuery. The loaded trace equals q.Filter of the full
// trace: threads without matching events are absent.
func ReadFileQuery(path string, reg *region.Registry, q Query, workers int) (*trace.Trace, QueryStats, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, reg, 1)
		if err != nil {
			return nil, QueryStats{}, "", err
		}
		return q.Filter(tr), QueryStats{}, warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, QueryStats{}, "", err
	}
	defer f.Close()
	tr, st, err := ReadAllQuery(f, reg, q, workers)
	if errors.Is(err, ErrTruncated) {
		return tr, st, fmt.Sprintf("%v; using the intact prefix (%d events)", err, tr.NumEvents()), nil
	}
	return tr, st, "", err
}

// ArchiveStats describes the physical layout of a binary archive — the
// material scorep-convert -stats reports.
type ArchiveStats struct {
	// FormatVersion is the archive's header version byte (1 or 2).
	FormatVersion int
	// SizeBytes is the archive file size.
	SizeBytes int64
	// Indexed reports whether a readable footer index is present.
	Indexed bool
	// Chunks counts event chunks; CompressedChunks of them are
	// flate-compressed. Both require an index (zero otherwise).
	Chunks, CompressedChunks int
	// RawEventBytes and StoredEventBytes total the event-chunk payload
	// sizes before and after compression (equal when uncompressed);
	// their ratio is the event-stream compression ratio. Index required.
	RawEventBytes, StoredEventBytes int64
	// IndexedEvents is the event count the index declares.
	IndexedEvents int
	// ThreadChunks maps thread ID -> event chunk count (index required).
	ThreadChunks map[int]int
	// Flight is the flight-recorder accounting of a dump archive (nil
	// otherwise). It is read from the front of the archive, so it is
	// reported even for truncated, index-less dumps.
	Flight *FlightInfo
}

// StatFile inspects a binary archive's physical layout without
// decoding its event stream: format version, index presence, per-thread
// chunk counts and compression effectiveness. Archives without a
// readable index (v1, truncated) report version and size only.
func StatFile(path string) (*ArchiveStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(f, br); err != nil {
		return nil, cutOrIOErr("reading archive header", err)
	}
	if string(br[:len(magic)]) != magic {
		return nil, corrupt("bad magic %q", br[:len(magic)])
	}
	st := &ArchiveStats{FormatVersion: int(br[len(magic)]), SizeBytes: fi.Size()}
	if st.FormatVersion != int(version1) && st.FormatVersion != int(version2) {
		return nil, corrupt("unsupported format version %d", st.FormatVersion)
	}
	// Flight-recorder accounting sits at the front of a dump archive
	// (before any definition or event chunk), so a short sequential scan
	// finds it even when the archive is truncated and index-less.
	st.Flight = scanFlightInfo(f)
	ix, err := ReadIndex(f)
	if err != nil {
		if errors.Is(err, ErrNoIndex) {
			return st, nil
		}
		return nil, err
	}
	st.Indexed = true
	st.IndexedEvents = ix.NumEvents()
	st.ThreadChunks = make(map[int]int, len(ix.Threads))
	for _, tc := range ix.Threads {
		st.ThreadChunks[tc.Thread] = len(tc.Chunks)
		for _, cr := range tc.Chunks {
			kind, payload, err := ReadChunkAt(f, cr.Offset)
			if err != nil {
				return nil, err
			}
			st.Chunks++
			st.StoredEventBytes += int64(len(payload))
			switch kind {
			case chunkEvents:
				st.RawEventBytes += int64(len(payload))
			case chunkCompressed:
				st.CompressedChunks++
				if len(payload) == 0 {
					return nil, corrupt("empty compressed chunk at %d", cr.Offset)
				}
				c := cursor{payload: payload, pos: 1} // skip the method byte
				rawLen, err := c.uvarint("uncompressed length")
				if err != nil {
					return nil, err
				}
				st.RawEventBytes += int64(rawLen)
			default:
				return nil, corrupt("index lists event chunk at %d, found %q", cr.Offset, kind)
			}
		}
	}
	return st, nil
}

// scanFlightInfo reads chunks sequentially from f's current position
// (directly after the header) until it finds the 'F' accounting chunk
// or reaches the first event chunk. Dumps place 'F' before everything
// else, so the scan touches at most a couple of chunk headers. It is
// best-effort: any read or decode failure reports "no accounting".
func scanFlightInfo(f io.Reader) *FlightInfo {
	br := bufio.NewReader(f)
	var buf []byte
	for {
		kind, payload, err := readChunkInto(br, buf)
		buf = payload
		if err != nil {
			return nil
		}
		switch kind {
		case chunkFlight:
			info, err := decodeFlightInfo(payload)
			if err != nil {
				return nil
			}
			return info
		case chunkDefs:
			continue
		default:
			// An event chunk (or the index of an event-less archive):
			// no accounting ahead of the event stream means none at all.
			return nil
		}
	}
}

// IntactPrefixSize scans the chunk framing of the archive at path and
// returns the byte length of its intact prefix: the 8-byte header plus
// every complete chunk before the first truncated or over-long one.
// This is the cut point the lenient readers salvage to, computed
// without decoding any payload (chunk headers are read, payloads are
// skipped), so it is O(chunks) in time and O(1) in memory. A file
// shorter than the header, or one whose magic or version byte is wrong,
// has an intact prefix of 0. The typical caller is crash recovery:
// truncating a shard to its intact prefix makes the file a valid,
// fully readable archive prefix again, and the returned size is the
// durable byte offset a resuming writer must continue from.
func IntactPrefixSize(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	hdr := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil
		}
		return 0, err
	}
	if string(hdr[:len(magic)]) != magic ||
		(hdr[len(magic)] != version1 && hdr[len(magic)] != version2) {
		return 0, nil
	}
	intact := int64(len(hdr))
	pos := intact
	for {
		if _, err := br.ReadByte(); err != nil { // chunk kind
			if err == io.EOF {
				return intact, nil
			}
			return 0, err
		}
		pos++
		n, err := binary.ReadUvarint(countingByteReader{br, &pos})
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return intact, nil
			}
			return 0, err
		}
		if n > maxChunkLen {
			// An impossible length means the header itself is damaged;
			// everything from this chunk on is unusable.
			return intact, nil
		}
		skipped, err := br.Discard(int(n))
		pos += int64(skipped)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return intact, nil
			}
			return 0, err
		}
		intact = pos
	}
}

// countingByteReader counts the bytes a varint decode consumes.
type countingByteReader struct {
	r   *bufio.Reader
	pos *int64
}

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		*c.pos++
	}
	return b, err
}

// WriteFile saves a trace to path in the format chosen by its
// extension, creating or truncating the file. Writer options apply to
// the archive format only (JSONL ignores them).
func WriteFile(path string, tr *trace.Trace, opts ...WriterOption) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if IsArchivePath(path) {
		werr = Write(f, tr, opts...)
	} else {
		werr = trace.WriteJSONL(f, tr)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
