package otf2

import (
	"os"

	"repro/internal/region"
	"repro/internal/trace"
)

// ReadFile loads a trace file in the format chosen by its extension
// (".otf2" is a binary archive, anything else JSONL), interning regions
// into reg. An archive cut off mid-chunk (crashed run) is salvaged: the
// intact prefix is returned together with an error wrapping
// ErrTruncated, and the caller decides whether to use it.
func ReadFile(path string, reg *region.Registry) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if IsArchivePath(path) {
		return ReadAll(f, reg)
	}
	return trace.ReadJSONL(f, reg)
}

// WriteFile saves a trace to path in the format chosen by its
// extension, creating or truncating the file.
func WriteFile(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if IsArchivePath(path) {
		werr = Write(f, tr)
	} else {
		werr = trace.WriteJSONL(f, tr)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
