package otf2

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/region"
	"repro/internal/trace"
)

// ReadFile loads a trace file in the format chosen by its extension
// (".otf2" is a binary archive, anything else JSONL), interning regions
// into reg. Archives are decoded with workers goroutines (<= 0 one per
// processor, 1 strictly sequential; JSONL is always sequential). An
// archive cut off mid-chunk (crashed run) is salvaged: the intact
// prefix is returned together with an error wrapping ErrTruncated, and
// the caller decides whether to use it.
func ReadFile(path string, reg *region.Registry, workers int) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if IsArchivePath(path) {
		return ReadAllParallel(f, reg, workers)
	}
	return trace.ReadJSONL(f, reg)
}

// ReadFileLenient is ReadFile with the warn-and-continue truncation
// policy applied: an archive cut off mid-chunk (the typical state after
// a crashed or killed run) yields the salvaged intact prefix and a
// human-readable warning instead of an error. Anything else — I/O
// failures, corruption, a bad JSONL line — still fails. The warning is
// "" for an intact trace.
func ReadFileLenient(path string, reg *region.Registry, workers int) (*trace.Trace, string, error) {
	tr, err := ReadFile(path, reg, workers)
	if errors.Is(err, ErrTruncated) {
		return tr, fmt.Sprintf("%v; using the intact prefix (%d events)", err, tr.NumEvents()), nil
	}
	return tr, "", err
}

// AnalyzeFile runs the trace analysis over a trace file in either
// format (by extension, like ReadFile). Archives are replayed streaming
// in O(workers x chunk) memory, so they may be far larger than RAM;
// workers <= 0 analyzes with one worker per processor, workers == 1
// strictly sequentially — the result is identical either way.
// Truncated archives are salvaged under the same lenient policy as
// ReadFileLenient: the analysis of the intact prefix is returned with a
// warning.
func AnalyzeFile(path string, workers int) (*trace.Analysis, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return nil, "", err
		}
		return trace.AnalyzeParallel(tr, workers), warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	a, err := AnalyzeParallel(f, workers)
	if errors.Is(err, ErrTruncated) {
		return a, fmt.Sprintf("%v; analyzing the intact prefix", err), nil
	}
	return a, "", err
}

// CountFileEvents counts a trace file's events. Archives are iterated
// without materializing the trace, in O(chunk) memory; truncation is
// salvaged leniently, returning the intact prefix's count plus a
// warning.
func CountFileEvents(path string) (int, string, error) {
	if !IsArchivePath(path) {
		tr, warn, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil {
			return 0, "", err
		}
		return tr.NumEvents(), warn, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	rd, err := NewReader(f, region.NewRegistry())
	events := 0
	if err == nil {
		for {
			if _, _, err = rd.Next(); err != nil {
				break
			}
			events++
		}
	}
	if err != nil && err != io.EOF {
		if !errors.Is(err, ErrTruncated) {
			return 0, "", err
		}
		return events, fmt.Sprintf("%v; counting the intact prefix", err), nil
	}
	return events, "", nil
}

// WriteFile saves a trace to path in the format chosen by its
// extension, creating or truncating the file.
func WriteFile(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if IsArchivePath(path) {
		werr = Write(f, tr)
	} else {
		werr = trace.WriteJSONL(f, tr)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
