package otf2

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/region"
)

// TestBottlenecksMatchInMemoryReference checks the defining property of
// the out-of-core bottleneck analysis: AnalyzeBottlenecks over an
// archive equals fully decoding it, filtering with the query, and
// running the in-memory analysis — at worker counts 1 and 4, on
// indexed (v2), compressed, and fallback (v1) archives.
func TestBottlenecksMatchInMemoryReference(t *testing.T) {
	tr := benchTrace(3, 400)
	archives := map[string][]byte{
		"v2":       queryArchive(t, tr),
		"v2-flate": queryArchive(t, tr, WithCompression(CompressionFlate)),
		"v1":       queryArchive(t, tr, WithVersion(1)),
	}
	for name, archive := range archives {
		full, err := ReadAll(bytes.NewReader(archive), region.NewRegistry())
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", name, err)
		}
		for _, q := range queryCases(full) {
			want := bottleneck.Analyze(q.Filter(full))
			for _, workers := range []int{1, 4} {
				got, st, err := AnalyzeBottlenecks(bytes.NewReader(archive), q, workers)
				if err != nil {
					t.Fatalf("%s workers=%d %v: AnalyzeBottlenecks: %v", name, workers, q, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s workers=%d %v: AnalyzeBottlenecks != analyze(filter(full))", name, workers, q)
				}
				if wantIndexed := name != "v1"; st.Indexed != wantIndexed {
					t.Errorf("%s workers=%d %v: stats.Indexed = %v, want %v", name, workers, q, st.Indexed, wantIndexed)
				}
			}
		}
	}
}

// TestBottlenecksTruncatedSalvage: a truncated v2 archive (unreadable
// index) must salvage the intact prefix's bottleneck analysis on every
// worker count, with identical results on the sequential and pipeline
// fallback paths, alongside an error wrapping ErrTruncated.
func TestBottlenecksTruncatedSalvage(t *testing.T) {
	tr := benchTrace(2, 400)
	archive := queryArchive(t, tr)
	cut := int(lastEventChunkOffset(t, archive)) + 3

	if _, err := ReadIndex(bytes.NewReader(archive[:cut])); err == nil {
		t.Fatal("truncated archive still has a readable index")
	}
	// The reference: the events ReadAllQuery itself salvages from the
	// same prefix, analyzed in memory.
	prefix, _, err := ReadAllQuery(bytes.NewReader(archive[:cut]), region.NewRegistry(), Query{}, 1)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAllQuery err = %v, want ErrTruncated", err)
	}
	want := bottleneck.Analyze(prefix)
	for _, workers := range []int{1, 4} {
		a, st, err := AnalyzeBottlenecks(bytes.NewReader(archive[:cut]), Query{}, workers)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("workers=%d: err = %v, want ErrTruncated", workers, err)
		}
		if st.Indexed {
			t.Fatalf("workers=%d: truncated archive took the indexed path", workers)
		}
		if !reflect.DeepEqual(a, want) {
			t.Errorf("workers=%d: salvaged analysis != in-memory analysis of salvaged prefix", workers)
		}
	}
}

// TestAnalyzeFileBottlenecks covers the file front-end: archive and
// JSONL inputs produce the identical analysis, and a truncated archive
// is downgraded to a warning.
func TestAnalyzeFileBottlenecks(t *testing.T) {
	tr := benchTrace(2, 200)
	dir := t.TempDir()

	archivePath := dir + "/t.otf2"
	if err := WriteFile(archivePath, tr); err != nil {
		t.Fatal(err)
	}
	jsonlPath := dir + "/t.jsonl"
	if err := WriteFile(jsonlPath, tr); err != nil {
		t.Fatal(err)
	}

	want := bottleneck.Analyze(tr)
	for _, path := range []string{archivePath, jsonlPath} {
		a, _, warn, err := AnalyzeFileBottlenecks(path, Query{}, 4)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if warn != "" {
			t.Fatalf("%s: unexpected warning %q", path, warn)
		}
		if !reflect.DeepEqual(a, want) {
			t.Errorf("%s: file analysis != in-memory analysis", path)
		}
	}

	archive, err := os.ReadFile(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := dir + "/cut.otf2"
	cut := int(lastEventChunkOffset(t, archive)) + 3
	if err := os.WriteFile(cutPath, archive[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	a, _, warn, err := AnalyzeFileBottlenecks(cutPath, Query{}, 4)
	if err != nil {
		t.Fatalf("truncated file: err = %v, want warning instead", err)
	}
	if warn == "" {
		t.Fatal("truncated file produced no warning")
	}
	if a == nil || len(a.PerThread) == 0 {
		t.Fatal("truncated file salvaged no analysis")
	}
}
