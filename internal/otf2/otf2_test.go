package otf2

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
	"repro/internal/trace"
)

// sampleTrace builds a two-thread trace covering every event type,
// nil-region task events, empty-file regions and out-of-order times.
func sampleTrace(reg *region.Registry) *trace.Trace {
	par := reg.Register("par", "main.go", 10, region.Parallel)
	task := reg.Register("work", "main.go", 12, region.Task)
	tw := reg.Register("tw", "", 0, region.Taskwait)
	return &trace.Trace{Threads: map[int][]trace.Event{
		0: {
			{Time: 0, Type: trace.EvThreadBegin},
			{Time: 5, Type: trace.EvEnter, Region: par},
			{Time: 7, Type: trace.EvTaskCreateBegin, Region: task},
			{Time: 9, Type: trace.EvTaskCreateEnd, Region: task, TaskID: 1},
			{Time: 11, Type: trace.EvEnter, Region: tw},
			{Time: 12, Type: trace.EvTaskBegin, Region: task, TaskID: 1},
			{Time: 40, Type: trace.EvTaskEnd, Region: task, TaskID: 1},
			{Time: 41, Type: trace.EvTaskSwitch}, // back to implicit task
			{Time: 45, Type: trace.EvExit, Region: tw},
			{Time: 50, Type: trace.EvExit, Region: par},
			{Time: 51, Type: trace.EvThreadEnd},
		},
		3: {
			{Time: 2, Type: trace.EvThreadBegin},
			{Time: 1 << 40, Type: trace.EvTaskBegin, Region: task, TaskID: 1<<63 + 7},
			{Time: 3, Type: trace.EvTaskEnd, Region: task, TaskID: 1<<63 + 7}, // time went backwards
			{Time: 4, Type: trace.EvThreadEnd},
		},
	}}
}

// eventsEqual compares events structurally; regions by descriptor
// fields, since reading interns into a different registry.
func eventsEqual(a, b trace.Event) bool {
	if a.Time != b.Time || a.Type != b.Type || a.TaskID != b.TaskID {
		return false
	}
	if (a.Region == nil) != (b.Region == nil) {
		return false
	}
	if a.Region == nil {
		return true
	}
	return a.Region.Name == b.Region.Name && a.Region.File == b.Region.File &&
		a.Region.Line == b.Region.Line && a.Region.Type == b.Region.Type
}

func tracesEqual(t *testing.T, want, got *trace.Trace) {
	t.Helper()
	if len(got.Threads) != len(want.Threads) {
		t.Fatalf("thread count = %d, want %d", len(got.Threads), len(want.Threads))
	}
	for tid, wevs := range want.Threads {
		gevs, ok := got.Threads[tid]
		if !ok {
			t.Fatalf("thread %d missing", tid)
		}
		if len(gevs) != len(wevs) {
			t.Fatalf("thread %d: %d events, want %d", tid, len(gevs), len(wevs))
		}
		for i := range wevs {
			if !eventsEqual(wevs[i], gevs[i]) {
				t.Fatalf("thread %d event %d = %+v, want %+v", tid, i, gevs[i], wevs[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleTrace(region.NewRegistry())
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, want, got)
}

func TestRoundTripEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &trace.Trace{Threads: map[int][]trace.Event{}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if n := got.NumEvents(); n != 0 {
		t.Fatalf("empty archive decoded %d events", n)
	}
}

func TestReadPreservesRegionIdentity(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(region.NewRegistry())); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var taskRegions []*region.Region
	for _, evs := range got.Threads {
		for _, ev := range evs {
			if ev.Region != nil && ev.Region.Name == "work" {
				taskRegions = append(taskRegions, ev.Region)
			}
		}
	}
	if len(taskRegions) < 2 {
		t.Fatal("expected several events referencing the task region")
	}
	for _, r := range taskRegions[1:] {
		if r != taskRegions[0] {
			t.Fatal("same region decoded to distinct pointers")
		}
	}
}

func TestClockProperties(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace(region.NewRegistry())); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if rd.ClockResolution() != 1e9 {
		t.Fatalf("clock resolution = %d, want 1e9", rd.ClockResolution())
	}
	if rd.ClockOffset() != 0 {
		t.Fatalf("clock offset = %d, want 0", rd.ClockOffset())
	}
}

func TestTruncatedArchiveYieldsPrefix(t *testing.T) {
	want := sampleTrace(region.NewRegistry())
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	total := want.NumEvents()

	for cut := len(full) - 1; cut > len(magic); cut-- {
		rd, err := NewReader(bytes.NewReader(full[:cut]), region.NewRegistry())
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: header error %v", cut, err)
			}
			continue
		}
		n := 0
		for {
			_, _, err := rd.Next()
			if err == nil {
				n++
				continue
			}
			if err != io.EOF && !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d after %d events: unexpected error %v", cut, n, err)
			}
			break
		}
		if n > total {
			t.Fatalf("cut %d: decoded %d events from a %d-event archive", cut, n, total)
		}
	}
}

func TestReadAllSalvagesTruncatedPrefix(t *testing.T) {
	want := sampleTrace(region.NewRegistry())
	var buf bytes.Buffer
	// One-event chunks maximize the number of intact chunk boundaries.
	aw := NewWriterSize(&buf, 1024)
	for _, tid := range want.ThreadIDs() {
		for _, ev := range want.Threads[tid] {
			if err := aw.WriteEvent(tid, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut inside the last event chunk: the footer index and trailer are
	// lost too, so this also exercises the v2 salvage degradation to
	// the sequential walk.
	cut := int(lastEventChunkOffset(t, full)) + 3
	tr, err := ReadAll(bytes.NewReader(full[:cut]), region.NewRegistry())
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if tr == nil || tr.NumEvents() == 0 {
		t.Fatal("no prefix salvaged from truncated archive")
	}
	if tr.NumEvents() >= want.NumEvents() {
		t.Fatalf("salvaged %d events from a %d-event archive missing its tail", tr.NumEvents(), want.NumEvents())
	}

	a, err := Analyze(bytes.NewReader(full[:cut]))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Analyze err = %v, want ErrTruncated", err)
	}
	if a == nil || len(a.PerThread) == 0 {
		t.Fatal("no analysis salvaged from truncated archive")
	}
}

// lastEventChunkOffset returns the byte offset of the archive's last
// event chunk, located via the footer index.
func lastEventChunkOffset(t *testing.T, archive []byte) int64 {
	t.Helper()
	ix, err := ReadIndex(bytes.NewReader(archive))
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	last := int64(-1)
	for _, tc := range ix.Threads {
		for _, c := range tc.Chunks {
			if c.Offset > last {
				last = c.Offset
			}
		}
	}
	if last < 0 {
		t.Fatal("archive has no event chunks")
	}
	return last
}

func TestReadAllHeaderTruncationReturnsEmptyPrefix(t *testing.T) {
	// A 0-byte or sub-header file is the archive of a run that crashed
	// before the first flush: ReadAll/Analyze must return a usable
	// empty prefix alongside ErrTruncated, never a nil result.
	for _, data := range [][]byte{{}, []byte("SPO")} {
		tr, err := ReadAll(bytes.NewReader(data), region.NewRegistry())
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("ReadAll(%q) err = %v, want ErrTruncated", data, err)
		}
		if tr == nil || tr.NumEvents() != 0 {
			t.Fatalf("ReadAll(%q) trace = %v, want empty non-nil", data, tr)
		}
		a, err := Analyze(bytes.NewReader(data))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("Analyze(%q) err = %v, want ErrTruncated", data, err)
		}
		if a == nil {
			t.Fatalf("Analyze(%q) returned nil analysis", data)
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTOTF2\x01garbage")), region.NewRegistry()); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte(magic), 99)
	if _, err := NewReader(bytes.NewReader(bad), region.NewRegistry()); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestAnalyzeStreamMatchesInMemory(t *testing.T) {
	// Record a real run, then check the out-of-core analysis of the
	// archive is bit-identical to the in-memory analysis.
	reg := region.NewRegistry()
	rec := trace.NewRecorder(clock.NewSystem())
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "a.go", 1, region.Parallel)
	task := reg.Register("work", "a.go", 2, region.Task)
	tw := reg.Register("tw", "a.go", 3, region.Taskwait)
	rt.Parallel(4, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 200; i++ {
				th.NewTask(task, func(*omp.Thread) {
					s := 0
					for j := 0; j < 2000; j++ {
						s += j
					}
					_ = s
				})
			}
			th.Taskwait(tw)
		}
	})
	tr := rec.Finish()

	var buf bytes.Buffer
	// Tiny chunks force many chunk boundaries through the analyzer.
	aw := NewWriterSize(&buf, 1024)
	for _, tid := range tr.ThreadIDs() {
		if err := aw.WriteEvents(tid, tr.Threads[tid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	want := trace.Analyze(tr)
	got, err := Analyze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("streaming analysis diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestStreamingRecorderBoundedMemory(t *testing.T) {
	// A live run through the bounded-memory recorder: events flow
	// thread-chunk by thread-chunk into the archive, and the archive
	// replays to the exact event counts of an in-memory recording of
	// the same deterministic workload.
	reg := region.NewRegistry()
	var buf bytes.Buffer
	aw := NewWriterSize(&buf, 1024)
	const chunkEvents = 16
	rec := trace.NewStreamingRecorder(clock.NewManual(0), aw, chunkEvents)
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "a.go", 1, region.Parallel)
	task := reg.Register("work", "a.go", 2, region.Task)
	tw := reg.Register("tw", "a.go", 3, region.Taskwait)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 500; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		}
	})
	leftover := rec.Finish()
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if n := leftover.NumEvents(); n != 0 {
		t.Fatalf("streaming Finish retained %d events in memory", n)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// 500 tasks x (create begin/end + begin + end) plus region and
	// thread records; exact count depends on scheduling, but every
	// task lifecycle event must be present exactly once.
	counts := map[trace.EventType]int{}
	for _, evs := range got.Threads {
		for _, ev := range evs {
			counts[ev.Type]++
		}
	}
	for _, typ := range []trace.EventType{trace.EvTaskCreateBegin, trace.EvTaskCreateEnd, trace.EvTaskBegin, trace.EvTaskEnd} {
		if counts[typ] != 500 {
			t.Fatalf("%v count = %d, want 500", typ, counts[typ])
		}
	}
	if counts[trace.EvThreadBegin] != 2 || counts[trace.EvThreadEnd] != 2 {
		t.Fatalf("thread begin/end counts = %d/%d, want 2/2",
			counts[trace.EvThreadBegin], counts[trace.EvThreadEnd])
	}
}

func TestStreamingRecorderLatchesSinkError(t *testing.T) {
	rec := trace.NewStreamingRecorder(clock.NewManual(0), failingSink{}, 1)
	reg := region.NewRegistry()
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "a.go", 1, region.Parallel)
	rt.Parallel(1, par, func(*omp.Thread) {})
	rec.Finish()
	if rec.Err() == nil {
		t.Fatal("sink error not latched")
	}
}

type failingSink struct{}

func (failingSink) WriteEvents(int, []trace.Event) error {
	return errors.New("disk full")
}

// randomTrace generates an arbitrary trace: random subset of threads,
// random event types, times (any int64 walk, including backwards),
// task IDs across the whole uint64 range, and regions drawn from a
// small pool that includes empty names/files plus nil regions.
func randomTrace(r *rand.Rand) *trace.Trace {
	reg := region.NewRegistry()
	pool := []*region.Region{
		nil,
		reg.Register("f", "file.go", 1, region.UserFunction),
		reg.Register("par", "file.go", 2, region.Parallel),
		reg.Register("task", "", 0, region.Task),
		reg.Register("", "x.go", 77, region.Taskwait), // empty name is legal in the binary format
		reg.Register("barrier", "y.go", 1<<20, region.ImplicitBarrier),
	}
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	for _, tid := range []int{0, 1, 17, 1 << 20}[:1+r.Intn(4)] {
		n := r.Intn(50)
		evs := make([]trace.Event, 0, n)
		t := r.Int63n(1 << 32)
		for i := 0; i < n; i++ {
			t += r.Int63n(1<<40) - 1<<39 // random walk, both directions
			evs = append(evs, trace.Event{
				Time:   t,
				Type:   trace.EventType(r.Intn(int(trace.EvThreadEnd) + 1)),
				Region: pool[r.Intn(len(pool))],
				TaskID: r.Uint64(),
			})
		}
		tr.Threads[tid] = evs
	}
	return tr
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	prop := func(tr *trace.Trace) bool {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()), region.NewRegistry())
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		for tid, wevs := range tr.Threads {
			if len(wevs) == 0 {
				continue // zero-event threads produce no chunks, legitimately absent
			}
			gevs := got.Threads[tid]
			if len(gevs) != len(wevs) {
				return false
			}
			for i := range wevs {
				if !eventsEqual(wevs[i], gevs[i]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomTrace(r))
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
