package otf2

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/region"
	"repro/internal/trace"
)

// cursor walks one chunk payload.
type cursor struct {
	payload []byte
	pos     int
}

// uvarint decodes an unsigned varint from the payload.
func (c *cursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.payload[c.pos:])
	if n <= 0 {
		return 0, corrupt("bad uvarint in %s", what)
	}
	c.pos += n
	return v, nil
}

// varint decodes a zig-zag signed varint from the payload.
func (c *cursor) varint(what string) (int64, error) {
	v, n := binary.Varint(c.payload[c.pos:])
	if n <= 0 {
		return 0, corrupt("bad varint in %s", what)
	}
	c.pos += n
	return v, nil
}

// defTables holds an archive's decoded definitions: the clock
// properties and the string and region interning tables event records
// reference. The sequential Reader mutates one instance in place; the
// parallel pipeline copy-on-write-forks the region table per
// definition chunk so already-dispatched decode jobs keep an immutable
// snapshot.
type defTables struct {
	strings map[uint64]string
	regions map[uint64]*region.Region

	clockResolution uint64
	clockOffset     int64
}

func newDefTables() *defTables {
	return &defTables{
		strings: make(map[uint64]string),
		regions: make(map[uint64]*region.Region),
	}
}

// forkRegions replaces the region table with a copy, leaving previously
// handed-out snapshots untouched.
func (t *defTables) forkRegions() {
	nr := make(map[uint64]*region.Region, len(t.regions)+8)
	for id, r := range t.regions {
		nr[id] = r
	}
	t.regions = nr
}

// decodeDefs consumes a definitions payload, interning regions into reg.
func (t *defTables) decodeDefs(c *cursor, reg *region.Registry) error {
	for c.pos < len(c.payload) {
		tag := c.payload[c.pos]
		c.pos++
		switch tag {
		case defClock:
			res, err := c.uvarint("clock resolution")
			if err != nil {
				return err
			}
			off, err := c.varint("clock offset")
			if err != nil {
				return err
			}
			t.clockResolution, t.clockOffset = res, off
		case defString:
			id, err := c.uvarint("string id")
			if err != nil {
				return err
			}
			n, err := c.uvarint("string length")
			if err != nil {
				return err
			}
			if uint64(len(c.payload)-c.pos) < n {
				return corrupt("string %d overruns chunk", id)
			}
			t.strings[id] = string(c.payload[c.pos : c.pos+int(n)])
			c.pos += int(n)
		case defRegion:
			id, err := c.uvarint("region id")
			if err != nil {
				return err
			}
			nameID, err := c.uvarint("region name")
			if err != nil {
				return err
			}
			fileID, err := c.uvarint("region file")
			if err != nil {
				return err
			}
			line, err := c.uvarint("region line")
			if err != nil {
				return err
			}
			typ, err := c.uvarint("region type")
			if err != nil {
				return err
			}
			name, ok := t.strings[nameID]
			if !ok {
				return corrupt("region %d references undefined string %d", id, nameID)
			}
			file, ok := t.strings[fileID]
			if !ok {
				return corrupt("region %d references undefined string %d", id, fileID)
			}
			if typ > maxRegionType {
				return corrupt("region %d has unknown type %d", id, typ)
			}
			t.regions[id] = reg.Register(name, file, int(line), region.Type(typ))
		default:
			return corrupt("unknown definition tag %#x", tag)
		}
	}
	return nil
}

// decodeEvent consumes one event record from c, resolving region
// references in regions and advancing the running per-thread timestamp
// at *last.
func decodeEvent(c *cursor, regions map[uint64]*region.Region, last *int64) (trace.Event, error) {
	if c.pos >= len(c.payload) {
		return trace.Event{}, corrupt("event chunk shorter than declared count")
	}
	typ := c.payload[c.pos]
	c.pos++
	if typ > maxEventType {
		return trace.Event{}, corrupt("unknown event type %d", typ)
	}
	dt, err := c.varint("event time delta")
	if err != nil {
		return trace.Event{}, err
	}
	ref, err := c.uvarint("event region ref")
	if err != nil {
		return trace.Event{}, err
	}
	task, err := c.uvarint("event task id")
	if err != nil {
		return trace.Event{}, err
	}
	ev := trace.Event{Type: trace.EventType(typ), TaskID: task}
	*last += dt
	ev.Time = *last
	if ref != 0 {
		reg, ok := regions[ref-1]
		if !ok {
			return trace.Event{}, corrupt("event references undefined region %d", ref-1)
		}
		ev.Region = reg
	}
	return ev, nil
}

// minEventBytes is the smallest encoding of one event record (type byte
// plus three one-byte varints); readers use it to clamp declared run
// lengths against the actual payload size before pre-sizing buffers.
const minEventBytes = 4

// Reader iterates an archive event by event. It holds one chunk plus
// the definition tables in memory, so arbitrarily large archives can be
// analyzed out of core. Regions referenced by events are interned into
// the registry passed to NewReader, giving read events the same
// pointer-identity semantics as live-recorded ones.
type Reader struct {
	src     io.Reader // underlying source; io.Seeker-capable for Seek
	br      *bufio.Reader
	reg     *region.Registry
	tables  *defTables
	version byte

	// Current event chunk being drained. curLast caches the current
	// thread's running timestamp so the decode hot loop touches no
	// maps; it is persisted to lastTime when the next event chunk
	// begins.
	cur       cursor
	curThread int
	remaining uint64
	curLast   int64
	inEvents  bool

	// rdbuf is the persistent framed-chunk read buffer; inflbuf is the
	// persistent decompression target for 'C' chunks. The cursor points
	// into one of the two.
	rdbuf   []byte
	inflbuf []byte

	lastTime map[int]int64
	err      error

	// flight holds the archive's flight-recorder accounting once its
	// 'F' chunk has been walked past (the writer places it directly
	// after the header, so it is available before the first event).
	flight *FlightInfo
}

// cutOrIOErr classifies a read failure: a clean or short end of input
// is genuine truncation (salvageable, wrapped in ErrTruncated); any
// other I/O error — a failing disk, a network filesystem hiccup — is
// not a crashed-run artifact and must not be downgraded to a warning
// by callers.
func cutOrIOErr(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %s: %v", ErrTruncated, what, err)
	}
	return fmt.Errorf("otf2: %s: %w", what, err)
}

// readHeader validates the archive header on br and returns the
// archive's format version (1 or 2).
func readHeader(br *bufio.Reader) (byte, error) {
	var hdr [len(magic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, cutOrIOErr("reading header", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, corrupt("bad magic %q", hdr[:len(magic)])
	}
	v := hdr[len(magic)]
	if v != version1 && v != version2 {
		return 0, fmt.Errorf("otf2: unsupported format version %d (have %d and %d)", v, version1, version2)
	}
	return v, nil
}

// readChunkInto reads the next chunk's kind and payload from br,
// reusing buf's capacity. It returns io.EOF at a clean end between
// chunks.
func readChunkInto(br *bufio.Reader, buf []byte) (byte, []byte, error) {
	kind, err := br.ReadByte()
	if err == io.EOF {
		return 0, buf, io.EOF
	}
	if err != nil {
		return 0, buf, cutOrIOErr("reading chunk kind", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, buf, cutOrIOErr("reading chunk length", err)
	}
	if n > maxChunkLen {
		return 0, buf, corrupt("chunk length %d exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, buf, cutOrIOErr("chunk payload", err)
	}
	return kind, buf, nil
}

// NewReader opens an archive, validating the header. Both format
// versions are accepted; FormatVersion reports which one the archive
// declares.
func NewReader(r io.Reader, reg *region.Registry) (*Reader, error) {
	br := bufio.NewReader(r)
	v, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return &Reader{
		src:      r,
		br:       br,
		reg:      reg,
		tables:   newDefTables(),
		version:  v,
		lastTime: make(map[int]int64),
	}, nil
}

// FormatVersion returns the archive's declared format version (1 or 2).
func (r *Reader) FormatVersion() int { return int(r.version) }

// ClockResolution returns the timer ticks per second declared by the
// archive's clock-properties record (0 before one has been read; the
// writer emits it ahead of the first event chunk).
func (r *Reader) ClockResolution() uint64 { return r.tables.clockResolution }

// ClockOffset returns the declared global timestamp offset.
func (r *Reader) ClockOffset() int64 { return r.tables.clockOffset }

// fail latches and returns err.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// Next returns the next event and the thread it belongs to. At the end
// of the archive it returns io.EOF; on an archive cut off mid-chunk it
// returns an error wrapping ErrTruncated (all previously returned
// events belong to the intact prefix). After any error Next keeps
// returning the same error.
func (r *Reader) Next() (int, trace.Event, error) {
	if r.err != nil {
		return 0, trace.Event{}, r.err
	}
	for r.remaining == 0 {
		if err := r.nextChunk(); err != nil {
			return 0, trace.Event{}, r.fail(err)
		}
	}
	ev, err := decodeEvent(&r.cur, r.tables.regions, &r.curLast)
	if err != nil {
		return 0, trace.Event{}, r.fail(err)
	}
	r.remaining--
	return r.curThread, ev, nil
}

// chunkRemaining reports how many events of the current chunk's run are
// still undecoded, clamped by what the payload could physically hold —
// a hostile header cannot make callers pre-size huge buffers.
func (r *Reader) chunkRemaining() int {
	rem := r.remaining
	if maxFit := uint64(len(r.cur.payload)-r.cur.pos)/minEventBytes + 1; rem > maxFit {
		rem = maxFit
	}
	return int(rem)
}

// nextChunk reads chunks until an event chunk is current or the archive
// ends. Definition chunks update the tables in place; compressed event
// chunks are inflated transparently; index and trailer chunks — like
// any unknown chunk kind — are skipped for forward compatibility.
func (r *Reader) nextChunk() error {
	kind, payload, err := readChunkInto(r.br, r.rdbuf)
	r.rdbuf = payload
	r.cur.payload = payload
	r.cur.pos = 0
	if err != nil {
		return err // includes the clean io.EOF between chunks
	}
	switch kind {
	case chunkDefs:
		return r.tables.decodeDefs(&r.cur, r.reg)
	case chunkCompressed:
		raw, err := inflateChunk(r.inflbuf, payload)
		r.inflbuf = raw
		if err != nil {
			return err
		}
		r.cur.payload = raw
		r.cur.pos = 0
		return r.startEvents()
	case chunkEvents:
		return r.startEvents()
	case chunkFlight:
		info, err := decodeFlightInfo(payload)
		if err != nil {
			return err
		}
		r.flight = info
		return nil
	default:
		// Index, trailer, and any future chunk kind: skip.
		return nil
	}
}

// FlightInfo returns the flight-recorder accounting of a dump archive,
// or nil when none has been read (a non-dump archive, or a walk that
// has not yet passed the 'F' chunk — dumps place it before the first
// event chunk, so any Next call surfaces it).
func (r *Reader) FlightInfo() *FlightInfo { return r.flight }

// startEvents parses the thread/count head of the event payload the
// cursor points at and makes it the current chunk.
func (r *Reader) startEvents() error {
	tid, err := r.cur.varint("event chunk thread")
	if err != nil {
		return err
	}
	count, err := r.cur.uvarint("event chunk count")
	if err != nil {
		return err
	}
	if r.inEvents {
		r.lastTime[r.curThread] = r.curLast
	}
	r.curThread = int(tid)
	r.remaining = count
	r.curLast = r.lastTime[r.curThread]
	r.inEvents = true
	return nil
}

// PrimeDefinitions loads the definition chunks at the given byte
// offsets (as recorded in Index.DefOffsets) without walking the
// archive. Together with Seek it enables random access: definitions
// primed up front resolve the region references of any later-sought
// event chunk. It requires the underlying reader to be an io.Seeker.
func (r *Reader) PrimeDefinitions(offsets []int64) error {
	rs, ok := r.src.(io.ReadSeeker)
	if !ok {
		return fmt.Errorf("otf2: PrimeDefinitions requires an io.Seeker source")
	}
	for _, off := range offsets {
		kind, payload, err := ReadChunkAt(rs, off)
		if err != nil {
			return r.fail(err)
		}
		if kind != chunkDefs {
			return r.fail(corrupt("definition offset %d holds %q chunk", off, kind))
		}
		c := cursor{payload: payload}
		if err := r.tables.decodeDefs(&c, r.reg); err != nil {
			return r.fail(err)
		}
	}
	return nil
}

// Seek repositions the reader at the event chunk c of the given thread,
// as described by a footer index entry: the next Next calls return that
// chunk's events (then continue sequentially through the archive). The
// thread's running timestamp is primed from c.BaseTime, so the chunk
// decodes identically to a front-to-back walk. Definitions must already
// be loaded (PrimeDefinitions, or a prior walk past them). Seek
// requires the underlying reader to be an io.Seeker and clears any
// latched error.
func (r *Reader) Seek(thread int, c ChunkRef) error {
	rs, ok := r.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("otf2: Seek requires an io.Seeker source")
	}
	if _, err := rs.Seek(c.Offset, io.SeekStart); err != nil {
		return fmt.Errorf("otf2: seeking chunk at %d: %w", c.Offset, err)
	}
	r.br.Reset(r.src)
	r.err = nil
	r.remaining = 0
	r.inEvents = false
	r.lastTime[thread] = c.BaseTime
	return nil
}

// ReadAll loads a whole archive into memory as a trace.Trace, interning
// regions into reg — the binary counterpart of trace.ReadJSONL. On an
// archive cut off mid-chunk (a crashed run) it returns the decoded
// prefix together with an error wrapping ErrTruncated, so the salvaged
// events remain usable.
func ReadAll(r io.Reader, reg *region.Registry) (*trace.Trace, error) {
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	rd, err := NewReader(r, reg)
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			// Archive cut within the header: the prefix is empty but
			// the contract (non-nil trace alongside ErrTruncated) holds.
			return tr, err
		}
		return nil, err
	}
	for {
		tid, ev, err := rd.Next()
		if err == io.EOF {
			return tr, nil
		}
		if errors.Is(err, ErrTruncated) {
			return tr, err
		}
		if err != nil {
			return nil, err
		}
		evs := tr.Threads[tid]
		if len(evs) == cap(evs) {
			// Pre-size from the chunk's remaining run length instead of
			// growing append-by-append: one allocation per chunk (or
			// fewer), combined with geometric growth so repeated small
			// chunks of one thread stay amortized O(1) per event.
			need := len(evs) + 1 + rd.chunkRemaining()
			newCap := 2 * cap(evs)
			if newCap < need {
				newCap = need
			}
			grown := make([]trace.Event, len(evs), newCap)
			copy(grown, evs)
			evs = grown
		}
		tr.Threads[tid] = append(evs, ev)
	}
}

// Analyze runs the streaming trace analysis over an archive without
// materializing it: per-thread state machines consume events chunk by
// chunk, so memory use is O(threads + one chunk) regardless of archive
// size — out-of-core analysis in the Scalasca sense. Like ReadAll it
// returns the analysis of the intact prefix together with an error
// wrapping ErrTruncated when the archive is cut off mid-chunk. See
// AnalyzeParallel for the multi-core variant.
func Analyze(r io.Reader) (*trace.Analysis, error) {
	sa := trace.NewStreamAnalyzer()
	rd, err := NewReader(r, region.NewRegistry())
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			return sa.Finish(), err
		}
		return nil, err
	}
	for {
		tid, ev, err := rd.Next()
		if err == io.EOF {
			return sa.Finish(), nil
		}
		if errors.Is(err, ErrTruncated) {
			return sa.Finish(), err
		}
		if err != nil {
			return nil, err
		}
		sa.Observe(tid, ev)
	}
}
