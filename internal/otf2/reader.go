package otf2

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/region"
	"repro/internal/trace"
)

// Reader iterates an archive event by event. It holds one chunk plus
// the definition tables in memory, so arbitrarily large archives can be
// analyzed out of core. Regions referenced by events are interned into
// the registry passed to NewReader, giving read events the same
// pointer-identity semantics as live-recorded ones.
type Reader struct {
	br  *bufio.Reader
	reg *region.Registry

	strings map[uint64]string
	regions map[uint64]*region.Region

	clockResolution uint64
	clockOffset     int64

	// Current event chunk being drained. curLast caches the current
	// thread's running timestamp so the decode hot loop touches no
	// maps; it is persisted to lastTime when the next event chunk
	// begins.
	payload   []byte
	pos       int
	curThread int
	remaining uint64
	curLast   int64
	inEvents  bool

	lastTime map[int]int64
	err      error
}

// cutOrIOErr classifies a read failure: a clean or short end of input
// is genuine truncation (salvageable, wrapped in ErrTruncated); any
// other I/O error — a failing disk, a network filesystem hiccup — is
// not a crashed-run artifact and must not be downgraded to a warning
// by callers.
func cutOrIOErr(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %s: %v", ErrTruncated, what, err)
	}
	return fmt.Errorf("otf2: %s: %w", what, err)
}

// NewReader opens an archive, validating the header.
func NewReader(r io.Reader, reg *region.Registry) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [len(magic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, cutOrIOErr("reading header", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, corrupt("bad magic %q", hdr[:len(magic)])
	}
	if hdr[len(magic)] != version {
		return nil, fmt.Errorf("otf2: unsupported format version %d (have %d)", hdr[len(magic)], version)
	}
	return &Reader{
		br:       br,
		reg:      reg,
		strings:  make(map[uint64]string),
		regions:  make(map[uint64]*region.Region),
		lastTime: make(map[int]int64),
	}, nil
}

// ClockResolution returns the timer ticks per second declared by the
// archive's clock-properties record (0 before one has been read; the
// writer emits it ahead of the first event chunk).
func (r *Reader) ClockResolution() uint64 { return r.clockResolution }

// ClockOffset returns the declared global timestamp offset.
func (r *Reader) ClockOffset() int64 { return r.clockOffset }

// fail latches and returns err.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// Next returns the next event and the thread it belongs to. At the end
// of the archive it returns io.EOF; on an archive cut off mid-chunk it
// returns an error wrapping ErrTruncated (all previously returned
// events belong to the intact prefix). After any error Next keeps
// returning the same error.
func (r *Reader) Next() (int, trace.Event, error) {
	if r.err != nil {
		return 0, trace.Event{}, r.err
	}
	for r.remaining == 0 {
		if err := r.nextChunk(); err != nil {
			return 0, trace.Event{}, r.fail(err)
		}
	}
	ev, err := r.decodeEvent()
	if err != nil {
		return 0, trace.Event{}, r.fail(err)
	}
	r.remaining--
	return r.curThread, ev, nil
}

// nextChunk reads chunks until an event chunk is current or the archive
// ends. Definition chunks update the tables in place; unknown chunk
// kinds are skipped for forward compatibility.
func (r *Reader) nextChunk() error {
	kind, err := r.br.ReadByte()
	if err == io.EOF {
		return io.EOF // clean end between chunks
	}
	if err != nil {
		return cutOrIOErr("reading chunk kind", err)
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return cutOrIOErr("reading chunk length", err)
	}
	if n > maxChunkLen {
		return corrupt("chunk length %d exceeds limit", n)
	}
	if uint64(cap(r.payload)) < n {
		r.payload = make([]byte, n)
	}
	r.payload = r.payload[:n]
	if _, err := io.ReadFull(r.br, r.payload); err != nil {
		return cutOrIOErr("chunk payload", err)
	}
	r.pos = 0
	switch kind {
	case chunkDefs:
		return r.decodeDefs()
	case chunkEvents:
		tid, err := r.varint("event chunk thread")
		if err != nil {
			return err
		}
		count, err := r.uvarint("event chunk count")
		if err != nil {
			return err
		}
		if r.inEvents {
			r.lastTime[r.curThread] = r.curLast
		}
		r.curThread = int(tid)
		r.remaining = count
		r.curLast = r.lastTime[r.curThread]
		r.inEvents = true
		return nil
	default:
		return nil // unknown chunk kind: skip
	}
}

// uvarint decodes an unsigned varint from the current payload.
func (r *Reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 {
		return 0, corrupt("bad uvarint in %s", what)
	}
	r.pos += n
	return v, nil
}

// varint decodes a zig-zag signed varint from the current payload.
func (r *Reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.payload[r.pos:])
	if n <= 0 {
		return 0, corrupt("bad varint in %s", what)
	}
	r.pos += n
	return v, nil
}

// decodeDefs consumes a definitions payload.
func (r *Reader) decodeDefs() error {
	for r.pos < len(r.payload) {
		tag := r.payload[r.pos]
		r.pos++
		switch tag {
		case defClock:
			res, err := r.uvarint("clock resolution")
			if err != nil {
				return err
			}
			off, err := r.varint("clock offset")
			if err != nil {
				return err
			}
			r.clockResolution, r.clockOffset = res, off
		case defString:
			id, err := r.uvarint("string id")
			if err != nil {
				return err
			}
			n, err := r.uvarint("string length")
			if err != nil {
				return err
			}
			if uint64(len(r.payload)-r.pos) < n {
				return corrupt("string %d overruns chunk", id)
			}
			r.strings[id] = string(r.payload[r.pos : r.pos+int(n)])
			r.pos += int(n)
		case defRegion:
			id, err := r.uvarint("region id")
			if err != nil {
				return err
			}
			nameID, err := r.uvarint("region name")
			if err != nil {
				return err
			}
			fileID, err := r.uvarint("region file")
			if err != nil {
				return err
			}
			line, err := r.uvarint("region line")
			if err != nil {
				return err
			}
			typ, err := r.uvarint("region type")
			if err != nil {
				return err
			}
			name, ok := r.strings[nameID]
			if !ok {
				return corrupt("region %d references undefined string %d", id, nameID)
			}
			file, ok := r.strings[fileID]
			if !ok {
				return corrupt("region %d references undefined string %d", id, fileID)
			}
			if typ > maxRegionType {
				return corrupt("region %d has unknown type %d", id, typ)
			}
			r.regions[id] = r.reg.Register(name, file, int(line), region.Type(typ))
		default:
			return corrupt("unknown definition tag %#x", tag)
		}
	}
	return nil
}

// decodeEvent consumes one event record from the current chunk.
func (r *Reader) decodeEvent() (trace.Event, error) {
	if r.pos >= len(r.payload) {
		return trace.Event{}, corrupt("event chunk shorter than declared count")
	}
	typ := r.payload[r.pos]
	r.pos++
	if typ > maxEventType {
		return trace.Event{}, corrupt("unknown event type %d", typ)
	}
	dt, err := r.varint("event time delta")
	if err != nil {
		return trace.Event{}, err
	}
	ref, err := r.uvarint("event region ref")
	if err != nil {
		return trace.Event{}, err
	}
	task, err := r.uvarint("event task id")
	if err != nil {
		return trace.Event{}, err
	}
	ev := trace.Event{Type: trace.EventType(typ), TaskID: task}
	r.curLast += dt
	ev.Time = r.curLast
	if ref != 0 {
		reg, ok := r.regions[ref-1]
		if !ok {
			return trace.Event{}, corrupt("event references undefined region %d", ref-1)
		}
		ev.Region = reg
	}
	return ev, nil
}

// ReadAll loads a whole archive into memory as a trace.Trace, interning
// regions into reg — the binary counterpart of trace.ReadJSONL. On an
// archive cut off mid-chunk (a crashed run) it returns the decoded
// prefix together with an error wrapping ErrTruncated, so the salvaged
// events remain usable.
func ReadAll(r io.Reader, reg *region.Registry) (*trace.Trace, error) {
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	rd, err := NewReader(r, reg)
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			// Archive cut within the header: the prefix is empty but
			// the contract (non-nil trace alongside ErrTruncated) holds.
			return tr, err
		}
		return nil, err
	}
	for {
		tid, ev, err := rd.Next()
		if err == io.EOF {
			return tr, nil
		}
		if errors.Is(err, ErrTruncated) {
			return tr, err
		}
		if err != nil {
			return nil, err
		}
		tr.Threads[tid] = append(tr.Threads[tid], ev)
	}
}

// Analyze runs the streaming trace analysis over an archive without
// materializing it: per-thread state machines consume events chunk by
// chunk, so memory use is O(threads + one chunk) regardless of archive
// size — out-of-core analysis in the Scalasca sense. Like ReadAll it
// returns the analysis of the intact prefix together with an error
// wrapping ErrTruncated when the archive is cut off mid-chunk.
func Analyze(r io.Reader) (*trace.Analysis, error) {
	sa := trace.NewStreamAnalyzer()
	rd, err := NewReader(r, region.NewRegistry())
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			return sa.Finish(), err
		}
		return nil, err
	}
	for {
		tid, ev, err := rd.Next()
		if err == io.EOF {
			return sa.Finish(), nil
		}
		if errors.Is(err, ErrTruncated) {
			return sa.Finish(), err
		}
		if err != nil {
			return nil, err
		}
		sa.Observe(tid, ev)
	}
}
