package otf2

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/region"
	"repro/internal/trace"
)

// benchTrace builds a realistic synthetic recording: nTasks task
// lifecycles per thread inside a parallel+taskwait envelope, the event
// mix a BOTS run produces.
func benchTrace(threads, nTasks int) *trace.Trace {
	reg := region.NewRegistry()
	par := reg.Register("bench.parallel", "bench.go", 1, region.Parallel)
	task := reg.Register("bench.task", "bench.go", 2, region.Task)
	create := reg.Register("bench.create", "bench.go", 2, region.TaskCreate)
	tw := reg.Register("bench.taskwait", "bench.go", 3, region.Taskwait)
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	var id uint64
	for t := 0; t < threads; t++ {
		now := int64(1000 * t)
		tick := func() int64 { now += 740; return now }
		evs := []trace.Event{
			{Time: tick(), Type: trace.EvThreadBegin},
			{Time: tick(), Type: trace.EvEnter, Region: par},
			{Time: tick(), Type: trace.EvEnter, Region: tw},
		}
		for i := 0; i < nTasks; i++ {
			id++
			evs = append(evs,
				trace.Event{Time: tick(), Type: trace.EvTaskCreateBegin, Region: create},
				trace.Event{Time: tick(), Type: trace.EvTaskCreateEnd, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskBegin, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskEnd, Region: task, TaskID: id},
			)
		}
		evs = append(evs,
			trace.Event{Time: tick(), Type: trace.EvExit, Region: tw},
			trace.Event{Time: tick(), Type: trace.EvExit, Region: par},
			trace.Event{Time: tick(), Type: trace.EvThreadEnd},
		)
		tr.Threads[t] = evs
	}
	return tr
}

// BenchmarkEncode measures the binary codec's write path in isolation.
func BenchmarkEncode(b *testing.B) {
	tr := benchTrace(4, 2000)
	events := tr.NumEvents()
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n countingWriter
		if err := Write(&n, tr); err != nil {
			b.Fatal(err)
		}
		size = int64(n)
	}
	b.ReportMetric(float64(size)/float64(events), "bytes/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkDecode measures the binary codec's read path in isolation.
func BenchmarkDecode(b *testing.B) {
	tr := benchTrace(4, 2000)
	events := tr.NumEvents()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(data), region.NewRegistry()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkStreamAnalyze measures the out-of-core analysis over an
// in-memory archive image.
func BenchmarkStreamAnalyze(b *testing.B) {
	tr := benchTrace(4, 2000)
	events := tr.NumEvents()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkWriteThroughput compares end-to-end trace serialization,
// binary archive vs the JSONL stand-in, on the same recording. The
// bytes/event metrics quantify the format's compression (acceptance:
// binary ≤ 1/8 of JSONL).
func BenchmarkWriteThroughput(b *testing.B) {
	tr := benchTrace(4, 2000)
	events := tr.NumEvents()
	b.Run("binary", func(b *testing.B) {
		var size int64
		for i := 0; i < b.N; i++ {
			var n countingWriter
			if err := Write(&n, tr); err != nil {
				b.Fatal(err)
			}
			size = int64(n)
		}
		b.SetBytes(size)
		b.ReportMetric(float64(size)/float64(events), "bytes/event")
	})
	b.Run("jsonl", func(b *testing.B) {
		var size int64
		for i := 0; i < b.N; i++ {
			var n countingWriter
			if err := trace.WriteJSONL(&n, tr); err != nil {
				b.Fatal(err)
			}
			size = int64(n)
		}
		b.SetBytes(size)
		b.ReportMetric(float64(size)/float64(events), "bytes/event")
	})
}

// countingWriter discards bytes, counting them.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)
