package otf2

import (
	"bufio"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/region"
	"repro/internal/trace"
)

// This file implements the parallel out-of-core side of the archive
// format: a sequential frame scanner splits the archive into chunks and
// fans decoded-chunk work out to a bounded worker pool, while
// per-thread shards re-serialize each thread's chunks in archive order
// — the structure of Scalasca's parallel trace analysis, where one
// analysis process owns each trace location. Decoding (the varint-heavy
// part) runs fully parallel across chunks of all threads; only the
// cheap consume step (feeding a trace.ParallelAnalyzer shard, or
// appending to a thread's event slice) is serialized per thread, so the
// pipeline scales with min(worker count, chunk parallelism), not with
// the archive's thread count alone.

// normWorkers resolves a worker-count knob: <= 0 means "one per
// processor".
func normWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunkJob is one event chunk handed to the worker pool.
type chunkJob struct {
	sh      *shard
	seq     int // per-thread chunk sequence number
	idx     int // global chunk index, for earliest-error selection
	payload []byte
	pos     int // payload offset past the thread/count head
	count   uint64
	regions map[uint64]*region.Region // immutable snapshot at scan time
}

// decodedRun is one chunk's events with chunk-relative timestamps;
// total is the sum of the chunk's time deltas, i.e. the running-time
// advance the chunk contributes to its thread.
type decodedRun struct {
	events []trace.Event
	total  int64
}

// runPool recycles decoded event slices for consumers that do not
// retain them (analysis). Reuse matters beyond allocator pressure: a
// fresh chunk-sized []trace.Event must be zeroed at allocation (it
// holds pointers), which costs more than the decode itself on large
// chunks.
var runPool sync.Pool

func newRunBuf(n int) []trace.Event {
	if v := runPool.Get(); v != nil {
		if b := v.([]trace.Event); cap(b) >= n {
			return b[:0]
		}
	}
	return make([]trace.Event, 0, n)
}

func putRunBuf(b []trace.Event) {
	if cap(b) > 0 {
		runPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is amortized per chunk
	}
}

// shard serializes one trace thread's chunks. Workers decode chunks of
// any thread concurrently; deliver applies decoded runs strictly in
// per-thread sequence order, rebasing the chunk-relative timestamps
// onto the thread's running clock. Whichever worker completes the
// in-order chunk drains any runs parked by faster siblings, so no
// dedicated per-thread goroutine exists.
type shard struct {
	tid     int
	scanSeq int  // next sequence number to assign (scanner only)
	recycle bool // return applied runs to runPool (consumer does not retain them)

	// absolute marks runs decoded with absolute timestamps already (the
	// indexed query path, which primes each chunk from its indexed
	// BaseTime): deliver then applies them without rebasing, and `last`
	// is unused.
	absolute bool

	mu      sync.Mutex
	next    int
	pending map[int]*decodedRun
	last    int64 // running absolute timestamp; owned by the in-order worker
}

// deliver hands a decoded run to the shard. consume is invoked with
// absolute-time events, per-thread serially and in archive order;
// release returns one in-flight-budget token per applied run.
func (sh *shard) deliver(seq int, run *decodedRun, consume func(int, []trace.Event), release func()) {
	sh.mu.Lock()
	if seq != sh.next {
		if sh.pending == nil {
			sh.pending = make(map[int]*decodedRun)
		}
		sh.pending[seq] = run
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	// This goroutine owns the shard state until it fails to find the
	// successor run: only the holder of seq == next can reach here.
	for {
		evs := run.events
		if !sh.absolute {
			base := sh.last
			for i := range evs {
				evs[i].Time += base
			}
			sh.last = base + run.total
		}
		consume(sh.tid, evs)
		if sh.recycle {
			putRunBuf(evs)
		}
		release()
		sh.mu.Lock()
		sh.next++
		nxt, ok := sh.pending[sh.next]
		if !ok {
			sh.mu.Unlock()
			return
		}
		delete(sh.pending, sh.next)
		sh.mu.Unlock()
		run = nxt
	}
}

// decodeRun decodes one chunk's events with chunk-relative timestamps.
func decodeRun(j *chunkJob) (*decodedRun, error) {
	c := cursor{payload: j.payload, pos: j.pos}
	n := int(j.count)
	// Clamp the declared count by what the payload could hold before
	// pre-sizing, like Reader.chunkRemaining.
	if maxFit := (len(j.payload)-j.pos)/minEventBytes + 1; n > maxFit {
		n = maxFit
	}
	var events []trace.Event
	if j.sh.recycle {
		events = newRunBuf(n)
	} else {
		events = make([]trace.Event, 0, n)
	}
	var last int64
	for i := uint64(0); i < j.count; i++ {
		ev, err := decodeEvent(&c, j.regions, &last)
		if err != nil {
			if j.sh.recycle {
				putRunBuf(events)
			}
			return nil, err
		}
		events = append(events, ev)
	}
	return &decodedRun{events: events, total: last}, nil
}

// errAt orders pipeline errors by archive position, so the parallel
// path reports the same (earliest) failure a sequential read would.
type errAt struct {
	idx int
	err error
}

type errLatch struct {
	p    atomic.Pointer[errAt]
	done chan struct{} // closed on first latch; unblocks the scanner
	once sync.Once
}

func (l *errLatch) latch(idx int, err error) {
	for {
		cur := l.p.Load()
		if cur != nil && cur.idx <= idx {
			return
		}
		if l.p.CompareAndSwap(cur, &errAt{idx: idx, err: err}) {
			l.once.Do(func() { close(l.done) })
			return
		}
	}
}

func (l *errLatch) get() error {
	if e := l.p.Load(); e != nil {
		return e.err
	}
	return nil
}

// runPipeline scans an archive and feeds every event, in per-thread
// order and with absolute timestamps, to consume — using workers
// decode goroutines. consume is called with at most one run per thread
// at a time. In-flight decoded chunks are bounded, so memory stays
// O(workers x chunk) regardless of archive size.
func runPipeline(r io.Reader, reg *region.Registry, workers int, recycle bool, consume func(int, []trace.Event)) error {
	br := bufio.NewReader(r)
	if _, err := readHeader(br); err != nil {
		return err
	}

	lat := &errLatch{done: make(chan struct{})}
	jobs := make(chan *chunkJob, workers)
	// inflight bounds decoded-but-unapplied chunks: the scanner acquires
	// a token per dispatched chunk, the owning shard releases it when
	// the run is applied. Dispatch order is archive order, so the
	// in-order run of every shard is always inside the window and the
	// window always drains.
	inflight := make(chan struct{}, 4*workers)
	release := func() { <-inflight }

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if lat.p.Load() != nil {
					putChunkBuf(j.payload)
					release()
					continue
				}
				run, err := decodeRun(j)
				putChunkBuf(j.payload)
				if err != nil {
					lat.latch(j.idx, err)
					release()
					continue
				}
				j.sh.deliver(j.seq, run, consume, release)
			}
		}()
	}

	tables := newDefTables()
	shards := make(map[int]*shard)
	snapshotHeld := false // a dispatched job holds tables.regions
	var scanErr error
	idx := 0
scan:
	for lat.p.Load() == nil {
		kind, payload, err := readChunkInto(br, newChunkBuf(0))
		if err == io.EOF {
			putChunkBuf(payload)
			break
		}
		if err != nil {
			putChunkBuf(payload)
			scanErr = err
			break
		}
		idx++
		if kind == chunkCompressed {
			// The thread/count head lives inside the compressed stream,
			// and the scanner needs the thread ID to sequence the chunk
			// onto its shard — so the sequential scan inflates inline.
			// (The indexed query planner knows the thread without
			// decompressing and parallelizes inflation across workers.)
			raw, err := inflateChunk(newChunkBuf(0), payload)
			putChunkBuf(payload)
			if err != nil {
				putChunkBuf(raw)
				scanErr = err
				break
			}
			kind, payload = chunkEvents, raw
		}
		switch kind {
		case chunkDefs:
			// Copy-on-write, but only when a dispatched job actually
			// holds the current table — runs of back-to-back 'D' chunks
			// mutate one fork instead of copying the table per chunk.
			if snapshotHeld {
				tables.forkRegions()
				snapshotHeld = false
			}
			c := cursor{payload: payload}
			err := tables.decodeDefs(&c, reg)
			putChunkBuf(payload)
			if err != nil {
				scanErr = err
				break scan
			}
		case chunkEvents:
			c := cursor{payload: payload}
			tid, err := c.varint("event chunk thread")
			if err == nil {
				var count uint64
				if count, err = c.uvarint("event chunk count"); err == nil && count == 0 {
					putChunkBuf(payload)
					continue
				}
				if err == nil {
					sh := shards[int(tid)]
					if sh == nil {
						sh = &shard{tid: int(tid), recycle: recycle}
						shards[int(tid)] = sh
					}
					job := &chunkJob{
						sh: sh, seq: sh.scanSeq, idx: idx,
						payload: payload, pos: c.pos, count: count,
						regions: tables.regions,
					}
					sh.scanSeq++
					select {
					case inflight <- struct{}{}:
					case <-lat.done:
						// A worker failed; stop scanning rather than
						// wait on a window that may never drain.
						putChunkBuf(payload)
						break scan
					}
					jobs <- job
					snapshotHeld = true
					continue
				}
			}
			putChunkBuf(payload)
			scanErr = err
			break scan
		default:
			putChunkBuf(payload) // unknown chunk kind: skip
		}
	}
	close(jobs)
	wg.Wait()

	// A decode error earlier in the archive outranks a later scan
	// error, matching what a sequential read would have hit first.
	if werr := lat.get(); werr != nil && (scanErr == nil || lat.p.Load().idx <= idx) {
		return werr
	}
	return scanErr
}

// AnalyzeParallel is Analyze with the decode and per-thread analysis
// work spread over a worker pool (workers <= 0 uses GOMAXPROCS;
// workers == 1 is exactly Analyze). Memory stays O(workers x chunk).
// The analysis is reflect.DeepEqual-identical to the sequential one —
// also for an archive cut off mid-chunk, where both return the intact
// prefix's analysis alongside an error wrapping ErrTruncated.
func AnalyzeParallel(r io.Reader, workers int) (*trace.Analysis, error) {
	workers = normWorkers(workers)
	if workers == 1 {
		return Analyze(r)
	}
	pa := trace.NewParallelAnalyzer()
	err := runPipeline(r, region.NewRegistry(), workers, true, pa.ObserveBatch)
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, err
	}
	return pa.Finish(), err
}

// ReadAllParallel is ReadAll with chunk decoding spread over a worker
// pool (workers <= 0 uses GOMAXPROCS; workers == 1 is exactly ReadAll).
// The loaded trace is identical to ReadAll's, including the salvaged
// prefix + ErrTruncated contract for archives cut off mid-chunk.
func ReadAllParallel(r io.Reader, reg *region.Registry, workers int) (*trace.Trace, error) {
	workers = normWorkers(workers)
	if workers == 1 {
		return ReadAll(r, reg)
	}
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	type slot struct{ evs []trace.Event }
	var mu sync.Mutex
	slots := make(map[int]*slot)
	consume := func(tid int, events []trace.Event) {
		mu.Lock()
		s := slots[tid]
		if s == nil {
			s = &slot{}
			slots[tid] = s
		}
		mu.Unlock()
		// Per-thread serial by the shard contract; only the map lookup
		// above needs the lock.
		if s.evs == nil {
			s.evs = events
			return
		}
		s.evs = append(s.evs, events...)
	}
	err := runPipeline(r, reg, workers, false, consume)
	if err != nil && !errors.Is(err, ErrTruncated) {
		return nil, err
	}
	for tid, s := range slots {
		tr.Threads[tid] = s.evs
	}
	return tr, err
}
