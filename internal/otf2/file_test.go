package otf2

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/region"
	"repro/internal/trace"
)

// fileTestTrace builds a deterministic single-thread trace with n task
// executions.
func fileTestTrace(reg *region.Registry, n int) *trace.Trace {
	task := reg.Register("file.task", "file_test.go", 1, region.Task)
	var evs []trace.Event
	ts := int64(0)
	next := func() int64 { ts += 10; return ts }
	evs = append(evs, trace.Event{Time: next(), Type: trace.EvThreadBegin})
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		evs = append(evs,
			trace.Event{Time: next(), Type: trace.EvTaskCreateBegin, Region: task},
			trace.Event{Time: next(), Type: trace.EvTaskCreateEnd, Region: task, TaskID: id},
			trace.Event{Time: next(), Type: trace.EvTaskBegin, Region: task, TaskID: id},
			trace.Event{Time: next(), Type: trace.EvTaskEnd, Region: task, TaskID: id},
		)
	}
	evs = append(evs, trace.Event{Time: next(), Type: trace.EvThreadEnd})
	return &trace.Trace{Threads: map[int][]trace.Event{0: evs}}
}

func TestReadFileLenientIntact(t *testing.T) {
	dir := t.TempDir()
	reg := region.NewRegistry()
	tr := fileTestTrace(reg, 8)
	for _, name := range []string{"t.otf2", "t.jsonl"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, warning, err := ReadFileLenient(path, region.NewRegistry(), 1)
		if err != nil || warning != "" {
			t.Fatalf("%s: ReadFileLenient = (_, %q, %v), want no warning, no error", name, warning, err)
		}
		if got.NumEvents() != tr.NumEvents() {
			t.Errorf("%s: events = %d, want %d", name, got.NumEvents(), tr.NumEvents())
		}
		n, warning, err := CountFileEvents(path)
		if err != nil || warning != "" || n != tr.NumEvents() {
			t.Errorf("%s: CountFileEvents = (%d, %q, %v), want (%d, \"\", nil)", name, n, warning, err, tr.NumEvents())
		}
	}
}

// TestReadFileLenientTruncated cuts an archive mid-chunk and checks the
// lenient helpers salvage the intact prefix with a warning.
func TestReadFileLenientTruncated(t *testing.T) {
	dir := t.TempDir()
	reg := region.NewRegistry()
	tr := fileTestTrace(reg, 2000) // multiple 1 KiB chunks

	path := filepath.Join(dir, "cut.otf2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterSize(f, 1024)
	if err := w.WriteEvents(0, tr.Threads[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate inside the last event chunk, so events are genuinely
	// lost along with the footer index and trailer.
	archive, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, lastEventChunkOffset(t, archive)+3); err != nil {
		t.Fatal(err)
	}

	got, warning, err := ReadFileLenient(path, region.NewRegistry(), 1)
	if err != nil {
		t.Fatalf("truncated archive must salvage, got %v", err)
	}
	if warning == "" {
		t.Error("truncation produced no warning")
	}
	if n := got.NumEvents(); n == 0 || n >= tr.NumEvents() {
		t.Errorf("salvaged %d events, want a non-empty strict prefix of %d", n, tr.NumEvents())
	}

	n, warning2, err := CountFileEvents(path)
	if err != nil || warning2 == "" {
		t.Fatalf("CountFileEvents = (_, %q, %v), want warning and no error", warning2, err)
	}
	if n != got.NumEvents() {
		t.Errorf("CountFileEvents = %d, ReadFileLenient salvaged %d", n, got.NumEvents())
	}

	a, warning3, err := AnalyzeFile(path, 1)
	if err != nil || warning3 == "" || a == nil {
		t.Fatalf("AnalyzeFile = (%v, %q, %v), want analysis, warning, no error", a, warning3, err)
	}
	if want := trace.Analyze(got); !reflect.DeepEqual(a, want) {
		t.Errorf("streaming analysis of the prefix differs from in-memory analysis")
	}
}

// TestAnalyzeFileFormatsAgree checks the two on-disk formats yield the
// same analysis for the same trace.
func TestAnalyzeFileFormatsAgree(t *testing.T) {
	dir := t.TempDir()
	reg := region.NewRegistry()
	tr := fileTestTrace(reg, 32)
	jsonl := filepath.Join(dir, "t.jsonl")
	archive := filepath.Join(dir, "t.otf2")
	if err := WriteFile(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(archive, tr); err != nil {
		t.Fatal(err)
	}
	aj, _, err := AnalyzeFile(jsonl, 1)
	if err != nil {
		t.Fatal(err)
	}
	aa, _, err := AnalyzeFile(archive, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aj, aa) {
		t.Errorf("JSONL and archive analyses differ:\njsonl:   %+v\narchive: %+v", aj, aa)
	}
}

// TestIntactPrefixSize checks the cut-point scan against the readers'
// salvage behavior: the intact prefix of a complete archive is the
// whole file, the prefix of a mid-chunk cut is chunk-aligned, and
// truncating to it yields an archive that reads cleanly with exactly
// the events the lenient reader salvages.
func TestIntactPrefixSize(t *testing.T) {
	dir := t.TempDir()
	reg := region.NewRegistry()
	tr := fileTestTrace(reg, 2000)

	path := filepath.Join(dir, "t.otf2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterSize(f, 1024)
	if err := w.WriteEvents(0, tr.Threads[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	archive, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if n, err := IntactPrefixSize(path); err != nil || n != int64(len(archive)) {
		t.Fatalf("complete archive: IntactPrefixSize = (%d, %v), want (%d, nil)", n, err, len(archive))
	}

	// Cut mid-chunk; the scan must land on the chunk boundary before the
	// cut, and the truncated-to-prefix file must read without salvage.
	cutPath := filepath.Join(dir, "cut.otf2")
	cut := lastEventChunkOffset(t, archive) + 3
	if err := os.WriteFile(cutPath, archive[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	prefix, err := IntactPrefixSize(cutPath)
	if err != nil {
		t.Fatal(err)
	}
	if prefix <= int64(len(magic)+1) || prefix >= cut {
		t.Fatalf("IntactPrefixSize = %d, want a chunk boundary in (8, %d)", prefix, cut)
	}
	salvaged, warning, err := ReadFileLenient(cutPath, region.NewRegistry(), 1)
	if err != nil || warning == "" {
		t.Fatalf("ReadFileLenient(cut) = (_, %q, %v), want salvage warning", warning, err)
	}
	if err := os.Truncate(cutPath, prefix); err != nil {
		t.Fatal(err)
	}
	clean, warning, err := ReadFileLenient(cutPath, region.NewRegistry(), 1)
	if err != nil || warning != "" {
		t.Fatalf("truncated-to-prefix archive = (_, %q, %v), want clean read", warning, err)
	}
	if clean.NumEvents() != salvaged.NumEvents() {
		t.Errorf("prefix archive has %d events, lenient salvage had %d", clean.NumEvents(), salvaged.NumEvents())
	}

	// Degenerate files: empty, short header, wrong magic.
	for name, content := range map[string][]byte{
		"empty.otf2": nil,
		"short.otf2": []byte(magic[:4]),
		"bad.otf2":   []byte("NOTOTF2\x01extra"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if n, err := IntactPrefixSize(p); err != nil || n != 0 {
			t.Errorf("%s: IntactPrefixSize = (%d, %v), want (0, nil)", name, n, err)
		}
	}
	if _, err := IntactPrefixSize(filepath.Join(dir, "missing.otf2")); err == nil {
		t.Error("IntactPrefixSize accepted a missing file")
	}
}

func TestLenientHelpersRealErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing.otf2")
	if _, _, err := ReadFileLenient(missing, region.NewRegistry(), 1); err == nil {
		t.Error("ReadFileLenient accepted a missing file")
	}
	if _, _, err := AnalyzeFile(missing, 1); err == nil {
		t.Error("AnalyzeFile accepted a missing file")
	}
	if _, _, err := CountFileEvents(missing); err == nil {
		t.Error("CountFileEvents accepted a missing file")
	}
}
