package otf2

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ChunkRef describes one event chunk of an archive, as recorded in the
// footer index: where it starts, how many events it holds, and the
// timestamp state needed to decode it standalone. BaseTime is the
// thread's running timestamp before the chunk's first event (its first
// time delta is relative to BaseTime); MinTime and MaxTime bound the
// chunk's absolute event timestamps inclusively, so a time-window query
// can prune the chunk without reading it.
type ChunkRef struct {
	Offset   int64
	Events   uint64
	BaseTime int64
	MinTime  int64
	MaxTime  int64
}

// ThreadChunks lists one thread's event chunks in archive order.
type ThreadChunks struct {
	Thread int
	Chunks []ChunkRef
}

// Index is an archive's decoded footer index: the offsets of every
// definition chunk plus, per thread in ascending ID order, every event
// chunk with its event count and time bounds. It is the seekable
// entry point of a version-2 archive — ReadIndex locates it in O(1)
// seeks via the fixed-size trailer.
type Index struct {
	DefOffsets []int64
	Threads    []ThreadChunks
}

// NumChunks returns the total number of event chunks in the index.
func (ix *Index) NumChunks() int {
	n := 0
	for i := range ix.Threads {
		n += len(ix.Threads[i].Chunks)
	}
	return n
}

// NumEvents returns the total event count declared by the index.
func (ix *Index) NumEvents() int {
	n := uint64(0)
	for i := range ix.Threads {
		for _, c := range ix.Threads[i].Chunks {
			n += c.Events
		}
	}
	return int(n)
}

// ThreadIDs returns the indexed thread IDs in ascending order.
func (ix *Index) ThreadIDs() []int {
	ids := make([]int, len(ix.Threads))
	for i := range ix.Threads {
		ids[i] = ix.Threads[i].Thread
	}
	return ids
}

// ReadIndex locates and decodes the footer index of a version-2
// archive in O(1) seeks: it reads the fixed-size trailer at the end of
// rs, validates it, and decodes the index chunk it points at. It
// returns ErrNoIndex when the archive has no readable index — a v1
// archive, a v2 archive cut off before Close wrote the footer, or a
// damaged trailer — in which case sequential access still works and
// callers fall back to it. The read position of rs is unspecified
// afterwards.
func ReadIndex(rs io.ReadSeeker) (*Index, error) {
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("otf2: locating index: %w", err)
	}
	if size < int64(len(magic))+1+trailerLen {
		return nil, ErrNoIndex
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("otf2: locating index: %w", err)
	}
	var hdr [len(magic) + 1]byte
	if _, err := io.ReadFull(rs, hdr[:]); err != nil {
		return nil, cutOrIOErr("reading header", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, corrupt("bad magic %q", hdr[:len(magic)])
	}
	if hdr[len(magic)] != version2 {
		return nil, ErrNoIndex // v1 archives have no index by design
	}
	var tr [trailerLen]byte
	if _, err := rs.Seek(size-trailerLen, io.SeekStart); err != nil {
		return nil, fmt.Errorf("otf2: locating index: %w", err)
	}
	if _, err := io.ReadFull(rs, tr[:]); err != nil {
		return nil, cutOrIOErr("reading trailer", err)
	}
	if tr[0] != chunkTrailer || tr[1] != trailerPayloadLen ||
		string(tr[2+8:]) != trailerMagic {
		return nil, ErrNoIndex // no trailer: crashed run or foreign suffix
	}
	idxOff := int64(binary.LittleEndian.Uint64(tr[2 : 2+8]))
	if idxOff < int64(len(magic))+1 || idxOff >= size-trailerLen {
		return nil, corrupt("index offset %d out of range", idxOff)
	}
	kind, payload, err := ReadChunkAt(rs, idxOff)
	if err != nil {
		return nil, err
	}
	if kind != chunkIndex {
		return nil, corrupt("trailer points at %q chunk, want index", kind)
	}
	return decodeIndex(payload, size)
}

// decodeIndex parses an index-chunk payload; size bounds the offsets it
// may declare.
func decodeIndex(payload []byte, size int64) (*Index, error) {
	c := cursor{payload: payload}
	ndefs, err := c.uvarint("index def count")
	if err != nil {
		return nil, err
	}
	ix := &Index{}
	var prevDef int64 = -1
	for i := uint64(0); i < ndefs; i++ {
		off, err := c.uvarint("index def offset")
		if err != nil {
			return nil, err
		}
		if int64(off) <= prevDef || int64(off) >= size {
			return nil, corrupt("index def offset %d out of order or range", off)
		}
		prevDef = int64(off)
		ix.DefOffsets = append(ix.DefOffsets, int64(off))
	}
	nthreads, err := c.uvarint("index thread count")
	if err != nil {
		return nil, err
	}
	prevTid := int64(0)
	for i := uint64(0); i < nthreads; i++ {
		tid, err := c.varint("index thread id")
		if err != nil {
			return nil, err
		}
		if i > 0 && tid <= prevTid {
			return nil, corrupt("index thread %d out of order", tid)
		}
		prevTid = tid
		nchunks, err := c.uvarint("index chunk count")
		if err != nil {
			return nil, err
		}
		tc := ThreadChunks{Thread: int(tid)}
		prevOff := int64(-1)
		for j := uint64(0); j < nchunks; j++ {
			var cr ChunkRef
			off, err := c.uvarint("index chunk offset")
			if err != nil {
				return nil, err
			}
			cr.Offset = int64(off)
			if cr.Events, err = c.uvarint("index chunk events"); err != nil {
				return nil, err
			}
			if cr.BaseTime, err = c.varint("index chunk base time"); err != nil {
				return nil, err
			}
			if cr.MinTime, err = c.varint("index chunk min time"); err != nil {
				return nil, err
			}
			if cr.MaxTime, err = c.varint("index chunk max time"); err != nil {
				return nil, err
			}
			if cr.Offset <= prevOff || cr.Offset >= size {
				return nil, corrupt("index chunk offset %d out of order or range", cr.Offset)
			}
			if cr.MinTime > cr.MaxTime {
				return nil, corrupt("index chunk at %d has inverted time bounds", cr.Offset)
			}
			prevOff = cr.Offset
			tc.Chunks = append(tc.Chunks, cr)
		}
		ix.Threads = append(ix.Threads, tc)
	}
	if c.pos != len(c.payload) {
		return nil, corrupt("%d trailing bytes after index", len(c.payload)-c.pos)
	}
	return ix, nil
}

// ReadChunkAt reads the single framed chunk starting at byte offset off
// of rs, returning its kind and payload — the random-access primitive
// under the query planner. Offsets come from the footer index (or a
// prior sequential walk); an offset not at a chunk boundary yields a
// corruption error or garbage, never a panic. The read position of rs
// is unspecified afterwards.
func ReadChunkAt(rs io.ReadSeeker, off int64) (byte, []byte, error) {
	if _, err := rs.Seek(off, io.SeekStart); err != nil {
		return 0, nil, fmt.Errorf("otf2: seeking chunk at %d: %w", off, err)
	}
	kind, payload, err := readChunkInto(bufio.NewReader(rs), nil)
	if err == io.EOF {
		err = cutOrIOErr("reading chunk", io.ErrUnexpectedEOF)
	}
	return kind, payload, err
}

// inflatePool recycles flate decompressor state across chunks.
var inflatePool sync.Pool

// inflateChunk decodes a 'C' chunk payload (method byte, uvarint
// rawLen, DEFLATE stream) into the raw 'E' payload it wraps, reusing
// dst's capacity. The declared rawLen is bounded by maxChunkLen before
// any allocation, and the stream must decode to exactly rawLen bytes.
func inflateChunk(dst, payload []byte) ([]byte, error) {
	if len(payload) < 2 {
		return dst, corrupt("compressed chunk of %d bytes", len(payload))
	}
	if payload[0] != compMethodFlate {
		return dst, corrupt("unknown compression method %d", payload[0])
	}
	c := cursor{payload: payload, pos: 1}
	rawLen, err := c.uvarint("compressed raw length")
	if err != nil {
		return dst, err
	}
	if rawLen > maxChunkLen {
		return dst, corrupt("compressed chunk declares %d raw bytes, exceeds limit", rawLen)
	}
	if uint64(cap(dst)) < rawLen {
		dst = make([]byte, rawLen)
	}
	dst = dst[:rawLen]
	src := bytes.NewReader(payload[c.pos:])
	var fr io.ReadCloser
	if v := inflatePool.Get(); v != nil {
		fr = v.(io.ReadCloser)
		if err := fr.(flate.Resetter).Reset(src, nil); err != nil {
			return dst, corrupt("resetting decompressor: %v", err)
		}
	} else {
		fr = flate.NewReader(src)
	}
	defer inflatePool.Put(fr)
	if _, err := io.ReadFull(fr, dst); err != nil {
		return dst, corrupt("compressed chunk: %v", err)
	}
	// The stream must end exactly at rawLen: trailing uncompressed data
	// would silently vanish otherwise.
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return dst, corrupt("compressed chunk longer than declared %d bytes", rawLen)
	}
	return dst, nil
}

// selectChunks plans a query over an index: it returns, in ascending
// offset order, every event chunk whose thread passes the query and
// whose time bounds overlap the window, tagged with its per-thread
// sequence number (position among that thread's selected chunks).
// total is the archive's total event-chunk count, for QueryStats.
func (ix *Index) selectChunks(match func(tid int) bool, overlaps func(min, max int64) bool) (sel []plannedChunk, total int) {
	for ti := range ix.Threads {
		tc := &ix.Threads[ti]
		total += len(tc.Chunks)
		if !match(tc.Thread) {
			continue
		}
		seq := 0
		for _, cr := range tc.Chunks {
			if !overlaps(cr.MinTime, cr.MaxTime) {
				continue
			}
			sel = append(sel, plannedChunk{tid: tc.Thread, seq: seq, ref: cr})
			seq++
		}
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].ref.Offset < sel[j].ref.Offset })
	return sel, total
}

// plannedChunk is one selected chunk of a query plan.
type plannedChunk struct {
	tid int
	seq int
	ref ChunkRef
}
