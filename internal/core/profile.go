package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/region"
)

// ThreadProfile is one thread's (location's) profile: the implicit task's
// call tree, the table of active explicit task instances, and the
// per-construct aggregate task trees of completed instances.
//
// All methods must be called from the owning thread; the structure is
// intentionally lock-free ("every thread operates on a separate section
// of preallocated memory and constructs a separate call tree. This avoids
// overhead-prone locking", Section IV-A).
type ThreadProfile struct {
	// ThreadID is the OpenMP thread number this profile belongs to.
	ThreadID int

	clk clock.Clock

	root *Node // implicit task's call tree root
	cur  *Node // implicit task's current position

	curTask *TaskInstance // nil -> the implicit task is current

	// Aggregate task trees of completed instances, keyed by task region,
	// "presented above the main call tree" (Section IV-B4).
	taskRoots map[*region.Region]*Node
	taskOrder []*region.Region // deterministic report order

	// Task-instance accounting for the memory evaluation (Section V-B,
	// Table II): current and maximum number of concurrently active
	// task-instance trees, the maximum also per parallel region.
	active          int
	maxActive       int
	parallelStack   []*region.Region
	maxPerParallel  map[*region.Region]int
	instancesBegun  int64
	instancesEnded  int64
	nodePool        *Node
	nodeArena       []Node // chunked backing store for fresh nodes
	nodesAllocated  int64
	instPool        []*TaskInstance
	instArena       []TaskInstance // chunked backing store for fresh instances
	instAllocated   int64
	switches        int64 // number of TaskSwitch transitions (fragments)
	finished        bool
	poolingDisabled bool
	rootRegionLabel string
}

// NewThreadProfile creates the profile for thread id, reading time from
// clk. The implicit task's root node is opened immediately.
func NewThreadProfile(id int, clk clock.Clock) *ThreadProfile {
	p := &ThreadProfile{
		ThreadID:        id,
		clk:             clk,
		taskRoots:       make(map[*region.Region]*Node),
		maxPerParallel:  make(map[*region.Region]int),
		rootRegionLabel: fmt.Sprintf("THREAD %d", id),
	}
	p.root = p.allocNode()
	p.root.Kind = KindRegion
	p.root.openVisit(clk.Now())
	p.cur = p.root
	return p
}

// Root returns the implicit task's call tree root.
func (p *ThreadProfile) Root() *Node { return p.root }

// RootLabel returns the display label of the thread root node.
func (p *ThreadProfile) RootLabel() string { return p.rootRegionLabel }

// Current returns the node metrics are currently attributed to: the
// current position in the active task instance's tree, or in the
// implicit task's tree.
func (p *ThreadProfile) Current() *Node {
	if p.curTask != nil {
		return p.curTask.cur
	}
	return p.cur
}

// CurrentTask returns the active explicit task instance, or nil.
func (p *ThreadProfile) CurrentTask() *TaskInstance { return p.curTask }

// TaskRoots returns the aggregate task trees in first-completion order.
func (p *ThreadProfile) TaskRoots() []*Node {
	out := make([]*Node, 0, len(p.taskOrder))
	for _, r := range p.taskOrder {
		out = append(out, p.taskRoots[r])
	}
	return out
}

// TaskRoot returns the aggregate tree for one task construct, or nil.
func (p *ThreadProfile) TaskRoot(r *region.Region) *Node { return p.taskRoots[r] }

// MaxActiveInstances returns the maximum number of concurrently active
// task-instance trees observed on this thread (Table II).
func (p *ThreadProfile) MaxActiveInstances() int { return p.maxActive }

// ActiveInstances returns the current number of active instance trees.
func (p *ThreadProfile) ActiveInstances() int { return p.active }

// MaxActivePerParallel returns the per-parallel-region maxima of
// concurrently active instance trees.
func (p *ThreadProfile) MaxActivePerParallel() map[*region.Region]int {
	out := make(map[*region.Region]int, len(p.maxPerParallel))
	for k, v := range p.maxPerParallel {
		out[k] = v
	}
	return out
}

// Switches returns the number of task-switch transitions recorded.
func (p *ThreadProfile) Switches() int64 { return p.switches }

// NodesAllocated returns how many call-tree nodes this thread allocated
// (pool hits excluded); InstancesBegun/Ended count task instances. These
// feed the memory-requirements evaluation (Section V-B).
func (p *ThreadProfile) NodesAllocated() int64 { return p.nodesAllocated }

// InstancesBegun returns the number of task instances that started.
func (p *ThreadProfile) InstancesBegun() int64 { return p.instancesBegun }

// InstancesEnded returns the number of task instances that completed.
func (p *ThreadProfile) InstancesEnded() int64 { return p.instancesEnded }

// Enter records entering region r at the current time. The node is
// created in (or found in) the call tree of the current task — the
// instance tree for explicit tasks, the implicit tree otherwise.
func (p *ThreadProfile) Enter(r *region.Region) {
	p.EnterAt(r, p.clk.Now())
}

// EnterAt is Enter with an explicit timestamp. The fused
// profiling+tracing event path reads the clock once per event and hands
// the same instant to the profile and the trace record.
func (p *ThreadProfile) EnterAt(r *region.Region, now int64) {
	if p.finished {
		panic("core: Enter after Finish")
	}
	if p.curTask != nil {
		n := p.child(p.curTask.cur, KindRegion, r, "", 0, "")
		n.openVisit(now)
		p.curTask.cur = n
		return
	}
	n := p.child(p.cur, KindRegion, r, "", 0, "")
	n.openVisit(now)
	p.cur = n
	if r.Type == region.Parallel {
		p.parallelStack = append(p.parallelStack, r)
	}
}

// Exit records leaving region r. Open parameter nodes nested below r are
// closed implicitly. Exiting a region that is not the innermost open
// region is an instrumentation error and panics.
func (p *ThreadProfile) Exit(r *region.Region) {
	p.ExitAt(r, p.clk.Now())
}

// ExitAt is Exit with an explicit timestamp (see EnterAt).
func (p *ThreadProfile) ExitAt(r *region.Region, now int64) {
	if p.finished {
		panic("core: Exit after Finish")
	}
	if p.curTask != nil {
		p.curTask.cur = exitOn(p.curTask.cur, r, now)
		return
	}
	p.cur = exitOn(p.cur, r, now)
	if r.Type == region.Parallel && len(p.parallelStack) > 0 {
		p.parallelStack = p.parallelStack[:len(p.parallelStack)-1]
	}
}

// exitOn closes open parameter nodes above cur, then the node for r, and
// returns the new current node.
func exitOn(cur *Node, r *region.Region, now int64) *Node {
	for cur != nil && cur.Kind == KindParameter {
		cur.closeVisit(now)
		cur = cur.Parent
	}
	if cur == nil || cur.Kind != KindRegion || cur.Region != r {
		got := "<nil>"
		if cur != nil {
			got = cur.Name()
		}
		panic(fmt.Sprintf("core: Exit(%s) does not match current node %s", r, got))
	}
	cur.closeVisit(now)
	return cur.Parent
}

// ParameterInt records parameter instrumentation: subsequent children
// nest under a parameter node name=value until the enclosing region
// exits. The paper uses this to split nqueens task statistics by
// recursion depth (Table IV).
func (p *ThreadProfile) ParameterInt(name string, value int64) {
	if p.finished {
		panic("core: ParameterInt after Finish")
	}
	now := p.clk.Now()
	if p.curTask != nil {
		n := p.child(p.curTask.cur, KindParameter, nil, name, value, "")
		n.openVisit(now)
		p.curTask.cur = n
		return
	}
	n := p.child(p.cur, KindParameter, nil, name, value, "")
	n.openVisit(now)
	p.cur = n
}

// ParameterString records string-valued parameter instrumentation
// (Score-P's ParameterString counterpart to ParameterInt): subsequent
// children nest under a parameter node name=value until the enclosing
// region exits.
func (p *ThreadProfile) ParameterString(name, value string) {
	if p.finished {
		panic("core: ParameterString after Finish")
	}
	now := p.clk.Now()
	if p.curTask != nil {
		n := p.child(p.curTask.cur, KindParameter, nil, name, 0, value)
		n.openVisit(now)
		p.curTask.cur = n
		return
	}
	n := p.child(p.cur, KindParameter, nil, name, 0, value)
	n.openVisit(now)
	p.cur = n
}

// CurrentParallel returns the innermost parallel region the implicit
// task is executing, or nil outside parallel regions.
func (p *ThreadProfile) CurrentParallel() *region.Region {
	if len(p.parallelStack) == 0 {
		return nil
	}
	return p.parallelStack[len(p.parallelStack)-1]
}

// Finish closes the thread root and freezes the profile. It panics if
// regions or task instances are still open — unbalanced instrumentation.
func (p *ThreadProfile) Finish() {
	if p.finished {
		return
	}
	if p.curTask != nil {
		panic("core: Finish with active explicit task instance")
	}
	if p.cur != p.root {
		panic(fmt.Sprintf("core: Finish with open region %s", p.cur.Name()))
	}
	if p.active != 0 {
		panic(fmt.Sprintf("core: Finish with %d active task instances", p.active))
	}
	p.root.closeVisit(p.clk.Now())
	p.finished = true
}

// Finished reports whether Finish was called.
func (p *ThreadProfile) Finished() bool { return p.finished }
