package core

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/region"
)

func TestParameterSplitsSubtree(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk

	p.Enter(f.par)
	p.Enter(f.barR)
	// Three instances at depth 1, two at depth 2, with different runtimes.
	for i, d := range []int64{1, 1, 1, 2, 2} {
		p.TaskBegin(f.task)
		p.ParameterInt("depth", d)
		clk.Advance(int64(10 * (i + 1)))
		p.TaskEnd()
	}
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	tree := p.TaskRoot(f.task)
	d1 := tree.FindParam("depth", 1)
	d2 := tree.FindParam("depth", 2)
	if d1 == nil || d2 == nil {
		t.Fatal("missing parameter nodes")
	}
	if d1.Dur.Count != 3 || d1.Dur.Sum != 10+20+30 {
		t.Errorf("depth=1: count=%d sum=%d, want 3/60", d1.Dur.Count, d1.Dur.Sum)
	}
	if d2.Dur.Count != 2 || d2.Dur.Sum != 40+50 {
		t.Errorf("depth=2: count=%d sum=%d, want 2/90", d2.Dur.Count, d2.Dur.Sum)
	}
	if d1.Dur.Min != 10 || d1.Dur.Max != 30 {
		t.Errorf("depth=1 min/max = %d/%d, want 10/30", d1.Dur.Min, d1.Dur.Max)
	}
}

func TestParameterNestsChildren(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.par)
	p.Enter(f.barR)
	p.TaskBegin(f.task)
	p.ParameterInt("depth", 7)
	p.Enter(f.foo) // must land under the parameter node
	clk.Advance(4)
	p.Exit(f.foo)
	p.TaskEnd()
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	d7 := p.TaskRoot(f.task).FindParam("depth", 7)
	if d7 == nil {
		t.Fatal("no parameter node")
	}
	fooN := d7.FindChild(f.foo)
	if fooN == nil || fooN.Dur.Sum != 4 {
		t.Fatalf("foo not nested under parameter node: %+v", fooN)
	}
}

func TestParameterStringSplitsSubtree(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.barR)
	for i, phase := range []string{"init", "solve", "init", "solve", "solve"} {
		p.TaskBegin(f.task)
		p.ParameterString("phase", phase)
		clk.Advance(int64(10 * (i + 1)))
		p.TaskEnd()
	}
	p.Exit(f.barR)
	p.Finish()

	tree := p.TaskRoot(f.task)
	var initN, solveN *Node
	for _, c := range tree.Children {
		if c.Kind == KindParameter && c.ParamStr == "init" {
			initN = c
		}
		if c.Kind == KindParameter && c.ParamStr == "solve" {
			solveN = c
		}
	}
	if initN == nil || solveN == nil {
		t.Fatal("missing string parameter nodes")
	}
	if initN.Dur.Count != 2 || initN.Dur.Sum != 10+30 {
		t.Errorf("init: %+v", initN.Dur)
	}
	if solveN.Dur.Count != 3 || solveN.Dur.Sum != 20+40+50 {
		t.Errorf("solve: %+v", solveN.Dur)
	}
	if initN.Name() != "phase=init" {
		t.Errorf("name = %q", initN.Name())
	}
}

func TestMixedParameterTypesStayDistinct(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.barR)
	p.TaskBegin(f.task)
	p.ParameterInt("x", 0)
	clk.Advance(5)
	p.TaskEnd()
	p.TaskBegin(f.task)
	p.ParameterString("x", "0")
	clk.Advance(7)
	p.TaskEnd()
	p.Exit(f.barR)
	p.Finish()
	tree := p.TaskRoot(f.task)
	if len(tree.Children) != 2 {
		t.Fatalf("children = %d, want 2 (int and string params distinct)", len(tree.Children))
	}
}

func TestMaxActiveInstancesCounting(t *testing.T) {
	f := newFixture(t)
	p := f.p
	p.Enter(f.par)
	p.Enter(f.barR)
	// Nest three suspended instances (recursion depth 3), like the
	// recursive BOTS codes; max concurrent instance trees = 3 (Table II).
	a := p.TaskBegin(f.task)
	b := p.TaskBegin(f.task)
	c := p.TaskBegin(f.task)
	_ = a
	if p.ActiveInstances() != 3 {
		t.Errorf("active = %d, want 3", p.ActiveInstances())
	}
	p.TaskEnd() // c
	_ = c
	p.TaskSwitchTo(b)
	p.TaskEnd() // b
	p.TaskSwitchTo(a)
	p.TaskEnd() // a
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	if p.MaxActiveInstances() != 3 {
		t.Errorf("max active = %d, want 3", p.MaxActiveInstances())
	}
	perPar := p.MaxActivePerParallel()
	if perPar[f.par] != 3 {
		t.Errorf("per-parallel max = %d, want 3", perPar[f.par])
	}
	if p.InstancesBegun() != 3 || p.InstancesEnded() != 3 {
		t.Errorf("instances begun/ended = %d/%d", p.InstancesBegun(), p.InstancesEnded())
	}
}

func TestInstanceRecyclingBoundsAllocation(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.par)
	p.Enter(f.barR)
	for i := 0; i < 10000; i++ {
		p.TaskBegin(f.task)
		p.Enter(f.foo)
		clk.Advance(1)
		p.Exit(f.foo)
		p.TaskEnd()
	}
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	if p.InstancesAllocated() != 1 {
		t.Errorf("instances allocated = %d, want 1 (recycled)", p.InstancesAllocated())
	}
	// Nodes: thread root + par + barrier + stub + merged tree(2) + one
	// working set for the live instance (2). Anything near the task count
	// means pooling is broken.
	if p.NodesAllocated() > 16 {
		t.Errorf("nodes allocated = %d, want bounded by tree size, not task count", p.NodesAllocated())
	}
}

func TestVisitsVersusSamples(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.foo)
	clk.Advance(5)
	p.Exit(f.foo)
	p.Enter(f.foo)
	clk.Advance(7)
	p.Exit(f.foo)
	p.Finish()
	n := p.Root().FindChild(f.foo)
	if n.Visits != 2 || n.Dur.Count != 2 || n.Dur.Sum != 12 {
		t.Errorf("visits=%d samples=%d sum=%d, want 2/2/12", n.Visits, n.Dur.Count, n.Dur.Sum)
	}
}

func TestRecursionCreatesChain(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.foo)
	clk.Advance(1)
	p.Enter(f.foo) // recursive call: child node, not re-entry
	clk.Advance(1)
	p.Exit(f.foo)
	clk.Advance(1)
	p.Exit(f.foo)
	p.Finish()
	outer := p.Root().FindChild(f.foo)
	inner := outer.FindChild(f.foo)
	if inner == nil {
		t.Fatal("recursion did not create a child node")
	}
	if outer.Dur.Sum != 3 || inner.Dur.Sum != 1 {
		t.Errorf("outer/inner = %d/%d, want 3/1", outer.Dur.Sum, inner.Dur.Sum)
	}
}

func TestMisuseDetection(t *testing.T) {
	cases := []struct {
		name string
		fn   func(f *fixture)
		want string
	}{
		{"exit-without-enter", func(f *fixture) {
			f.p.Exit(f.foo)
		}, "does not match"},
		{"mismatched-exit", func(f *fixture) {
			f.p.Enter(f.foo)
			f.p.Exit(f.bar)
		}, "does not match"},
		{"task-end-without-task", func(f *fixture) {
			f.p.TaskEnd()
		}, "without active task"},
		{"task-end-with-open-region", func(f *fixture) {
			f.p.Enter(f.barR)
			f.p.TaskBegin(f.task)
			f.p.Enter(f.foo)
			f.p.TaskEnd()
		}, "open region"},
		{"finish-with-open-region", func(f *fixture) {
			f.p.Enter(f.foo)
			f.p.Finish()
		}, "open region"},
		{"finish-with-active-task", func(f *fixture) {
			f.p.Enter(f.barR)
			f.p.TaskBegin(f.task)
			f.p.Finish()
		}, "active explicit task"},
		{"enter-after-finish", func(f *fixture) {
			f.p.Finish()
			f.p.Enter(f.foo)
		}, "after Finish"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("expected panic containing %q", tc.want)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, tc.want) {
					t.Fatalf("panic = %v, want substring %q", r, tc.want)
				}
			}()
			tc.fn(f)
		})
	}
}

func TestDoubleFinishIsIdempotent(t *testing.T) {
	f := newFixture(t)
	f.p.Finish()
	f.p.Finish() // must not panic
	if !f.p.Finished() {
		t.Error("profile not finished")
	}
}

func TestRootTimeSpansLifetime(t *testing.T) {
	clk := clock.NewManual(100)
	p := NewThreadProfile(3, clk)
	clk.Advance(900)
	p.Finish()
	if p.Root().Dur.Sum != 900 {
		t.Errorf("root time = %d, want 900", p.Root().Dur.Sum)
	}
	if p.RootLabel() != "THREAD 3" {
		t.Errorf("root label = %q", p.RootLabel())
	}
}

func TestTaskRootsOrderIsFirstCompletion(t *testing.T) {
	f := newFixture(t)
	p := f.p
	tB := f.reg.Register("taskB", "f.go", 30, region.Task)
	p.Enter(f.barR)
	p.TaskBegin(tB)
	p.TaskEnd()
	p.TaskBegin(f.task)
	p.TaskEnd()
	p.TaskBegin(tB)
	p.TaskEnd()
	p.Exit(f.barR)
	p.Finish()
	roots := p.TaskRoots()
	if len(roots) != 2 || roots[0].Region != tB || roots[1].Region != f.task {
		t.Errorf("task root order wrong: %v", roots)
	}
}

// TestTimeConservation: on a single thread, the root's inclusive time
// must equal task-tree time plus implicit-tree time excluding stubs...
// more precisely: every instant is attributed to exactly one running
// node chain, and stub time equals merged task-tree root time.
func TestTimeConservation(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.par)
	p.Enter(f.barR)
	for i := 0; i < 3; i++ {
		outer := p.TaskBegin(f.task)
		clk.Advance(10)
		p.Enter(f.tw)
		p.TaskBegin(f.task)
		clk.Advance(5)
		p.TaskEnd()
		p.TaskSwitchTo(outer) // runtime resumes the suspended task
		clk.Advance(2)
		p.Exit(f.tw)
		p.TaskEnd()
		clk.Advance(1)
	}
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	barN := p.Root().FindChild(f.par).FindChild(f.barR)
	stub := barN.FindStub(f.task)
	tree := p.TaskRoot(f.task)
	if stub.Dur.Sum != tree.Dur.Sum {
		t.Errorf("stub total %d != task tree total %d", stub.Dur.Sum, tree.Dur.Sum)
	}
	// Wall time inside barrier = task time + waiting.
	if barN.Dur.Sum != stub.Dur.Sum+barN.ExclusiveSum() {
		t.Error("barrier time does not decompose into stub + exclusive")
	}
}
