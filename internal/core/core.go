package core
