// Package core implements the paper's primary contribution: a call-path
// profiling engine that remains correct in the presence of OpenMP 3.0
// tied tasks (Lorenz et al., ICPP 2012, Section IV).
//
// Each thread owns a ThreadProfile with the implicit task's call tree.
// Every active explicit task instance owns a private call tree rooted at
// its task region; trees of completed instances are merged into
// per-construct aggregate trees presented beside the main tree. Stub
// nodes under the implicit task's scheduling points record the share of
// time spent executing tasks there, separating useful task work from
// waiting/management time. Suspension intervals are subtracted from all
// open regions of a suspended instance (Fig. 12 pseudocode), so task
// trees contain pure execution time.
package core

import (
	"fmt"

	"repro/internal/region"
	"repro/internal/stats"
)

// NodeKind distinguishes the three node flavours of the task-aware
// profile.
type NodeKind uint8

const (
	// KindRegion is an ordinary call-tree node for a source region.
	KindRegion NodeKind = iota
	// KindStub is a stub node: a task region appearing as child of a
	// scheduling point in the implicit task's tree, carrying the task
	// execution share of that scheduling point (Section IV-B4).
	KindStub
	// KindParameter is a synthetic node created by parameter
	// instrumentation; it splits its parent's subtree by parameter value
	// (used for the per-recursion-depth analysis of Table IV).
	KindParameter
)

// String returns a short kind label.
func (k NodeKind) String() string {
	switch k {
	case KindRegion:
		return "region"
	case KindStub:
		return "stub"
	case KindParameter:
		return "parameter"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a call-tree node. Nodes store the metrics the paper lists in
// Section IV-A: the number of visits and, for the inclusive time of each
// completed visit, sum/min/max/count for statistical analysis.
//
// Nodes are owned by exactly one thread and must not be shared while a
// measurement is running; aggregation across threads happens afterwards
// in internal/cube.
type Node struct {
	Kind   NodeKind
	Region *region.Region // nil for KindParameter nodes

	// ParamName/ParamValue identify a KindParameter node. String-valued
	// parameters (Score-P's ParameterString) store the value in
	// ParamStr with ParamValue == 0.
	ParamName  string
	ParamValue int64
	ParamStr   string

	Parent   *Node
	Children []*Node

	// Visits counts Enter events (task fragments for stub nodes).
	Visits int64
	// Dur aggregates the inclusive duration of completed visits, with
	// suspension intervals already subtracted.
	Dur stats.Dur

	// Open-visit bookkeeping. A node is open between Enter and Exit;
	// it is running unless its owning task instance is suspended.
	open    bool
	running bool
	start   int64 // timestamp of last resume, valid while running
	accum   int64 // time accumulated in the current visit across suspensions

	free *Node // node-pool linkage
}

// Name renders the node's display name for reports.
func (n *Node) Name() string {
	switch n.Kind {
	case KindParameter:
		if n.ParamStr != "" {
			return fmt.Sprintf("%s=%s", n.ParamName, n.ParamStr)
		}
		return fmt.Sprintf("%s=%d", n.ParamName, n.ParamValue)
	case KindStub:
		return "task " + n.Region.Name
	default:
		if n.Region == nil {
			return "<root>"
		}
		return n.Region.Name
	}
}

// Open reports whether the node currently has an open visit.
func (n *Node) Open() bool { return n.open }

// Running reports whether the node's open visit is currently accumulating
// time (false while the owning task instance is suspended).
func (n *Node) Running() bool { return n.running }

// matches reports whether the node corresponds to the given key.
func (n *Node) matches(kind NodeKind, r *region.Region, pname string, pval int64, pstr string) bool {
	if n.Kind != kind {
		return false
	}
	if kind == KindParameter {
		return n.ParamName == pname && n.ParamValue == pval && n.ParamStr == pstr
	}
	return n.Region == r
}

// child returns the child with the given key, creating it (from the pool)
// if needed.
func (p *ThreadProfile) child(n *Node, kind NodeKind, r *region.Region, pname string, pval int64, pstr string) *Node {
	for _, c := range n.Children {
		if c.matches(kind, r, pname, pval, pstr) {
			return c
		}
	}
	c := p.allocNode()
	c.Kind = kind
	c.Region = r
	c.ParamName = pname
	c.ParamValue = pval
	c.ParamStr = pstr
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// nodeArenaChunk is the batch size of the per-thread node arena: fresh
// nodes are carved out of chunk allocations, so growing a call tree
// costs one heap allocation per chunk instead of one per node, and
// sibling nodes stay cache-adjacent.
const nodeArenaChunk = 128

// allocNode takes a node from the free list (released task-instance
// subtrees) or carves a fresh one out of the thread's node arena.
func (p *ThreadProfile) allocNode() *Node {
	if n := p.nodePool; n != nil {
		p.nodePool = n.free
		n.free = nil
		return n
	}
	if len(p.nodeArena) == 0 {
		p.nodeArena = make([]Node, nodeArenaChunk)
	}
	n := &p.nodeArena[0]
	p.nodeArena = p.nodeArena[1:]
	p.nodesAllocated++
	return n
}

// releaseSubtree resets and returns all nodes of the subtree rooted at n
// to the pool. Called when a completed task-instance tree has been merged
// (Section V-B: "released task-instance tree nodes are reused").
func (p *ThreadProfile) releaseSubtree(n *Node) {
	if p.poolingDisabled {
		return // ablation: leave nodes to the garbage collector
	}
	for _, c := range n.Children {
		p.releaseSubtree(c)
	}
	*n = Node{free: p.nodePool}
	p.nodePool = n
}

// SetNodePooling toggles the reuse of released instance-tree nodes. It
// exists for the Section V-B ablation benchmark; production measurements
// keep pooling enabled.
func (p *ThreadProfile) SetNodePooling(enabled bool) { p.poolingDisabled = !enabled }

// openVisit starts a visit of n at time now.
func (n *Node) openVisit(now int64) {
	if n.open {
		panic(fmt.Sprintf("core: double enter of open node %s", n.Name()))
	}
	n.Visits++
	n.open = true
	n.running = true
	n.start = now
	n.accum = 0
}

// closeVisit ends the visit of n at time now and records the inclusive
// duration sample.
func (n *Node) closeVisit(now int64) {
	if !n.open {
		panic(fmt.Sprintf("core: exit of non-open node %s", n.Name()))
	}
	d := n.accum
	if n.running {
		d += now - n.start
	}
	n.Dur.Add(d)
	n.open = false
	n.running = false
	n.accum = 0
}

// suspend stops time accumulation on an open node.
func (n *Node) suspend(now int64) {
	if n.open && n.running {
		n.accum += now - n.start
		n.running = false
	}
}

// resume restarts time accumulation on an open, suspended node.
func (n *Node) resume(now int64) {
	if n.open && !n.running {
		n.start = now
		n.running = true
	}
}

// mergeInto folds this node's metrics and subtree into dst, which must
// have the same key. Used when a completed task-instance tree is merged
// into the thread's aggregate tree for the construct.
func (p *ThreadProfile) mergeInto(dst, src *Node) {
	dst.Visits += src.Visits
	dst.Dur.Merge(src.Dur)
	for _, sc := range src.Children {
		dc := p.child(dst, sc.Kind, sc.Region, sc.ParamName, sc.ParamValue, sc.ParamStr)
		p.mergeInto(dc, sc)
	}
}

// Walk visits the subtree rooted at n in depth-first pre-order.
func (n *Node) Walk(fn func(n *Node, depth int)) {
	n.walk(fn, 0)
}

func (n *Node) walk(fn func(*Node, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// FindChild returns the direct child for the region (KindRegion), or nil.
func (n *Node) FindChild(r *region.Region) *Node {
	for _, c := range n.Children {
		if c.Kind == KindRegion && c.Region == r {
			return c
		}
	}
	return nil
}

// FindStub returns the direct stub child for the task region, or nil.
func (n *Node) FindStub(r *region.Region) *Node {
	for _, c := range n.Children {
		if c.Kind == KindStub && c.Region == r {
			return c
		}
	}
	return nil
}

// FindParam returns the direct parameter child name=value, or nil.
func (n *Node) FindParam(name string, value int64) *Node {
	for _, c := range n.Children {
		if c.Kind == KindParameter && c.ParamName == name && c.ParamValue == value {
			return c
		}
	}
	return nil
}

// ExclusiveSum returns inclusive-sum minus the inclusive sums of all
// children: the time spent exclusively inside this node (Fig. 3 of the
// paper). For scheduling-point nodes with stub children this is the
// waiting/management share, since task execution time lives in the stubs.
func (n *Node) ExclusiveSum() int64 {
	excl := n.Dur.Sum
	for _, c := range n.Children {
		excl -= c.Dur.Sum
	}
	return excl
}
