package core

import (
	"fmt"

	"repro/internal/region"
)

// TaskInstance is the profiling state of one active explicit task
// instance: a private call tree rooted at the task region and the
// instance's current position in it. Instances are recycled after their
// tree is merged ("the task instance's data structures are kept for later
// reuse", Section IV-C).
type TaskInstance struct {
	Region *region.Region
	root   *Node
	cur    *Node
}

// Root returns the instance tree root (the task region node).
func (ti *TaskInstance) Root() *Node { return ti.root }

// Current returns the instance's current call-tree position.
func (ti *TaskInstance) Current() *Node { return ti.cur }

// TaskBegin records that a task instance of construct r starts executing
// on this thread: it allocates the instance and its tree, performs the
// implicit TaskSwitch to the instance (suspending whatever ran before and
// entering the stub node under the implicit task's scheduling point), and
// enters the task region in the instance tree — the TaskBegin action of
// the paper's Fig. 12.
func (p *ThreadProfile) TaskBegin(r *region.Region) *TaskInstance {
	return p.TaskBeginAt(r, p.clk.Now())
}

// TaskBeginAt is TaskBegin with an explicit timestamp (see EnterAt).
func (p *ThreadProfile) TaskBeginAt(r *region.Region, now int64) *TaskInstance {
	if p.finished {
		panic("core: TaskBegin after Finish")
	}
	ti := p.allocInstance(r)
	p.instancesBegun++
	p.active++
	if p.active > p.maxActive {
		p.maxActive = p.active
	}
	if pr := p.CurrentParallel(); pr != nil && p.active > p.maxPerParallel[pr] {
		p.maxPerParallel[pr] = p.active
	}

	// One timestamp for the whole transition: the stub enter in the
	// implicit tree and the task-root enter in the instance tree see the
	// same instant, so stub time and task-tree time stay consistent.
	p.switchAt(ti, now)
	ti.root.openVisit(now)
	return ti
}

// TaskEnd records completion of the current task instance: exit of the
// task region in the instance tree, TaskSwitch back to the implicit task,
// and merging of the instance tree into the thread's aggregate tree for
// the construct — the TaskEnd action of Fig. 12.
func (p *ThreadProfile) TaskEnd() {
	p.TaskEndAt(p.clk.Now())
}

// TaskEndAt is TaskEnd with an explicit timestamp (see EnterAt).
func (p *ThreadProfile) TaskEndAt(now int64) {
	ti := p.curTask
	if ti == nil {
		panic("core: TaskEnd without active task instance")
	}
	// Close open parameter nodes, then the task root itself.
	cur := ti.cur
	for cur != nil && cur.Kind == KindParameter {
		cur.closeVisit(now)
		cur = cur.Parent
	}
	if cur != ti.root {
		got := "<nil>"
		if cur != nil {
			got = cur.Name()
		}
		panic(fmt.Sprintf("core: TaskEnd with open region %s in task %s", got, ti.Region))
	}
	ti.root.closeVisit(now)
	ti.cur = ti.root

	p.switchAt(nil, now)

	p.mergeInstance(ti)
	p.active--
	p.instancesEnded++
	p.releaseInstance(ti)
}

// TaskSwitchTo implements the TaskSwitch action of Fig. 12:
//
//	if the current task is an explicit task:
//	    stop time measurement on all its open regions, and the implicit
//	    task exits the stub node of its task region;
//	set the current task;
//	if the new task is an explicit task:
//	    resume time measurement on all its open regions, and the implicit
//	    task enters the stub node of its task region under the implicit
//	    task's current scheduling point.
//
// ti == nil switches to the implicit task. Switching to the task that is
// already current is a no-op.
func (p *ThreadProfile) TaskSwitchTo(ti *TaskInstance) {
	if ti == p.curTask {
		return
	}
	p.switchAt(ti, p.clk.Now())
}

// TaskSwitchToAt is TaskSwitchTo with an explicit timestamp (see
// EnterAt). Switching to the already-current task is a no-op.
func (p *ThreadProfile) TaskSwitchToAt(ti *TaskInstance, now int64) {
	p.switchAt(ti, now)
}

// switchAt is TaskSwitchTo with an explicit timestamp, shared by the
// task begin/end transitions so that stub and instance-tree times are
// taken at the same instant.
func (p *ThreadProfile) switchAt(ti *TaskInstance, now int64) {
	if ti == p.curTask {
		return
	}
	p.switches++
	if old := p.curTask; old != nil {
		for n := old.cur; n != nil; n = n.Parent {
			n.suspend(now)
		}
		p.exitStub(old.Region, now)
	}
	p.curTask = ti
	if ti != nil {
		for n := ti.cur; n != nil; n = n.Parent {
			n.resume(now)
		}
		p.enterStub(ti.Region, now)
	}
}

// enterStub makes the implicit task enter the stub node for task region r
// under its current position (the scheduling point where the task
// executes). Stub visits count executed task fragments.
func (p *ThreadProfile) enterStub(r *region.Region, now int64) {
	n := p.child(p.cur, KindStub, r, "", 0, "")
	n.openVisit(now)
	p.cur = n
}

// exitStub closes the stub node for r and moves the implicit task back to
// the scheduling point.
func (p *ThreadProfile) exitStub(r *region.Region, now int64) {
	if p.cur.Kind != KindStub || p.cur.Region != r {
		panic(fmt.Sprintf("core: implicit task at %s, expected stub of %s", p.cur.Name(), r))
	}
	p.cur.closeVisit(now)
	p.cur = p.cur.Parent
}

// mergeInstance folds a completed instance tree into the aggregate tree
// of its construct. "A new node is created for the first occurrence of
// this tasking construct. Later occurrences are merged with this node."
func (p *ThreadProfile) mergeInstance(ti *TaskInstance) {
	agg, ok := p.taskRoots[ti.Region]
	if !ok {
		agg = p.allocNode()
		agg.Kind = KindRegion
		agg.Region = ti.Region
		p.taskRoots[ti.Region] = agg
		p.taskOrder = append(p.taskOrder, ti.Region)
	}
	p.mergeInto(agg, ti.root)
	p.releaseSubtree(ti.root)
	ti.root = nil
	ti.cur = nil
}

// instArenaChunk is the batch size of the per-thread instance arena
// (see nodeArenaChunk).
const instArenaChunk = 32

// allocInstance takes an instance from the pool or carves one out of
// the thread's instance arena, and builds its root node.
func (p *ThreadProfile) allocInstance(r *region.Region) *TaskInstance {
	var ti *TaskInstance
	if n := len(p.instPool); n > 0 {
		ti = p.instPool[n-1]
		p.instPool = p.instPool[:n-1]
	} else {
		if len(p.instArena) == 0 {
			p.instArena = make([]TaskInstance, instArenaChunk)
		}
		ti = &p.instArena[0]
		p.instArena = p.instArena[1:]
		p.instAllocated++
	}
	ti.Region = r
	root := p.allocNode()
	root.Kind = KindRegion
	root.Region = r
	ti.root = root
	ti.cur = root
	return ti
}

// releaseInstance recycles a merged instance.
func (p *ThreadProfile) releaseInstance(ti *TaskInstance) {
	ti.Region = nil
	p.instPool = append(p.instPool, ti)
}

// InstancesAllocated returns how many TaskInstance structs were ever
// allocated (pool hits excluded) — with recycling this stays close to the
// maximum concurrency rather than the task count (Section V-B).
func (p *ThreadProfile) InstancesAllocated() int64 { return p.instAllocated }
