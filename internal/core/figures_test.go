package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/region"
)

// These tests replay the event streams of the paper's design figures with
// a manual clock and check the exact profile the algorithm must produce.

type fixture struct {
	clk  *clock.Manual
	p    *ThreadProfile
	reg  *region.Registry
	main *region.Region
	foo  *region.Region
	bar  *region.Region
	par  *region.Region
	barR *region.Region
	tw   *region.Region
	crt  *region.Region
	task *region.Region
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := region.NewRegistry()
	f := &fixture{
		clk:  clock.NewManual(0),
		reg:  reg,
		main: reg.Register("main", "f.go", 1, region.UserFunction),
		foo:  reg.Register("foo", "f.go", 2, region.UserFunction),
		bar:  reg.Register("bar", "f.go", 3, region.UserFunction),
		par:  reg.Register("parallel", "f.go", 4, region.Parallel),
		barR: reg.Register("barrier", "f.go", 5, region.ImplicitBarrier),
		tw:   reg.Register("taskwait", "f.go", 6, region.Taskwait),
		crt:  reg.Register("task0 (create)", "f.go", 7, region.TaskCreate),
		task: reg.Register("task0", "f.go", 7, region.Task),
	}
	f.p = NewThreadProfile(0, f.clk)
	return f
}

// TestFigure1EventStreamToProfile: the basic nested event stream of
// Fig. 1 — foo() and bar() entered and exited inside main without overlap
// — must produce the classic call tree with correct inclusive times.
func TestFigure1EventStreamToProfile(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk

	p.Enter(f.main) // t=0
	clk.Advance(10)
	p.Enter(f.foo) // t=10
	clk.Advance(20)
	p.Exit(f.foo) // t=30
	clk.Advance(5)
	p.Enter(f.bar) // t=35
	clk.Advance(40)
	p.Exit(f.bar) // t=75
	clk.Advance(25)
	p.Exit(f.main) // t=100
	p.Finish()

	mainN := p.Root().FindChild(f.main)
	if mainN == nil {
		t.Fatal("no node for main")
	}
	if mainN.Dur.Sum != 100 || mainN.Visits != 1 {
		t.Errorf("main: incl=%d visits=%d, want 100/1", mainN.Dur.Sum, mainN.Visits)
	}
	fooN := mainN.FindChild(f.foo)
	barN := mainN.FindChild(f.bar)
	if fooN == nil || barN == nil {
		t.Fatal("missing foo/bar children")
	}
	if fooN.Dur.Sum != 20 {
		t.Errorf("foo incl = %d, want 20", fooN.Dur.Sum)
	}
	if barN.Dur.Sum != 40 {
		t.Errorf("bar incl = %d, want 40", barN.Dur.Sum)
	}
	if excl := mainN.ExclusiveSum(); excl != 40 {
		t.Errorf("main excl = %d, want 40 (100-20-40)", excl)
	}
}

// TestFigure2InterleavedTaskFragments: Fig. 2's stream — two task
// instances of the same construct both enter foo(), are suspended, and
// later resumed — is exactly what breaks classic profiling. With task
// instance identification the profile must attribute each foo() visit to
// its instance and merge both into one task tree.
func TestFigure2InterleavedTaskFragments(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk

	p.Enter(f.par)
	p.Enter(f.barR)

	// task1 starts, enters foo
	t1 := p.TaskBegin(f.task) // t=0
	clk.Advance(10)
	p.Enter(f.foo) // t=10
	clk.Advance(5)
	// task1 suspended (taskwait inside foo omitted for stream parity),
	// task2 starts and enters foo as well.
	t2 := p.TaskBegin(f.task) // t=15: switch suspends t1
	clk.Advance(3)
	p.Enter(f.foo) // t=18
	clk.Advance(7)
	p.Exit(f.foo) // t=25: this exit must close t2's foo, not t1's
	clk.Advance(5)
	p.TaskEnd() // t=30: t2 done (ran 15)
	p.TaskSwitchTo(t1)
	clk.Advance(10)
	p.Exit(f.foo) // t=40
	clk.Advance(2)
	p.TaskEnd() // t=42
	_ = t2

	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	tree := p.TaskRoot(f.task)
	if tree == nil {
		t.Fatal("no merged task tree")
	}
	if tree.Dur.Count != 2 {
		t.Fatalf("task instances merged = %d, want 2", tree.Dur.Count)
	}
	// t1 executed 0..15 and 30..42 -> 27; t2 executed 15..30 -> 15.
	if tree.Dur.Sum != 27+15 {
		t.Errorf("task tree sum = %d, want 42", tree.Dur.Sum)
	}
	if tree.Dur.Min != 15 || tree.Dur.Max != 27 {
		t.Errorf("task tree min/max = %d/%d, want 15/27", tree.Dur.Min, tree.Dur.Max)
	}
	fooN := tree.FindChild(f.foo)
	if fooN == nil {
		t.Fatal("no foo under task tree")
	}
	// t1's foo: open 10..15 suspended 15..30 resumed 30..40 -> 15.
	// t2's foo: 18..25 -> 7.
	if fooN.Dur.Sum != 22 || fooN.Dur.Count != 2 {
		t.Errorf("foo in task tree: sum=%d count=%d, want 22/2", fooN.Dur.Sum, fooN.Dur.Count)
	}
	if fooN.Dur.Min != 7 || fooN.Dur.Max != 15 {
		t.Errorf("foo min/max = %d/%d, want 7/15", fooN.Dur.Min, fooN.Dur.Max)
	}
}

// TestFigure3ExecutingNodeAttribution: Fig. 3 — the task's execution time
// must be attributed under the scheduling point where it executes (the
// barrier), via a stub node, not to the creating node. The barrier's
// *exclusive* time is then pure waiting, and no negative exclusive values
// appear anywhere.
func TestFigure3ExecutingNodeAttribution(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk

	p.Enter(f.par) // t=0, parallel region
	clk.Advance(1)
	p.Enter(f.crt) // create task, t=1
	clk.Advance(1)
	p.Exit(f.crt)       // t=2
	p.Enter(f.barR)     // t=2 barrier
	clk.Advance(2)      // waiting 2
	p.TaskBegin(f.task) // t=4
	clk.Advance(5)      // task works 5
	p.TaskEnd()         // t=9
	clk.Advance(1)      // waiting 1
	p.Exit(f.barR)      // t=10
	p.Exit(f.par)       // t=10
	p.Finish()

	parN := p.Root().FindChild(f.par)
	barN := parN.FindChild(f.barR)
	crtN := parN.FindChild(f.crt)
	if barN == nil || crtN == nil {
		t.Fatal("missing barrier/create nodes")
	}
	if crtN.Dur.Sum != 1 || crtN.ExclusiveSum() != 1 {
		t.Errorf("create: incl=%d excl=%d, want 1/1 (never negative)", crtN.Dur.Sum, crtN.ExclusiveSum())
	}
	if barN.Dur.Sum != 8 {
		t.Errorf("barrier incl = %d, want 8", barN.Dur.Sum)
	}
	stub := barN.FindStub(f.task)
	if stub == nil {
		t.Fatal("no stub node under barrier")
	}
	if stub.Dur.Sum != 5 {
		t.Errorf("stub time = %d, want 5 (task execution inside barrier)", stub.Dur.Sum)
	}
	if excl := barN.ExclusiveSum(); excl != 3 {
		t.Errorf("barrier excl = %d, want 3 (pure waiting)", excl)
	}
	// The task tree carries the task's own 5 units.
	if tree := p.TaskRoot(f.task); tree == nil || tree.Dur.Sum != 5 {
		t.Errorf("task tree sum wrong: %+v", tree)
	}
	// No node anywhere may have negative exclusive time in this scenario.
	p.Root().Walk(func(n *Node, _ int) {
		if n.ExclusiveSum() < 0 {
			t.Errorf("negative exclusive time on %s: %d", n.Name(), n.ExclusiveSum())
		}
	})
}

// TestFigure4SuspendResumeAtTaskwait replays Fig. 4/9/10/11: task1
// suspends at its taskwait, task2 runs to completion, task1 resumes and
// completes. Checks stub fragment counts and suspension subtraction.
func TestFigure4SuspendResumeAtTaskwait(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk

	p.Enter(f.par)
	p.Enter(f.barR) // implicit barrier; tasks execute inside

	t1 := p.TaskBegin(f.task) // t=0
	clk.Advance(10)           // t1 works 10
	p.Enter(f.tw)             // t1 enters taskwait, t=10
	clk.Advance(2)            // waits 2 inside taskwait before switch
	t2 := p.TaskBegin(f.task) // t=12; t1 suspended
	clk.Advance(20)           // t2 works 20
	p.TaskEnd()               // t=32
	_ = t2
	p.TaskSwitchTo(t1) // resume t1
	clk.Advance(3)     // 3 more in taskwait
	p.Exit(f.tw)       // t=35
	clk.Advance(5)     // 5 more work
	p.TaskEnd()        // t=40

	clk.Advance(1)
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	tree := p.TaskRoot(f.task)
	if tree.Dur.Count != 2 {
		t.Fatalf("instances = %d, want 2", tree.Dur.Count)
	}
	// t1 executes 0..12 and 32..40 = 20; t2 executes 12..32 = 20.
	if tree.Dur.Sum != 40 || tree.Dur.Min != 20 || tree.Dur.Max != 20 {
		t.Errorf("task tree sum/min/max = %d/%d/%d, want 40/20/20",
			tree.Dur.Sum, tree.Dur.Min, tree.Dur.Max)
	}
	twN := tree.FindChild(f.tw)
	if twN == nil {
		t.Fatal("no taskwait node in task tree")
	}
	// t1's taskwait: 10..12 running + suspended 12..32 + 32..35 running = 5.
	if twN.Dur.Sum != 5 {
		t.Errorf("taskwait incl = %d, want 5 (suspension subtracted)", twN.Dur.Sum)
	}
	// Stub under the barrier: fragments t1(2: begin + resume) + t2(1) = 3 visits,
	// total stub time 0..40, split into fragments 0..12, 12..32, 32..40.
	barN := p.Root().FindChild(f.par).FindChild(f.barR)
	stub := barN.FindStub(f.task)
	if stub == nil {
		t.Fatal("no stub under barrier")
	}
	if stub.Visits != 3 {
		t.Errorf("stub fragment visits = %d, want 3", stub.Visits)
	}
	if stub.Dur.Sum != 40 {
		t.Errorf("stub total = %d, want 40", stub.Dur.Sum)
	}
	// Barrier: incl 41, task execution 40, waiting 1.
	if barN.ExclusiveSum() != 1 {
		t.Errorf("barrier excl = %d, want 1", barN.ExclusiveSum())
	}
}

// TestFig12TaskEndSwitchesToImplicit verifies that after TaskEnd the
// implicit task is current (per the pseudocode), and a redundant
// TaskSwitchTo(nil) is a no-op.
func TestFig12TaskEndSwitchesToImplicit(t *testing.T) {
	f := newFixture(t)
	p := f.p
	p.Enter(f.par)
	p.Enter(f.barR)
	p.TaskBegin(f.task)
	if p.CurrentTask() == nil {
		t.Fatal("task not current after TaskBegin")
	}
	p.TaskEnd()
	if p.CurrentTask() != nil {
		t.Fatal("implicit task not current after TaskEnd")
	}
	sw := p.Switches()
	p.TaskSwitchTo(nil) // runtime emits this redundantly after inline tasks
	if p.Switches() != sw {
		t.Error("redundant TaskSwitchTo(nil) was counted as a switch")
	}
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()
}

// TestNestedTaskStubsStayUnderSchedulingPoint: when task A suspends and
// task B runs, B's stub must appear under the implicit task's scheduling
// point (the barrier), NOT under A's taskwait — only the implicit task's
// tree contains stub children (Section IV-C).
func TestNestedTaskStubsStayUnderSchedulingPoint(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	taskB := f.reg.Register("taskB", "f.go", 9, region.Task)

	p.Enter(f.par)
	p.Enter(f.barR)
	tA := p.TaskBegin(f.task)
	clk.Advance(5)
	p.Enter(f.tw)
	tB := p.TaskBegin(taskB) // nested switch
	clk.Advance(7)
	p.TaskEnd()
	_ = tB
	p.TaskSwitchTo(tA)
	p.Exit(f.tw)
	p.TaskEnd()
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	barN := p.Root().FindChild(f.par).FindChild(f.barR)
	if barN.FindStub(f.task) == nil || barN.FindStub(taskB) == nil {
		t.Error("both stubs must be children of the barrier")
	}
	// A's instance tree must not contain stub children under its taskwait.
	treeA := p.TaskRoot(f.task)
	twN := treeA.FindChild(f.tw)
	if twN == nil {
		t.Fatal("no taskwait in A's tree")
	}
	for _, c := range twN.Children {
		if c.Kind == KindStub {
			t.Errorf("stub node %s found inside explicit task tree", c.Name())
		}
	}
	// A's taskwait exclusive time: B's 7 units were subtracted (suspended).
	if twN.Dur.Sum != 0 {
		t.Errorf("A taskwait incl = %d, want 0", twN.Dur.Sum)
	}
}

// TestSameConstructSharesStubNode: "If both instances are created by the
// same task construct, it will be the same node."
func TestSameConstructSharesStubNode(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.par)
	p.Enter(f.barR)
	for i := 0; i < 5; i++ {
		p.TaskBegin(f.task)
		clk.Advance(2)
		p.TaskEnd()
	}
	p.Exit(f.barR)
	p.Exit(f.par)
	p.Finish()

	barN := p.Root().FindChild(f.par).FindChild(f.barR)
	stubs := 0
	for _, c := range barN.Children {
		if c.Kind == KindStub {
			stubs++
			if c.Visits != 5 {
				t.Errorf("stub visits = %d, want 5", c.Visits)
			}
			if c.Dur.Sum != 10 {
				t.Errorf("stub sum = %d, want 10", c.Dur.Sum)
			}
		}
	}
	if stubs != 1 {
		t.Errorf("%d stub nodes for one construct, want 1", stubs)
	}
	if tree := p.TaskRoot(f.task); tree.Dur.Count != 5 || tree.Dur.Min != 2 || tree.Dur.Max != 2 {
		t.Errorf("merged tree stats wrong: %v", tree.Dur)
	}
}
