package core

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/region"
)

// These tests close the remaining behavioural gaps: accessors used by
// downstream packages, parameter instrumentation on the implicit task,
// double-enter detection, pooling toggle, and kind names.

func TestNodeKindStrings(t *testing.T) {
	if KindRegion.String() != "region" || KindStub.String() != "stub" ||
		KindParameter.String() != "parameter" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(NodeKind(9).String(), "kind(") {
		t.Error("unknown kind fallback wrong")
	}
}

func TestAccessors(t *testing.T) {
	f := newFixture(t)
	p := f.p
	if p.Current() != p.Root() {
		t.Error("Current should start at the root")
	}
	p.Enter(f.barR)
	if p.Current().Region != f.barR || !p.Current().Open() || !p.Current().Running() {
		t.Error("current node state wrong after Enter")
	}
	ti := p.TaskBegin(f.task)
	if ti.Root() == nil || ti.Current() != ti.Root() {
		t.Error("instance accessors wrong after TaskBegin")
	}
	if p.Current() != ti.Root() {
		t.Error("profile Current should be the instance position")
	}
	p.Enter(f.foo)
	if ti.Current().Region != f.foo {
		t.Error("instance current not advanced")
	}
	p.Exit(f.foo)
	p.TaskEnd()
	p.Exit(f.barR)
	p.Finish()
}

func TestParameterOnImplicitTask(t *testing.T) {
	// Parameter instrumentation outside any explicit task lands in the
	// implicit task's tree and closes with the surrounding region.
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.Enter(f.foo)
	p.ParameterInt("phase", 2)
	clk.Advance(9)
	p.Exit(f.foo) // closes the parameter node implicitly
	p.Enter(f.foo)
	p.ParameterString("phase", "two")
	clk.Advance(4)
	p.Exit(f.foo)
	p.Finish()

	fooN := p.Root().FindChild(f.foo)
	d := fooN.FindParam("phase", 2)
	if d == nil || d.Dur.Sum != 9 {
		t.Fatalf("implicit int parameter wrong: %+v", d)
	}
	var sNode *Node
	for _, c := range fooN.Children {
		if c.Kind == KindParameter && c.ParamStr == "two" {
			sNode = c
		}
	}
	if sNode == nil || sNode.Dur.Sum != 4 {
		t.Fatalf("implicit string parameter wrong: %+v", sNode)
	}
	if fooN.FindParam("phase", 99) != nil {
		t.Error("FindParam found a ghost")
	}
	if fooN.FindStub(f.task) != nil {
		t.Error("FindStub found a ghost")
	}
}

func TestDoubleEnterPanics(t *testing.T) {
	clk := clock.NewManual(0)
	reg := region.NewRegistry()
	bar := reg.Register("b", "c.go", 1, region.ImplicitBarrier)
	task := reg.Register("t", "c.go", 2, region.Task)
	p := NewThreadProfile(0, clk)
	p.Enter(bar)
	ti := p.TaskBegin(task)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "double enter") {
			t.Fatalf("expected double-enter panic, got %v", r)
		}
	}()
	ti.root.openVisit(clk.Now()) // the root is already open
}

func TestPoolingDisabledStillCorrect(t *testing.T) {
	f := newFixture(t)
	p, clk := f.p, f.clk
	p.SetNodePooling(false)
	p.Enter(f.barR)
	for i := 0; i < 100; i++ {
		p.TaskBegin(f.task)
		clk.Advance(3)
		p.TaskEnd()
	}
	p.Exit(f.barR)
	p.Finish()
	tree := p.TaskRoot(f.task)
	if tree.Dur.Count != 100 || tree.Dur.Sum != 300 {
		t.Errorf("pooling-off results wrong: %+v", tree.Dur)
	}
	// Without pooling every instance allocates a fresh root node.
	if p.NodesAllocated() < 100 {
		t.Errorf("expected >=100 node allocations without pooling, got %d", p.NodesAllocated())
	}
}

func TestSwitchAfterFinishPanics(t *testing.T) {
	f := newFixture(t)
	f.p.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.p.TaskBegin(f.task)
}

func TestParamNodeNameRendering(t *testing.T) {
	n := &Node{Kind: KindParameter, ParamName: "depth", ParamValue: 7}
	if n.Name() != "depth=7" {
		t.Errorf("int param name = %q", n.Name())
	}
	s := &Node{Kind: KindParameter, ParamName: "phase", ParamStr: "solve"}
	if s.Name() != "phase=solve" {
		t.Errorf("string param name = %q", s.Name())
	}
	r := &Node{Kind: KindRegion}
	if r.Name() != "<root>" {
		t.Errorf("root name = %q", r.Name())
	}
}
