package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/region"
)

// streamDriver generates random well-formed event streams against a
// ThreadProfile and tracks a reference model of what must come out.
type streamDriver struct {
	clk  *clock.Manual
	p    *ThreadProfile
	rng  *rand.Rand
	regs []*region.Region // user regions
	task *region.Region
	tw   *region.Region

	// reference model
	totalTaskTime  map[*region.Region]int64
	instanceCount  map[*region.Region]int64
	suspended      []*TaskInstance
	openUserDepth  int
	instancesAlive int
	maxAlive       int
}

func newStreamDriver(seed int64) *streamDriver {
	reg := region.NewRegistry()
	d := &streamDriver{
		clk:           clock.NewManual(0),
		rng:           rand.New(rand.NewSource(seed)),
		task:          reg.Register("task", "s.go", 1, region.Task),
		tw:            reg.Register("tw", "s.go", 2, region.Taskwait),
		totalTaskTime: make(map[*region.Region]int64),
		instanceCount: make(map[*region.Region]int64),
	}
	for i := 0; i < 3; i++ {
		d.regs = append(d.regs, reg.Register("fn"+string(rune('A'+i)), "s.go", 10+i, region.UserFunction))
	}
	d.p = NewThreadProfile(0, d.clk)
	d.p.Enter(reg.Register("bar", "s.go", 3, region.ImplicitBarrier))
	return d
}

// runTask executes one random task instance to completion (possibly
// spawning nested instances at its taskwait), accumulating the model's
// expected execution time.
func (d *streamDriver) runTask(depth int) {
	ti := d.p.TaskBegin(d.task)
	d.instancesAlive++
	if d.instancesAlive > d.maxAlive {
		d.maxAlive = d.instancesAlive
	}
	d.instanceCount[d.task]++
	var myTime int64

	steps := d.rng.Intn(4)
	for s := 0; s < steps; s++ {
		switch d.rng.Intn(3) {
		case 0: // plain work
			adv := int64(d.rng.Intn(50))
			d.clk.Advance(adv)
			myTime += adv
		case 1: // enter/exit a user region with work
			r := d.regs[d.rng.Intn(len(d.regs))]
			d.p.Enter(r)
			adv := int64(d.rng.Intn(30))
			d.clk.Advance(adv)
			myTime += adv
			d.p.Exit(r)
		case 2: // taskwait with a nested instance (suspension)
			if depth < 4 {
				d.p.Enter(d.tw)
				w1 := int64(d.rng.Intn(10))
				d.clk.Advance(w1)
				myTime += w1
				d.runTask(depth + 1) // suspends us; our clock stops
				d.p.TaskSwitchTo(ti) // runtime resumes us
				w2 := int64(d.rng.Intn(10))
				d.clk.Advance(w2)
				myTime += w2
				d.p.Exit(d.tw)
			}
		}
	}
	tail := int64(d.rng.Intn(20))
	d.clk.Advance(tail)
	myTime += tail
	d.p.TaskEnd()
	d.instancesAlive--
	d.totalTaskTime[d.task] += myTime
}

// TestRandomStreamsInvariants drives many random event streams and
// checks the paper's core guarantees:
//
//  1. merged task-tree time equals the modelled execution time with all
//     suspension intervals subtracted,
//  2. instance counts match,
//  3. stub time in the implicit tree equals total task time,
//  4. no node anywhere has negative exclusive time,
//  5. the max-concurrent-instances counter matches the model.
func TestRandomStreamsInvariants(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		d := newStreamDriver(seed)
		n := 1 + d.rng.Intn(20)
		for i := 0; i < n; i++ {
			d.runTask(0)
			d.clk.Advance(int64(d.rng.Intn(10))) // waiting between tasks
		}
		// close the barrier and finish
		bar := d.p.cur
		d.p.Exit(bar.Region)
		d.p.Finish()

		tree := d.p.TaskRoot(d.task)
		if tree == nil {
			t.Fatalf("seed %d: no task tree", seed)
		}
		if tree.Dur.Sum != d.totalTaskTime[d.task] {
			t.Errorf("seed %d: task tree sum %d != modelled %d",
				seed, tree.Dur.Sum, d.totalTaskTime[d.task])
		}
		if tree.Dur.Count != d.instanceCount[d.task] {
			t.Errorf("seed %d: instances %d != modelled %d",
				seed, tree.Dur.Count, d.instanceCount[d.task])
		}
		var stubSum int64
		d.p.Root().Walk(func(n *Node, _ int) {
			if n.Kind == KindStub {
				stubSum += n.Dur.Sum
			}
			if n.ExclusiveSum() < 0 {
				t.Errorf("seed %d: negative exclusive time on %s", seed, n.Name())
			}
		})
		tree.Walk(func(n *Node, _ int) {
			if n.ExclusiveSum() < 0 {
				t.Errorf("seed %d: negative exclusive in task tree on %s", seed, n.Name())
			}
		})
		if stubSum != tree.Dur.Sum {
			t.Errorf("seed %d: stub sum %d != task tree sum %d", seed, stubSum, tree.Dur.Sum)
		}
		if d.p.MaxActiveInstances() != d.maxAlive {
			t.Errorf("seed %d: max active %d != modelled %d",
				seed, d.p.MaxActiveInstances(), d.maxAlive)
		}
		if d.p.InstancesBegun() != d.p.InstancesEnded() {
			t.Errorf("seed %d: begun %d != ended %d",
				seed, d.p.InstancesBegun(), d.p.InstancesEnded())
		}
	}
}

// TestQuickNestedRegionsBalance uses testing/quick to validate that any
// random nesting sequence of enter/exit keeps inclusive times consistent
// (child sums never exceed the parent).
func TestQuickNestedRegionsBalance(t *testing.T) {
	reg := region.NewRegistry()
	regions := make([]*region.Region, 4)
	for i := range regions {
		regions[i] = reg.Register("r"+string(rune('0'+i)), "q.go", i, region.UserFunction)
	}
	f := func(ops []uint8) bool {
		clk := clock.NewManual(0)
		p := NewThreadProfile(0, clk)
		var stack []*region.Region
		for _, op := range ops {
			clk.Advance(int64(op%7) + 1)
			if op%3 == 0 && len(stack) > 0 { // exit
				r := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				p.Exit(r)
			} else { // enter
				r := regions[int(op)%len(regions)]
				p.Enter(r)
				stack = append(stack, r)
			}
		}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			clk.Advance(1)
			p.Exit(r)
		}
		p.Finish()
		ok := true
		p.Root().Walk(func(n *Node, _ int) {
			if n.ExclusiveSum() < 0 {
				ok = false
			}
		})
		// Root inclusive equals total elapsed time.
		if p.Root().Dur.Sum != clk.Now() {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeepRecursionProfile exercises very deep call chains (tree depth
// stress; the paper worries about "tree depth limits").
func TestDeepRecursionProfile(t *testing.T) {
	reg := region.NewRegistry()
	fn := reg.Register("rec", "q.go", 1, region.UserFunction)
	clk := clock.NewManual(0)
	p := NewThreadProfile(0, clk)
	const depth = 2000
	for i := 0; i < depth; i++ {
		p.Enter(fn)
		clk.Advance(1)
	}
	for i := 0; i < depth; i++ {
		p.Exit(fn)
	}
	p.Finish()
	// Walk down: each level's inclusive = remaining time.
	n := p.Root().FindChild(fn)
	want := int64(depth)
	for n != nil {
		if n.Dur.Sum != want {
			t.Fatalf("depth node incl = %d, want %d", n.Dur.Sum, want)
		}
		want--
		n = n.FindChild(fn)
	}
	if want != 0 {
		t.Fatalf("chain ended early, %d levels missing", want)
	}
}
