package sink

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

// The fault matrix of this file: {sever mid-frame, daemon
// kill-and-restart, ENOSPC on one shard, reconnect-budget exhaustion}
// x {1, 4} concurrent streams. Every surviving shard must be
// salvageable, every loss explicitly counted, and every resume that the
// replay window covers bit-identical to an undisturbed run.

var streamCounts = []int{1, 4}

// streamWorkload returns per-stream batches plus a local reference
// archive recorded with identical writer options — the bytes a
// disturbed stream must still match.
func streamWorkload(t *testing.T, dir string, streams, batches, perBatch int) (map[int]map[int][][]trace.Event, map[int]string) {
	t.Helper()
	work := make(map[int]map[int][][]trace.Event, streams)
	refs := make(map[int]string, streams)
	for i := 0; i < streams; i++ {
		reg := region.NewRegistry()
		b := synthBatches(reg, 2, batches, perBatch)
		work[i] = b
		ref := filepath.Join(dir, fmt.Sprintf("ref-%d.otf2", i))
		writeLocal(t, ref, b, otf2.WithChunkBytes(512))
		refs[i] = ref
	}
	return work, refs
}

func streamAll(t *testing.T, cl *Client, batches map[int][][]trace.Event) {
	t.Helper()
	for th := 0; th < len(batches); th++ {
		for _, evs := range batches[th] {
			if err := cl.WriteEvents(th, evs); err != nil {
				t.Fatalf("WriteEvents: %v", err)
			}
		}
	}
}

func mustEqualFiles(t *testing.T, label, want, got string) {
	t.Helper()
	w, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	g, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(w) != string(g) {
		t.Fatalf("%s: %d bytes, want %d — shard not bit-identical to undisturbed run", label, len(g), len(w))
	}
}

// TestSeverMidFrameResume cuts each stream's first connection at an
// exact byte mid-stream (inside a frame) and checks the reconnect +
// replay path reproduces a bit-identical shard, with the resume
// counted and no gap.
func TestSeverMidFrameResume(t *testing.T) {
	for _, streams := range streamCounts {
		t.Run(fmt.Sprintf("streams=%d", streams), func(t *testing.T) {
			srv, addr := startServer(t)
			network, address, err := SplitAddr(addr)
			if err != nil {
				t.Fatal(err)
			}
			work, refs := streamWorkload(t, t.TempDir(), streams, 30, 20)

			var wg sync.WaitGroup
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// First connection severed after a stream-dependent
					// number of bytes (mid-frame); later dials are clean.
					var dials atomic.Int64
					dial := func() (net.Conn, error) {
						conn, err := net.Dial(network, address)
						if err != nil {
							return nil, err
						}
						if dials.Add(1) == 1 {
							return faultinject.NewConn(conn,
								faultinject.SeverWriteAfter(int64(1500+700*i)),
								faultinject.SliceWrites(97)), nil
						}
						return conn, nil
					}
					cl, err := NewClient(dial,
						WithStreamID(fmt.Sprintf("w%d", i)),
						WithWriterOptions(otf2.WithChunkBytes(512)),
						WithReconnect(10, 5*time.Millisecond, 10*time.Second))
					if err != nil {
						t.Error(err)
						return
					}
					streamAll(t, cl, work[i])
					if err := cl.Close(); err != nil {
						t.Errorf("stream %d: Close = %v", i, err)
						return
					}
					if cl.Resumes() == 0 {
						t.Errorf("stream %d: sever produced no resume", i)
					}
					if cl.GapBytes() != 0 {
						t.Errorf("stream %d: unexpected gap of %d bytes", i, cl.GapBytes())
					}
				}(i)
			}
			wg.Wait()
			if err := srv.Close(); err != nil {
				t.Fatalf("server latched an error from client severs: %v", err)
			}

			infos := map[string]StreamInfo{}
			for _, st := range srv.Streams() {
				infos[st.ID] = st
			}
			for i := 0; i < streams; i++ {
				id := fmt.Sprintf("w%d", i)
				st, ok := infos[id]
				if !ok || !st.Complete || st.Resumes == 0 || st.GapBytes != 0 {
					t.Fatalf("stream %s info = %+v, want complete with resumes and no gap", id, st)
				}
				mustEqualFiles(t, id, refs[i], filepath.Join(srv.Dir(), st.File))
			}
		})
	}
}

// restartableServer runs a server on a fixed unix socket so a "crashed"
// daemon can be brought back on the same address over the same
// directory.
type restartableServer struct {
	t    *testing.T
	dir  string
	sock string

	srv  *Server
	done chan struct{}
}

func startRestartable(t *testing.T, dir, sock string, opts ...ServerOption) *restartableServer {
	t.Helper()
	srv, err := NewServer(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return &restartableServer{t: t, dir: dir, sock: sock, srv: srv, done: done}
}

// crash force-severs everything, like a kill: no drain grace.
func (r *restartableServer) crash() {
	_ = r.srv.Shutdown(0)
	<-r.done
}

// TestDaemonCrashRestartResume kills the daemon mid-stream, restarts it
// over the same experiment directory, and checks the client resumes to
// a bit-identical shard: recovery truncates the shard to its intact
// chunk prefix and the client's replay window covers the regression.
func TestDaemonCrashRestartResume(t *testing.T) {
	for _, streams := range streamCounts {
		t.Run(fmt.Sprintf("streams=%d", streams), func(t *testing.T) {
			base := t.TempDir()
			dir := filepath.Join(base, "exp")
			sock := filepath.Join(base, "d.sock")
			// Small ack stride: shards have flushed bytes to recover.
			r := startRestartable(t, dir, sock, WithAckInterval(512))
			work, refs := streamWorkload(t, t.TempDir(), streams, 40, 40)

			half := make(chan int, streams) // streams that wrote half
			goOn := make(chan struct{})     // restart done, finish writing
			errs := make(chan error, streams)
			for i := 0; i < streams; i++ {
				go func(i int) {
					cl, err := Dial("unix://"+sock,
						WithStreamID(fmt.Sprintf("w%d", i)),
						WithWriterOptions(otf2.WithChunkBytes(512)),
						WithReconnect(50, 5*time.Millisecond, 20*time.Second))
					if err != nil {
						errs <- err
						return
					}
					batches := work[i]
					mid := len(batches[0]) / 2
					for th := 0; th < len(batches); th++ {
						for b, evs := range batches[th] {
							if th == 0 && b == mid {
								half <- i
								<-goOn
							}
							if err := cl.WriteEvents(th, evs); err != nil {
								errs <- fmt.Errorf("stream %d: %v", i, err)
								return
							}
						}
					}
					if err := cl.Close(); err != nil {
						errs <- fmt.Errorf("stream %d: Close: %v", i, err)
						return
					}
					if cl.GapBytes() != 0 {
						errs <- fmt.Errorf("stream %d: gap of %d bytes", i, cl.GapBytes())
						return
					}
					errs <- nil
				}(i)
			}
			for i := 0; i < streams; i++ {
				<-half
			}
			// Wait until every shard has flushed bytes, then kill.
			deadline := time.Now().Add(5 * time.Second)
			for i := 0; i < streams; i++ {
				shard := filepath.Join(dir, fmt.Sprintf("trace-w%d.otf2", i))
				for {
					if fi, err := os.Stat(shard); err == nil && fi.Size() > 0 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("shard %s never got flushed bytes", shard)
					}
					time.Sleep(time.Millisecond)
				}
			}
			r.crash()

			r2 := startRestartable(t, dir, sock, WithAckInterval(512))
			if got := r2.srv.Recovered(); got != streams {
				t.Fatalf("recovered %d streams, want %d", got, streams)
			}
			close(goOn)
			for i := 0; i < streams; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			if err := r2.srv.Close(); err != nil {
				t.Fatal(err)
			}
			<-r2.done

			infos := map[string]StreamInfo{}
			for _, st := range r2.srv.Streams() {
				infos[st.ID] = st
			}
			for i := 0; i < streams; i++ {
				id := fmt.Sprintf("w%d", i)
				st := infos[id]
				if !st.Complete || st.GapBytes != 0 {
					t.Fatalf("stream %s info = %+v, want complete, no gap", id, st)
				}
				if st.Resumes == 0 {
					t.Fatalf("stream %s recorded no resume across the restart", id)
				}
				mustEqualFiles(t, id, refs[i], filepath.Join(dir, st.File))
			}
		})
	}
}

// TestDaemonCrashGapDegradesToFallback makes the replay window too
// small to cover a crash-recovery regression: the client must declare a
// counted gap (never silently resume), the server must seal the shard
// at its intact prefix, and the client must spill the rest to its local
// fallback archive.
func TestDaemonCrashGapDegradesToFallback(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "exp")
	sock := filepath.Join(base, "d.sock")
	r := startRestartable(t, dir, sock, WithAckInterval(512))

	fallback := filepath.Join(base, "fallback.otf2")
	cl, err := Dial("unix://"+sock,
		WithStreamID("gappy"),
		WithWriterOptions(otf2.WithChunkBytes(256)),
		// No retained history below the server's acked offset: any
		// durable regression at the server is an uncoverable gap.
		WithReplayWindow(0),
		WithReconnect(50, 5*time.Millisecond, 20*time.Second),
		WithFallbackArchive(fallback))
	if err != nil {
		t.Fatal(err)
	}
	reg := region.NewRegistry()
	batches := synthBatches(reg, 1, 60, 20)
	for _, evs := range batches[0] {
		if err := cl.WriteEvents(0, evs); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for acks to advance the window base (history evicted), so
	// the coming regression is guaranteed uncoverable.
	shard := filepath.Join(dir, "trace-gappy.otf2")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if base, _, _, _ := cl.win.snapshot(); base > 512 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server acks never evicted client history")
		}
		time.Sleep(time.Millisecond)
	}
	r.crash()
	// Chop the shard mid-chunk: recovery truncates to the chunk
	// boundary below, regressing durable under the client's acked base.
	fi, err := os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(shard, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	r2 := startRestartable(t, dir, sock, WithAckInterval(512))

	// Finish the stream: the client reconnects, finds the gap, seals the
	// remote stream and spills locally. Close reports no error — the
	// degradation is recorded, not fatal.
	for _, evs := range synthBatches(region.NewRegistry(), 1, 5, 20)[0] {
		_ = cl.WriteEvents(0, evs) // may race the gap detection; both fine
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close = %v, want nil (degraded to fallback)", err)
	}
	if cl.GapBytes() == 0 {
		t.Fatal("uncoverable regression produced no counted gap")
	}
	path, start, reason, ok := cl.Fallback()
	if !ok || path != fallback || reason == nil {
		t.Fatalf("Fallback() = (%q, %d, %v, %v), want active spill", path, start, reason, ok)
	}
	if start == 0 {
		t.Fatal("fallback start offset 0: spill should continue the shard prefix, not restart")
	}

	if err := r2.srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-r2.done
	var st StreamInfo
	for _, s := range r2.srv.Streams() {
		if s.ID == "gappy" {
			st = s
		}
	}
	if !st.Sealed || st.Complete || st.GapBytes != cl.GapBytes() {
		t.Fatalf("stream info = %+v, want sealed with gap %d", st, cl.GapBytes())
	}
	// The sealed shard is a clean archive prefix (chunk-aligned), and
	// the losses are exactly accounted: shard bytes + gap = resume
	// offset the client would have continued at.
	if _, warn, err := otf2.ReadFileLenient(shard, region.NewRegistry(), 1); err != nil || warn != "" {
		t.Fatalf("gap-sealed shard = (%q, %v), want clean chunk-aligned prefix", warn, err)
	}
	fi, err = os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size()+st.GapBytes != start {
		t.Fatalf("accounting: shard %d + gap %d != fallback start %d", fi.Size(), st.GapBytes, start)
	}
}

// TestReconnectBudgetExhaustionSpills kills the daemon for good:
// clients exhaust their reconnect budget and spill losslessly to their
// fallback archives — which, with the default replay window, are
// complete standalone archives, bit-identical to an undisturbed run.
func TestReconnectBudgetExhaustionSpills(t *testing.T) {
	for _, streams := range streamCounts {
		t.Run(fmt.Sprintf("streams=%d", streams), func(t *testing.T) {
			base := t.TempDir()
			dir := filepath.Join(base, "exp")
			sock := filepath.Join(base, "d.sock")
			r := startRestartable(t, dir, sock, WithAckInterval(2048))
			work, refs := streamWorkload(t, t.TempDir(), streams, 30, 20)

			clients := make([]*Client, streams)
			fallbacks := make([]string, streams)
			for i := 0; i < streams; i++ {
				fallbacks[i] = filepath.Join(base, fmt.Sprintf("fb-%d.otf2", i))
				cl, err := Dial("unix://"+sock,
					WithStreamID(fmt.Sprintf("w%d", i)),
					WithWriterOptions(otf2.WithChunkBytes(512)),
					WithReconnect(2, time.Millisecond, 200*time.Millisecond),
					WithFallbackArchive(fallbacks[i]))
				if err != nil {
					t.Fatal(err)
				}
				clients[i] = cl
				// First half while the daemon lives.
				for _, evs := range work[i][0][:15] {
					if err := cl.WriteEvents(0, evs); err != nil {
						t.Fatal(err)
					}
				}
			}
			r.crash() // and never comes back

			var wg sync.WaitGroup
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cl := clients[i]
					for _, evs := range work[i][0][15:] {
						if err := cl.WriteEvents(0, evs); err != nil {
							t.Errorf("stream %d: %v", i, err)
							return
						}
					}
					for _, evs := range work[i][1] {
						if err := cl.WriteEvents(1, evs); err != nil {
							t.Errorf("stream %d: %v", i, err)
							return
						}
					}
					if err := cl.Close(); err != nil {
						t.Errorf("stream %d: Close = %v, want nil after spill", i, err)
					}
				}(i)
			}
			wg.Wait()
			for i := 0; i < streams; i++ {
				path, start, reason, ok := clients[i].Fallback()
				if !ok || reason == nil {
					t.Fatalf("stream %d never fell back", i)
				}
				if start != 0 {
					t.Fatalf("stream %d fallback starts at %d, want 0 (complete standalone archive)", i, start)
				}
				mustEqualFiles(t, fmt.Sprintf("fallback %d", i), refs[i], path)
			}
		})
	}
}

// TestDiskFaultOneShard injects ENOSPC into one stream's shard writer:
// that stream is sealed failed (client told mid-stream, spills
// locally), its neighbors ingest to completion, and the server latches
// the disk error.
func TestDiskFaultOneShard(t *testing.T) {
	for _, streams := range streamCounts {
		t.Run(fmt.Sprintf("streams=%d", streams), func(t *testing.T) {
			base := t.TempDir()
			srv, err := NewServer(filepath.Join(base, "exp"),
				WithAckInterval(1024),
				WithShardWriterWrap(func(id string, w io.Writer) io.Writer {
					if id == "w0" {
						return faultinject.NewWriter(w, faultinject.CapacityBytes(8<<10))
					}
					return w
				}))
			if err != nil {
				t.Fatal(err)
			}
			sock := filepath.Join(base, "d.sock")
			ln, err := net.Listen("unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() { defer close(done); _ = srv.Serve(ln) }()

			work, refs := streamWorkload(t, t.TempDir(), streams, 30, 20)
			var wg sync.WaitGroup
			fellBack := make([]bool, streams)
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cl, err := Dial("unix://"+sock,
						WithStreamID(fmt.Sprintf("w%d", i)),
						WithWriterOptions(otf2.WithChunkBytes(512)),
						WithReconnect(3, time.Millisecond, time.Second),
						WithFallbackArchive(filepath.Join(base, fmt.Sprintf("fb-%d.otf2", i))))
					if err != nil {
						t.Error(err)
						return
					}
					streamAll(t, cl, work[i])
					if err := cl.Close(); err != nil {
						t.Errorf("stream %d: Close = %v", i, err)
						return
					}
					_, _, _, fellBack[i] = cl.Fallback()
				}(i)
			}
			wg.Wait()
			if err := srv.Shutdown(5 * time.Second); err == nil {
				t.Fatal("server did not latch the injected disk failure")
			} else if !strings.Contains(err.Error(), "no space left") {
				t.Fatalf("latched error %v does not carry ENOSPC", err)
			}
			<-done

			infos := map[string]StreamInfo{}
			for _, st := range srv.Streams() {
				infos[st.ID] = st
			}
			if st := infos["w0"]; !st.Sealed || st.Complete || st.Err == "" {
				t.Fatalf("faulted stream info = %+v, want sealed failed", st)
			}
			if !fellBack[0] {
				t.Fatal("faulted stream's client did not spill to its fallback archive")
			}
			for i := 1; i < streams; i++ {
				id := fmt.Sprintf("w%d", i)
				st := infos[id]
				if !st.Complete || st.Err != "" {
					t.Fatalf("neighbor %s disturbed by w0's disk fault: %+v", id, st)
				}
				mustEqualFiles(t, id, refs[i], filepath.Join(srv.Dir(), st.File))
				if fellBack[i] {
					t.Fatalf("neighbor %s spilled locally despite a healthy stream", id)
				}
			}
		})
	}
}

// TestHandshakeReadDeadline connects and sends nothing: the server must
// shed the connection once the handshake deadline passes instead of
// pinning a goroutine forever (slowloris).
func TestHandshakeReadDeadline(t *testing.T) {
	srv, err := NewServer(t.TempDir(), WithHandshakeTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	start := time.Now()
	if err := srv.ServeConn(c2); err == nil {
		t.Fatal("silent connection was accepted")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("handshake deadline took %v to fire", d)
	}
	if n := len(srv.Streams()); n != 0 {
		t.Fatalf("silent connection registered %d streams", n)
	}
}

// TestIdleWatchdogSealsWedgedStream handshakes, sends a partial stream,
// then goes silent: the idle watchdog must sever the stream (keeping
// the flushed prefix) without the test having to close the socket.
func TestIdleWatchdogSealsWedgedStream(t *testing.T) {
	srv, err := NewServer(t.TempDir(), WithIdleTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeConn(c2) }()

	// Valid v1 handshake + one frame, then silence.
	reg := region.NewRegistry()
	local := filepath.Join(t.TempDir(), "p.otf2")
	writeLocal(t, local, synthBatches(reg, 1, 1, 4))
	payload, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = append(buf, Magic...)
	buf = append(buf, ProtocolV1)
	buf = append(buf, byte(len("wedged")))
	buf = append(buf, "wedged"...)
	buf = append(buf, frameData)
	buf = appendUvarintForTest(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	if _, err := c1.Write(buf); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("wedged stream ended without error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle watchdog never fired")
	}
	infos := srv.Streams()
	if len(infos) != 1 || infos[0].Complete || infos[0].Err == "" {
		t.Fatalf("streams = %+v, want one severed stream", infos)
	}
	if infos[0].Bytes != int64(len(payload)) {
		t.Fatalf("flushed prefix = %d bytes, want %d", infos[0].Bytes, len(payload))
	}
}

// TestShutdownDrains checks the graceful path: Shutdown with grace lets
// an in-flight stream finish cleanly.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	cl, err := Dial("unix://"+sock, WithStreamID("drainee"))
	if err != nil {
		t.Fatal(err)
	}
	reg := region.NewRegistry()
	streamAll(t, cl, synthBatches(reg, 1, 10, 20))

	// The client dials lazily; wait until its connection is established
	// or Shutdown would close the listener before it ever dialed.
	for deadline := time.Now().Add(5 * time.Second); ; {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never connected")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- cl.Close() }()
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("client Close during drain = %v", err)
	}
	infos := srv.Streams()
	if len(infos) != 1 || !infos[0].Complete {
		t.Fatalf("streams = %+v, want one complete stream after drain", infos)
	}
}

// TestV1ClientAgainstV2Server checks protocol compatibility end to end:
// a v1-pinned client round-trips through the v2 server bit-identically.
func TestV1ClientAgainstV2Server(t *testing.T) {
	srv, addr := startServer(t)
	work, refs := streamWorkload(t, t.TempDir(), 1, 10, 20)
	cl, err := Dial(addr,
		WithStreamID("old"),
		WithProtocolVersion(ProtocolV1),
		WithWriterOptions(otf2.WithChunkBytes(512)))
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, cl, work[0])
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	infos := srv.Streams()
	if len(infos) != 1 || !infos[0].Complete || infos[0].Resumes != 0 {
		t.Fatalf("streams = %+v", infos)
	}
	mustEqualFiles(t, "v1 shard", refs[0], filepath.Join(srv.Dir(), infos[0].File))
}

func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
