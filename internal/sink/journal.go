package sink

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/otf2"
)

// journalFileName is the server's crash-recovery journal inside the
// experiment directory. It records stream identity and status — not
// per-ack offsets: the durable offset is re-derived at recovery time by
// scanning each shard for its intact archive prefix, which is always
// correct no matter when the crash hit, and costs one sequential read
// per shard instead of a journal write per ack.
const journalFileName = "sink-journal.json"

// journalVersion identifies the journal schema.
const journalVersion = 1

type journalEntry struct {
	ID            string `json:"id"`
	Token         uint64 `json:"token,omitempty"`
	File          string `json:"file"`
	Bytes         int64  `json:"bytes"`
	Frames        int64  `json:"frames,omitempty"`
	DroppedEvents int64  `json:"droppedEvents,omitempty"`
	GapBytes      int64  `json:"gapBytes,omitempty"`
	Resumes       int64  `json:"resumes,omitempty"`
	Complete      bool   `json:"complete"`
	Sealed        bool   `json:"sealed"`
	Err           string `json:"err,omitempty"`
}

type journalDoc struct {
	Version int            `json:"version"`
	Streams []journalEntry `json:"streams"`
}

// writeJournalLocked persists the stream table. Written via temp file +
// atomic rename, so a crash mid-write leaves the previous journal
// intact; called (under s.mu) at registration, resume and seal — the
// moments stream identity or terminal status changes.
func (s *Server) writeJournalLocked() {
	doc := journalDoc{Version: journalVersion}
	for _, id := range s.streamOrderLocked() {
		st := s.states[id]
		doc.Streams = append(doc.Streams, journalEntry{
			ID:            st.info.ID,
			Token:         st.token,
			File:          st.info.File,
			Bytes:         st.durable,
			Frames:        st.info.Frames,
			DroppedEvents: st.info.DroppedEvents,
			GapBytes:      st.info.GapBytes,
			Resumes:       st.info.Resumes,
			Complete:      st.info.Complete,
			Sealed:        st.sealed,
			Err:           st.info.Err,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		s.setErr(fmt.Errorf("sink: encoding journal: %w", err))
		return
	}
	data = append(data, '\n')
	path := filepath.Join(s.dir, journalFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.setErr(fmt.Errorf("sink: writing journal: %w", err))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.setErr(fmt.Errorf("sink: writing journal: %w", err))
	}
}

// streamOrderLocked returns stream ids in arrival order (the order of
// s.streams).
func (s *Server) streamOrderLocked() []string {
	ids := make([]string, 0, len(s.streams))
	for _, info := range s.streams {
		ids = append(ids, info.ID)
	}
	return ids
}

// recover rebuilds the stream table from a previous server's journal in
// s.dir, if one exists. Every journaled shard is scanned for its intact
// archive prefix (the same cut point the lenient readers salvage to)
// and truncated there — a crash mid-write leaves a partial chunk, which
// resuming must not build on. Sealed streams keep their status; a
// sealed-complete shard that lost bytes is demoted to failed with the
// loss counted. Unsealed streams await resume at the recovered durable
// offset.
func (s *Server) recover() error {
	data, err := os.ReadFile(filepath.Join(s.dir, journalFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sink: reading journal: %w", err)
	}
	var doc journalDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("sink: parsing journal: %w", err)
	}
	if doc.Version != journalVersion {
		return fmt.Errorf("sink: journal version %d not supported", doc.Version)
	}
	for _, e := range doc.Streams {
		if e.ID == "" || e.File == "" {
			return fmt.Errorf("sink: journal entry missing id or file")
		}
		st := &streamState{
			token:  e.Token,
			sealed: e.Sealed,
			info: &StreamInfo{
				ID:            e.ID,
				File:          e.File,
				Frames:        e.Frames,
				DroppedEvents: e.DroppedEvents,
				GapBytes:      e.GapBytes,
				Resumes:       e.Resumes,
				Complete:      e.Complete,
				Sealed:        e.Sealed,
				Err:           e.Err,
			},
		}
		path := filepath.Join(s.dir, e.File)
		switch intact, perr := otf2.IntactPrefixSize(path); {
		case perr != nil:
			st.sealed = true
			st.info.Complete = false
			st.info.Err = fmt.Sprintf("shard unreadable after daemon restart: %v", perr)
		default:
			if fi, serr := os.Stat(path); serr == nil && fi.Size() > intact {
				if terr := os.Truncate(path, intact); terr != nil {
					st.sealed = true
					st.info.Complete = false
					st.info.Err = fmt.Sprintf("truncating shard to intact prefix: %v", terr)
				}
			}
			st.durable = intact
			st.info.Bytes = intact
			if e.Complete && intact < e.Bytes {
				st.sealed = true
				st.info.Complete = false
				st.info.Err = fmt.Sprintf("shard lost %d of %d sealed bytes", e.Bytes-intact, e.Bytes)
			}
			if !st.sealed {
				st.info.Complete = false
				st.info.Err = "interrupted by daemon restart; awaiting resume"
			}
		}
		st.info.Sealed = st.sealed
		s.used[e.ID] = 1
		s.states[e.ID] = st
		s.streams = append(s.streams, st.info)
		s.recovered++
	}
	return nil
}
