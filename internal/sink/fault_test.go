package sink

import (
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

// flakyConn injects a transport fault: writes succeed (in short slices,
// so frames land partially) until limit bytes have passed, then every
// write fails and the connection is reset. Reads pass through until the
// fault, then fail too — the client's ack read must not hang on it.
type flakyConn struct {
	net.Conn
	limit   int64
	written atomic.Int64
	tripped atomic.Bool
}

var errInjected = errors.New("injected fault: connection reset")

func (c *flakyConn) Write(p []byte) (int, error) {
	n := 0
	for len(p) > 0 {
		if c.written.Load() >= c.limit {
			if c.tripped.CompareAndSwap(false, true) {
				// Reset the underlying pipe so the peer sees the severance
				// too, like a crashed process's kernel closing its socket.
				c.Conn.Close()
			}
			return n, errInjected
		}
		chunk := p
		if len(chunk) > 64 {
			chunk = chunk[:64]
		}
		if rem := c.limit - c.written.Load(); int64(len(chunk)) > rem {
			chunk = chunk[:rem]
		}
		m, err := c.Conn.Write(chunk)
		c.written.Add(int64(m))
		n += m
		if err != nil {
			return n, err
		}
		p = p[len(chunk):]
	}
	return n, nil
}

// TestClientSurvivesSeveredConnection cuts the transport mid-stream
// under concurrent blocked producers and checks (a) the client latches
// the error without deadlocking any recording thread, (b) the daemon
// keeps the intact prefix of the severed stream as a salvageable
// archive, and (c) a concurrent healthy stream is untouched.
func TestClientSurvivesSeveredConnection(t *testing.T) {
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// The doomed stream, over a fault-injected pipe: ~8 KiB get through,
	// then the connection resets mid-frame.
	c1, c2 := net.Pipe()
	fc := &flakyConn{Conn: c1, limit: 8 << 10}
	doomed, err := NewClientConn(fc,
		WithStreamID("doomed"),
		WithBufferBytes(1024),
		WithWriterOptions(otf2.WithChunkBytes(256)))
	if err != nil {
		t.Fatal(err)
	}
	var severed sync.WaitGroup
	severed.Add(1)
	go func() {
		defer severed.Done()
		_ = srv.ServeConn(c2) // returns with an error once the pipe resets
	}()

	// A healthy stream into the same server, concurrently.
	h1, h2 := net.Pipe()
	healthy, err := NewClientConn(h1, WithStreamID("healthy"), WithWriterOptions(otf2.WithChunkBytes(256)))
	if err != nil {
		t.Fatal(err)
	}
	var healthyDone sync.WaitGroup
	healthyDone.Add(1)
	go func() {
		defer healthyDone.Done()
		_ = srv.ServeConn(h2)
	}()

	reg := region.NewRegistry()
	task := reg.Register("work", "fault_test.go", 1, region.Task)
	mkBatch := func(th, i int) []trace.Event {
		base := int64(th*1_000_000 + i*10)
		return []trace.Event{
			{Time: base, Type: trace.EvTaskBegin, Region: task, TaskID: uint64(th<<20 | i)},
			{Time: base + 5, Type: trace.EvTaskEnd, Region: task, TaskID: uint64(th<<20 | i)},
		}
	}

	// Concurrent producers under the block policy: once the transport
	// dies they must all unblock with the latched error, not hang.
	const producers = 4
	const batchesPer = 2000
	var wg sync.WaitGroup
	var sawErr atomic.Int64
	for th := 0; th < producers; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < batchesPer; i++ {
				if err := doomed.WriteEvents(th, mkBatch(th, i)); err != nil {
					sawErr.Add(1)
					return
				}
			}
		}(th)
	}
	wg.Wait() // a deadlocked producer fails the test by timeout
	if sawErr.Load() == 0 {
		t.Fatal("no producer observed the severed connection (workload too small for the fault point?)")
	}
	if doomed.Err() == nil {
		t.Fatal("client did not latch the transport error")
	}
	if err := doomed.Close(); err == nil {
		t.Fatal("Close on a severed stream returned nil")
	}

	// Healthy stream: full workload, clean seal.
	var healthyTotal int
	for i := 0; i < 500; i++ {
		if err := healthy.WriteEvents(0, mkBatch(0, i)); err != nil {
			t.Fatalf("healthy stream failed: %v", err)
		}
		healthyTotal += 2
	}
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}
	severed.Wait()
	healthyDone.Wait()
	if err := srv.Close(); err != nil {
		t.Fatalf("a severed client latched a server error: %v", err)
	}

	infos := map[string]StreamInfo{}
	for _, st := range srv.Streams() {
		infos[st.ID] = st
	}
	d, h := infos["doomed"], infos["healthy"]
	if d.Complete {
		t.Fatalf("severed stream marked complete: %+v", d)
	}
	if d.Err == "" {
		t.Fatalf("severed stream records no error: %+v", d)
	}
	if !h.Complete || h.Err != "" {
		t.Fatalf("healthy stream disturbed by its neighbor's crash: %+v", h)
	}

	// The severed shard holds the intact prefix: lenient reading
	// salvages it (possibly with a truncation warning), and it decodes
	// to a prefix of what the producers wrote.
	tr, warn, err := otf2.ReadFileLenient(filepath.Join(srv.Dir(), d.File), region.NewRegistry(), 1)
	if err != nil {
		t.Fatalf("severed shard not salvageable: %v", err)
	}
	if tr.NumEvents() == 0 {
		t.Fatalf("severed shard salvaged zero events from %d ingested bytes", d.Bytes)
	}
	t.Logf("salvaged %d events from severed shard (%d bytes, warning %q)", tr.NumEvents(), d.Bytes, warn)

	// Healthy shard: everything, exactly.
	htr := readTrace(t, filepath.Join(srv.Dir(), h.File))
	if htr.NumEvents() != healthyTotal {
		t.Fatalf("healthy shard holds %d events, want %d", htr.NumEvents(), healthyTotal)
	}
}

// TestDialFailureLatches exhausts the dial retries against a dead
// address and checks recording degrades to errors, not hangs.
func TestDialFailureLatches(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "nobody-home.sock")
	cl, err := Dial("unix://"+sock, WithStreamID("orphan"), WithDialRetry(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	reg := region.NewRegistry()
	task := reg.Register("work", "fault_test.go", 2, region.Task)
	evs := []trace.Event{{Time: 1, Type: trace.EvTaskBegin, Region: task, TaskID: 1}}

	// The sender fails quickly; producers keep writing until they see
	// the latched error.
	deadline := 0
	for {
		if err := cl.WriteEvents(0, evs); err != nil {
			break
		}
		deadline++
		if deadline > 1_000_000 {
			t.Fatal("dial exhaustion never surfaced to WriteEvents")
		}
	}
	if cl.Err() == nil {
		t.Fatal("no latched error after dial exhaustion")
	}
	if err := cl.Close(); err == nil {
		t.Fatal("Close returned nil after dial exhaustion")
	}
}

// TestDaemonAckFailure checks the client surfaces a daemon that saw the
// end of stream but could not seal the shard (ackFailed path). The fake
// daemon speaks no hello, so the client is pinned to protocol v1; the
// v2 mid-stream failure ack is covered by the disk-fault tests.
func TestDaemonAckFailure(t *testing.T) {
	c1, c2 := net.Pipe()
	cl, err := NewClientConn(c1, WithStreamID("unsealed"), WithProtocolVersion(ProtocolV1))
	if err != nil {
		t.Fatal(err)
	}
	// Fake daemon: one goroutine drains the stream, another offers the
	// failure ack. net.Pipe is synchronous, so the ack write simply
	// blocks until the client turns around to read it after its EOS.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	go func() {
		c2.Write([]byte{ackByte, ackFailed})
	}()
	reg := region.NewRegistry()
	task := reg.Register("work", "fault_test.go", 3, region.Task)
	_ = cl.WriteEvents(0, []trace.Event{{Time: 1, Type: trace.EvTaskBegin, Region: task, TaskID: 1}})
	err = cl.Close()
	if err == nil {
		t.Fatal("Close returned nil though the daemon reported ingest failure")
	}
	if want := "ingest failure"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Close error %q does not mention %q", err, want)
	}
}
