package sink

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// sendWindow sits between the archive writer and the sender goroutine.
// It buffers the raw archive byte stream — not frames; framing happens
// at send time — so every buffered byte has an absolute archive offset
// and the window doubles as the replay buffer for resumable streams:
//
//	base          acked              sent            end
//	 |--- retained --|---- in flight ---|--- unsent ---|
//
// Bytes below acked are durable at the server; up to retain of them are
// kept anyway, so a reconnect that finds the server's durable offset
// regressed (daemon crash recovery truncates shards to a chunk
// boundary) can still replay. Backpressure gates on the unsent backlog
// [sent, end), bounded by maxUnacked: producers block (or drop batches)
// when the sender falls that far behind — a dead connection stalls sent
// and trips the bound, so a lost daemon costs the measured program a
// bounded stall, not unbounded memory. (The bound is deliberately not
// on unacked bytes: the server acks in DefaultAckIntervalBytes strides,
// so a small buffer would deadlock waiting for an ack that only comes
// after more bytes than the buffer holds. Steady-state memory is
// bounded by retain + the server's ack stride + maxUnacked.) A latched
// failure empties the buffer and
// wakes every waiter, so no recording thread can stay blocked on a
// dead connection; entering spill mode does the same but redirects the
// stream into a local fallback archive instead of discarding it.
//
// In v1 mode (no server acks) sent bytes are treated as acked — the
// pre-resume semantics: the buffer holds unsent bytes only.
type sendWindow struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf   []byte
	base  int64 // archive offset of buf[0]
	acked int64 // server-durable bytes (v1: sent bytes)
	sent  int64 // next unsent archive offset

	maxUnacked int
	retain     int
	block      bool
	v1         bool

	closed bool
	failed error
	kicked bool

	spill       *os.File
	spillPath   string
	spillStart  int64 // archive offset of the fallback file's first byte
	spillReason error
}

func newSendWindow(maxUnacked, retain int, block, v1 bool) *sendWindow {
	w := &sendWindow{maxUnacked: maxUnacked, retain: retain, block: block, v1: v1}
	if v1 {
		w.retain = 0
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *sendWindow) end() int64 { return w.base + int64(len(w.buf)) }

// admit is the pre-encode backpressure gate. It returns (true, nil) to
// encode, (false, nil) to drop the batch (drop policy, window full), or
// an error once the stream has failed or been closed.
func (w *sendWindow) admit() (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		switch {
		case w.failed != nil:
			return false, w.failed
		case w.closed:
			return false, fmt.Errorf("sink: write after Close")
		case w.spill != nil:
			// Spilling to local disk: no window bound applies, the
			// fallback archive takes everything.
			return true, nil
		case w.end()-w.sent < int64(w.maxUnacked):
			return true, nil
		case !w.block:
			return false, nil
		}
		w.cond.Wait()
	}
}

// Write implements io.Writer for the archive writer: p is appended to
// the window (or, in spill mode, written straight to the fallback
// archive). Under the block policy Write waits for window space — it
// runs on the encoding thread, under the writer's io lock, exactly
// where a slow file sink would block too; under the drop policy it
// always appends, because dropping bytes mid-archive would corrupt the
// stream — the bound is enforced on whole batches in admit instead.
func (w *sendWindow) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	if w.spill != nil {
		return w.writeSpillLocked(p)
	}
	if w.block {
		for w.end()-w.sent >= int64(w.maxUnacked) && w.failed == nil && !w.closed && w.spill == nil {
			w.cond.Wait()
		}
		if w.failed != nil {
			return 0, w.failed
		}
		if w.spill != nil {
			return w.writeSpillLocked(p)
		}
	}
	w.buf = append(w.buf, p...)
	w.cond.Broadcast()
	return len(p), nil
}

// writeSpillLocked appends p to the fallback archive. A fallback write
// failure is final: the stream latches it (there is nowhere left to
// degrade to).
func (w *sendWindow) writeSpillLocked(p []byte) (int, error) {
	n, err := w.spill.Write(p)
	if err != nil {
		err = fmt.Errorf("sink: fallback archive: %w", err)
		w.failLocked(err)
		return n, err
	}
	return n, nil
}

// next hands the sender the next run of unsent bytes, copied into
// scratch (so the window lock is not held during the network write).
// It waits when everything is sent; done reports that the stream was
// closed and fully sent, and kicked that an interrupt (reader-observed
// connection death) asked the sender to re-check its connection state.
func (w *sendWindow) next(scratch []byte) (batch []byte, done, kicked bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.sent == w.end() && !w.closed && w.failed == nil && w.spill == nil && !w.kicked {
		w.cond.Wait()
	}
	if w.kicked {
		w.kicked = false
		return nil, false, true
	}
	if w.failed != nil || w.spill != nil {
		return nil, true, false
	}
	n := w.end() - w.sent
	if max := int64(cap(scratch)); max > 0 && n > max {
		n = max
	}
	off := w.sent - w.base
	batch = append(scratch[:0], w.buf[off:off+n]...)
	w.sent += n
	if w.v1 {
		w.ackLocked(w.sent)
	}
	// sent advanced: producers gated on the unsent backlog can move.
	w.cond.Broadcast()
	return batch, w.closed && w.sent == w.end(), false
}

// kick wakes the sender out of an idle next wait so it can notice a
// dead connection discovered by the ack reader.
func (w *sendWindow) kick() {
	w.mu.Lock()
	w.kicked = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// ack records the server's durable offset and evicts window bytes no
// longer needed for replay (everything below acked-retain).
func (w *sendWindow) ack(n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ackLocked(n)
}

func (w *sendWindow) ackLocked(n int64) {
	if n <= w.acked {
		return
	}
	if n > w.end() {
		n = w.end()
	}
	w.acked = n
	if n > w.sent {
		w.sent = n
	}
	if cut := w.acked - int64(w.retain); cut > w.base {
		drop := cut - w.base
		w.buf = w.buf[:copy(w.buf, w.buf[drop:])]
		w.base = cut
	}
	w.cond.Broadcast()
}

// gapError reports a resume the window cannot cover: the server's
// durable offset lies below the retained history.
type gapError struct {
	durable, have int64
}

func (e *gapError) Error() string {
	return fmt.Sprintf("sink: cannot resume at durable offset %d: replay window starts at %d (gap of %d bytes)",
		e.durable, e.have, e.have-e.durable)
}

// rewind repositions the sender at the server's durable offset after a
// reconnect. A durable offset below the retained history is a
// *gapError (the caller declares the gap and degrades); one beyond the
// bytes ever produced is protocol corruption.
func (w *sendWindow) rewind(durable int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if durable < w.base {
		return &gapError{durable: durable, have: w.base}
	}
	if durable > w.end() {
		return fmt.Errorf("sink: server claims %d durable bytes, only %d were ever produced", durable, w.end())
	}
	w.sent = durable
	// The server's word overrides the old connection's acks in both
	// directions: a crash-recovered daemon may know less than we
	// thought (retained history covers the difference), a lost ack may
	// mean it knows more.
	w.acked = durable
	w.cond.Broadcast()
	return nil
}

// snapshot returns the current offsets (for stats and tests).
func (w *sendWindow) snapshot() (base, acked, sent, end int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base, w.acked, w.sent, w.end()
}

// beginSpill switches the stream into local-fallback mode: the whole
// retained window [base, end) is written to a fresh archive file at
// path and every later Write goes straight there. Returns the archive
// offset of the file's first byte. The caller records the reason; the
// window keeps accepting bytes so the measured program finishes its
// run with a lossless local copy.
func (w *sendWindow) beginSpill(path string, reason error) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	if w.spill != nil {
		return w.spillStart, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		w.failLocked(fmt.Errorf("sink: creating fallback dir: %w", err))
		return 0, w.failed
	}
	f, err := os.Create(path)
	if err != nil {
		w.failLocked(fmt.Errorf("sink: creating fallback archive: %w", err))
		return 0, w.failed
	}
	if _, err := f.Write(w.buf); err != nil {
		_ = f.Close()
		w.failLocked(fmt.Errorf("sink: fallback archive: %w", err))
		return 0, w.failed
	}
	w.spill = f
	w.spillPath = path
	w.spillStart = w.base
	w.spillReason = reason
	w.buf = nil
	w.cond.Broadcast()
	return w.spillStart, nil
}

// finishSpill syncs and closes the fallback archive, if one is active,
// returning its first write error. Called from Close after the stream
// drained.
func (w *sendWindow) finishSpill() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.spill == nil {
		return nil
	}
	err := w.spill.Sync()
	if cerr := w.spill.Close(); err == nil {
		err = cerr
	}
	w.spill = nil
	if err != nil {
		return fmt.Errorf("sink: sealing fallback archive: %w", err)
	}
	return nil
}

// failLatch kills the stream: the window is discarded and every waiter
// (producers in admit/Write, the sender in next) is released.
func (w *sendWindow) failLatch(err error) {
	w.mu.Lock()
	w.failLocked(err)
	w.mu.Unlock()
}

func (w *sendWindow) failLocked(err error) {
	if w.failed == nil {
		w.failed = err
	}
	w.buf = nil
	w.cond.Broadcast()
}

// closeStream marks the end of the stream: the sender drains what is
// buffered and finishes.
func (w *sendWindow) closeStream() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}
