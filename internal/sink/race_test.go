package sink

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/otf2"
	"repro/internal/region"
)

// TestConcurrentStreamsIntoOneDaemon drives N client streams into one
// in-process server at once, each client fed by several concurrent
// producer goroutines (one per thread id, the streaming recorder's
// contract). Run with -race (CI does). Each resulting shard must decode
// identically to a local recording of the same per-thread batches: the
// ingest shards by stream, and within a stream the archive writer keeps
// per-thread event order no matter how the producers interleave.
func TestConcurrentStreamsIntoOneDaemon(t *testing.T) {
	const (
		streams   = 8
		producers = 4 // threads per stream
		batches   = 30
		perBatch  = 10
	)
	srv, addr := startServer(t)

	reg := region.NewRegistry()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for sid := 0; sid < streams; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			// Distinct time bases per stream so shards are distinguishable.
			batchesByThread := synthBatches(reg, producers, batches, perBatch)
			cl, err := Dial(addr,
				WithStreamID(fmt.Sprintf("s%d", sid)),
				WithWriterOptions(otf2.WithChunkBytes(512)))
			if err != nil {
				errs <- err
				return
			}
			var pwg sync.WaitGroup
			for th := 0; th < producers; th++ {
				pwg.Add(1)
				go func(th int) {
					defer pwg.Done()
					for _, evs := range batchesByThread[th] {
						if err := cl.WriteEvents(th, evs); err != nil {
							errs <- fmt.Errorf("stream s%d thread %d: %w", sid, th, err)
							return
						}
					}
				}(th)
			}
			pwg.Wait()
			if err := cl.Close(); err != nil {
				errs <- fmt.Errorf("stream s%d close: %w", sid, err)
			}
		}(sid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	infos := srv.Streams()
	if len(infos) != streams {
		t.Fatalf("daemon saw %d streams, want %d", len(infos), streams)
	}

	// Every stream carried the same per-thread batches, so one local
	// reference recording covers them all.
	local := filepath.Join(t.TempDir(), "local.otf2")
	writeLocal(t, local, synthBatches(region.NewRegistry(), producers, batches, perBatch), otf2.WithChunkBytes(512))
	want := readTrace(t, local)

	for _, st := range infos {
		if !st.Complete || st.Err != "" || st.DroppedEvents != 0 {
			t.Fatalf("stream %s not cleanly sealed: %+v", st.ID, st)
		}
		got := readTrace(t, filepath.Join(srv.Dir(), st.File))
		tracesEqual(t, st.ID, want, got)
	}
}

// TestConcurrentDialsWhileServing hammers the server with short-lived
// streams from many goroutines at once — connection setup/teardown is
// the other shared-state path (-race covers the registration table).
func TestConcurrentDialsWhileServing(t *testing.T) {
	srv, addr := startServer(t)
	reg := region.NewRegistry()
	batchesByThread := synthBatches(reg, 1, 2, 5)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the clients collide on the same id on purpose.
			id := fmt.Sprintf("burst%d", i%8)
			cl, err := Dial(addr, WithStreamID(id))
			if err != nil {
				errs <- err
				return
			}
			for _, evs := range batchesByThread[0] {
				if err := cl.WriteEvents(0, evs); err != nil {
					errs <- err
					return
				}
			}
			if err := cl.Close(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	infos := srv.Streams()
	if len(infos) != 16 {
		t.Fatalf("daemon saw %d streams, want 16", len(infos))
	}
	files := map[string]bool{}
	for _, st := range infos {
		if !st.Complete {
			t.Fatalf("stream %s not sealed: %+v", st.ID, st)
		}
		if files[st.File] {
			t.Fatalf("two streams share shard file %s", st.File)
		}
		files[st.File] = true
	}
}
