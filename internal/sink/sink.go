// Package sink implements the multi-process measurement service: a
// network transport that carries already-encoded trace archives from
// instrumented processes to a central daemon, the way Score-P's
// measurement system funnels one OTF2 location group per rank into a
// shared experiment directory.
//
// The split of work follows the archive format's strengths. A Client is
// a trace.EventSink: events are encoded locally through the existing
// per-thread otf2.Writer path (concurrent, allocation-free in steady
// state) and the resulting archive byte stream is cut into frames and
// shipped over a unix or TCP socket by a background sender. The Server
// is a byte relay: it never decodes events, it appends each stream's
// frame payloads to its own shard file — so ingest of N streams shares
// no lock beyond registration, and a severed connection leaves exactly
// the archive prefix the sender got out, which the otf2 readers already
// salvage under the ErrTruncated contract.
//
// Version 2 of the wire protocol makes streams resumable: the server
// acknowledges the durable (flushed-to-shard) byte count, the client
// keeps a bounded replay window of recent archive bytes, and a severed
// connection is survived by reconnecting and replaying from the
// server's durable offset — producing a shard bit-identical to an
// undisturbed run whenever the window covers the loss. See the package
// doc of the repository root (doc.go, "Fault tolerance") for the
// byte-level specification; the constants below define the frame
// alphabet.
//
// # Wire protocol
//
// All integers are unsigned LEB128 varints ("uvarint") unless noted.
// One connection carries one attempt at one stream. The client speaks
// first:
//
//	session(v1)  := handshake1 frame* eos
//	session(v2)  := handshake2 frame* (eos | gap)
//	handshake1   := "SPSINK\x00" 0x01 uvarint(len(id)) id
//	handshake2   := "SPSINK\x00" 0x02 uvarint(len(id)) id uvarint(token)
//	frame        := 'F' uvarint(n) payload[n]     1 <= n <= 4 MiB
//	eos          := 'Z' uvarint(droppedEvents)
//	gap          := 'G' uvarint(gapBytes)          v2, client -> server
//
// The stream id names the shard ("trace-<id>.otf2"); it is 1..128
// bytes of [A-Za-z0-9._-]. The token is a client-chosen random 64-bit
// value identifying the stream across connections: a v2 reconnect
// presenting the same (id, token) resumes the stream, a different
// token is a distinct stream and the id is uniquified. The
// concatenated frame payloads are exactly one spotf2 archive byte
// stream (see package otf2); on a resumed connection the payload
// continues at the durable offset the server announced.
//
// The v2 server speaks immediately after a valid handshake, and again
// as ingest progresses:
//
//	hello := 'H' status(1 byte) uvarint(durable)   0 = new, 1 = resumed
//	ack   := 'K' uvarint(durable)
//
// durable counts archive bytes flushed to the shard file; the client
// must (re)send payload from exactly that offset and may discard
// replay history below it. 'K' acks are sent after flushes, at least
// every DefaultAckIntervalBytes of payload. A v1 session has no hello
// and no 'K' acks.
//
// After eos the server flushes and syncs the shard and answers one
// final ack, which the client's Close waits for so daemon-side write
// failures surface at the producer:
//
//	final := 'A' status(1 byte)    0 = sealed, 1 = failed, 2 = sealed after gap
//
// A v2 server may also send the final ack with status 1 mid-stream,
// when its shard write failed (e.g. disk full): the stream is over,
// the shard keeps the flushed prefix, and the client reacts without
// waiting for its own end of stream. The gap frame is the client's
// declaration that it cannot resume (its replay window no longer
// covers the server's durable offset): the server seals the shard at
// the durable prefix, records the counted gap, answers status 2 and
// the stream ends — archive bytes are never appended after a hole,
// because timestamp deltas chain across chunks and a hole would
// silently corrupt every later time.
//
// A connection that dies before eos leaves the shard at its flushed
// prefix; under v2 the stream stays resumable until the server shuts
// down. Unknown frame kinds are a protocol error, not skipped — unlike
// the archive format there is no forward-compatibility promise inside
// one protocol version. A v2 server accepts v1 sessions unchanged; a
// v2 client requires a v2 server.
package sink

import (
	"fmt"
	"strings"
)

// Protocol constants. Magic deliberately differs from the archive magic
// ("SPOTF2\x00"): connecting a sink client to a file, or feeding an
// archive to the daemon port, fails the handshake instead of producing
// a half-plausible byte soup.
const (
	// Magic opens the client handshake.
	Magic = "SPSINK\x00"
	// ProtocolV1 is the original fire-and-forget protocol: no resume,
	// no durable acks.
	ProtocolV1 = 1
	// ProtocolV2 adds the stream token, the server hello, durable-offset
	// acks and the gap frame — resumable streams.
	ProtocolV2 = 2
	// ProtocolVersion is the version this build speaks by default.
	ProtocolVersion = ProtocolV2

	frameData  byte = 'F'
	frameEOS   byte = 'Z'
	frameGap   byte = 'G'
	frameHello byte = 'H'
	frameAck   byte = 'K'
	ackByte    byte = 'A'

	ackOK        byte = 0
	ackFailed    byte = 1
	ackGapSealed byte = 2

	helloNew     byte = 0
	helloResumed byte = 1

	// MaxStreamIDLen bounds the handshake's stream id.
	MaxStreamIDLen = 128
	// MaxFramePayload bounds one data frame's payload. The client
	// splits larger writes; the server rejects larger declarations
	// before allocating or copying anything.
	MaxFramePayload = 4 << 20
)

// ValidStreamID reports whether id is a legal wire stream id: 1..128
// bytes of letters, digits, '.', '_' and '-'. The charset keeps the id
// safe to embed in a shard file name on every platform (no separators,
// no shell metacharacters) and cannot spell a path traversal.
func ValidStreamID(id string) bool {
	if len(id) == 0 || len(id) > MaxStreamIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// SplitAddr parses a sink address into a net.Dial/net.Listen pair.
// Accepted forms:
//
//	unix:///path/to.sock  (also unix:/path/to.sock)
//	tcp://host:port
//	host:port             (bare: tcp)
//	/path/to.sock         (bare absolute path: unix)
func SplitAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		p := strings.TrimPrefix(addr, "unix:")
		p = strings.TrimPrefix(p, "//")
		if p == "" {
			return "", "", fmt.Errorf("sink: address %q names no socket path", addr)
		}
		return "unix", p, nil
	case strings.HasPrefix(addr, "tcp:"):
		p := strings.TrimPrefix(addr, "tcp:")
		p = strings.TrimPrefix(p, "//")
		if p == "" {
			return "", "", fmt.Errorf("sink: address %q names no host:port", addr)
		}
		return "tcp", p, nil
	case strings.Contains(addr, "://"):
		return "", "", fmt.Errorf("sink: unsupported scheme in address %q (want unix:// or tcp://)", addr)
	case strings.HasPrefix(addr, "/") || strings.HasPrefix(addr, "./"):
		return "unix", addr, nil
	case strings.Contains(addr, ":"):
		return "tcp", addr, nil
	case addr == "":
		return "", "", fmt.Errorf("sink: empty address")
	default:
		return "", "", fmt.Errorf("sink: cannot tell unix path from host in address %q (use unix:// or tcp://)", addr)
	}
}
