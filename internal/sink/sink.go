// Package sink implements the multi-process measurement service: a
// network transport that carries already-encoded trace archives from
// instrumented processes to a central daemon, the way Score-P's
// measurement system funnels one OTF2 location group per rank into a
// shared experiment directory.
//
// The split of work follows the archive format's strengths. A Client is
// a trace.EventSink: events are encoded locally through the existing
// per-thread otf2.Writer path (concurrent, allocation-free in steady
// state) and the resulting archive byte stream is cut into frames and
// shipped over a unix or TCP socket by a background sender. The Server
// is a byte relay: it never decodes events, it appends each stream's
// frame payloads to its own shard file — so ingest of N streams shares
// no lock beyond registration, and a severed connection leaves exactly
// the archive prefix the sender got out, which the otf2 readers already
// salvage under the ErrTruncated contract.
//
// # Wire protocol (version 1)
//
// All integers are unsigned LEB128 varints ("uvarint") unless noted.
// One connection carries one stream. The client speaks first:
//
//	session   := handshake frame* eos
//	handshake := "SPSINK\x00" version(1 byte, = 0x01)
//	             uvarint(len(id)) id
//	frame     := 'F' uvarint(n) payload[n]     1 <= n <= 4 MiB
//	eos       := 'Z' uvarint(droppedEvents)
//
// The stream id names the shard ("trace-<id>.otf2"); it is 1..128
// bytes of [A-Za-z0-9._-]. The concatenated frame payloads are exactly
// one spotf2 archive byte stream (see package otf2). After eos the
// server flushes and syncs the shard and answers one ack, which the
// client's Close waits for so daemon-side write failures surface at the
// producer:
//
//	ack := 'A' status(1 byte)                  0 = shard sealed
//
// A connection that dies before eos leaves a truncated shard; the
// server keeps every intact byte it received (the salvageable-prefix
// contract). Unknown frame kinds are a protocol error, not skipped —
// unlike the archive format there is no forward-compatibility promise
// inside one protocol version.
package sink

import (
	"fmt"
	"strings"
)

// Protocol constants. Magic deliberately differs from the archive magic
// ("SPOTF2\x00"): connecting a sink client to a file, or feeding an
// archive to the daemon port, fails the handshake instead of producing
// a half-plausible byte soup.
const (
	// Magic opens the client handshake.
	Magic = "SPSINK\x00"
	// ProtocolVersion is the wire protocol version byte.
	ProtocolVersion = 1

	frameData byte = 'F'
	frameEOS  byte = 'Z'
	ackByte   byte = 'A'
	ackOK     byte = 0
	ackFailed byte = 1

	// MaxStreamIDLen bounds the handshake's stream id.
	MaxStreamIDLen = 128
	// MaxFramePayload bounds one data frame's payload. The client
	// splits larger writes; the server rejects larger declarations
	// before allocating or copying anything.
	MaxFramePayload = 4 << 20
)

// ValidStreamID reports whether id is a legal wire stream id: 1..128
// bytes of letters, digits, '.', '_' and '-'. The charset keeps the id
// safe to embed in a shard file name on every platform (no separators,
// no shell metacharacters) and cannot spell a path traversal.
func ValidStreamID(id string) bool {
	if len(id) == 0 || len(id) > MaxStreamIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// SplitAddr parses a sink address into a net.Dial/net.Listen pair.
// Accepted forms:
//
//	unix:///path/to.sock  (also unix:/path/to.sock)
//	tcp://host:port
//	host:port             (bare: tcp)
//	/path/to.sock         (bare absolute path: unix)
func SplitAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		p := strings.TrimPrefix(addr, "unix:")
		p = strings.TrimPrefix(p, "//")
		if p == "" {
			return "", "", fmt.Errorf("sink: address %q names no socket path", addr)
		}
		return "unix", p, nil
	case strings.HasPrefix(addr, "tcp:"):
		p := strings.TrimPrefix(addr, "tcp:")
		p = strings.TrimPrefix(p, "//")
		if p == "" {
			return "", "", fmt.Errorf("sink: address %q names no host:port", addr)
		}
		return "tcp", p, nil
	case strings.Contains(addr, "://"):
		return "", "", fmt.Errorf("sink: unsupported scheme in address %q (want unix:// or tcp://)", addr)
	case strings.HasPrefix(addr, "/") || strings.HasPrefix(addr, "./"):
		return "unix", addr, nil
	case strings.Contains(addr, ":"):
		return "tcp", addr, nil
	case addr == "":
		return "", "", fmt.Errorf("sink: empty address")
	default:
		return "", "", fmt.Errorf("sink: cannot tell unix path from host in address %q (use unix:// or tcp://)", addr)
	}
}
