package sink

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

// synthBatches builds a deterministic per-thread event workload: for
// each thread, batches of task-begin/end pairs with strictly increasing
// times. The same batches written to any sink decode to the same trace.
func synthBatches(reg *region.Registry, threads, batches, perBatch int) map[int][][]trace.Event {
	task := reg.Register("work", "sink_test.go", 1, region.Task)
	out := make(map[int][][]trace.Event, threads)
	for th := 0; th < threads; th++ {
		var bs [][]trace.Event
		t := int64(1000 * (th + 1))
		for b := 0; b < batches; b++ {
			var evs []trace.Event
			for i := 0; i < perBatch; i++ {
				id := uint64(th*1_000_000 + b*1000 + i)
				evs = append(evs, trace.Event{Time: t, Type: trace.EvTaskBegin, Region: task, TaskID: id})
				t += 7
				evs = append(evs, trace.Event{Time: t, Type: trace.EvTaskEnd, Region: task, TaskID: id})
				t += 3
			}
			bs = append(bs, evs)
		}
		out[th] = bs
	}
	return out
}

// writeLocal records the same batches through a plain file-backed
// archive writer — the reference a streamed shard must match.
func writeLocal(t *testing.T, path string, batches map[int][][]trace.Event, opts ...otf2.WriterOption) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := otf2.NewWriter(f, opts...)
	for th := 0; th < len(batches); th++ {
		for _, evs := range batches[th] {
			if err := w.WriteEvents(th, evs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// readTrace decodes an archive into a fresh registry.
func readTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	tr, err := otf2.ReadFile(path, region.NewRegistry(), 1)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return tr
}

// tracesEqual compares two traces structurally (regions by descriptor,
// not pointer — each read interns into its own registry).
func tracesEqual(t *testing.T, label string, want, got *trace.Trace) {
	t.Helper()
	if len(got.Threads) != len(want.Threads) {
		t.Fatalf("%s: thread count = %d, want %d", label, len(got.Threads), len(want.Threads))
	}
	for tid, wevs := range want.Threads {
		gevs := got.Threads[tid]
		if len(gevs) != len(wevs) {
			t.Fatalf("%s: thread %d: %d events, want %d", label, tid, len(gevs), len(wevs))
		}
		for i := range wevs {
			w, g := wevs[i], gevs[i]
			if w.Time != g.Time || w.Type != g.Type || w.TaskID != g.TaskID {
				t.Fatalf("%s: thread %d event %d = %+v, want %+v", label, tid, i, g, w)
			}
			if (w.Region == nil) != (g.Region == nil) {
				t.Fatalf("%s: thread %d event %d region nilness differs", label, tid, i)
			}
			if w.Region != nil && (w.Region.Name != g.Region.Name || w.Region.Type != g.Region.Type) {
				t.Fatalf("%s: thread %d event %d region = %+v, want %+v", label, tid, i, g.Region, w.Region)
			}
		}
	}
}

// startServer listens on a unix socket in a temp dir and serves until
// the test ends.
func startServer(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := NewServer(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return srv, "unix://" + sock
}

// TestRoundTripUnixSocket streams a workload over a unix socket and
// checks the daemon's shard decodes identically to a local recording of
// the same batches.
func TestRoundTripUnixSocket(t *testing.T) {
	srv, addr := startServer(t)
	reg := region.NewRegistry()
	batches := synthBatches(reg, 3, 4, 25)

	cl, err := Dial(addr, WithStreamID("w1"), WithWriterOptions(otf2.WithChunkBytes(512)))
	if err != nil {
		t.Fatal(err)
	}
	for th := 0; th < len(batches); th++ {
		for _, evs := range batches[th] {
			if err := cl.WriteEvents(th, evs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	infos := srv.Streams()
	if len(infos) != 1 {
		t.Fatalf("streams = %d, want 1", len(infos))
	}
	st := infos[0]
	if st.ID != "w1" || st.File != "trace-w1.otf2" || !st.Complete || st.DroppedEvents != 0 {
		t.Fatalf("stream info = %+v", st)
	}
	if st.Bytes == 0 || st.Frames == 0 {
		t.Fatalf("empty ingest: %+v", st)
	}

	local := filepath.Join(t.TempDir(), "local.otf2")
	writeLocal(t, local, batches, otf2.WithChunkBytes(512))
	tracesEqual(t, "shard", readTrace(t, local), readTrace(t, filepath.Join(srv.Dir(), st.File)))

	// A cleanly sealed shard carries the footer index.
	f, err := os.Open(filepath.Join(srv.Dir(), st.File))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := otf2.ReadIndex(f); err != nil {
		t.Fatalf("sealed shard has no index: %v", err)
	}
}

// TestDialRetryWhileServerStarts dials first, starts the listener after
// a delay, and expects the lazy connect with backoff to succeed.
func TestDialRetryWhileServerStarts(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "late.sock")
	cl, err := Dial("unix://"+sock, WithStreamID("late"), WithDialRetry(20, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	reg := region.NewRegistry()
	batches := synthBatches(reg, 1, 1, 5)
	if err := cl.WriteEvents(0, batches[0][0]); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // let a few dial attempts fail
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if infos := srv.Streams(); len(infos) != 1 || !infos[0].Complete {
		t.Fatalf("streams = %+v", infos)
	}
}

// TestStreamIDCollision checks two clients announcing the same id get
// distinct shards.
func TestStreamIDCollision(t *testing.T) {
	srv, addr := startServer(t)
	reg := region.NewRegistry()
	batches := synthBatches(reg, 1, 1, 3)

	for i := 0; i < 2; i++ {
		cl, err := Dial(addr, WithStreamID("bots"))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteEvents(0, batches[0][0]); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, st := range srv.Streams() {
		got[st.File] = st.Complete
	}
	if !got["trace-bots.otf2"] || !got["trace-bots.2.otf2"] {
		t.Fatalf("shards = %v, want trace-bots.otf2 and trace-bots.2.otf2", got)
	}
}

// TestHandshakeRejection feeds malformed handshakes and checks the
// server rejects them without registering a stream.
func TestHandshakeRejection(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"bad magic", []byte("NOTSINK\x00\x01")},
		{"bad version", append([]byte(Magic), 99)},
		{"zero id", append(append([]byte(Magic), ProtocolVersion), 0)},
		{"oversize id", func() []byte {
			b := append([]byte(Magic), ProtocolVersion)
			return binary.AppendUvarint(b, MaxStreamIDLen+1)
		}()},
		{"bad id chars", func() []byte {
			b := append([]byte(Magic), ProtocolVersion)
			b = binary.AppendUvarint(b, 4)
			return append(b, "a b/"...)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			c1, c2 := net.Pipe()
			go func() {
				c1.Write(tc.raw)
				c1.Close()
			}()
			if err := srv.ServeConn(c2); err == nil {
				t.Fatal("malformed handshake accepted")
			}
			if n := len(srv.Streams()); n != 0 {
				t.Fatalf("registered %d streams from a rejected handshake", n)
			}
			if srv.Err() != nil {
				t.Fatalf("client protocol garbage latched a server error: %v", srv.Err())
			}
		})
	}
}

// TestInvalidClientConfig checks eager validation in Dial.
func TestInvalidClientConfig(t *testing.T) {
	if _, err := Dial("http://nope"); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := Dial("unix:///tmp/x.sock", WithStreamID("has space")); err == nil {
		t.Fatal("invalid stream id accepted")
	}
	if _, err := Dial("unix:///tmp/x.sock", WithStreamID(strings.Repeat("x", MaxStreamIDLen+1))); err == nil {
		t.Fatal("oversize stream id accepted")
	}
}

// TestSplitAddr covers the accepted address spellings.
func TestSplitAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
		wantErr              bool
	}{
		{"unix:///tmp/d.sock", "unix", "/tmp/d.sock", false},
		{"unix:rel.sock", "unix", "rel.sock", false},
		{"tcp://localhost:7007", "tcp", "localhost:7007", false},
		{"localhost:7007", "tcp", "localhost:7007", false},
		{"/var/run/d.sock", "unix", "/var/run/d.sock", false},
		{"./d.sock", "unix", "./d.sock", false},
		{"", "", "", true},
		{"ftp://x", "", "", true},
		{"justahost", "", "", true},
	}
	for _, tc := range cases {
		network, address, err := SplitAddr(tc.in)
		if (err != nil) != tc.wantErr {
			t.Fatalf("SplitAddr(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
		if err == nil && (network != tc.network || address != tc.address) {
			t.Fatalf("SplitAddr(%q) = %q %q, want %q %q", tc.in, network, address, tc.network, tc.address)
		}
	}
}

// TestDropPolicy fills the send buffer against a stalled reader and
// checks dropped batches are counted, reported to the daemon, and leave
// a valid (just sparser) archive.
func TestDropPolicy(t *testing.T) {
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	// Tiny buffer + tiny chunks: encoded bytes reach the framer fast.
	cl, err := NewClientConn(c1,
		WithStreamID("lossy"),
		WithBufferBytes(2048),
		WithBackpressure(BackpressureDrop),
		WithWriterOptions(otf2.WithChunkBytes(256)))
	if err != nil {
		t.Fatal(err)
	}

	reg := region.NewRegistry()
	task := reg.Register("work", "sink_test.go", 1, region.Task)
	var written, total int64
	tm := int64(0)
	// No reader on c2 yet: the sender blocks on the handshake write,
	// the framer fills, and the drop policy starts discarding batches.
	for i := 0; i < 10_000 && cl.Dropped() == 0; i++ {
		evs := []trace.Event{
			{Time: tm, Type: trace.EvTaskBegin, Region: task, TaskID: uint64(i)},
			{Time: tm + 1, Type: trace.EvTaskEnd, Region: task, TaskID: uint64(i)},
		}
		tm += 2
		if err := cl.WriteEvents(0, evs); err != nil {
			t.Fatal(err)
		}
		total += 2
	}
	if cl.Dropped() == 0 {
		t.Fatal("drop policy never dropped against a stalled reader")
	}
	written = total - cl.Dropped()

	// Now drain: serve the other end and finish the stream.
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeConn(c2) }()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	infos := srv.Streams()
	if len(infos) != 1 || !infos[0].Complete {
		t.Fatalf("streams = %+v", infos)
	}
	if infos[0].DroppedEvents != cl.Dropped() {
		t.Fatalf("daemon saw %d dropped events, client counted %d", infos[0].DroppedEvents, cl.Dropped())
	}
	// The shard is a valid, complete archive — the drops are holes in
	// the recording, not damage to the byte stream.
	tr := readTrace(t, filepath.Join(srv.Dir(), infos[0].File))
	if n := int64(tr.NumEvents()); n != written {
		t.Fatalf("shard holds %d events, want %d (total %d - dropped %d)", n, written, total, cl.Dropped())
	}
}

// TestBlockPolicyDeliversAll pushes a workload much larger than the
// send buffer through a deliberately slow reader and checks nothing is
// lost.
func TestBlockPolicyDeliversAll(t *testing.T) {
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	cl, err := NewClientConn(slowConn{c1},
		WithStreamID("patient"),
		WithBufferBytes(1024),
		WithWriterOptions(otf2.WithChunkBytes(128)))
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeConn(c2) }()

	reg := region.NewRegistry()
	batches := synthBatches(reg, 2, 20, 25)
	var total int
	for th := 0; th < len(batches); th++ {
		for _, evs := range batches[th] {
			if err := cl.WriteEvents(th, evs); err != nil {
				t.Fatal(err)
			}
			total += len(evs)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if cl.Dropped() != 0 {
		t.Fatalf("block policy dropped %d events", cl.Dropped())
	}
	tr := readTrace(t, filepath.Join(srv.Dir(), "trace-patient.otf2"))
	if tr.NumEvents() != total {
		t.Fatalf("delivered %d events, want %d", tr.NumEvents(), total)
	}
}

// slowConn throttles writes to small slices, forcing the sender to
// stay behind the producers.
type slowConn struct{ net.Conn }

func (c slowConn) Write(p []byte) (int, error) {
	n := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > 128 {
			chunk = chunk[:128]
		}
		m, err := c.Conn.Write(chunk)
		n += m
		if err != nil {
			return n, err
		}
		p = p[len(chunk):]
	}
	return n, nil
}

// TestWriteAfterClose checks the post-Close contract.
func TestWriteAfterClose(t *testing.T) {
	srv, addr := startServer(t)
	cl, err := Dial(addr, WithStreamID("done"))
	if err != nil {
		t.Fatal(err)
	}
	reg := region.NewRegistry()
	batches := synthBatches(reg, 1, 1, 2)
	if err := cl.WriteEvents(0, batches[0][0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteEvents(0, batches[0][0]); err == nil {
		t.Fatal("WriteEvents after Close succeeded")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
	_ = srv
}

// TestValidStreamID pins the id charset.
func TestValidStreamID(t *testing.T) {
	for id, want := range map[string]bool{
		"p123":                   true,
		"node-7.rank_3":          true,
		"":                       false,
		"a b":                    false,
		"a/b":                    false,
		"ü":                      false,
		strings.Repeat("x", 128): true,
		strings.Repeat("x", 129): false,
	} {
		if got := ValidStreamID(id); got != want {
			t.Errorf("ValidStreamID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestRawProtocolBytes speaks both wire protocol versions by hand —
// pinning the byte-level spec doc.go promises (a reimplementation must
// be able to produce exactly this).
func TestRawProtocolBytes(t *testing.T) {
	// Build a tiny valid archive out of band.
	reg := region.NewRegistry()
	batches := synthBatches(reg, 1, 1, 2)
	local := filepath.Join(t.TempDir(), "payload.otf2")
	writeLocal(t, local, batches)
	payload, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("v1", func(t *testing.T) {
		srv, err := NewServer(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := net.Pipe()
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.ServeConn(c2) }()

		bw := bufio.NewWriter(c1)
		bw.WriteString(Magic)
		bw.WriteByte(ProtocolV1)
		var tmp [binary.MaxVarintLen64]byte
		id := "manual"
		bw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(id)))])
		bw.WriteString(id)
		// Ship the archive in two frames, split mid-stream.
		for _, part := range [][]byte{payload[:3], payload[3:]} {
			bw.WriteByte(frameData)
			bw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(part)))])
			bw.Write(part)
		}
		bw.WriteByte(frameEOS)
		bw.Write(tmp[:binary.PutUvarint(tmp[:], 0)])
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		var ack [2]byte
		if _, err := io.ReadFull(c1, ack[:]); err != nil {
			t.Fatal(err)
		}
		if ack[0] != ackByte || ack[1] != ackOK {
			t.Fatalf("ack = %v", ack)
		}
		c1.Close()
		if err := <-serveDone; err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(srv.Dir(), "trace-manual.otf2"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(payload) {
			t.Fatalf("relayed shard differs from payload (%d vs %d bytes)", len(got), len(payload))
		}
	})

	t.Run("v2", func(t *testing.T) {
		srv, err := NewServer(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := net.Pipe()
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.ServeConn(c2) }()

		var tmp [binary.MaxVarintLen64]byte
		bw := bufio.NewWriter(c1)
		bw.WriteString(Magic)
		bw.WriteByte(ProtocolV2)
		id := "manual2"
		bw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(id)))])
		bw.WriteString(id)
		bw.Write(tmp[:binary.PutUvarint(tmp[:], 0xfeed)]) // stream token
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		// The v2 server answers a fresh stream with hello: 'H', status
		// new, durable offset 0.
		cr := bufio.NewReader(c1)
		var hello [2]byte
		if _, err := io.ReadFull(cr, hello[:]); err != nil {
			t.Fatal(err)
		}
		if hello[0] != frameHello || hello[1] != helloNew {
			t.Fatalf("hello = %v", hello)
		}
		if durable, err := binary.ReadUvarint(cr); err != nil || durable != 0 {
			t.Fatalf("hello durable = (%d, %v), want (0, nil)", durable, err)
		}
		for _, part := range [][]byte{payload[:3], payload[3:]} {
			bw.WriteByte(frameData)
			bw.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(part)))])
			bw.Write(part)
		}
		bw.WriteByte(frameEOS)
		bw.Write(tmp[:binary.PutUvarint(tmp[:], 0)])
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		var ack [2]byte
		if _, err := io.ReadFull(cr, ack[:]); err != nil {
			t.Fatal(err)
		}
		if ack[0] != ackByte || ack[1] != ackOK {
			t.Fatalf("ack = %v", ack)
		}
		c1.Close()
		if err := <-serveDone; err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(srv.Dir(), "trace-manual2.otf2"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(payload) {
			t.Fatalf("relayed shard differs from payload (%d vs %d bytes)", len(got), len(payload))
		}
	})
}
