package sink

import (
	"bufio"
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/otf2"
	"repro/internal/trace"
)

// BackpressurePolicy selects what a Client does when its send buffer is
// full because the daemon (or the network) is slower than the producer.
type BackpressurePolicy int

const (
	// BackpressureBlock stalls the recording thread until the sender
	// drains buffer space — no event is lost, the measured program pays
	// the sink's latency (the default, matching a slow local disk).
	BackpressureBlock BackpressurePolicy = iota
	// BackpressureDrop discards whole event batches while the buffer is
	// over its bound and counts them (Client.Dropped; the count also
	// travels in the end-of-stream frame). The drop happens before
	// encoding — per-thread timestamp deltas are computed at encode
	// time, so the archive stream stays valid, it just has holes in the
	// recording.
	BackpressureDrop
)

// Client defaults.
const (
	// DefaultBufferBytes bounds the unacked archive bytes buffered
	// between the encoding threads and the background sender — the
	// backpressure debt a slow or absent daemon can impose.
	DefaultBufferBytes = 1 << 20
	// DefaultDialAttempts and DefaultDialBackoff shape the lazy-connect
	// retry loop: backoff doubles per attempt with jitter (≈50ms,
	// 100ms, ... — about 1.5s in total), covering the "daemon still
	// starting" race without stalling a doomed run for long.
	DefaultDialAttempts = 5
	DefaultDialBackoff  = 50 * time.Millisecond
	// DefaultDialBudget caps the total elapsed time of one connect
	// loop, whatever the attempt count and backoff say.
	DefaultDialBudget = 10 * time.Second
	// DefaultAckTimeout bounds how long Close waits for the daemon's
	// seal acknowledgment.
	DefaultAckTimeout = 10 * time.Second
	// DefaultReconnectAttempts, DefaultReconnectBackoff and
	// DefaultReconnectBudget shape the per-outage reconnect loop of a
	// v2 stream: after a mid-stream sever the sender redials with
	// jittered doubling backoff until one of the three budgets runs
	// out, then degrades (fallback archive or latched error).
	DefaultReconnectAttempts = 8
	DefaultReconnectBackoff  = 100 * time.Millisecond
	DefaultReconnectBudget   = 20 * time.Second
	// DefaultReplayBytes is the acked history the client retains below
	// the server's durable offset. It must cover the server's flush
	// lag plus one archive chunk, so a daemon crash that recovers to a
	// chunk boundary can still be resumed bit-identically.
	DefaultReplayBytes = 4 << 20
)

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	streamID          string
	token             uint64
	protocol          byte
	bufBytes          int
	replayBytes       int
	policy            BackpressurePolicy
	dialAttempts      int
	dialBackoff       time.Duration
	dialBudget        time.Duration
	reconnectAttempts int
	reconnectBackoff  time.Duration
	reconnectBudget   time.Duration
	ackTimeout        time.Duration
	fallbackPath      string
	ctx               context.Context
	writerOpts        []otf2.WriterOption
	dial              func() (net.Conn, error)
}

// WithStreamID names the client's stream — and thereby its shard file,
// "trace-<id>.otf2" — in the daemon's experiment. The default is
// "p<pid>", unique per host; the daemon additionally uniquifies
// colliding ids. The id must satisfy ValidStreamID.
func WithStreamID(id string) ClientOption {
	return func(c *clientConfig) { c.streamID = id }
}

// WithStreamToken fixes the stream token a v2 client presents in its
// handshake (default: random). The token identifies the stream across
// reconnects; tests fix it to exercise resume determinism.
func WithStreamToken(token uint64) ClientOption {
	return func(c *clientConfig) { c.token = token }
}

// WithProtocolVersion pins the wire protocol the client speaks:
// ProtocolV2 (the default — resumable streams, requires a v2 daemon)
// or ProtocolV1 (fire-and-forget, talks to old daemons; reconnection
// is disabled because v1 cannot resume).
func WithProtocolVersion(v int) ClientOption {
	return func(c *clientConfig) { c.protocol = byte(v) }
}

// WithBufferBytes bounds the unacked archive bytes buffered between
// the encoding threads and the background sender (default
// DefaultBufferBytes).
func WithBufferBytes(n int) ClientOption {
	return func(c *clientConfig) {
		if n > 0 {
			c.bufBytes = n
		}
	}
}

// WithReplayWindow sets how many server-acked bytes the client retains
// for crash-recovery replay (default DefaultReplayBytes). Zero retains
// nothing: a severed connection is still resumable, but a daemon crash
// that loses flushed-but-unsealed bytes becomes an explicit gap.
func WithReplayWindow(n int) ClientOption {
	return func(c *clientConfig) {
		if n >= 0 {
			c.replayBytes = n
		}
	}
}

// WithBackpressure selects the full-buffer policy (default
// BackpressureBlock).
func WithBackpressure(p BackpressurePolicy) ClientOption {
	return func(c *clientConfig) { c.policy = p }
}

// WithDialRetry shapes the connect retry loop: up to attempts dials,
// sleeping a jittered backoff (doubling) between them. attempts <= 1
// means a single attempt.
func WithDialRetry(attempts int, backoff time.Duration) ClientOption {
	return func(c *clientConfig) {
		if attempts >= 1 {
			c.dialAttempts = attempts
		}
		if backoff > 0 {
			c.dialBackoff = backoff
		}
	}
}

// WithDialBudget caps the total elapsed time of the initial connect
// loop regardless of attempts and backoff (default DefaultDialBudget;
// <= 0 removes the cap).
func WithDialBudget(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.dialBudget = d }
}

// WithReconnect shapes the per-outage reconnect loop of a v2 stream:
// up to attempts redials per outage, jittered doubling backoff, and a
// total elapsed budget per outage. attempts <= 0 disables reconnection
// entirely — a severed connection is then terminal, as under v1.
func WithReconnect(attempts int, backoff, budget time.Duration) ClientOption {
	return func(c *clientConfig) {
		c.reconnectAttempts = attempts
		if backoff > 0 {
			c.reconnectBackoff = backoff
		}
		c.reconnectBudget = budget
	}
}

// WithContext attaches a context to the client's connect and reconnect
// loops: cancellation aborts backoff sleeps and pending attempts
// immediately (the stream then degrades like any other exhausted
// budget).
func WithContext(ctx context.Context) ClientOption {
	return func(c *clientConfig) { c.ctx = ctx }
}

// WithFallbackArchive names a local archive file the client spills to
// when the remote stream is lost for good — dial or reconnect budget
// exhausted, an unresumable gap, or a daemon-reported ingest failure.
// The spill is lossless from the archive offset Fallback reports: the
// retained window is written first, then recording continues into the
// file, so offset 0 (the common case) is a complete standalone
// archive. Empty (the default) disables spilling: terminal transport
// failures latch Err instead.
func WithFallbackArchive(path string) ClientOption {
	return func(c *clientConfig) { c.fallbackPath = path }
}

// WithAckTimeout bounds how long Close waits for the daemon's seal
// acknowledgment (<= 0: wait forever).
func WithAckTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.ackTimeout = d }
}

// WithWriterOptions passes options (compression, chunk size, format
// version) to the client's embedded archive writer — compressing the
// event chunks before framing is the natural way to trade CPU for
// network bandwidth on a TCP sink.
func WithWriterOptions(opts ...otf2.WriterOption) ClientOption {
	return func(c *clientConfig) { c.writerOpts = append(c.writerOpts, opts...) }
}

// Client streams one process's event trace to a measurement daemon. It
// implements trace.EventSink: recording threads encode their event
// batches concurrently through the embedded otf2.Writer (the same
// per-thread hot path a file sink uses) into a bounded window that a
// single background goroutine drains to the connection. The connection
// is established lazily by that sender, with retry/backoff, so
// constructing a Client never blocks the measured program's start.
//
// Under protocol v2 the window doubles as a replay buffer: a severed
// connection is survived by reconnect (jittered backoff, per-outage
// attempt and elapsed budgets) and byte-exact replay from the server's
// durable offset. Only when the stream is lost for good — budgets
// exhausted, an unresumable gap, a daemon-side ingest failure — does
// the client degrade: to a lossless local fallback archive when
// WithFallbackArchive is set, else by latching the error (Err) and
// unblocking all waiting recording threads, exactly like a failing
// local disk under the streaming recorder's contract.
type Client struct {
	cfg clientConfig
	win *sendWindow
	w   *otf2.Writer

	err     atomic.Pointer[error]
	dropped atomic.Int64

	resumes       atomic.Int64
	gapBytes      atomic.Int64
	fellBack      atomic.Bool
	fallbackStart atomic.Int64
	fallbackWhy   atomic.Pointer[error]

	done      chan struct{} // closed when the sender goroutine exits
	closeOnce sync.Once
	closeErr  error
}

// interface check: the client is a drop-in streaming-recorder sink.
var _ trace.EventSink = (*Client)(nil)

// Dial creates a Client streaming to the daemon at addr (see SplitAddr
// for accepted forms). The error reports a malformed address or stream
// id; the connection itself is established lazily by the background
// sender, so a daemon that is still starting is retried, not an error.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	network, address, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(func() (net.Conn, error) {
		return net.DialTimeout(network, address, 5*time.Second)
	}, opts...)
}

// NewClient creates a Client that obtains every connection — the
// initial one and reconnects — from dial. This is the seam tests and
// embedders use to interpose fault injection or custom transports.
func NewClient(dial func() (net.Conn, error), opts ...ClientOption) (*Client, error) {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.dial = dial
	return newClient(cfg)
}

// NewClientConn creates a Client streaming over an existing connection
// (tests drive a Server directly through net.Pipe this way). The Client
// takes ownership of conn and closes it; since the connection cannot
// be re-established, reconnection is disabled.
func NewClientConn(conn net.Conn, opts ...ClientOption) (*Client, error) {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.dialAttempts = 1
	cfg.reconnectAttempts = 0
	cfg.dial = func() (net.Conn, error) { return conn, nil }
	return newClient(cfg)
}

func defaultClientConfig() clientConfig {
	return clientConfig{
		streamID:          fmt.Sprintf("p%d", os.Getpid()),
		protocol:          ProtocolVersion,
		bufBytes:          DefaultBufferBytes,
		replayBytes:       DefaultReplayBytes,
		dialAttempts:      DefaultDialAttempts,
		dialBackoff:       DefaultDialBackoff,
		dialBudget:        DefaultDialBudget,
		reconnectAttempts: DefaultReconnectAttempts,
		reconnectBackoff:  DefaultReconnectBackoff,
		reconnectBudget:   DefaultReconnectBudget,
		ackTimeout:        DefaultAckTimeout,
	}
}

func newClient(cfg clientConfig) (*Client, error) {
	if !ValidStreamID(cfg.streamID) {
		return nil, fmt.Errorf("sink: invalid stream id %q (want 1..%d bytes of [A-Za-z0-9._-])",
			cfg.streamID, MaxStreamIDLen)
	}
	if cfg.protocol != ProtocolV1 && cfg.protocol != ProtocolV2 {
		return nil, fmt.Errorf("sink: unsupported protocol version %d (want %d or %d)",
			cfg.protocol, ProtocolV1, ProtocolV2)
	}
	if cfg.protocol == ProtocolV1 {
		// v1 has no durable acks, so there is nothing to resume from.
		cfg.reconnectAttempts = 0
	}
	if cfg.token == 0 {
		cfg.token = randomToken()
	}
	c := &Client{cfg: cfg, done: make(chan struct{})}
	c.win = newSendWindow(cfg.bufBytes, cfg.replayBytes,
		cfg.policy == BackpressureBlock, cfg.protocol == ProtocolV1)
	c.w = otf2.NewWriter(c.win, cfg.writerOpts...)
	go c.run()
	return c, nil
}

// randomToken draws a nonzero 64-bit stream token.
func randomToken() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return uint64(os.Getpid())<<32 | uint64(time.Now().UnixNano())&0xffffffff | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// StreamID returns the stream id the client announces in its handshake.
func (c *Client) StreamID() string { return c.cfg.streamID }

// Err returns the first unrecoverable transport or daemon failure, or
// nil. Once set, every subsequent WriteEvents returns it. A stream that
// degraded to its fallback archive is not an error: see Fallback.
func (c *Client) Err() error {
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Dropped returns how many events the drop backpressure policy has
// discarded so far.
func (c *Client) Dropped() int64 { return c.dropped.Load() }

// Resumes returns how many times the stream reconnected and resumed
// after a mid-stream sever.
func (c *Client) Resumes() int64 { return c.resumes.Load() }

// GapBytes returns the size of the unresumable gap the client declared
// to the server (0 if the stream never gapped). A nonzero gap means
// the daemon's shard was sealed at its durable prefix and the bytes in
// between were lost remotely — they are still in the local fallback
// archive when one is configured.
func (c *Client) GapBytes() int64 { return c.gapBytes.Load() }

// Fallback reports the local spill, if the stream degraded to one:
// the fallback archive path, the archive byte offset of its first byte
// (0 means the file is a complete standalone archive; a larger offset
// means it continues the daemon shard's durable prefix), and the
// failure that caused the degradation.
func (c *Client) Fallback() (path string, startOffset int64, reason error, ok bool) {
	if !c.fellBack.Load() {
		return "", 0, nil, false
	}
	if p := c.fallbackWhy.Load(); p != nil {
		reason = *p
	}
	return c.cfg.fallbackPath, c.fallbackStart.Load(), reason, true
}

// fail latches the first error and releases every blocked producer.
func (c *Client) fail(err error) {
	if err == nil {
		return
	}
	c.err.CompareAndSwap(nil, &err)
	c.win.failLatch(err)
}

// terminal handles an unrecoverable remote failure: spill to the
// fallback archive when configured, else latch the error.
func (c *Client) terminal(reason error) {
	if c.cfg.fallbackPath == "" {
		c.fail(reason)
		return
	}
	start, err := c.win.beginSpill(c.cfg.fallbackPath, reason)
	if err != nil {
		c.fail(errors.Join(reason, err))
		return
	}
	why := reason
	c.fallbackWhy.Store(&why)
	c.fallbackStart.Store(start)
	c.fellBack.Store(true)
}

// WriteEvents implements trace.EventSink. The backpressure decision is
// taken here, before encoding: a dropped batch never reaches the
// archive writer, so the emitted byte stream stays a valid archive
// (per-thread time deltas are computed at encode time). Batches of
// different threads encode concurrently exactly as with a file sink.
func (c *Client) WriteEvents(thread int, events []trace.Event) error {
	if err := c.Err(); err != nil {
		return err
	}
	admit, err := c.win.admit()
	if err != nil {
		return err
	}
	if !admit {
		c.dropped.Add(int64(len(events)))
		return nil
	}
	return c.w.WriteEvents(thread, events)
}

// Close flushes the archive (sealing partial chunks and, for format v2,
// the footer index), sends the end-of-stream frame and waits for the
// daemon's seal acknowledgment (or seals the local fallback archive,
// if the stream degraded). It returns the first unrecoverable error of
// the whole stream's life — encode, transport, or daemon-side — and is
// idempotent. Events must not be written after Close.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		werr := c.w.Close()
		c.win.closeStream()
		<-c.done
		serr := c.win.finishSpill()
		c.closeErr = c.Err()
		if c.closeErr == nil && werr != nil {
			c.closeErr = werr
		}
		if c.closeErr == nil && serr != nil {
			c.closeErr = serr
		}
	})
	return c.closeErr
}

// transientError marks a failure of one connection attempt or one
// established connection — the class the reconnect loop may retry.
// Everything else (daemon-reported ingest failure, protocol
// violations, exhausted budgets, cancellation) is terminal.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(err error) error { return &transientError{err: err} }

func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// run is the background sender: it connects (with retry/backoff and
// budgets), performs the handshake, pumps the window to the
// connection, and — under v2 — survives severed connections by
// reconnecting and replaying from the server's durable offset.
func (c *Client) run() {
	defer close(c.done)
	scratch := make([]byte, 0, 256<<10)
	reconnects := 0
	for {
		conn, durable, err := c.connect(reconnects > 0)
		if err != nil {
			c.terminal(err)
			return
		}
		if c.cfg.protocol >= ProtocolV2 {
			if reconnects > 0 {
				c.resumes.Add(1)
			}
			if err := c.win.rewind(durable); err != nil {
				var ge *gapError
				if errors.As(err, &ge) {
					gap := ge.have - ge.durable
					c.gapBytes.Store(gap)
					c.declareGap(conn, gap)
					_ = conn.Close()
					c.terminal(err)
					return
				}
				_ = conn.Close()
				c.terminal(err)
				return
			}
		}
		err = c.pump(conn, scratch)
		_ = conn.Close()
		if err == nil {
			return
		}
		if !isTransient(err) || c.cfg.reconnectAttempts <= 0 {
			c.terminal(err)
			return
		}
		reconnects++
	}
}

// connect dials (with jittered doubling backoff, an attempt cap, an
// elapsed-time budget and optional context cancellation) and completes
// the handshake, returning the connection and — under v2 — the
// server's durable offset for this stream.
func (c *Client) connect(reconnect bool) (net.Conn, int64, error) {
	attempts, backoff, budget := c.cfg.dialAttempts, c.cfg.dialBackoff, c.cfg.dialBudget
	what := "connect"
	if reconnect {
		attempts, backoff, budget = c.cfg.reconnectAttempts, c.cfg.reconnectBackoff, c.cfg.reconnectBudget
		what = "reconnect"
	}
	if attempts < 1 {
		attempts = 1
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := jitterBackoff(backoff)
			backoff *= 2
			if !deadline.IsZero() {
				rem := time.Until(deadline)
				if rem <= 0 {
					break
				}
				if d > rem {
					d = rem
				}
			}
			if err := sleepCtx(c.cfg.ctx, d); err != nil {
				return nil, 0, fmt.Errorf("sink: %s canceled: %w", what, err)
			}
		}
		if c.cfg.ctx != nil {
			if err := c.cfg.ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("sink: %s canceled: %w", what, err)
			}
		}
		conn, err := c.cfg.dial()
		if err != nil {
			lastErr = err
			continue
		}
		durable, err := c.handshake(conn)
		if err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		return conn, durable, nil
	}
	if lastErr == nil {
		lastErr = errors.New("budget exhausted before any attempt")
	}
	return nil, 0, fmt.Errorf("sink: %s: %w", what, lastErr)
}

// jitterBackoff spreads a backoff over [d/2, d), so a fleet of clients
// severed by one daemon crash does not redial in lockstep.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half))
}

// sleepCtx sleeps d, aborting early on context cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handshake writes the client handshake on conn and, under v2, reads
// the server hello, returning the durable offset to resume from.
func (c *Client) handshake(conn net.Conn) (int64, error) {
	if c.cfg.ackTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.cfg.ackTimeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	hs := make([]byte, 0, len(Magic)+1+2*binary.MaxVarintLen64+len(c.cfg.streamID))
	hs = append(hs, Magic...)
	hs = append(hs, c.cfg.protocol)
	hs = binary.AppendUvarint(hs, uint64(len(c.cfg.streamID)))
	hs = append(hs, c.cfg.streamID...)
	if c.cfg.protocol >= ProtocolV2 {
		hs = binary.AppendUvarint(hs, c.cfg.token)
	}
	if _, err := conn.Write(hs); err != nil {
		return 0, fmt.Errorf("handshake: %w", err)
	}
	if c.cfg.protocol < ProtocolV2 {
		return 0, nil
	}
	// Read the hello byte by byte: nothing may be buffered past it,
	// the ack reader owns every later byte.
	cr := &connByteReader{c: conn}
	kind, err := cr.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("reading hello: %w", err)
	}
	switch kind {
	case frameHello:
		status, err := cr.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("reading hello: %w", err)
		}
		if status != helloNew && status != helloResumed {
			return 0, fmt.Errorf("reading hello: unknown status %d", status)
		}
		durable, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fmt.Errorf("reading hello durable offset: %w", err)
		}
		return int64(durable), nil
	case ackByte:
		// The server refused with a final ack instead of a hello.
		status, err := cr.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("reading hello: %w", err)
		}
		return 0, fmt.Errorf("daemon refused stream (status %d)", status)
	default:
		return 0, fmt.Errorf("reading hello: unexpected frame %q", kind)
	}
}

// connByteReader reads single bytes off a net.Conn without buffering
// ahead.
type connByteReader struct {
	c net.Conn
	b [1]byte
}

func (r *connByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(r.c, r.b[:]); err != nil {
		return 0, err
	}
	return r.b[0], nil
}

// declareGap tells the server the client cannot resume: the shard is
// sealed at the durable prefix with an explicit counted gap. Best
// effort — the stream is lost either way.
func (c *Client) declareGap(conn net.Conn, gap int64) {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, frameGap)
	buf = binary.AppendUvarint(buf, uint64(gap))
	if _, err := conn.Write(buf); err != nil {
		return
	}
	if c.cfg.ackTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ackTimeout))
	}
	var ack [2]byte
	_, _ = io.ReadFull(conn, ack[:])
}

// connState is the sender's view of one established connection, shared
// with its ack-reader goroutine.
type connState struct {
	conn  net.Conn
	dead  chan struct{} // closed when the reader exits
	final chan byte     // the final ack status, buffered

	mu  sync.Mutex
	err error
}

func (cs *connState) setErr(err error) {
	cs.mu.Lock()
	if cs.err == nil {
		cs.err = err
	}
	cs.mu.Unlock()
}

func (cs *connState) getErr() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.err
}

// pump drains the window into conn until the stream completes (nil) or
// the connection fails (transient error: the caller reconnects).
func (c *Client) pump(conn net.Conn, scratch []byte) error {
	cs := &connState{conn: conn, dead: make(chan struct{}), final: make(chan byte, 1)}
	v2 := c.cfg.protocol >= ProtocolV2
	if v2 {
		go c.readAcks(cs)
	}
	for {
		if v2 {
			if err := cs.getErr(); err != nil {
				return err
			}
		}
		batch, done, kicked := c.win.next(scratch)
		if kicked {
			continue
		}
		if len(batch) > 0 {
			if err := writeFrames(conn, batch); err != nil {
				return transient(fmt.Errorf("sink: send: %w", err))
			}
		}
		if done {
			break
		}
	}
	eos := make([]byte, 0, 1+binary.MaxVarintLen64)
	eos = append(eos, frameEOS)
	eos = binary.AppendUvarint(eos, uint64(c.dropped.Load()))
	if _, err := conn.Write(eos); err != nil {
		return transient(fmt.Errorf("sink: end of stream: %w", err))
	}
	if !v2 {
		return c.readFinalAckV1(conn)
	}
	var timeout <-chan time.Time
	if c.cfg.ackTimeout > 0 {
		t := time.NewTimer(c.cfg.ackTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case status := <-cs.final:
		if status == ackOK {
			return nil
		}
		return fmt.Errorf("sink: daemon reported ingest failure (ack status %d)", status)
	case <-cs.dead:
		select {
		case status := <-cs.final:
			if status == ackOK {
				return nil
			}
			return fmt.Errorf("sink: daemon reported ingest failure (ack status %d)", status)
		default:
		}
		if err := cs.getErr(); err != nil {
			return err
		}
		return transient(errors.New("sink: connection closed before seal ack"))
	case <-timeout:
		return transient(errors.New("sink: timeout waiting for seal ack"))
	}
}

// readFinalAckV1 implements the v1 tail: one 2-byte ack after eos.
func (c *Client) readFinalAckV1(conn net.Conn) error {
	if c.cfg.ackTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ackTimeout))
	}
	var ack [2]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return transient(fmt.Errorf("sink: reading seal ack: %w", err))
	}
	if ack[0] != ackByte || ack[1] != ackOK {
		return fmt.Errorf("sink: daemon reported ingest failure (ack %q status %d)", ack[0], ack[1])
	}
	return nil
}

// readAcks consumes the server's side of a v2 connection: durable
// acks feed the window (freeing producer space and replay history),
// the final ack ends the stream. Any exit closes cs.dead and kicks the
// sender awake so it notices promptly even while idle.
func (c *Client) readAcks(cs *connState) {
	defer func() {
		close(cs.dead)
		c.win.kick()
	}()
	br := bufio.NewReaderSize(cs.conn, 512)
	for {
		kind, err := br.ReadByte()
		if err != nil {
			cs.setErr(transient(fmt.Errorf("sink: connection lost: %w", err)))
			return
		}
		switch kind {
		case frameAck:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				cs.setErr(transient(fmt.Errorf("sink: reading durable ack: %w", err)))
				return
			}
			c.win.ack(int64(n))
		case ackByte:
			status, err := br.ReadByte()
			if err != nil {
				cs.setErr(transient(fmt.Errorf("sink: reading seal ack: %w", err)))
				return
			}
			cs.final <- status
			if status != ackOK {
				cs.setErr(fmt.Errorf("sink: daemon reported ingest failure (ack status %d)", status))
			}
			return
		default:
			cs.setErr(fmt.Errorf("sink: unexpected frame %q from server", kind))
			return
		}
	}
}

// writeFrames ships a run of archive bytes as data frames, splitting
// at MaxFramePayload.
func writeFrames(conn net.Conn, p []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	for len(p) > 0 {
		chunk := p
		if len(chunk) > MaxFramePayload {
			chunk = chunk[:MaxFramePayload]
		}
		hdr[0] = frameData
		n := binary.PutUvarint(hdr[1:], uint64(len(chunk)))
		if _, err := conn.Write(hdr[:1+n]); err != nil {
			return err
		}
		if _, err := conn.Write(chunk); err != nil {
			return err
		}
		p = p[len(chunk):]
	}
	return nil
}
