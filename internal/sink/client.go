package sink

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/otf2"
	"repro/internal/trace"
)

// BackpressurePolicy selects what a Client does when its send buffer is
// full because the daemon (or the network) is slower than the producer.
type BackpressurePolicy int

const (
	// BackpressureBlock stalls the recording thread until the sender
	// drains buffer space — no event is lost, the measured program pays
	// the sink's latency (the default, matching a slow local disk).
	BackpressureBlock BackpressurePolicy = iota
	// BackpressureDrop discards whole event batches while the buffer is
	// over its bound and counts them (Client.Dropped; the count also
	// travels in the end-of-stream frame). The drop happens before
	// encoding — per-thread timestamp deltas are computed at encode
	// time, so the archive stream stays valid, it just has holes in the
	// recording.
	BackpressureDrop
)

// Client defaults.
const (
	// DefaultBufferBytes bounds the framed bytes buffered between the
	// encoding threads and the background sender.
	DefaultBufferBytes = 1 << 20
	// DefaultDialAttempts and DefaultDialBackoff shape the lazy-connect
	// retry loop: backoff doubles per attempt (50ms, 100ms, ... — about
	// 1.5s in total), covering the "daemon still starting" race without
	// stalling a doomed run for long.
	DefaultDialAttempts = 5
	DefaultDialBackoff  = 50 * time.Millisecond
	// DefaultAckTimeout bounds how long Close waits for the daemon's
	// seal acknowledgment.
	DefaultAckTimeout = 10 * time.Second
)

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	streamID     string
	bufBytes     int
	policy       BackpressurePolicy
	dialAttempts int
	dialBackoff  time.Duration
	ackTimeout   time.Duration
	writerOpts   []otf2.WriterOption
	dial         func() (net.Conn, error)
}

// WithStreamID names the client's stream — and thereby its shard file,
// "trace-<id>.otf2" — in the daemon's experiment. The default is
// "p<pid>", unique per host; the daemon additionally uniquifies
// colliding ids. The id must satisfy ValidStreamID.
func WithStreamID(id string) ClientOption {
	return func(c *clientConfig) { c.streamID = id }
}

// WithBufferBytes bounds the framed bytes buffered between the encoding
// threads and the background sender (default DefaultBufferBytes).
func WithBufferBytes(n int) ClientOption {
	return func(c *clientConfig) {
		if n > 0 {
			c.bufBytes = n
		}
	}
}

// WithBackpressure selects the full-buffer policy (default
// BackpressureBlock).
func WithBackpressure(p BackpressurePolicy) ClientOption {
	return func(c *clientConfig) { c.policy = p }
}

// WithDialRetry shapes the connect retry loop: up to attempts dials,
// sleeping backoff (doubling) between them. attempts <= 1 means a
// single attempt.
func WithDialRetry(attempts int, backoff time.Duration) ClientOption {
	return func(c *clientConfig) {
		if attempts >= 1 {
			c.dialAttempts = attempts
		}
		if backoff > 0 {
			c.dialBackoff = backoff
		}
	}
}

// WithAckTimeout bounds how long Close waits for the daemon's seal
// acknowledgment (<= 0: wait forever).
func WithAckTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.ackTimeout = d }
}

// WithWriterOptions passes options (compression, chunk size, format
// version) to the client's embedded archive writer — compressing the
// event chunks before framing is the natural way to trade CPU for
// network bandwidth on a TCP sink.
func WithWriterOptions(opts ...otf2.WriterOption) ClientOption {
	return func(c *clientConfig) { c.writerOpts = append(c.writerOpts, opts...) }
}

// Client streams one process's event trace to a measurement daemon. It
// implements trace.EventSink: recording threads encode their event
// batches concurrently through the embedded otf2.Writer (the same
// per-thread hot path a file sink uses) into a bounded frame buffer
// that a single background goroutine drains to the connection. The
// connection is established lazily by that sender, with retry/backoff,
// so constructing a Client never blocks the measured program's start.
//
// Every failure — dial exhaustion, a dropped connection, a daemon
// ingest error — is latched (Err) and unblocks all waiting recording
// threads; recording then degrades to discarding, exactly like a
// failing local disk under the streaming recorder's contract.
type Client struct {
	cfg clientConfig
	fr  *framer
	w   *otf2.Writer

	err     atomic.Pointer[error]
	dropped atomic.Int64

	done      chan struct{} // closed when the sender goroutine exits
	closeOnce sync.Once
	closeErr  error
}

// interface check: the client is a drop-in streaming-recorder sink.
var _ trace.EventSink = (*Client)(nil)

// Dial creates a Client streaming to the daemon at addr (see SplitAddr
// for accepted forms). The error reports a malformed address or stream
// id; the connection itself is established lazily by the background
// sender, so a daemon that is still starting is retried, not an error.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	network, address, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.dial = func() (net.Conn, error) {
		return net.DialTimeout(network, address, 5*time.Second)
	}
	return newClient(cfg)
}

// NewClientConn creates a Client streaming over an existing connection
// (tests drive a Server directly through net.Pipe this way). The Client
// takes ownership of conn and closes it.
func NewClientConn(conn net.Conn, opts ...ClientOption) (*Client, error) {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.dialAttempts = 1
	cfg.dial = func() (net.Conn, error) { return conn, nil }
	return newClient(cfg)
}

func defaultClientConfig() clientConfig {
	return clientConfig{
		streamID:     fmt.Sprintf("p%d", os.Getpid()),
		bufBytes:     DefaultBufferBytes,
		dialAttempts: DefaultDialAttempts,
		dialBackoff:  DefaultDialBackoff,
		ackTimeout:   DefaultAckTimeout,
	}
}

func newClient(cfg clientConfig) (*Client, error) {
	if !ValidStreamID(cfg.streamID) {
		return nil, fmt.Errorf("sink: invalid stream id %q (want 1..%d bytes of [A-Za-z0-9._-])",
			cfg.streamID, MaxStreamIDLen)
	}
	c := &Client{cfg: cfg, done: make(chan struct{})}
	c.fr = newFramer(cfg.bufBytes, cfg.policy == BackpressureBlock)
	c.w = otf2.NewWriter(c.fr, cfg.writerOpts...)
	go c.run()
	return c, nil
}

// StreamID returns the stream id the client announces in its handshake.
func (c *Client) StreamID() string { return c.cfg.streamID }

// Err returns the first transport or daemon failure, or nil. Once set,
// every subsequent WriteEvents returns it.
func (c *Client) Err() error {
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Dropped returns how many events the drop backpressure policy has
// discarded so far.
func (c *Client) Dropped() int64 { return c.dropped.Load() }

// fail latches the first error and releases every blocked producer.
func (c *Client) fail(err error) {
	if err == nil {
		return
	}
	c.err.CompareAndSwap(nil, &err)
	c.fr.failLatch(err)
}

// WriteEvents implements trace.EventSink. The backpressure decision is
// taken here, before encoding: a dropped batch never reaches the
// archive writer, so the emitted byte stream stays a valid archive
// (per-thread time deltas are computed at encode time). Batches of
// different threads encode concurrently exactly as with a file sink.
func (c *Client) WriteEvents(thread int, events []trace.Event) error {
	if err := c.Err(); err != nil {
		return err
	}
	admit, err := c.fr.admit()
	if err != nil {
		return err
	}
	if !admit {
		c.dropped.Add(int64(len(events)))
		return nil
	}
	return c.w.WriteEvents(thread, events)
}

// Close flushes the archive (sealing partial chunks and, for format v2,
// the footer index), sends the end-of-stream frame and waits for the
// daemon's seal acknowledgment. It returns the first error of the whole
// stream's life — encode, transport, or daemon-side — and is
// idempotent. Events must not be written after Close.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		werr := c.w.Close()
		c.fr.closeStream()
		<-c.done
		c.closeErr = c.Err()
		if c.closeErr == nil && werr != nil {
			c.closeErr = werr
		}
	})
	return c.closeErr
}

// run is the background sender: it connects (with retry/backoff),
// performs the handshake, drains the frame buffer, and finishes the
// stream with the end-of-stream frame and ack wait.
func (c *Client) run() {
	defer close(c.done)
	conn, err := c.connect()
	if err != nil {
		c.fail(fmt.Errorf("sink: connect: %w", err))
		return
	}
	defer conn.Close()
	hs := make([]byte, 0, len(Magic)+1+binary.MaxVarintLen64+len(c.cfg.streamID))
	hs = append(hs, Magic...)
	hs = append(hs, ProtocolVersion)
	hs = binary.AppendUvarint(hs, uint64(len(c.cfg.streamID)))
	hs = append(hs, c.cfg.streamID...)
	if _, err := conn.Write(hs); err != nil {
		c.fail(fmt.Errorf("sink: handshake: %w", err))
		return
	}
	for {
		batch, done := c.fr.next()
		if len(batch) > 0 {
			if _, err := conn.Write(batch); err != nil {
				c.fail(fmt.Errorf("sink: send: %w", err))
				return
			}
		}
		if done {
			break
		}
	}
	eos := make([]byte, 0, 1+binary.MaxVarintLen64)
	eos = append(eos, frameEOS)
	eos = binary.AppendUvarint(eos, uint64(c.dropped.Load()))
	if _, err := conn.Write(eos); err != nil {
		c.fail(fmt.Errorf("sink: end of stream: %w", err))
		return
	}
	if c.cfg.ackTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ackTimeout))
	}
	var ack [2]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		c.fail(fmt.Errorf("sink: reading seal ack: %w", err))
		return
	}
	if ack[0] != ackByte || ack[1] != ackOK {
		c.fail(fmt.Errorf("sink: daemon reported ingest failure (ack %q status %d)", ack[0], ack[1]))
	}
}

// connect dials with retry/backoff; transient refusals (daemon not up
// yet) are retried, the last error is returned when attempts run out.
func (c *Client) connect() (net.Conn, error) {
	backoff := c.cfg.dialBackoff
	var err error
	for i := 0; i < c.cfg.dialAttempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var conn net.Conn
		if conn, err = c.cfg.dial(); err == nil {
			return conn, nil
		}
	}
	return nil, err
}

// framer sits between the archive writer and the sender goroutine: it
// cuts the writer's byte stream into length-prefixed frames in a
// bounded buffer. Producers (recording threads, serialized by the
// writer's io lock) append; the single sender swaps the whole buffer
// out. A latched failure empties the buffer and wakes every waiter, so
// no recording thread can stay blocked on a dead connection.
type framer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	spare  []byte // recycled drained buffer, so steady state reuses two buffers
	max    int
	block  bool
	closed bool
	failed error
}

func newFramer(max int, block bool) *framer {
	f := &framer{max: max, block: block}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// admit is the pre-encode backpressure gate. It returns (true, nil) to
// encode, (false, nil) to drop the batch (drop policy, buffer over
// bound), or an error once the stream has failed or been closed.
func (f *framer) admit() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.block {
		for len(f.buf) >= f.max && f.failed == nil && !f.closed {
			f.cond.Wait()
		}
	}
	switch {
	case f.failed != nil:
		return false, f.failed
	case f.closed:
		return false, fmt.Errorf("sink: write after Close")
	case !f.block && len(f.buf) >= f.max:
		return false, nil
	}
	return true, nil
}

// Write implements io.Writer for the archive writer: p is framed and
// appended to the send buffer, split so no frame payload exceeds
// MaxFramePayload. Under the block policy Write waits for buffer space
// (it runs on the encoding thread, under the writer's io lock — exactly
// where a slow file sink would block too); under the drop policy it
// always appends, because dropping bytes mid-archive would corrupt the
// stream — the bound is enforced on whole batches in admit instead.
func (f *framer) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(p)
	for len(p) > 0 {
		if f.failed != nil {
			// The stream is dead; swallow the bytes so the archive
			// writer latches one error and encoding threads move on.
			return 0, f.failed
		}
		if f.block {
			for len(f.buf) >= f.max && f.failed == nil && !f.closed {
				f.cond.Wait()
			}
			if f.failed != nil {
				return 0, f.failed
			}
		}
		chunk := p
		if len(chunk) > MaxFramePayload {
			chunk = chunk[:MaxFramePayload]
		}
		f.buf = append(f.buf, frameData)
		f.buf = binary.AppendUvarint(f.buf, uint64(len(chunk)))
		f.buf = append(f.buf, chunk...)
		p = p[len(chunk):]
		f.cond.Broadcast()
	}
	return n, nil
}

// next hands the sender everything buffered so far, waiting for data
// when the buffer is empty. done reports that the stream was closed and
// fully drained.
func (f *framer) next() (batch []byte, done bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) == 0 && !f.closed && f.failed == nil {
		f.cond.Wait()
	}
	batch, f.buf = f.buf, f.spare[:0]
	f.spare = batch[:0] // the sender returns before the next swap uses it
	f.cond.Broadcast()
	return batch, (f.closed || f.failed != nil) && len(f.buf) == 0
}

// failLatch kills the stream: the pending buffer is discarded and every
// waiter (producers in admit/Write, the sender in next) is released.
func (f *framer) failLatch(err error) {
	f.mu.Lock()
	if f.failed == nil {
		f.failed = err
	}
	f.buf = nil
	f.cond.Broadcast()
	f.mu.Unlock()
}

// closeStream marks the end of the stream: the sender drains what is
// buffered and finishes.
func (f *framer) closeStream() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}
