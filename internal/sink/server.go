package sink

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Server defaults.
const (
	// DefaultHandshakeTimeout bounds how long a fresh connection may
	// take to deliver its handshake (and the server its hello): a
	// connected-but-silent client cannot pin a stream goroutine.
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultAckIntervalBytes is how much payload the server ingests
	// between durable acks: each ack is preceded by a shard flush, so
	// it also bounds the flush lag a daemon crash can lose.
	DefaultAckIntervalBytes = 256 << 10
)

// StreamInfo describes one ingested stream — the material a fleet
// experiment's meta.json records per shard.
type StreamInfo struct {
	// ID is the stream id after collision uniquification.
	ID string
	// File is the shard file name within the server directory.
	File string
	// Bytes counts the archive payload durable in the shard file.
	Bytes int64
	// Frames counts data frames received, across all connections of
	// the stream (a resumed stream re-sends frames, so this may exceed
	// what a single pass over the payload would need).
	Frames int64
	// DroppedEvents is the client-reported backpressure drop count from
	// the end-of-stream frame.
	DroppedEvents int64
	// GapBytes counts archive bytes lost between the durable prefix
	// and the client's resume point when the client declared an
	// unresumable gap (the shard was sealed at the prefix). 0 means no
	// gap.
	GapBytes int64
	// Resumes counts reconnections that resumed this stream.
	Resumes int64
	// Complete reports a cleanly ended stream (end-of-stream frame
	// seen, shard flushed and synced). A false value means the shard
	// holds the intact prefix of a severed, gapped or failed stream —
	// salvageable through the otf2 readers' ErrTruncated contract.
	Complete bool
	// Sealed reports a terminal stream: completed, gap-sealed, or
	// failed. A false value means the stream is severed but resumable —
	// a v2 client may reconnect and continue it.
	Sealed bool
	// Err describes why an incomplete stream ended (or is suspended),
	// "" otherwise.
	Err string
}

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	logf             func(format string, args ...any)
	onDone           func(StreamInfo)
	handshakeTimeout time.Duration
	idleTimeout      time.Duration
	ackEvery         int
	wrapShard        func(id string, w io.Writer) io.Writer
}

// WithLog installs a log callback for per-stream lifecycle messages.
func WithLog(f func(format string, args ...any)) ServerOption {
	return func(c *serverConfig) { c.logf = f }
}

// WithStreamDone installs a callback invoked after each stream ends
// terminally — sealed complete, sealed after a gap, or failed — with
// its final StreamInfo. A severed-but-resumable stream does not fire
// the callback until it resumes and ends. Callbacks run on the
// stream's goroutine, one per stream.
func WithStreamDone(f func(StreamInfo)) ServerOption {
	return func(c *serverConfig) { c.onDone = f }
}

// WithHandshakeTimeout bounds how long a new connection may take to
// complete its handshake (default DefaultHandshakeTimeout; <= 0
// disables the deadline).
func WithHandshakeTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.handshakeTimeout = d }
}

// WithIdleTimeout seals a stream as severed when no frame arrives for
// d — a wedged client cannot hold its shard open forever, and its
// neighbors are untouched. Default 0: no idle deadline. A v2 client
// severed this way may still reconnect and resume.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.idleTimeout = d }
}

// WithAckInterval sets how many payload bytes the server ingests
// between durable acks (default DefaultAckIntervalBytes). Each ack is
// preceded by a shard flush; smaller intervals shrink both the replay
// a reconnect needs and the bytes a daemon crash can lose, at the cost
// of more flushes.
func WithAckInterval(n int) ServerOption {
	return func(c *serverConfig) {
		if n > 0 {
			c.ackEvery = n
		}
	}
}

// WithShardWriterWrap interposes f between the server's buffered shard
// writer and the shard file — the fault-injection seam (tests wrap
// shards with ENOSPC or EIO injectors). f is called once per
// connection with the stream id; syncs still go to the file itself.
func WithShardWriterWrap(f func(id string, w io.Writer) io.Writer) ServerOption {
	return func(c *serverConfig) { c.wrapShard = f }
}

// streamState is the server's cross-connection state for one stream:
// identity (token), progress (durable bytes flushed to the shard), and
// lifecycle (active connection, terminal seal).
type streamState struct {
	info     *StreamInfo
	token    uint64
	durable  int64
	sealed   bool
	active   bool
	conn     net.Conn
	connDone chan struct{}
}

// Server is the daemon side of the measurement service: it accepts many
// concurrent client streams and appends each one's frame payloads to
// its own shard file, "trace-<id>.otf2", in the server directory. The
// ingest hot path is per-stream — one goroutine, one file, no shared
// lock; streams touch shared state only at handshake (id registration),
// durable-ack flushes and completion. A client crash severs its stream
// and keeps every intact byte received, leaving the other shards
// untouched; a v2 client may reconnect with its stream token and
// resume at the durable offset. Stream identity and status are
// journaled (sink-journal.json, written via atomic rename), so a
// server constructed over an existing directory recovers: shards are
// truncated to their intact prefix and severed streams await resume.
type Server struct {
	dir string
	cfg serverConfig

	// err latches the first server-side ingest failure (shard file
	// I/O), the same pattern the archive writer uses. A severed client
	// connection is an expected condition, not a server error.
	err atomic.Pointer[error]

	closed atomic.Bool
	wg     sync.WaitGroup

	mu        sync.Mutex
	ln        net.Listener
	used      map[string]int
	streams   []*StreamInfo
	states    map[string]*streamState
	conns     map[net.Conn]struct{}
	recovered int
}

// NewServer creates a server ingesting into dir (created if needed).
// If dir holds the journal of a previous server (a daemon restarting
// over its experiment directory), the stream table is recovered from
// it: every shard is truncated to its intact archive prefix (the
// ReadFileLenient cut point), sealed streams keep their status, and
// severed streams await resume at the recovered durable offset.
func NewServer(dir string, opts ...ServerOption) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sink: %w", err)
	}
	s := &Server{
		dir:    dir,
		used:   make(map[string]int),
		states: make(map[string]*streamState),
		conns:  make(map[net.Conn]struct{}),
	}
	s.cfg.handshakeTimeout = DefaultHandshakeTimeout
	s.cfg.ackEvery = DefaultAckIntervalBytes
	for _, opt := range opts {
		opt(&s.cfg)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the server's shard directory.
func (s *Server) Dir() string { return s.dir }

// Recovered returns how many streams were recovered from a previous
// server's journal in this directory.
func (s *Server) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Err returns the first server-side ingest failure (shard file I/O),
// or nil.
func (s *Server) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Server) setErr(err error) {
	if err != nil {
		s.err.CompareAndSwap(nil, &err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.logf != nil {
		s.cfg.logf(format, args...)
	}
}

// Serve accepts connections on ln until Close/Shutdown, one goroutine
// per stream. It returns nil after Close; any other accept failure is
// returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	done := s.closed.Load()
	s.mu.Unlock()
	// A Close/Shutdown that ran before Serve was scheduled found no
	// listener to close — honor it here or Accept would block forever.
	if done {
		_ = ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// Register the connection under the same lock Shutdown's
		// force-sever sweep takes, and refuse connections that raced a
		// shutdown: a conn accepted but not yet in s.conns would
		// otherwise dodge the sweep and pin wg.Wait forever.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, waits for in-flight streams to finish and
// returns Err. It does not write the fleet meta.json — the daemon does
// that, from Streams, once Close returns.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	s.writeJournalLocked()
	s.mu.Unlock()
	return s.Err()
}

// Shutdown is the graceful drain: it stops accepting, waits up to
// grace for in-flight streams to end on their own, then force-severs
// the remaining connections — their shards keep every flushed byte and
// stay resumable by a future server over the same directory. grace <=
// 0 severs immediately.
func (s *Server) Shutdown(grace time.Duration) error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
		}
	}
	select {
	case <-done:
	default:
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.writeJournalLocked()
	s.mu.Unlock()
	return s.Err()
}

// Streams returns a snapshot of every stream seen so far (including
// recovered ones), in arrival order.
func (s *Server) Streams() []StreamInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamInfo, len(s.streams))
	for i, st := range s.streams {
		out[i] = *st
	}
	return out
}

// register claims a shard for id or — when a v2 client presents the
// token of a known stream — resumes it, preempting a half-dead
// previous connection if one is still draining. Fresh collisions are
// uniquified ("bots", "bots.2", "bots.3", ...): two processes
// announcing the same id must not interleave into one archive.
func (s *Server) register(conn net.Conn, proto byte, id string, token uint64) (st *streamState, resumed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if proto >= ProtocolV2 && token != 0 {
		for {
			old := s.states[id]
			if old == nil || old.token != token {
				break
			}
			if !old.active {
				old.active = true
				old.conn = conn
				old.connDone = make(chan struct{})
				old.info.Resumes++
				s.writeJournalLocked()
				return old, true
			}
			// The previous connection is still draining (the server may
			// not have noticed the sever yet): preempt it and wait for
			// its goroutine to finalize before resuming.
			c, prev := old.conn, old.connDone
			s.mu.Unlock()
			if c != nil {
				_ = c.Close()
			}
			<-prev
			s.mu.Lock()
		}
	}
	n := s.used[id]
	s.used[id] = n + 1
	if n > 0 {
		id = fmt.Sprintf("%s.%d", id, n+1)
		// The suffixed name could itself have been claimed explicitly.
		for s.used[id] > 0 {
			n++
			id = fmt.Sprintf("%s.%d", id, n+1)
		}
		s.used[id] = 1
	}
	st = &streamState{
		info:     &StreamInfo{ID: id, File: shardFileName(id)},
		token:    token,
		active:   true,
		conn:     conn,
		connDone: make(chan struct{}),
	}
	s.states[id] = st
	s.streams = append(s.streams, st.info)
	s.writeJournalLocked()
	return st, false
}

// shardFileName maps a stream id to its shard file name.
func shardFileName(id string) string { return "trace-" + id + ".otf2" }

// ServeConn ingests one client connection on conn (exported so tests
// and embedders can drive the server over net.Pipe without a
// listener). It closes conn, updates the stream's StreamInfo and — if
// the stream ended terminally — invokes the stream-done callback. The
// returned error describes a protocol or I/O failure of this
// connection; a clean end-of-stream returns nil.
func (s *Server) ServeConn(conn net.Conn) error {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	st, sealedNow, err := s.ingest(conn)
	if st == nil {
		s.logf("connection rejected: %v", err)
		return err
	}
	s.mu.Lock()
	info := *st.info
	sealed := st.sealed
	s.mu.Unlock()
	switch {
	case info.Complete:
		s.logf("stream %s: sealed %s (%d bytes, %d frames, %d resumes, %d dropped events)",
			info.ID, info.File, info.Bytes, info.Frames, info.Resumes, info.DroppedEvents)
	case sealed && info.GapBytes > 0:
		s.logf("stream %s: sealed with gap of %d bytes at durable prefix %d (%v)",
			info.ID, info.GapBytes, info.Bytes, err)
	case sealed:
		s.logf("stream %s: failed after %d bytes (%v); shard prefix kept", info.ID, info.Bytes, err)
	default:
		s.logf("stream %s: severed after %d bytes (%v); shard prefix kept, resumable", info.ID, info.Bytes, err)
	}
	if sealedNow && s.cfg.onDone != nil {
		s.cfg.onDone(info)
	}
	return err
}

// errTrackWriter distinguishes shard-write failures (disk) from
// connection failures inside the ingest copy loop.
type errTrackWriter struct {
	w   io.Writer
	err error
}

func (t *errTrackWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	if err != nil && t.err == nil {
		t.err = err
	}
	return n, err
}

// ingest runs one connection's protocol. The returned streamState is
// nil if the handshake never established a stream (nothing was
// written); sealedNow reports that this connection transitioned the
// stream to its terminal state (the stream-done callback fires exactly
// once). On a severed connection every intact byte received is flushed
// to the shard, so the file is exactly the archive prefix the client
// got out — the reader's truncation salvage applies, and a v2 stream
// stays resumable at that prefix.
func (s *Server) ingest(conn net.Conn) (st *streamState, sealedNow bool, err error) {
	br := bufio.NewReaderSize(conn, 64<<10)
	if t := s.cfg.handshakeTimeout; t > 0 {
		_ = conn.SetDeadline(time.Now().Add(t))
	}
	proto, id, token, err := readHandshake(br)
	if err != nil {
		return nil, false, err
	}
	st, resumed := s.register(conn, proto, id, token)
	connDone := st.connDone
	s.mu.Lock()
	prevSealed := st.sealed
	s.mu.Unlock()

	// A sealed-but-incomplete stream (disk failure, gap) has no future:
	// refuse the resume with a failure ack instead of a hello, so the
	// client degrades instead of appending to a dead shard. (A sealed
	// *complete* stream is resumable: the client's seal ack was lost,
	// it replays nothing and the server re-acks — an idempotent seal.)
	if resumed && prevSealed {
		s.mu.Lock()
		refuse := !st.info.Complete
		if refuse {
			st.active = false
			st.conn = nil
		}
		s.mu.Unlock()
		if refuse {
			_, _ = conn.Write([]byte{ackByte, ackFailed})
			close(connDone)
			return st, false, fmt.Errorf("sink: refused resume of sealed stream %s", st.info.ID)
		}
	}

	var (
		f        *os.File
		dw       *errTrackWriter
		bw       *bufio.Writer
		received = st.durable
		lastAck  = st.durable
		frames   int64
		dropped  int64
		complete bool
		gapSeal  bool
		gapBytes int64
	)
	path := filepath.Join(s.dir, st.info.File)
	if resumed {
		f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err == nil {
			if fi, serr := f.Stat(); serr != nil {
				err = serr
			} else if fi.Size() != st.durable {
				err = fmt.Errorf("shard is %d bytes, expected %d durable", fi.Size(), st.durable)
			}
		}
		if err != nil {
			err = fmt.Errorf("sink: reopening shard: %w", err)
		}
	} else {
		if f, err = os.Create(path); err != nil {
			err = fmt.Errorf("sink: creating shard: %w", err)
		}
	}

	serr := err
	diskFailed := err != nil
	if serr == nil {
		if proto >= ProtocolV2 {
			hello := make([]byte, 0, 2+binary.MaxVarintLen64)
			status := helloNew
			if resumed {
				status = helloResumed
			}
			hello = append(hello, frameHello, status)
			hello = binary.AppendUvarint(hello, uint64(st.durable))
			if _, werr := conn.Write(hello); werr != nil {
				serr = fmt.Errorf("sink: writing hello: %w", werr)
			}
		}
	}
	if serr == nil {
		_ = conn.SetDeadline(time.Time{})
		var w io.Writer = f
		if s.cfg.wrapShard != nil {
			w = s.cfg.wrapShard(st.info.ID, w)
		}
		dw = &errTrackWriter{w: w}
		bw = bufio.NewWriterSize(dw, 64<<10)
		serr = func() error {
			for {
				if t := s.cfg.idleTimeout; t > 0 {
					_ = conn.SetReadDeadline(time.Now().Add(t))
				}
				kind, err := br.ReadByte()
				if err != nil {
					return fmt.Errorf("sink: reading frame: %w", err)
				}
				switch kind {
				case frameData:
					n, err := binary.ReadUvarint(br)
					if err != nil {
						return fmt.Errorf("sink: reading frame length: %w", err)
					}
					if n == 0 || n > MaxFramePayload {
						return fmt.Errorf("sink: frame of %d bytes out of range (1..%d)", n, MaxFramePayload)
					}
					m, err := io.CopyN(bw, br, int64(n))
					received += m
					if err != nil {
						return fmt.Errorf("sink: copying frame payload: %w", err)
					}
					frames++
					if proto >= ProtocolV2 && received-lastAck >= int64(s.cfg.ackEvery) {
						if err := bw.Flush(); err != nil {
							return fmt.Errorf("sink: flushing shard: %w", err)
						}
						s.mu.Lock()
						st.durable = received
						s.mu.Unlock()
						ack := make([]byte, 0, 1+binary.MaxVarintLen64)
						ack = append(ack, frameAck)
						ack = binary.AppendUvarint(ack, uint64(received))
						if _, err := conn.Write(ack); err != nil {
							return fmt.Errorf("sink: writing durable ack: %w", err)
						}
						lastAck = received
					}
				case frameEOS:
					d, err := binary.ReadUvarint(br)
					if err != nil {
						return fmt.Errorf("sink: reading end-of-stream: %w", err)
					}
					dropped = int64(d)
					complete = true
					return nil
				case frameGap:
					if proto < ProtocolV2 {
						return fmt.Errorf("sink: gap frame on a v1 stream")
					}
					g, err := binary.ReadUvarint(br)
					if err != nil {
						return fmt.Errorf("sink: reading gap: %w", err)
					}
					gapBytes = int64(g)
					gapSeal = true
					return fmt.Errorf("sink: client declared unresumable gap of %d bytes", g)
				default:
					return fmt.Errorf("sink: unknown frame kind %q", kind)
				}
			}
		}()
	}

	// Flush whatever arrived — on the severed path this preserves the
	// salvageable (and resumable) prefix, on the clean path it
	// completes the shard.
	if bw != nil {
		ferr := bw.Flush()
		if ferr == nil {
			s.mu.Lock()
			st.durable = received
			s.mu.Unlock()
			if complete || gapSeal {
				ferr = f.Sync()
			}
		}
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		if ferr != nil || dw.err != nil {
			diskFailed = true
			if dw.err != nil && ferr == nil {
				ferr = dw.err
			}
			ferr = fmt.Errorf("sink: writing shard %s: %w", st.info.File, ferr)
			s.setErr(ferr)
			if serr == nil {
				serr = ferr
			}
			complete = false
		}
	} else if f != nil {
		_ = f.Close()
	}

	// Classify the end: complete and gap-sealed streams are terminal;
	// disk failures are terminal (resuming onto a failing shard has no
	// future) and the client is told immediately; a plain connection
	// sever leaves a v2 stream resumable.
	sealed := complete || gapSeal || diskFailed || proto < ProtocolV2 || prevSealed
	s.mu.Lock()
	if prevSealed {
		// The stream was already terminal (a re-sealing reconnect whose
		// ack got lost): its recorded state stands, whatever happened to
		// this connection.
	} else {
		st.info.Bytes = st.durable
		st.info.Frames += frames
		if complete {
			st.info.DroppedEvents = dropped
			st.info.Complete = true
			st.info.Err = ""
		} else {
			st.info.Complete = false
			if serr != nil {
				st.info.Err = serr.Error()
			}
		}
		if gapSeal {
			st.info.GapBytes = gapBytes
		}
		st.info.Sealed = sealed
		st.sealed = sealed
	}
	st.active = false
	st.conn = nil
	s.writeJournalLocked()
	s.mu.Unlock()
	close(connDone)

	switch {
	case complete:
		// Acknowledge the seal so the client's Close can surface
		// daemon-side failures; a failed ack write is the client's
		// problem to observe, the shard itself is already safe.
		_, _ = conn.Write([]byte{ackByte, ackOK})
	case gapSeal && !diskFailed:
		_, _ = conn.Write([]byte{ackByte, ackGapSealed})
	case diskFailed:
		// Tell a still-live client now, so it can degrade without
		// waiting for its own end of stream.
		_, _ = conn.Write([]byte{ackByte, ackFailed})
	}
	return st, sealed && !prevSealed, serr
}

// readHandshake validates the magic, version, stream id and (v2) token.
func readHandshake(br *bufio.Reader) (proto byte, id string, token uint64, err error) {
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, "", 0, fmt.Errorf("sink: reading handshake: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return 0, "", 0, fmt.Errorf("sink: bad handshake magic %q", hdr[:len(Magic)])
	}
	proto = hdr[len(Magic)]
	if proto != ProtocolV1 && proto != ProtocolV2 {
		return 0, "", 0, fmt.Errorf("sink: protocol version %d not supported (this build speaks %d and %d)",
			proto, ProtocolV1, ProtocolV2)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, "", 0, fmt.Errorf("sink: reading stream id: %w", err)
	}
	if n == 0 || n > MaxStreamIDLen {
		return 0, "", 0, fmt.Errorf("sink: stream id of %d bytes out of range (1..%d)", n, MaxStreamIDLen)
	}
	idb := make([]byte, n)
	if _, err := io.ReadFull(br, idb); err != nil {
		return 0, "", 0, fmt.Errorf("sink: reading stream id: %w", err)
	}
	if !ValidStreamID(string(idb)) {
		return 0, "", 0, fmt.Errorf("sink: invalid stream id %q", idb)
	}
	if proto >= ProtocolV2 {
		token, err = binary.ReadUvarint(br)
		if err != nil {
			return 0, "", 0, fmt.Errorf("sink: reading stream token: %w", err)
		}
		if token == 0 {
			return 0, "", 0, fmt.Errorf("sink: zero stream token")
		}
	}
	return proto, string(idb), token, nil
}
