package sink

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// StreamInfo describes one ingested stream — the material a fleet
// experiment's meta.json records per shard.
type StreamInfo struct {
	// ID is the stream id after collision uniquification.
	ID string
	// File is the shard file name within the server directory.
	File string
	// Bytes and Frames count the archive payload received.
	Bytes  int64
	Frames int64
	// DroppedEvents is the client-reported backpressure drop count from
	// the end-of-stream frame.
	DroppedEvents int64
	// Complete reports a cleanly ended stream (end-of-stream frame
	// seen, shard flushed and synced). A false value means the shard
	// holds the intact prefix of a severed stream — salvageable through
	// the otf2 readers' ErrTruncated contract.
	Complete bool
	// Err describes why an incomplete stream ended, "" otherwise.
	Err string
}

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	logf   func(format string, args ...any)
	onDone func(StreamInfo)
}

// WithLog installs a log callback for per-stream lifecycle messages.
func WithLog(f func(format string, args ...any)) ServerOption {
	return func(c *serverConfig) { c.logf = f }
}

// WithStreamDone installs a callback invoked after each stream ends
// (cleanly or severed), with its final StreamInfo. Callbacks run on the
// stream's goroutine, one per stream.
func WithStreamDone(f func(StreamInfo)) ServerOption {
	return func(c *serverConfig) { c.onDone = f }
}

// Server is the daemon side of the measurement service: it accepts many
// concurrent client streams and appends each one's frame payloads to
// its own shard file, "trace-<id>.otf2", in the server directory. The
// ingest hot path is per-stream — one goroutine, one file, no shared
// lock; streams touch shared state only at handshake (id registration)
// and completion. A client crash severs its stream and keeps every
// intact byte received, leaving the other shards untouched.
type Server struct {
	dir string
	cfg serverConfig

	// err latches the first server-side ingest failure (shard file
	// I/O), the same pattern the archive writer uses. A severed client
	// connection is an expected condition, not a server error.
	err atomic.Pointer[error]

	closed atomic.Bool
	wg     sync.WaitGroup

	mu      sync.Mutex
	ln      net.Listener
	used    map[string]int
	streams []*StreamInfo
}

// NewServer creates a server ingesting into dir (created if needed).
func NewServer(dir string, opts ...ServerOption) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sink: %w", err)
	}
	s := &Server{dir: dir, used: make(map[string]int)}
	for _, opt := range opts {
		opt(&s.cfg)
	}
	return s, nil
}

// Dir returns the server's shard directory.
func (s *Server) Dir() string { return s.dir }

// Err returns the first server-side ingest failure (shard file I/O),
// or nil.
func (s *Server) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Server) setErr(err error) {
	if err != nil {
		s.err.CompareAndSwap(nil, &err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.logf != nil {
		s.cfg.logf(format, args...)
	}
}

// Serve accepts connections on ln until Close, one goroutine per
// stream. It returns nil after Close; any other accept failure is
// returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, waits for in-flight streams to finish and
// returns Err. It does not write the fleet meta.json — the daemon does
// that, from Streams, once Close returns.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	return s.Err()
}

// Streams returns a snapshot of every stream seen so far, in arrival
// order.
func (s *Server) Streams() []StreamInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamInfo, len(s.streams))
	for i, st := range s.streams {
		out[i] = *st
	}
	return out
}

// register claims a shard for id, uniquifying collisions ("bots",
// "bots.2", "bots.3", ...) — two processes announcing the same id must
// not interleave into one archive.
func (s *Server) register(id string) *StreamInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.used[id]
	s.used[id] = n + 1
	if n > 0 {
		id = fmt.Sprintf("%s.%d", id, n+1)
		// The suffixed name could itself have been claimed explicitly.
		for s.used[id] > 0 {
			n++
			id = fmt.Sprintf("%s.%d", id, n+1)
		}
		s.used[id] = 1
	}
	st := &StreamInfo{ID: id, File: shardFileName(id)}
	s.streams = append(s.streams, st)
	return st
}

// shardFileName maps a stream id to its shard file name.
func shardFileName(id string) string { return "trace-" + id + ".otf2" }

// ServeConn ingests one client stream on conn (exported so tests and
// embedders can drive the server over net.Pipe without a listener). It
// closes conn, finalizes the stream's StreamInfo and invokes the
// stream-done callback. The returned error describes a protocol or
// I/O failure of this stream; a clean end-of-stream returns nil.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	st, err := s.ingest(conn)
	if st != nil {
		s.mu.Lock()
		if err != nil {
			st.Err = err.Error()
			st.Complete = false
		}
		info := *st
		s.mu.Unlock()
		if info.Complete {
			s.logf("stream %s: sealed %s (%d bytes, %d frames, %d dropped events)",
				info.ID, info.File, info.Bytes, info.Frames, info.DroppedEvents)
		} else {
			s.logf("stream %s: severed after %d bytes (%v); shard prefix kept", info.ID, info.Bytes, err)
		}
		if s.cfg.onDone != nil {
			s.cfg.onDone(info)
		}
	} else if err != nil {
		s.logf("connection rejected: %v", err)
	}
	return err
}

// ingest runs one stream's protocol. The returned StreamInfo is nil if
// the handshake never established a stream (nothing was written). On a
// severed stream every intact byte received is flushed to the shard, so
// the file is exactly the archive prefix the client got out — the
// reader's truncation salvage applies.
func (s *Server) ingest(conn net.Conn) (*StreamInfo, error) {
	br := bufio.NewReaderSize(conn, 64<<10)
	id, err := readHandshake(br)
	if err != nil {
		return nil, err
	}
	st := s.register(id)
	path := filepath.Join(s.dir, st.File)
	f, err := os.Create(path)
	if err != nil {
		err = fmt.Errorf("sink: creating shard: %w", err)
		s.setErr(err)
		return st, err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	var bytes, frames, dropped int64
	complete := false
	serr := func() error {
		for {
			kind, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("sink: reading frame: %w", err)
			}
			switch kind {
			case frameData:
				n, err := binary.ReadUvarint(br)
				if err != nil {
					return fmt.Errorf("sink: reading frame length: %w", err)
				}
				if n == 0 || n > MaxFramePayload {
					return fmt.Errorf("sink: frame of %d bytes out of range (1..%d)", n, MaxFramePayload)
				}
				m, err := io.CopyN(bw, br, int64(n))
				bytes += m
				if err != nil {
					return fmt.Errorf("sink: copying frame payload: %w", err)
				}
				frames++
			case frameEOS:
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return fmt.Errorf("sink: reading end-of-stream: %w", err)
				}
				dropped = int64(d)
				complete = true
				return nil
			default:
				return fmt.Errorf("sink: unknown frame kind %q", kind)
			}
		}
	}()
	// Flush whatever arrived — on the severed path this preserves the
	// salvageable prefix, on the clean path it completes the shard.
	ferr := bw.Flush()
	if ferr == nil && complete {
		ferr = f.Sync()
	}
	cerr := f.Close()
	if ferr == nil {
		ferr = cerr
	}
	if ferr != nil {
		ferr = fmt.Errorf("sink: writing shard %s: %w", st.File, ferr)
		s.setErr(ferr)
		if serr == nil {
			serr = ferr
		}
		complete = false
	}
	s.mu.Lock()
	st.Bytes = bytes
	st.Frames = frames
	st.DroppedEvents = dropped
	st.Complete = complete && serr == nil
	s.mu.Unlock()
	if complete && serr == nil {
		// Acknowledge the seal so the client's Close can surface
		// daemon-side failures; a failed ack write is the client's
		// problem to observe, the shard itself is already safe.
		_, _ = conn.Write([]byte{ackByte, ackOK})
	} else if serr != nil && ferr != nil {
		_, _ = conn.Write([]byte{ackByte, ackFailed})
	}
	return st, serr
}

// readHandshake validates the magic, version and stream id.
func readHandshake(br *bufio.Reader) (string, error) {
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", fmt.Errorf("sink: reading handshake: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return "", fmt.Errorf("sink: bad handshake magic %q", hdr[:len(Magic)])
	}
	if v := hdr[len(Magic)]; v != ProtocolVersion {
		return "", fmt.Errorf("sink: protocol version %d not supported (this build speaks %d)", v, ProtocolVersion)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("sink: reading stream id: %w", err)
	}
	if n == 0 || n > MaxStreamIDLen {
		return "", fmt.Errorf("sink: stream id of %d bytes out of range (1..%d)", n, MaxStreamIDLen)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(br, id); err != nil {
		return "", fmt.Errorf("sink: reading stream id: %w", err)
	}
	if !ValidStreamID(string(id)) {
		return "", fmt.Errorf("sink: invalid stream id %q", id)
	}
	return string(id), nil
}
