package omp

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/region"
)

// TestRandomTaskGraphsRunExactlyOnce drives randomly shaped task graphs
// through both schedulers and verifies conservation: every created task
// executes exactly once, on some thread, and the region always drains.
func TestRandomTaskGraphsRunExactlyOnce(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("par", "s.go", 1, region.Parallel)
	task := reg.Register("task", "s.go", 2, region.Task)
	tw := reg.Register("tw", "s.go", 3, region.Taskwait)

	for _, sched := range []SchedulerKind{SchedCentralQueue, SchedWorkStealing} {
		for seed := int64(0); seed < 12; seed++ {
			rt := NewRuntimeWithRegistry(nil, reg)
			rt.Sched = sched
			var executed atomic.Int64

			var spawn func(th *Thread, rng *rand.Rand, depth int)
			spawn = func(th *Thread, rng *rand.Rand, depth int) {
				n := rng.Intn(4)
				for i := 0; i < n; i++ {
					childSeed := rng.Int63()
					var opts []TaskOpt
					switch rng.Intn(5) {
					case 0:
						opts = append(opts, If(false))
					case 1:
						opts = append(opts, Final(depth > 2))
					}
					th.NewTask(task, func(c *Thread) {
						executed.Add(1)
						if depth < 4 {
							spawn(c, rand.New(rand.NewSource(childSeed)), depth+1)
							if childSeed%2 == 0 {
								c.Taskwait(tw)
							}
						}
					}, opts...)
				}
				if rng.Intn(2) == 0 {
					th.Taskwait(tw)
				}
			}

			threads := 1 + int(seed%4)
			rt.Parallel(threads, par, func(th *Thread) {
				spawn(th, rand.New(rand.NewSource(seed*31+int64(th.ID))), 0)
			})
			st := rt.LastTeamStats()
			if executed.Load() != st.TasksCreated {
				t.Fatalf("sched=%v seed=%d: executed %d of %d created tasks",
					sched, seed, executed.Load(), st.TasksCreated)
			}
			// Scheduler-counter consistency: every steal() call is one
			// attempt resolving to at most one success or failure, and
			// the per-thread histogram must account for every success.
			if st.StealAttempts < st.Steals+st.FailedSteals {
				t.Fatalf("sched=%v seed=%d: attempts %d < steals %d + failed %d",
					sched, seed, st.StealAttempts, st.Steals, st.FailedSteals)
			}
			var hist int64
			for _, s := range st.ThreadSteals {
				hist += s
			}
			if hist != st.Steals {
				t.Fatalf("sched=%v seed=%d: ThreadSteals sums to %d, want %d",
					sched, seed, hist, st.Steals)
			}
			if sched == SchedCentralQueue && st.Steals != 0 {
				t.Fatalf("central queue recorded %d steals", st.Steals)
			}
		}
	}
}

// TestQuickTaskCountConservation: property over arbitrary creation
// plans — a plan is a list of per-thread child counts; the total
// executed must match.
func TestQuickTaskCountConservation(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("qpar", "s.go", 1, region.Parallel)
	task := reg.Register("qtask", "s.go", 2, region.Task)

	f := func(plan []uint8, schedCentral bool) bool {
		if len(plan) > 64 {
			plan = plan[:64]
		}
		rt := NewRuntimeWithRegistry(nil, reg)
		if !schedCentral {
			rt.Sched = SchedWorkStealing
		}
		var executed atomic.Int64
		var want int64
		for _, c := range plan {
			want += int64(c % 8)
		}
		rt.Parallel(4, par, func(th *Thread) {
			// Thread i takes plan entries i, i+4, i+8, ...
			for idx := th.ID; idx < len(plan); idx += 4 {
				for j := 0; j < int(plan[idx]%8); j++ {
					th.NewTask(task, func(c *Thread) {
						executed.Add(1)
						// Half the tasks create one nested child.
						if j := executed.Load(); j%2 == 0 {
							c.NewTask(task, func(*Thread) { executed.Add(1) })
						}
					})
				}
			}
		})
		created := rt.LastTeamStats().TasksCreated
		return executed.Load() == created && executed.Load() >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRepeatedBarriersInterleavedWithTasks stresses the sense-reversing
// barrier across many generations with task churn.
func TestRepeatedBarriersInterleavedWithTasks(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("bpar", "s.go", 1, region.Parallel)
	task := reg.Register("btask", "s.go", 2, region.Task)
	bar := reg.Register("bbar", "s.go", 3, region.Barrier)

	rt := NewRuntimeWithRegistry(nil, reg)
	const rounds = 50
	counts := make([]atomic.Int64, rounds)
	rt.Parallel(8, par, func(th *Thread) {
		for r := 0; r < rounds; r++ {
			r := r
			th.NewTask(task, func(*Thread) { counts[r].Add(1) })
			th.Barrier(bar)
			// After each barrier, all 8 tasks of this round are done.
			if got := counts[r].Load(); got != 8 {
				t.Errorf("round %d: %d tasks after barrier, want 8", r, got)
			}
		}
	})
}

// TestManySequentialParallelRegions checks the runtime is reusable.
func TestManySequentialParallelRegions(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("mpar", "s.go", 1, region.Parallel)
	task := reg.Register("mtask", "s.go", 2, region.Task)
	rt := NewRuntimeWithRegistry(nil, reg)
	var total atomic.Int64
	for i := 0; i < 100; i++ {
		n := 1 + i%8
		rt.Parallel(n, par, func(th *Thread) {
			th.NewTask(task, func(*Thread) { total.Add(1) })
		})
	}
	var want int64
	for i := 0; i < 100; i++ {
		want += int64(1 + i%8)
	}
	if total.Load() != want {
		t.Errorf("total tasks = %d, want %d", total.Load(), want)
	}
}

// TestClaimContention hammers one published task set from many threads
// through the barrier drain; every task must run exactly once despite
// claim races between the child list and the global queue.
func TestClaimContention(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("cpar", "s.go", 1, region.Parallel)
	task := reg.Register("ctask", "s.go", 2, region.Task)
	tw := reg.Register("ctw", "s.go", 3, region.Taskwait)
	rt := NewRuntimeWithRegistry(nil, reg)

	var executed atomic.Int64
	rt.Parallel(8, par, func(th *Thread) {
		if th.ID == 0 {
			// Creator immediately taskwaits: it claims children from its
			// child list while the other 7 threads claim the same tasks
			// from the global queue.
			for i := 0; i < 5000; i++ {
				th.NewTask(task, func(*Thread) { executed.Add(1) })
			}
			th.Taskwait(tw)
			if got := executed.Load(); got != 5000 {
				t.Errorf("after taskwait: %d executed, want 5000", got)
			}
		}
	})
	if executed.Load() != 5000 {
		t.Errorf("executed = %d, want 5000", executed.Load())
	}
}

// TestFreeListIsolationBetweenThreads: recycled tasks must never leak
// profiling data or identity across instances.
func TestFreeListIsolationBetweenThreads(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("fpar", "s.go", 1, region.Parallel)
	task := reg.Register("ftask", "s.go", 2, region.Task)
	tw := reg.Register("ftw", "s.go", 3, region.Taskwait)
	rt := NewRuntimeWithRegistry(nil, reg)
	rt.Parallel(4, par, func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.NewTask(task, func(c *Thread) {
				cur := c.Current()
				if cur.Instance != nil {
					t.Error("recycled task carries stale instance data")
				}
				if cur.Region != task {
					t.Error("recycled task carries stale region")
				}
			})
			if i%10 == 0 {
				th.Taskwait(tw)
			}
		}
	})
}

// TestStressWithRaceSmall is a compact workload designed to be run under
// -race in CI: all scheduler paths, nested taskwaits, final clauses.
func TestStressWithRaceSmall(t *testing.T) {
	reg := region.NewRegistry()
	par := reg.Register("rpar", "s.go", 1, region.Parallel)
	task := reg.Register("rtask", "s.go", 2, region.Task)
	tw := reg.Register("rtw", "s.go", 3, region.Taskwait)
	for _, sched := range []SchedulerKind{SchedCentralQueue, SchedWorkStealing} {
		rt := NewRuntimeWithRegistry(nil, reg)
		rt.Sched = sched
		var sum atomic.Int64
		rt.Parallel(8, par, func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.NewTask(task, func(c *Thread) {
					c.NewTask(task, func(*Thread) { sum.Add(1) }, Final(true))
					c.NewTask(task, func(gc *Thread) {
						gc.NewTask(task, func(*Thread) { sum.Add(1) })
						gc.Taskwait(tw)
					})
					c.Taskwait(tw)
					sum.Add(1)
				})
			}
		})
		if got := sum.Load(); got != 8*50*3 {
			t.Errorf("sched=%v: sum = %d, want %d", sched, got, 8*50*3)
		}
	}
}
