// Package omp implements an OpenMP-3.0-like shared-memory tasking
// runtime in pure Go. It is the substrate the reproduced paper's
// profiling system measures: fork/join parallel regions executed by a
// team of worker goroutines ("threads"), explicit *tied* tasks scheduled
// through per-thread work-stealing deques, taskwait and task-draining
// barriers as scheduling points, and if/final/untied task clauses.
//
// Tied-task semantics come for free from the execution model: a task
// suspended at a scheduling point stays on the worker's goroutine stack
// while the worker executes other tasks inline, so every fragment of an
// instance runs on the thread that started it, and suspension/resumption
// nests exactly like the event streams in the paper's Figs. 2 and 4.
//
// # Scheduler design
//
// Two schedulers are provided. SchedCentralQueue routes every task
// through one mutex-protected team queue (lockedDeque) — the GCC 4.6
// libgomp design whose lock contention the paper identifies as the
// cause of its Fig. 15 slowdowns; it is kept as the ablation baseline.
// SchedWorkStealing gives each thread a lock-free Chase–Lev deque
// (wsDeque): the owner pushes and pops LIFO at the bottom with plain
// atomic loads/stores (no lock, no CAS except for the last element), so
// it keeps working on its cache-hot, most recently created tasks, while
// thieves steal FIFO at the top through a CAS — taking the oldest and
// typically largest piece of work, which amortizes the steal over the
// most useful-work per synchronization. Execution rights are decided by
// the generation-tagged claim word on the task, so an entry reachable
// both from a deque and from a parent's child list runs exactly once.
//
// Idle threads descend a spin→yield→park ladder (idleLadder): a bounded
// spin for work that arrives within microseconds, a few runtime.Gosched
// passes, then parking on the team's idleNotifier. Task publication,
// task completion and barrier release signal the notifier, so a parked
// thief wakes the moment work exists regardless of GOMAXPROCS — the
// fix for single-core starvation, where a spinning creator could drain
// its own deque before a thief was ever scheduled.
//
// The runtime emits the POMP2-style event stream (enter/exit,
// task-create, task-begin/end/switch) through the Listener interface;
// with a nil listener it is the "uninstrumented" baseline of the
// overhead experiments.
//
// Measurement state travels in typed per-thread (and per-task) listener
// slots: Thread.Profile carries the profiling location, Thread.TraceData
// the trace recorder's buffer, Task.Instance the active task-instance
// profile. Slots are assigned once at ThreadBegin (TaskBegin for tasks)
// from the owning goroutine, which keeps every per-event listener
// callback free of locks, map lookups and allocations — the contract
// behind the probe costs documented in the facade's Overhead section.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/region"
)

// SchedulerKind selects the task scheduling strategy.
type SchedulerKind int

const (
	// SchedCentralQueue uses one team-wide task queue protected by a
	// single lock — the GCC 4.6 libgomp design the paper measured. Under
	// many small tasks the queue lock becomes the bottleneck, which is
	// exactly the behaviour behind the paper's Fig. 15 (runtime grows
	// with threads) and Table III (management time explodes). Default.
	SchedCentralQueue SchedulerKind = iota
	// SchedWorkStealing uses per-thread deques with LIFO local pops and
	// FIFO steals (Cilk-style). Provided as an ablation showing how much
	// of the paper's observed pathology is the runtime's queue design.
	SchedWorkStealing
)

// String names the scheduler.
func (s SchedulerKind) String() string {
	switch s {
	case SchedCentralQueue:
		return "central-queue"
	case SchedWorkStealing:
		return "work-stealing"
	}
	return fmt.Sprintf("sched(%d)", int(s))
}

// Runtime is the top-level entry point, analogous to the OpenMP runtime
// library. A Runtime is safe for sequential reuse across many parallel
// regions; the Listener, Registry and Sched must be configured before
// the first Parallel call.
type Runtime struct {
	listener Listener
	registry *region.Registry

	// Sched selects the task scheduler (default SchedCentralQueue,
	// modelling the libgomp version the paper evaluated).
	Sched SchedulerKind

	// SpinYield controls whether idle threads call runtime.Gosched while
	// waiting at scheduling points (default true). Disabling it models a
	// pure spin-wait runtime; the ablation bench compares the two.
	SpinYield bool

	untiedDemoted atomic.Int64

	lastStats TeamStats
	statsMu   sync.Mutex
}

// NewRuntime returns a runtime emitting events to l (nil for an
// uninstrumented runtime) and interning derived regions (implicit
// barriers) in the default registry.
func NewRuntime(l Listener) *Runtime {
	return &Runtime{listener: l, registry: region.Default, SpinYield: true}
}

// NewRuntimeWithRegistry is NewRuntime with an explicit region registry,
// used by tests that must not pollute the global registry.
func NewRuntimeWithRegistry(l Listener, reg *region.Registry) *Runtime {
	return &Runtime{listener: l, registry: reg, SpinYield: true}
}

// Listener returns the configured listener (nil when uninstrumented).
func (rt *Runtime) Listener() Listener { return rt.listener }

// Instrumented reports whether a listener is attached.
func (rt *Runtime) Instrumented() bool { return rt.listener != nil }

// UntiedCount returns how many untied tasks were demoted to tied
// (Section IV-D2 work-around).
func (rt *Runtime) UntiedCount() int64 { return rt.untiedDemoted.Load() }

// TeamStats captures runtime-internal counters of one parallel region,
// used by tests and by the ablation benchmarks. Beyond task totals it
// reports scheduler contention — steal attempts and failures, parks and
// wakes — so the ablation benchmarks can show *why* a configuration is
// slow, not just that it is.
type TeamStats struct {
	Threads      int
	TasksCreated int64

	// Steals counts successful steals (work-stealing scheduler only).
	Steals int64
	// StealAttempts counts calls to a victim deque's steal operation,
	// successful or not; StealAttempts-Steals is wasted synchronization.
	StealAttempts int64
	// FailedSteals counts attempts lost to contention: a top-CAS race
	// with another thief (or the victim's pop of its last entry), or an
	// entry whose claim was won elsewhere.
	FailedSteals int64

	// Parks counts times a thread actually slept on the team's idle
	// notifier; Wakes counts broadcasts that found sleepers.
	Parks int64
	Wakes int64

	MaxStackDepth int // deepest inline task nesting observed on any thread

	// ThreadSteals is the per-thread histogram of successful steals,
	// indexed by thread ID: the imbalance fingerprint of the region.
	ThreadSteals []int64
}

// LastTeamStats returns the counters of the most recently completed
// parallel region.
func (rt *Runtime) LastTeamStats() TeamStats {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	return rt.lastStats
}

// Team is one fork/join thread team executing a parallel region.
type Team struct {
	rt      *Runtime
	threads []*Thread

	// central is the team-wide task queue used by SchedCentralQueue.
	central lockedDeque

	// idle is the team's eventcount: threads out of work park here and
	// are signaled on task publication, completion and barrier release.
	idle idleNotifier

	pending    atomic.Int64 // created but not yet completed tasks
	created    atomic.Int64
	nextTaskID atomic.Uint64

	barrier centralBarrier

	criticalMu sync.Mutex
	criticals  map[*region.Region]*sync.Mutex

	singleMu  sync.Mutex
	singleGen map[int64]*singleState
}

// singleState tracks one lexical Single encounter: whether its body was
// claimed and how many team threads have passed it. The entry is pruned
// once every thread arrived, keeping the map bounded by the number of
// in-flight encounters instead of growing monotonically.
type singleState struct {
	claimed bool
	arrived int
}

// signalWork wakes idle-parked teammates after task publication or
// completion. In a single-thread team nobody can ever be parked while
// the thread itself makes progress, so the (two-atomic-op) signal is
// skipped — it would otherwise tax every task on the hot path.
func (tm *Team) signalWork() {
	if len(tm.threads) > 1 {
		tm.idle.signal()
	}
}

// Thread is one worker of a team — the analog of an OpenMP thread. All
// methods must be called from the worker's own goroutine (they are handed
// to the parallel-region body and task bodies as the execution context).
type Thread struct {
	// ID is the thread number within the team, 0..NumThreads-1.
	ID int

	// Profile is the profiling measurement's typed per-thread slot: the
	// location (per-thread profile) bound at ThreadBegin and cleared at
	// ThreadEnd. The slot contract makes the per-event hot path
	// lock-free: each listener kind owns its own slot, assigned once at
	// ThreadBegin from the thread's own goroutine, so no event ever
	// takes a lock or consults a map to find its per-thread state.
	Profile *core.ThreadProfile

	// TraceData is the trace subsystem's per-thread slot, carrying the
	// trace recorder's event buffer under the same contract as Profile.
	// It is untyped only because the buffer type lives above this
	// package; the recorder claims it with a single type assertion.
	TraceData any

	team    *Team
	deque   wsDeque
	current *Task // task being executed; nil -> implicit task

	implicitChildren atomic.Int32 // incomplete children of the implicit task
	// implicitChildEntries lists queued children of this thread's
	// implicit task for taskwait's tied-task scheduling constraint.
	implicitChildEntries []claimEntry

	freeTasks     *Task
	stealSeq      uint32
	stackDepth    int
	maxStackDepth int
	singleSeq     int64

	// Scheduler counters, owner-written only (no synchronization on the
	// hot path); aggregated into TeamStats when the region ends.
	steals        int64
	stealAttempts int64
	failedSteals  int64
	parks         int64
}

// Team returns the thread's team.
func (t *Thread) Team() *Team { return t.team }

// Runtime returns the runtime this thread's team belongs to.
func (t *Thread) Runtime() *Runtime { return t.team.rt }

// NumThreads returns the team size.
func (t *Thread) NumThreads() int { return len(t.team.threads) }

// Current returns the explicit task instance this thread is currently
// executing, or nil when it executes its implicit task.
func (t *Thread) Current() *Task { return t.current }

// InTask reports whether an explicit task is being executed.
func (t *Thread) InTask() bool { return t.current != nil }

// Parallel executes body on a team of n threads, modelling
// "#pragma omp parallel num_threads(n)". Every thread runs body as its
// implicit task; an implicit task-draining barrier closes the region.
// Parallel returns when all threads have left the implicit barrier and
// all tasks created in the region have completed.
func (rt *Runtime) Parallel(n int, r *region.Region, body func(t *Thread)) {
	if n < 1 {
		panic(fmt.Sprintf("omp: Parallel with %d threads", n))
	}
	team := &Team{
		rt:        rt,
		threads:   make([]*Thread, n),
		criticals: make(map[*region.Region]*sync.Mutex),
		singleGen: make(map[int64]*singleState),
	}
	team.barrier.n = int32(n)
	for i := 0; i < n; i++ {
		team.threads[i] = &Thread{ID: i, team: team}
	}
	ibar := rt.implicitBarrierRegion(r)

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(t *Thread) {
			defer wg.Done()
			l := rt.listener
			if l != nil {
				l.ThreadBegin(t)
				l.Enter(t, r)
			}
			body(t)
			t.barrierWait(ibar)
			if l != nil {
				l.Exit(t, r)
				l.ThreadEnd(t)
			}
		}(team.threads[i])
	}
	wg.Wait()

	if p := team.pending.Load(); p != 0 {
		panic(fmt.Sprintf("omp: parallel region ended with %d pending tasks", p))
	}
	st := TeamStats{
		Threads:      n,
		TasksCreated: team.created.Load(),
		Wakes:        team.idle.wakes.Load(),
		ThreadSteals: make([]int64, n),
	}
	for _, t := range team.threads {
		if t.maxStackDepth > st.MaxStackDepth {
			st.MaxStackDepth = t.maxStackDepth
		}
		st.Steals += t.steals
		st.StealAttempts += t.stealAttempts
		st.FailedSteals += t.failedSteals
		st.Parks += t.parks
		st.ThreadSteals[t.ID] = t.steals
	}
	rt.statsMu.Lock()
	rt.lastStats = st
	rt.statsMu.Unlock()
}

// implicitBarrierRegion interns the implicit-barrier region derived from
// a parallel region, as OPARI2 does when rewriting the pragma.
func (rt *Runtime) implicitBarrierRegion(r *region.Region) *region.Region {
	return rt.registry.Register(r.Name+" (implicit barrier)", r.File, r.Line, region.ImplicitBarrier)
}

// Barrier models "#pragma omp barrier": the thread waits until all team
// members arrive, executing queued tasks while waiting. r is the region
// metrics are attributed to.
func (t *Thread) Barrier(r *region.Region) {
	t.barrierWait(r)
}

// barrierWait enters the team barrier with enter/exit events on r.
func (t *Thread) barrierWait(r *region.Region) {
	l := t.team.rt.listener
	if l != nil {
		l.Enter(t, r)
	}
	t.team.barrier.wait(t)
	if l != nil {
		l.Exit(t, r)
	}
}

// Master models "#pragma omp master": only thread 0 executes fn. There is
// no implied barrier.
func (t *Thread) Master(r *region.Region, fn func(t *Thread)) {
	if t.ID != 0 {
		return
	}
	l := t.team.rt.listener
	if l != nil {
		l.Enter(t, r)
	}
	fn(t)
	if l != nil {
		l.Exit(t, r)
	}
}

// Single models "#pragma omp single nowait": exactly one thread of the
// team executes fn per lexical encounter. Threads must encounter Single
// constructs in the same order. There is no implied barrier; combine with
// Barrier for the blocking form.
func (t *Thread) Single(r *region.Region, fn func(t *Thread)) {
	seq := t.singleSeq
	t.singleSeq++
	team := t.team
	team.singleMu.Lock()
	st := team.singleGen[seq]
	if st == nil {
		st = &singleState{}
		team.singleGen[seq] = st
	}
	claimed := st.claimed
	st.claimed = true
	st.arrived++
	if st.arrived == len(team.threads) {
		// Every thread passed this encounter; no one can look it up again.
		delete(team.singleGen, seq)
	}
	team.singleMu.Unlock()
	if claimed {
		return
	}
	l := team.rt.listener
	if l != nil {
		l.Enter(t, r)
	}
	fn(t)
	if l != nil {
		l.Exit(t, r)
	}
}

// Critical models "#pragma omp critical(name)": mutual exclusion between
// team threads per critical region.
func (t *Thread) Critical(r *region.Region, fn func(t *Thread)) {
	team := t.team
	team.criticalMu.Lock()
	mu, ok := team.criticals[r]
	if !ok {
		mu = &sync.Mutex{}
		team.criticals[r] = mu
	}
	team.criticalMu.Unlock()

	mu.Lock()
	l := team.rt.listener
	if l != nil {
		l.Enter(t, r)
	}
	fn(t)
	if l != nil {
		l.Exit(t, r)
	}
	mu.Unlock()
}

// For models a statically scheduled "#pragma omp for" over [0,n): the
// iteration space is split into contiguous chunks, one per thread. There
// is no implied barrier; combine with Barrier if needed.
func (t *Thread) For(r *region.Region, n int, fn func(t *Thread, i int)) {
	l := t.team.rt.listener
	if l != nil {
		l.Enter(t, r)
	}
	nt := t.NumThreads()
	chunk := (n + nt - 1) / nt
	lo := t.ID * chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		fn(t, i)
	}
	if l != nil {
		l.Exit(t, r)
	}
}

// centralBarrier is a sense-reversing barrier with task draining: threads
// waiting at the barrier execute queued tasks, and the barrier releases
// only when all threads arrived AND no task is pending — the OpenMP
// guarantee that all explicit tasks complete at barriers.
//
// The n-th arriver of each generation — unique, determined by the value
// arrived.Add(1) returns — is the designated releaser: it drains the
// task pool to pending == 0, resets the arrival count and advances the
// generation. An earlier design instead let any thread race a CAS on
// gen once it observed arrived >= n, which was unsound across
// generations: between a releaser's gen CAS and its arrived -= n
// bookkeeping, fast threads could re-arrive and observe a stale count
// that still included the previous generation, releasing the next
// barrier before all its threads arrived and corrupting the count for
// every round after (the single-designated-releaser structure makes
// that window impossible: arrivals for generation g+1 cannot begin
// until the releaser of g has already reset the count).
type centralBarrier struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint32
}

func (b *centralBarrier) wait(t *Thread) {
	team := t.team
	// gen is stable here: this generation cannot release before this
	// thread's arrival below is counted.
	g := b.gen.Load()
	pos := b.arrived.Add(1)
	var lad idleLadder
	if pos == b.n {
		// Designated releaser: every thread has arrived, so no new
		// tasks can appear once pending reaches zero (tasks are only
		// created by the region body or by running tasks, and a running
		// task keeps pending above zero until it completes).
		for team.pending.Load() != 0 {
			if tk := t.findTask(); tk != nil {
				t.runTask(tk)
				lad.reset()
				continue
			}
			lad.step(t)
		}
		// Reset strictly before advancing gen: a thread re-arrives for
		// the next generation only after it observes the new gen, so
		// the count it increments is never the stale one.
		b.arrived.Add(-b.n)
		b.gen.Add(1)
		// Release parked waiters of this generation.
		team.signalWork()
		return
	}
	for {
		// Drain tasks first: useful work shortens the barrier for all.
		if tk := t.findTask(); tk != nil {
			t.runTask(tk)
			lad.reset()
			continue
		}
		if b.gen.Load() != g {
			return
		}
		lad.step(t)
	}
}
