package omp

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/region"
)

// TaskFunc is the body of an explicit task. It receives the thread that
// is executing the task, which — because tasks in this runtime are tied —
// stays the same for the whole execution of the instance.
type TaskFunc func(t *Thread)

// Task is one explicit task instance. Instances are recycled through
// per-thread free lists after completion, mirroring Score-P's reuse of
// task-instance data structures (Section V-B).
type Task struct {
	// Region identifies the task construct this instance was created
	// from. All instances of one construct share the Region and are
	// merged into one aggregate task tree in the profile.
	Region *region.Region

	// ID is a process-unique instance identifier, useful for traces and
	// debugging. The profiling algorithm itself identifies instances by
	// the Instance pointer travelling with the task, exactly as OPARI2
	// stores instance IDs "inside the tasks' context itself".
	ID uint64

	// Instance is the measurement system's typed slot: it carries the
	// task-instance profile from TaskBegin to TaskEnd/TaskSwitch, so
	// resuming a suspended task costs one field load instead of a type
	// assertion on an untyped slot.
	Instance *core.TaskInstance

	fn       TaskFunc
	parent   *Task // nil when created by an implicit task directly
	creator  int   // thread that created the task (owner of the implicit parent)
	depth    int32 // nesting depth: 0 for tasks created by implicit tasks
	final    bool  // in a final task region: descendants execute undeferred
	children atomic.Int32

	// claim is the execution-claim word: generation<<1 | claimed-bit.
	// Queue entries snapshot it at publication; the first CAS wins the
	// right to execute (see claimEntry).
	claim atomic.Uint64

	// childEntries lists the queued children of this task, newest last.
	// It implements the tied-task scheduling constraint: at this task's
	// taskwait, the thread may only pick up descendants — in practice
	// libgomp runs the waiting task's own children, which is what bounds
	// the number of concurrently suspended instances per thread to the
	// recursion depth (paper Table II). Only the tied owner thread
	// touches the list, so it is unsynchronized.
	childEntries []claimEntry

	// refs keeps the instance alive until it completed AND all children
	// completed: children decrement the parent's child counter on
	// completion, so the parent must not be recycled while children are
	// outstanding even though tied tasks may finish before their children.
	refs atomic.Int32

	// freelist linkage (per-thread, accessed only by the owner)
	next *Task
}

// Depth returns the task nesting depth (0 for tasks created by the
// implicit task).
func (tk *Task) Depth() int { return int(tk.depth) }

// Final reports whether this instance executes in a final context,
// i.e. all tasks it creates are undeferred.
func (tk *Task) Final() bool { return tk.final }

// TaskOpt modifies task creation, modelling OpenMP task clauses. It
// transforms the option struct by value: passing a pointer instead
// would make the struct escape to the heap on every NewTask call (the
// compiler cannot see through the indirect call), putting an allocation
// on the task-spawn hot path.
type TaskOpt func(taskOpts) taskOpts

type taskOpts struct {
	ifClause bool // false -> undeferred
	final    bool
	untied   bool
}

// Singleton option funcs: returning one of two predeclared funcs keeps
// If/Final allocation-free on the task-spawn hot path — a per-spawn
// closure capturing expr would allocate on every instrumented task
// creation (the paper's fib situation, millions of spawns).
var (
	ifTrue   TaskOpt = func(o taskOpts) taskOpts { o.ifClause = true; return o }
	ifFalse  TaskOpt = func(o taskOpts) taskOpts { o.ifClause = false; return o }
	finalOn  TaskOpt = func(o taskOpts) taskOpts { o.final = true; return o }
	finalOff TaskOpt = func(o taskOpts) taskOpts { o.final = false; return o }
)

// If models the if(expr) clause: when expr is false the task is
// undeferred and executes immediately on the creating thread.
func If(expr bool) TaskOpt {
	if expr {
		return ifTrue
	}
	return ifFalse
}

// Final models the final(expr) clause: when expr is true the task and all
// its descendants execute undeferred (included tasks).
func Final(expr bool) TaskOpt {
	if expr {
		return finalOn
	}
	return finalOff
}

// Untied models the untied clause. The paper's instrumentation cannot
// support untied tasks because the runtime provides no task-switch hooks
// at arbitrary interruption points; "as a work-around, our instrumentation
// makes all tasks tied by default" (Section IV-D2). This runtime applies
// the same work-around: the clause is accepted and recorded, but the task
// executes tied. Runtime.UntiedCount reports how many were demoted.
func Untied() TaskOpt { return untiedOn }

var untiedOn TaskOpt = func(o taskOpts) taskOpts { o.untied = true; return o }

// NewTask creates an explicit task of the given task construct region,
// modelling "#pragma omp task". The creating thread emits task-creation
// events, publishes the task (global queue + the parent's child list)
// and returns. Undeferred tasks (if(false), final context) execute
// inline before NewTask returns.
func (t *Thread) NewTask(r *region.Region, fn TaskFunc, opts ...TaskOpt) {
	o := taskOpts{ifClause: true}
	for _, opt := range opts {
		o = opt(o)
	}
	team := t.team
	if o.untied {
		team.rt.untiedDemoted.Add(1)
	}

	if l := team.rt.listener; l != nil {
		l.TaskCreateBegin(t, r)
	}

	tk := t.allocTask()
	tk.Region = r
	tk.ID = team.nextTaskID.Add(1)
	tk.fn = fn
	tk.parent = t.current
	tk.creator = t.ID
	tk.final = o.final
	tk.refs.Store(1)
	if t.current != nil {
		t.current.refs.Add(1)
		tk.depth = t.current.depth + 1
		if t.current.final {
			tk.final = true
		}
	} else {
		tk.depth = 0
	}

	t.childCounter().Add(1)
	team.pending.Add(1)
	team.created.Add(1)

	undeferred := !o.ifClause || (t.current != nil && t.current.final)
	if undeferred {
		// Included/undeferred task: claim immediately (it is never
		// published) and execute inline — a scheduling point by
		// definition.
		e := claimEntry{task: tk, word: tk.claim.Load()}
		if !e.tryClaim() {
			panic("omp: undeferred task already claimed")
		}
		if l := team.rt.listener; l != nil {
			l.TaskCreateEnd(t, tk)
		}
		t.runTask(tk)
		return
	}

	// Publish: creation-end event first — once published, another thread
	// may execute and recycle the instance, so the creator must not
	// touch tk afterwards (beyond the snapshot in the entries).
	if l := team.rt.listener; l != nil {
		l.TaskCreateEnd(t, tk)
	}
	e := claimEntry{task: tk, word: tk.claim.Load()}
	if cur := t.current; cur != nil {
		cur.childEntries = append(cur.childEntries, e)
	} else {
		t.implicitChildEntries = append(t.implicitChildEntries, e)
	}
	if team.rt.Sched == SchedCentralQueue {
		team.central.push(e)
	} else {
		t.deque.push(e)
	}
	// Wake parked thieves: work exists now.
	team.signalWork()
}

// Taskwait models "#pragma omp taskwait": the current task (implicit or
// explicit) waits until all its direct children have completed. While
// waiting, the thread executes *child tasks of the waiting task* — the
// tied-task scheduling constraint, which makes suspension nesting (and
// the profiler's concurrent-instance count) follow the recursion depth,
// as in the paper's Table II. The region r is the taskwait region
// metrics are attributed to.
func (t *Thread) Taskwait(r *region.Region) {
	team := t.team
	if l := team.rt.listener; l != nil {
		l.Enter(t, r)
	}
	counter := t.childCounter()
	var lad idleLadder
	for counter.Load() > 0 {
		if tk := t.claimChildTask(); tk != nil {
			t.runTask(tk)
			lad.reset()
			continue
		}
		// Remaining children are running on (or claimed by) other
		// threads; the tied-task constraint forbids picking up
		// unrelated tasks here. Their completion signals the team
		// notifier, so parking cannot miss the last decrement.
		lad.step(t)
	}
	if l := team.rt.listener; l != nil {
		l.Exit(t, r)
	}
}

// Taskyield models "#pragma omp taskyield" (OpenMP 3.1): a scheduling
// point at which the current task may be suspended in favour of one of
// its queued children (the tied-task constraint applies as at taskwait).
// The region r is the taskyield region metrics are attributed to.
func (t *Thread) Taskyield(r *region.Region) {
	team := t.team
	if l := team.rt.listener; l != nil {
		l.Enter(t, r)
	}
	if tk := t.claimChildTask(); tk != nil {
		t.runTask(tk)
	}
	if l := team.rt.listener; l != nil {
		l.Exit(t, r)
	}
}

// claimChildTask claims the newest unclaimed child of the current task
// (or of the implicit task). Entries whose claim fails were taken by
// other threads through the global queue and are dropped.
func (t *Thread) claimChildTask() *Task {
	list := &t.implicitChildEntries
	if t.current != nil {
		list = &t.current.childEntries
	}
	for n := len(*list); n > 0; n = len(*list) {
		e := (*list)[n-1]
		*list = (*list)[:n-1]
		if e.tryClaim() {
			t.dropClaimedFromDeque(e)
			return e.task
		}
	}
	return nil
}

// dropClaimedFromDeque keeps the own deque tidy after a child-list
// claim. Both the child list and the deque are LIFO over the same
// publications, so the entry just claimed at a taskwait is usually
// still the newest entry of the own deque; popping it eagerly stops
// stale entries from piling up until the next barrier drain — which on
// deep task recursions would otherwise grow the deque (and the GC-
// scanned heap) linearly with the total task count and feed thieves
// mountains of already-claimed garbage.
func (t *Thread) dropClaimedFromDeque(e claimEntry) {
	if t.team.rt.Sched != SchedWorkStealing {
		return
	}
	if pe, ok := t.deque.pop(); ok && (pe.task != e.task || pe.word != e.word) {
		t.deque.push(pe) // a different publication, possibly live: restore it
	}
}

// childCounter returns the incomplete-children counter of the task the
// thread is currently executing (the implicit task's counter when no
// explicit task is active).
func (t *Thread) childCounter() *atomic.Int32 {
	if t.current != nil {
		return &t.current.children
	}
	return &t.implicitChildren
}

// runTask executes the claimed task tk inline on this thread, emitting
// the task events the profiling algorithm consumes. Because execution is
// inline at a scheduling point, the task currently running on this
// thread is suspended for the duration — the exact tied-task suspension
// semantics of the paper's Figs. 2 and 4 — and resumes (TaskSwitch)
// afterwards.
func (t *Thread) runTask(tk *Task) {
	team := t.team
	prev := t.current
	t.current = tk
	t.stackDepth++
	if t.stackDepth > t.maxStackDepth {
		t.maxStackDepth = t.stackDepth
	}

	l := team.rt.listener
	if l != nil {
		l.TaskBegin(t, tk)
	}
	tk.fn(t)
	if l != nil {
		l.TaskEnd(t, tk)
	}

	t.stackDepth--
	t.current = prev
	if l != nil {
		l.TaskSwitch(t, prev)
	}

	// Completion bookkeeping after all events: decrement the parent's
	// child counter and the team's pending counter, then drop references.
	if p := tk.parent; p != nil {
		p.children.Add(-1)
		if p.refs.Add(-1) == 0 {
			t.freeTask(p)
		}
	} else {
		team.threads[tk.creator].implicitChildren.Add(-1)
	}
	team.pending.Add(-1)
	if tk.refs.Add(-1) == 0 {
		t.freeTask(tk)
	}
	// Wake parked waiters: a taskwait may be blocked on this child, a
	// barrier on the pending count reaching zero.
	team.signalWork()
}

// findTask claims the next globally available task: from the central
// queue, or (work stealing) LIFO from the own deque, then FIFO from
// victims. Used at barriers, where the implicit task may execute any
// task. Entries claimed elsewhere are discarded.
func (t *Thread) findTask() *Task {
	team := t.team
	if team.rt.Sched == SchedCentralQueue {
		for {
			e, ok := team.central.pop()
			if !ok {
				return nil
			}
			if e.tryClaim() {
				return e.task
			}
		}
	}
	for {
		e, ok := t.deque.pop()
		if !ok {
			break
		}
		if e.tryClaim() {
			return e.task
		}
	}
	n := len(team.threads)
	if n == 1 {
		return nil
	}
	// Rotate the starting victim to avoid convoying on thread 0.
	start := int(t.stealSeq)
	t.stealSeq++
	for i := 0; i < n-1; i++ {
		// The offset 1+(start+i)%(n-1) lies in [1, n-1], so v covers
		// every thread except t itself.
		v := (t.ID + 1 + (start+i)%(n-1)) % n
		victim := &team.threads[v].deque
		for {
			t.stealAttempts++
			e, outcome := victim.steal()
			if outcome == stealEmpty {
				break
			}
			if outcome == stealRace {
				// Lost the top CAS to another thief (or the victim's
				// pop of its last entry); the deque moved, so retry.
				t.failedSteals++
				continue
			}
			if e.tryClaim() {
				t.steals++
				return e.task
			}
			// Entry already executed via the parent's child list.
			t.failedSteals++
		}
	}
	return nil
}

// allocTask takes a task from the thread-local free list or allocates.
func (t *Thread) allocTask() *Task {
	if tk := t.freeTasks; tk != nil {
		t.freeTasks = tk.next
		tk.next = nil
		return tk
	}
	return &Task{}
}

// freeTask resets and recycles a completed task into this thread's free
// list. The claim generation is bumped so stale queue entries can never
// claim the recycled instance; Instance is cleared so measurement data
// cannot leak between instances.
func (t *Thread) freeTask(tk *Task) {
	gen := tk.claim.Load() >> 1
	tk.claim.Store((gen + 1) << 1)
	tk.Region = nil
	tk.Instance = nil
	tk.fn = nil
	tk.parent = nil
	tk.final = false
	tk.depth = 0
	tk.children.Store(0)
	tk.childEntries = tk.childEntries[:0]
	tk.next = t.freeTasks
	t.freeTasks = tk
}
