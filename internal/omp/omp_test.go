package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/region"
)

func testRegions(t *testing.T) (par, task, tw, bar *region.Region, reg *region.Registry) {
	t.Helper()
	reg = region.NewRegistry()
	par = reg.Register("par", "t.go", 1, region.Parallel)
	task = reg.Register("task", "t.go", 2, region.Task)
	tw = reg.Register("tw", "t.go", 3, region.Taskwait)
	bar = reg.Register("bar", "t.go", 4, region.Barrier)
	return
}

func TestParallelRunsAllThreads(t *testing.T) {
	par, _, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	for _, n := range []int{1, 2, 4, 8} {
		var mask int64
		rt.Parallel(n, par, func(th *Thread) {
			atomic.AddInt64(&mask, 1<<uint(th.ID))
		})
		want := int64(1<<uint(n)) - 1
		if mask != want {
			t.Errorf("n=%d: thread mask = %b, want %b", n, mask, want)
		}
	}
}

func TestParallelPanicsOnZeroThreads(t *testing.T) {
	par, _, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Parallel(0)")
		}
	}()
	rt.Parallel(0, par, func(*Thread) {})
}

func TestTaskExecutesAndTaskwaitWaits(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var ran atomic.Int64
	rt.Parallel(4, par, func(th *Thread) {
		if th.ID == 0 {
			for i := 0; i < 100; i++ {
				th.NewTask(task, func(*Thread) { ran.Add(1) })
			}
			th.Taskwait(tw)
			if got := ran.Load(); got != 100 {
				t.Errorf("after taskwait: %d tasks ran, want 100", got)
			}
		}
	})
	if got := ran.Load(); got != 100 {
		t.Errorf("after region: %d tasks ran, want 100", got)
	}
}

func TestBarrierCompletesAllTasks(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var ran atomic.Int64
	rt.Parallel(8, par, func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.NewTask(task, func(*Thread) { ran.Add(1) })
		}
		// implicit barrier at region end must drain everything
	})
	if got := ran.Load(); got != 8*50 {
		t.Errorf("%d tasks ran, want %d", got, 8*50)
	}
}

func TestExplicitBarrierSynchronizes(t *testing.T) {
	par, task, _, bar, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var phase1 atomic.Int64
	var sawAll atomic.Int64
	rt.Parallel(4, par, func(th *Thread) {
		th.NewTask(task, func(*Thread) { phase1.Add(1) })
		th.Barrier(bar)
		if phase1.Load() == 4 {
			sawAll.Add(1)
		}
	})
	if sawAll.Load() != 4 {
		t.Errorf("only %d/4 threads saw all phase-1 tasks done after barrier", sawAll.Load())
	}
}

func TestRecursiveTasksAndNestedTaskwait(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var fib func(th *Thread, n int, out *int64)
	fib = func(th *Thread, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		th.NewTask(task, func(c *Thread) { fib(c, n-1, &a) })
		th.NewTask(task, func(c *Thread) { fib(c, n-2, &b) })
		th.Taskwait(tw)
		*out = a + b
	}
	var result int64
	rt.Parallel(4, par, func(th *Thread) {
		if th.ID == 0 {
			fib(th, 15, &result)
		}
	})
	if result != 610 {
		t.Errorf("fib(15) = %d, want 610", result)
	}
	st := rt.LastTeamStats()
	// fib task count: T(n) = T(n-1)+T(n-2)+2, T(0)=T(1)=0 -> 2*(fib(n+1)-1)
	if st.TasksCreated != 2*(987-1) {
		t.Errorf("tasks created = %d, want %d", st.TasksCreated, 2*(987-1))
	}
}

func TestTiedTasksStayOnStartingThread(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var violations atomic.Int64
	rt.Parallel(4, par, func(th *Thread) {
		for i := 0; i < 20; i++ {
			th.NewTask(task, func(c *Thread) {
				start := c.ID
				// Suspend at a taskwait (a scheduling point): after the
				// wait the fragment must continue on the same thread.
				c.NewTask(task, func(*Thread) {})
				c.Taskwait(tw)
				if c.ID != start {
					violations.Add(1)
				}
			})
		}
	})
	if violations.Load() != 0 {
		t.Errorf("%d tied tasks migrated across threads", violations.Load())
	}
}

func TestUndeferredIfClauseRunsInline(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	rt.Parallel(2, par, func(th *Thread) {
		if th.ID != 0 {
			return
		}
		executed := false
		th.NewTask(task, func(c *Thread) {
			executed = true
			if c.ID != th.ID {
				t.Errorf("undeferred task ran on thread %d, creator %d", c.ID, th.ID)
			}
		}, If(false))
		if !executed {
			t.Error("undeferred task did not execute before NewTask returned")
		}
	})
}

func TestFinalMakesDescendantsUndeferred(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var order []int
	rt.Parallel(1, par, func(th *Thread) {
		th.NewTask(task, func(c *Thread) {
			order = append(order, 1)
			c.NewTask(task, func(*Thread) {
				order = append(order, 2) // included: runs inline, immediately
			})
			order = append(order, 3)
		}, Final(true))
		th.Taskwait(tw)
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("final-context execution order = %v, want [1 2 3]", order)
	}
}

func TestUntiedDemotedToTied(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	rt.Parallel(1, par, func(th *Thread) {
		th.NewTask(task, func(*Thread) {}, Untied())
	})
	if rt.UntiedCount() != 1 {
		t.Errorf("UntiedCount = %d, want 1", rt.UntiedCount())
	}
}

func TestTaskDepth(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	depths := make(map[int]int)
	var mu sync.Mutex
	var rec func(th *Thread, d int)
	rec = func(th *Thread, d int) {
		if d == 3 {
			return
		}
		th.NewTask(task, func(c *Thread) {
			mu.Lock()
			depths[c.Current().Depth()]++
			mu.Unlock()
			rec(c, d+1)
			c.Taskwait(tw)
		})
	}
	rt.Parallel(2, par, func(th *Thread) {
		if th.ID == 0 {
			rec(th, 0)
			th.Taskwait(tw)
		}
	})
	if depths[0] != 1 || depths[1] != 1 || depths[2] != 1 {
		t.Errorf("task depth histogram = %v, want one task at each depth 0..2", depths)
	}
}

func TestWorkStealingHappens(t *testing.T) {
	// Pin GOMAXPROCS so the test means the same thing everywhere. On a
	// single-proc setting the seed runtime starved thieves forever (the
	// creator drained its own deque before a thief ever ran); with the
	// idle notifier a parked thief is woken as soon as work is published,
	// so steals happen at any GOMAXPROCS.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	rt.Sched = SchedWorkStealing
	// Whether a steal happens within one region depends on goroutine
	// start-up timing; retry a few times before declaring failure.
	for attempt := 0; attempt < 10; attempt++ {
		rt.Parallel(4, par, func(th *Thread) {
			if th.ID == 0 {
				for i := 0; i < 2000; i++ {
					th.NewTask(task, func(*Thread) {
						s := 0
						for j := 0; j < 5000; j++ {
							s += j
						}
						_ = s
					})
				}
			}
		})
		st := rt.LastTeamStats()
		if st.Steals > 0 {
			if st.StealAttempts < st.Steals {
				t.Errorf("StealAttempts = %d < Steals = %d", st.StealAttempts, st.Steals)
			}
			var histTotal int64
			for id, s := range st.ThreadSteals {
				if id == 0 && s != 0 {
					t.Errorf("creator thread recorded %d steals of its own work", s)
				}
				histTotal += s
			}
			if histTotal != st.Steals {
				t.Errorf("ThreadSteals sums to %d, want %d", histTotal, st.Steals)
			}
			return
		}
	}
	t.Error("single-creator workload with 4 threads never recorded a steal in 10 regions")
}

// TestWorkStealingConservationAcrossGOMAXPROCS runs the work-stealing
// scheduler's conservation check pinned to 1, 2 and 4 procs. The
// single-proc case is the regression guard for the starvation bug: the
// seed runtime deadlocked thieves out of ever stealing there, and any
// lost-wakeup bug in the park/signal protocol would hang this test.
func TestWorkStealingConservationAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	par, task, tw, _, reg := testRegions(t)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		rt := NewRuntimeWithRegistry(nil, reg)
		rt.Sched = SchedWorkStealing
		var executed atomic.Int64
		var rec func(th *Thread, d int)
		rec = func(th *Thread, d int) {
			if d == 6 {
				return
			}
			for i := 0; i < 2; i++ {
				th.NewTask(task, func(c *Thread) {
					executed.Add(1)
					rec(c, d+1)
					c.Taskwait(tw)
				})
			}
		}
		rt.Parallel(4, par, func(th *Thread) {
			if th.ID == 0 {
				rec(th, 0)
				th.Taskwait(tw)
			}
		})
		st := rt.LastTeamStats()
		if executed.Load() != st.TasksCreated {
			t.Errorf("procs=%d: executed %d of %d created tasks",
				procs, executed.Load(), st.TasksCreated)
		}
		if st.TasksCreated != 2*(1<<6-1) {
			t.Errorf("procs=%d: created %d tasks, want %d", procs, st.TasksCreated, 2*(1<<6-1))
		}
	}
}

// TestSingleGenPruned guards the singleGen leak fix: once all team
// threads passed a Single encounter its bookkeeping entry must be
// deleted, so the map stays bounded by in-flight encounters instead of
// growing by one entry per encounter forever.
func TestSingleGenPruned(t *testing.T) {
	par, _, _, bar, reg := testRegions(t)
	single := reg.Register("single-leak", "t.go", 10, region.Single)
	rt := NewRuntimeWithRegistry(nil, reg)
	var team *Team
	var count atomic.Int64
	rt.Parallel(4, par, func(th *Thread) {
		if th.ID == 0 {
			team = th.Team()
		}
		for i := 0; i < 200; i++ {
			th.Single(single, func(*Thread) { count.Add(1) })
			th.Barrier(bar)
		}
	})
	if count.Load() != 200 {
		t.Errorf("single bodies executed %d times, want 200", count.Load())
	}
	team.singleMu.Lock()
	left := len(team.singleGen)
	team.singleMu.Unlock()
	if left != 0 {
		t.Errorf("singleGen holds %d entries after region end, want 0 (leak)", left)
	}
}

func TestBothSchedulersProduceSameResults(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	var fib func(th *Thread, n int, out *int64)
	fib = func(th *Thread, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		th.NewTask(task, func(c *Thread) { fib(c, n-1, &a) })
		th.NewTask(task, func(c *Thread) { fib(c, n-2, &b) })
		th.Taskwait(tw)
		*out = a + b
	}
	for _, sched := range []SchedulerKind{SchedCentralQueue, SchedWorkStealing} {
		rt := NewRuntimeWithRegistry(nil, reg)
		rt.Sched = sched
		var result int64
		rt.Parallel(4, par, func(th *Thread) {
			if th.ID == 0 {
				fib(th, 16, &result)
			}
		})
		if result != 987 {
			t.Errorf("sched=%v: fib(16) = %d, want 987", sched, result)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedCentralQueue.String() != "central-queue" ||
		SchedWorkStealing.String() != "work-stealing" {
		t.Error("scheduler names wrong")
	}
	if SchedulerKind(9).String() != "sched(9)" {
		t.Error("unknown scheduler fallback wrong")
	}
}

func TestTaskyieldRunsOtherTask(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	ty := reg.Register("yield", "t.go", 9, region.Taskwait)
	rt := NewRuntimeWithRegistry(nil, reg)
	order := []int{}
	rt.Parallel(1, par, func(th *Thread) {
		th.NewTask(task, func(c *Thread) {
			order = append(order, 1)
			c.NewTask(task, func(*Thread) { order = append(order, 2) })
			c.Taskyield(ty) // must execute the queued child inline
			order = append(order, 3)
		})
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("taskyield order = %v, want [1 2 3]", order)
	}
}

func TestSingleExecutesOnce(t *testing.T) {
	par, _, _, bar, reg := testRegions(t)
	single := reg.Register("single", "t.go", 5, region.Single)
	rt := NewRuntimeWithRegistry(nil, reg)
	var count atomic.Int64
	rt.Parallel(4, par, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Single(single, func(*Thread) { count.Add(1) })
			th.Barrier(bar)
		}
	})
	if count.Load() != 3 {
		t.Errorf("single body executed %d times, want 3", count.Load())
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	par, _, _, _, reg := testRegions(t)
	master := reg.Register("master", "t.go", 6, region.Master)
	rt := NewRuntimeWithRegistry(nil, reg)
	var ids []int
	var mu sync.Mutex
	rt.Parallel(4, par, func(th *Thread) {
		th.Master(master, func(m *Thread) {
			mu.Lock()
			ids = append(ids, m.ID)
			mu.Unlock()
		})
	})
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("master executed by %v, want [0]", ids)
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	par, _, _, _, reg := testRegions(t)
	crit := reg.Register("crit", "t.go", 7, region.Critical)
	rt := NewRuntimeWithRegistry(nil, reg)
	counter := 0 // unsynchronized on purpose; Critical must protect it
	rt.Parallel(8, par, func(th *Thread) {
		for i := 0; i < 500; i++ {
			th.Critical(crit, func(*Thread) { counter++ })
		}
	})
	if counter != 8*500 {
		t.Errorf("critical counter = %d, want %d", counter, 8*500)
	}
}

func TestForCoversIterationSpace(t *testing.T) {
	par, _, _, bar, reg := testRegions(t)
	loop := reg.Register("loop", "t.go", 8, region.Loop)
	rt := NewRuntimeWithRegistry(nil, reg)
	const n = 1003
	hits := make([]int32, n)
	rt.Parallel(4, par, func(th *Thread) {
		th.For(loop, n, func(_ *Thread, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		th.Barrier(bar)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestTaskRecyclingReusesInstances(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	rt.Parallel(1, par, func(th *Thread) {
		// Sequentially create and finish tasks; the free list should keep
		// allocation count near the concurrency (1), not the task count.
		for i := 0; i < 1000; i++ {
			th.NewTask(task, func(*Thread) {})
			th.Taskwait(tw)
		}
		if th.freeTasks == nil {
			t.Error("free list empty after 1000 sequential tasks")
		}
	})
}

func TestMaxStackDepthTracksNesting(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	var rec func(th *Thread, d int)
	rec = func(th *Thread, d int) {
		if d == 5 {
			return
		}
		// Undeferred -> runs inline right here, nesting the stack.
		th.NewTask(task, func(c *Thread) { rec(c, d+1) }, If(false))
	}
	rt.Parallel(1, par, func(th *Thread) { rec(th, 0) })
	if st := rt.LastTeamStats(); st.MaxStackDepth != 5 {
		t.Errorf("MaxStackDepth = %d, want 5", st.MaxStackDepth)
	}
}

// eventCounter checks that listener events balance.
type eventCounter struct {
	NopListener
	mu                 sync.Mutex
	enters, exits      int
	begins, ends, sws  int
	createB, createE   int
	threadsB, threadsE int
	lastEnterPerThread map[int]*region.Region
}

func (c *eventCounter) ThreadBegin(t *Thread) { c.mu.Lock(); c.threadsB++; c.mu.Unlock() }
func (c *eventCounter) ThreadEnd(t *Thread)   { c.mu.Lock(); c.threadsE++; c.mu.Unlock() }
func (c *eventCounter) Enter(t *Thread, r *region.Region) {
	c.mu.Lock()
	c.enters++
	c.mu.Unlock()
}
func (c *eventCounter) Exit(t *Thread, r *region.Region) { c.mu.Lock(); c.exits++; c.mu.Unlock() }
func (c *eventCounter) TaskCreateBegin(t *Thread, r *region.Region) {
	c.mu.Lock()
	c.createB++
	c.mu.Unlock()
}
func (c *eventCounter) TaskCreateEnd(t *Thread, tk *Task) { c.mu.Lock(); c.createE++; c.mu.Unlock() }
func (c *eventCounter) TaskBegin(t *Thread, tk *Task)     { c.mu.Lock(); c.begins++; c.mu.Unlock() }
func (c *eventCounter) TaskEnd(t *Thread, tk *Task)       { c.mu.Lock(); c.ends++; c.mu.Unlock() }
func (c *eventCounter) TaskSwitch(t *Thread, tk *Task)    { c.mu.Lock(); c.sws++; c.mu.Unlock() }

func TestEventStreamBalances(t *testing.T) {
	par, task, tw, _, reg := testRegions(t)
	c := &eventCounter{}
	rt := NewRuntimeWithRegistry(c, reg)
	const tasks = 200
	rt.Parallel(4, par, func(th *Thread) {
		for i := 0; i < tasks/4; i++ {
			th.NewTask(task, func(in *Thread) {
				in.NewTask(task, func(*Thread) {})
				in.Taskwait(tw)
			})
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.threadsB != 4 || c.threadsE != 4 {
		t.Errorf("thread events: begin=%d end=%d, want 4/4", c.threadsB, c.threadsE)
	}
	if c.enters != c.exits {
		t.Errorf("enter events %d != exit events %d", c.enters, c.exits)
	}
	wantTasks := tasks + tasks // outer + one child each
	if c.begins != wantTasks || c.ends != wantTasks {
		t.Errorf("task begin/end = %d/%d, want %d", c.begins, c.ends, wantTasks)
	}
	if c.createB != wantTasks || c.createE != wantTasks {
		t.Errorf("task create begin/end = %d/%d, want %d", c.createB, c.createE, wantTasks)
	}
	if c.sws != wantTasks {
		t.Errorf("task switch events = %d, want %d (one resume per task end)", c.sws, wantTasks)
	}
}

func TestPendingZeroAfterRegion(t *testing.T) {
	par, task, _, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	// A pathological creation pattern: tasks creating tasks inside the
	// implicit barrier drain. The region must still end with zero pending.
	var rec func(th *Thread, d int)
	rec = func(th *Thread, d int) {
		if d == 8 {
			return
		}
		th.NewTask(task, func(c *Thread) { rec(c, d+1) })
	}
	rt.Parallel(4, par, func(th *Thread) { rec(th, 0) })
	// Parallel panics internally if pending != 0; reaching here is a pass.
}

func TestLockedDequeLIFOAndStealFIFO(t *testing.T) {
	var d lockedDeque
	mk := func(id uint64) claimEntry { return claimEntry{task: &Task{ID: id}} }
	for i := uint64(1); i <= 5; i++ {
		d.push(mk(i))
	}
	if got, ok := d.steal(); !ok || got.task.ID != 1 {
		t.Errorf("steal got %v, want oldest (1)", got)
	}
	if got, ok := d.pop(); !ok || got.task.ID != 5 {
		t.Errorf("pop got %v, want newest (5)", got)
	}
	if d.size() != 3 {
		t.Errorf("size = %d, want 3", d.size())
	}
	for want := uint64(4); want >= 2; want-- {
		if got, ok := d.pop(); !ok || got.task.ID != want {
			t.Errorf("pop got %v, want %d", got, want)
		}
	}
	if _, ok := d.pop(); ok {
		t.Error("empty deque popped an entry")
	}
	if _, ok := d.steal(); ok {
		t.Error("empty deque stole an entry")
	}
}

func TestLockedDequeGrowthPreservesOrder(t *testing.T) {
	var d lockedDeque
	const n = 1000
	for i := uint64(0); i < n; i++ {
		d.push(claimEntry{task: &Task{ID: i}})
		if i%3 == 0 {
			d.steal()
		}
	}
	prev := uint64(1 << 62)
	for {
		e, ok := d.pop()
		if !ok {
			break
		}
		if e.task.ID >= prev {
			t.Fatalf("pop order violated: %d after %d", e.task.ID, prev)
		}
		prev = e.task.ID
	}
}

func TestClaimEntryABASafety(t *testing.T) {
	tk := &Task{}
	e1 := claimEntry{task: tk, word: tk.claim.Load()}
	if !e1.tryClaim() {
		t.Fatal("fresh claim failed")
	}
	if e1.tryClaim() {
		t.Fatal("double claim succeeded")
	}
	// Simulate recycle: generation bump makes stale entries unclaimable.
	gen := tk.claim.Load() >> 1
	tk.claim.Store((gen + 1) << 1)
	if e1.tryClaim() {
		t.Fatal("stale entry claimed a recycled task (ABA)")
	}
	e2 := claimEntry{task: tk, word: tk.claim.Load()}
	if !e2.tryClaim() {
		t.Fatal("fresh entry after recycle failed to claim")
	}
}

func TestTaskwaitRunsOnlyDescendants(t *testing.T) {
	// The tied-task scheduling constraint: while task A waits at its
	// taskwait, the thread must not pick up an unrelated sibling task.
	par, task, tw, _, reg := testRegions(t)
	rt := NewRuntimeWithRegistry(nil, reg)
	violation := false
	rt.Parallel(1, par, func(th *Thread) {
		// Unrelated sibling task queued first.
		th.NewTask(task, func(*Thread) {})
		th.NewTask(task, func(c *Thread) {
			a := c.Current()
			c.NewTask(task, func(gc *Thread) {
				if gc.Current().parent != a {
					violation = true
				}
			})
			c.Taskwait(tw) // must run only the child, not the sibling
			if c.Current() != a {
				violation = true
			}
		})
		th.Taskwait(tw)
	})
	if violation {
		t.Error("taskwait executed a non-descendant task")
	}
}
