package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// wsEntries builds n claim entries backed by distinct tasks whose IDs
// index the received-counts array used by the exactly-once checks.
func wsEntries(n int) []claimEntry {
	es := make([]claimEntry, n)
	for i := range es {
		tk := &Task{ID: uint64(i)}
		es[i] = claimEntry{task: tk, word: tk.claim.Load()}
	}
	return es
}

func TestWSDequeEmpty(t *testing.T) {
	var d wsDeque
	if _, ok := d.pop(); ok {
		t.Error("empty deque popped an entry")
	}
	if _, outcome := d.steal(); outcome != stealEmpty {
		t.Errorf("empty deque steal outcome = %v, want stealEmpty", outcome)
	}
	if d.size() != 0 {
		t.Errorf("empty deque size = %d, want 0", d.size())
	}
	// pop on empty must not corrupt indices for later use.
	e := wsEntries(1)[0]
	d.push(e)
	got, ok := d.pop()
	if !ok || got.task.ID != 0 {
		t.Errorf("push/pop after empty pop got (%v, %v)", got, ok)
	}
}

func TestWSDequeSingleElementPopVsSteal(t *testing.T) {
	// With one element, pop and steal race on top; sequentially each
	// must win when alone.
	var d wsDeque
	es := wsEntries(2)
	d.push(es[0])
	if got, ok := d.pop(); !ok || got.task.ID != 0 {
		t.Errorf("pop of single element got (%v, %v)", got, ok)
	}
	d.push(es[1])
	if got, outcome := d.steal(); outcome != stealOK || got.task.ID != 1 {
		t.Errorf("steal of single element got (%v, %v)", got, outcome)
	}
	if _, ok := d.pop(); ok {
		t.Error("deque not empty after single-element steal")
	}
}

func TestWSDequeLIFOPopFIFOSteal(t *testing.T) {
	var d wsDeque
	es := wsEntries(5)
	for _, e := range es {
		d.push(e)
	}
	if got, outcome := d.steal(); outcome != stealOK || got.task.ID != 0 {
		t.Errorf("steal got %v, want oldest (0)", got)
	}
	if got, ok := d.pop(); !ok || got.task.ID != 4 {
		t.Errorf("pop got %v, want newest (4)", got)
	}
	if d.size() != 3 {
		t.Errorf("size = %d, want 3", d.size())
	}
	for want := uint64(3); want >= 1; want-- {
		if got, ok := d.pop(); !ok || got.task.ID != want {
			t.Errorf("pop got %v, want %d", got, want)
		}
	}
	if _, ok := d.pop(); ok {
		t.Error("drained deque popped an entry")
	}
}

func TestWSDequeGrowthPreservesEntries(t *testing.T) {
	// Push far past the initial capacity with interleaved steals so the
	// live window wraps the circular buffer before each growth.
	var d wsDeque
	const n = 5000
	es := wsEntries(n)
	seen := make([]bool, n)
	for i, e := range es {
		d.push(e)
		if i%3 == 0 {
			if got, outcome := d.steal(); outcome == stealOK {
				if seen[got.task.ID] {
					t.Fatalf("entry %d delivered twice", got.task.ID)
				}
				seen[got.task.ID] = true
			}
		}
	}
	prev := uint64(1 << 62)
	for {
		e, ok := d.pop()
		if !ok {
			break
		}
		if seen[e.task.ID] {
			t.Fatalf("entry %d delivered twice", e.task.ID)
		}
		seen[e.task.ID] = true
		if e.task.ID >= prev {
			t.Fatalf("pop order violated: %d after %d", e.task.ID, prev)
		}
		prev = e.task.ID
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("entry %d lost", i)
		}
	}
}

// TestWSDequeOwnerPopVsConcurrentSteal is the memory-model stress: one
// owner pushes and pops while several thieves hammer steal, all under
// -race in CI. Every entry must be delivered to exactly one consumer.
func TestWSDequeOwnerPopVsConcurrentSteal(t *testing.T) {
	const (
		total   = 20000
		thieves = 4
	)
	var d wsDeque
	es := wsEntries(total)
	counts := make([]atomic.Int32, total)
	var delivered atomic.Int64

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, outcome := d.steal()
				if outcome == stealOK {
					counts[e.task.ID].Add(1)
					delivered.Add(1)
				}
			}
		}()
	}

	// Owner: bursts of pushes, then pops — the pop/steal race on the
	// last element is exercised at every burst boundary.
	next := 0
	for next < total {
		burst := 7
		if total-next < burst {
			burst = total - next
		}
		for i := 0; i < burst; i++ {
			d.push(es[next])
			next++
		}
		for {
			e, ok := d.pop()
			if !ok {
				break
			}
			counts[e.task.ID].Add(1)
			delivered.Add(1)
		}
	}
	// Thieves may still hold undelivered entries in flight; wait for
	// conservation before stopping them.
	for delivered.Load() < total {
		if _, ok := d.pop(); ok {
			t.Fatal("pop succeeded on a deque the owner already drained")
		}
	}
	stop.Store(true)
	wg.Wait()

	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("entry %d delivered %d times, want exactly once", i, c)
		}
	}
}

// TestWSDequeQuickProperty: for an arbitrary interleaving plan of
// pushes and owner pops with thieves running throughout, every pushed
// entry is popped or stolen exactly once.
func TestWSDequeQuickProperty(t *testing.T) {
	f := func(plan []uint8) bool {
		if len(plan) > 200 {
			plan = plan[:200]
		}
		var d wsDeque
		// Upper bound of pushes: one per plan byte.
		es := wsEntries(len(plan))
		counts := make([]atomic.Int32, len(plan))
		var stolen, popped atomic.Int64

		var stop atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					if e, outcome := d.steal(); outcome == stealOK {
						counts[e.task.ID].Add(1)
						stolen.Add(1)
					}
				}
			}()
		}

		pushes := 0
		for _, op := range plan {
			if op%3 != 0 { // bias 2:1 toward pushing
				d.push(es[pushes])
				pushes++
			} else if e, ok := d.pop(); ok {
				counts[e.task.ID].Add(1)
				popped.Add(1)
			}
		}
		for {
			e, ok := d.pop()
			if !ok {
				if stolen.Load()+popped.Load() >= int64(pushes) {
					break
				}
				continue // thieves still delivering in-flight steals
			}
			counts[e.task.ID].Add(1)
			popped.Add(1)
		}
		stop.Store(true)
		wg.Wait()

		for i := 0; i < pushes; i++ {
			if counts[i].Load() != 1 {
				return false
			}
		}
		for i := pushes; i < len(plan); i++ {
			if counts[i].Load() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWSDequeStealRaceOutcome: two sequential steals of the same
// snapshot cannot both succeed — simulated by checking that a steal
// after top moved underneath returns and that conservation holds under
// a steal-only drain from many goroutines.
func TestWSDequeConcurrentStealOnlyDrain(t *testing.T) {
	const total = 10000
	var d wsDeque
	es := wsEntries(total)
	for _, e := range es {
		d.push(e)
	}
	counts := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, outcome := d.steal()
				switch outcome {
				case stealOK:
					counts[e.task.ID].Add(1)
				case stealEmpty:
					return
				case stealRace:
					// contention; retry
				}
			}
		}()
	}
	wg.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("entry %d stolen %d times, want exactly once", i, c)
		}
	}
	if d.size() != 0 {
		t.Errorf("size = %d after drain, want 0", d.size())
	}
}
