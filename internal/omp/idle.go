package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// idleNotifier is a per-team eventcount: the blocking half of the
// adaptive idle strategy. Threads that ran out of work at a scheduling
// point park here instead of spinning; every event that can unblock a
// waiter — task publication, task completion, barrier release — bumps
// the sequence and wakes the sleepers. This removes the 100%-CPU
// busy-wait at barriers and, more importantly, fixes starvation on
// small GOMAXPROCS: a parked thief becomes runnable the moment work is
// published instead of waiting to be preemption-scheduled past a
// spinning creator.
//
// The protocol is the classic ticket/eventcount Dekker handshake.
// Waiter: take a ticket (seq snapshot), re-check the wait condition,
// then park(ticket) — the park is a no-op if seq moved. Signaler:
// mutate state, bump seq, wake sleepers if any. The waiter publishes
// parked+1 before re-reading seq and the signaler bumps seq before
// reading parked (both seq-cst), so at least one side always observes
// the other and no wakeup is lost.
type idleNotifier struct {
	seq    atomic.Uint64 // bumped on every signal
	parked atomic.Int32  // threads committed to sleeping
	wakes  atomic.Int64  // broadcasts that found sleepers (TeamStats.Wakes)
	mu     sync.Mutex
	cond   sync.Cond // lazily bound to mu
	once   sync.Once
}

func (n *idleNotifier) init() { n.once.Do(func() { n.cond.L = &n.mu }) }

// ticket snapshots the publication sequence. The caller must re-check
// its wait condition after taking the ticket and before parking.
func (n *idleNotifier) ticket() uint64 { return n.seq.Load() }

// park blocks until a signal issued after the ticket was taken. It
// returns immediately (false) when one already happened; true when the
// thread actually slept.
func (n *idleNotifier) park(ticket uint64) bool {
	n.init()
	slept := false
	n.mu.Lock()
	n.parked.Add(1)
	for n.seq.Load() == ticket {
		n.cond.Wait()
		slept = true
	}
	n.parked.Add(-1)
	n.mu.Unlock()
	return slept
}

// signal publishes a state change that may unblock waiters. Cheap when
// nobody sleeps: one atomic add plus one atomic load.
func (n *idleNotifier) signal() {
	n.seq.Add(1)
	if n.parked.Load() > 0 {
		n.init()
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
		n.wakes.Add(1)
	}
}

// Idle-ladder thresholds: how many fruitless passes through a wait loop
// a thread makes at each rung before descending to the next.
const (
	idleSpinPasses  = 64 // rung 1: pure spin, re-checking the condition
	idleYieldPasses = 16 // rung 2: runtime.Gosched between re-checks
)

// idleLadder drives one thread's spin→yield→park progression at a
// scheduling point (barrier wait, taskwait). Each fruitless pass of the
// enclosing wait loop calls step; finding work calls reset. The ladder
// spins first (a task often arrives within microseconds), yields next
// (lets co-scheduled goroutines publish work on small GOMAXPROCS), then
// arms an idleNotifier ticket and — after one more full re-check of the
// wait condition by the enclosing loop — parks until signaled.
//
// With Runtime.SpinYield disabled the ladder degrades to the pure
// busy-wait of the runtime the paper measured (the spin-wait ablation).
type idleLadder struct {
	passes int
	ticket uint64
	armed  bool
}

func (l *idleLadder) reset() { l.passes, l.armed = 0, false }

// step performs one rung of idle waiting on behalf of thread t.
func (l *idleLadder) step(t *Thread) {
	if !t.team.rt.SpinYield {
		return // spin-wait ablation: burn the CPU, never yield or park
	}
	l.passes++
	switch {
	case l.passes <= idleSpinPasses:
		// rung 1: spin — the enclosing loop re-checks the condition.
	case l.passes <= idleSpinPasses+idleYieldPasses:
		runtime.Gosched()
	default:
		n := &t.team.idle
		if !l.armed {
			// Arm a ticket; the enclosing loop makes one more full pass
			// over the wait condition before we dare to sleep.
			l.ticket = n.ticket()
			l.armed = true
			return
		}
		l.armed = false
		if n.park(l.ticket) {
			t.parks++
		}
	}
}
