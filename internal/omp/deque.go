package omp

import "sync"

// claimEntry is a queue reference to a task: the task pointer plus the
// claim word observed when the task was published. Tasks are referenced
// from two places at once — the global queue (central queue or a
// per-thread deque) and the parent's child list used by taskwait's
// tied-task scheduling constraint. Whoever CASes the claim word first
// executes the task; the stale reference in the other container is
// discarded lazily when its claim fails. The claim word carries a
// generation in its upper bits so recycled Task structs can never be
// claimed through a stale entry (ABA safety).
type claimEntry struct {
	task *Task
	word uint64
}

// tryClaim attempts to take exclusive execution rights for the entry.
func (e claimEntry) tryClaim() bool {
	return e.task.claim.CompareAndSwap(e.word, e.word|1)
}

// deque is a task queue of claim entries. The runtime uses it in two
// roles: as the single team-wide queue of the central-queue scheduler
// (the GCC 4.6 libgomp model the paper measured — one lock, which is
// exactly the contention the paper attributes its Fig. 15 slowdowns to)
// and as the per-thread deques of the work-stealing scheduler (owner
// pushes/pops LIFO at the tail, thieves steal FIFO at the head).
type deque struct {
	mu    sync.Mutex
	buf   []claimEntry
	head  int // index of oldest element
	count int
}

const dequeInitialCap = 64

// push appends e at the tail.
func (d *deque) push(e claimEntry) {
	d.mu.Lock()
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = e
	d.count++
	d.mu.Unlock()
}

// grow doubles the buffer. Caller holds d.mu.
func (d *deque) grow() {
	newCap := dequeInitialCap
	if len(d.buf) > 0 {
		newCap = 2 * len(d.buf)
	}
	nb := make([]claimEntry, newCap)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// pop removes and returns the newest entry; ok is false when empty.
func (d *deque) pop() (claimEntry, bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return claimEntry{}, false
	}
	d.count--
	i := (d.head + d.count) % len(d.buf)
	e := d.buf[i]
	d.buf[i] = claimEntry{}
	d.mu.Unlock()
	return e, true
}

// steal removes and returns the oldest entry; ok is false when empty.
func (d *deque) steal() (claimEntry, bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return claimEntry{}, false
	}
	e := d.buf[d.head]
	d.buf[d.head] = claimEntry{}
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	d.mu.Unlock()
	return e, true
}

// size returns the current number of queued entries (racy snapshot).
func (d *deque) size() int {
	d.mu.Lock()
	n := d.count
	d.mu.Unlock()
	return n
}
