package omp

import (
	"sync"
	"sync/atomic"
)

// claimEntry is a queue reference to a task: the task pointer plus the
// claim word observed when the task was published. Tasks are referenced
// from two places at once — the global queue (central queue or a
// per-thread deque) and the parent's child list used by taskwait's
// tied-task scheduling constraint. Whoever CASes the claim word first
// executes the task; the stale reference in the other container is
// discarded lazily when its claim fails. The claim word carries a
// generation in its upper bits so recycled Task structs can never be
// claimed through a stale entry (ABA safety).
type claimEntry struct {
	task *Task
	word uint64
}

// tryClaim attempts to take exclusive execution rights for the entry.
func (e claimEntry) tryClaim() bool {
	return e.task.claim.CompareAndSwap(e.word, e.word|1)
}

// ---------------------------------------------------------------------
// Locked central queue (the libgomp model the paper measured)
// ---------------------------------------------------------------------

// lockedDeque is a mutex-protected ring buffer of claim entries. It is
// the single team-wide queue of the central-queue scheduler — the
// GCC 4.6 libgomp design whose one-lock contention is exactly what the
// paper attributes its Fig. 15 slowdowns and Table III management-time
// explosion to. The work-stealing scheduler deliberately does NOT use
// this type (see wsDeque); keeping the locked variant around preserves
// the paper's ablation baseline.
type lockedDeque struct {
	mu    sync.Mutex
	buf   []claimEntry
	head  int // index of oldest element
	count int
}

const dequeInitialCap = 64

// push appends e at the tail.
func (d *lockedDeque) push(e claimEntry) {
	d.mu.Lock()
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = e
	d.count++
	d.mu.Unlock()
}

// grow doubles the buffer. Caller holds d.mu.
func (d *lockedDeque) grow() {
	newCap := dequeInitialCap
	if len(d.buf) > 0 {
		newCap = 2 * len(d.buf)
	}
	nb := make([]claimEntry, newCap)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// pop removes and returns the newest entry; ok is false when empty.
func (d *lockedDeque) pop() (claimEntry, bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return claimEntry{}, false
	}
	d.count--
	i := (d.head + d.count) % len(d.buf)
	e := d.buf[i]
	d.buf[i] = claimEntry{}
	d.mu.Unlock()
	return e, true
}

// steal removes and returns the oldest entry; ok is false when empty.
func (d *lockedDeque) steal() (claimEntry, bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return claimEntry{}, false
	}
	e := d.buf[d.head]
	d.buf[d.head] = claimEntry{}
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	d.mu.Unlock()
	return e, true
}

// size returns the current number of queued entries (racy snapshot).
func (d *lockedDeque) size() int {
	d.mu.Lock()
	n := d.count
	d.mu.Unlock()
	return n
}

// ---------------------------------------------------------------------
// Lock-free Chase–Lev work-stealing deque
// ---------------------------------------------------------------------

// wsDeque is a lock-free work-stealing deque of claim entries after
// Chase & Lev ("Dynamic Circular Work-Stealing Deque", SPAA 2005) in
// the formulation of Lê et al. (PPoPP 2013). One thread owns the deque:
// only the owner may push and pop, both at the bottom (LIFO, so the
// owner keeps working on the cache-hot, most recently created tasks).
// Any other thread may steal from the top (FIFO, so thieves take the
// oldest — typically largest — piece of work), racing with each other
// and with the owner's pop of the last element through a CAS on top.
//
// top and bottom are monotonically interpreted indices into an infinite
// array; the backing circular buffer stores index i at slot i&mask and
// is swapped out wholesale (atomic.Pointer) when full, so thieves can
// keep reading a stale buffer: the [top, bottom) window is copied and
// slots of a retired buffer are never overwritten.
//
// Slots are stored as two machine words accessed atomically. A thief
// may observe a torn pair (task of one generation, claim word of
// another) only when its slot was recycled after a buffer wrap-around —
// which requires top to have already advanced past the thief's
// snapshot, so the thief's CAS on top is then guaranteed to fail and
// the torn value is discarded. Consumed slots are not cleared (thieves
// may still be reading them); the Task structs they pin are recycled
// through per-thread free lists anyway, so nothing leaks.
type wsDeque struct {
	top    atomic.Int64 // next index to steal (oldest entry)
	bottom atomic.Int64 // next index to push; owner-only writes
	buf    atomic.Pointer[wsBuffer]
}

// wsBuffer is one circular backing array; len(slots) is a power of two.
type wsBuffer struct {
	mask  int64
	slots []wsSlot
}

type wsSlot struct {
	task atomic.Pointer[Task]
	word atomic.Uint64
}

const wsDequeInitialCap = 64 // must be a power of two

func newWSBuffer(capacity int64) *wsBuffer {
	return &wsBuffer{mask: capacity - 1, slots: make([]wsSlot, capacity)}
}

func (b *wsBuffer) put(i int64, e claimEntry) {
	s := &b.slots[i&b.mask]
	s.task.Store(e.task)
	s.word.Store(e.word)
}

func (b *wsBuffer) get(i int64) claimEntry {
	s := &b.slots[i&b.mask]
	return claimEntry{task: s.task.Load(), word: s.word.Load()}
}

// stealOutcome discriminates the three results of wsDeque.steal.
type stealOutcome int

const (
	stealOK    stealOutcome = iota // entry returned
	stealEmpty                     // deque observed empty
	stealRace                      // lost the top CAS; retrying may succeed
)

// push appends e at the bottom. Owner only; never blocks, never locks.
func (d *wsDeque) push(e claimEntry) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if buf == nil {
		buf = newWSBuffer(wsDequeInitialCap)
		d.buf.Store(buf)
	} else if b-t > buf.mask {
		// Full: copy the live window into a buffer twice the size. The
		// old buffer stays valid for concurrent thieves.
		nb := newWSBuffer(2 * (buf.mask + 1))
		for i := t; i < b; i++ {
			nb.put(i, buf.get(i))
		}
		buf = nb
		d.buf.Store(buf)
	}
	buf.put(b, e)
	d.bottom.Store(b + 1)
}

// pop removes and returns the newest entry. Owner only; lock-free, and
// CAS-free except when taking the last remaining entry (where it races
// with thieves).
func (d *wsDeque) pop() (claimEntry, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return claimEntry{}, false
	}
	e := d.buf.Load().get(b)
	if t == b {
		// Last entry: win it against concurrent thieves via top.
		ok := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !ok {
			return claimEntry{}, false
		}
		return e, true
	}
	return e, true
}

// steal removes and returns the oldest entry. Any thread; lock-free.
func (d *wsDeque) steal() (claimEntry, stealOutcome) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return claimEntry{}, stealEmpty
	}
	buf := d.buf.Load()
	e := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return claimEntry{}, stealRace
	}
	return e, stealOK
}

// size returns the current number of queued entries (racy snapshot).
func (d *wsDeque) size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}
