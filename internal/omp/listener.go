package omp

import "repro/internal/region"

// Listener receives the runtime's measurement events. It is the Go analog
// of the POMP2 event interface the paper's instrumentation targets: the
// runtime emits the event stream, the measurement system (internal/measure)
// translates it into profiles using the algorithm of Section IV.
//
// All callbacks for one Thread are invoked from that thread's goroutine,
// so listener implementations may keep per-thread state reachable
// through the thread's listener slots without locking: Thread.Profile is
// the profiling measurement's typed slot, Thread.TraceData the trace
// recorder's. Both are assigned once at ThreadBegin and cleared at
// ThreadEnd — the slot contract that keeps the per-event hot path free
// of locks and map lookups even when several listeners observe the same
// stream through a Tee. A nil listener on the Runtime disables
// measurement; this is the "uninstrumented" configuration used as the
// baseline in the overhead experiments (Figs. 13 and 14).
//
// Idle waiting is invisible to listeners: a thread descending the
// scheduler's spin→yield→park ladder at a barrier or taskwait emits no
// events while idle or parked, so the time between Enter and Exit of a
// synchronization region covers spinning and sleeping alike — matching
// how Score-P attributes barrier wait time in the paper.
type Listener interface {
	// ThreadBegin fires when a team worker starts, before any other event
	// from this thread. Measurement systems create the thread's location
	// (per-thread profile) here and attach it to the thread's listener
	// slot (Thread.Profile / Thread.TraceData).
	ThreadBegin(t *Thread)
	// ThreadEnd fires when a team worker is about to terminate.
	ThreadEnd(t *Thread)

	// Enter fires when the thread enters a region: parallel regions,
	// barriers, taskwaits, criticals, user functions. Task execution is
	// reported through TaskBegin/TaskEnd, not Enter/Exit.
	Enter(t *Thread, r *region.Region)
	// Exit fires when the thread leaves a region entered with Enter.
	Exit(t *Thread, r *region.Region)

	// TaskCreateBegin fires when the thread starts creating an explicit
	// task of the given task region (the analog of entering OPARI2's
	// task-creation region).
	TaskCreateBegin(t *Thread, r *region.Region)
	// TaskCreateEnd fires when the task has been queued (or, for
	// undeferred tasks, right before it starts executing inline).
	TaskCreateEnd(t *Thread, tk *Task)

	// TaskBegin fires when a task instance starts executing for the first
	// time, on the executing thread. Per Fig. 12 the measurement system
	// performs an implicit TaskSwitch to the instance and enters the task
	// region in the instance's own call tree.
	TaskBegin(t *Thread, tk *Task)
	// TaskEnd fires when a task instance completes. The measurement
	// system exits the task region, switches back to the implicit task
	// and merges the instance tree into the thread profile.
	TaskEnd(t *Thread, tk *Task)
	// TaskSwitch fires when the thread resumes a previously suspended
	// task instance, or the implicit task (tk == nil), after an inline
	// task executed at a scheduling point finished.
	TaskSwitch(t *Thread, tk *Task)
}

// NopListener implements Listener with empty methods. Embed it to write
// partial listeners (tests use this extensively).
type NopListener struct{}

// ThreadBegin implements Listener.
func (NopListener) ThreadBegin(*Thread) {}

// ThreadEnd implements Listener.
func (NopListener) ThreadEnd(*Thread) {}

// Enter implements Listener.
func (NopListener) Enter(*Thread, *region.Region) {}

// Exit implements Listener.
func (NopListener) Exit(*Thread, *region.Region) {}

// TaskCreateBegin implements Listener.
func (NopListener) TaskCreateBegin(*Thread, *region.Region) {}

// TaskCreateEnd implements Listener.
func (NopListener) TaskCreateEnd(*Thread, *Task) {}

// TaskBegin implements Listener.
func (NopListener) TaskBegin(*Thread, *Task) {}

// TaskEnd implements Listener.
func (NopListener) TaskEnd(*Thread, *Task) {}

// TaskSwitch implements Listener.
func (NopListener) TaskSwitch(*Thread, *Task) {}
