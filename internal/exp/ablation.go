package exp

import (
	"fmt"
	"io"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/stats"
)

// SchedulerRow compares the two task schedulers on one code: the
// central team queue (the GCC 4.6 libgomp model the paper measured) vs.
// per-thread work-stealing deques.
type SchedulerRow struct {
	Code      string
	Threads   []int
	CentralNs []int64
	StealNs   []int64
	// SpeedupSteal[i] = CentralNs[i] / StealNs[i].
	SpeedupSteal []float64
}

// SchedulerAblation quantifies how much of the paper's observed tasking
// pathology (Fig. 15's runtime growth with threads) is the runtime's
// central-queue design: the same non-cut-off codes run under both
// schedulers, uninstrumented.
func SchedulerAblation(cfg Config) []SchedulerRow {
	cfg = cfg.normalized()
	rows := make([]SchedulerRow, 0, 5)
	for _, spec := range bots.CutoffCodes() {
		kernel := spec.Prepare(cfg.Size, false)
		row := SchedulerRow{Code: spec.Name, Threads: cfg.Threads}
		for _, th := range cfg.Threads {
			rtC := scorep.NewSession(scorep.WithoutProfiling(),
				scorep.WithScheduler(scorep.SchedCentralQueue)).Runtime()
			c := timeKernel(kernel, rtC, th, cfg.Warmup, cfg.Reps)
			rtS := scorep.NewSession(scorep.WithoutProfiling(),
				scorep.WithScheduler(scorep.SchedWorkStealing)).Runtime()
			s := timeKernel(kernel, rtS, th, cfg.Warmup, cfg.Reps)
			row.CentralNs = append(row.CentralNs, c)
			row.StealNs = append(row.StealNs, s)
			sp := 0.0
			if s > 0 {
				sp = float64(c) / float64(s)
			}
			row.SpeedupSteal = append(row.SpeedupSteal, sp)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatSchedulerAblation prints the scheduler comparison.
func FormatSchedulerAblation(w io.Writer, rows []SchedulerRow) {
	fmt.Fprintln(w, "Ablation: central queue (libgomp model) vs. work stealing, non-cut-off codes, uninstrumented")
	fmt.Fprintf(w, "%-12s", "code")
	if len(rows) > 0 {
		for _, th := range rows[0].Threads {
			fmt.Fprintf(w, " %22s", fmt.Sprintf("%d thr (central/steal)", th))
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Code)
		for i := range r.Threads {
			fmt.Fprintf(w, " %10s/%-7s %3.1fx",
				stats.FormatNs(r.CentralNs[i]), stats.FormatNs(r.StealNs[i]), r.SpeedupSteal[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
