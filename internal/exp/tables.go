package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bots"
	"repro/internal/cube"
	"repro/internal/region"
	"repro/internal/stats"
)

// Table1Row is one row of Table I: mean task execution time and number
// of tasks for the non-cut-off code versions.
type Table1Row struct {
	Code       string
	MeanTimeNs float64
	NumTasks   int64
}

// Table1TaskGranularity reproduces Table I from instrumented runs of the
// non-cut-off versions: the merged task trees provide instance counts
// and mean inclusive execution times per construct; the row aggregates
// over all constructs of the code.
func Table1TaskGranularity(cfg Config, threads int) []Table1Row {
	cfg = cfg.normalized()
	rows := make([]Table1Row, 0, 5)
	for _, spec := range bots.CutoffCodes() {
		kernel := spec.Prepare(cfg.Size, false)
		rep := runInstrumented(kernel, threads)
		var count, sum int64
		for _, tree := range rep.Tasks {
			count += tree.Dur.Count
			sum += tree.Dur.Sum
		}
		mean := 0.0
		if count > 0 {
			mean = float64(sum) / float64(count)
		}
		rows = append(rows, Table1Row{Code: spec.Name, MeanTimeNs: mean, NumTasks: count})
	}
	return rows
}

// Table2Row is one row of Table II: the maximum number of concurrently
// executing task instances per thread.
type Table2Row struct {
	Code     string
	Cutoff   bool
	MaxTasks int
}

// Table2ConcurrentTasks reproduces Table II: for every code (and its
// cut-off variant where provided) the per-thread maximum of concurrently
// active task-instance trees, which bounds the profiling system's memory
// (Section V-B).
func Table2ConcurrentTasks(cfg Config, threads int) []Table2Row {
	cfg = cfg.normalized()
	var rows []Table2Row
	for _, spec := range bots.All {
		variants := []bool{false}
		if spec.HasCutoff {
			variants = append(variants, true)
		}
		for _, cutoff := range variants {
			kernel := spec.Prepare(cfg.Size, cutoff)
			rep := runInstrumented(kernel, threads)
			rows = append(rows, Table2Row{Code: spec.Name, Cutoff: cutoff, MaxTasks: rep.MaxConcurrent})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Code != rows[j].Code {
			return rows[i].Code < rows[j].Code
		}
		return !rows[i].Cutoff && rows[j].Cutoff
	})
	return rows
}

// Table3Row is one column of Table III: the exclusive times of the task,
// taskwait and task-create regions inside the nqueens task construct and
// of the barrier in the main tree, for one thread count.
type Table3Row struct {
	Threads    int
	TaskNs     int64
	TaskwaitNs int64
	CreateNs   int64
	BarrierNs  int64
}

// Table3NQueensRegions reproduces Table III with instrumented runs of
// the non-cut-off nqueens.
func Table3NQueensRegions(cfg Config) []Table3Row {
	cfg = cfg.normalized()
	kernel := bots.NQueensSpec.Prepare(cfg.Size, false)
	rows := make([]Table3Row, 0, len(cfg.Threads))
	for _, th := range cfg.Threads {
		rep := runInstrumented(kernel, th)
		row := Table3Row{Threads: th}
		if tree := rep.TaskTree("nqueens.task"); tree != nil {
			row.TaskNs = tree.ExclusiveSum()
			row.TaskwaitNs = cube.SumExclusiveByType(tree, region.Taskwait)
			row.CreateNs = cube.SumExclusiveByType(tree, region.TaskCreate)
		}
		row.BarrierNs = cube.SumExclusiveByType(rep.Main, region.ImplicitBarrier) +
			cube.SumExclusiveByType(rep.Main, region.Barrier)
		rows = append(rows, row)
	}
	return rows
}

// Table4Row is one row of Table IV: per-recursion-depth statistics of
// the nqueens task from parameter instrumentation.
type Table4Row struct {
	Depth      int64
	MeanTimeNs float64
	SumNs      int64
	NumTasks   int64
}

// Table4NQueensDepth reproduces Table IV: the non-cut-off nqueens with
// parameter instrumentation splitting the task tree by recursion depth.
func Table4NQueensDepth(cfg Config, threads int) []Table4Row {
	cfg = cfg.normalized()
	kernel := bots.NQueensDepthKernel(cfg.Size)
	rep := runInstrumented(kernel, threads)
	tree := rep.TaskTree("nqueens.task")
	if tree == nil {
		return nil
	}
	var rows []Table4Row
	for _, d := range cube.ParamChildren(tree, "depth") {
		rows = append(rows, Table4Row{
			Depth:      d.ParamValue,
			MeanTimeNs: d.Dur.Mean(),
			SumNs:      d.Dur.Sum,
			NumTasks:   d.Dur.Count,
		})
	}
	return rows
}

// CaseStudyResult captures the Section VI optimization outcome: runtime
// of the uninstrumented nqueens with and without the depth-3 cut-off.
type CaseStudyResult struct {
	Threads   int
	PlainNs   int64
	CutoffNs  int64
	Speedup   float64
	BoardSize int
}

// CaseStudyNQueens reproduces the Section VI conclusion: applying the
// cut-off at recursion level 3 yields a large speedup (16x in the paper)
// of the uninstrumented computing kernel.
func CaseStudyNQueens(cfg Config, threads int) CaseStudyResult {
	cfg = cfg.normalized()
	plain := timeKernel(bots.NQueensSpec.Prepare(cfg.Size, false), uninstrumentedRuntime(), threads, cfg.Warmup, cfg.Reps)
	cut := timeKernel(bots.NQueensSpec.Prepare(cfg.Size, true), uninstrumentedRuntime(), threads, cfg.Warmup, cfg.Reps)
	speedup := 0.0
	if cut > 0 {
		speedup = float64(plain) / float64(cut)
	}
	return CaseStudyResult{
		Threads:   threads,
		PlainNs:   plain,
		CutoffNs:  cut,
		Speedup:   speedup,
		BoardSize: bots.NQueensBoardSize(cfg.Size),
	}
}

// FormatTable1 prints Table I.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I: mean task execution time and number of tasks (non-cut-off)")
	fmt.Fprintf(w, "%-14s %14s %16s\n", "code", "mean time", "number of tasks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %14s %16d\n", r.Code, stats.FormatNs(int64(r.MeanTimeNs)), r.NumTasks)
	}
	fmt.Fprintln(w)
}

// FormatTable2 prints Table II.
func FormatTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II: maximum number of concurrently executing tasks per thread")
	fmt.Fprintf(w, "%-24s %9s\n", "code", "max tasks")
	for _, r := range rows {
		name := r.Code
		if r.Cutoff {
			name += " (cut-off)"
		}
		fmt.Fprintf(w, "%-24s %9d\n", name, r.MaxTasks)
	}
	fmt.Fprintln(w)
}

// FormatTable3 prints Table III.
func FormatTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: nqueens exclusive times per region (non-cut-off, instrumented)")
	fmt.Fprintf(w, "%-12s", "region")
	for _, r := range rows {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d thread(s)", r.Threads))
	}
	fmt.Fprintln(w)
	line := func(name string, get func(Table3Row) int64) {
		fmt.Fprintf(w, "%-12s", name)
		for _, r := range rows {
			fmt.Fprintf(w, " %12s", stats.FormatNs(get(r)))
		}
		fmt.Fprintln(w)
	}
	line("task", func(r Table3Row) int64 { return r.TaskNs })
	line("taskwait", func(r Table3Row) int64 { return r.TaskwaitNs })
	line("create task", func(r Table3Row) int64 { return r.CreateNs })
	line("barrier", func(r Table3Row) int64 { return r.BarrierNs })
	fmt.Fprintln(w)
}

// FormatTable4 prints Table IV.
func FormatTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table IV: nqueens task statistics per recursion depth (parameter instrumentation)")
	fmt.Fprintf(w, "%-6s %12s %12s %16s\n", "depth", "mean time", "sum", "number of tasks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %12s %12s %16d\n",
			r.Depth, stats.FormatNs(int64(r.MeanTimeNs)), stats.FormatNs(r.SumNs), r.NumTasks)
	}
	fmt.Fprintln(w)
}

// FormatCaseStudy prints the Section VI result.
func FormatCaseStudy(w io.Writer, r CaseStudyResult) {
	fmt.Fprintf(w, "Section VI case study: nqueens n=%d, %d threads, uninstrumented\n", r.BoardSize, r.Threads)
	fmt.Fprintf(w, "  without cut-off: %s\n", stats.FormatNs(r.PlainNs))
	fmt.Fprintf(w, "  with cut-off at depth 3: %s\n", stats.FormatNs(r.CutoffNs))
	fmt.Fprintf(w, "  speedup: %.1fx (paper: 16x)\n\n", r.Speedup)
}
