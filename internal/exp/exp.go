// Package exp reproduces the paper's evaluation: every figure and table
// of Sections V and VI. Each experiment returns typed rows plus a
// formatter that prints the same columns the paper reports. Absolute
// numbers differ from the paper (Juropa/GCC vs. a Go runtime on this
// host); the shapes — who has overhead, how it scales with threads, where
// time goes — are the reproduction target (see EXPERIMENTS.md).
package exp

import (
	"fmt"
	"io"
	"time"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/cube"
	"repro/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Size is the BOTS input size (default SizeMedium, the paper's
	// "medium input size" scaled down).
	Size bots.Size
	// Threads lists the team sizes (paper: 1, 2, 4, 8).
	Threads []int
	// Reps is the number of timed repetitions; the median is used.
	Reps int
	// Warmup runs per configuration before timing.
	Warmup int
}

// DefaultConfig matches the paper's setup at reduced scale.
func DefaultConfig() Config {
	return Config{Size: bots.SizeMedium, Threads: []int{1, 2, 4, 8}, Reps: 3, Warmup: 1}
}

// QuickConfig is a fast configuration for tests and smoke runs.
func QuickConfig() Config {
	return Config{Size: bots.SizeTiny, Threads: []int{1, 2}, Reps: 1, Warmup: 0}
}

func (c Config) normalized() Config {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	return c
}

// uninstrumentedRuntime returns a baseline runtime (no listener) from a
// profiling-disabled session — the overhead experiments' reference.
func uninstrumentedRuntime() *scorep.Runtime {
	return scorep.NewSession(scorep.WithoutProfiling()).Runtime()
}

// timeKernel runs the kernel reps times and returns the median wall time
// of the parallel region in nanoseconds.
func timeKernel(kernel bots.Kernel, rt *scorep.Runtime, threads, warmup, reps int) int64 {
	for i := 0; i < warmup; i++ {
		kernel(rt, threads)
	}
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		kernel(rt, threads)
		times = append(times, float64(time.Since(start)))
	}
	return int64(stats.Median(times))
}

// runInstrumented executes the kernel once through a profiling session
// and returns the aggregated report (used by the table experiments).
func runInstrumented(kernel bots.Kernel, threads int) *cube.Report {
	s := scorep.NewSession()
	kernel(s.Runtime(), threads)
	res, _ := s.End() // no streaming sink, no experiment dir: End cannot fail
	return res.Report()
}

// OverheadRow is one bar group of Fig. 13/14: the relative runtime
// overhead of the instrumented vs. uninstrumented kernel per thread
// count.
type OverheadRow struct {
	Code    string
	Cutoff  bool
	Threads []int
	// UninstNs and InstNs are the median kernel times.
	UninstNs []int64
	InstNs   []int64
	// OverheadPct[i] = (Inst-Uninst)/Uninst*100 for Threads[i].
	OverheadPct []float64
}

// Fig13Overhead measures the profiling overhead of all nine BOTS codes
// in their optimized form (cut-off variant where provided) — the paper's
// Fig. 13.
func Fig13Overhead(cfg Config) []OverheadRow {
	return overheadRows(cfg, bots.All, true)
}

// Fig14Overhead measures the overhead of the non-cut-off versions of the
// codes that provide a cut-off (the stress test of Fig. 14: many tiny
// tasks).
func Fig14Overhead(cfg Config) []OverheadRow {
	return overheadRows(cfg, bots.CutoffCodes(), false)
}

func overheadRows(cfg Config, specs []*bots.Spec, preferCutoff bool) []OverheadRow {
	cfg = cfg.normalized()
	rows := make([]OverheadRow, 0, len(specs))
	for _, spec := range specs {
		cutoff := preferCutoff && spec.HasCutoff
		kernel := spec.Prepare(cfg.Size, cutoff)
		row := OverheadRow{Code: spec.Name, Cutoff: cutoff, Threads: cfg.Threads}
		for _, th := range cfg.Threads {
			uninst := timeKernel(kernel, uninstrumentedRuntime(), th, cfg.Warmup, cfg.Reps)
			inst := timeKernel(kernel, scorep.NewSession().Runtime(), th, cfg.Warmup, cfg.Reps)
			row.UninstNs = append(row.UninstNs, uninst)
			row.InstNs = append(row.InstNs, inst)
			pct := 0.0
			if uninst > 0 {
				pct = 100 * float64(inst-uninst) / float64(uninst)
			}
			row.OverheadPct = append(row.OverheadPct, pct)
		}
		rows = append(rows, row)
	}
	return rows
}

// ScalingRow is one line of Fig. 15: uninstrumented runtime of a
// non-cut-off code per thread count, in percent of the code's maximum.
type ScalingRow struct {
	Code      string
	Threads   []int
	RuntimeNs []int64
	// PctOfMax[i] = RuntimeNs[i] / max(RuntimeNs) * 100.
	PctOfMax []float64
}

// Fig15RuntimeScaling measures the uninstrumented runtime of the
// non-cut-off versions across thread counts (the paper's Fig. 15,
// showing runtime *increasing* with threads for ill-sized tasks).
func Fig15RuntimeScaling(cfg Config) []ScalingRow {
	cfg = cfg.normalized()
	rows := make([]ScalingRow, 0, 5)
	for _, spec := range bots.CutoffCodes() {
		kernel := spec.Prepare(cfg.Size, false)
		row := ScalingRow{Code: spec.Name, Threads: cfg.Threads}
		var maxNs int64
		for _, th := range cfg.Threads {
			ns := timeKernel(kernel, uninstrumentedRuntime(), th, cfg.Warmup, cfg.Reps)
			row.RuntimeNs = append(row.RuntimeNs, ns)
			if ns > maxNs {
				maxNs = ns
			}
		}
		for _, ns := range row.RuntimeNs {
			row.PctOfMax = append(row.PctOfMax, 100*float64(ns)/float64(maxNs))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatOverhead prints overhead rows in the paper's Fig. 13/14 style.
func FormatOverhead(w io.Writer, title string, rows []OverheadRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-22s", "code")
	if len(rows) > 0 {
		for _, th := range rows[0].Threads {
			fmt.Fprintf(w, " %9s", fmt.Sprintf("%dthr %%", th))
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		name := r.Code
		if r.Cutoff {
			name += " (cut-off)"
		}
		fmt.Fprintf(w, "%-22s", name)
		for _, p := range r.OverheadPct {
			fmt.Fprintf(w, " %9.1f", p)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// FormatScaling prints Fig. 15 rows.
func FormatScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Fig. 15: runtime of uninstrumented non-cut-off codes (% of max)")
	fmt.Fprintf(w, "%-14s", "code")
	if len(rows) > 0 {
		for _, th := range rows[0].Threads {
			fmt.Fprintf(w, " %11s", fmt.Sprintf("%d threads", th))
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Code)
		for i := range r.PctOfMax {
			fmt.Fprintf(w, " %5.1f%% %s", r.PctOfMax[i], shortNs(r.RuntimeNs[i]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func shortNs(ns int64) string {
	return fmt.Sprintf("(%s)", stats.FormatNs(ns))
}
