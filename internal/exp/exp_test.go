package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bots"
)

func TestFig13OverheadSmoke(t *testing.T) {
	rows := Fig13Overhead(QuickConfig())
	if len(rows) != 9 {
		t.Fatalf("Fig13 rows = %d, want 9 (all BOTS codes)", len(rows))
	}
	for _, r := range rows {
		if len(r.OverheadPct) != 2 {
			t.Errorf("%s: %d thread columns, want 2", r.Code, len(r.OverheadPct))
		}
		for i, ns := range r.UninstNs {
			if ns <= 0 {
				t.Errorf("%s: nonpositive uninstrumented time at col %d", r.Code, i)
			}
		}
	}
	cutoffs := 0
	for _, r := range rows {
		if r.Cutoff {
			cutoffs++
		}
	}
	if cutoffs != 5 {
		t.Errorf("Fig13 cut-off variants used = %d, want 5", cutoffs)
	}
	var buf bytes.Buffer
	FormatOverhead(&buf, "Fig. 13", rows)
	if !strings.Contains(buf.String(), "fib (cut-off)") {
		t.Error("formatted output missing fib (cut-off) row")
	}
}

func TestFig14OverheadSmoke(t *testing.T) {
	rows := Fig14Overhead(QuickConfig())
	if len(rows) != 5 {
		t.Fatalf("Fig14 rows = %d, want 5 (cut-off codes, non-cut-off run)", len(rows))
	}
	for _, r := range rows {
		if r.Cutoff {
			t.Errorf("%s: Fig14 must run the non-cut-off variant", r.Code)
		}
	}
}

func TestFig15ScalingSmoke(t *testing.T) {
	rows := Fig15RuntimeScaling(QuickConfig())
	if len(rows) != 5 {
		t.Fatalf("Fig15 rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		foundMax := false
		for _, p := range r.PctOfMax {
			if p < 0 || p > 100.000001 {
				t.Errorf("%s: pct of max out of range: %v", r.Code, r.PctOfMax)
			}
			if p > 99.999 {
				foundMax = true
			}
		}
		if !foundMax {
			t.Errorf("%s: no column at 100%%", r.Code)
		}
	}
	var buf bytes.Buffer
	FormatScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 15") {
		t.Error("missing header")
	}
}

func TestTable1Smoke(t *testing.T) {
	rows := Table1TaskGranularity(QuickConfig(), 2)
	if len(rows) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		if r.NumTasks <= 0 {
			t.Errorf("%s: no tasks recorded", r.Code)
		}
		if r.MeanTimeNs < 0 {
			t.Errorf("%s: negative mean", r.Code)
		}
		byName[r.Code] = r
	}
	// Shape check from the paper's Table I: strassen tasks are orders of
	// magnitude coarser than fib tasks, and fib creates the most tasks
	// among fib/strassen.
	if byName["strassen"].MeanTimeNs <= byName["fib"].MeanTimeNs {
		t.Errorf("strassen mean (%f) should exceed fib mean (%f)",
			byName["strassen"].MeanTimeNs, byName["fib"].MeanTimeNs)
	}
	if byName["fib"].NumTasks <= byName["strassen"].NumTasks {
		t.Errorf("fib tasks (%d) should exceed strassen tasks (%d)",
			byName["fib"].NumTasks, byName["strassen"].NumTasks)
	}
}

func TestTable2Smoke(t *testing.T) {
	rows := Table2ConcurrentTasks(QuickConfig(), 2)
	if len(rows) != 14 {
		t.Fatalf("Table II rows = %d, want 14 (9 codes + 5 cut-off variants)", len(rows))
	}
	byKey := map[string]int{}
	for _, r := range rows {
		if r.MaxTasks < 1 {
			t.Errorf("%s cutoff=%v: max tasks = %d, want >= 1", r.Code, r.Cutoff, r.MaxTasks)
		}
		k := r.Code
		if r.Cutoff {
			k += "+cut"
		}
		byKey[k] = r.MaxTasks
	}
	// Paper shape: alignment has exactly 1 (independent coarse tasks,
	// no nesting); cut-off versions never exceed their plain versions.
	if byKey["alignment"] != 1 {
		t.Errorf("alignment max tasks = %d, want 1", byKey["alignment"])
	}
	for _, code := range []string{"fib", "floorplan", "health", "nqueens", "strassen"} {
		if byKey[code+"+cut"] > byKey[code] {
			t.Errorf("%s: cut-off max (%d) exceeds plain max (%d)", code, byKey[code+"+cut"], byKey[code])
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	cfg := QuickConfig()
	rows := Table3NQueensRegions(cfg)
	if len(rows) != len(cfg.normalized().Threads) {
		t.Fatalf("Table III rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TaskNs < 0 || r.TaskwaitNs < 0 || r.CreateNs < 0 || r.BarrierNs < 0 {
			t.Errorf("negative exclusive time in Table III row %+v", r)
		}
		if r.TaskNs == 0 {
			t.Errorf("threads=%d: task exclusive time is zero", r.Threads)
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	rows := Table4NQueensDepth(QuickConfig(), 2)
	n := bots.NQueensBoardSize(bots.SizeTiny)
	if len(rows) != n {
		t.Fatalf("Table IV rows = %d, want %d (one per depth level)", len(rows), n)
	}
	for i, r := range rows {
		if r.Depth != int64(i) {
			t.Errorf("row %d: depth = %d", i, r.Depth)
		}
		if r.NumTasks <= 0 {
			t.Errorf("depth %d: no tasks", r.Depth)
		}
	}
	// Shape from the paper: deep levels hold far more tasks than level 0,
	// and the mean decreases from the top level to the deepest.
	if rows[n-1].NumTasks <= rows[0].NumTasks {
		t.Errorf("deepest level tasks (%d) should exceed level-0 tasks (%d)",
			rows[n-1].NumTasks, rows[0].NumTasks)
	}
	if rows[n-1].MeanTimeNs >= rows[0].MeanTimeNs {
		t.Errorf("mean time should decrease with depth: level0=%.0f deepest=%.0f",
			rows[0].MeanTimeNs, rows[n-1].MeanTimeNs)
	}
}

func TestCaseStudySmoke(t *testing.T) {
	r := CaseStudyNQueens(Config{Size: bots.SizeSmall, Threads: []int{2}, Reps: 1}, 2)
	if r.PlainNs <= 0 || r.CutoffNs <= 0 {
		t.Fatalf("invalid case study timings: %+v", r)
	}
	if r.Speedup <= 1 {
		t.Errorf("cut-off gave no speedup at small size: %.2fx (plain=%d cut=%d)",
			r.Speedup, r.PlainNs, r.CutoffNs)
	}
	var buf bytes.Buffer
	FormatCaseStudy(&buf, r)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("missing speedup line")
	}
}

func TestMemoryRequirementsSmoke(t *testing.T) {
	rows := MemoryRequirements(QuickConfig(), 2)
	if len(rows) != 14 {
		t.Fatalf("memory rows = %d, want 14", len(rows))
	}
	for _, r := range rows {
		if r.TasksCreated <= 0 {
			t.Errorf("%s: no tasks", r.Code)
		}
		if r.InstancesAllocated <= 0 || r.NodesAllocated <= 0 {
			t.Errorf("%s: zero allocations recorded", r.Code)
		}
		// The Section V-B claim: allocations bounded by concurrency, far
		// below the task count for task-heavy codes.
		if r.TasksCreated > 1000 && r.InstancesAllocated > r.TasksCreated/10 {
			t.Errorf("%s: instance allocations (%d) not amortized vs %d tasks",
				r.Code, r.InstancesAllocated, r.TasksCreated)
		}
	}
	var buf bytes.Buffer
	FormatMemory(&buf, rows)
	if !strings.Contains(buf.String(), "reuse") {
		t.Error("memory format missing reuse column")
	}
}

func TestSchedulerAblationSmoke(t *testing.T) {
	rows := SchedulerAblation(QuickConfig())
	if len(rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		for i := range r.Threads {
			if r.CentralNs[i] <= 0 || r.StealNs[i] <= 0 {
				t.Errorf("%s: nonpositive time", r.Code)
			}
			if r.SpeedupSteal[i] <= 0 {
				t.Errorf("%s: bad speedup", r.Code)
			}
		}
	}
	var buf bytes.Buffer
	FormatSchedulerAblation(&buf, rows)
	if !strings.Contains(buf.String(), "central") {
		t.Error("ablation format missing header")
	}
}

func TestFormatTablesSmoke(t *testing.T) {
	var buf bytes.Buffer
	FormatTable1(&buf, []Table1Row{{Code: "fib", MeanTimeNs: 1490, NumTasks: 1000}})
	FormatTable2(&buf, []Table2Row{{Code: "fib", Cutoff: true, MaxTasks: 4}})
	FormatTable3(&buf, []Table3Row{{Threads: 1, TaskNs: 1, TaskwaitNs: 2, CreateNs: 3, BarrierNs: 4}})
	FormatTable4(&buf, []Table4Row{{Depth: 0, MeanTimeNs: 25500, SumNs: 360000, NumTasks: 14}})
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "fib (cut-off)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted tables missing %q", want)
		}
	}
}
