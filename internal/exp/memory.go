package exp

import (
	"fmt"
	"io"

	scorep "repro"
	"repro/internal/bots"
)

// MemoryRow quantifies the Section V-B memory argument for one code:
// because completed instance trees are merged and their nodes recycled,
// the profiler's allocations track the *maximum concurrency*, not the
// task count.
type MemoryRow struct {
	Code   string
	Cutoff bool
	// TasksCreated is the number of task instances executed.
	TasksCreated int64
	// MaxConcurrent is the per-thread maximum of simultaneously active
	// instance trees (Table II).
	MaxConcurrent int
	// InstancesAllocated counts TaskInstance structs ever allocated
	// across all threads (pool misses).
	InstancesAllocated int64
	// NodesAllocated counts call-tree nodes ever allocated across all
	// threads (pool misses), including the persistent main/task trees.
	NodesAllocated int64
}

// MemoryRequirements reproduces the Section V-B evaluation: instrumented
// runs of every code/variant, reporting allocation counters against task
// counts.
func MemoryRequirements(cfg Config, threads int) []MemoryRow {
	cfg = cfg.normalized()
	var rows []MemoryRow
	for _, spec := range bots.All {
		variants := []bool{false}
		if spec.HasCutoff {
			variants = append(variants, true)
		}
		for _, cutoff := range variants {
			kernel := spec.Prepare(cfg.Size, cutoff)
			s := scorep.NewSession()
			kernel(s.Runtime(), threads)
			res, _ := s.End()
			row := MemoryRow{
				Code:         spec.Name,
				Cutoff:       cutoff,
				TasksCreated: res.TeamStats().TasksCreated,
			}
			for _, loc := range res.Locations() {
				if loc.MaxActiveInstances() > row.MaxConcurrent {
					row.MaxConcurrent = loc.MaxActiveInstances()
				}
				row.InstancesAllocated += loc.InstancesAllocated()
				row.NodesAllocated += loc.NodesAllocated()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatMemory prints the Section V-B table.
func FormatMemory(w io.Writer, rows []MemoryRow) {
	fmt.Fprintln(w, "Section V-B: profiler memory — allocations track concurrency, not task count")
	fmt.Fprintf(w, "%-24s %12s %10s %12s %12s %10s\n",
		"code", "tasks", "max conc.", "inst alloc", "node alloc", "reuse")
	for _, r := range rows {
		name := r.Code
		if r.Cutoff {
			name += " (cut-off)"
		}
		reuse := "-"
		if r.InstancesAllocated > 0 {
			reuse = fmt.Sprintf("%.0fx", float64(r.TasksCreated)/float64(r.InstancesAllocated))
		}
		fmt.Fprintf(w, "%-24s %12d %10d %12d %12d %10s\n",
			name, r.TasksCreated, r.MaxConcurrent, r.InstancesAllocated, r.NodesAllocated, reuse)
	}
	fmt.Fprintln(w)
}
