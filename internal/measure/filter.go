package measure

import (
	"strings"

	"repro/internal/omp"
	"repro/internal/region"
)

// Filter implements Score-P's measurement filtering: user regions that
// match the filter are excluded from profiling, which is the standard
// remedy when instrumentation of small, frequently-called functions
// dominates the overhead (the fib situation of the paper's Fig. 13 —
// every event that is never generated costs nothing).
//
// A Filter wraps a Measurement as the runtime listener. Only
// user-function Enter/Exit events are filtered; construct regions
// (parallel, task, barriers, taskwaits) are structural for the task
// profiling algorithm and always pass through.
type Filter struct {
	m *Measurement

	excludePrefixes []string
	excludeNames    map[string]bool
}

// NewFilter creates a filtering listener around m. Patterns ending in
// '*' exclude by prefix, others by exact region name — mirroring the
// SCOREP_FILTERING_FILE syntax in spirit.
func NewFilter(m *Measurement, patterns ...string) *Filter {
	f := &Filter{m: m, excludeNames: make(map[string]bool)}
	for _, p := range patterns {
		if strings.HasSuffix(p, "*") {
			f.excludePrefixes = append(f.excludePrefixes, strings.TrimSuffix(p, "*"))
		} else {
			f.excludeNames[p] = true
		}
	}
	return f
}

// Excluded reports whether events for r are dropped.
func (f *Filter) Excluded(r *region.Region) bool {
	if r.Type != region.UserFunction {
		return false
	}
	if f.excludeNames[r.Name] {
		return true
	}
	for _, p := range f.excludePrefixes {
		if strings.HasPrefix(r.Name, p) {
			return true
		}
	}
	return false
}

// Measurement returns the wrapped measurement.
func (f *Filter) Measurement() *Measurement { return f.m }

// ThreadBegin implements omp.Listener.
func (f *Filter) ThreadBegin(t *omp.Thread) { f.m.ThreadBegin(t) }

// ThreadEnd implements omp.Listener.
func (f *Filter) ThreadEnd(t *omp.Thread) { f.m.ThreadEnd(t) }

// Enter implements omp.Listener, dropping excluded user regions.
func (f *Filter) Enter(t *omp.Thread, r *region.Region) {
	if f.Excluded(r) {
		return
	}
	f.m.Enter(t, r)
}

// Exit implements omp.Listener, dropping excluded user regions.
func (f *Filter) Exit(t *omp.Thread, r *region.Region) {
	if f.Excluded(r) {
		return
	}
	f.m.Exit(t, r)
}

// TaskCreateBegin implements omp.Listener.
func (f *Filter) TaskCreateBegin(t *omp.Thread, r *region.Region) { f.m.TaskCreateBegin(t, r) }

// TaskCreateEnd implements omp.Listener.
func (f *Filter) TaskCreateEnd(t *omp.Thread, tk *omp.Task) { f.m.TaskCreateEnd(t, tk) }

// TaskBegin implements omp.Listener.
func (f *Filter) TaskBegin(t *omp.Thread, tk *omp.Task) { f.m.TaskBegin(t, tk) }

// TaskEnd implements omp.Listener.
func (f *Filter) TaskEnd(t *omp.Thread, tk *omp.Task) { f.m.TaskEnd(t, tk) }

// TaskSwitch implements omp.Listener.
func (f *Filter) TaskSwitch(t *omp.Thread, tk *omp.Task) { f.m.TaskSwitch(t, tk) }
