package measure

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// Filter implements Score-P's measurement filtering: user regions that
// match the filter are excluded from profiling, which is the standard
// remedy when instrumentation of small, frequently-called functions
// dominates the overhead (the fib situation of the paper's Fig. 13 —
// every event that is never generated costs nothing).
//
// A Filter wraps a Measurement as the runtime listener. Only
// user-function Enter/Exit events are filtered; construct regions
// (parallel, task, barriers, taskwaits) are structural for the task
// profiling algorithm and always pass through.
//
// Verdicts are cached per interned region: the first event for a region
// pays the name/prefix matching, every later event costs one atomic
// load — the per-event hot path never scans patterns or hashes names.
type Filter struct {
	m *Measurement

	excludePrefixes []string
	excludeNames    map[string]bool

	// verdicts caches Excluded results indexed by region ID. Entries
	// remember the region pointer so a collision between IDs of
	// different registries falls back to recomputation instead of
	// returning a wrong verdict.
	verdicts atomic.Pointer[[]atomic.Pointer[verdict]]
	growMu   sync.Mutex
}

// verdict is one cached Excluded result.
type verdict struct {
	r        *region.Region
	excluded bool
}

// NewFilter creates a filtering listener around m. Patterns ending in
// '*' exclude by prefix, others by exact region name — mirroring the
// SCOREP_FILTERING_FILE syntax in spirit.
func NewFilter(m *Measurement, patterns ...string) *Filter {
	f := &Filter{m: m, excludeNames: make(map[string]bool)}
	for _, p := range patterns {
		if strings.HasSuffix(p, "*") {
			f.excludePrefixes = append(f.excludePrefixes, strings.TrimSuffix(p, "*"))
		} else {
			f.excludeNames[p] = true
		}
	}
	return f
}

// Excluded reports whether events for r are dropped.
func (f *Filter) Excluded(r *region.Region) bool {
	if tbl := f.verdicts.Load(); tbl != nil {
		if id := int(r.ID); id >= 0 && id < len(*tbl) {
			if v := (*tbl)[id].Load(); v != nil && v.r == r {
				return v.excluded
			}
		}
	}
	ex := f.match(r)
	f.cache(r, ex)
	return ex
}

// match computes the verdict from the patterns (the slow path).
func (f *Filter) match(r *region.Region) bool {
	if r.Type != region.UserFunction {
		return false
	}
	if f.excludeNames[r.Name] {
		return true
	}
	for _, p := range f.excludePrefixes {
		if strings.HasPrefix(r.Name, p) {
			return true
		}
	}
	return false
}

// cache stores a verdict, growing the table as needed. Growth copies
// element-wise through atomic loads/stores; readers always see either
// the old or the new table, both valid.
func (f *Filter) cache(r *region.Region, excluded bool) {
	id := int(r.ID)
	if id < 0 {
		return
	}
	f.growMu.Lock()
	defer f.growMu.Unlock()
	tbl := f.verdicts.Load()
	if tbl == nil || id >= len(*tbl) {
		n := 64
		if tbl != nil && 2*len(*tbl) > n {
			n = 2 * len(*tbl)
		}
		if id >= n {
			n = id + 1
		}
		grown := make([]atomic.Pointer[verdict], n)
		if tbl != nil {
			for i := range *tbl {
				grown[i].Store((*tbl)[i].Load())
			}
		}
		tbl = &grown
		f.verdicts.Store(tbl)
	}
	(*tbl)[id].Store(&verdict{r: r, excluded: excluded})
}

// Measurement returns the wrapped measurement.
func (f *Filter) Measurement() *Measurement { return f.m }

// ThreadBegin implements omp.Listener.
func (f *Filter) ThreadBegin(t *omp.Thread) { f.m.ThreadBegin(t) }

// ThreadEnd implements omp.Listener.
func (f *Filter) ThreadEnd(t *omp.Thread) { f.m.ThreadEnd(t) }

// Enter implements omp.Listener, dropping excluded user regions.
func (f *Filter) Enter(t *omp.Thread, r *region.Region) {
	if f.Excluded(r) {
		return
	}
	f.m.Enter(t, r)
}

// EnterAt is Enter with an explicit timestamp (fused tee path).
func (f *Filter) EnterAt(t *omp.Thread, r *region.Region, now int64) {
	if f.Excluded(r) {
		return
	}
	f.m.EnterAt(t, r, now)
}

// Exit implements omp.Listener, dropping excluded user regions.
func (f *Filter) Exit(t *omp.Thread, r *region.Region) {
	if f.Excluded(r) {
		return
	}
	f.m.Exit(t, r)
}

// ExitAt is Exit with an explicit timestamp (fused tee path).
func (f *Filter) ExitAt(t *omp.Thread, r *region.Region, now int64) {
	if f.Excluded(r) {
		return
	}
	f.m.ExitAt(t, r, now)
}

// TaskCreateBegin implements omp.Listener.
func (f *Filter) TaskCreateBegin(t *omp.Thread, r *region.Region) { f.m.TaskCreateBegin(t, r) }

// TaskCreateBeginAt forwards with an explicit timestamp.
func (f *Filter) TaskCreateBeginAt(t *omp.Thread, r *region.Region, now int64) {
	f.m.TaskCreateBeginAt(t, r, now)
}

// TaskCreateEnd implements omp.Listener.
func (f *Filter) TaskCreateEnd(t *omp.Thread, tk *omp.Task) { f.m.TaskCreateEnd(t, tk) }

// TaskCreateEndAt forwards with an explicit timestamp.
func (f *Filter) TaskCreateEndAt(t *omp.Thread, tk *omp.Task, now int64) {
	f.m.TaskCreateEndAt(t, tk, now)
}

// TaskBegin implements omp.Listener.
func (f *Filter) TaskBegin(t *omp.Thread, tk *omp.Task) { f.m.TaskBegin(t, tk) }

// TaskBeginAt forwards with an explicit timestamp.
func (f *Filter) TaskBeginAt(t *omp.Thread, tk *omp.Task, now int64) { f.m.TaskBeginAt(t, tk, now) }

// TaskEnd implements omp.Listener.
func (f *Filter) TaskEnd(t *omp.Thread, tk *omp.Task) { f.m.TaskEnd(t, tk) }

// TaskEndAt forwards with an explicit timestamp.
func (f *Filter) TaskEndAt(t *omp.Thread, tk *omp.Task, now int64) { f.m.TaskEndAt(t, tk, now) }

// TaskSwitch implements omp.Listener.
func (f *Filter) TaskSwitch(t *omp.Thread, tk *omp.Task) { f.m.TaskSwitch(t, tk) }

// TaskSwitchAt forwards with an explicit timestamp.
func (f *Filter) TaskSwitchAt(t *omp.Thread, tk *omp.Task, now int64) { f.m.TaskSwitchAt(t, tk, now) }
