package measure

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/omp"
	"repro/internal/region"
)

// instrFn emits enter/exit around body through the runtime's listener,
// as pomp.Function does (inlined here to avoid an import cycle in tests).
func instrFn(th *omp.Thread, r *region.Region, body func()) {
	l := th.Runtime().Listener()
	if l != nil {
		l.Enter(th, r)
	}
	body()
	if l != nil {
		l.Exit(th, r)
	}
}

func TestFilterExcludesUserRegions(t *testing.T) {
	reg := region.NewRegistry()
	m := NewWithClock(clock.NewSystem(), reg)
	f := NewFilter(m, "tiny_*", "exact_fn")
	rt := omp.NewRuntimeWithRegistry(f, reg)

	par := reg.Register("par", "f.go", 1, region.Parallel)
	keep := reg.Register("keep_me", "f.go", 2, region.UserFunction)
	tiny := reg.Register("tiny_helper", "f.go", 3, region.UserFunction)
	exact := reg.Register("exact_fn", "f.go", 4, region.UserFunction)

	rt.Parallel(1, par, func(th *omp.Thread) {
		instrFn(th, keep, func() {})
		instrFn(th, tiny, func() {})
		instrFn(th, exact, func() {})
	})
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	parN := rep.Main.Find("par")
	if parN.Find("keep_me") == nil {
		t.Error("kept region missing")
	}
	if parN.Find("tiny_helper") != nil {
		t.Error("prefix-excluded region recorded")
	}
	if parN.Find("exact_fn") != nil {
		t.Error("exactly-excluded region recorded")
	}
}

func TestFilterNeverExcludesConstructs(t *testing.T) {
	reg := region.NewRegistry()
	m := NewWithClock(clock.NewSystem(), reg)
	// A pathological filter matching everything by prefix.
	f := NewFilter(m, "*")
	rt := omp.NewRuntimeWithRegistry(f, reg)

	par := reg.Register("par", "f.go", 1, region.Parallel)
	task := reg.Register("work", "f.go", 2, region.Task)
	tw := reg.Register("tw", "f.go", 3, region.Taskwait)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			th.NewTask(task, func(*omp.Thread) {})
			th.Taskwait(tw)
		}
	})
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	if rep.Main.Find("par") == nil {
		t.Error("parallel region filtered (must never be)")
	}
	if rep.TaskTree("work") == nil {
		t.Error("task construct filtered (must never be)")
	}
	if rep.Main.FindPath("par", "tw") == nil {
		t.Error("taskwait filtered (must never be)")
	}
}

func TestFilterExcludedPredicate(t *testing.T) {
	reg := region.NewRegistry()
	m := NewWithClock(clock.NewSystem(), reg)
	f := NewFilter(m, "a*", "b")
	cases := []struct {
		name string
		typ  region.Type
		want bool
	}{
		{"abc", region.UserFunction, true},
		{"a", region.UserFunction, true},
		{"b", region.UserFunction, true},
		{"bc", region.UserFunction, false},
		{"abc", region.Task, false}, // constructs never excluded
	}
	for _, c := range cases {
		r := reg.Register(c.name, "f.go", 1, c.typ)
		if got := f.Excluded(r); got != c.want {
			t.Errorf("Excluded(%s %s) = %v, want %v", c.name, c.typ, got, c.want)
		}
	}
	if f.Measurement() != m {
		t.Error("Measurement accessor broken")
	}
}

func TestFilterKeepsProfileConsistent(t *testing.T) {
	// Filtering a function that wraps task creation must not disturb the
	// task profiling algorithm (events inside remain balanced).
	reg := region.NewRegistry()
	m := NewWithClock(clock.NewSystem(), reg)
	f := NewFilter(m, "wrapper")
	rt := omp.NewRuntimeWithRegistry(f, reg)

	par := reg.Register("par", "f.go", 1, region.Parallel)
	wrapper := reg.Register("wrapper", "f.go", 2, region.UserFunction)
	task := reg.Register("work", "f.go", 3, region.Task)
	tw := reg.Register("tw", "f.go", 4, region.Taskwait)

	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			instrFn(th, wrapper, func() {
				for i := 0; i < 10; i++ {
					th.NewTask(task, func(c *omp.Thread) {
						instrFn(c, wrapper, func() {})
					})
				}
				th.Taskwait(tw)
			})
		}
	})
	m.Finish() // would panic on unbalanced events
	rep := cube.Aggregate(m.Locations())
	if tree := rep.TaskTree("work"); tree == nil || tree.Dur.Count != 10 {
		t.Errorf("task tree wrong under filtering: %+v", tree)
	}
}
