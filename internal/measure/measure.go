// Package measure is the measurement-system core: it implements the
// runtime's Listener interface and translates the POMP2-style event
// stream into per-thread task-aware profiles using internal/core — the
// role Score-P's measurement core plays between OPARI2 instrumentation
// and the profile (paper Section IV-A).
package measure

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/region"
)

// Measurement owns the per-thread locations (profiles) of one measured
// program run. Attach it to a runtime via omp.NewRuntime(m); after the
// measured code finished, call Finish and hand Locations to
// internal/cube for aggregation and reporting.
//
// Locations persist across successive parallel regions (threads with the
// same ID map to the same location), matching Score-P's thread pool
// model. Concurrent (nested) parallel regions are not supported by the
// measurement layer.
type Measurement struct {
	clk clock.Clock
	reg *region.Registry

	mu        sync.Mutex
	locations map[int]*core.ThreadProfile
	order     []int

	createMu      sync.RWMutex
	createRegions map[*region.Region]*region.Region

	finished bool
}

// New creates a measurement reading time from the system clock and
// interning derived regions in the default registry.
func New() *Measurement {
	return NewWithClock(clock.NewSystem(), region.Default)
}

// NewWithClock creates a measurement with an explicit clock and registry;
// tests use a manual clock for deterministic profiles.
func NewWithClock(clk clock.Clock, reg *region.Registry) *Measurement {
	return &Measurement{
		clk:           clk,
		reg:           reg,
		locations:     make(map[int]*core.ThreadProfile),
		createRegions: make(map[*region.Region]*region.Region),
	}
}

// profile returns the location attached to t.
func profile(t *omp.Thread) *core.ThreadProfile {
	p, _ := t.ProfData.(*core.ThreadProfile)
	return p
}

// Profile exposes the location attached to a thread, or nil when the
// thread is not measured. Instrumentation wrappers use it.
func Profile(t *omp.Thread) *core.ThreadProfile { return profile(t) }

// CreateRegion returns (and interns on first use) the task-creation
// region derived from a task region, as OPARI2 generates it alongside
// the task construct region.
func (m *Measurement) CreateRegion(r *region.Region) *region.Region {
	m.createMu.RLock()
	cr, ok := m.createRegions[r]
	m.createMu.RUnlock()
	if ok {
		return cr
	}
	m.createMu.Lock()
	defer m.createMu.Unlock()
	if cr, ok = m.createRegions[r]; ok {
		return cr
	}
	cr = m.reg.Register(r.Name+" (create)", r.File, r.Line, region.TaskCreate)
	m.createRegions[r] = cr
	return cr
}

// ThreadBegin implements omp.Listener: it binds the location for the
// thread ID to the thread.
func (m *Measurement) ThreadBegin(t *omp.Thread) {
	m.mu.Lock()
	p, ok := m.locations[t.ID]
	if !ok {
		p = core.NewThreadProfile(t.ID, m.clk)
		m.locations[t.ID] = p
		m.order = append(m.order, t.ID)
	}
	m.mu.Unlock()
	t.ProfData = p
}

// ThreadEnd implements omp.Listener. The location stays open so that a
// later parallel region can continue it; Finish closes all locations.
func (m *Measurement) ThreadEnd(t *omp.Thread) {
	t.ProfData = nil
}

// Enter implements omp.Listener.
func (m *Measurement) Enter(t *omp.Thread, r *region.Region) {
	profile(t).Enter(r)
}

// Exit implements omp.Listener.
func (m *Measurement) Exit(t *omp.Thread, r *region.Region) {
	profile(t).Exit(r)
}

// TaskCreateBegin implements omp.Listener: enter the derived
// task-creation region (creation-time metric, Section III).
func (m *Measurement) TaskCreateBegin(t *omp.Thread, r *region.Region) {
	profile(t).Enter(m.CreateRegion(r))
}

// TaskCreateEnd implements omp.Listener.
func (m *Measurement) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	profile(t).Exit(m.CreateRegion(tk.Region))
}

// TaskBegin implements omp.Listener: create the instance profile and
// store it in the task's context, exactly as OPARI2 stores instance IDs
// inside the task.
func (m *Measurement) TaskBegin(t *omp.Thread, tk *omp.Task) {
	tk.ProfData = profile(t).TaskBegin(tk.Region)
}

// TaskEnd implements omp.Listener.
func (m *Measurement) TaskEnd(t *omp.Thread, tk *omp.Task) {
	profile(t).TaskEnd()
	tk.ProfData = nil
}

// TaskSwitch implements omp.Listener: resume a suspended instance (or the
// implicit task for tk == nil).
func (m *Measurement) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	p := profile(t)
	if tk == nil {
		p.TaskSwitchTo(nil)
		return
	}
	ti, ok := tk.ProfData.(*core.TaskInstance)
	if !ok {
		panic(fmt.Sprintf("measure: TaskSwitch to task %d without instance data", tk.ID))
	}
	p.TaskSwitchTo(ti)
}

// Finish closes all locations. Call after the measured code completed.
func (m *Measurement) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished {
		return
	}
	for _, id := range m.order {
		m.locations[id].Finish()
	}
	m.finished = true
}

// Locations returns the per-thread profiles ordered by thread ID
// (creation order equals ID order for contiguous teams).
func (m *Measurement) Locations() []*core.ThreadProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*core.ThreadProfile, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.locations[id])
	}
	return out
}

// Location returns the profile of one thread ID, or nil.
func (m *Measurement) Location(id int) *core.ThreadProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.locations[id]
}

// Clock returns the measurement's time source.
func (m *Measurement) Clock() clock.Clock { return m.clk }
