// Package measure is the measurement-system core: it implements the
// runtime's Listener interface and translates the POMP2-style event
// stream into per-thread task-aware profiles using internal/core — the
// role Score-P's measurement core plays between OPARI2 instrumentation
// and the profile (paper Section IV).
//
// The per-event path is lock-free in steady state: the thread's profile
// lives in the typed omp.Thread.Profile slot (bound once at
// ThreadBegin), task instances travel in the typed omp.Task.Instance
// slot, and the derived task-creation region is cached on the task
// region itself — no event between ThreadBegin and ThreadEnd takes a
// lock, consults a map, or allocates.
package measure

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/region"
)

// Measurement owns the per-thread locations (profiles) of one measured
// program run. Attach it to a runtime via omp.NewRuntime(m); after the
// measured code finished, call Finish and hand Locations to
// internal/cube for aggregation and reporting.
//
// Locations persist across successive parallel regions (threads with the
// same ID map to the same location), matching Score-P's thread pool
// model. Concurrent (nested) parallel regions are not supported by the
// measurement layer.
type Measurement struct {
	clk clock.Clock
	reg *region.Registry

	mu        sync.Mutex
	locations map[int]*core.ThreadProfile
	order     []int

	finished bool
}

// New creates a measurement reading time from the system clock and
// interning derived regions in the default registry.
func New() *Measurement {
	return NewWithClock(clock.NewSystem(), region.Default)
}

// NewWithClock creates a measurement with an explicit clock and registry;
// tests use a manual clock for deterministic profiles.
func NewWithClock(clk clock.Clock, reg *region.Registry) *Measurement {
	return &Measurement{
		clk:       clk,
		reg:       reg,
		locations: make(map[int]*core.ThreadProfile),
	}
}

// Profile exposes the location attached to a thread, or nil when the
// thread is not measured. Instrumentation wrappers use it.
func Profile(t *omp.Thread) *core.ThreadProfile { return t.Profile }

// CreateRegion returns (and interns on first use) the task-creation
// region derived from a task region, as OPARI2 generates it alongside
// the task construct region. The derived region is cached on the task
// region itself, so the per-spawn cost is one atomic load.
func (m *Measurement) CreateRegion(r *region.Region) *region.Region {
	return m.reg.TaskCreateRegion(r)
}

// ThreadBegin implements omp.Listener: it binds the location for the
// thread ID to the thread's typed profile slot. This is the only
// measurement event that takes a lock (threads register concurrently);
// every later event reaches its state through the slot.
func (m *Measurement) ThreadBegin(t *omp.Thread) {
	m.mu.Lock()
	p, ok := m.locations[t.ID]
	if !ok {
		p = core.NewThreadProfile(t.ID, m.clk)
		m.locations[t.ID] = p
		m.order = append(m.order, t.ID)
	}
	m.mu.Unlock()
	t.Profile = p
}

// ThreadEnd implements omp.Listener. The location stays open so that a
// later parallel region can continue it; Finish closes all locations.
func (m *Measurement) ThreadEnd(t *omp.Thread) {
	t.Profile = nil
}

// Enter implements omp.Listener.
func (m *Measurement) Enter(t *omp.Thread, r *region.Region) {
	t.Profile.Enter(r)
}

// EnterAt is Enter with an explicit timestamp; the fused
// profiling+tracing tee reads the clock once per event and hands the
// same instant to profile and trace.
func (m *Measurement) EnterAt(t *omp.Thread, r *region.Region, now int64) {
	t.Profile.EnterAt(r, now)
}

// Exit implements omp.Listener.
func (m *Measurement) Exit(t *omp.Thread, r *region.Region) {
	t.Profile.Exit(r)
}

// ExitAt is Exit with an explicit timestamp (see EnterAt).
func (m *Measurement) ExitAt(t *omp.Thread, r *region.Region, now int64) {
	t.Profile.ExitAt(r, now)
}

// TaskCreateBegin implements omp.Listener: enter the derived
// task-creation region (creation-time metric, Section III).
func (m *Measurement) TaskCreateBegin(t *omp.Thread, r *region.Region) {
	t.Profile.Enter(m.CreateRegion(r))
}

// TaskCreateBeginAt is TaskCreateBegin with an explicit timestamp.
func (m *Measurement) TaskCreateBeginAt(t *omp.Thread, r *region.Region, now int64) {
	t.Profile.EnterAt(m.CreateRegion(r), now)
}

// TaskCreateEnd implements omp.Listener.
func (m *Measurement) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	t.Profile.Exit(m.CreateRegion(tk.Region))
}

// TaskCreateEndAt is TaskCreateEnd with an explicit timestamp.
func (m *Measurement) TaskCreateEndAt(t *omp.Thread, tk *omp.Task, now int64) {
	t.Profile.ExitAt(m.CreateRegion(tk.Region), now)
}

// TaskBegin implements omp.Listener: create the instance profile and
// store it in the task's typed slot, exactly as OPARI2 stores instance
// IDs inside the task.
func (m *Measurement) TaskBegin(t *omp.Thread, tk *omp.Task) {
	tk.Instance = t.Profile.TaskBegin(tk.Region)
}

// TaskBeginAt is TaskBegin with an explicit timestamp.
func (m *Measurement) TaskBeginAt(t *omp.Thread, tk *omp.Task, now int64) {
	tk.Instance = t.Profile.TaskBeginAt(tk.Region, now)
}

// TaskEnd implements omp.Listener.
func (m *Measurement) TaskEnd(t *omp.Thread, tk *omp.Task) {
	t.Profile.TaskEnd()
	tk.Instance = nil
}

// TaskEndAt is TaskEnd with an explicit timestamp.
func (m *Measurement) TaskEndAt(t *omp.Thread, tk *omp.Task, now int64) {
	t.Profile.TaskEndAt(now)
	tk.Instance = nil
}

// TaskSwitch implements omp.Listener: resume a suspended instance (or the
// implicit task for tk == nil).
func (m *Measurement) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	p := t.Profile
	if tk == nil {
		p.TaskSwitchTo(nil)
		return
	}
	ti := tk.Instance
	if ti == nil {
		panic(fmt.Sprintf("measure: TaskSwitch to task %d without instance data", tk.ID))
	}
	p.TaskSwitchTo(ti)
}

// TaskSwitchAt is TaskSwitch with an explicit timestamp.
func (m *Measurement) TaskSwitchAt(t *omp.Thread, tk *omp.Task, now int64) {
	p := t.Profile
	if tk == nil {
		p.TaskSwitchToAt(nil, now)
		return
	}
	ti := tk.Instance
	if ti == nil {
		panic(fmt.Sprintf("measure: TaskSwitch to task %d without instance data", tk.ID))
	}
	p.TaskSwitchToAt(ti, now)
}

// Finish closes all locations. Call after the measured code completed.
func (m *Measurement) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished {
		return
	}
	for _, id := range m.order {
		m.locations[id].Finish()
	}
	m.finished = true
}

// Locations returns the per-thread profiles ordered by thread ID
// (creation order equals ID order for contiguous teams).
func (m *Measurement) Locations() []*core.ThreadProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*core.ThreadProfile, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.locations[id])
	}
	return out
}

// Location returns the profile of one thread ID, or nil.
func (m *Measurement) Location(id int) *core.ThreadProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.locations[id]
}

// Clock returns the measurement's time source.
func (m *Measurement) Clock() clock.Clock { return m.clk }
