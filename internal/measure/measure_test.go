package measure

import (
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/omp"
	"repro/internal/region"
)

func testSetup(t *testing.T) (*Measurement, *omp.Runtime, *region.Registry) {
	t.Helper()
	reg := region.NewRegistry()
	m := NewWithClock(clock.NewSystem(), reg)
	rt := omp.NewRuntimeWithRegistry(m, reg)
	return m, rt, reg
}

func TestEndToEndProfile(t *testing.T) {
	m, rt, reg := testSetup(t)
	par := reg.Register("par", "m.go", 1, region.Parallel)
	task := reg.Register("work", "m.go", 2, region.Task)
	tw := reg.Register("wait", "m.go", 3, region.Taskwait)

	var ran atomic.Int64
	rt.Parallel(4, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 100; i++ {
				th.NewTask(task, func(c *omp.Thread) {
					c.NewTask(task, func(*omp.Thread) { ran.Add(1) })
					c.Taskwait(tw)
					ran.Add(1)
				})
			}
			th.Taskwait(tw)
		}
	})
	m.Finish()

	if ran.Load() != 200 {
		t.Fatalf("tasks ran = %d", ran.Load())
	}
	locs := m.Locations()
	if len(locs) != 4 {
		t.Fatalf("locations = %d, want 4", len(locs))
	}
	rep := cube.Aggregate(locs)
	tree := rep.TaskTree("work")
	if tree == nil {
		t.Fatal("no task tree")
	}
	if tree.Dur.Count != 200 {
		t.Errorf("task instances = %d, want 200", tree.Dur.Count)
	}
	// The instrumented task construct has create and taskwait children.
	if tree.Find("work (create)") == nil {
		t.Error("no create-region child in task tree")
	}
	if tree.Find("wait") == nil {
		t.Error("no taskwait child in task tree")
	}
	// All events balanced: every location finished without panic, and the
	// main tree contains the parallel region with an implicit barrier.
	parN := rep.Main.Find("par")
	if parN == nil || parN.Find("par (implicit barrier)") == nil {
		t.Error("main tree missing parallel region/implicit barrier")
	}
}

func TestLocationsPersistAcrossParallelRegions(t *testing.T) {
	m, rt, reg := testSetup(t)
	par := reg.Register("par", "m.go", 1, region.Parallel)
	rt.Parallel(2, par, func(*omp.Thread) {})
	rt.Parallel(4, par, func(*omp.Thread) {})
	m.Finish()
	locs := m.Locations()
	if len(locs) != 4 {
		t.Fatalf("locations = %d, want 4 (reused across regions)", len(locs))
	}
	rep := cube.Aggregate(locs)
	parN := rep.Main.Find("par")
	if parN == nil {
		t.Fatal("no parallel node")
	}
	// Threads 0 and 1 entered twice, threads 2 and 3 once -> 6 visits.
	if parN.Visits != 6 {
		t.Errorf("parallel visits = %d, want 6", parN.Visits)
	}
}

func TestCreateRegionInterned(t *testing.T) {
	m, _, reg := testSetup(t)
	task := reg.Register("work", "m.go", 2, region.Task)
	c1 := m.CreateRegion(task)
	c2 := m.CreateRegion(task)
	if c1 != c2 {
		t.Error("create region not interned")
	}
	if c1.Type != region.TaskCreate || c1.Name != "work (create)" {
		t.Errorf("create region wrong: %s", c1)
	}
}

func TestUninstrumentedThreadHasNilProfile(t *testing.T) {
	reg := region.NewRegistry()
	rt := omp.NewRuntimeWithRegistry(nil, reg)
	par := reg.Register("par", "m.go", 1, region.Parallel)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if Profile(th) != nil {
			t.Error("uninstrumented thread has a profile")
		}
	})
}

func TestFinishIsIdempotent(t *testing.T) {
	m, rt, reg := testSetup(t)
	par := reg.Register("par", "m.go", 1, region.Parallel)
	rt.Parallel(1, par, func(*omp.Thread) {})
	m.Finish()
	m.Finish() // must not panic
	if m.Location(0) == nil || !m.Location(0).Finished() {
		t.Error("location not finished")
	}
}

func TestStubAndTaskTreeConsistency(t *testing.T) {
	// Total stub time across the main tree must equal total task tree
	// time: every nanosecond of task execution is inside some scheduling
	// point of some implicit task.
	m, rt, reg := testSetup(t)
	par := reg.Register("par", "m.go", 1, region.Parallel)
	task := reg.Register("work", "m.go", 2, region.Task)
	tw := reg.Register("wait", "m.go", 3, region.Taskwait)
	rt.Parallel(4, par, func(th *omp.Thread) {
		for i := 0; i < 25; i++ {
			th.NewTask(task, func(c *omp.Thread) {
				s := 0
				for j := 0; j < 10000; j++ {
					s += j
				}
				_ = s
			})
		}
		th.Taskwait(tw)
	})
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	stub := cube.SumStubTime(rep.Main)
	var taskTotal int64
	for _, tr := range rep.Tasks {
		taskTotal += tr.Dur.Sum
	}
	if stub != taskTotal {
		t.Errorf("stub total %d != task tree total %d", stub, taskTotal)
	}
}
