package bots

import (
	"flag"
	"reflect"
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	for name, want := range map[string]Size{"tiny": SizeTiny, "small": SizeSmall, "medium": SizeMedium} {
		got, err := ParseSize(name)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = (%v, %v), want (%v, nil)", name, got, err, want)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize accepted an unknown size")
	}
}

func TestParseThreads(t *testing.T) {
	got, err := ParseThreads("1, 2,4,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4, 8}) {
		t.Errorf("ParseThreads = (%v, %v)", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "two", "1,,2"} {
		if _, err := ParseThreads(bad); err == nil {
			t.Errorf("ParseThreads(%q) accepted", bad)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if !strings.HasPrefix(names, "alignment|") || !strings.Contains(names, "|nqueens|") {
		t.Errorf("Names() = %q, want the paper's code list", names)
	}
}

func TestRunFlagsResolve(t *testing.T) {
	parse := func(t *testing.T, args ...string) *RunFlags {
		t.Helper()
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		rf := RegisterRunFlags(fs, "fib")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return rf
	}

	rf := parse(t, "-code", "nqueens", "-size", "tiny", "-threads", "2", "-cutoff")
	spec, size, err := rf.Resolve()
	if err != nil || spec.Name != "nqueens" || size != SizeTiny {
		t.Fatalf("Resolve = (%v, %v, %v)", spec, size, err)
	}

	// Defaults resolve too.
	if spec, size, err := parse(t).Resolve(); err != nil || spec.Name != "fib" || size != SizeSmall {
		t.Fatalf("default Resolve = (%v, %v, %v)", spec, size, err)
	}

	for _, bad := range [][]string{
		{"-code", "doom"},
		{"-size", "huge"},
		{"-threads", "0"},
		{"-code", "sort", "-cutoff"}, // sort has no cut-off variant
	} {
		if _, _, err := parse(t, bad...).Resolve(); err == nil {
			t.Errorf("Resolve accepted %v", bad)
		}
	}
}
