package bots

import (
	"sync/atomic"

	"repro/internal/omp"
)

// BOTS implements task-creation cut-offs with three strategies
// (Duran et al., ICPP 2009): "manual" stops creating tasks below a
// depth and recurses serially (what Spec.Prepare(cutoff=true) uses,
// as the paper's evaluation does), "if_clause" keeps creating tasks but
// with if(depth < limit) so deep tasks are undeferred, and "final"
// marks tasks final(depth >= limit) so whole subtrees become included
// tasks. The strategies stress different runtime paths with identical
// results; this file provides them for fib and nqueens.

// CutoffStrategy selects how the recursion cut-off is implemented.
type CutoffStrategy int

// Cut-off strategies, mirroring BOTS's -DMANUAL_CUTOFF,
// -DIF_CUTOFF and -DFINAL_CUTOFF builds.
const (
	CutoffManual CutoffStrategy = iota
	CutoffIf
	CutoffFinal
)

// String names the strategy like the BOTS build flags.
func (s CutoffStrategy) String() string {
	switch s {
	case CutoffManual:
		return "manual"
	case CutoffIf:
		return "if_clause"
	case CutoffFinal:
		return "final"
	}
	return "unknown"
}

// Strategies lists all cut-off strategies.
var Strategies = []CutoffStrategy{CutoffManual, CutoffIf, CutoffFinal}

// fibStrategyRec is fibTaskRec generalized over the cut-off strategy.
func fibStrategyRec(t *omp.Thread, n, depth, cutoff int, strat CutoffStrategy, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	switch strat {
	case CutoffManual:
		if depth >= cutoff {
			*out = fibSerialRec(n)
			return
		}
		var a, b uint64
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-1, depth+1, cutoff, strat, &a) })
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-2, depth+1, cutoff, strat, &b) })
		t.Taskwait(fibTW)
		*out = a + b
	case CutoffIf:
		var a, b uint64
		deferTasks := depth < cutoff
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-1, depth+1, cutoff, strat, &a) }, omp.If(deferTasks))
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-2, depth+1, cutoff, strat, &b) }, omp.If(deferTasks))
		t.Taskwait(fibTW)
		*out = a + b
	case CutoffFinal:
		var a, b uint64
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-1, depth+1, cutoff, strat, &a) }, omp.Final(depth+1 >= cutoff))
		t.NewTask(fibTask, func(c *omp.Thread) { fibStrategyRec(c, n-2, depth+1, cutoff, strat, &b) }, omp.Final(depth+1 >= cutoff))
		t.Taskwait(fibTW)
		*out = a + b
	}
}

// FibStrategyKernel returns a fib kernel using the given cut-off
// strategy at the given depth limit.
func FibStrategyKernel(size Size, strat CutoffStrategy, cutoff int) Kernel {
	n := fibParams[size]
	if cutoff <= 0 {
		cutoff = fibCutoffDepth
	}
	return func(rt *omp.Runtime, threads int) uint64 {
		var result uint64
		var started atomic.Bool
		rt.Parallel(threads, fibPar, func(t *omp.Thread) {
			if started.CompareAndSwap(false, true) {
				fibStrategyRec(t, n, 0, cutoff, strat, &result)
			}
		})
		return result
	}
}

// nqueensStrategyRec generalizes nqueensTaskRec over the strategy.
func nqueensStrategyRec(t *omp.Thread, board []int8, n, cutoff int, strat CutoffStrategy, count *atomic.Int64) {
	row := len(board)
	if row == n {
		count.Add(1)
		return
	}
	if strat == CutoffManual && row >= cutoff {
		count.Add(nqueensSerial(board, n))
		return
	}
	for col := int8(0); int(col) < n; col++ {
		if !nqOK(board, col) {
			continue
		}
		child := make([]int8, row+1)
		copy(child, board)
		child[row] = col
		var opts []omp.TaskOpt
		switch strat {
		case CutoffIf:
			opts = append(opts, omp.If(row < cutoff))
		case CutoffFinal:
			opts = append(opts, omp.Final(row+1 >= cutoff))
		}
		t.NewTask(nqTask, func(c *omp.Thread) {
			nqueensStrategyRec(c, child, n, cutoff, strat, count)
		}, opts...)
	}
	t.Taskwait(nqTW)
}

// NQueensStrategyKernel returns an nqueens kernel using the given
// cut-off strategy.
func NQueensStrategyKernel(size Size, strat CutoffStrategy, cutoff int) Kernel {
	n := nqueensParams[size]
	if cutoff <= 0 {
		cutoff = nqueensCutoffDepth
	}
	return func(rt *omp.Runtime, threads int) uint64 {
		var count atomic.Int64
		var started atomic.Bool
		rt.Parallel(threads, nqPar, func(t *omp.Thread) {
			if started.CompareAndSwap(false, true) {
				nqueensStrategyRec(t, nil, n, cutoff, strat, &count)
			}
		})
		return uint64(count.Load())
	}
}
