package bots

import (
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// fib computes Fibonacci numbers with one task per recursive call and a
// taskwait summing the results — BOTS's deliberately pathological
// stress test: the tasks are tiny (1.49 µs mean in the paper's Table I)
// and every level executes a taskwait, so instrumentation overhead is
// maximal (310% in Fig. 13, 527% in Fig. 14).

var (
	fibPar  = region.MustRegister("fib.parallel", "fib.go", 20, region.Parallel)
	fibTask = region.MustRegister("fib.task", "fib.go", 30, region.Task)
	fibTW   = region.MustRegister("fib.taskwait", "fib.go", 40, region.Taskwait)
)

// fibParams: n per size; the cut-off variant stops task creation at
// depth fibCutoffDepth (BOTS "manual" cut-off), recursing serially below.
var fibParams = map[Size]int{
	SizeTiny:   18,
	SizeSmall:  23,
	SizeMedium: 27,
}

const fibCutoffDepth = 8

// fibSerialRec preserves the exponential call structure of the BOTS
// serial version (an iterative fib would remove the work entirely).
func fibSerialRec(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSerialRec(n-1) + fibSerialRec(n-2)
}

func fibTaskRec(t *omp.Thread, n, depth, cutoff int, out *uint64) {
	if n < 2 {
		*out = uint64(n)
		return
	}
	if cutoff > 0 && depth >= cutoff {
		*out = fibSerialRec(n)
		return
	}
	var a, b uint64
	t.NewTask(fibTask, func(c *omp.Thread) { fibTaskRec(c, n-1, depth+1, cutoff, &a) })
	t.NewTask(fibTask, func(c *omp.Thread) { fibTaskRec(c, n-2, depth+1, cutoff, &b) })
	t.Taskwait(fibTW)
	*out = a + b
}

// FibSpec is the fib benchmark.
var FibSpec = &Spec{
	Name:      "fib",
	HasCutoff: true,
	Prepare: func(size Size, cutoff bool) Kernel {
		n := fibParams[size]
		co := 0
		if cutoff {
			co = fibCutoffDepth
		}
		return func(rt *omp.Runtime, threads int) uint64 {
			var result uint64
			var started atomic.Bool
			rt.Parallel(threads, fibPar, func(t *omp.Thread) {
				// BOTS: #pragma omp parallel + single; the other threads
				// pick up tasks in the implicit barrier.
				if started.CompareAndSwap(false, true) {
					fibTaskRec(t, n, 0, co, &result)
				}
			})
			return result
		}
	},
	Expected: func(size Size) uint64 {
		// Iterative reference, independent of the recursive code paths.
		n := fibParams[size]
		a, b := uint64(0), uint64(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return a
	},
}
