package bots

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
)

func TestFibAllStrategiesCorrect(t *testing.T) {
	want := FibSpec.Expected(SizeTiny)
	for _, strat := range Strategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			kernel := FibStrategyKernel(SizeTiny, strat, 6)
			for _, threads := range []int{1, 4} {
				rt := omp.NewRuntime(nil)
				if got := kernel(rt, threads); got != want {
					t.Errorf("threads=%d: got %d, want %d", threads, got, want)
				}
			}
		})
	}
}

func TestNQueensAllStrategiesCorrect(t *testing.T) {
	want := NQueensSpec.Expected(SizeTiny)
	for _, strat := range Strategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			kernel := NQueensStrategyKernel(SizeTiny, strat, 3)
			rt := omp.NewRuntime(nil)
			if got := kernel(rt, 4); got != want {
				t.Errorf("got %d, want %d", got, want)
			}
		})
	}
}

func TestStrategyTaskCounts(t *testing.T) {
	// manual creates the fewest tasks (none below the cut-off);
	// if_clause and final create one task object per call (deep ones
	// undeferred), so their created counts match the no-cut-off version.
	rt := omp.NewRuntime(nil)

	FibStrategyKernel(SizeTiny, CutoffManual, 6)(rt, 2)
	manual := rt.LastTeamStats().TasksCreated

	FibStrategyKernel(SizeTiny, CutoffIf, 6)(rt, 2)
	ifc := rt.LastTeamStats().TasksCreated

	FibSpec.Prepare(SizeTiny, false)(rt, 2)
	plain := rt.LastTeamStats().TasksCreated

	if manual >= ifc {
		t.Errorf("manual (%d) should create fewer tasks than if_clause (%d)", manual, ifc)
	}
	if ifc != plain {
		t.Errorf("if_clause creates %d task objects, want %d (same as plain)", ifc, plain)
	}
}

func TestStrategiesInstrumented(t *testing.T) {
	// All strategies must produce consistent profiles: instance count ==
	// created count, and undeferred tasks still appear as instances.
	for _, strat := range Strategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			m := measure.New()
			rt := omp.NewRuntime(m)
			kernel := FibStrategyKernel(SizeTiny, strat, 5)
			if got, want := kernel(rt, 2), FibSpec.Expected(SizeTiny); got != want {
				t.Fatalf("wrong result %d", got)
			}
			created := rt.LastTeamStats().TasksCreated
			m.Finish()
			rep := cube.Aggregate(m.Locations())
			tree := rep.TaskTree("fib.task")
			if tree == nil || tree.Dur.Count != created {
				t.Errorf("profile instances %v != created %d", tree, created)
			}
		})
	}
}

func TestStrategyStringNames(t *testing.T) {
	if CutoffManual.String() != "manual" || CutoffIf.String() != "if_clause" ||
		CutoffFinal.String() != "final" || CutoffStrategy(9).String() != "unknown" {
		t.Error("strategy names wrong")
	}
}
