package bots

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
)

// Names returns the code names in the paper's order, pipe-separated —
// the flag help text shared by the CLIs.
func Names() string {
	parts := make([]string, 0, len(All))
	for _, s := range All {
		parts = append(parts, s.Name)
	}
	return strings.Join(parts, "|")
}

// ParseSize maps a size name to its Size.
func ParseSize(name string) (Size, error) {
	switch name {
	case "tiny":
		return SizeTiny, nil
	case "small":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	}
	return 0, fmt.Errorf("unknown size %q (want tiny|small|medium)", name)
}

// ParseThreads parses a comma-separated list of positive thread counts
// ("1,2,4,8"), the format of the experiment CLIs' -threads flag.
func ParseThreads(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// RunFlags bundles the BOTS run flags every benchmark-driving CLI
// repeats: which code, at which input size, on how many threads, with
// or without the cut-off variant.
type RunFlags struct {
	Code    string
	Size    string
	Threads int
	Cutoff  bool
}

// RegisterRunFlags declares -code/-size/-threads/-cutoff on fs with
// shared help text. defaultCode may be "" for CLIs where -code selects
// a mode (live run vs. file input).
func RegisterRunFlags(fs *flag.FlagSet, defaultCode string) *RunFlags {
	rf := &RunFlags{}
	fs.StringVar(&rf.Code, "code", defaultCode, "BOTS code: "+Names())
	fs.StringVar(&rf.Size, "size", "small", "input size: tiny|small|medium")
	fs.IntVar(&rf.Threads, "threads", 4, "number of threads")
	fs.BoolVar(&rf.Cutoff, "cutoff", false, "use the cut-off variant (fib, floorplan, health, nqueens, strassen)")
	return rf
}

// Resolve validates the parsed flags into a spec and size: the code
// must exist, the size must parse, the thread count must be positive
// and -cutoff requires a code that provides the variant.
func (rf *RunFlags) Resolve() (*Spec, Size, error) {
	spec := ByName(rf.Code)
	if spec == nil {
		return nil, 0, fmt.Errorf("unknown code %q (want %s)", rf.Code, Names())
	}
	size, err := ParseSize(rf.Size)
	if err != nil {
		return nil, 0, err
	}
	if rf.Threads < 1 {
		return nil, 0, fmt.Errorf("bad thread count %d", rf.Threads)
	}
	if rf.Cutoff && !spec.HasCutoff {
		return nil, 0, fmt.Errorf("%s has no cut-off variant", spec.Name)
	}
	return spec, size, nil
}
