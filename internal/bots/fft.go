package bots

import (
	"math"
	"math/cmplx"
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// fft computes a one-dimensional complex FFT with recursive
// decimation-in-time: each half transform becomes a task. BOTS's fft is
// the Cilk multi-radix FFT; the radix-2 recursion preserves the task
// structure the paper's measurements depend on (binary task recursion,
// taskwait per level, serial leaves), which is what drives its 10-17%
// overhead in Fig. 13.

var (
	fftPar  = region.MustRegister("fft.parallel", "fft.go", 20, region.Parallel)
	fftTask = region.MustRegister("fft.task", "fft.go", 30, region.Task)
	fftTW   = region.MustRegister("fft.taskwait", "fft.go", 40, region.Taskwait)
)

var fftParams = map[Size]int{
	SizeTiny:   1 << 10,
	SizeSmall:  1 << 14,
	SizeMedium: 1 << 18,
}

// fftSerialThreshold is the leaf size below which the transform runs
// serially (BOTS uses coefficient tables around this scale).
const fftSerialThreshold = 256

func fftInput(size Size) []complex128 {
	n := fftParams[size]
	r := newLCG(uint64(n) * 1299709)
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(r.nextFloat()-0.5, r.nextFloat()-0.5)
	}
	return a
}

// fftSerialRec transforms a (length power of two) in place, using tmp as
// scratch.
func fftSerialRec(a, tmp []complex128) {
	n := len(a)
	if n == 1 {
		return
	}
	if n <= fftSerialThreshold {
		fftIterative(a)
		return
	}
	h := n / 2
	for i := 0; i < h; i++ {
		tmp[i] = a[2*i]
		tmp[h+i] = a[2*i+1]
	}
	copy(a, tmp)
	fftSerialRec(a[:h], tmp[:h])
	fftSerialRec(a[h:], tmp[h:])
	fftCombine(a)
}

// fftTaskRec is the tasked version of fftSerialRec.
func fftTaskRec(t *omp.Thread, a, tmp []complex128) {
	n := len(a)
	if n <= fftSerialThreshold {
		fftIterative(a)
		return
	}
	h := n / 2
	for i := 0; i < h; i++ {
		tmp[i] = a[2*i]
		tmp[h+i] = a[2*i+1]
	}
	copy(a, tmp)
	t.NewTask(fftTask, func(c *omp.Thread) { fftTaskRec(c, a[:h], tmp[:h]) })
	t.NewTask(fftTask, func(c *omp.Thread) { fftTaskRec(c, a[h:], tmp[h:]) })
	t.Taskwait(fftTW)
	fftCombine(a)
}

// fftCombine merges two half-transforms with twiddle factors.
func fftCombine(a []complex128) {
	n := len(a)
	h := n / 2
	for k := 0; k < h; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		e, o := a[k], a[h+k]
		a[k] = e + w*o
		a[h+k] = e - w*o
	}
}

// fftIterative is the serial leaf transform (iterative radix-2,
// bit-reversal order).
func fftIterative(a []complex128) {
	n := len(a)
	// bit reversal
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
	}
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				u := a[i+k]
				v := a[i+k+size/2] * w
				a[i+k] = u + v
				a[i+k+size/2] = u - v
				w *= wl
			}
		}
	}
}

// fftChecksum quantizes the spectrum to survive last-bit FP differences.
func fftChecksum(a []complex128) uint64 {
	h := newFNV()
	for _, v := range a {
		h.add(uint64(int64(math.Round(real(v) * 1e6))))
		h.add(uint64(int64(math.Round(imag(v) * 1e6))))
	}
	return h.sum()
}

// FFTSpec is the fft benchmark.
var FFTSpec = &Spec{
	Name:      "fft",
	HasCutoff: false,
	Prepare: func(size Size, _ bool) Kernel {
		master := fftInput(size)
		return func(rt *omp.Runtime, threads int) uint64 {
			a := make([]complex128, len(master))
			copy(a, master)
			tmp := make([]complex128, len(master))
			var started atomic.Bool
			rt.Parallel(threads, fftPar, func(t *omp.Thread) {
				if started.CompareAndSwap(false, true) {
					fftTaskRec(t, a, tmp)
				}
			})
			return fftChecksum(a)
		}
	},
	Expected: func(size Size) uint64 {
		a := fftInput(size)
		tmp := make([]complex128, len(a))
		fftSerialRec(a, tmp)
		return fftChecksum(a)
	},
}
