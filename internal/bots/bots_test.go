package bots

import (
	"math"
	"testing"

	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
)

// TestAllCodesVerify runs every code at tiny and small sizes, in all
// variants, at 1 and 4 threads, uninstrumented, and checks the result
// against the serial reference.
func TestAllCodesVerify(t *testing.T) {
	for _, spec := range All {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, size := range []Size{SizeTiny, SizeSmall} {
				want := spec.Expected(size)
				variants := []bool{false}
				if spec.HasCutoff {
					variants = append(variants, true)
				}
				for _, cutoff := range variants {
					kernel := spec.Prepare(size, cutoff)
					for _, threads := range []int{1, 4} {
						rt := omp.NewRuntime(nil)
						got := kernel(rt, threads)
						if got != want {
							t.Errorf("%s size=%s cutoff=%v threads=%d: got %d, want %d",
								spec.Name, size, cutoff, threads, got, want)
						}
					}
				}
			}
		})
	}
}

// TestAllCodesVerifyInstrumented repeats verification with full profiling
// attached: instrumentation must never change results.
func TestAllCodesVerifyInstrumented(t *testing.T) {
	for _, spec := range All {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want := spec.Expected(SizeTiny)
			kernel := spec.Prepare(SizeTiny, false)
			m := measure.New()
			rt := omp.NewRuntime(m)
			got := kernel(rt, 4)
			if got != want {
				t.Errorf("instrumented %s: got %d, want %d", spec.Name, got, want)
			}
			m.Finish()
			rep := cube.Aggregate(m.Locations())
			if rep.NumThreads != 4 {
				t.Errorf("aggregated %d threads, want 4", rep.NumThreads)
			}
			if len(rep.Tasks) == 0 {
				t.Errorf("%s: no task trees in profile", spec.Name)
			}
		})
	}
}

func TestFibTaskCount(t *testing.T) {
	kernel := FibSpec.Prepare(SizeTiny, false) // fib(18)
	rt := omp.NewRuntime(nil)
	if got, want := kernel(rt, 2), FibSpec.Expected(SizeTiny); got != want {
		t.Fatalf("fib = %d, want %d", got, want)
	}
	// Task count for fib(n) with tasks at every level:
	// T(n) = T(n-1) + T(n-2) + 2, T(<2) = 0  =>  T(n) = 2*(fib(n+1)-1).
	fib := func(n int) int64 {
		a, b := int64(0), int64(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	want := 2 * (fib(fibParams[SizeTiny]+1) - 1)
	if st := rt.LastTeamStats(); st.TasksCreated != want {
		t.Errorf("fib tasks created = %d, want %d", st.TasksCreated, want)
	}
}

func TestCutoffReducesTaskCount(t *testing.T) {
	for _, spec := range CutoffCodes() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rt := omp.NewRuntime(nil)
			spec.Prepare(SizeSmall, false)(rt, 2)
			plain := rt.LastTeamStats().TasksCreated
			spec.Prepare(SizeSmall, true)(rt, 2)
			cut := rt.LastTeamStats().TasksCreated
			if cut >= plain {
				t.Errorf("cutoff did not reduce tasks: plain=%d cutoff=%d", plain, cut)
			}
			if cut == 0 {
				t.Errorf("cutoff version created no tasks at all")
			}
		})
	}
}

func TestCutoffSetMatchesPaper(t *testing.T) {
	want := map[string]bool{
		"fib": true, "floorplan": true, "health": true,
		"nqueens": true, "strassen": true,
		"alignment": false, "fft": false, "sort": false, "sparselu": false,
	}
	for _, spec := range All {
		if spec.HasCutoff != want[spec.Name] {
			t.Errorf("%s: HasCutoff = %v, want %v (paper Figs. 14/15, Table II)",
				spec.Name, spec.HasCutoff, want[spec.Name])
		}
	}
	if len(All) != 9 {
		t.Errorf("BOTS has 9 codes, got %d", len(All))
	}
}

func TestNQueensKnownSolutionCounts(t *testing.T) {
	// Classic n-queens solution counts.
	if got := nqueensSerial(nil, 8); got != 92 {
		t.Errorf("nqueens(8) = %d, want 92", got)
	}
	if got := nqueensSerial(nil, 10); got != 724 {
		t.Errorf("nqueens(10) = %d, want 724", got)
	}
}

func TestNQueensDepthKernelProducesDepthParams(t *testing.T) {
	m := measure.New()
	rt := omp.NewRuntime(m)
	kernel := NQueensDepthKernel(SizeTiny)
	if got, want := kernel(rt, 2), NQueensSpec.Expected(SizeTiny); got != want {
		t.Fatalf("depth-instrumented nqueens = %d, want %d", got, want)
	}
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	tree := rep.TaskTree("nqueens.task")
	if tree == nil {
		t.Fatal("no nqueens task tree")
	}
	depths := cube.ParamChildren(tree, "depth")
	if len(depths) != NQueensBoardSize(SizeTiny) {
		t.Errorf("depth levels = %d, want %d", len(depths), NQueensBoardSize(SizeTiny))
	}
	var total int64
	for _, d := range depths {
		total += d.Dur.Count
	}
	if total != tree.Dur.Count {
		t.Errorf("per-depth instance counts (%d) do not sum to total (%d)", total, tree.Dur.Count)
	}
}

func TestStrassenAgreesWithClassic(t *testing.T) {
	if err := StrassenMaxErrVsClassic(SizeTiny); err > 1e-9 {
		t.Errorf("strassen vs classic max err = %g", err)
	}
	if err := StrassenMaxErrVsClassic(SizeSmall); err > 1e-8 {
		t.Errorf("strassen vs classic max err = %g", err)
	}
}

func TestSortHandlesAdversarialInputs(t *testing.T) {
	check := func(name string, a []int32) {
		t.Helper()
		tmp := make([]int32, len(a))
		sortSerialRec(a, tmp)
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				t.Fatalf("%s: not sorted at %d", name, i)
			}
		}
	}
	n := 10000
	asc := make([]int32, n)
	desc := make([]int32, n)
	same := make([]int32, n)
	for i := 0; i < n; i++ {
		asc[i] = int32(i)
		desc[i] = int32(n - i)
		same[i] = 7
	}
	check("ascending", asc)
	check("descending", desc)
	check("constant", same)
	check("empty", nil)
	check("single", []int32{42})
}

func TestAlignmentScoreProperties(t *testing.T) {
	a := []byte("ACDEFGHIKL")
	b := []byte("ACDEFGHIKL")
	if s := alignPair(a, b); s != int64(len(a)*2) {
		t.Errorf("self alignment score = %d, want %d", s, len(a)*2)
	}
	// Symmetry.
	c := []byte("LMNPQ")
	if alignPair(a, c) != alignPair(c, a) {
		t.Error("alignment score not symmetric")
	}
	// Empty vs non-empty: pure gap cost.
	if s := alignPair(nil, c); s != -2*int64(len(c)) {
		t.Errorf("gap-only score = %d, want %d", s, -2*len(c))
	}
}

func TestSparseLUPatternMatchesBOTS(t *testing.T) {
	m := sluGenmat(6, 4)
	// Diagonal and first off-diagonals always allocated.
	for i := 0; i < 6; i++ {
		if m.block(i, i) == nil {
			t.Errorf("diagonal block (%d,%d) is nil", i, i)
		}
		if i+1 < 6 && m.block(i, i+1) == nil {
			t.Errorf("superdiagonal block (%d,%d) is nil", i, i+1)
		}
		if i+1 < 6 && m.block(i+1, i) == nil {
			t.Errorf("subdiagonal block (%d,%d) is nil", i+1, i)
		}
	}
	// Sparsity: some blocks must be nil.
	nils := 0
	for _, b := range m.blocks {
		if b == nil {
			nils++
		}
	}
	if nils == 0 {
		t.Error("matrix is dense; genmat pattern broken")
	}
}

func TestHealthDeterminism(t *testing.T) {
	// Two parallel runs with different thread counts must agree: village
	// state is only touched by its own task.
	kernel := HealthSpec.Prepare(SizeTiny, false)
	rt := omp.NewRuntime(nil)
	r1 := kernel(rt, 1)
	r2 := kernel(rt, 8)
	if r1 != r2 {
		t.Errorf("health nondeterministic across thread counts: %d vs %d", r1, r2)
	}
}

func TestFloorplanOptimumStableAcrossThreads(t *testing.T) {
	kernel := FloorplanSpec.Prepare(SizeSmall, false)
	rt := omp.NewRuntime(nil)
	want := FloorplanSpec.Expected(SizeSmall)
	for _, th := range []int{1, 2, 8} {
		if got := kernel(rt, th); got != want {
			t.Errorf("floorplan threads=%d: got %d, want %d", th, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("fib") != FibSpec {
		t.Error("ByName(fib) wrong")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	// Cross-check the FFT kernel against a direct O(n^2) DFT on a small
	// input.
	n := 64
	r := newLCG(99)
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(r.nextFloat()-0.5, r.nextFloat()-0.5)
	}
	want := directDFT(a)
	got := make([]complex128, n)
	copy(got, a)
	tmp := make([]complex128, n)
	fftSerialRec(got, tmp)
	for i := range want {
		d := want[i] - got[i]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("FFT mismatch at bin %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func directDFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k*t) / float64(n)
			acc += a[t] * complex(math.Cos(angle), math.Sin(angle))
		}
		out[k] = acc
	}
	return out
}
