// Package bots ports the nine codes of the Barcelona OpenMP Tasks Suite
// (BOTS, Duran et al., ICPP 2009) — the paper's evaluation workload — to
// the task runtime of internal/omp.
//
// Each code mirrors its BOTS counterpart's task structure: who creates
// tasks (recursive tasks vs. a single creator), where taskwaits occur,
// and which codes provide a cut-off variant limiting task-creation depth
// (fib, floorplan, health, nqueens, strassen — exactly the set the
// paper's Figs. 13-15 distinguish). SparseLU is the "single construct"
// version the paper selected. Every code verifies against a serial
// reference implementation.
//
// Input sizes are scaled down from BOTS "medium" so the complete
// evaluation runs on a laptop; EXPERIMENTS.md documents the scaling.
package bots

import (
	"fmt"

	"repro/internal/omp"
)

// Size selects the input scale of a benchmark.
type Size int

// Benchmark input scales.
const (
	SizeTiny Size = iota // unit tests
	SizeSmall
	SizeMedium // experiment default ("medium" in EXPERIMENTS.md)
)

// String returns the lower-case size name.
func (s Size) String() string {
	switch s {
	case SizeTiny:
		return "tiny"
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Kernel is a prepared benchmark kernel: it executes exactly one parallel
// region on the given runtime (the timed section, matching the paper's
// "runtimes of its parallel region, containing the tasking kernel") and
// returns a verification value.
type Kernel func(rt *omp.Runtime, threads int) uint64

// Spec describes one BOTS code to the experiment harness.
type Spec struct {
	// Name is the BOTS code name (fib, nqueens, ...).
	Name string
	// HasCutoff reports whether BOTS provides a cut-off variant — the
	// codes of Figs. 14/15 and the "(cut-off)" rows of Table II.
	HasCutoff bool
	// Prepare allocates the input for the given size and returns the
	// timed kernel. cutoff selects the cut-off variant where available
	// (ignored otherwise).
	Prepare func(size Size, cutoff bool) Kernel
	// Expected returns the reference verification value computed by the
	// serial implementation.
	Expected func(size Size) uint64
}

// All lists the nine BOTS codes in the paper's (alphabetical) order.
var All = []*Spec{
	AlignmentSpec,
	FFTSpec,
	FibSpec,
	FloorplanSpec,
	HealthSpec,
	NQueensSpec,
	SortSpec,
	SparseLUSpec,
	StrassenSpec,
}

// ByName returns the spec with the given name, or nil.
func ByName(name string) *Spec {
	for _, s := range All {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// CutoffCodes returns the specs with a cut-off variant (the Fig. 14/15
// set: fib, floorplan, health, nqueens, strassen).
func CutoffCodes() []*Spec {
	var out []*Spec
	for _, s := range All {
		if s.HasCutoff {
			out = append(out, s)
		}
	}
	return out
}

// lcg is a small deterministic generator for reproducible inputs.
type lcg uint64

func newLCG(seed uint64) lcg { return lcg(seed*2862933555777941757 + 3037000493) }

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// nextN returns a value in [0,n).
func (r *lcg) nextN(n int) int { return int(r.next() % uint64(n)) }

// nextFloat returns a value in [0,1).
func (r *lcg) nextFloat() float64 { return float64(r.next()%(1<<53)) / (1 << 53) }

// fnv64 accumulates a FNV-1a style checksum.
type fnv64 uint64

func newFNV() fnv64 { return 1469598103934665603 }

func (h *fnv64) add(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= 1099511628211
	}
	*h = fnv64(x)
}

func (h fnv64) sum() uint64 { return uint64(h) }
