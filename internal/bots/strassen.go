package bots

import (
	"math"
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// strassen multiplies dense square matrices with Strassen's algorithm:
// the seven half-size products become tasks, joined by a taskwait before
// the combination step. Tasks are coarse (149 µs mean in the paper's
// Table I, two orders of magnitude above fib), which is why strassen
// shows no measurable overhead in Figs. 13/14. The cut-off variant
// limits task creation to the top recursion levels; below, the recursion
// continues serially.

var (
	strPar  = region.MustRegister("strassen.parallel", "strassen.go", 20, region.Parallel)
	strTask = region.MustRegister("strassen.task", "strassen.go", 30, region.Task)
	strTW   = region.MustRegister("strassen.taskwait", "strassen.go", 40, region.Taskwait)
)

var strassenParams = map[Size]int{
	SizeTiny:   128,
	SizeSmall:  256,
	SizeMedium: 512,
}

// strassenBase is the dimension below which classical multiplication is
// used (algorithmic leaf, present in all variants, like BOTS). A 64x64
// classical product keeps leaf tasks coarse (~100 µs), matching the
// paper's 149 µs mean task time for strassen (Table I).
const strassenBase = 64

// strassenCutoffDepth limits task creation in the cut-off variant.
const strassenCutoffDepth = 1

// mat is a square matrix view into a flat backing slice.
type mat struct {
	d      []float64
	stride int
	n      int
}

func newMat(n int) mat { return mat{d: make([]float64, n*n), stride: n, n: n} }

func (m mat) at(i, j int) float64     { return m.d[i*m.stride+j] }
func (m mat) set(i, j int, v float64) { m.d[i*m.stride+j] = v }

// quad returns the (qi,qj) quadrant view (qi,qj in {0,1}).
func (m mat) quad(qi, qj int) mat {
	h := m.n / 2
	return mat{d: m.d[(qi*h)*m.stride+qj*h:], stride: m.stride, n: h}
}

func matAdd(dst, a, b mat) {
	for i := 0; i < a.n; i++ {
		ar := a.d[i*a.stride : i*a.stride+a.n]
		br := b.d[i*b.stride : i*b.stride+a.n]
		dr := dst.d[i*dst.stride : i*dst.stride+a.n]
		for j := range dr {
			dr[j] = ar[j] + br[j]
		}
	}
}

func matSub(dst, a, b mat) {
	for i := 0; i < a.n; i++ {
		ar := a.d[i*a.stride : i*a.stride+a.n]
		br := b.d[i*b.stride : i*b.stride+a.n]
		dr := dst.d[i*dst.stride : i*dst.stride+a.n]
		for j := range dr {
			dr[j] = ar[j] - br[j]
		}
	}
}

// matMulClassic computes dst = a*b with the cubic algorithm (ikj order).
func matMulClassic(dst, a, b mat) {
	for i := 0; i < a.n; i++ {
		dr := dst.d[i*dst.stride : i*dst.stride+a.n]
		for j := range dr {
			dr[j] = 0
		}
		for k := 0; k < a.n; k++ {
			av := a.at(i, k)
			br := b.d[k*b.stride : k*b.stride+a.n]
			for j := range dr {
				dr[j] += av * br[j]
			}
		}
	}
}

// strassenProducts computes the seven Strassen products of a and b into
// freshly allocated matrices, calling mul for each product (serially or
// as a task).
func strassenStep(t *omp.Thread, dst, a, b mat, depth, cutoff int) {
	if a.n <= strassenBase {
		matMulClassic(dst, a, b)
		return
	}
	h := a.n / 2
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)

	m := make([]mat, 7)
	for i := range m {
		m[i] = newMat(h)
	}
	// Left/right operands for M1..M7 (temporaries per product).
	ops := [7]struct{ l, r mat }{}
	tmpL := func(f func(dst mat)) mat { x := newMat(h); f(x); return x }
	ops[0] = struct{ l, r mat }{tmpL(func(x mat) { matAdd(x, a11, a22) }), tmpL(func(x mat) { matAdd(x, b11, b22) })} // M1=(A11+A22)(B11+B22)
	ops[1] = struct{ l, r mat }{tmpL(func(x mat) { matAdd(x, a21, a22) }), b11}                                       // M2=(A21+A22)B11
	ops[2] = struct{ l, r mat }{a11, tmpL(func(x mat) { matSub(x, b12, b22) })}                                       // M3=A11(B12-B22)
	ops[3] = struct{ l, r mat }{a22, tmpL(func(x mat) { matSub(x, b21, b11) })}                                       // M4=A22(B21-B11)
	ops[4] = struct{ l, r mat }{tmpL(func(x mat) { matAdd(x, a11, a12) }), b22}                                       // M5=(A11+A12)B22
	ops[5] = struct{ l, r mat }{tmpL(func(x mat) { matSub(x, a21, a11) }), tmpL(func(x mat) { matAdd(x, b11, b12) })} // M6
	ops[6] = struct{ l, r mat }{tmpL(func(x mat) { matSub(x, a12, a22) }), tmpL(func(x mat) { matAdd(x, b21, b22) })} // M7

	spawnTasks := t != nil && (cutoff <= 0 || depth < cutoff)
	for i := 0; i < 7; i++ {
		i := i
		if spawnTasks {
			t.NewTask(strTask, func(c *omp.Thread) {
				strassenStep(c, m[i], ops[i].l, ops[i].r, depth+1, cutoff)
			})
		} else {
			strassenStep(nil, m[i], ops[i].l, ops[i].r, depth+1, cutoff)
		}
	}
	if spawnTasks {
		t.Taskwait(strTW)
	}

	c11, c12, c21, c22 := dst.quad(0, 0), dst.quad(0, 1), dst.quad(1, 0), dst.quad(1, 1)
	// C11 = M1+M4-M5+M7; C12 = M3+M5; C21 = M2+M4; C22 = M1-M2+M3+M6
	matAdd(c11, m[0], m[3])
	matSub(c11, c11, m[4])
	matAdd(c11, c11, m[6])
	matAdd(c12, m[2], m[4])
	matAdd(c21, m[1], m[3])
	matSub(c22, m[0], m[1])
	matAdd(c22, c22, m[2])
	matAdd(c22, c22, m[5])
}

func strassenInputs(size Size) (a, b mat) {
	n := strassenParams[size]
	r := newLCG(uint64(n) * 104729)
	a, b = newMat(n), newMat(n)
	for i := range a.d {
		a.d[i] = r.nextFloat() - 0.5
	}
	for i := range b.d {
		b.d[i] = r.nextFloat() - 0.5
	}
	return
}

// strassenChecksum quantizes the product against FP round-off.
func strassenChecksum(c mat) uint64 {
	h := newFNV()
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			h.add(uint64(int64(math.Round(c.at(i, j) * 1e6))))
		}
	}
	return h.sum()
}

// StrassenSpec is the strassen benchmark.
var StrassenSpec = &Spec{
	Name:      "strassen",
	HasCutoff: true,
	Prepare: func(size Size, cutoff bool) Kernel {
		a, b := strassenInputs(size)
		co := 0
		if cutoff {
			co = strassenCutoffDepth
		}
		return func(rt *omp.Runtime, threads int) uint64 {
			c := newMat(a.n)
			var started atomic.Bool
			rt.Parallel(threads, strPar, func(t *omp.Thread) {
				if started.CompareAndSwap(false, true) {
					strassenStep(t, c, a, b, 0, co)
				}
			})
			return strassenChecksum(c)
		}
	},
	Expected: func(size Size) uint64 {
		a, b := strassenInputs(size)
		c := newMat(a.n)
		strassenStep(nil, c, a, b, 0, 0) // serial Strassen, identical FP order
		return strassenChecksum(c)
	},
}

// StrassenMaxErrVsClassic returns the maximum absolute element difference
// between the serial Strassen product and the classical cubic product —
// the algorithmic cross-check used by tests (must be tiny).
func StrassenMaxErrVsClassic(size Size) float64 {
	a, b := strassenInputs(size)
	cs := newMat(a.n)
	strassenStep(nil, cs, a, b, 0, 0)
	cc := newMat(a.n)
	matMulClassic(cc, a, b)
	maxErr := 0.0
	for i := range cs.d {
		if d := math.Abs(cs.d[i] - cc.d[i]); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}
