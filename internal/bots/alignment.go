package bots

import (
	"repro/internal/omp"
	"repro/internal/region"
)

// alignment performs all-pairs protein sequence alignment. As in BOTS
// (pairwise alignment with the Myers-Miller strategy), every sequence
// pair is one task, created by a single thread from a doubly nested loop
// inside a single construct. One dynamic-programming alignment per task
// makes the tasks coarse and independent — the paper measures essentially
// zero overhead and a maximum of one concurrent task per thread.

var (
	alPar    = region.MustRegister("alignment.parallel", "alignment.go", 20, region.Parallel)
	alSingle = region.MustRegister("alignment.single", "alignment.go", 25, region.Single)
	alTask   = region.MustRegister("alignment.task", "alignment.go", 30, region.Task)
)

// alignmentParams: number of sequences and sequence length.
var alignmentParams = map[Size]struct{ nseq, slen int }{
	SizeTiny:   {10, 32},
	SizeSmall:  {24, 64},
	SizeMedium: {48, 96},
}

// alSequences generates deterministic pseudo-protein sequences over a
// 20-letter alphabet.
func alSequences(size Size) [][]byte {
	p := alignmentParams[size]
	r := newLCG(uint64(p.nseq*p.slen) * 2654435761)
	seqs := make([][]byte, p.nseq)
	for i := range seqs {
		s := make([]byte, p.slen)
		for j := range s {
			s[j] = byte(r.nextN(20))
		}
		seqs[i] = s
	}
	return seqs
}

// alignPair computes a global alignment score (Needleman-Wunsch with
// affine-ish linear gap penalty) between two sequences using a
// two-row DP.
func alignPair(a, b []byte) int64 {
	const (
		match    = 2
		mismatch = -1
		gap      = -2
	)
	prev := make([]int64, len(b)+1)
	cur := make([]int64, len(b)+1)
	for j := range prev {
		prev[j] = int64(j) * gap
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int64(i) * gap
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			s := int64(mismatch)
			if ca == b[j-1] {
				s = match
			}
			best := prev[j-1] + s
			if d := prev[j] + gap; d > best {
				best = d
			}
			if d := cur[j-1] + gap; d > best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// alignAll computes all pairwise scores into out (indexed linearly over
// i<j pairs); with a thread, each pair is one task.
func alignAll(t *omp.Thread, seqs [][]byte, out []int64) {
	idx := 0
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			i, j, k := i, j, idx
			if t != nil {
				t.NewTask(alTask, func(*omp.Thread) { out[k] = alignPair(seqs[i], seqs[j]) })
			} else {
				out[k] = alignPair(seqs[i], seqs[j])
			}
			idx++
		}
	}
	// No taskwait: the implicit barrier at the end of the parallel
	// region completes the tasks (as in BOTS's single version).
}

func alignChecksum(out []int64) uint64 {
	h := newFNV()
	for _, v := range out {
		h.add(uint64(v))
	}
	return h.sum()
}

// AlignmentSpec is the alignment benchmark.
var AlignmentSpec = &Spec{
	Name:      "alignment",
	HasCutoff: false,
	Prepare: func(size Size, _ bool) Kernel {
		seqs := alSequences(size)
		npairs := len(seqs) * (len(seqs) - 1) / 2
		return func(rt *omp.Runtime, threads int) uint64 {
			out := make([]int64, npairs)
			rt.Parallel(threads, alPar, func(t *omp.Thread) {
				t.Single(alSingle, func(s *omp.Thread) { alignAll(s, seqs, out) })
			})
			return alignChecksum(out)
		}
	},
	Expected: func(size Size) uint64 {
		seqs := alSequences(size)
		npairs := len(seqs) * (len(seqs) - 1) / 2
		out := make([]int64, npairs)
		alignAll(nil, seqs, out)
		return alignChecksum(out)
	},
}
