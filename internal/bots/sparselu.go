package bots

import (
	"math"

	"repro/internal/omp"
	"repro/internal/region"
)

// sparselu factorizes a sparse blocked matrix (LU without pivoting).
// This is the BOTS "single" version the paper selected: one thread
// creates all tasks of each phase inside a single construct, with
// taskwaits separating the fwd/bdiv phase from bmod. Task creation by a
// single thread is exactly the pattern the paper flags as a scalability
// risk ("task creation may become a bottleneck if tasks are created only
// by a small number of threads").

var (
	sluPar    = region.MustRegister("sparselu.parallel", "sparselu.go", 20, region.Parallel)
	sluSingle = region.MustRegister("sparselu.single", "sparselu.go", 25, region.Single)
	sluFwd    = region.MustRegister("sparselu.fwd.task", "sparselu.go", 30, region.Task)
	sluBdiv   = region.MustRegister("sparselu.bdiv.task", "sparselu.go", 35, region.Task)
	sluBmod   = region.MustRegister("sparselu.bmod.task", "sparselu.go", 40, region.Task)
	sluTW     = region.MustRegister("sparselu.taskwait", "sparselu.go", 45, region.Taskwait)
)

// sparseLUParams: blocks per side (bn) and block dimension (bs).
var sparseLUParams = map[Size]struct{ bn, bs int }{
	SizeTiny:   {6, 8},
	SizeSmall:  {10, 16},
	SizeMedium: {20, 32},
}

// sluMatrix is the blocked sparse matrix: blocks[i*bn+j] is nil for
// structurally empty blocks, following the BOTS genmat pattern.
type sluMatrix struct {
	bn, bs int
	blocks [][]float64
}

// sluGenmat reproduces the BOTS sparsity pattern and initial values.
func sluGenmat(bn, bs int) *sluMatrix {
	m := &sluMatrix{bn: bn, bs: bs, blocks: make([][]float64, bn*bn)}
	r := newLCG(uint64(bn*bs) * 31337)
	for ii := 0; ii < bn; ii++ {
		for jj := 0; jj < bn; jj++ {
			null := false
			if ii < jj && ii%3 != 0 {
				null = true
			}
			if ii > jj && jj%3 != 0 {
				null = true
			}
			if ii%2 == 1 {
				null = true
			}
			if jj%2 == 1 {
				null = true
			}
			if ii == jj {
				null = false
			}
			if ii == jj-1 || ii-1 == jj {
				null = false
			}
			if null {
				continue
			}
			blk := make([]float64, bs*bs)
			for k := range blk {
				blk[k] = r.nextFloat() + 1 // keep diagonals well-conditioned
			}
			if ii == jj {
				for d := 0; d < bs; d++ {
					blk[d*bs+d] += float64(bs) // diagonal dominance
				}
			}
			m.blocks[ii*bn+jj] = blk
			_ = jj
		}
	}
	return m
}

func (m *sluMatrix) block(i, j int) []float64 { return m.blocks[i*m.bn+j] }

// lu0 factorizes a diagonal block in place.
func lu0(diag []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			diag[i*bs+k] /= diag[k*bs+k]
			l := diag[i*bs+k]
			for j := k + 1; j < bs; j++ {
				diag[i*bs+j] -= l * diag[k*bs+j]
			}
		}
	}
}

// fwd applies the lower factor of diag to a row block.
func fwd(diag, row []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			l := diag[i*bs+k]
			for j := 0; j < bs; j++ {
				row[i*bs+j] -= l * row[k*bs+j]
			}
		}
	}
}

// bdiv applies the upper factor of diag to a column block.
func bdiv(diag, col []float64, bs int) {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			col[i*bs+k] /= diag[k*bs+k]
			d := col[i*bs+k]
			for j := k + 1; j < bs; j++ {
				col[i*bs+j] -= d * diag[k*bs+j]
			}
		}
	}
}

// bmod updates an inner block: inner -= row_part * col_part.
func bmod(row, col, inner []float64, bs int) {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			r := row[i*bs+k]
			for j := 0; j < bs; j++ {
				inner[i*bs+j] -= r * col[k*bs+j]
			}
		}
	}
}

// sluFactorize runs the blocked factorization; when t is non-nil, phase
// operations become tasks created by the single creator thread.
func sluFactorize(t *omp.Thread, m *sluMatrix) {
	bn, bs := m.bn, m.bs
	for k := 0; k < bn; k++ {
		kk := k
		lu0(m.block(kk, kk), bs)
		for j := k + 1; j < bn; j++ {
			jj := j
			if blk := m.block(kk, jj); blk != nil {
				if t != nil {
					t.NewTask(sluFwd, func(*omp.Thread) { fwd(m.block(kk, kk), blk, bs) })
				} else {
					fwd(m.block(kk, kk), blk, bs)
				}
			}
		}
		for i := k + 1; i < bn; i++ {
			ii := i
			if blk := m.block(ii, kk); blk != nil {
				if t != nil {
					t.NewTask(sluBdiv, func(*omp.Thread) { bdiv(m.block(kk, kk), blk, bs) })
				} else {
					bdiv(m.block(kk, kk), blk, bs)
				}
			}
		}
		if t != nil {
			t.Taskwait(sluTW)
		}
		for i := k + 1; i < bn; i++ {
			for j := k + 1; j < bn; j++ {
				ii, jj := i, j
				row := m.block(ii, kk)
				col := m.block(kk, jj)
				if row == nil || col == nil {
					continue
				}
				// Fill-in: allocate the inner block on first touch.
				if m.block(ii, jj) == nil {
					m.blocks[ii*m.bn+jj] = make([]float64, bs*bs)
				}
				inner := m.block(ii, jj)
				if t != nil {
					t.NewTask(sluBmod, func(*omp.Thread) { bmod(row, col, inner, bs) })
				} else {
					bmod(row, col, inner, bs)
				}
			}
		}
		if t != nil {
			t.Taskwait(sluTW)
		}
	}
}

func sluChecksum(m *sluMatrix) uint64 {
	h := newFNV()
	for idx, blk := range m.blocks {
		if blk == nil {
			continue
		}
		h.add(uint64(idx))
		for _, v := range blk {
			h.add(uint64(int64(math.Round(v * 1e6))))
		}
	}
	return h.sum()
}

// SparseLUSpec is the sparselu benchmark (single-creator version).
var SparseLUSpec = &Spec{
	Name:      "sparselu",
	HasCutoff: false,
	Prepare: func(size Size, _ bool) Kernel {
		p := sparseLUParams[size]
		return func(rt *omp.Runtime, threads int) uint64 {
			m := sluGenmat(p.bn, p.bs)
			rt.Parallel(threads, sluPar, func(t *omp.Thread) {
				// "#pragma omp single": one creator thread; the others
				// fall through to the implicit barrier and steal tasks.
				t.Single(sluSingle, func(s *omp.Thread) { sluFactorize(s, m) })
			})
			return sluChecksum(m)
		}
	},
	Expected: func(size Size) uint64 {
		p := sparseLUParams[size]
		m := sluGenmat(p.bn, p.bs)
		sluFactorize(nil, m)
		return sluChecksum(m)
	},
}
