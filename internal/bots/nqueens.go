package bots

import (
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/pomp"
	"repro/internal/region"
)

// nqueens counts all placements of n queens on an n×n board. One task is
// created per valid queen placement per row; the cut-off variant stops
// creating tasks below a recursion depth and counts serially — the
// Section VI case study ("stopping task creation at level 3 ... provides
// a speedup of 16").

var (
	nqPar  = region.MustRegister("nqueens.parallel", "nqueens.go", 20, region.Parallel)
	nqTask = region.MustRegister("nqueens.task", "nqueens.go", 30, region.Task)
	nqTW   = region.MustRegister("nqueens.taskwait", "nqueens.go", 40, region.Taskwait)
)

var nqueensParams = map[Size]int{
	SizeTiny:   8,
	SizeSmall:  10,
	SizeMedium: 12,
}

// nqueensCutoffDepth matches the paper's finding that depth 3 provides
// enough tasks "to fill and balance up to 8 threads".
const nqueensCutoffDepth = 3

// nqOK reports whether a queen in row len(board) at column col conflicts
// with the partial placement.
func nqOK(board []int8, col int8) bool {
	row := len(board)
	for r, c := range board {
		if c == col {
			return false
		}
		d := row - r
		if int(c)+d == int(col) || int(c)-d == int(col) {
			return false
		}
	}
	return true
}

func nqueensSerial(board []int8, n int) int64 {
	row := len(board)
	if row == n {
		return 1
	}
	var count int64
	for col := int8(0); int(col) < n; col++ {
		if nqOK(board, col) {
			count += nqueensSerial(append(board, col), n)
		}
	}
	return count
}

// nqueensTaskRec is the task body: try all columns of the current row;
// valid placements become child tasks (each with its own copy of the
// board, as in BOTS), then taskwait.
func nqueensTaskRec(t *omp.Thread, board []int8, n, cutoff int, depthParam bool, count *atomic.Int64) {
	row := len(board)
	if row == n {
		count.Add(1)
		return
	}
	if cutoff > 0 && row >= cutoff {
		count.Add(nqueensSerial(board, n))
		return
	}
	for col := int8(0); int(col) < n; col++ {
		if !nqOK(board, col) {
			continue
		}
		child := make([]int8, row+1)
		copy(child, board)
		child[row] = col
		t.NewTask(nqTask, func(c *omp.Thread) {
			if depthParam {
				// Parameter instrumentation splitting the task tree by
				// recursion depth (paper Table IV).
				pomp.ParameterInt(c, "depth", int64(row))
			}
			nqueensTaskRec(c, child, n, cutoff, depthParam, count)
		})
	}
	t.Taskwait(nqTW)
}

func nqueensKernel(n, cutoff int, depthParam bool) Kernel {
	return func(rt *omp.Runtime, threads int) uint64 {
		var count atomic.Int64
		var started atomic.Bool
		rt.Parallel(threads, nqPar, func(t *omp.Thread) {
			if started.CompareAndSwap(false, true) {
				nqueensTaskRec(t, nil, n, cutoff, depthParam, &count)
			}
		})
		return uint64(count.Load())
	}
}

// NQueensSpec is the nqueens benchmark.
var NQueensSpec = &Spec{
	Name:      "nqueens",
	HasCutoff: true,
	Prepare: func(size Size, cutoff bool) Kernel {
		co := 0
		if cutoff {
			co = nqueensCutoffDepth
		}
		return nqueensKernel(nqueensParams[size], co, false)
	},
	Expected: func(size Size) uint64 {
		return uint64(nqueensSerial(nil, nqueensParams[size]))
	},
}

// NQueensDepthKernel returns the non-cut-off nqueens kernel with the
// per-depth parameter instrumentation of Table IV enabled.
func NQueensDepthKernel(size Size) Kernel {
	return nqueensKernel(nqueensParams[size], 0, true)
}

// NQueensBoardSize exposes the board size for reporting.
func NQueensBoardSize(size Size) int { return nqueensParams[size] }

// NQueensTaskRegion exposes the task construct region for report queries
// (Table III reads the task/taskwait/create rows from its task tree).
func NQueensTaskRegion() *region.Region { return nqTask }

// NQueensParallelRegion exposes the parallel region for report queries.
func NQueensParallelRegion() *region.Region { return nqPar }
