package bots

import (
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// health simulates the Columbian health-care system of BOTS: a tree of
// villages, each with a hospital. Every simulated step descends the tree
// with one task per child village (taskwait before the local work), then
// processes the village's patients: new patients fall sick with some
// probability, queue at the local hospital, are assessed, treated or
// referred one level up. Tasks are small (2.35 µs mean in Table I), so
// the non-cut-off version shows large profiling and runtime overhead.
// The cut-off variant simulates subtrees below a depth serially.

var (
	hlPar  = region.MustRegister("health.parallel", "health.go", 20, region.Parallel)
	hlTask = region.MustRegister("health.task", "health.go", 30, region.Task)
	hlTW   = region.MustRegister("health.taskwait", "health.go", 40, region.Taskwait)
)

// healthParams: tree depth (levels), branching factor, simulation steps.
var healthParams = map[Size]struct{ levels, branch, steps int }{
	SizeTiny:   {3, 3, 20},
	SizeSmall:  {5, 3, 40},
	SizeMedium: {6, 4, 60},
}

const healthCutoffDepth = 2

// patient is one queued patient: remaining treatment time units.
type patient struct {
	remaining int
	next      *patient
}

// village is one node of the health system tree.
type village struct {
	children []*village
	rng      lcg
	level    int

	waiting *patient // hospital queue (intrusive list)
	free    *patient // recycled patient records

	treated  int64 // statistics, also the checksum source
	referred int64
	arrived  int64
}

// buildVillages creates the deterministic village tree.
func buildVillages(levels, branch int, seed uint64, level int) *village {
	v := &village{rng: newLCG(seed), level: level}
	if levels > 1 {
		v.children = make([]*village, branch)
		for i := range v.children {
			v.children[i] = buildVillages(levels-1, branch, seed*uint64(branch+1)+uint64(i+1), level+1)
		}
	}
	return v
}

// simStep processes one time step of a single village (local work only).
func (v *village) simStep() {
	// New arrivals: probability scaled by level (leaf villages are
	// smaller). Deterministic via the village's own generator.
	arrivals := v.rng.nextN(3 + v.level)
	for i := 0; i < arrivals; i++ {
		p := v.free
		if p != nil {
			v.free = p.next
		} else {
			p = &patient{}
		}
		p.remaining = 1 + v.rng.nextN(4)
		p.next = v.waiting
		v.waiting = p
		v.arrived++
	}
	// Treat up to the hospital's capacity this step.
	capacity := 4
	var prev *patient
	p := v.waiting
	for p != nil && capacity > 0 {
		p.remaining--
		capacity--
		if p.remaining <= 0 {
			// 1 in 8 cases need referral upward (counted, then done).
			if v.rng.nextN(8) == 0 {
				v.referred++
			} else {
				v.treated++
			}
			next := p.next
			if prev == nil {
				v.waiting = next
			} else {
				prev.next = next
			}
			p.next = v.free
			v.free = p
			p = next
			continue
		}
		prev = p
		p = p.next
	}
}

// simVillageSerial simulates one step of the whole subtree serially.
func simVillageSerial(v *village) {
	for _, c := range v.children {
		simVillageSerial(c)
	}
	v.simStep()
}

// simVillageTask simulates one step with one task per child subtree,
// mirroring BOTS sim_village_par.
func simVillageTask(t *omp.Thread, v *village, cutoff int) {
	for _, c := range v.children {
		child := c
		if cutoff > 0 && child.level >= cutoff {
			t.NewTask(hlTask, func(*omp.Thread) { simVillageSerial(child) })
			continue
		}
		t.NewTask(hlTask, func(ct *omp.Thread) { simVillageTask(ct, child, cutoff) })
	}
	t.Taskwait(hlTW)
	v.simStep()
}

// healthChecksum folds the per-village statistics.
func healthChecksum(v *village) uint64 {
	h := newFNV()
	var walk func(v *village)
	walk = func(v *village) {
		h.add(uint64(v.treated))
		h.add(uint64(v.referred))
		h.add(uint64(v.arrived))
		for _, c := range v.children {
			walk(c)
		}
	}
	walk(v)
	return h.sum()
}

// HealthSpec is the health benchmark.
var HealthSpec = &Spec{
	Name:      "health",
	HasCutoff: true,
	Prepare: func(size Size, cutoff bool) Kernel {
		p := healthParams[size]
		co := 0
		if cutoff {
			co = healthCutoffDepth
		}
		return func(rt *omp.Runtime, threads int) uint64 {
			root := buildVillages(p.levels, p.branch, 42, 0)
			var started atomic.Bool
			rt.Parallel(threads, hlPar, func(t *omp.Thread) {
				if started.CompareAndSwap(false, true) {
					for s := 0; s < p.steps; s++ {
						simVillageTask(t, root, co)
					}
				}
			})
			return healthChecksum(root)
		}
	},
	Expected: func(size Size) uint64 {
		p := healthParams[size]
		root := buildVillages(p.levels, p.branch, 42, 0)
		for s := 0; s < p.steps; s++ {
			simVillageSerial(root)
		}
		return healthChecksum(root)
	},
}
