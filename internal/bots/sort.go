package bots

import (
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// sort is BOTS's cilksort descendant: recursive merge sort where each
// half becomes a task, with serial quicksort below a threshold. BOTS
// ships it with its thresholds built in, so the paper lists no separate
// cut-off variant (it appears only in Fig. 13).

var (
	sortPar  = region.MustRegister("sort.parallel", "sort.go", 20, region.Parallel)
	sortTask = region.MustRegister("sort.task", "sort.go", 30, region.Task)
	sortTW   = region.MustRegister("sort.taskwait", "sort.go", 40, region.Taskwait)
)

var sortParams = map[Size]int{
	SizeTiny:   1 << 12,
	SizeSmall:  1 << 16,
	SizeMedium: 1 << 20,
}

// sortSerialThreshold mirrors BOTS's quicksort cut-off of 2 KiB elements.
const sortSerialThreshold = 2048

func sortInput(size Size) []int32 {
	n := sortParams[size]
	r := newLCG(uint64(n) * 7919)
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(r.next())
	}
	return a
}

// quicksort is the serial base sorter (median-of-three).
func quicksort(a []int32) {
	for len(a) > 16 {
		lo, hi := 0, len(a)-1
		mid := len(a) / 2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quicksort(a[lo : j+1])
			a = a[i:]
		} else {
			quicksort(a[i:])
			a = a[lo : j+1]
		}
	}
	// insertion sort tail
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func merge(dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// sortTaskRec sorts a in place using tmp as scratch of equal length.
func sortTaskRec(t *omp.Thread, a, tmp []int32) {
	if len(a) <= sortSerialThreshold {
		quicksort(a)
		return
	}
	h := len(a) / 2
	t.NewTask(sortTask, func(c *omp.Thread) { sortTaskRec(c, a[:h], tmp[:h]) })
	t.NewTask(sortTask, func(c *omp.Thread) { sortTaskRec(c, a[h:], tmp[h:]) })
	t.Taskwait(sortTW)
	merge(tmp, a[:h], a[h:])
	copy(a, tmp)
}

func sortSerialRec(a, tmp []int32) {
	if len(a) <= sortSerialThreshold {
		quicksort(a)
		return
	}
	h := len(a) / 2
	sortSerialRec(a[:h], tmp[:h])
	sortSerialRec(a[h:], tmp[h:])
	merge(tmp, a[:h], a[h:])
	copy(a, tmp)
}

func sortChecksum(a []int32) uint64 {
	h := newFNV()
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return 0 // not sorted: poison the checksum
		}
	}
	for _, v := range a {
		h.add(uint64(uint32(v)))
	}
	return h.sum()
}

// SortSpec is the sort benchmark.
var SortSpec = &Spec{
	Name:      "sort",
	HasCutoff: false,
	Prepare: func(size Size, _ bool) Kernel {
		master := sortInput(size)
		return func(rt *omp.Runtime, threads int) uint64 {
			a := make([]int32, len(master))
			copy(a, master)
			tmp := make([]int32, len(master))
			var started atomic.Bool
			rt.Parallel(threads, sortPar, func(t *omp.Thread) {
				if started.CompareAndSwap(false, true) {
					sortTaskRec(t, a, tmp)
				}
			})
			return sortChecksum(a)
		}
	},
	Expected: func(size Size) uint64 {
		a := sortInput(size)
		tmp := make([]int32, len(a))
		sortSerialRec(a, tmp)
		return sortChecksum(a)
	},
}
