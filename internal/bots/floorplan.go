package bots

import (
	"sync/atomic"

	"repro/internal/omp"
	"repro/internal/region"
)

// floorplan is a branch-and-bound optimizer: place a sequence of
// rectangular cells, each with several legal shapes, minimizing the area
// of the enclosing floorplan. Every (cell shape × placement direction)
// candidate becomes a task; branches are pruned against a shared atomic
// best. As in BOTS, pruning makes the amount of parallel work
// scheduling-dependent — the effect behind the paper's bimodal floorplan
// measurements (class A/B in Section V-A) — while the optimum itself is
// deterministic. The cut-off variant stops creating tasks below a depth.

var (
	fpPar  = region.MustRegister("floorplan.parallel", "floorplan.go", 20, region.Parallel)
	fpTask = region.MustRegister("floorplan.task", "floorplan.go", 30, region.Task)
	fpTW   = region.MustRegister("floorplan.taskwait", "floorplan.go", 40, region.Taskwait)
)

// fpCell is one cell: the legal (w,h) shape alternatives.
type fpCell struct {
	shapes [][2]int
}

// floorplanParams: number of cells per size.
var floorplanParams = map[Size]int{
	SizeTiny:   6,
	SizeSmall:  9,
	SizeMedium: 11,
}

const floorplanCutoffDepth = 4

// fpCells generates the deterministic cell set: 2-3 shapes per cell with
// dimensions 1..7 (transposes included, like the BOTS input decks).
func fpCells(n int) []fpCell {
	r := newLCG(uint64(n) * 65537)
	cells := make([]fpCell, n)
	for i := range cells {
		ns := 2 + r.nextN(2)
		shapes := make([][2]int, 0, ns)
		for s := 0; s < ns; s++ {
			w := 1 + r.nextN(7)
			h := 1 + r.nextN(7)
			shapes = append(shapes, [2]int{w, h})
		}
		cells[i].shapes = shapes
	}
	return cells
}

// fpState is a partial placement: the bounding box after placing a
// prefix of the cells (cells extend the box right or below, the
// "slicing" placement discipline).
type fpState struct {
	w, h int
}

// fpExtend returns the bounding box after adding a w×h cell in the given
// direction (0 = right, 1 = below).
func (s fpState) extend(w, h, dir int) fpState {
	if dir == 0 {
		nh := s.h
		if h > nh {
			nh = h
		}
		return fpState{s.w + w, nh}
	}
	nw := s.w
	if w > nw {
		nw = w
	}
	return fpState{nw, s.h + h}
}

func (s fpState) area() int { return s.w * s.h }

// fpSerial explores the remaining cells serially, updating best.
func fpSerial(cells []fpCell, idx int, st fpState, best *atomic.Int64) {
	if int64(st.area()) >= best.Load() {
		return // prune
	}
	if idx == len(cells) {
		// New candidate optimum; CAS-min.
		a := int64(st.area())
		for {
			cur := best.Load()
			if a >= cur || best.CompareAndSwap(cur, a) {
				return
			}
		}
	}
	for _, sh := range cells[idx].shapes {
		for dir := 0; dir < 2; dir++ {
			fpSerial(cells, idx+1, st.extend(sh[0], sh[1], dir), best)
		}
	}
}

// fpTaskRec explores with one task per candidate, pruning against the
// shared best.
func fpTaskRec(t *omp.Thread, cells []fpCell, idx int, st fpState, cutoff int, best *atomic.Int64) {
	if int64(st.area()) >= best.Load() {
		return
	}
	if idx == len(cells) {
		fpSerial(cells, idx, st, best) // records the candidate
		return
	}
	if cutoff > 0 && idx >= cutoff {
		fpSerial(cells, idx, st, best)
		return
	}
	for _, sh := range cells[idx].shapes {
		for dir := 0; dir < 2; dir++ {
			next := st.extend(sh[0], sh[1], dir)
			t.NewTask(fpTask, func(c *omp.Thread) {
				fpTaskRec(c, cells, idx+1, next, cutoff, best)
			})
		}
	}
	t.Taskwait(fpTW)
}

// FloorplanSpec is the floorplan benchmark.
var FloorplanSpec = &Spec{
	Name:      "floorplan",
	HasCutoff: true,
	Prepare: func(size Size, cutoff bool) Kernel {
		cells := fpCells(floorplanParams[size])
		co := 0
		if cutoff {
			co = floorplanCutoffDepth
		}
		return func(rt *omp.Runtime, threads int) uint64 {
			var best atomic.Int64
			best.Store(1 << 40)
			var started atomic.Bool
			rt.Parallel(threads, fpPar, func(t *omp.Thread) {
				if started.CompareAndSwap(false, true) {
					fpTaskRec(t, cells, 0, fpState{}, co, &best)
				}
			})
			return uint64(best.Load())
		}
	},
	Expected: func(size Size) uint64 {
		cells := fpCells(floorplanParams[size])
		var best atomic.Int64
		best.Store(1 << 40)
		fpSerial(cells, 0, fpState{}, &best)
		return uint64(best.Load())
	},
}
