package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

func setupTrace(t *testing.T) (*Recorder, *omp.Runtime, *region.Registry) {
	t.Helper()
	reg := region.NewRegistry()
	rec := NewRecorder(clock.NewSystem())
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	return rec, rt, reg
}

func TestRecorderCapturesEventStream(t *testing.T) {
	rec, rt, reg := setupTrace(t)
	par := reg.Register("par", "t.go", 1, region.Parallel)
	task := reg.Register("work", "t.go", 2, region.Task)
	tw := reg.Register("tw", "t.go", 3, region.Taskwait)

	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 5; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		}
	})
	tr := rec.Finish()

	if len(tr.Threads) != 2 {
		t.Fatalf("threads in trace = %d", len(tr.Threads))
	}
	counts := map[EventType]int{}
	for _, evs := range tr.Threads {
		prev := int64(-1)
		for _, ev := range evs {
			counts[ev.Type]++
			if ev.Time < prev {
				t.Fatal("per-thread timestamps not monotonic")
			}
			prev = ev.Time
		}
	}
	if counts[EvThreadBegin] != 2 || counts[EvThreadEnd] != 2 {
		t.Errorf("thread begin/end = %d/%d", counts[EvThreadBegin], counts[EvThreadEnd])
	}
	if counts[EvTaskBegin] != 5 || counts[EvTaskEnd] != 5 {
		t.Errorf("task begin/end = %d/%d, want 5/5", counts[EvTaskBegin], counts[EvTaskEnd])
	}
	if counts[EvTaskCreateBegin] != 5 || counts[EvTaskCreateEnd] != 5 {
		t.Errorf("create events = %d/%d", counts[EvTaskCreateBegin], counts[EvTaskCreateEnd])
	}
	if counts[EvEnter] != counts[EvExit] {
		t.Errorf("enter %d != exit %d", counts[EvEnter], counts[EvExit])
	}
	if tr.NumEvents() == 0 || len(tr.ThreadIDs()) != 2 {
		t.Error("trace accessors broken")
	}
}

func TestRecorderFinishResets(t *testing.T) {
	rec, rt, reg := setupTrace(t)
	par := reg.Register("par", "t.go", 1, region.Parallel)
	rt.Parallel(1, par, func(*omp.Thread) {})
	first := rec.Finish()
	if first.NumEvents() == 0 {
		t.Fatal("no events recorded")
	}
	second := rec.Finish()
	if second.NumEvents() != 0 {
		t.Error("Finish did not reset buffers")
	}
}

func TestTeeCombinesProfileAndTrace(t *testing.T) {
	reg := region.NewRegistry()
	m := measure.NewWithClock(clock.NewSystem(), reg)
	rec := NewRecorder(clock.NewSystem())
	tee := NewTee(m, rec)
	rt := omp.NewRuntimeWithRegistry(tee, reg)

	par := reg.Register("par", "t.go", 1, region.Parallel)
	task := reg.Register("work", "t.go", 2, region.Task)
	tw := reg.Register("tw", "t.go", 3, region.Taskwait)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 10; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		}
	})
	m.Finish()
	tr := rec.Finish()

	// Both sides must have seen the run.
	locs := m.Locations()
	if len(locs) != 2 {
		t.Fatalf("profile locations = %d", len(locs))
	}
	var instances int64
	for _, l := range locs {
		instances += l.InstancesEnded()
	}
	if instances != 10 {
		t.Errorf("profile saw %d instances, want 10", instances)
	}
	begins := 0
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if ev.Type == EvTaskBegin {
				begins++
			}
		}
	}
	if begins != 10 {
		t.Errorf("trace saw %d task begins, want 10", begins)
	}
}

func TestNewTeeDropsNil(t *testing.T) {
	te := NewTee(nil, NewRecorder(clock.NewSystem()), nil)
	if len(te.Listeners) != 1 {
		t.Errorf("Tee kept %d listeners, want 1", len(te.Listeners))
	}
}

func TestEventTypeStrings(t *testing.T) {
	for ev := EvEnter; ev <= EvThreadEnd; ev++ {
		if strings.HasPrefix(ev.String(), "EV(") {
			t.Errorf("event type %d unnamed", ev)
		}
	}
	if EventType(99).String() != "EV(99)" {
		t.Error("fallback broken")
	}
}

// manualListener drives the analysis with a hand-built trace.
func TestAnalyzeDispatchLatencyAndRatio(t *testing.T) {
	reg := region.NewRegistry()
	task := reg.Register("work", "t.go", 1, region.Task)
	bar := reg.Register("bar", "t.go", 2, region.ImplicitBarrier)

	// Thread 0: enters barrier at t=0; dispatch latency 5; task runs
	// 10..30; ready again at 30, second task at 34 (latency 4), runs
	// 34..40; exits barrier at 45 (idle 5).
	tr := &Trace{Threads: map[int][]Event{
		0: {
			{Time: 0, Type: EvThreadBegin},
			{Time: 0, Type: EvEnter, Region: bar},
			{Time: 5, Type: EvTaskBegin, Region: task, TaskID: 1},
			{Time: 30, Type: EvTaskEnd, Region: task, TaskID: 1},
			{Time: 34, Type: EvTaskBegin, Region: task, TaskID: 2},
			{Time: 40, Type: EvTaskEnd, Region: task, TaskID: 2},
			{Time: 45, Type: EvExit, Region: bar},
			{Time: 45, Type: EvThreadEnd},
		},
	}}
	a := Analyze(tr)
	ta := a.PerThread[0]
	if ta.DispatchLatency.Count != 2 || ta.DispatchLatency.Sum != 5+4 {
		t.Errorf("dispatch latency = %+v, want count 2 sum 9", ta.DispatchLatency)
	}
	if ta.TaskExecution.Count != 2 || ta.TaskExecution.Sum != 25+6 {
		t.Errorf("task execution = %+v, want count 2 sum 31", ta.TaskExecution)
	}
	if ta.SyncRegionTime != 45 {
		t.Errorf("sync time = %d, want 45", ta.SyncRegionTime)
	}
	if ta.IdleInSync != 45-31-9 {
		t.Errorf("idle = %d, want 5", ta.IdleInSync)
	}
	wantRatio := float64(9) / float64(31)
	if a.ManagementRatio < wantRatio-1e-9 || a.ManagementRatio > wantRatio+1e-9 {
		t.Errorf("ratio = %f, want %f", a.ManagementRatio, wantRatio)
	}
}

func TestAnalyzeSuspendedTaskFragments(t *testing.T) {
	reg := region.NewRegistry()
	task := reg.Register("work", "t.go", 1, region.Task)
	tw := reg.Register("tw", "t.go", 2, region.Taskwait)
	bar := reg.Register("bar", "t.go", 3, region.ImplicitBarrier)

	// Task 1 runs 0..10, suspends at its taskwait, task 2 runs 10..20,
	// switch resumes task 1 which runs 20..25.
	tr := &Trace{Threads: map[int][]Event{
		0: {
			{Time: 0, Type: EvEnter, Region: bar},
			{Time: 0, Type: EvTaskBegin, Region: task, TaskID: 1},
			{Time: 8, Type: EvEnter, Region: tw},
			{Time: 10, Type: EvTaskBegin, Region: task, TaskID: 2},
			{Time: 20, Type: EvTaskEnd, Region: task, TaskID: 2},
			{Time: 20, Type: EvTaskSwitch, Region: task, TaskID: 1},
			{Time: 21, Type: EvExit, Region: tw},
			{Time: 25, Type: EvTaskEnd, Region: task, TaskID: 1},
			{Time: 26, Type: EvExit, Region: bar},
		},
	}}
	a := Analyze(tr)
	ta := a.PerThread[0]
	// Fragments: task1 [0,10) ended by task2's begin (suspension
	// boundary), task2 [10,20), task1 resumed [20,25).
	if ta.Fragments != 3 {
		t.Errorf("fragments = %d, want 3", ta.Fragments)
	}
	if ta.TaskExecution.Sum != 10+10+5 {
		t.Errorf("task execution sum = %d, want 25", ta.TaskExecution.Sum)
	}
	var buf bytes.Buffer
	a.Format(&buf)
	if !strings.Contains(buf.String(), "management/execution ratio") {
		t.Error("format output incomplete")
	}
}
