package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
)

// buildHandTrace: thread 0 computes 0..40, enters a barrier 40..100,
// executes one task 50..90 within it.
func buildHandTrace() (*Trace, *region.Registry) {
	reg := region.NewRegistry()
	bar := reg.Register("bar", "tl.go", 1, region.ImplicitBarrier)
	task := reg.Register("work", "tl.go", 2, region.Task)
	tr := &Trace{Threads: map[int][]Event{
		0: {
			{Time: 0, Type: EvThreadBegin},
			{Time: 40, Type: EvEnter, Region: bar},
			{Time: 50, Type: EvTaskBegin, Region: task, TaskID: 1},
			{Time: 90, Type: EvTaskEnd, Region: task, TaskID: 1},
			{Time: 100, Type: EvExit, Region: bar},
			{Time: 100, Type: EvThreadEnd},
		},
	}}
	return tr, reg
}

func TestThreadIntervals(t *testing.T) {
	tr, _ := buildHandTrace()
	ivs := threadIntervals(tr.Threads[0])
	want := []interval{
		{0, 40, laneCompute},
		{40, 50, laneSync},
		{50, 90, laneTask},
		{90, 100, laneSync},
	}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %+v", ivs)
	}
	for i, w := range want {
		if ivs[i] != w {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], w)
		}
	}
}

func TestRenderTimelineGlyphs(t *testing.T) {
	tr, _ := buildHandTrace()
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, tr, TimelineOptions{Width: 10, ShowLegend: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 100 time units over 10 buckets: 0-3 compute '-', 4 sync '.',
	// 5-8 task '#', 9 sync '.'.
	if !strings.Contains(out, "|----.####.|") {
		t.Errorf("unexpected lane:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, &Trace{Threads: map[int][]Event{}}, TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Error("empty trace not handled")
	}
}

func TestComputeUtilization(t *testing.T) {
	tr, _ := buildHandTrace()
	us := ComputeUtilization(tr)
	if len(us) != 1 {
		t.Fatalf("utilization rows = %d", len(us))
	}
	u := us[0]
	if u.TotalNs != 100 {
		t.Errorf("total = %d", u.TotalNs)
	}
	if u.TaskPct != 40 {
		t.Errorf("task%% = %f, want 40", u.TaskPct)
	}
	if u.SyncPct != 20 {
		t.Errorf("sync%% = %f, want 20", u.SyncPct)
	}
	if u.OtherPct != 40 {
		t.Errorf("other%% = %f, want 40", u.OtherPct)
	}
	var buf bytes.Buffer
	FormatUtilization(&buf, us)
	if !strings.Contains(buf.String(), "thread") {
		t.Error("format broken")
	}
}

func TestTimelineFromLiveRun(t *testing.T) {
	reg := region.NewRegistry()
	rec := NewRecorder(clock.NewSystem())
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "tl.go", 1, region.Parallel)
	task := reg.Register("work", "tl.go", 2, region.Task)
	rt.Parallel(4, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 64; i++ {
				th.NewTask(task, func(*omp.Thread) {
					s := 0
					for j := 0; j < 50000; j++ {
						s += j
					}
					_ = s
				})
			}
		}
	})
	tr := rec.Finish()
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, tr, TimelineOptions{Width: 60}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Error("no task execution visible in timeline")
	}
	lanes := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "thread ") {
			lanes++
		}
	}
	if lanes != 4 {
		t.Errorf("lanes = %d, want 4", lanes)
	}
	us := ComputeUtilization(tr)
	var taskSum float64
	for _, u := range us {
		taskSum += u.TaskPct
	}
	if taskSum <= 0 {
		t.Error("no task utilization measured")
	}
	if sl := Sparkline(tr, 0, 20); len(sl) != 20 {
		t.Errorf("sparkline length = %d, want 20", len(sl))
	}
}

func TestNestedTaskIntervalsStayTask(t *testing.T) {
	reg := region.NewRegistry()
	bar := reg.Register("bar", "tl.go", 1, region.ImplicitBarrier)
	tw := reg.Register("tw", "tl.go", 2, region.Taskwait)
	task := reg.Register("work", "tl.go", 3, region.Task)
	tr := &Trace{Threads: map[int][]Event{
		0: {
			{Time: 0, Type: EvEnter, Region: bar},
			{Time: 0, Type: EvTaskBegin, Region: task, TaskID: 1},
			{Time: 10, Type: EvEnter, Region: tw},
			{Time: 10, Type: EvTaskBegin, Region: task, TaskID: 2},
			{Time: 30, Type: EvTaskEnd, Region: task, TaskID: 2},
			{Time: 30, Type: EvTaskSwitch, Region: task, TaskID: 1},
			{Time: 35, Type: EvExit, Region: tw},
			{Time: 40, Type: EvTaskEnd, Region: task, TaskID: 1},
			{Time: 45, Type: EvExit, Region: bar},
		},
	}}
	ivs := threadIntervals(tr.Threads[0])
	// 0..40 must be laneTask throughout (nested execution), 40..45 sync.
	for _, iv := range ivs {
		if iv.start < 40 && iv.state != laneTask {
			t.Errorf("interval %+v should be task", iv)
		}
		if iv.start >= 40 && iv.state != laneSync {
			t.Errorf("interval %+v should be sync", iv)
		}
	}
}
