package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query selects a slice of a trace: a time window and/or a thread
// subset. The zero Query matches every event. Queries give every layer
// of the trace stack — in-memory analysis, the archive reader, the
// parallel pipeline, the CLIs — one shared vocabulary for "analyze only
// this part", so an indexed archive can be opened in O(matching chunks)
// instead of O(archive).
//
// Semantics are defined by Filter: an event matches when its thread is
// in Threads (nil/empty = all threads) and, if Windowed, its timestamp
// lies in the inclusive window [MinTime, MaxTime]. Every query-aware
// code path is required to produce results identical to filtering the
// fully decoded trace with Filter and then running the plain path.
type Query struct {
	// MinTime and MaxTime bound the inclusive time window; they are
	// consulted only when Windowed is true.
	MinTime, MaxTime int64
	// Windowed enables the time window.
	Windowed bool
	// Threads restricts the query to these thread IDs; nil or empty
	// means all threads.
	Threads []int
}

// All reports whether q matches every event (the zero Query).
func (q Query) All() bool {
	return !q.Windowed && len(q.Threads) == 0
}

// Empty reports whether the query can match no event at all because its
// window is inverted (MinTime > MaxTime).
func (q Query) Empty() bool {
	return q.Windowed && q.MinTime > q.MaxTime
}

// MatchThread reports whether thread tid passes the thread subset.
func (q Query) MatchThread(tid int) bool {
	if len(q.Threads) == 0 {
		return true
	}
	for _, t := range q.Threads {
		if t == tid {
			return true
		}
	}
	return false
}

// MatchTime reports whether timestamp t lies in the window.
func (q Query) MatchTime(t int64) bool {
	return !q.Windowed || (t >= q.MinTime && t <= q.MaxTime)
}

// Match reports whether one event of thread tid passes the query.
func (q Query) Match(tid int, ev Event) bool {
	return q.MatchThread(tid) && q.MatchTime(ev.Time)
}

// Overlaps reports whether any timestamp in the inclusive range
// [min, max] can pass the window — the chunk-pruning predicate an
// archive index uses to skip whole chunks.
func (q Query) Overlaps(min, max int64) bool {
	return !q.Windowed || (max >= q.MinTime && min <= q.MaxTime)
}

// Filter returns the sub-trace of tr matching q — the reference
// semantics every query-aware path must reproduce. Event slices are
// copied, never aliased; threads left without matching events are
// omitted entirely (matching what a query-driven decode produces).
func (q Query) Filter(tr *Trace) *Trace {
	out := &Trace{Threads: make(map[int][]Event, len(tr.Threads))}
	for tid, events := range tr.Threads {
		if !q.MatchThread(tid) {
			continue
		}
		var kept []Event
		for _, ev := range events {
			if q.MatchTime(ev.Time) {
				kept = append(kept, ev)
			}
		}
		if len(kept) > 0 {
			out.Threads[tid] = kept
		}
	}
	return out
}

// String renders the query the way the CLIs accept it ("-window t0:t1
// -threads a,b,c"); the zero query renders as "all".
func (q Query) String() string {
	var parts []string
	if q.Windowed {
		parts = append(parts, fmt.Sprintf("window %d:%d", q.MinTime, q.MaxTime))
	}
	if len(q.Threads) > 0 {
		ts := make([]string, len(q.Threads))
		for i, t := range q.Threads {
			ts[i] = strconv.Itoa(t)
		}
		parts = append(parts, "threads "+strings.Join(ts, ","))
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// ParseWindow parses the CLI time-window syntax "t0:t1" (inclusive
// nanosecond timestamps; either bound may be omitted, ":t1" and "t0:"
// are open-ended) into a windowed Query fragment.
func ParseWindow(s string) (min, max int64, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("invalid window %q (want t0:t1)", s)
	}
	min, max = int64(-1)<<63, int64(^uint64(0)>>1)
	if lo = strings.TrimSpace(lo); lo != "" {
		if min, err = strconv.ParseInt(lo, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("invalid window start %q: %v", lo, err)
		}
	}
	if hi = strings.TrimSpace(hi); hi != "" {
		if max, err = strconv.ParseInt(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("invalid window end %q: %v", hi, err)
		}
	}
	return min, max, nil
}

// ParseThreadList parses the CLI thread-subset syntax "a,b,c" into a
// sorted, deduplicated thread ID list.
func ParseThreadList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid thread id %q: %v", part, err)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list %q", s)
	}
	sort.Ints(out)
	out = out[:uniqInts(out)]
	return out, nil
}

// uniqInts compacts a sorted slice in place, returning the new length.
func uniqInts(s []int) int {
	n := 0
	for i, v := range s {
		if i == 0 || v != s[n-1] {
			s[n] = v
			n++
		}
	}
	return n
}

// ObserveQuery is Observe restricted to events matching q: events
// outside the query are dropped before they reach the state machine,
// so the finished analysis equals analyzing q.Filter of the stream.
func (sa *StreamAnalyzer) ObserveQuery(tid int, ev Event, q Query) {
	if q.Match(tid, ev) {
		sa.Observe(tid, ev)
	}
}

// ObserveBatchQuery is ObserveBatch restricted to events matching q,
// under the same per-thread serialization contract. The batch slice is
// not retained or mutated.
func (pa *ParallelAnalyzer) ObserveBatchQuery(tid int, events []Event, q Query) {
	if !q.MatchThread(tid) {
		return
	}
	if !q.Windowed {
		pa.ObserveBatch(tid, events)
		return
	}
	// The thread's state is created lazily on the first matching event:
	// a thread whose delivered batches never match must not surface an
	// empty PerThread entry the filter-then-analyze reference lacks.
	var st *threadState
	for i := range events {
		if !q.MatchTime(events[i].Time) {
			continue
		}
		if st == nil {
			pa.mu.Lock()
			st = pa.threads[tid]
			if st == nil {
				st = &threadState{ta: &ThreadAnalysis{ThreadID: tid}}
				pa.threads[tid] = st
			}
			pa.mu.Unlock()
		}
		st.step(events[i])
	}
}

// AnalyzeQuery derives the metrics from the sub-trace of tr matching q,
// sharding across up to workers goroutines like AnalyzeParallel. The
// result is reflect.DeepEqual-identical to AnalyzeParallel(q.Filter(tr),
// workers) — by construction, since the events reaching the state
// machines are exactly the filtered ones, in order.
func AnalyzeQuery(tr *Trace, q Query, workers int) *Analysis {
	if q.All() {
		return AnalyzeParallel(tr, workers)
	}
	return AnalyzeParallel(q.Filter(tr), workers)
}
