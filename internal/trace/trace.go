// Package trace records the runtime's event stream as an event trace —
// the OTF2/tracing side of Score-P, which the paper's conclusion names
// as the next step: "Automated trace analysis, like Scalasca does for
// other programming paradigms, might provide some additional
// information", specifically "the time between the enter of the last
// synchronization point and the task switch event" and "the ratio of
// overall management time to exclusive execution time for tasks".
//
// The Recorder implements omp.Listener; it can be combined with the
// profiling measurement through a Tee. The recorder keeps its
// per-thread buffer in the thread's omp.Thread.TraceData slot (bound at
// ThreadBegin), so recording an event is lock-free and allocation-free
// in steady state; the canonical profiling+tracing pair is additionally
// fused inside the Tee to share one clock read per event. Analyses over
// recorded traces live in analysis.go.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

// EventType enumerates trace record types.
type EventType uint8

// Trace event types, mirroring the POMP2-style runtime events.
const (
	EvEnter EventType = iota
	EvExit
	EvTaskCreateBegin
	EvTaskCreateEnd
	EvTaskBegin
	EvTaskEnd
	EvTaskSwitch // resumption of a suspended task (or the implicit task)
	EvThreadBegin
	EvThreadEnd
)

var evNames = map[EventType]string{
	EvEnter:           "ENTER",
	EvExit:            "EXIT",
	EvTaskCreateBegin: "TASK_CREATE_BEGIN",
	EvTaskCreateEnd:   "TASK_CREATE_END",
	EvTaskBegin:       "TASK_BEGIN",
	EvTaskEnd:         "TASK_END",
	EvTaskSwitch:      "TASK_SWITCH",
	EvThreadBegin:     "THREAD_BEGIN",
	EvThreadEnd:       "THREAD_END",
}

// String returns the OTF2-style record name.
func (e EventType) String() string {
	if s, ok := evNames[e]; ok {
		return s
	}
	return fmt.Sprintf("EV(%d)", uint8(e))
}

// Event is one trace record. Region is nil for pure task events; TaskID
// is 0 for region events of the implicit task and for a switch back to
// the implicit task.
type Event struct {
	Time   int64
	Type   EventType
	Region *region.Region
	TaskID uint64
}

// Trace is a finished recording: per-thread event sequences ordered by
// time (each thread's stream is naturally ordered; no cross-thread order
// is implied, as in any distributed trace).
type Trace struct {
	Threads map[int][]Event
}

// NumEvents returns the total record count.
func (tr *Trace) NumEvents() int {
	n := 0
	for _, evs := range tr.Threads {
		n += len(evs)
	}
	return n
}

// ThreadIDs returns the recorded thread IDs in ascending order.
func (tr *Trace) ThreadIDs() []int {
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// EventSink receives flushed per-thread event chunks from a Recorder in
// bounded-memory mode. otf2.Writer implements it; implementations must
// be safe for concurrent use, since runtime threads flush their chunks
// independently. The events slice is only valid for the duration of the
// call — the recorder reuses its backing array.
type EventSink interface {
	WriteEvents(thread int, events []Event) error
}

// Recorder collects events from the runtime. It implements omp.Listener.
// Like the profiling system it keeps strictly per-thread buffers: the
// buffer is bound to the thread's omp.Thread.TraceData slot at
// ThreadBegin, so recording an event is a slot load and an append — no
// lock and no map lookup, also when the recorder shares the event
// stream with the profiling measurement under a Tee (each listener kind
// owns its own slot). The map of buffers is only consulted when a
// thread registers, at Finish, or for threads that bypassed ThreadBegin.
//
// In the default mode every event is kept in memory until Finish. With a
// sink attached (NewStreamingRecorder), a thread's buffer is flushed to
// the sink whenever it reaches the configured chunk size, so recording
// holds at most one chunk per thread in memory regardless of run length.
type Recorder struct {
	clk clock.Clock

	sink        EventSink
	chunkEvents int

	// ring > 0 selects flight-recorder mode (NewFlightRecorder): each
	// thread retains only its last ring sealed chunks; see flight.go.
	ring int

	// sinkErr latches the first sink failure. It is an atomic pointer
	// (not a mutex-guarded field) so the steady-state record path —
	// including the pre-flush failed-check — never touches a lock.
	sinkErr atomic.Pointer[error]

	mu      sync.Mutex
	buffers map[int]*buffer
}

// buffer is one thread's event run. rec identifies the owning recorder,
// so two recorders in one Tee cannot mistake each other's slot claim.
type buffer struct {
	rec    *Recorder
	events []Event

	// Flight-recorder state, used only when rec.ring > 0 and then
	// guarded by mu (the ring is mutated by its thread but snapshotted
	// by dump triggers running on arbitrary goroutines). ringv holds the
	// sealed chunks, oldest at head once the ring is full.
	mu            sync.Mutex
	ringv         [][]Event
	head          int
	droppedEvents uint64
	droppedChunks uint64
}

// NewRecorder creates a trace recorder reading time from clk (use
// clock.NewSystem() for wall-clock traces).
func NewRecorder(clk clock.Clock) *Recorder {
	return &Recorder{clk: clk, buffers: make(map[int]*buffer)}
}

// DefaultChunkEvents is the per-thread flush threshold used by
// NewStreamingRecorder when chunkEvents <= 0.
const DefaultChunkEvents = 4096

// NewStreamingRecorder creates a bounded-memory recorder: whenever a
// thread has accumulated chunkEvents events they are handed to sink and
// the buffer is reset. Finish flushes the remaining partial chunks and
// returns an empty trace; the recording lives in whatever the sink
// wrote. The first sink error is latched (see Err) and recording
// continues by discarding flushed chunks, so a failing disk cannot
// stall or OOM the instrumented run.
func NewStreamingRecorder(clk clock.Clock, sink EventSink, chunkEvents int) *Recorder {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &Recorder{clk: clk, sink: sink, chunkEvents: chunkEvents, buffers: make(map[int]*buffer)}
}

// Err returns the first sink error encountered while flushing chunks,
// or nil. Events recorded after a sink error are dropped.
func (r *Recorder) Err() error {
	if p := r.sinkErr.Load(); p != nil {
		return *p
	}
	return nil
}

// flush hands b's events for thread id to the sink and resets the
// buffer in place, preserving its capacity. The error latch is a single
// atomic: one load on the happy path, one CompareAndSwap when the first
// failure is recorded.
func (r *Recorder) flush(id int, b *buffer) {
	if len(b.events) == 0 {
		return
	}
	if r.sinkErr.Load() == nil {
		if err := r.sink.WriteEvents(id, b.events); err != nil {
			r.sinkErr.CompareAndSwap(nil, &err)
		}
	}
	b.events = b.events[:0]
}

// bufferFor returns (creating on first use) the registered buffer of
// thread id.
func (r *Recorder) bufferFor(id int) *buffer {
	r.mu.Lock()
	b, ok := r.buffers[id]
	if !ok {
		b = &buffer{rec: r}
		r.buffers[id] = b
	}
	r.mu.Unlock()
	return b
}

// buffer returns the per-thread buffer attached to t. The fast path is
// the thread's TraceData slot (claimed at ThreadBegin); the slow path
// registers the buffer, for threads that bypassed ThreadBegin (unit
// tests) or when another recorder in the same Tee owns the slot.
func (r *Recorder) buffer(t *omp.Thread) *buffer {
	if b, ok := t.TraceData.(*buffer); ok && b.rec == r {
		return b
	}
	b := r.bufferFor(t.ID)
	if t.TraceData == nil {
		t.TraceData = b
	}
	return b
}

func (r *Recorder) record(t *omp.Thread, typ EventType, reg *region.Region, task uint64) {
	r.recordAt(t, r.clk.Now(), typ, reg, task)
}

// recordAt appends one event with an explicit timestamp; the fused Tee
// uses it to share a single clock read between profile and trace.
func (r *Recorder) recordAt(t *omp.Thread, now int64, typ EventType, reg *region.Region, task uint64) {
	b := r.buffer(t)
	if r.ring > 0 {
		b.recordFlight(r, Event{Time: now, Type: typ, Region: reg, TaskID: task})
		return
	}
	b.events = append(b.events, Event{Time: now, Type: typ, Region: reg, TaskID: task})
	if r.sink != nil && len(b.events) >= r.chunkEvents {
		r.flush(t.ID, b)
	}
}

// ThreadBegin implements omp.Listener: it claims the thread's TraceData
// slot so that all later events from this thread reach their buffer
// without locks or map lookups.
func (r *Recorder) ThreadBegin(t *omp.Thread) {
	if t.TraceData == nil {
		t.TraceData = r.bufferFor(t.ID)
	}
	r.record(t, EvThreadBegin, nil, 0)
}

// ThreadEnd implements omp.Listener.
func (r *Recorder) ThreadEnd(t *omp.Thread) {
	r.record(t, EvThreadEnd, nil, 0)
	if b, ok := t.TraceData.(*buffer); ok && b.rec == r {
		t.TraceData = nil
	}
}

// Enter implements omp.Listener.
func (r *Recorder) Enter(t *omp.Thread, reg *region.Region) { r.record(t, EvEnter, reg, 0) }

// Exit implements omp.Listener.
func (r *Recorder) Exit(t *omp.Thread, reg *region.Region) { r.record(t, EvExit, reg, 0) }

// TaskCreateBegin implements omp.Listener.
func (r *Recorder) TaskCreateBegin(t *omp.Thread, reg *region.Region) {
	r.record(t, EvTaskCreateBegin, reg, 0)
}

// TaskCreateEnd implements omp.Listener.
func (r *Recorder) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskCreateEnd, tk.Region, tk.ID)
}

// TaskBegin implements omp.Listener.
func (r *Recorder) TaskBegin(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskBegin, tk.Region, tk.ID)
}

// TaskEnd implements omp.Listener.
func (r *Recorder) TaskEnd(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskEnd, tk.Region, tk.ID)
}

// TaskSwitch implements omp.Listener.
func (r *Recorder) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	if tk == nil {
		r.record(t, EvTaskSwitch, nil, 0)
		return
	}
	r.record(t, EvTaskSwitch, tk.Region, tk.ID)
}

// Finish returns the recorded trace. The recorder can be reused after
// Finish; subsequent events start fresh buffers.
//
// In streaming mode (NewStreamingRecorder) the remaining partial chunks
// are flushed to the sink and the returned trace is empty: the
// recording is whatever the sink wrote. Check Err (and close the sink)
// afterwards.
func (r *Recorder) Finish() *Trace {
	if r.ring > 0 {
		// Flight mode: the recording is the retained window. Reset the
		// buffer map so the recorder can be reused like the other modes.
		tr, _ := r.FlightSnapshot()
		r.mu.Lock()
		r.buffers = make(map[int]*buffer)
		r.mu.Unlock()
		return tr
	}
	if r.sink != nil {
		// Snapshot the buffer map under the lock, flush outside it, so
		// r.mu is never held across sink I/O.
		r.mu.Lock()
		buffers := r.buffers
		r.buffers = make(map[int]*buffer)
		r.mu.Unlock()
		for id, b := range buffers {
			r.flush(id, b)
		}
		return &Trace{Threads: make(map[int][]Event)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := &Trace{Threads: make(map[int][]Event, len(r.buffers))}
	for id, b := range r.buffers {
		tr.Threads[id] = b.events
	}
	r.buffers = make(map[int]*buffer)
	return tr
}

// Tee fans one runtime event stream out to several listeners (e.g.
// profile + trace simultaneously, like Score-P's combined mode).
//
// The canonical profiling+tracing pair — a *measure.Measurement (or
// *measure.Filter) plus a *Recorder on the same clock, exactly what the
// default tracing session wires — is fused: per event the Tee reads the
// clock once and calls both listeners' timestamped entry points
// directly, with no interface dispatch. Besides halving the clock cost,
// fusing gives profile and trace identical timestamps for each event.
// Any other combination takes the generic dispatch loop. Do not mutate
// Listeners after NewTee; the fused fast path is derived from it.
type Tee struct {
	Listeners []omp.Listener

	// Fused fast-path state: fr is non-nil iff the tee is fused, and
	// then exactly one of fm/ff holds the profiling side.
	fm  *measure.Measurement
	ff  *measure.Filter
	fr  *Recorder
	clk clock.Clock
}

// NewTee combines listeners; nil entries are dropped.
func NewTee(ls ...omp.Listener) *Tee {
	t := &Tee{}
	for _, l := range ls {
		if l != nil {
			t.Listeners = append(t.Listeners, l)
		}
	}
	t.fuse()
	return t
}

// fuse enables the concrete fast path when the tee is the canonical
// profiling+tracing pair sharing one clock.
func (te *Tee) fuse() {
	if len(te.Listeners) != 2 {
		return
	}
	rec, ok := te.Listeners[1].(*Recorder)
	if !ok {
		return
	}
	var mclk clock.Clock
	switch m := te.Listeners[0].(type) {
	case *measure.Measurement:
		te.fm = m
		mclk = m.Clock()
	case *measure.Filter:
		te.ff = m
		mclk = m.Measurement().Clock()
	default:
		return
	}
	if !sameClock(mclk, rec.clk) {
		// Different time sources: each listener must read its own.
		te.fm, te.ff = nil, nil
		return
	}
	te.fr = rec
	te.clk = rec.clk
}

// sameClock reports whether two clock interfaces hold the same
// underlying time source. Only the known pointer-shaped clocks are
// compared — anything else (e.g. clock.Func, which is not comparable)
// conservatively reports false and disables fusing.
func sameClock(a, b clock.Clock) bool {
	switch ca := a.(type) {
	case *clock.System:
		cb, ok := b.(*clock.System)
		return ok && ca == cb
	case *clock.Manual:
		cb, ok := b.(*clock.Manual)
		return ok && ca == cb
	}
	return false
}

// ThreadBegin implements omp.Listener. Each listener claims its own
// typed thread slot (Thread.Profile, Thread.TraceData), so registration
// order does not matter.
func (te *Tee) ThreadBegin(t *omp.Thread) {
	for _, l := range te.Listeners {
		l.ThreadBegin(t)
	}
}

// ThreadEnd implements omp.Listener.
func (te *Tee) ThreadEnd(t *omp.Thread) {
	for _, l := range te.Listeners {
		l.ThreadEnd(t)
	}
}

// Enter implements omp.Listener.
func (te *Tee) Enter(t *omp.Thread, reg *region.Region) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.EnterAt(t, reg, now)
		} else {
			te.fm.EnterAt(t, reg, now)
		}
		te.fr.recordAt(t, now, EvEnter, reg, 0)
		return
	}
	for _, l := range te.Listeners {
		l.Enter(t, reg)
	}
}

// Exit implements omp.Listener.
func (te *Tee) Exit(t *omp.Thread, reg *region.Region) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.ExitAt(t, reg, now)
		} else {
			te.fm.ExitAt(t, reg, now)
		}
		te.fr.recordAt(t, now, EvExit, reg, 0)
		return
	}
	for _, l := range te.Listeners {
		l.Exit(t, reg)
	}
}

// TaskCreateBegin implements omp.Listener.
func (te *Tee) TaskCreateBegin(t *omp.Thread, reg *region.Region) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.TaskCreateBeginAt(t, reg, now)
		} else {
			te.fm.TaskCreateBeginAt(t, reg, now)
		}
		te.fr.recordAt(t, now, EvTaskCreateBegin, reg, 0)
		return
	}
	for _, l := range te.Listeners {
		l.TaskCreateBegin(t, reg)
	}
}

// TaskCreateEnd implements omp.Listener.
func (te *Tee) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.TaskCreateEndAt(t, tk, now)
		} else {
			te.fm.TaskCreateEndAt(t, tk, now)
		}
		te.fr.recordAt(t, now, EvTaskCreateEnd, tk.Region, tk.ID)
		return
	}
	for _, l := range te.Listeners {
		l.TaskCreateEnd(t, tk)
	}
}

// TaskBegin implements omp.Listener.
func (te *Tee) TaskBegin(t *omp.Thread, tk *omp.Task) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.TaskBeginAt(t, tk, now)
		} else {
			te.fm.TaskBeginAt(t, tk, now)
		}
		te.fr.recordAt(t, now, EvTaskBegin, tk.Region, tk.ID)
		return
	}
	for _, l := range te.Listeners {
		l.TaskBegin(t, tk)
	}
}

// TaskEnd implements omp.Listener.
func (te *Tee) TaskEnd(t *omp.Thread, tk *omp.Task) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.TaskEndAt(t, tk, now)
		} else {
			te.fm.TaskEndAt(t, tk, now)
		}
		te.fr.recordAt(t, now, EvTaskEnd, tk.Region, tk.ID)
		return
	}
	for _, l := range te.Listeners {
		l.TaskEnd(t, tk)
	}
}

// TaskSwitch implements omp.Listener.
func (te *Tee) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	if te.fr != nil {
		now := te.clk.Now()
		if te.ff != nil {
			te.ff.TaskSwitchAt(t, tk, now)
		} else {
			te.fm.TaskSwitchAt(t, tk, now)
		}
		if tk == nil {
			te.fr.recordAt(t, now, EvTaskSwitch, nil, 0)
		} else {
			te.fr.recordAt(t, now, EvTaskSwitch, tk.Region, tk.ID)
		}
		return
	}
	for _, l := range te.Listeners {
		l.TaskSwitch(t, tk)
	}
}
