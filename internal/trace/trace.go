// Package trace records the runtime's event stream as an event trace —
// the OTF2/tracing side of Score-P, which the paper's conclusion names
// as the next step: "Automated trace analysis, like Scalasca does for
// other programming paradigms, might provide some additional
// information", specifically "the time between the enter of the last
// synchronization point and the task switch event" and "the ratio of
// overall management time to exclusive execution time for tasks".
//
// The Recorder implements omp.Listener; it can be combined with the
// profiling measurement through a Tee. Analyses over recorded traces
// live in analysis.go.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
)

// EventType enumerates trace record types.
type EventType uint8

// Trace event types, mirroring the POMP2-style runtime events.
const (
	EvEnter EventType = iota
	EvExit
	EvTaskCreateBegin
	EvTaskCreateEnd
	EvTaskBegin
	EvTaskEnd
	EvTaskSwitch // resumption of a suspended task (or the implicit task)
	EvThreadBegin
	EvThreadEnd
)

var evNames = map[EventType]string{
	EvEnter:           "ENTER",
	EvExit:            "EXIT",
	EvTaskCreateBegin: "TASK_CREATE_BEGIN",
	EvTaskCreateEnd:   "TASK_CREATE_END",
	EvTaskBegin:       "TASK_BEGIN",
	EvTaskEnd:         "TASK_END",
	EvTaskSwitch:      "TASK_SWITCH",
	EvThreadBegin:     "THREAD_BEGIN",
	EvThreadEnd:       "THREAD_END",
}

// String returns the OTF2-style record name.
func (e EventType) String() string {
	if s, ok := evNames[e]; ok {
		return s
	}
	return fmt.Sprintf("EV(%d)", uint8(e))
}

// Event is one trace record. Region is nil for pure task events; TaskID
// is 0 for region events of the implicit task and for a switch back to
// the implicit task.
type Event struct {
	Time   int64
	Type   EventType
	Region *region.Region
	TaskID uint64
}

// Trace is a finished recording: per-thread event sequences ordered by
// time (each thread's stream is naturally ordered; no cross-thread order
// is implied, as in any distributed trace).
type Trace struct {
	Threads map[int][]Event
}

// NumEvents returns the total record count.
func (tr *Trace) NumEvents() int {
	n := 0
	for _, evs := range tr.Threads {
		n += len(evs)
	}
	return n
}

// ThreadIDs returns the recorded thread IDs in ascending order.
func (tr *Trace) ThreadIDs() []int {
	ids := make([]int, 0, len(tr.Threads))
	for id := range tr.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// EventSink receives flushed per-thread event chunks from a Recorder in
// bounded-memory mode. otf2.Writer implements it; implementations must
// be safe for concurrent use, since runtime threads flush their chunks
// independently. The events slice is only valid for the duration of the
// call — the recorder reuses its backing array.
type EventSink interface {
	WriteEvents(thread int, events []Event) error
}

// Recorder collects events from the runtime. It implements omp.Listener.
// Like the profiling system it keeps strictly per-thread buffers to
// avoid locking on the hot path; the map of buffers itself is guarded
// because threads register concurrently.
//
// In the default mode every event is kept in memory until Finish. With a
// sink attached (NewStreamingRecorder), a thread's buffer is flushed to
// the sink whenever it reaches the configured chunk size, so recording
// holds at most one chunk per thread in memory regardless of run length.
type Recorder struct {
	clk clock.Clock

	sink        EventSink
	chunkEvents int

	mu      sync.Mutex
	buffers map[int]*buffer
	sinkErr error
}

type buffer struct {
	events []Event
}

// NewRecorder creates a trace recorder reading time from clk (use
// clock.NewSystem() for wall-clock traces).
func NewRecorder(clk clock.Clock) *Recorder {
	return &Recorder{clk: clk, buffers: make(map[int]*buffer)}
}

// DefaultChunkEvents is the per-thread flush threshold used by
// NewStreamingRecorder when chunkEvents <= 0.
const DefaultChunkEvents = 4096

// NewStreamingRecorder creates a bounded-memory recorder: whenever a
// thread has accumulated chunkEvents events they are handed to sink and
// the buffer is reset. Finish flushes the remaining partial chunks and
// returns an empty trace; the recording lives in whatever the sink
// wrote. The first sink error is latched (see Err) and recording
// continues by discarding flushed chunks, so a failing disk cannot
// stall or OOM the instrumented run.
func NewStreamingRecorder(clk clock.Clock, sink EventSink, chunkEvents int) *Recorder {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &Recorder{clk: clk, sink: sink, chunkEvents: chunkEvents, buffers: make(map[int]*buffer)}
}

// Err returns the first sink error encountered while flushing chunks,
// or nil. Events recorded after a sink error are dropped.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// flush hands b's events for thread id to the sink and resets the
// buffer in place, preserving its capacity.
func (r *Recorder) flush(id int, b *buffer) {
	if len(b.events) == 0 {
		return
	}
	r.mu.Lock()
	failed := r.sinkErr != nil
	r.mu.Unlock()
	if !failed {
		if err := r.sink.WriteEvents(id, b.events); err != nil {
			r.mu.Lock()
			if r.sinkErr == nil {
				r.sinkErr = err
			}
			r.mu.Unlock()
		}
	}
	b.events = b.events[:0]
}

// buffer returns the per-thread buffer attached to t, creating it on
// first use (also when ThreadBegin was bypassed, e.g. in unit tests).
func (r *Recorder) buffer(t *omp.Thread) *buffer {
	if b, ok := t.ProfData.(*buffer); ok {
		return b
	}
	r.mu.Lock()
	b, ok := r.buffers[t.ID]
	if !ok {
		b = &buffer{}
		r.buffers[t.ID] = b
	}
	r.mu.Unlock()
	// Claim the fast path only if no other listener (e.g. the profiling
	// measurement under a Tee) owns the thread's ProfData slot.
	if t.ProfData == nil {
		t.ProfData = b
	}
	return b
}

func (r *Recorder) record(t *omp.Thread, typ EventType, reg *region.Region, task uint64) {
	b := r.buffer(t)
	b.events = append(b.events, Event{Time: r.clk.Now(), Type: typ, Region: reg, TaskID: task})
	if r.sink != nil && len(b.events) >= r.chunkEvents {
		r.flush(t.ID, b)
	}
}

// ThreadBegin implements omp.Listener.
func (r *Recorder) ThreadBegin(t *omp.Thread) { r.record(t, EvThreadBegin, nil, 0) }

// ThreadEnd implements omp.Listener.
func (r *Recorder) ThreadEnd(t *omp.Thread) {
	r.record(t, EvThreadEnd, nil, 0)
	t.ProfData = nil
}

// Enter implements omp.Listener.
func (r *Recorder) Enter(t *omp.Thread, reg *region.Region) { r.record(t, EvEnter, reg, 0) }

// Exit implements omp.Listener.
func (r *Recorder) Exit(t *omp.Thread, reg *region.Region) { r.record(t, EvExit, reg, 0) }

// TaskCreateBegin implements omp.Listener.
func (r *Recorder) TaskCreateBegin(t *omp.Thread, reg *region.Region) {
	r.record(t, EvTaskCreateBegin, reg, 0)
}

// TaskCreateEnd implements omp.Listener.
func (r *Recorder) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskCreateEnd, tk.Region, tk.ID)
}

// TaskBegin implements omp.Listener.
func (r *Recorder) TaskBegin(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskBegin, tk.Region, tk.ID)
}

// TaskEnd implements omp.Listener.
func (r *Recorder) TaskEnd(t *omp.Thread, tk *omp.Task) {
	r.record(t, EvTaskEnd, tk.Region, tk.ID)
}

// TaskSwitch implements omp.Listener.
func (r *Recorder) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	if tk == nil {
		r.record(t, EvTaskSwitch, nil, 0)
		return
	}
	r.record(t, EvTaskSwitch, tk.Region, tk.ID)
}

// Finish returns the recorded trace. The recorder can be reused after
// Finish; subsequent events start fresh buffers.
//
// In streaming mode (NewStreamingRecorder) the remaining partial chunks
// are flushed to the sink and the returned trace is empty: the
// recording is whatever the sink wrote. Check Err (and close the sink)
// afterwards.
func (r *Recorder) Finish() *Trace {
	if r.sink != nil {
		// Snapshot the buffer map under the lock, flush outside it
		// (flush retakes r.mu for error latching).
		r.mu.Lock()
		buffers := r.buffers
		r.buffers = make(map[int]*buffer)
		r.mu.Unlock()
		for id, b := range buffers {
			r.flush(id, b)
		}
		return &Trace{Threads: make(map[int][]Event)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := &Trace{Threads: make(map[int][]Event, len(r.buffers))}
	for id, b := range r.buffers {
		tr.Threads[id] = b.events
	}
	r.buffers = make(map[int]*buffer)
	return tr
}

// Tee fans one runtime event stream out to several listeners (e.g.
// profile + trace simultaneously, like Score-P's combined mode).
type Tee struct {
	Listeners []omp.Listener
}

// NewTee combines listeners; nil entries are dropped.
func NewTee(ls ...omp.Listener) *Tee {
	t := &Tee{}
	for _, l := range ls {
		if l != nil {
			t.Listeners = append(t.Listeners, l)
		}
	}
	return t
}

// ThreadBegin implements omp.Listener.
//
// ProfData note: both the profiling measurement and the trace recorder
// want to stash per-thread state in Thread.ProfData. Under a Tee the
// profiling measurement owns ProfData; the trace recorder falls back to
// its internal map (see Recorder.buffer).
func (te *Tee) ThreadBegin(t *omp.Thread) {
	for i := len(te.Listeners) - 1; i >= 0; i-- {
		te.Listeners[i].ThreadBegin(t)
	}
}

// ThreadEnd implements omp.Listener.
func (te *Tee) ThreadEnd(t *omp.Thread) {
	for _, l := range te.Listeners {
		l.ThreadEnd(t)
	}
}

// Enter implements omp.Listener.
func (te *Tee) Enter(t *omp.Thread, reg *region.Region) {
	for _, l := range te.Listeners {
		l.Enter(t, reg)
	}
}

// Exit implements omp.Listener.
func (te *Tee) Exit(t *omp.Thread, reg *region.Region) {
	for _, l := range te.Listeners {
		l.Exit(t, reg)
	}
}

// TaskCreateBegin implements omp.Listener.
func (te *Tee) TaskCreateBegin(t *omp.Thread, reg *region.Region) {
	for _, l := range te.Listeners {
		l.TaskCreateBegin(t, reg)
	}
}

// TaskCreateEnd implements omp.Listener.
func (te *Tee) TaskCreateEnd(t *omp.Thread, tk *omp.Task) {
	for _, l := range te.Listeners {
		l.TaskCreateEnd(t, tk)
	}
}

// TaskBegin implements omp.Listener.
func (te *Tee) TaskBegin(t *omp.Thread, tk *omp.Task) {
	for _, l := range te.Listeners {
		l.TaskBegin(t, tk)
	}
}

// TaskEnd implements omp.Listener.
func (te *Tee) TaskEnd(t *omp.Thread, tk *omp.Task) {
	for _, l := range te.Listeners {
		l.TaskEnd(t, tk)
	}
}

// TaskSwitch implements omp.Listener.
func (te *Tee) TaskSwitch(t *omp.Thread, tk *omp.Task) {
	for _, l := range te.Listeners {
		l.TaskSwitch(t, tk)
	}
}
