package trace

import (
	"sort"

	"repro/internal/clock"
)

// DefaultFlightRingChunks is the per-thread ring depth used by
// NewFlightRecorder when ringChunks <= 0.
const DefaultFlightRingChunks = 8

// NewFlightRecorder creates a flight-recorder: an always-on bounded
// recorder that retains only the most recent window of each thread's
// event stream. Events accumulate into per-thread chunks of chunkEvents
// events (<= 0 picks DefaultChunkEvents); a full chunk is sealed into a
// ring of ringChunks chunks (<= 0 picks DefaultFlightRingChunks), and
// once the ring is full each seal evicts the oldest chunk, counting its
// events into the thread's dropped-events/dropped-chunks totals. Memory
// is therefore O(threads x ringChunks x chunkEvents) regardless of run
// length, and steady-state recording reuses the evicted chunk's backing
// array — no allocation after the ring has filled.
//
// FlightSnapshot copies out the retained window plus its eviction
// accounting at any time, concurrently with recording; Finish returns
// the window as an ordinary Trace.
func NewFlightRecorder(clk clock.Clock, ringChunks, chunkEvents int) *Recorder {
	if ringChunks <= 0 {
		ringChunks = DefaultFlightRingChunks
	}
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &Recorder{clk: clk, ring: ringChunks, chunkEvents: chunkEvents, buffers: make(map[int]*buffer)}
}

// FlightEnabled reports whether r is a flight recorder.
func (r *Recorder) FlightEnabled() bool { return r.ring > 0 }

// FlightRingChunks returns the per-thread ring depth (0 when r is not a
// flight recorder).
func (r *Recorder) FlightRingChunks() int { return r.ring }

// FlightChunkEvents returns the events-per-chunk granularity of a
// flight recorder (0 when r is not one).
func (r *Recorder) FlightChunkEvents() int {
	if r.ring == 0 {
		return 0
	}
	return r.chunkEvents
}

// recordFlight appends ev to the thread's current chunk, sealing it
// into the ring when full. The per-buffer mutex makes concurrent
// snapshots safe; it is uncontended in steady state (only the owning
// thread records, dumps are rare) and allocation-free.
func (b *buffer) recordFlight(r *Recorder, ev Event) {
	b.mu.Lock()
	if cap(b.events) == 0 {
		b.events = make([]Event, 0, r.chunkEvents)
	}
	b.events = append(b.events, ev)
	if len(b.events) >= r.chunkEvents {
		b.sealFlightLocked(r)
	}
	b.mu.Unlock()
}

// sealFlightLocked moves the current chunk into the ring. While the
// ring is still filling the chunk is appended and a fresh buffer
// allocated; once full, the oldest chunk is evicted — its event count
// added to the dropped totals — and its backing array reused for the
// next chunk, so a full ring records without allocating.
func (b *buffer) sealFlightLocked(r *Recorder) {
	if len(b.ringv) < r.ring {
		b.ringv = append(b.ringv, b.events)
		b.events = make([]Event, 0, r.chunkEvents)
		return
	}
	old := b.ringv[b.head]
	b.ringv[b.head] = b.events
	b.head = (b.head + 1) % r.ring
	b.droppedChunks++
	b.droppedEvents += uint64(len(old))
	b.events = old[:0]
}

// FlightThreadStats is one thread's flight-recorder accounting.
type FlightThreadStats struct {
	Thread         int
	RetainedEvents int
	DroppedEvents  uint64
	DroppedChunks  uint64
}

// FlightStats is a point-in-time summary of a flight recorder: the ring
// configuration, how many events the rings currently retain, and how
// many were evicted since recording began. Threads is ascending by
// thread ID and includes every thread that recorded at least one event.
type FlightStats struct {
	RingChunks     int
	ChunkEvents    int
	RetainedEvents int
	DroppedEvents  uint64
	DroppedChunks  uint64
	Threads        []FlightThreadStats
}

// snapshotBuffers copies the buffer map under r.mu so per-buffer locks
// are taken outside it.
func (r *Recorder) snapshotBuffers() map[int]*buffer {
	r.mu.Lock()
	bufs := make(map[int]*buffer, len(r.buffers))
	for id, b := range r.buffers {
		bufs[id] = b
	}
	r.mu.Unlock()
	return bufs
}

// FlightStatsNow returns the recorder's current accounting without
// copying any events. It is safe concurrently with recording and
// returns the zero FlightStats when r is not a flight recorder.
func (r *Recorder) FlightStatsNow() FlightStats {
	if r.ring == 0 {
		return FlightStats{}
	}
	st := FlightStats{RingChunks: r.ring, ChunkEvents: r.chunkEvents}
	bufs := r.snapshotBuffers()
	for _, id := range sortedBufferIDs(bufs) {
		b := bufs[id]
		b.mu.Lock()
		n := len(b.events)
		for _, c := range b.ringv {
			n += len(c)
		}
		ts := FlightThreadStats{
			Thread:         id,
			RetainedEvents: n,
			DroppedEvents:  b.droppedEvents,
			DroppedChunks:  b.droppedChunks,
		}
		b.mu.Unlock()
		if ts.RetainedEvents == 0 && ts.DroppedEvents == 0 {
			continue
		}
		st.Threads = append(st.Threads, ts)
		st.RetainedEvents += ts.RetainedEvents
		st.DroppedEvents += ts.DroppedEvents
		st.DroppedChunks += ts.DroppedChunks
	}
	return st
}

// FlightSnapshot copies the retained window out of the rings as a
// Trace, together with the accounting that matches it exactly. Each
// thread's events are in recording order (oldest retained chunk first,
// then the current partial chunk). The snapshot is consistent per
// thread — a thread's events and dropped counts are read under one
// lock — and safe concurrently with recording; threads recording during
// the snapshot may contribute events to some threads' windows and not
// others, as in any online trace capture. Returns (nil, zero) when r is
// not a flight recorder.
func (r *Recorder) FlightSnapshot() (*Trace, FlightStats) {
	if r.ring == 0 {
		return nil, FlightStats{}
	}
	st := FlightStats{RingChunks: r.ring, ChunkEvents: r.chunkEvents}
	bufs := r.snapshotBuffers()
	tr := &Trace{Threads: make(map[int][]Event, len(bufs))}
	for _, id := range sortedBufferIDs(bufs) {
		b := bufs[id]
		b.mu.Lock()
		n := len(b.events)
		for _, c := range b.ringv {
			n += len(c)
		}
		evs := make([]Event, 0, n)
		if len(b.ringv) == r.ring {
			for i := 0; i < r.ring; i++ {
				evs = append(evs, b.ringv[(b.head+i)%r.ring]...)
			}
		} else {
			for _, c := range b.ringv {
				evs = append(evs, c...)
			}
		}
		evs = append(evs, b.events...)
		ts := FlightThreadStats{
			Thread:         id,
			RetainedEvents: len(evs),
			DroppedEvents:  b.droppedEvents,
			DroppedChunks:  b.droppedChunks,
		}
		b.mu.Unlock()
		if ts.RetainedEvents == 0 && ts.DroppedEvents == 0 {
			continue
		}
		if len(evs) > 0 {
			tr.Threads[id] = evs
		}
		st.Threads = append(st.Threads, ts)
		st.RetainedEvents += ts.RetainedEvents
		st.DroppedEvents += ts.DroppedEvents
		st.DroppedChunks += ts.DroppedChunks
	}
	return tr, st
}

func sortedBufferIDs(bufs map[int]*buffer) []int {
	ids := make([]int, 0, len(bufs))
	for id := range bufs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
