package trace

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/region"
)

// parallelTestTrace builds a deterministic multi-thread trace with the
// event mix the analyzer cares about (sync regions, task lifecycles,
// switches back to the implicit task).
func parallelTestTrace(threads, tasks int) *Trace {
	reg := region.NewRegistry()
	par := reg.Register("p.par", "p.go", 1, region.Parallel)
	task := reg.Register("p.task", "p.go", 2, region.Task)
	tw := reg.Register("p.tw", "p.go", 3, region.Taskwait)
	tr := &Trace{Threads: make(map[int][]Event)}
	var id uint64
	for t := 0; t < threads; t++ {
		ts := int64(100 * t)
		tick := func(d int64) int64 { ts += d; return ts }
		evs := []Event{
			{Time: tick(1), Type: EvThreadBegin},
			{Time: tick(2), Type: EvEnter, Region: par},
			{Time: tick(3), Type: EvEnter, Region: tw},
		}
		for i := 0; i < tasks; i++ {
			id++
			evs = append(evs,
				Event{Time: tick(2), Type: EvTaskCreateBegin, Region: task},
				Event{Time: tick(5), Type: EvTaskCreateEnd, Region: task, TaskID: id},
				Event{Time: tick(1), Type: EvTaskBegin, Region: task, TaskID: id},
				Event{Time: tick(int64(7 + i%11)), Type: EvTaskEnd, Region: task, TaskID: id},
				Event{Time: tick(1), Type: EvTaskSwitch}, // back to the implicit task
			)
		}
		evs = append(evs,
			Event{Time: tick(4), Type: EvExit, Region: tw},
			Event{Time: tick(1), Type: EvExit, Region: par},
			Event{Time: tick(1), Type: EvThreadEnd},
		)
		tr.Threads[t] = evs
	}
	return tr
}

// TestAnalyzeParallelMatchesAnalyze checks the sharded in-memory
// analysis is reflect.DeepEqual-identical to the sequential one at
// every worker count.
func TestAnalyzeParallelMatchesAnalyze(t *testing.T) {
	tr := parallelTestTrace(4, 500)
	want := Analyze(tr)
	for _, workers := range []int{0, 1, 2, 4, 8} {
		if got := AnalyzeParallel(tr, workers); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel analysis diverges:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestParallelAnalyzerBatches feeds each thread's stream as many
// in-order batches from a dedicated goroutine — the shape a decode
// pipeline produces — and checks the merged result against Analyze.
// Run under -race this is the analyzer's concurrency proof.
func TestParallelAnalyzerBatches(t *testing.T) {
	tr := parallelTestTrace(8, 300)
	want := Analyze(tr)

	pa := NewParallelAnalyzer()
	var wg sync.WaitGroup
	for tid, events := range tr.Threads {
		wg.Add(1)
		go func(tid int, events []Event) {
			defer wg.Done()
			const batch = 64
			for i := 0; i < len(events); i += batch {
				end := i + batch
				if end > len(events) {
					end = len(events)
				}
				pa.ObserveBatch(tid, events[i:end])
			}
		}(tid, events)
	}
	wg.Wait()
	if got := pa.Finish(); !reflect.DeepEqual(want, got) {
		t.Fatalf("batched parallel analysis diverges:\n got %+v\nwant %+v", got, want)
	}
}
