package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/region"
)

// jsonEvent is the serialized record form (JSON Lines, one event per
// line — the plain-text stand-in for OTF2).
type jsonEvent struct {
	Thread int    `json:"t"`
	Time   int64  `json:"ts"`
	Type   string `json:"ev"`
	Region string `json:"r,omitempty"`
	File   string `json:"f,omitempty"`
	Line   int    `json:"l,omitempty"`
	RType  string `json:"rt,omitempty"`
	TaskID uint64 `json:"task,omitempty"`
}

// WriteJSONL serializes the trace as JSON Lines ordered by thread, then
// time (per-thread order is preserved).
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tid := range tr.ThreadIDs() {
		for _, ev := range tr.Threads[tid] {
			je := jsonEvent{
				Thread: tid,
				Time:   ev.Time,
				Type:   ev.Type.String(),
				TaskID: ev.TaskID,
			}
			if ev.Region != nil {
				je.Region = ev.Region.Name
				je.File = ev.Region.File
				je.Line = ev.Region.Line
				je.RType = ev.Region.Type.String()
			}
			if err := enc.Encode(je); err != nil {
				return fmt.Errorf("trace: encoding event: %w", err)
			}
		}
	}
	return bw.Flush()
}

var typeByName = func() map[string]EventType {
	m := make(map[string]EventType, len(evNames))
	for t, n := range evNames {
		m[n] = t
	}
	return m
}()

var regionTypeByName = func() map[string]region.Type {
	m := make(map[string]region.Type)
	for t := region.UserFunction; t <= region.Parameter; t++ {
		m[t.String()] = t
	}
	return m
}()

// ReadJSONL deserializes a trace written by WriteJSONL, interning
// regions into reg.
func ReadJSONL(r io.Reader, reg *region.Registry) (*Trace, error) {
	tr := &Trace{Threads: make(map[int][]Event)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		typ, ok := typeByName[je.Type]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown event type %q", line, je.Type)
		}
		ev := Event{Time: je.Time, Type: typ, TaskID: je.TaskID}
		if je.Region != "" {
			rt, ok := regionTypeByName[je.RType]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown region type %q", line, je.RType)
			}
			ev.Region = reg.Register(je.Region, je.File, je.Line, rt)
		}
		tr.Threads[je.Thread] = append(tr.Threads[je.Thread], ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return tr, nil
}
