package trace

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

// TestTeeFusesCanonicalPair verifies when the fused fast path engages:
// exactly (Measurement|Filter, Recorder) on one shared clock.
func TestTeeFusesCanonicalPair(t *testing.T) {
	clk := clock.NewSystem()
	reg := region.NewRegistry()
	m := measure.NewWithClock(clk, reg)
	rec := NewRecorder(clk)

	if te := NewTee(m, rec); te.fr == nil || te.fm != m {
		t.Error("measurement+recorder on a shared clock must fuse")
	}
	f := measure.NewFilter(m, "x_*")
	if te := NewTee(f, rec); te.fr == nil || te.ff != f {
		t.Error("filter+recorder on a shared clock must fuse")
	}
	if te := NewTee(m, NewRecorder(clock.NewSystem())); te.fr != nil {
		t.Error("different clocks must not fuse")
	}
	if te := NewTee(m, rec, omp.NopListener{}); te.fr != nil {
		t.Error("three listeners must not fuse")
	}
	if te := NewTee(rec, m); te.fr != nil {
		t.Error("recorder-first order must not fuse")
	}
	cm := measure.NewWithClock(clock.Func(func() int64 { return 0 }), reg)
	if te := NewTee(cm, NewRecorder(clock.Func(func() int64 { return 0 }))); te.fr != nil {
		t.Error("non-comparable clocks must not fuse")
	}
}

// fusedRegions interns the regions of the equivalence workload once, so
// both runs (and their traces) share region identity.
type fusedRegions struct {
	par, fn, task, tw *region.Region
}

func newFusedRegions(reg *region.Registry) fusedRegions {
	return fusedRegions{
		par:  reg.Register("eq.par", "fused.go", 1, region.Parallel),
		fn:   reg.Register("eq.fn", "fused.go", 2, region.UserFunction),
		task: reg.Register("eq.task", "fused.go", 3, region.Task),
		tw:   reg.Register("eq.tw", "fused.go", 4, region.Taskwait),
	}
}

// runEquivalenceWorkload executes a deterministic single-thread tasking
// workload (recursive deferred tasks, user functions, taskwaits) on a
// manual clock advanced at fixed points, so two runs produce identical
// event sequences and timestamps.
func runEquivalenceWorkload(l omp.Listener, reg *region.Registry, rs fusedRegions, clk *clock.Manual) {
	rt := omp.NewRuntimeWithRegistry(l, reg)
	rt.Parallel(1, rs.par, func(t *omp.Thread) {
		var recurse func(t *omp.Thread, d int)
		recurse = func(t *omp.Thread, d int) {
			clk.Advance(1)
			instrument(t, rs.fn, func() { clk.Advance(2) })
			if d == 0 {
				return
			}
			for i := 0; i < 2; i++ {
				t.NewTask(rs.task, func(c *omp.Thread) {
					recurse(c, d-1)
				})
			}
			clk.Advance(3)
			t.Taskwait(rs.tw)
		}
		recurse(t, 4)
		// One undeferred task exercises the inline create+begin path.
		t.NewTask(rs.task, func(c *omp.Thread) { clk.Advance(5) }, omp.If(false))
		t.Taskwait(rs.tw)
	})
}

// instrument wraps fn in enter/exit events (pomp.Function equivalent,
// avoiding the import just for this).
func instrument(t *omp.Thread, r *region.Region, fn func()) {
	l := t.Runtime().Listener()
	if l != nil {
		l.Enter(t, r)
	}
	fn()
	if l != nil {
		l.Exit(t, r)
	}
}

// TestFusedTeeMatchesGenericTee runs the same deterministic workload
// once under the fused Tee and once under the generic dispatch loop (a
// third nop listener disables fusing) and requires byte-identical
// profile report JSON, a deeply equal trace, and deeply equal trace
// analysis. Run with -race -cpu 1,4 in CI.
func TestFusedTeeMatchesGenericTee(t *testing.T) {
	reg := region.NewRegistry()
	rs := newFusedRegions(reg)

	run := func(generic bool) ([]byte, *Trace, *Analysis) {
		clk := clock.NewManual(0)
		m := measure.NewWithClock(clk, reg)
		rec := NewRecorder(clk)
		var te *Tee
		if generic {
			te = NewTee(m, rec, omp.NopListener{})
			if te.fr != nil {
				t.Fatal("generic tee unexpectedly fused")
			}
		} else {
			te = NewTee(m, rec)
			if te.fr == nil {
				t.Fatal("canonical pair did not fuse")
			}
		}
		runEquivalenceWorkload(te, reg, rs, clk)
		m.Finish()
		tr := rec.Finish()
		var buf bytes.Buffer
		if err := cube.WriteJSON(&buf, cube.Aggregate(m.Locations())); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), tr, Analyze(tr)
	}

	fusedJSON, fusedTrace, fusedAn := run(false)
	genericJSON, genericTrace, genericAn := run(true)

	if !bytes.Equal(fusedJSON, genericJSON) {
		t.Errorf("report JSON differs between fused and generic tee:\nfused:   %s\ngeneric: %s",
			fusedJSON, genericJSON)
	}
	if !reflect.DeepEqual(fusedTrace, genericTrace) {
		t.Error("recorded traces differ between fused and generic tee")
	}
	if !reflect.DeepEqual(fusedAn, genericAn) {
		t.Errorf("trace analysis differs between fused and generic tee:\nfused:   %+v\ngeneric: %+v",
			fusedAn, genericAn)
	}
	if fusedTrace.NumEvents() == 0 {
		t.Error("equivalence workload recorded no events")
	}
}

// TestFusedTeeRace is the concurrent-registration race test on the
// *fused* path (shared clock), complementing TestRecorderRaceUnderTee
// which exercises the generic path. Event conservation is checked; the
// interesting part runs under -race.
func TestFusedTeeRace(t *testing.T) {
	reg := region.NewRegistry()
	clk := clock.NewSystem()
	m := measure.NewWithClock(clk, reg)
	rec := NewRecorder(clk)
	te := NewTee(m, rec)
	if te.fr == nil {
		t.Fatal("canonical pair did not fuse")
	}
	rt := omp.NewRuntimeWithRegistry(te, reg)
	par := reg.Register("fpar", "fused.go", 10, region.Parallel)
	task := reg.Register("ftask", "fused.go", 11, region.Task)
	tw := reg.Register("ftw", "fused.go", 12, region.Taskwait)

	const producers = 4
	const tasksPer = 100
	rt.Parallel(producers, par, func(th *omp.Thread) {
		for i := 0; i < tasksPer; i++ {
			th.NewTask(task, func(*omp.Thread) {})
		}
		th.Taskwait(tw)
	})
	m.Finish()
	tr := rec.Finish()
	counts := map[EventType]int{}
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			counts[ev.Type]++
		}
	}
	want := producers * tasksPer
	if counts[EvTaskBegin] != want || counts[EvTaskEnd] != want {
		t.Fatalf("task begin/end = %d/%d, want %d/%d",
			counts[EvTaskBegin], counts[EvTaskEnd], want, want)
	}
}

// failingSink fails every write after the first n.
type failingSink struct {
	mu     sync.Mutex
	okLeft int
	calls  int
}

func (s *failingSink) WriteEvents(thread int, evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.okLeft > 0 {
		s.okLeft--
		return nil
	}
	return errors.New("sink full")
}

// TestStreamingErrorLatch verifies the atomic sink-error latch: the
// first failure is latched, later chunks are discarded without calling
// the sink again, and Err reports the first error.
func TestStreamingErrorLatch(t *testing.T) {
	reg := region.NewRegistry()
	work := reg.Register("lw", "fused.go", 20, region.UserFunction)
	sink := &failingSink{okLeft: 1}
	rec := NewStreamingRecorder(clock.NewManual(0), sink, 4)
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("lpar", "fused.go", 21, region.Parallel)
	rt.Parallel(1, par, func(th *omp.Thread) {
		for i := 0; i < 40; i++ { // 80+ events -> many chunk flushes
			instrument(th, work, func() {})
		}
	})
	rec.Finish()
	if err := rec.Err(); err == nil || err.Error() != "sink full" {
		t.Fatalf("Err = %v, want latched sink error", err)
	}
	// One successful write, one failing write; everything after the
	// latch must be dropped without touching the sink.
	if sink.calls != 2 {
		t.Errorf("sink called %d times, want 2 (ok + first failure)", sink.calls)
	}
}
