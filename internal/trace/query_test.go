package trace

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/region"
)

func TestParseWindow(t *testing.T) {
	cases := []struct {
		in       string
		min, max int64
		wantErr  bool
	}{
		{in: "10:20", min: 10, max: 20},
		{in: "-5:5", min: -5, max: 5},
		{in: "10:", min: 10, max: math.MaxInt64},
		{in: ":20", min: math.MinInt64, max: 20},
		{in: ":", min: math.MinInt64, max: math.MaxInt64},
		{in: " 1 : 2 ", min: 1, max: 2},
		{in: "20:10", min: 20, max: 10}, // inverted parses; Query.Empty flags it
		{in: "", wantErr: true},
		{in: "10", wantErr: true},
		{in: "a:b", wantErr: true},
		{in: "1:2:3", wantErr: true}, // trailing garbage in the end bound
	}
	for _, tc := range cases {
		minT, maxT, err := ParseWindow(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseWindow(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (minT != tc.min || maxT != tc.max) {
			t.Errorf("ParseWindow(%q) = (%d, %d), want (%d, %d)", tc.in, minT, maxT, tc.min, tc.max)
		}
	}
}

func TestParseThreadList(t *testing.T) {
	got, err := ParseThreadList("3, 1,2,1,3")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("ParseThreadList = (%v, %v), want sorted deduped [1 2 3]", got, err)
	}
	for _, bad := range []string{"", ",", "1,x", "1.5"} {
		if _, err := ParseThreadList(bad); err == nil {
			t.Errorf("ParseThreadList(%q) accepted", bad)
		}
	}
}

func TestQueryPredicates(t *testing.T) {
	all := Query{}
	if !all.All() || all.Empty() || !all.Match(7, Event{Time: -100}) {
		t.Error("zero query must match everything")
	}
	w := Query{Windowed: true, MinTime: 10, MaxTime: 20}
	if w.All() || w.Empty() {
		t.Error("windowed query misclassified")
	}
	for _, tc := range []struct {
		t    int64
		want bool
	}{{9, false}, {10, true}, {20, true}, {21, false}} {
		if w.MatchTime(tc.t) != tc.want {
			t.Errorf("MatchTime(%d) = %v, want %v (inclusive bounds)", tc.t, !tc.want, tc.want)
		}
	}
	// Overlaps is the chunk-pruning predicate: true iff the ranges touch.
	for _, tc := range []struct {
		lo, hi int64
		want   bool
	}{{0, 9, false}, {0, 10, true}, {15, 16, true}, {20, 30, true}, {21, 30, false}} {
		if w.Overlaps(tc.lo, tc.hi) != tc.want {
			t.Errorf("Overlaps(%d, %d) = %v, want %v", tc.lo, tc.hi, !tc.want, tc.want)
		}
	}
	inv := Query{Windowed: true, MinTime: 20, MaxTime: 10}
	if !inv.Empty() || inv.MatchTime(15) {
		t.Error("inverted window must be empty")
	}
	sub := Query{Threads: []int{1, 3}}
	if sub.MatchThread(2) || !sub.MatchThread(3) || sub.All() {
		t.Error("thread subset misapplied")
	}
}

func queryTestTrace() *Trace {
	reg := region.NewRegistry()
	task := reg.Register("q.task", "q.go", 1, region.Task)
	mk := func(times ...int64) []Event {
		var evs []Event
		var id uint64
		for _, ts := range times {
			id++
			evs = append(evs,
				Event{Time: ts, Type: EvTaskBegin, Region: task, TaskID: id},
				Event{Time: ts + 1, Type: EvTaskEnd, Region: task, TaskID: id},
			)
		}
		return evs
	}
	return &Trace{Threads: map[int][]Event{
		0: mk(10, 30, 50),
		1: mk(20, 40),
		2: mk(100),
	}}
}

func TestQueryFilter(t *testing.T) {
	tr := queryTestTrace()
	q := Query{Windowed: true, MinTime: 25, MaxTime: 60, Threads: []int{0, 1}}
	got := q.Filter(tr)
	if len(got.Threads) != 2 {
		t.Fatalf("filtered threads = %d, want 2", len(got.Threads))
	}
	for tid, evs := range got.Threads {
		for _, ev := range evs {
			if !q.Match(tid, ev) {
				t.Fatalf("filter kept non-matching event %+v on thread %d", ev, tid)
			}
		}
	}
	// Thread 2 (outside subset) and threads left empty are absent.
	if _, ok := got.Threads[2]; ok {
		t.Error("filter kept an excluded thread")
	}
	if n := (Query{Windowed: true, MinTime: 1, MaxTime: 2}).Filter(tr); len(n.Threads) != 0 {
		t.Error("out-of-range window must drop every thread entirely")
	}
	// Filtering must not alias the input's slices.
	all := Query{}.Filter(tr)
	all.Threads[0][0].Time = -999
	if tr.Threads[0][0].Time == -999 {
		t.Error("Filter aliases the input trace")
	}
}

// TestAnalyzeQueryMatchesFilterReference pins the defining equivalence
// at the trace layer: AnalyzeQuery == AnalyzeParallel(Filter(tr)) for
// windows, subsets, empty and out-of-range queries, at workers 1 and 4.
func TestAnalyzeQueryMatchesFilterReference(t *testing.T) {
	tr := queryTestTrace()
	queries := []Query{
		{},
		{Windowed: true, MinTime: 25, MaxTime: 60},
		{Windowed: true, MinTime: 0, MaxTime: 15},
		{Windowed: true, MinTime: 500, MaxTime: 900}, // out of range
		{Windowed: true, MinTime: 60, MaxTime: 25},   // inverted: empty
		{Threads: []int{1}},
		{Threads: []int{9}}, // nonexistent
		{Windowed: true, MinTime: 25, MaxTime: 60, Threads: []int{0, 2}},
	}
	for _, q := range queries {
		want := Analyze(q.Filter(tr))
		for _, workers := range []int{1, 4} {
			if got := AnalyzeQuery(tr, q, workers); !reflect.DeepEqual(got, want) {
				t.Errorf("AnalyzeQuery(%v, workers=%d) != Analyze(Filter):\n got %+v\nwant %+v", q, workers, got, want)
			}
		}
		// The streaming observer path must agree too.
		sa := NewStreamAnalyzer()
		for tid, evs := range tr.Threads {
			for _, ev := range evs {
				sa.ObserveQuery(tid, ev, q)
			}
		}
		if got := sa.Finish(); !reflect.DeepEqual(got, want) {
			t.Errorf("ObserveQuery(%v) != Analyze(Filter):\n got %+v\nwant %+v", q, got, want)
		}
		// And the batch observer, batches delivered per thread in order.
		pa := NewParallelAnalyzer()
		for tid, evs := range tr.Threads {
			for i := 0; i < len(evs); i += 3 {
				end := i + 3
				if end > len(evs) {
					end = len(evs)
				}
				pa.ObserveBatchQuery(tid, evs[i:end], q)
			}
		}
		if got := pa.Finish(); !reflect.DeepEqual(got, want) {
			t.Errorf("ObserveBatchQuery(%v) != Analyze(Filter):\n got %+v\nwant %+v", q, got, want)
		}
	}
}
