package trace

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
)

// flightEvent records one event with a deterministic timestamp on the
// given thread.
func flightEvent(r *Recorder, th *omp.Thread, ts int64) {
	r.recordAt(th, ts, EvEnter, nil, 0)
}

func TestFlightRecorderEvictsOldestExactly(t *testing.T) {
	// ring=3 chunks of 4 events: after 20 events exactly 5 chunks were
	// sealed, the ring retains the newest 3, so chunks 0 and 1 (events
	// 0..7) were dropped.
	r := NewFlightRecorder(clock.NewManual(0), 3, 4)
	th := &omp.Thread{ID: 0}
	for ts := int64(0); ts < 20; ts++ {
		flightEvent(r, th, ts)
	}

	tr, st := r.FlightSnapshot()
	if st.RingChunks != 3 || st.ChunkEvents != 4 {
		t.Fatalf("config in stats = %dx%d, want 3x4", st.RingChunks, st.ChunkEvents)
	}
	if st.DroppedChunks != 2 || st.DroppedEvents != 8 {
		t.Fatalf("dropped = %d chunks / %d events, want 2/8", st.DroppedChunks, st.DroppedEvents)
	}
	if st.RetainedEvents != 12 {
		t.Fatalf("retained = %d, want 12", st.RetainedEvents)
	}
	want := make([]Event, 0, 12)
	for ts := int64(8); ts < 20; ts++ {
		want = append(want, Event{Time: ts, Type: EvEnter})
	}
	if !reflect.DeepEqual(tr.Threads[0], want) {
		t.Fatalf("retained window = %v, want times 8..19 in order", tr.Threads[0])
	}
	if len(st.Threads) != 1 || st.Threads[0] != (FlightThreadStats{Thread: 0, RetainedEvents: 12, DroppedEvents: 8, DroppedChunks: 2}) {
		t.Fatalf("per-thread stats = %+v", st.Threads)
	}

	// The stats-only snapshot agrees and does not disturb recording.
	if now := r.FlightStatsNow(); !reflect.DeepEqual(now, st) {
		t.Fatalf("FlightStatsNow = %+v, want %+v", now, st)
	}
	flightEvent(r, th, 20)
	if st2 := r.FlightStatsNow(); st2.RetainedEvents != 13 {
		t.Fatalf("retained after one more event = %d, want 13", st2.RetainedEvents)
	}
}

func TestFlightRecorderPartialChunkRetained(t *testing.T) {
	r := NewFlightRecorder(clock.NewManual(0), 2, 4)
	th := &omp.Thread{ID: 3}
	for ts := int64(0); ts < 6; ts++ { // one sealed chunk + 2 partial
		flightEvent(r, th, ts)
	}
	tr, st := r.FlightSnapshot()
	if st.RetainedEvents != 6 || st.DroppedEvents != 0 || st.DroppedChunks != 0 {
		t.Fatalf("stats = %+v, want 6 retained, nothing dropped", st)
	}
	evs := tr.Threads[3]
	if len(evs) != 6 {
		t.Fatalf("window holds %d events, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != int64(i) {
			t.Fatalf("event %d time = %d, want %d (ordered, partial chunk last)", i, ev.Time, i)
		}
	}
}

func TestFlightRecorderDefaultsAndAccessors(t *testing.T) {
	r := NewFlightRecorder(clock.NewManual(0), 0, 0)
	if !r.FlightEnabled() {
		t.Fatal("FlightEnabled = false for a flight recorder")
	}
	if r.FlightRingChunks() != DefaultFlightRingChunks {
		t.Fatalf("default ring = %d, want %d", r.FlightRingChunks(), DefaultFlightRingChunks)
	}
	if r.FlightChunkEvents() != DefaultChunkEvents {
		t.Fatalf("default chunk = %d, want %d", r.FlightChunkEvents(), DefaultChunkEvents)
	}
	plain := NewRecorder(clock.NewManual(0))
	if plain.FlightEnabled() || plain.FlightRingChunks() != 0 || plain.FlightChunkEvents() != 0 {
		t.Fatal("plain recorder reports flight configuration")
	}
}

func TestFlightRecorderFinishReturnsWindowAndResets(t *testing.T) {
	r := NewFlightRecorder(clock.NewManual(0), 2, 2)
	th := &omp.Thread{ID: 0}
	for ts := int64(0); ts < 7; ts++ {
		flightEvent(r, th, ts)
	}
	tr := r.Finish()
	// 3 sealed chunks, ring keeps 2 (times 2..5) + partial (time 6).
	if got := len(tr.Threads[0]); got != 5 {
		t.Fatalf("finished window = %d events, want 5", got)
	}
	if tr.Threads[0][0].Time != 2 || tr.Threads[0][4].Time != 6 {
		t.Fatalf("window spans %d..%d, want 2..6", tr.Threads[0][0].Time, tr.Threads[0][4].Time)
	}
	// Finish reset the recorder: counters start over.
	th2 := &omp.Thread{ID: 0}
	flightEvent(r, th2, 100)
	if st := r.FlightStatsNow(); st.RetainedEvents != 1 || st.DroppedEvents != 0 {
		t.Fatalf("stats after Finish+1 event = %+v, want fresh", st)
	}
}

// TestFlightRecorderBoundedMemory is the issue's acceptance scenario:
// 10 million events through a ring of 8 stay within the fixed window
// bound, with every evicted event accounted for — and steady-state
// recording (ring already full) does not allocate.
func TestFlightRecorderBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-event soak skipped in -short")
	}
	const ring, chunk, total = 8, 256, 10_000_000
	r := NewFlightRecorder(clock.NewManual(0), ring, chunk)
	th := &omp.Thread{ID: 0}
	for ts := int64(0); ts < total; ts++ {
		flightEvent(r, th, ts)
	}
	st := r.FlightStatsNow()
	bound := (ring + 1) * chunk // ring plus the partial chunk being filled
	if st.RetainedEvents > bound {
		t.Fatalf("retained %d events, bound is %d", st.RetainedEvents, bound)
	}
	if got := uint64(st.RetainedEvents) + st.DroppedEvents; got != total {
		t.Fatalf("retained+dropped = %d, want %d (every event accounted for)", got, total)
	}
	tr, _ := r.FlightSnapshot()
	evs := tr.Threads[0]
	if int64(evs[len(evs)-1].Time) != total-1 {
		t.Fatalf("window does not end at the newest event: %d", evs[len(evs)-1].Time)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time != evs[i-1].Time+1 {
			t.Fatalf("window not contiguous at %d: %d after %d", i, evs[i].Time, evs[i-1].Time)
		}
	}

	// Steady state: the ring is full, so sealing reuses the evicted
	// chunk's backing array — no allocation per event.
	ts := int64(total)
	if allocs := testing.AllocsPerRun(4096, func() {
		flightEvent(r, th, ts)
		ts++
	}); allocs != 0 {
		t.Fatalf("steady-state flight recording allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestFlightRecorderConcurrentSnapshot dumps while 4 threads record
// (run under -race): snapshots must be internally consistent, and the
// final quiesced snapshot must equal the reference window computed from
// what each goroutine wrote.
func TestFlightRecorderConcurrentSnapshot(t *testing.T) {
	const threads, perThread, ring, chunk = 4, 5000, 4, 64
	reg := region.NewRegistry()
	work := reg.Register("work", "f.go", 1, region.Task)
	r := NewFlightRecorder(clock.NewManual(0), ring, chunk)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := &omp.Thread{ID: id}
			<-start
			for ts := int64(0); ts < perThread; ts++ {
				r.recordAt(th, ts, EvEnter, work, uint64(id))
			}
		}(id)
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr, st := r.FlightSnapshot()
			got := 0
			for _, evs := range tr.Threads {
				got += len(evs)
				for i := 1; i < len(evs); i++ {
					if evs[i].Time < evs[i-1].Time {
						t.Error("snapshot window not time-ordered")
						return
					}
				}
			}
			if got != st.RetainedEvents {
				t.Errorf("snapshot has %d events but stats claim %d", got, st.RetainedEvents)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(stop)
	snaps.Wait()

	// Quiesced: the window is exactly the newest events of each thread.
	tr, st := r.FlightSnapshot()
	for id := 0; id < threads; id++ {
		evs := tr.Threads[id]
		first := perThread - len(evs)
		want := make([]Event, 0, len(evs))
		for ts := int64(first); ts < perThread; ts++ {
			want = append(want, Event{Time: ts, Type: EvEnter, Region: work, TaskID: uint64(id)})
		}
		if !reflect.DeepEqual(evs, want) {
			t.Fatalf("thread %d window diverges from reference (len %d)", id, len(evs))
		}
	}
	if got := uint64(st.RetainedEvents) + st.DroppedEvents; got != threads*perThread {
		t.Fatalf("retained+dropped = %d, want %d", got, threads*perThread)
	}
}
