package trace

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/region"
	"repro/internal/stats"
)

// Analysis holds the trace-derived metrics the paper's conclusion calls
// for: "the time between the enter of the last synchronization point and
// the task switch event would be of interest. In this way it would be
// possible to calculate the ratio of overall management time to
// exclusive execution time for tasks."
type Analysis struct {
	// PerThread maps thread ID to its metrics.
	PerThread map[int]*ThreadAnalysis
	// DispatchLatency aggregates, over all threads, the time from
	// entering a scheduling point (or finishing the previous task
	// fragment) to the next task-begin/switch — the runtime's task
	// dispatch/management latency.
	DispatchLatency stats.Dur
	// TaskExecution aggregates task fragment durations (begin/switch to
	// end/switch) over all threads.
	TaskExecution stats.Dur
	// ManagementRatio is total dispatch latency over total task
	// execution time (the paper's proposed ratio); 0 when no task ran.
	ManagementRatio float64
	// CreationTime aggregates task-creation region durations.
	CreationTime stats.Dur
	// Switches counts task switch transitions observed.
	Switches int64
}

// ThreadAnalysis carries the per-thread breakdown.
type ThreadAnalysis struct {
	ThreadID        int
	DispatchLatency stats.Dur
	TaskExecution   stats.Dur
	CreationTime    stats.Dur
	Fragments       int64
	// SyncRegionTime is total time inside scheduling-point regions
	// (taskwait/barrier), including task execution within them.
	SyncRegionTime int64
	// IdleInSync is sync-region time not covered by task fragments or
	// dispatch: pure waiting with an empty queue.
	IdleInSync int64
}

// Analyze derives the metrics from a recorded trace. Each thread's
// stream is processed independently (the analysis needs no cross-thread
// ordering, like Scalasca's parallel trace analysis). It is a
// convenience over StreamAnalyzer for traces already in memory.
func Analyze(tr *Trace) *Analysis {
	sa := NewStreamAnalyzer()
	for tid, events := range tr.Threads {
		st := sa.state(tid) // hoisted: one lookup per thread, not per event
		for _, ev := range events {
			st.step(ev)
		}
	}
	return sa.Finish()
}

// StreamAnalyzer is the single-pass incremental form of Analyze: feed
// events with Observe as they are read (or recorded) and call Finish at
// end of stream. Per-thread streams must be fed in order, but events of
// different threads may be interleaved arbitrarily — exactly the layout
// of an otf2 archive's chunk sequence — so analysis of an on-disk trace
// runs in O(threads) state, independent of trace length.
type StreamAnalyzer struct {
	threads map[int]*threadState
}

// NewStreamAnalyzer returns an analyzer with no events observed yet.
func NewStreamAnalyzer() *StreamAnalyzer {
	return &StreamAnalyzer{threads: make(map[int]*threadState)}
}

// Observe feeds one event of thread tid to the analysis. It is not safe
// for concurrent use.
func (sa *StreamAnalyzer) Observe(tid int, ev Event) {
	sa.state(tid).step(ev)
}

// state returns thread tid's scan state, creating it on first use.
func (sa *StreamAnalyzer) state(tid int) *threadState {
	st, ok := sa.threads[tid]
	if !ok {
		st = &threadState{ta: &ThreadAnalysis{ThreadID: tid}}
		sa.threads[tid] = st
	}
	return st
}

// Finish aggregates the per-thread state machines into the final
// Analysis. The analyzer must not be reused afterwards.
func (sa *StreamAnalyzer) Finish() *Analysis { return finishStates(sa.threads) }

// finishStates merges per-thread scan states into the final Analysis.
// Threads are merged in ascending ID order; the stats.Dur merge is
// commutative over exact int64 sums, so this yields the same Analysis
// no matter how the states were produced — the property that makes the
// parallel analyzers reflect.DeepEqual-identical to the sequential one.
func finishStates(threads map[int]*threadState) *Analysis {
	a := &Analysis{PerThread: make(map[int]*ThreadAnalysis, len(threads))}
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		st := threads[tid]
		a.PerThread[tid] = st.ta
		a.DispatchLatency.Merge(st.ta.DispatchLatency)
		a.TaskExecution.Merge(st.ta.TaskExecution)
		a.CreationTime.Merge(st.ta.CreationTime)
		a.Switches += st.ta.Fragments
	}
	if a.TaskExecution.Sum > 0 {
		a.ManagementRatio = float64(a.DispatchLatency.Sum) / float64(a.TaskExecution.Sum)
	}
	return a
}

// ParallelAnalyzer is the concurrency-safe form of StreamAnalyzer for
// sharded trace analysis: goroutines may feed batches of different
// threads concurrently, as long as each thread's stream is fed in order
// and by at most one goroutine at a time (exactly the guarantee a
// per-thread shard in a decode pipeline provides — Scalasca's parallel
// trace analysis works the same way, one analysis process per trace
// location). Finish merges the shards deterministically; the result is
// reflect.DeepEqual-identical to a sequential Analyze of the same
// events.
type ParallelAnalyzer struct {
	mu      sync.Mutex
	threads map[int]*threadState
}

// NewParallelAnalyzer returns an analyzer with no events observed yet.
func NewParallelAnalyzer() *ParallelAnalyzer {
	return &ParallelAnalyzer{threads: make(map[int]*threadState)}
}

// ObserveBatch feeds one in-order run of thread tid's events. The lock
// covers only the shard lookup; the per-event scan runs unlocked, owned
// by the calling goroutine under the per-thread serialization contract.
func (pa *ParallelAnalyzer) ObserveBatch(tid int, events []Event) {
	pa.mu.Lock()
	st, ok := pa.threads[tid]
	if !ok {
		st = &threadState{ta: &ThreadAnalysis{ThreadID: tid}}
		pa.threads[tid] = st
	}
	pa.mu.Unlock()
	for i := range events {
		st.step(events[i])
	}
}

// Finish aggregates the shards into the final Analysis. All ObserveBatch
// calls must have completed; the analyzer must not be reused afterwards.
func (pa *ParallelAnalyzer) Finish() *Analysis { return finishStates(pa.threads) }

// AnalyzeParallel derives the metrics from an in-memory trace using up
// to workers goroutines, one per trace thread at a time (per-thread
// streams are independent, so thread-level sharding is safe). workers
// <= 0 uses GOMAXPROCS. The result is reflect.DeepEqual-identical to
// Analyze(tr).
func AnalyzeParallel(tr *Trace, workers int) *Analysis {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(tr.Threads) <= 1 {
		return Analyze(tr)
	}
	pa := NewParallelAnalyzer()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for tid, events := range tr.Threads {
		wg.Add(1)
		sem <- struct{}{}
		go func(tid int, events []Event) {
			defer wg.Done()
			pa.ObserveBatch(tid, events)
			<-sem
		}(tid, events)
	}
	wg.Wait()
	return pa.Finish()
}

// MergeAnalyses combines the analyses of disjoint recordings — the
// per-process shards of a fleet experiment. The aggregate durations
// merge exactly (stats.Dur addition is commutative and lossless, the
// same property that makes the parallel analyzers deterministic) and
// the management ratio is recomputed from the merged sums. PerThread
// is left empty: thread IDs of different processes name different
// locations, so a fleet-wide per-thread map would collide — inspect
// the per-shard analyses for the per-location breakdown.
func MergeAnalyses(as ...*Analysis) *Analysis {
	m := &Analysis{PerThread: make(map[int]*ThreadAnalysis)}
	for _, a := range as {
		if a == nil {
			continue
		}
		m.DispatchLatency.Merge(a.DispatchLatency)
		m.TaskExecution.Merge(a.TaskExecution)
		m.CreationTime.Merge(a.CreationTime)
		m.Switches += a.Switches
	}
	if m.TaskExecution.Sum > 0 {
		m.ManagementRatio = float64(m.DispatchLatency.Sum) / float64(m.TaskExecution.Sum)
	}
	return m
}

// threadState is the per-thread scan state machine. The sync-region
// bookkeeping (nesting, readiness, covered vs. idle time) lives in the
// embedded SyncCoverage — the same engine the bottleneck classifier
// drives, so both layers share one definition of sync coverage.
type threadState struct {
	ta *ThreadAnalysis

	sc            SyncCoverage
	fragmentStart int64
	inFragment    bool
	createStart   int64
	inCreate      bool
}

func schedulingPoint(r *region.Region) bool {
	if r == nil {
		return false
	}
	switch r.Type {
	case region.Taskwait, region.Barrier, region.ImplicitBarrier:
		return true
	}
	return false
}

func (st *threadState) endFragment(t int64) {
	if st.inFragment {
		d := t - st.fragmentStart
		st.ta.TaskExecution.Add(d)
		st.sc.Cover(d)
		st.ta.Fragments++
		st.inFragment = false
	}
}

func (st *threadState) beginFragment(t int64) {
	if _, d, ok := st.sc.TakeDispatch(t); ok {
		st.ta.DispatchLatency.Add(d)
	}
	st.fragmentStart = t
	st.inFragment = true
}

func (st *threadState) step(ev Event) {
	switch ev.Type {
	case EvEnter:
		if schedulingPoint(ev.Region) {
			// Entering a scheduling point makes the thread ready to
			// pick up tasks: the paper's "enter of the last
			// synchronization point".
			st.sc.EnterSync(ev.Time)
		}
	case EvExit:
		if schedulingPoint(ev.Region) {
			if total, idle, closed := st.sc.ExitSync(ev.Time); closed {
				st.ta.SyncRegionTime += total
				if idle > 0 {
					st.ta.IdleInSync += idle
				}
			}
		}
	case EvTaskCreateBegin:
		st.createStart = ev.Time
		st.inCreate = true
	case EvTaskCreateEnd:
		if st.inCreate {
			st.ta.CreationTime.Add(ev.Time - st.createStart)
			st.inCreate = false
		}
	case EvTaskBegin:
		// Beginning a task while a fragment is open means the open
		// task was suspended at a scheduling point: the begin event
		// is the suspension boundary (the trace carries no separate
		// suspend record, as in the paper's instrumentation).
		st.endFragment(ev.Time)
		st.beginFragment(ev.Time)
	case EvTaskEnd:
		st.endFragment(ev.Time)
		// After a task ends inside a sync region the thread is
		// immediately ready for the next dispatch.
		if st.sc.Depth > 0 {
			st.sc.MarkReady(ev.Time)
		}
	case EvTaskSwitch:
		// A switch ends the current fragment (if any) and begins a
		// fragment of the resumed task, unless it resumes the
		// implicit task (TaskID 0, Region nil).
		st.endFragment(ev.Time)
		if ev.TaskID != 0 {
			st.beginFragment(ev.Time)
		} else if st.sc.Depth > 0 {
			st.sc.MarkReady(ev.Time)
		}
	}
}

// Format writes the analysis in a human-readable layout.
func (a *Analysis) Format(w io.Writer) {
	fmt.Fprintln(w, "Trace analysis (paper §VII: management vs. execution time)")
	fmt.Fprintf(w, "  task fragments executed: %d\n", a.Switches)
	fmt.Fprintf(w, "  task execution:    %s\n", a.TaskExecution.String())
	fmt.Fprintf(w, "  dispatch latency:  %s\n", a.DispatchLatency.String())
	fmt.Fprintf(w, "  task creation:     %s\n", a.CreationTime.String())
	fmt.Fprintf(w, "  management/execution ratio: %.4f\n", a.ManagementRatio)
	ids := make([]int, 0, len(a.PerThread))
	for id := range a.PerThread {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ta := a.PerThread[id]
		fmt.Fprintf(w, "  thread %d: fragments=%d exec=%s dispatch=%s sync=%s idle-in-sync=%s\n",
			id, ta.Fragments,
			stats.FormatNs(ta.TaskExecution.Sum),
			stats.FormatNs(ta.DispatchLatency.Sum),
			stats.FormatNs(ta.SyncRegionTime),
			stats.FormatNs(ta.IdleInSync))
	}
}
