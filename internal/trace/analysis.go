package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/region"
	"repro/internal/stats"
)

// Analysis holds the trace-derived metrics the paper's conclusion calls
// for: "the time between the enter of the last synchronization point and
// the task switch event would be of interest. In this way it would be
// possible to calculate the ratio of overall management time to
// exclusive execution time for tasks."
type Analysis struct {
	// PerThread maps thread ID to its metrics.
	PerThread map[int]*ThreadAnalysis
	// DispatchLatency aggregates, over all threads, the time from
	// entering a scheduling point (or finishing the previous task
	// fragment) to the next task-begin/switch — the runtime's task
	// dispatch/management latency.
	DispatchLatency stats.Dur
	// TaskExecution aggregates task fragment durations (begin/switch to
	// end/switch) over all threads.
	TaskExecution stats.Dur
	// ManagementRatio is total dispatch latency over total task
	// execution time (the paper's proposed ratio); 0 when no task ran.
	ManagementRatio float64
	// CreationTime aggregates task-creation region durations.
	CreationTime stats.Dur
	// Switches counts task switch transitions observed.
	Switches int64
}

// ThreadAnalysis carries the per-thread breakdown.
type ThreadAnalysis struct {
	ThreadID        int
	DispatchLatency stats.Dur
	TaskExecution   stats.Dur
	CreationTime    stats.Dur
	Fragments       int64
	// SyncRegionTime is total time inside scheduling-point regions
	// (taskwait/barrier), including task execution within them.
	SyncRegionTime int64
	// IdleInSync is sync-region time not covered by task fragments or
	// dispatch: pure waiting with an empty queue.
	IdleInSync int64
}

// Analyze derives the metrics from a recorded trace. Each thread's
// stream is processed independently (the analysis needs no cross-thread
// ordering, like Scalasca's parallel trace analysis).
func Analyze(tr *Trace) *Analysis {
	a := &Analysis{PerThread: make(map[int]*ThreadAnalysis, len(tr.Threads))}
	for tid, events := range tr.Threads {
		ta := analyzeThread(tid, events)
		a.PerThread[tid] = ta
		a.DispatchLatency.Merge(ta.DispatchLatency)
		a.TaskExecution.Merge(ta.TaskExecution)
		a.CreationTime.Merge(ta.CreationTime)
		a.Switches += ta.Fragments
	}
	if a.TaskExecution.Sum > 0 {
		a.ManagementRatio = float64(a.DispatchLatency.Sum) / float64(a.TaskExecution.Sum)
	}
	return a
}

// analyzeThread walks one thread's event sequence.
func analyzeThread(tid int, events []Event) *ThreadAnalysis {
	ta := &ThreadAnalysis{ThreadID: tid}

	// State while scanning.
	var (
		syncDepth      int   // nesting of scheduling-point regions
		readyAt        int64 // when the thread last became ready to dispatch
		readyValid     bool
		fragmentStart  int64
		inFragment     bool
		createStart    int64
		inCreate       bool
		syncEnter      int64
		taskTimeInSync int64 // fragment+dispatch time inside current sync
	)

	schedulingPoint := func(r *region.Region) bool {
		if r == nil {
			return false
		}
		switch r.Type {
		case region.Taskwait, region.Barrier, region.ImplicitBarrier:
			return true
		}
		return false
	}

	endFragment := func(t int64) {
		if inFragment {
			d := t - fragmentStart
			ta.TaskExecution.Add(d)
			if syncDepth > 0 {
				taskTimeInSync += d
			}
			ta.Fragments++
			inFragment = false
		}
	}
	beginFragment := func(t int64) {
		if readyValid {
			d := t - readyAt
			ta.DispatchLatency.Add(d)
			if syncDepth > 0 {
				taskTimeInSync += d
			}
			readyValid = false
		}
		fragmentStart = t
		inFragment = true
	}

	for _, ev := range events {
		switch ev.Type {
		case EvEnter:
			if schedulingPoint(ev.Region) {
				if syncDepth == 0 {
					syncEnter = ev.Time
					taskTimeInSync = 0
				}
				syncDepth++
				// Entering a scheduling point makes the thread ready to
				// pick up tasks: the paper's "enter of the last
				// synchronization point".
				readyAt = ev.Time
				readyValid = true
			}
		case EvExit:
			if schedulingPoint(ev.Region) {
				syncDepth--
				readyValid = false
				if syncDepth == 0 {
					total := ev.Time - syncEnter
					ta.SyncRegionTime += total
					if idle := total - taskTimeInSync; idle > 0 {
						ta.IdleInSync += idle
					}
				}
			}
		case EvTaskCreateBegin:
			createStart = ev.Time
			inCreate = true
		case EvTaskCreateEnd:
			if inCreate {
				ta.CreationTime.Add(ev.Time - createStart)
				inCreate = false
			}
		case EvTaskBegin:
			// Beginning a task while a fragment is open means the open
			// task was suspended at a scheduling point: the begin event
			// is the suspension boundary (the trace carries no separate
			// suspend record, as in the paper's instrumentation).
			endFragment(ev.Time)
			beginFragment(ev.Time)
		case EvTaskEnd:
			endFragment(ev.Time)
			// After a task ends inside a sync region the thread is
			// immediately ready for the next dispatch.
			if syncDepth > 0 {
				readyAt = ev.Time
				readyValid = true
			}
		case EvTaskSwitch:
			// A switch ends the current fragment (if any) and begins a
			// fragment of the resumed task, unless it resumes the
			// implicit task (TaskID 0, Region nil).
			endFragment(ev.Time)
			if ev.TaskID != 0 {
				beginFragment(ev.Time)
			} else if syncDepth > 0 {
				readyAt = ev.Time
				readyValid = true
			}
		}
	}
	return ta
}

// Format writes the analysis in a human-readable layout.
func (a *Analysis) Format(w io.Writer) {
	fmt.Fprintln(w, "Trace analysis (paper §VII: management vs. execution time)")
	fmt.Fprintf(w, "  task fragments executed: %d\n", a.Switches)
	fmt.Fprintf(w, "  task execution:    %s\n", a.TaskExecution.String())
	fmt.Fprintf(w, "  dispatch latency:  %s\n", a.DispatchLatency.String())
	fmt.Fprintf(w, "  task creation:     %s\n", a.CreationTime.String())
	fmt.Fprintf(w, "  management/execution ratio: %.4f\n", a.ManagementRatio)
	ids := make([]int, 0, len(a.PerThread))
	for id := range a.PerThread {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ta := a.PerThread[id]
		fmt.Fprintf(w, "  thread %d: fragments=%d exec=%s dispatch=%s sync=%s idle-in-sync=%s\n",
			id, ta.Fragments,
			stats.FormatNs(ta.TaskExecution.Sum),
			stats.FormatNs(ta.DispatchLatency.Sum),
			stats.FormatNs(ta.SyncRegionTime),
			stats.FormatNs(ta.IdleInSync))
	}
}
