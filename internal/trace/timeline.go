package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/region"
	"repro/internal/stats"
)

// Timeline renders a recorded trace as per-thread lanes — the plain-text
// counterpart of the Vampir task timelines of Schmidl et al. [16] that
// the paper builds on ("visualized trace data of tasks with Vampir").
// Each lane shows, per time bucket, what the thread was predominantly
// doing: executing a task fragment, creating tasks, inside a scheduling
// point without a task (waiting/management), in other instrumented code,
// or outside the parallel region.

// laneState classifies what a thread does at an instant.
type laneState uint8

const (
	laneOutside laneState = iota // before ThreadBegin / after ThreadEnd
	laneCompute                  // implicit task user code
	laneCreate                   // inside a task-creation region
	laneSync                     // inside a scheduling point, no task
	laneTask                     // executing an explicit task fragment
)

var laneGlyphs = map[laneState]byte{
	laneOutside: ' ',
	laneCompute: '-',
	laneCreate:  'c',
	laneSync:    '.',
	laneTask:    '#',
}

// TimelineOptions controls rendering.
type TimelineOptions struct {
	// Width is the number of character buckets (default 100).
	Width int
	// ShowLegend appends the glyph legend (default true via Render).
	ShowLegend bool
}

// interval is a typed span on one thread's timeline.
type interval struct {
	start, end int64
	state      laneState
}

// threadIntervals reconstructs the state spans of one thread.
func threadIntervals(events []Event) []interval {
	var out []interval
	if len(events) == 0 {
		return out
	}
	cur := laneOutside
	curStart := events[0].Time
	var syncDepth, taskDepth, createDepth int

	stateNow := func() laneState {
		switch {
		case taskDepth > 0:
			return laneTask
		case createDepth > 0:
			return laneCreate
		case syncDepth > 0:
			return laneSync
		default:
			return laneCompute
		}
	}
	transition := func(t int64, st laneState) {
		if st == cur {
			return
		}
		if t > curStart {
			out = append(out, interval{curStart, t, cur})
		}
		cur = st
		curStart = t
	}

	for _, ev := range events {
		switch ev.Type {
		case EvThreadBegin:
			transition(ev.Time, laneCompute)
		case EvThreadEnd:
			transition(ev.Time, laneOutside)
		case EvEnter:
			if isSchedulingPoint(ev.Region) {
				syncDepth++
				transition(ev.Time, stateNow())
			}
		case EvExit:
			if isSchedulingPoint(ev.Region) {
				syncDepth--
				transition(ev.Time, stateNow())
			}
		case EvTaskCreateBegin:
			createDepth++
			transition(ev.Time, stateNow())
		case EvTaskCreateEnd:
			createDepth--
			transition(ev.Time, stateNow())
		case EvTaskBegin:
			taskDepth++
			transition(ev.Time, stateNow())
		case EvTaskEnd:
			if taskDepth > 0 {
				taskDepth--
			}
			transition(ev.Time, stateNow())
		case EvTaskSwitch:
			// Resuming an explicit task keeps laneTask; back to implicit
			// lowers to the surrounding state. taskDepth tracks nesting
			// via begin/end; a switch to implicit with depth 0 is a no-op.
			if ev.TaskID != 0 {
				if taskDepth == 0 {
					taskDepth = 1
				}
			}
			transition(ev.Time, stateNow())
		}
	}
	if last := events[len(events)-1].Time; last > curStart {
		out = append(out, interval{curStart, last, cur})
	}
	return out
}

func isSchedulingPoint(r *region.Region) bool {
	if r == nil {
		return false
	}
	switch r.Type {
	case region.Taskwait, region.Barrier, region.ImplicitBarrier:
		return true
	}
	return false
}

// RenderTimeline writes the ASCII timeline of the trace.
func RenderTimeline(w io.Writer, tr *Trace, opt TimelineOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	// Global time range.
	var tMin, tMax int64
	first := true
	for _, evs := range tr.Threads {
		if len(evs) == 0 {
			continue
		}
		if first || evs[0].Time < tMin {
			tMin = evs[0].Time
		}
		if first || evs[len(evs)-1].Time > tMax {
			tMax = evs[len(evs)-1].Time
		}
		first = false
	}
	if first || tMax <= tMin {
		_, err := fmt.Fprintln(w, "timeline: empty trace")
		return err
	}
	span := tMax - tMin
	bucket := func(t int64) int {
		b := int((t - tMin) * int64(width) / span)
		if b >= width {
			b = width - 1
		}
		return b
	}

	ids := tr.ThreadIDs()
	ew := &tlErrWriter{w: w}
	fmt.Fprintf(ew, "timeline: %s total, %d threads, %d buckets (%s/bucket)\n",
		stats.FormatNs(span), len(ids), width, stats.FormatNs(span/int64(width)))
	for _, tid := range ids {
		lane := make([]byte, width)
		weight := make([][5]int64, width) // per-bucket time per state
		for i := range lane {
			lane[i] = ' '
		}
		for _, iv := range threadIntervals(tr.Threads[tid]) {
			b0, b1 := bucket(iv.start), bucket(iv.end)
			for b := b0; b <= b1; b++ {
				// Overlap of the interval with bucket b.
				bs := tMin + int64(b)*span/int64(width)
				be := tMin + int64(b+1)*span/int64(width)
				lo, hi := iv.start, iv.end
				if bs > lo {
					lo = bs
				}
				if be < hi {
					hi = be
				}
				if hi > lo {
					weight[b][iv.state] += hi - lo
				}
			}
		}
		for b := 0; b < width; b++ {
			best := laneOutside
			var bestW int64
			for st := laneOutside; st <= laneTask; st++ {
				if weight[b][st] > bestW {
					bestW = weight[b][st]
					best = st
				}
			}
			lane[b] = laneGlyphs[best]
		}
		fmt.Fprintf(ew, "thread %2d |%s|\n", tid, string(lane))
	}
	if opt.ShowLegend {
		fmt.Fprintln(ew, "legend: '#' task execution  'c' task creation  '.' scheduling point (wait/mgmt)  '-' implicit task code  ' ' outside")
	}
	return ew.err
}

type tlErrWriter struct {
	w   io.Writer
	err error
}

func (e *tlErrWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// Utilization summarizes the per-thread share of time per state over the
// whole trace — a numeric companion to the timeline.
type Utilization struct {
	ThreadID  int
	TaskPct   float64
	SyncPct   float64
	CreatePct float64
	OtherPct  float64
	TotalNs   int64
}

// ComputeUtilization derives per-thread utilization from the trace.
func ComputeUtilization(tr *Trace) []Utilization {
	var out []Utilization
	for _, tid := range tr.ThreadIDs() {
		ivs := threadIntervals(tr.Threads[tid])
		var per [5]int64
		var total int64
		for _, iv := range ivs {
			d := iv.end - iv.start
			per[iv.state] += d
			total += d
		}
		u := Utilization{ThreadID: tid, TotalNs: total}
		if total > 0 {
			u.TaskPct = 100 * float64(per[laneTask]) / float64(total)
			u.SyncPct = 100 * float64(per[laneSync]) / float64(total)
			u.CreatePct = 100 * float64(per[laneCreate]) / float64(total)
			u.OtherPct = 100 * float64(per[laneCompute]+per[laneOutside]) / float64(total)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ThreadID < out[j].ThreadID })
	return out
}

// FormatUtilization writes the utilization table.
func FormatUtilization(w io.Writer, us []Utilization) {
	fmt.Fprintf(w, "%-8s %8s %8s %8s %8s %10s\n", "thread", "task%", "sync%", "create%", "other%", "total")
	for _, u := range us {
		fmt.Fprintf(w, "%-8d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10s\n",
			u.ThreadID, u.TaskPct, u.SyncPct, u.CreatePct, u.OtherPct, stats.FormatNs(u.TotalNs))
	}
}

// Sparkline returns a compact single-lane rendering for embedding in
// logs: the state glyph sequence of one thread at the given width.
func Sparkline(tr *Trace, tid, width int) string {
	var sb strings.Builder
	sub := &Trace{Threads: map[int][]Event{tid: tr.Threads[tid]}}
	_ = RenderTimeline(&sb, sub, TimelineOptions{Width: width})
	lines := strings.Split(sb.String(), "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "thread") {
			if i := strings.IndexByte(l, '|'); i >= 0 {
				return strings.Trim(l[i:], "|")
			}
		}
	}
	return ""
}
