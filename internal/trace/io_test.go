package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
)

func TestJSONLRoundTrip(t *testing.T) {
	reg := region.NewRegistry()
	rec := NewRecorder(clock.NewSystem())
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "io.go", 1, region.Parallel)
	task := reg.Register("work", "io.go", 2, region.Task)
	tw := reg.Register("tw", "io.go", 3, region.Taskwait)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 7; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		}
	})
	tr := rec.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Fatalf("round trip: %d events, want %d", got.NumEvents(), tr.NumEvents())
	}
	for _, tid := range tr.ThreadIDs() {
		a, b := tr.Threads[tid], got.Threads[tid]
		if len(a) != len(b) {
			t.Fatalf("thread %d: %d vs %d events", tid, len(a), len(b))
		}
		for i := range a {
			if a[i].Time != b[i].Time || a[i].Type != b[i].Type || a[i].TaskID != b[i].TaskID {
				t.Fatalf("thread %d event %d mismatch: %+v vs %+v", tid, i, a[i], b[i])
			}
			if (a[i].Region == nil) != (b[i].Region == nil) {
				t.Fatalf("thread %d event %d region presence mismatch", tid, i)
			}
			if a[i].Region != nil && (a[i].Region.Name != b[i].Region.Name ||
				a[i].Region.Type != b[i].Region.Type) {
				t.Fatalf("thread %d event %d region mismatch", tid, i)
			}
		}
	}
	// Analysis of the round-tripped trace must match the original.
	a1, a2 := Analyze(tr), Analyze(got)
	if a1.TaskExecution != a2.TaskExecution || a1.DispatchLatency != a2.DispatchLatency {
		t.Error("analysis differs after round trip")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad json\n"), region.NewRegistry()); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":0,"ts":1,"ev":"BOGUS"}`+"\n"), region.NewRegistry()); err == nil {
		t.Error("unknown event type accepted")
	}
}

func TestReadJSONLRejectsUnknownRegionType(t *testing.T) {
	// A region-carrying line whose rt names no known region type must
	// fail with a line-numbered error, not silently decode as the zero
	// type (UserFunction).
	in := `{"t":0,"ts":1,"ev":"THREAD_BEGIN"}` + "\n" +
		`{"t":0,"ts":2,"ev":"ENTER","r":"par","f":"a.go","l":1,"rt":"nonsense"}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in), region.NewRegistry())
	if err == nil {
		t.Fatal("unknown region type accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "nonsense") {
		t.Errorf("error %q does not name line and offending type", err)
	}
}

// randomJSONLTrace generates arbitrary traces within the JSONL format's
// representable set: regions must have non-empty names (an empty "r"
// field means no region on read), everything else — times, task IDs,
// event/region types, thread IDs — ranges freely. Includes empty traces
// and region-less task events.
func randomJSONLTrace(r *rand.Rand) *Trace {
	reg := region.NewRegistry()
	pool := []*region.Region{
		nil,
		reg.Register("f", "file.go", 1, region.UserFunction),
		reg.Register("par", "file.go", 2, region.Parallel),
		reg.Register("task", "", 0, region.Task),
		reg.Register("tw", "x.go", 1<<20, region.Taskwait),
		reg.Register("b", "y.go", 3, region.ImplicitBarrier),
	}
	tr := &Trace{Threads: make(map[int][]Event)}
	for _, tid := range []int{0, 3, 1 << 16}[:r.Intn(4)] {
		n := 1 + r.Intn(40)
		evs := make([]Event, 0, n)
		now := r.Int63n(1 << 32)
		for i := 0; i < n; i++ {
			now += r.Int63n(1<<40) - 1<<39
			evs = append(evs, Event{
				Time:   now,
				Type:   EventType(r.Intn(int(EvThreadEnd) + 1)),
				Region: pool[r.Intn(len(pool))],
				TaskID: r.Uint64(),
			})
		}
		tr.Threads[tid] = evs
	}
	return tr
}

func TestQuickJSONLRoundTrip(t *testing.T) {
	prop := func(tr *Trace) bool {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := ReadJSONL(&buf, region.NewRegistry())
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		for tid, wevs := range tr.Threads {
			gevs := got.Threads[tid]
			if len(gevs) != len(wevs) {
				return false
			}
			for i := range wevs {
				a, b := wevs[i], gevs[i]
				if a.Time != b.Time || a.Type != b.Type || a.TaskID != b.TaskID {
					return false
				}
				if (a.Region == nil) != (b.Region == nil) {
					return false
				}
				if a.Region != nil && (a.Region.Name != b.Region.Name ||
					a.Region.File != b.Region.File ||
					a.Region.Line != b.Region.Line ||
					a.Region.Type != b.Region.Type) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomJSONLTrace(r))
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := `{"t":0,"ts":1,"ev":"THREAD_BEGIN"}` + "\n\n" + `{"t":0,"ts":2,"ev":"THREAD_END"}` + "\n"
	tr, err := ReadJSONL(strings.NewReader(in), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != 2 {
		t.Errorf("events = %d, want 2", tr.NumEvents())
	}
}
