package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/region"
)

func TestJSONLRoundTrip(t *testing.T) {
	reg := region.NewRegistry()
	rec := NewRecorder(clock.NewSystem())
	rt := omp.NewRuntimeWithRegistry(rec, reg)
	par := reg.Register("par", "io.go", 1, region.Parallel)
	task := reg.Register("work", "io.go", 2, region.Task)
	tw := reg.Register("tw", "io.go", 3, region.Taskwait)
	rt.Parallel(2, par, func(th *omp.Thread) {
		if th.ID == 0 {
			for i := 0; i < 7; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		}
	})
	tr := rec.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Fatalf("round trip: %d events, want %d", got.NumEvents(), tr.NumEvents())
	}
	for _, tid := range tr.ThreadIDs() {
		a, b := tr.Threads[tid], got.Threads[tid]
		if len(a) != len(b) {
			t.Fatalf("thread %d: %d vs %d events", tid, len(a), len(b))
		}
		for i := range a {
			if a[i].Time != b[i].Time || a[i].Type != b[i].Type || a[i].TaskID != b[i].TaskID {
				t.Fatalf("thread %d event %d mismatch: %+v vs %+v", tid, i, a[i], b[i])
			}
			if (a[i].Region == nil) != (b[i].Region == nil) {
				t.Fatalf("thread %d event %d region presence mismatch", tid, i)
			}
			if a[i].Region != nil && (a[i].Region.Name != b[i].Region.Name ||
				a[i].Region.Type != b[i].Region.Type) {
				t.Fatalf("thread %d event %d region mismatch", tid, i)
			}
		}
	}
	// Analysis of the round-tripped trace must match the original.
	a1, a2 := Analyze(tr), Analyze(got)
	if a1.TaskExecution != a2.TaskExecution || a1.DispatchLatency != a2.DispatchLatency {
		t.Error("analysis differs after round trip")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad json\n"), region.NewRegistry()); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":0,"ts":1,"ev":"BOGUS"}`+"\n"), region.NewRegistry()); err == nil {
		t.Error("unknown event type accepted")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := `{"t":0,"ts":1,"ev":"THREAD_BEGIN"}` + "\n\n" + `{"t":0,"ts":2,"ev":"THREAD_END"}` + "\n"
	tr, err := ReadJSONL(strings.NewReader(in), region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != 2 {
		t.Errorf("events = %d, want 2", tr.NumEvents())
	}
}
