package trace

// SyncCoverage is the one shared definition of sync-region coverage:
// how much of a thread's time inside scheduling-point regions
// (taskwait/barrier) is accounted for by task fragments and dispatch
// gaps, and how much is pure idle waiting. Both the aggregate trace
// analysis (ThreadAnalysis.DispatchLatency / SyncRegionTime /
// IdleInSync) and the bottleneck wait-state classifier
// (internal/bottleneck) drive their bookkeeping through this state
// machine, so the two can never disagree about where a sync region,
// a dispatch gap or an idle span begins or ends.
//
// The machine tracks:
//
//   - Depth: the nesting level of scheduling-point regions. Coverage
//     accounting spans one top-level instance, from the Enter that
//     takes Depth 0 -> 1 to the Exit that takes it back to 0.
//   - readiness: the thread is "ready to dispatch" from the enter of
//     the last synchronization point (the paper's phrase), and again
//     whenever a task ends or the thread switches back to the implicit
//     task while inside a sync region. TakeDispatch consumes the
//     readiness when a task fragment begins; the span from ReadyAt to
//     that begin is the dispatch gap.
//   - covered time: fragment and dispatch durations inside the open
//     instance. ExitSync reports the instance's total and its idle
//     remainder (total - covered).
//
// The zero value is ready for use.
type SyncCoverage struct {
	// Depth is the current scheduling-point nesting level.
	Depth int
	// ReadyAt is when the thread last became ready to dispatch; only
	// meaningful while ReadyValid.
	ReadyAt int64
	// ReadyValid reports an open dispatch gap (readiness not yet
	// consumed by a fragment begin or discarded by a sync exit).
	ReadyValid bool

	syncEnter int64 // start of the open top-level instance
	covered   int64 // fragment+dispatch time inside it
}

// EnterSync records the enter of a scheduling-point region. At depth 0
// it opens a new top-level instance; at any depth it re-stamps the
// thread's readiness (entering a scheduling point makes the thread
// ready to pick up tasks).
func (c *SyncCoverage) EnterSync(t int64) {
	if c.Depth == 0 {
		c.syncEnter = t
		c.covered = 0
	}
	c.Depth++
	c.MarkReady(t)
}

// ExitSync records the exit of a scheduling-point region, discarding
// any open readiness. When the exit closes the top-level instance
// (Depth returns to 0) it reports the instance's total duration and
// its idle remainder (total minus covered time; callers clamp — a
// task fragment already open at the instance's enter contributes its
// full duration to covered, which can push idle below zero).
func (c *SyncCoverage) ExitSync(t int64) (total, idle int64, closed bool) {
	c.Depth--
	c.ReadyValid = false
	if c.Depth != 0 {
		return 0, 0, false
	}
	total = t - c.syncEnter
	return total, total - c.covered, true
}

// MarkReady stamps the thread ready to dispatch at t, (re)opening a
// dispatch gap. Callers guard with Depth > 0 except EnterSync, which
// marks unconditionally.
func (c *SyncCoverage) MarkReady(t int64) {
	c.ReadyAt = t
	c.ReadyValid = true
}

// Cover adds a task-fragment duration to the open instance's covered
// time (a no-op outside sync regions).
func (c *SyncCoverage) Cover(d int64) {
	if c.Depth > 0 {
		c.covered += d
	}
}

// TakeDispatch closes the open dispatch gap at t — a task fragment is
// beginning. It returns the gap's start and duration, consumes the
// readiness and counts the gap into the open instance's covered time.
// ok is false when no gap was open (the fragment begins outside any
// dispatch accounting, e.g. the first fragment before any sync enter).
func (c *SyncCoverage) TakeDispatch(t int64) (start, dur int64, ok bool) {
	if !c.ReadyValid {
		return 0, 0, false
	}
	start, dur = c.ReadyAt, t-c.ReadyAt
	c.ReadyValid = false
	if c.Depth > 0 {
		c.covered += dur
	}
	return start, dur, true
}

// InstanceStart returns the start time of the open top-level sync
// instance; only meaningful while Depth > 0.
func (c *SyncCoverage) InstanceStart() int64 { return c.syncEnter }

// SchedulingPointEvent reports whether ev marks the enter or exit of a
// scheduling-point region — the event-level predicate both analyses
// share. Note this is the trace analysis's notion (taskwait/barrier/
// implicit barrier); region.Type.SchedulingPoint additionally counts
// task creation, which suspends the creating task but opens no
// dispatch window.
func SchedulingPointEvent(ev Event) bool {
	return (ev.Type == EvEnter || ev.Type == EvExit) && schedulingPoint(ev.Region)
}
