package trace

import (
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

// TestRecorderRaceUnderTee drives concurrent thread registration under
// a (generic, unfused — the clocks differ) Tee with the profiling
// measurement: each listener claims its own thread slot (Profile /
// TraceData) while teams start and tasks migrate between threads. Run
// with -race (CI does) to validate the slot contract.
func TestRecorderRaceUnderTee(t *testing.T) {
	for run := 0; run < 3; run++ {
		reg := region.NewRegistry()
		m := measure.New()
		rec := NewRecorder(clock.NewSystem())
		rt := omp.NewRuntimeWithRegistry(NewTee(m, rec), reg)
		par := reg.Register("par", "race.go", 1, region.Parallel)
		task := reg.Register("work", "race.go", 2, region.Task)
		tw := reg.Register("tw", "race.go", 3, region.Taskwait)

		const producers = 4
		const tasksPer = 100
		rt.Parallel(producers, par, func(th *omp.Thread) {
			// Every thread both produces and executes tasks, so task
			// events land on threads while they are still registering
			// buffers and the measurement is binding profile slots.
			for i := 0; i < tasksPer; i++ {
				th.NewTask(task, func(*omp.Thread) {})
			}
			th.Taskwait(tw)
		})
		m.Finish()

		tr := rec.Finish()
		counts := map[EventType]int{}
		for _, evs := range tr.Threads {
			for _, ev := range evs {
				counts[ev.Type]++
			}
		}
		want := producers * tasksPer
		if counts[EvTaskBegin] != want || counts[EvTaskEnd] != want {
			t.Fatalf("run %d: task begin/end = %d/%d, want %d/%d",
				run, counts[EvTaskBegin], counts[EvTaskEnd], want, want)
		}
		if counts[EvThreadBegin] != producers {
			t.Fatalf("run %d: thread begins = %d, want %d", run, counts[EvThreadBegin], producers)
		}
	}
}

// TestStreamingRecorderRaceUnderTee is the same contention pattern with
// the bounded-memory recorder: per-thread chunks flush into a shared
// sink while the measurement populates its own thread slots.
func TestStreamingRecorderRaceUnderTee(t *testing.T) {
	reg := region.NewRegistry()
	sink := &countingSink{}
	m := measure.New()
	rec := NewStreamingRecorder(clock.NewSystem(), sink, 32)
	rt := omp.NewRuntimeWithRegistry(NewTee(m, rec), reg)
	par := reg.Register("par", "race.go", 1, region.Parallel)
	task := reg.Register("work", "race.go", 2, region.Task)
	tw := reg.Register("tw", "race.go", 3, region.Taskwait)

	rt.Parallel(4, par, func(th *omp.Thread) {
		for i := 0; i < 100; i++ {
			th.NewTask(task, func(*omp.Thread) {})
		}
		th.Taskwait(tw)
	})
	m.Finish()
	leftover := rec.Finish()
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if n := leftover.NumEvents(); n != 0 {
		t.Fatalf("streaming Finish retained %d events", n)
	}
	begins, ends := sink.count(EvTaskBegin), sink.count(EvTaskEnd)
	if begins != 400 || ends != 400 {
		t.Fatalf("task begin/end through sink = %d/%d, want 400/400", begins, ends)
	}
}

// countingSink tallies flushed events by type; safe for concurrent
// flushes like a real archive writer.
type countingSink struct {
	mu     sync.Mutex
	counts map[EventType]int
}

func (s *countingSink) WriteEvents(thread int, evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = make(map[EventType]int)
	}
	for _, ev := range evs {
		s.counts[ev.Type]++
	}
	return nil
}

func (s *countingSink) count(t EventType) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[t]
}
