// Package pomp provides the instrumentation wrappers an OPARI2-rewritten
// program would contain. In the paper, OPARI2 rewrites OpenMP pragmas
// into POMP2 calls around the constructs and Score-P's compiler
// instrumentation wraps function bodies; in Go we write that rewritten
// form by hand: instrumented benchmark variants call these wrappers,
// which both drive the runtime construct and emit the measurement events.
//
// All wrappers degrade to plain runtime calls with zero measurement work
// when the runtime has no listener (the uninstrumented baseline).
package pomp

import (
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

// Function instruments a user function body (compiler instrumentation
// analog): enter/exit events around fn, attributed to the current task.
func Function(t *omp.Thread, r *region.Region, fn func()) {
	l := t.Runtime().Listener()
	if l != nil {
		l.Enter(t, r)
	}
	fn()
	if l != nil {
		l.Exit(t, r)
	}
}

// Enter emits a raw enter event (paired with Exit). Prefer Function.
func Enter(t *omp.Thread, r *region.Region) {
	if l := t.Runtime().Listener(); l != nil {
		l.Enter(t, r)
	}
}

// Exit emits a raw exit event.
func Exit(t *omp.Thread, r *region.Region) {
	if l := t.Runtime().Listener(); l != nil {
		l.Exit(t, r)
	}
}

// ParameterInt records an integer parameter on the current call path,
// splitting the profile subtree by value — the parameter instrumentation
// the paper inserts into the nqueens task to attribute statistics per
// recursion depth (Table IV).
func ParameterInt(t *omp.Thread, name string, value int64) {
	if p := measure.Profile(t); p != nil {
		p.ParameterInt(name, value)
	}
}

// ParameterString records a string parameter on the current call path
// (Score-P's POMP2_Parameter_string counterpart).
func ParameterString(t *omp.Thread, name, value string) {
	if p := measure.Profile(t); p != nil {
		p.ParameterString(name, value)
	}
}

// CurrentProfile returns the measuring thread profile, or nil when
// uninstrumented. Advanced instrumentation (tests, adapters) may use it.
func CurrentProfile(t *omp.Thread) *core.ThreadProfile { return measure.Profile(t) }

// Task models an instrumented "#pragma omp task": creation events are
// emitted by the runtime, execution events fire when the instance runs.
func Task(t *omp.Thread, r *region.Region, fn omp.TaskFunc, opts ...omp.TaskOpt) {
	t.NewTask(r, fn, opts...)
}

// Taskwait models an instrumented "#pragma omp taskwait".
func Taskwait(t *omp.Thread, r *region.Region) {
	t.Taskwait(r)
}

// Barrier models an instrumented "#pragma omp barrier".
func Barrier(t *omp.Thread, r *region.Region) {
	t.Barrier(r)
}

// Parallel models an instrumented "#pragma omp parallel num_threads(n)".
func Parallel(rt *omp.Runtime, n int, r *region.Region, body func(t *omp.Thread)) {
	rt.Parallel(n, r, body)
}

// Single models an instrumented "#pragma omp single nowait".
func Single(t *omp.Thread, r *region.Region, fn func(t *omp.Thread)) {
	t.Single(r, fn)
}

// Master models an instrumented "#pragma omp master".
func Master(t *omp.Thread, r *region.Region, fn func(t *omp.Thread)) {
	t.Master(r, fn)
}

// Critical models an instrumented "#pragma omp critical".
func Critical(t *omp.Thread, r *region.Region, fn func(t *omp.Thread)) {
	t.Critical(r, fn)
}

// For models an instrumented statically scheduled "#pragma omp for".
func For(t *omp.Thread, r *region.Region, n int, fn func(t *omp.Thread, i int)) {
	t.For(r, n, fn)
}
