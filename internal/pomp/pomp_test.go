package pomp

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
)

func setup(t *testing.T) (*measure.Measurement, *omp.Runtime, *region.Registry) {
	t.Helper()
	reg := region.NewRegistry()
	m := measure.NewWithClock(clock.NewSystem(), reg)
	rt := omp.NewRuntimeWithRegistry(m, reg)
	return m, rt, reg
}

func TestFunctionWrapperRecordsRegion(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	fn := reg.Register("compute", "p.go", 2, region.UserFunction)
	calls := 0
	rt.Parallel(1, par, func(th *omp.Thread) {
		for i := 0; i < 3; i++ {
			Function(th, fn, func() { calls++ })
		}
	})
	m.Finish()
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	rep := cube.Aggregate(m.Locations())
	n := rep.Main.FindPath("par", "compute")
	if n == nil || n.Visits != 3 {
		t.Errorf("compute node missing or wrong visits: %+v", n)
	}
}

func TestFunctionWrapperUninstrumentedIsTransparent(t *testing.T) {
	reg := region.NewRegistry()
	rt := omp.NewRuntimeWithRegistry(nil, reg)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	fn := reg.Register("compute", "p.go", 2, region.UserFunction)
	calls := 0
	rt.Parallel(1, par, func(th *omp.Thread) {
		Function(th, fn, func() { calls++ })
		Enter(th, fn) // raw wrappers must be no-ops without a listener
		Exit(th, fn)
		ParameterInt(th, "x", 1)
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestTaskAndTaskwaitWrappers(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	task := reg.Register("t", "p.go", 2, region.Task)
	tw := reg.Register("tw", "p.go", 3, region.Taskwait)
	ran := 0
	rt.Parallel(1, par, func(th *omp.Thread) {
		Task(th, task, func(*omp.Thread) { ran++ })
		Taskwait(th, tw)
	})
	m.Finish()
	if ran != 1 {
		t.Fatalf("task did not run")
	}
	rep := cube.Aggregate(m.Locations())
	if rep.TaskTree("t") == nil {
		t.Error("no task tree via wrapper")
	}
	if rep.Main.FindPath("par", "tw") == nil {
		t.Error("no taskwait node via wrapper")
	}
}

func TestParameterWrapperInsideTask(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	task := reg.Register("t", "p.go", 2, region.Task)
	tw := reg.Register("tw", "p.go", 3, region.Taskwait)
	rt.Parallel(1, par, func(th *omp.Thread) {
		for i := 0; i < 4; i++ {
			v := int64(i % 2)
			Task(th, task, func(c *omp.Thread) { ParameterInt(c, "lvl", v) })
		}
		Taskwait(th, tw)
	})
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	ps := cube.ParamChildren(rep.TaskTree("t"), "lvl")
	if len(ps) != 2 || ps[0].Dur.Count != 2 || ps[1].Dur.Count != 2 {
		t.Errorf("parameter split wrong: %d children", len(ps))
	}
}

func TestConstructWrappers(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	bar := reg.Register("bar", "p.go", 2, region.Barrier)
	single := reg.Register("sgl", "p.go", 3, region.Single)
	master := reg.Register("mst", "p.go", 4, region.Master)
	crit := reg.Register("crt", "p.go", 5, region.Critical)
	loop := reg.Register("lp", "p.go", 6, region.Loop)

	var singles, masters, iters int64
	Parallel(rt, 2, par, func(th *omp.Thread) {
		Single(th, single, func(*omp.Thread) { singles++ })
		Barrier(th, bar)
		Master(th, master, func(*omp.Thread) { masters++ })
		Critical(th, crit, func(*omp.Thread) { iters++ })
		For(th, loop, 10, func(_ *omp.Thread, i int) {
			Critical(th, crit, func(*omp.Thread) { iters++ })
		})
		Barrier(th, bar)
	})
	m.Finish()
	if singles != 1 || masters != 1 || iters != 12 {
		t.Errorf("singles=%d masters=%d iters=%d", singles, masters, iters)
	}
	rep := cube.Aggregate(m.Locations())
	parN := rep.Main.Find("par")
	for _, name := range []string{"bar", "sgl", "crt", "lp"} {
		if parN.Find(name) == nil {
			t.Errorf("main tree missing %s node", name)
		}
	}
	// master runs on thread 0 only.
	if mst := parN.Find("mst"); mst == nil || mst.PerThreadVisits[0] != 1 || mst.PerThreadVisits[1] != 0 {
		t.Error("master visits wrong")
	}
}

func TestRawEnterExitAndStringParam(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	fn := reg.Register("manual", "p.go", 2, region.UserFunction)
	task := reg.Register("t", "p.go", 3, region.Task)
	tw := reg.Register("tw", "p.go", 4, region.Taskwait)
	rt.Parallel(1, par, func(th *omp.Thread) {
		Enter(th, fn)
		Exit(th, fn)
		Task(th, task, func(c *omp.Thread) { ParameterString(c, "mode", "fast") })
		Taskwait(th, tw)
	})
	m.Finish()
	rep := cube.Aggregate(m.Locations())
	if rep.Main.FindPath("par", "manual") == nil {
		t.Error("raw enter/exit not recorded")
	}
	if rep.TaskTree("t").Find("mode=fast") == nil {
		t.Error("string parameter not recorded")
	}
}

func TestTaskyieldWrapper(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	task := reg.Register("t", "p.go", 2, region.Task)
	ty := reg.Register("yield", "p.go", 3, region.Taskwait)
	ran := 0
	rt.Parallel(1, par, func(th *omp.Thread) {
		Task(th, task, func(c *omp.Thread) {
			Task(c, task, func(*omp.Thread) { ran++ })
			c.Taskyield(ty)
		})
	})
	m.Finish()
	if ran != 1 {
		t.Errorf("taskyield did not run queued child")
	}
	rep := cube.Aggregate(m.Locations())
	tree := rep.TaskTree("t")
	if tree == nil || tree.Find("yield") == nil {
		t.Error("taskyield region missing from task tree")
	}
}

func TestCurrentProfileAccessor(t *testing.T) {
	m, rt, reg := setup(t)
	par := reg.Register("par", "p.go", 1, region.Parallel)
	rt.Parallel(1, par, func(th *omp.Thread) {
		if CurrentProfile(th) == nil {
			t.Error("no profile on instrumented thread")
		}
	})
	m.Finish()
}
