// Package region defines source-code region descriptors and their
// registry. Regions are the static program entities profile metrics are
// attributed to; they correspond to the region handles OPARI2 generates
// when it instruments an OpenMP program (POMP2_Region_handle) and to the
// regions Score-P's compiler instrumentation registers for functions.
package region

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Type classifies a region. The profiling algorithm treats some types
// specially: Task regions root task-instance trees; TaskCreate, Taskwait,
// Barrier and ImplicitBarrier are scheduling-point regions under which
// stub nodes may appear; Parameter nodes are synthesized by parameter
// instrumentation and never registered here.
type Type int

// Region types, mirroring the OPARI2/POMP2 region taxonomy that the
// paper's instrumentation relies on.
const (
	UserFunction    Type = iota // compiler-instrumented function
	Parallel                    // #pragma omp parallel
	Task                        // #pragma omp task (structured block)
	TaskCreate                  // task-creation region around the task pragma
	Taskwait                    // #pragma omp taskwait
	Barrier                     // #pragma omp barrier (explicit)
	ImplicitBarrier             // implicit barrier at end of worksharing/parallel
	Single                      // #pragma omp single
	Master                      // #pragma omp master
	Critical                    // #pragma omp critical
	Loop                        // #pragma omp for
	Parameter                   // synthetic parameter node (never registered)
)

var typeNames = map[Type]string{
	UserFunction:    "function",
	Parallel:        "parallel",
	Task:            "task",
	TaskCreate:      "create_task",
	Taskwait:        "taskwait",
	Barrier:         "barrier",
	ImplicitBarrier: "implicit_barrier",
	Single:          "single",
	Master:          "master",
	Critical:        "critical",
	Loop:            "loop",
	Parameter:       "parameter",
}

// String returns the lower-case POMP2-style name of the region type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// SchedulingPoint reports whether a region of this type is a task
// scheduling point, i.e. a place where the executing thread may switch to
// another task and under which stub nodes are placed in the implicit
// task's call tree (Section IV-B4).
func (t Type) SchedulingPoint() bool {
	switch t {
	case Taskwait, Barrier, ImplicitBarrier, TaskCreate:
		return true
	}
	return false
}

// Region is an immutable descriptor of a source-code region. Instances
// are interned by a Registry; identity comparisons of *Region are valid
// within one registry.
type Region struct {
	ID   int32
	Name string
	File string
	Line int
	Type Type

	// taskCreate caches the derived task-creation region so the
	// measurement system resolves it with one atomic load per task spawn
	// instead of a locked map lookup (see Registry.TaskCreateRegion).
	taskCreate atomic.Pointer[Region]
}

// String renders "name@file:line(type)" for reports and errors.
func (r *Region) String() string {
	if r == nil {
		return "<nil region>"
	}
	if r.File == "" {
		return fmt.Sprintf("%s(%s)", r.Name, r.Type)
	}
	return fmt.Sprintf("%s@%s:%d(%s)", r.Name, r.File, r.Line, r.Type)
}

// Registry interns region descriptors and hands out dense int32 IDs.
// It is safe for concurrent use; registration is expected at program
// start (OPARI2 emits registration in initialization code), lookups are
// lock-free reads of immutable descriptors afterwards.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[key]*Region
	regions []*Region
}

type key struct {
	name string
	file string
	line int
	typ  Type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[key]*Region)}
}

// Register interns a region descriptor. Registering the same
// (name, file, line, type) tuple twice returns the existing descriptor,
// so package-level region variables in different files can share handles.
func (g *Registry) Register(name, file string, line int, typ Type) *Region {
	k := key{name, file, line, typ}
	g.mu.RLock()
	r, ok := g.byKey[k]
	g.mu.RUnlock()
	if ok {
		return r
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok = g.byKey[k]; ok {
		return r
	}
	r = &Region{
		ID:   int32(len(g.regions)),
		Name: name,
		File: file,
		Line: line,
		Type: typ,
	}
	g.byKey[k] = r
	g.regions = append(g.regions, r)
	return r
}

// TaskCreateRegion returns (and interns on first use) the task-creation
// region derived from a task region, as OPARI2 generates it alongside
// the task construct. The result is cached on the task region itself,
// so the per-spawn hot path costs one atomic pointer load; the registry
// is only consulted on the first derivation. The derived region is
// interned in this registry — derive a region only through the registry
// that interned it.
func (g *Registry) TaskCreateRegion(r *Region) *Region {
	if cr := r.taskCreate.Load(); cr != nil {
		return cr
	}
	cr := g.Register(r.Name+" (create)", r.File, r.Line, TaskCreate)
	if r.taskCreate.CompareAndSwap(nil, cr) {
		return cr
	}
	return r.taskCreate.Load()
}

// Get returns the region with the given ID, or nil if out of range.
func (g *Registry) Get(id int32) *Region {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if id < 0 || int(id) >= len(g.regions) {
		return nil
	}
	return g.regions[id]
}

// Len returns the number of registered regions.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.regions)
}

// All returns the registered regions ordered by ID.
func (g *Registry) All() []*Region {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Region, len(g.regions))
	copy(out, g.regions)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Default is the process-wide registry. Benchmark codes register their
// regions here at init time, mirroring OPARI2's generated registration.
var Default = NewRegistry()

// MustRegister registers into the Default registry. It is a convenience
// for package-level variable initialization in instrumented code.
func MustRegister(name, file string, line int, typ Type) *Region {
	return Default.Register(name, file, line, typ)
}
