package region

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterInterns(t *testing.T) {
	g := NewRegistry()
	a := g.Register("foo", "f.go", 10, UserFunction)
	b := g.Register("foo", "f.go", 10, UserFunction)
	if a != b {
		t.Error("same tuple registered twice returned different descriptors")
	}
	c := g.Register("foo", "f.go", 11, UserFunction)
	if a == c {
		t.Error("different line shared a descriptor")
	}
	d := g.Register("foo", "f.go", 10, Task)
	if a == d {
		t.Error("different type shared a descriptor")
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
}

func TestIDsAreDenseAndOrdered(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 100; i++ {
		r := g.Register(fmt.Sprintf("r%d", i), "f.go", i, Task)
		if r.ID != int32(i) {
			t.Fatalf("region %d got ID %d", i, r.ID)
		}
	}
	all := g.All()
	for i, r := range all {
		if r.ID != int32(i) {
			t.Fatalf("All() not ordered by ID at %d", i)
		}
	}
	if g.Get(50).Name != "r50" {
		t.Error("Get(50) wrong region")
	}
	if g.Get(-1) != nil || g.Get(1000) != nil {
		t.Error("out-of-range Get did not return nil")
	}
}

func TestConcurrentRegistration(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	results := make([][]*Region, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := make([]*Region, 100)
			for i := 0; i < 100; i++ {
				rs[i] = g.Register(fmt.Sprintf("r%d", i), "f.go", i, Task)
			}
			results[w] = rs
		}(w)
	}
	wg.Wait()
	if g.Len() != 100 {
		t.Fatalf("Len = %d, want 100 (duplicates interned)", g.Len())
	}
	for w := 1; w < 8; w++ {
		for i := 0; i < 100; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d saw a different descriptor for r%d", w, i)
			}
		}
	}
}

// TestUniqueIDsProperty: property — any registration sequence yields
// unique IDs and lookup consistency.
func TestUniqueIDsProperty(t *testing.T) {
	f := func(names []string, lines []uint8) bool {
		g := NewRegistry()
		seen := make(map[int32]bool)
		for i, name := range names {
			line := 0
			if i < len(lines) {
				line = int(lines[i])
			}
			r := g.Register(name, "f.go", line, UserFunction)
			if g.Get(r.ID) != r {
				return false
			}
			if seen[r.ID] && g.Register(name, "f.go", line, UserFunction) != r {
				return false
			}
			seen[r.ID] = true
		}
		return g.Len() <= len(names) || len(names) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for typ := UserFunction; typ <= Parameter; typ++ {
		if s := typ.String(); s == "" || s[0] == 't' && s != "task" && s != "taskwait" {
			// all names must be defined (no "type(N)" fallback)
			if len(s) > 5 && s[:5] == "type(" {
				t.Errorf("type %d has no name", typ)
			}
		}
	}
	if Type(99).String() != "type(99)" {
		t.Error("unknown type fallback broken")
	}
}

func TestSchedulingPoint(t *testing.T) {
	want := map[Type]bool{
		Taskwait:        true,
		Barrier:         true,
		ImplicitBarrier: true,
		TaskCreate:      true,
		UserFunction:    false,
		Parallel:        false,
		Task:            false,
		Single:          false,
	}
	for typ, exp := range want {
		if got := typ.SchedulingPoint(); got != exp {
			t.Errorf("%s.SchedulingPoint() = %v, want %v", typ, got, exp)
		}
	}
}

func TestRegionString(t *testing.T) {
	g := NewRegistry()
	r := g.Register("foo", "f.go", 7, Task)
	if r.String() != "foo@f.go:7(task)" {
		t.Errorf("String = %q", r.String())
	}
	r2 := g.Register("bar", "", 0, Barrier)
	if r2.String() != "bar(barrier)" {
		t.Errorf("String = %q", r2.String())
	}
	var nilR *Region
	if nilR.String() != "<nil region>" {
		t.Error("nil String broken")
	}
}

func TestDefaultRegistryMustRegister(t *testing.T) {
	r := MustRegister("test.unique.region.xyz", "t.go", 1, Task)
	if Default.Get(r.ID) != r {
		t.Error("MustRegister did not intern into Default")
	}
}
