package faultinject

import (
	"bytes"
	"errors"
	"net"
	"syscall"
	"testing"
)

// drain consumes everything the peer sends and returns the bytes.
func drain(t *testing.T, c net.Conn) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		b := make([]byte, 256)
		for {
			n, err := c.Read(b)
			buf.Write(b[:n])
			if err != nil {
				out <- buf.Bytes()
				return
			}
		}
	}()
	return out
}

func TestConnSeverAfterExactByte(t *testing.T) {
	c1, c2 := net.Pipe()
	got := drain(t, c2)
	fc := NewConn(c1, SeverWriteAfter(10), SliceWrites(4))

	n, err := fc.Write(bytes.Repeat([]byte{0xab}, 64))
	if !errors.Is(err, ErrSevered) {
		t.Fatalf("Write error = %v, want ErrSevered", err)
	}
	if n != 10 {
		t.Fatalf("delivered %d bytes, want exactly 10", n)
	}
	if !fc.Severed() {
		t.Fatal("Severed() = false after trip")
	}
	if b := <-got; len(b) != 10 {
		t.Fatalf("peer saw %d bytes, want 10", len(b))
	}

	// Both directions are dead now.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever Write error = %v, want ErrSevered", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever Read error = %v, want ErrSevered", err)
	}
}

func TestConnPassthroughAndManualSever(t *testing.T) {
	c1, c2 := net.Pipe()
	got := drain(t, c2)
	fc := NewConn(c1, SliceWrites(3))

	if n, err := fc.Write([]byte("hello world")); err != nil || n != 11 {
		t.Fatalf("Write = (%d, %v), want (11, nil)", n, err)
	}
	fc.Sever()
	fc.Sever() // idempotent
	if b := <-got; string(b) != "hello world" {
		t.Fatalf("peer saw %q", b)
	}
	if fc.Written() != 11 {
		t.Fatalf("Written() = %d, want 11", fc.Written())
	}
}

func TestWriterCapacityShortWrite(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, CapacityBytes(5))

	n, err := w.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write error = %v, want ENOSPC", err)
	}
	if n != 5 || sink.String() != "abcde" {
		t.Fatalf("short write delivered %d bytes (%q), want 5", n, sink.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full Write error = %v, want ENOSPC", err)
	}
	if w.Written() != 5 {
		t.Fatalf("Written() = %d, want 5", w.Written())
	}
}

func TestWriterTransientEIO(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, TransientEIOEvery(3))

	var errs int
	for i := 0; i < 9; i++ {
		if _, err := w.Write([]byte{byte('a' + i)}); err != nil {
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("call %d: error = %v, want EIO", i, err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("got %d EIO faults over 9 calls, want 3", errs)
	}
	if sink.String() != "abdeghi"[:6]+"i" && sink.Len() != 6 {
		// calls 3, 6, 9 fail (1-indexed): c, f, i dropped.
		t.Fatalf("sink = %q, want the 6 surviving bytes", sink.String())
	}
}
