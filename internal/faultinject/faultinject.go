// Package faultinject provides deterministic fault injectors for
// transport and disk I/O — the building blocks of the measurement
// service's fault-tolerance tests. A Conn wraps a net.Conn and severs
// it after a configured byte count (optionally mid-frame, by slicing
// writes), adds write latency, or cuts on demand; a Writer wraps an
// io.Writer and simulates a full disk (ENOSPC after a byte budget,
// with the short write a real filesystem produces) or transient EIO
// failures. All injectors are count-driven and deterministic: the same
// configuration and byte stream trips the same fault at the same byte,
// which is what lets the fault matrix run under -race -count=3 without
// flaking.
//
// The injectors are generic io plumbing: nothing in here knows about
// the sink protocol or the archive format, so otf2 and sink tests (or
// any other package's) can reuse them.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrSevered is the error surfaced by a Conn once its fault has
// tripped: every later Read and Write fails with an error wrapping it.
var ErrSevered = errors.New("faultinject: connection severed")

// ConnOption configures a Conn.
type ConnOption func(*Conn)

// SeverWriteAfter trips the fault once n bytes have been written
// through the connection: the write that crosses the boundary delivers
// only the bytes up to it (so the peer sees a mid-frame cut), the
// underlying connection is closed, and every later operation fails
// with ErrSevered. n <= 0 severs on the first write.
func SeverWriteAfter(n int64) ConnOption {
	return func(c *Conn) { c.severAfter.Store(n); c.armed.Store(true) }
}

// SliceWrites caps each underlying write to max bytes, so one logical
// frame lands in several small writes — the peer can observe (and a
// sever can hit) partial frames.
func SliceWrites(max int) ConnOption {
	return func(c *Conn) {
		if max > 0 {
			c.sliceMax = max
		}
	}
}

// WriteLatency sleeps d before each underlying write, simulating a
// slow link.
func WriteLatency(d time.Duration) ConnOption {
	return func(c *Conn) { c.latency = d }
}

// Conn wraps a net.Conn with deterministic write-path faults. The zero
// configuration passes everything through; see SeverWriteAfter,
// SliceWrites, WriteLatency, and the on-demand Sever.
type Conn struct {
	net.Conn

	severAfter atomic.Int64 // byte budget; meaningful only when armed
	armed      atomic.Bool
	written    atomic.Int64
	tripped    atomic.Bool

	sliceMax int
	latency  time.Duration
}

// NewConn wraps conn with the configured faults.
func NewConn(conn net.Conn, opts ...ConnOption) *Conn {
	c := &Conn{Conn: conn, sliceMax: 1 << 20}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Sever trips the fault now: the underlying connection closes and
// every later Read/Write fails with ErrSevered. Idempotent, safe from
// any goroutine.
func (c *Conn) Sever() {
	if c.tripped.CompareAndSwap(false, true) {
		// Closing the underlying conn makes the peer see the cut too,
		// like a crashed process's kernel resetting its sockets.
		_ = c.Conn.Close()
	}
}

// Severed reports whether the fault has tripped.
func (c *Conn) Severed() bool { return c.tripped.Load() }

// Written returns the bytes successfully written so far.
func (c *Conn) Written() int64 { return c.written.Load() }

// Write delivers p in slices of at most the configured size, tripping
// the sever fault at the exact configured byte.
func (c *Conn) Write(p []byte) (int, error) {
	n := 0
	for len(p) > 0 {
		if c.tripped.Load() {
			return n, fmt.Errorf("%w (after %d bytes)", ErrSevered, c.written.Load())
		}
		chunk := p
		if len(chunk) > c.sliceMax {
			chunk = chunk[:c.sliceMax]
		}
		if c.armed.Load() {
			rem := c.severAfter.Load() - c.written.Load()
			if rem <= 0 {
				c.Sever()
				return n, fmt.Errorf("%w (after %d bytes)", ErrSevered, c.written.Load())
			}
			if int64(len(chunk)) > rem {
				chunk = chunk[:rem]
			}
		}
		if c.latency > 0 {
			time.Sleep(c.latency)
		}
		m, err := c.Conn.Write(chunk)
		c.written.Add(int64(m))
		n += m
		if err != nil {
			return n, err
		}
		p = p[len(chunk):]
	}
	return n, nil
}

// Read passes through until the fault trips, then fails like the
// write side — a severed connection is dead in both directions.
func (c *Conn) Read(p []byte) (int, error) {
	if c.tripped.Load() {
		return 0, ErrSevered
	}
	return c.Conn.Read(p)
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// CapacityBytes simulates a disk with n bytes left: the write that
// crosses the budget delivers the bytes that fit (a short write, as a
// real filesystem produces on ENOSPC) and fails with an error wrapping
// syscall.ENOSPC; every later write fails immediately.
func CapacityBytes(n int64) WriterOption {
	return func(w *Writer) { w.capacity = n; w.capped = true }
}

// TransientEIOEvery fails every k-th Write call with an error wrapping
// syscall.EIO, delivering nothing; the calls between succeed. k <= 0
// disables the injector.
func TransientEIOEvery(k int) WriterOption {
	return func(w *Writer) { w.eioEvery = k }
}

// Writer wraps an io.Writer with deterministic disk faults; see
// CapacityBytes and TransientEIOEvery. Writer is safe for use by one
// goroutine at a time, like the writers it wraps.
type Writer struct {
	w io.Writer

	mu       sync.Mutex
	capacity int64
	capped   bool
	written  int64
	eioEvery int
	calls    int
}

// NewWriter wraps w with the configured faults.
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	fw := &Writer{w: w}
	for _, opt := range opts {
		opt(fw)
	}
	return fw
}

// Written returns the bytes successfully written through so far.
func (w *Writer) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Write applies the configured faults, then forwards to the wrapped
// writer.
func (w *Writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.calls++
	if w.eioEvery > 0 && w.calls%w.eioEvery == 0 {
		return 0, fmt.Errorf("faultinject: transient i/o error: %w", syscall.EIO)
	}
	if w.capped {
		rem := w.capacity - w.written
		if rem <= 0 {
			return 0, fmt.Errorf("faultinject: disk full: %w", syscall.ENOSPC)
		}
		if int64(len(p)) > rem {
			n, err := w.w.Write(p[:rem])
			w.written += int64(n)
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("faultinject: disk full: %w", syscall.ENOSPC)
		}
	}
	n, err := w.w.Write(p)
	w.written += int64(n)
	return n, err
}
