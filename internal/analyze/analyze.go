// Package analyze performs automatic performance diagnosis on task
// profiles — the Scalasca-style "method to locate issues automatically
// on a full application scale" the paper motivates in Section II, built
// on the three tasking inefficiency patterns of Section III:
//
//   - very small tasks cause high management overhead,
//   - very large tasks reduce the load-balancing effect,
//   - task creation concentrated on few threads becomes a bottleneck.
//
// The analyzer walks an aggregated cube.Report and emits Findings with
// severities, the evidence (metric values), and the optimization hint the
// paper prescribes for the pattern.
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/region"
	"repro/internal/stats"
)

// Kind enumerates the detected inefficiency patterns.
type Kind int

// Finding kinds.
const (
	// SmallTasks: mean task execution time is in the order of (or below)
	// the per-task management cost — the fib/nqueens pathology.
	SmallTasks Kind = iota
	// CreationDominates: time spent inside task-creation regions rivals
	// the exclusive task work (the paper's nqueens observation: "three
	// quarters of the time inside the tasks is spent creating child
	// tasks").
	CreationDominates
	// SingleCreator: task creation is concentrated on few threads,
	// a scalability bottleneck at larger team sizes.
	SingleCreator
	// BarrierWaiting: threads spend a large share of scheduling-point
	// time idle (not executing tasks) — load imbalance or task shortage.
	BarrierWaiting
	// LargeTasks: few coarse tasks relative to the team size limit load
	// balancing (the alignment/imbalance pattern).
	LargeTasks
	// DeepConcurrency: the per-thread maximum of concurrently active
	// task instances is high; memory for runtime and profiler grows with
	// it (Section V-B: dependency chains / recursion depth).
	DeepConcurrency

	// The remaining kinds are emitted by the wait-state classifier in
	// internal/bottleneck, not by the report detectors above. They carry
	// root-cause Attribution (which thread/region caused which other
	// thread's wait).

	// LateTaskSpawn: a thread's dispatch latency overlapped the spawn of
	// the task it then ran — the consumer was ready before the producer
	// had published the work (Scalasca's late-sender, transposed to
	// tasking).
	LateTaskSpawn
	// StarvedThief: a thread sat idle at a scheduling point while
	// another thread held created-but-unstarted tasks — work existed but
	// was not stolen/distributed.
	StarvedThief
	// BarrierImbalance: per-thread arrival-time skew at a matched
	// barrier instance; early arrivers wait for the last thread
	// (Scalasca's Wait-at-Barrier).
	BarrierImbalance
	// CriticalPathHotspot: one region dominates the task-graph critical
	// path; only shrinking it can shorten the run (what-if model).
	CriticalPathHotspot
)

var kindNames = map[Kind]string{
	SmallTasks:          "SMALL_TASKS",
	CreationDominates:   "CREATION_DOMINATES",
	SingleCreator:       "SINGLE_CREATOR",
	BarrierWaiting:      "BARRIER_WAITING",
	LargeTasks:          "LARGE_TASKS",
	DeepConcurrency:     "DEEP_CONCURRENCY",
	LateTaskSpawn:       "LATE_TASK_SPAWN",
	StarvedThief:        "STARVED_THIEF",
	BarrierImbalance:    "BARRIER_IMBALANCE",
	CriticalPathHotspot: "CRITICAL_PATH_HOTSPOT",
}

// String returns the finding kind tag.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("KIND(%d)", int(k))
}

// MarshalJSON emits the kind as its string tag so JSON reports stay
// readable and stable if the enum is ever reordered.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Attribution pins a wait-state finding to its root cause: which thread
// waited, which thread (and which region's work) made it wait, and for
// how long. Nil on findings without per-thread attribution.
type Attribution struct {
	// Victim is the waiting thread; -1 when the finding aggregates
	// several victims.
	Victim int `json:"victim"`
	// CauseThread is the thread responsible for the wait (the late
	// spawner, the hoarder, the last barrier arriver); -1 if unknown.
	CauseThread int `json:"causeThread"`
	// CauseRegion names the region whose work induced the wait.
	CauseRegion string `json:"causeRegion,omitempty"`
	// WaitNs is the attributed waiting time in nanoseconds.
	WaitNs int64 `json:"waitNs"`
}

// Finding is one diagnosed inefficiency.
type Finding struct {
	Kind Kind
	// Severity in [0,1]: fraction of the relevant time budget affected
	// (or a normalized indicator for structural findings).
	Severity float64
	// Construct names the task construct (or region) concerned; empty
	// for whole-program findings.
	Construct string
	// Evidence is a human-readable metric summary.
	Evidence string
	// Hint is the paper's optimization advice for the pattern.
	Hint string
	// Attribution carries root-cause data for wait-state findings;
	// nil for the report detectors' structural findings.
	Attribution *Attribution `json:",omitempty"`
}

// Thresholds tune the detectors; zero values select defaults.
type Thresholds struct {
	// SmallTaskRatio: flag when mean management cost per task exceeds
	// this fraction of mean task time (default 0.5).
	SmallTaskRatio float64
	// CreationShare: flag when creation time exceeds this fraction of
	// total task time (default 0.25).
	CreationShare float64
	// CreatorImbalance: flag when fewer than this fraction of threads
	// perform 90% of creations (default 0.5, only for teams > 1).
	CreatorImbalance float64
	// WaitingShare: flag when idle (exclusive) scheduling-point time
	// exceeds this fraction of total scheduling-point time (default 0.3).
	WaitingShare float64
	// TasksPerThread: flag LargeTasks when instances per thread are
	// below this (default 4).
	TasksPerThread float64
	// MaxConcurrent: flag DeepConcurrency above this (default 32).
	MaxConcurrent int
}

func (th Thresholds) normalized() Thresholds {
	if th.SmallTaskRatio == 0 {
		th.SmallTaskRatio = 0.5
	}
	if th.CreationShare == 0 {
		th.CreationShare = 0.25
	}
	if th.CreatorImbalance == 0 {
		th.CreatorImbalance = 0.5
	}
	if th.WaitingShare == 0 {
		th.WaitingShare = 0.3
	}
	if th.TasksPerThread == 0 {
		th.TasksPerThread = 4
	}
	if th.MaxConcurrent == 0 {
		th.MaxConcurrent = 32
	}
	return th
}

// Analyze diagnoses the report and returns findings ordered by severity.
func Analyze(rep *cube.Report, th Thresholds) []Finding {
	th = th.normalized()
	var out []Finding
	out = append(out, analyzeTaskGranularity(rep, th)...)
	out = append(out, analyzeCreators(rep, th)...)
	out = append(out, analyzeWaiting(rep, th)...)
	out = append(out, analyzeConcurrency(rep, th)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// analyzeTaskGranularity inspects each task construct's merged tree.
func analyzeTaskGranularity(rep *cube.Report, th Thresholds) []Finding {
	var out []Finding
	for _, tree := range rep.Tasks {
		name := tree.Region.Name
		n := tree.Dur.Count
		if n == 0 {
			continue
		}
		meanTask := tree.Dur.Mean()

		// Creation + taskwait management inside this construct; the
		// useful work per task is what remains after subtracting it.
		createSum := cube.SumInclusiveByType(tree, region.TaskCreate)
		twSum := cube.SumExclusiveByType(tree, region.Taskwait)
		mgmtPerTask := float64(createSum+twSum) / float64(n)
		workPerTask := meanTask - mgmtPerTask

		if workPerTask > 0 && mgmtPerTask/workPerTask > th.SmallTaskRatio {
			sev := mgmtPerTask / (mgmtPerTask + meanTask)
			out = append(out, Finding{
				Kind:      SmallTasks,
				Severity:  clamp01(sev),
				Construct: name,
				Evidence: fmt.Sprintf("mean task time %s vs. %s management per task (%d instances)",
					stats.FormatNs(int64(meanTask)), stats.FormatNs(int64(mgmtPerTask)), n),
				Hint: "create fewer but larger tasks, e.g. stop task creation below a recursion depth (cut-off)",
			})
		}

		if tree.Dur.Sum > 0 {
			share := float64(createSum) / float64(tree.Dur.Sum)
			if share > th.CreationShare {
				out = append(out, Finding{
					Kind:      CreationDominates,
					Severity:  clamp01(share),
					Construct: name,
					Evidence: fmt.Sprintf("%.0f%% of task time is task creation (%s of %s)",
						100*share, stats.FormatNs(createSum), stats.FormatNs(tree.Dur.Sum)),
					Hint: "reduce the number of created tasks; creation cost grows with thread count",
				})
			}
		}

		if rep.NumThreads > 1 && float64(n)/float64(rep.NumThreads) < th.TasksPerThread {
			out = append(out, Finding{
				Kind:      LargeTasks,
				Severity:  clamp01(1 - float64(n)/(th.TasksPerThread*float64(rep.NumThreads))),
				Construct: name,
				Evidence: fmt.Sprintf("only %d instances for %d threads (mean %s)",
					n, rep.NumThreads, stats.FormatNs(int64(meanTask))),
				Hint: "split work into more tasks to give the scheduler room to balance load",
			})
		}
	}
	return out
}

// analyzeCreators detects creation concentrated on few threads by the
// per-thread visit counts of task-creation regions across both trees.
func analyzeCreators(rep *cube.Report, th Thresholds) []Finding {
	if rep.NumThreads <= 1 {
		return nil
	}
	perThread := make(map[int]int64)
	var total int64
	count := func(root *cube.Node) {
		root.Walk(func(n *cube.Node, _ int) {
			if n.Kind == core.KindRegion && n.Region != nil && n.Region.Type == region.TaskCreate {
				for tid, v := range n.PerThreadVisits {
					perThread[tid] += v
					total += v
				}
			}
		})
	}
	count(rep.Main)
	for _, t := range rep.Tasks {
		count(t)
	}
	if total == 0 {
		return nil
	}
	// How many threads cover 90% of creations?
	counts := make([]int64, 0, len(perThread))
	for _, v := range perThread {
		counts = append(counts, v)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var acc int64
	creators := 0
	for _, v := range counts {
		acc += v
		creators++
		if float64(acc) >= 0.9*float64(total) {
			break
		}
	}
	frac := float64(creators) / float64(rep.NumThreads)
	if frac < th.CreatorImbalance {
		return []Finding{{
			Kind:     SingleCreator,
			Severity: clamp01(1 - frac),
			Evidence: fmt.Sprintf("%d of %d threads perform 90%% of %d task creations",
				creators, rep.NumThreads, total),
			Hint: "on larger scales task creation by few threads becomes a bottleneck; parallelize creation",
		}}
	}
	return nil
}

// analyzeWaiting inspects scheduling-point nodes in the main tree: their
// exclusive time is waiting/management, their stub children useful work.
func analyzeWaiting(rep *cube.Report, th Thresholds) []Finding {
	var syncTotal, syncIdle int64
	rep.Main.Walk(func(n *cube.Node, _ int) {
		if n.Kind != core.KindRegion || n.Region == nil {
			return
		}
		switch n.Region.Type {
		case region.Taskwait, region.Barrier, region.ImplicitBarrier:
			syncTotal += n.Dur.Sum
			syncIdle += n.ExclusiveSum()
		}
	})
	if syncTotal == 0 {
		return nil
	}
	share := float64(syncIdle) / float64(syncTotal)
	if share > th.WaitingShare {
		return []Finding{{
			Kind:     BarrierWaiting,
			Severity: clamp01(share),
			Evidence: fmt.Sprintf("%.0f%% of scheduling-point time is idle/management (%s of %s)",
				100*share, stats.FormatNs(syncIdle), stats.FormatNs(syncTotal)),
			Hint: "threads starve at barriers/taskwaits: provide more tasks, balance task sizes, or reduce management overhead",
		}}
	}
	return nil
}

// analyzeConcurrency flags deep instance nesting (memory pressure).
func analyzeConcurrency(rep *cube.Report, th Thresholds) []Finding {
	if rep.MaxConcurrent > th.MaxConcurrent {
		return []Finding{{
			Kind:     DeepConcurrency,
			Severity: clamp01(float64(rep.MaxConcurrent) / float64(4*th.MaxConcurrent)),
			Evidence: fmt.Sprintf("up to %d concurrently active task instances per thread", rep.MaxConcurrent),
			Hint:     "long dependency chains (deep recursion) grow runtime and profiler memory; bound the recursion depth",
		}}
	}
	return nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Format writes the findings report.
func Format(w io.Writer, findings []Finding) {
	if len(findings) == 0 {
		fmt.Fprintln(w, "no tasking inefficiencies detected")
		return
	}
	fmt.Fprintf(w, "%d finding(s):\n", len(findings))
	for i, f := range findings {
		fmt.Fprintf(w, "%2d. [%.2f] %s", i+1, f.Severity, f.Kind)
		if f.Construct != "" {
			fmt.Fprintf(w, " @ %s", f.Construct)
		}
		fmt.Fprintf(w, "\n      evidence: %s\n      hint:     %s\n", f.Evidence, f.Hint)
		if a := f.Attribution; a != nil {
			fmt.Fprintf(w, "      cause:    %s\n", a.Describe())
		}
	}
}

// Describe renders the attribution as one human-readable clause.
func (a *Attribution) Describe() string {
	victim := "multiple threads"
	if a.Victim >= 0 {
		victim = fmt.Sprintf("thread %d", a.Victim)
	}
	cause := "unknown thread"
	if a.CauseThread >= 0 {
		cause = fmt.Sprintf("thread %d", a.CauseThread)
	}
	s := fmt.Sprintf("%s waited %s on %s", victim, stats.FormatNs(a.WaitNs), cause)
	if a.CauseRegion != "" {
		s += fmt.Sprintf(" (%s)", a.CauseRegion)
	}
	return s
}
