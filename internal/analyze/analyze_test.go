package analyze

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/region"
)

// buildProfile constructs a deterministic profile: nThreads locations,
// tasksPerThread instances of taskNs each with createNs creation time,
// plus idleNs of pure barrier waiting per thread.
func buildProfile(nThreads, tasksPerThread int, taskNs, createNs, idleNs int64, singleCreator bool) *cube.Report {
	reg := region.NewRegistry()
	par := reg.Register("par", "a.go", 1, region.Parallel)
	bar := reg.Register("bar", "a.go", 2, region.ImplicitBarrier)
	task := reg.Register("work", "a.go", 3, region.Task)
	create := reg.Register("work (create)", "a.go", 3, region.TaskCreate)

	var locs []*core.ThreadProfile
	for tid := 0; tid < nThreads; tid++ {
		clk := clock.NewManual(0)
		p := core.NewThreadProfile(tid, clk)
		p.Enter(par)
		if !singleCreator || tid == 0 {
			creations := tasksPerThread
			if singleCreator {
				creations = tasksPerThread * nThreads
			}
			for i := 0; i < creations; i++ {
				p.Enter(create)
				clk.Advance(createNs)
				p.Exit(create)
			}
		}
		p.Enter(bar)
		for i := 0; i < tasksPerThread; i++ {
			p.TaskBegin(task)
			clk.Advance(taskNs)
			p.TaskEnd()
		}
		clk.Advance(idleNs)
		p.Exit(bar)
		p.Exit(par)
		p.Finish()
		locs = append(locs, p)
	}
	return cube.Aggregate(locs)
}

func kinds(fs []Finding) map[Kind]bool {
	m := make(map[Kind]bool)
	for _, f := range fs {
		m[f.Kind] = true
	}
	return m
}

func TestHealthyProfileHasNoFindings(t *testing.T) {
	// Coarse tasks (1ms), cheap creation (1µs), little idling.
	rep := buildProfile(4, 50, 1_000_000, 1_000, 10_000, false)
	fs := Analyze(rep, Thresholds{})
	if len(fs) != 0 {
		var buf bytes.Buffer
		Format(&buf, fs)
		t.Errorf("unexpected findings:\n%s", buf.String())
	}
}

func TestSmallTasksDetected(t *testing.T) {
	// Tiny tasks (1µs) with creation cost of the same order, inside the
	// task construct tree (creation inside tasks like nqueens would be;
	// here creation is on the implicit path so SmallTasks relies on
	// taskwait/create inside the tree — emulate with create inside task).
	reg := region.NewRegistry()
	bar := reg.Register("bar", "a.go", 1, region.ImplicitBarrier)
	task := reg.Register("work", "a.go", 2, region.Task)
	create := reg.Register("work (create)", "a.go", 2, region.TaskCreate)
	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	p.Enter(bar)
	for i := 0; i < 1000; i++ {
		p.TaskBegin(task)
		p.Enter(create) // tasks creating children, paying creation cost
		clk.Advance(900)
		p.Exit(create)
		clk.Advance(1000) // own work
		p.TaskEnd()
	}
	p.Exit(bar)
	p.Finish()
	rep := cube.Aggregate([]*core.ThreadProfile{p})

	fs := Analyze(rep, Thresholds{})
	k := kinds(fs)
	if !k[SmallTasks] {
		var buf bytes.Buffer
		Format(&buf, fs)
		t.Errorf("SmallTasks not detected:\n%s", buf.String())
	}
	if !k[CreationDominates] {
		t.Error("CreationDominates not detected (47% creation share)")
	}
}

func TestSingleCreatorDetected(t *testing.T) {
	rep := buildProfile(8, 20, 1_000_000, 1_000, 0, true)
	fs := Analyze(rep, Thresholds{})
	if !kinds(fs)[SingleCreator] {
		t.Error("SingleCreator not detected for 1-of-8 creator")
	}
}

func TestBarrierWaitingDetected(t *testing.T) {
	// 50µs of tasks vs 200µs idle per thread.
	rep := buildProfile(4, 5, 10_000, 100, 200_000, false)
	fs := Analyze(rep, Thresholds{})
	if !kinds(fs)[BarrierWaiting] {
		t.Error("BarrierWaiting not detected")
	}
}

func TestLargeTasksDetected(t *testing.T) {
	// One coarse task per thread for 8 threads.
	rep := buildProfile(8, 1, 5_000_000, 1_000, 0, false)
	fs := Analyze(rep, Thresholds{})
	if !kinds(fs)[LargeTasks] {
		t.Error("LargeTasks not detected for 1 task/thread")
	}
}

func TestDeepConcurrencyDetected(t *testing.T) {
	reg := region.NewRegistry()
	bar := reg.Register("bar", "a.go", 1, region.ImplicitBarrier)
	task := reg.Register("work", "a.go", 2, region.Task)
	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	p.Enter(bar)
	// Nest 100 suspended instances.
	var open []*core.TaskInstance
	for i := 0; i < 100; i++ {
		open = append(open, p.TaskBegin(task))
		clk.Advance(10)
	}
	for i := len(open) - 1; i >= 0; i-- {
		p.TaskEnd()
		if i > 0 {
			p.TaskSwitchTo(open[i-1])
		}
	}
	p.Exit(bar)
	p.Finish()
	rep := cube.Aggregate([]*core.ThreadProfile{p})
	fs := Analyze(rep, Thresholds{})
	if !kinds(fs)[DeepConcurrency] {
		t.Error("DeepConcurrency not detected at 100 nested instances")
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	rep := buildProfile(8, 1, 5_000_000, 1_000, 50_000_000, true)
	fs := Analyze(rep, Thresholds{})
	for i := 1; i < len(fs); i++ {
		if fs[i].Severity > fs[i-1].Severity {
			t.Errorf("findings not sorted: %f after %f", fs[i].Severity, fs[i-1].Severity)
		}
	}
}

func TestFormatOutput(t *testing.T) {
	var buf bytes.Buffer
	Format(&buf, nil)
	if !strings.Contains(buf.String(), "no tasking inefficiencies") {
		t.Error("empty findings text wrong")
	}
	buf.Reset()
	Format(&buf, []Finding{{
		Kind: SmallTasks, Severity: 0.9, Construct: "fib.task",
		Evidence: "e", Hint: "h",
	}})
	out := buf.String()
	for _, want := range []string{"SMALL_TASKS", "fib.task", "evidence: e", "hint:     h"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in %q", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := SmallTasks; k <= DeepConcurrency; k++ {
		if strings.HasPrefix(k.String(), "KIND(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Kind(42).String() != "KIND(42)" {
		t.Error("fallback broken")
	}
}
