package bottleneck

import (
	"sort"

	"repro/internal/analyze"
)

// taskInfo is the merged cross-thread view of one task instance.
type taskInfo struct {
	id          uint64
	region      string
	creator     int
	createBegin int64
	createEnd   int64
	created     bool
	beginThread int
	firstBegin  int64
	hasBegin    bool
	endThread   int
	end         int64
	hasEnd      bool
}

// pendingWindow is a task's created-but-unstarted span.
type pendingWindow struct {
	task    uint64
	creator int
	region  string
	start   int64 // createEnd
	end     int64 // firstBegin, or analysis end when never begun
}

// finishCollectors merges the per-thread raw material and runs
// classification and critical-path reconstruction. Every loop iterates
// threads in sorted-tid order and uses deterministic tie-breaks, so the
// result is identical regardless of observation sharding.
func finishCollectors(threads map[int]*threadCollector) *Analysis {
	a := &Analysis{PerThread: make(map[int]*ThreadWaits)}

	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	a.Threads = len(tids)
	if len(tids) == 0 {
		a.CriticalPath.Regions = []PathRegion{}
		a.WaitStates = []WaitState{}
		a.Barriers = []BarrierInstance{}
		a.Findings = []analyze.Finding{}
		return a
	}

	first := true
	for _, tid := range tids {
		tc := threads[tid]
		if !tc.firstValid {
			continue
		}
		if first || tc.firstTime < a.StartTime {
			a.StartTime = tc.firstTime
		}
		if first || tc.lastTime > a.EndTime {
			a.EndTime = tc.lastTime
		}
		first = false
	}
	a.WallTime = a.EndTime - a.StartTime

	tasks := mergeTasks(threads, tids)
	waits := newWaitTally()

	classifyDispatchGaps(a, threads, tids, tasks, waits)
	instances, visitIndex := matchBarriers(a, threads, tids)
	classifyIdle(a, threads, tids, tasks, instances, waits)

	a.WaitStates = waits.sorted()
	buildCriticalPath(a, threads, tids, tasks, instances, visitIndex)
	a.Findings = emitFindings(a)
	return a
}

// mergeTasks builds the global task table from all threads' create,
// begin and end stamps. Iteration is in sorted-tid order; duplicate
// records for one task id (malformed or windowed traces) keep the first
// seen in that order.
func mergeTasks(threads map[int]*threadCollector, tids []int) map[uint64]*taskInfo {
	tasks := make(map[uint64]*taskInfo)
	get := func(id uint64) *taskInfo {
		ti, ok := tasks[id]
		if !ok {
			ti = &taskInfo{id: id, region: UnknownRegion, creator: -1, beginThread: -1, endThread: -1}
			tasks[id] = ti
		}
		return ti
	}
	for _, tid := range tids {
		tc := threads[tid]
		for i := range tc.created {
			c := &tc.created[i]
			ti := get(c.id)
			if !ti.created {
				ti.created = true
				ti.creator = tid
				ti.createBegin = c.begin
				ti.createEnd = c.end
				ti.region = c.region
			}
		}
		for _, b := range tc.begins {
			ti := get(b.id)
			if !ti.hasBegin {
				ti.hasBegin = true
				ti.beginThread = tid
				ti.firstBegin = b.time
			}
		}
		for _, e := range tc.ends {
			ti := get(e.id)
			// Keep the latest end: a task may be suspended and resumed,
			// but EvTaskEnd is terminal, so any duplicate means a
			// malformed stream — the latest is the safest completion.
			if !ti.hasEnd || e.time > ti.end {
				ti.hasEnd = true
				ti.endThread = tid
				ti.end = e.time
			}
		}
	}
	return tasks
}

// waitTally aggregates classified waits per (kind, victim, cause,
// region).
type waitTally struct {
	m map[waitKey]*WaitState
}

type waitKey struct {
	kind        analyze.Kind
	thread      int
	causeThread int
	region      string
}

func newWaitTally() *waitTally { return &waitTally{m: make(map[waitKey]*WaitState)} }

func (t *waitTally) add(kind analyze.Kind, victim, cause int, region string, d int64) {
	if d <= 0 {
		return
	}
	k := waitKey{kind, victim, cause, region}
	ws, ok := t.m[k]
	if !ok {
		ws = &WaitState{Kind: kind, Thread: victim, CauseThread: cause, Region: region}
		t.m[k] = ws
	}
	ws.Time += d
	ws.Count++
}

func (t *waitTally) sorted() []WaitState {
	out := make([]WaitState, 0, len(t.m))
	for _, ws := range t.m {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.CauseThread != b.CauseThread {
			return a.CauseThread < b.CauseThread
		}
		return a.Region < b.Region
	})
	return out
}

// classifyDispatchGaps splits every dispatch gap into a late-spawn
// portion (the gap overlapped the spawned task's creation, and the
// creator is a different thread) and a plain-dispatch remainder.
//
// Detection rule: for a gap [g.start, g.end) on victim w ending at the
// FIRST begin of task T, with T created by thread c != w and
// g.start < T.createEnd, the span [g.start, min(T.createEnd, g.end)] is
// LateTaskSpawn wait caused by c on T's region. Everything else —
// resume gaps, self-created tasks, tasks whose creation fell outside
// the window — is plain dispatch latency.
func classifyDispatchGaps(a *Analysis, threads map[int]*threadCollector, tids []int, tasks map[uint64]*taskInfo, waits *waitTally) {
	for _, tid := range tids {
		tc := threads[tid]
		tw := perThread(a, tid)
		for _, g := range tc.gaps {
			gapLen := g.end - g.start
			if gapLen <= 0 {
				continue
			}
			late := int64(0)
			var ti *taskInfo
			if g.firstBegin {
				ti = tasks[g.task]
			}
			if ti != nil && ti.created && ti.creator != tid && g.start < ti.createEnd {
				lateEnd := ti.createEnd
				if lateEnd > g.end {
					lateEnd = g.end
				}
				late = lateEnd - g.start
				waits.add(analyze.LateTaskSpawn, tid, ti.creator, ti.region, late)
			}
			tw.LateSpawnWait += late
			tw.PlainDispatchWait += gapLen - late
		}
	}
}

// matchBarriers matches the per-thread barrier visits into collective
// instances: the n-th visit of each thread to the same barrier region
// (by full descriptor) forms instance n. Instances with at least two
// participants are collective; Skew is the arrival spread and
// LastThread the last arriver (ties: smallest tid).
//
// Taskwait regions are thread-local synchronization and are not
// collectively matched.
func matchBarriers(a *Analysis, threads map[int]*threadCollector, tids []int) (map[instanceKey]*instance, map[int][]visitRef) {
	type visit struct {
		tid         int
		enter, exit int64
	}
	byKey := make(map[instanceKey][]visit)
	names := make(map[string]string)
	for _, tid := range tids {
		ordinal := make(map[string]int)
		tc := threads[tid]
		for _, bv := range tc.barriers {
			n := ordinal[bv.key]
			ordinal[bv.key] = n + 1
			k := instanceKey{region: bv.key, ordinal: n}
			byKey[k] = append(byKey[k], visit{tid, bv.enter, bv.exit})
			names[bv.key] = bv.name
		}
	}

	instances := make(map[instanceKey]*instance)
	visitIndex := make(map[int][]visitRef)
	keys := make([]instanceKey, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		return keys[i].ordinal < keys[j].ordinal
	})
	for _, k := range keys {
		vs := byKey[k]
		if len(vs) < 2 {
			continue
		}
		inst := &instance{key: k, name: names[k.region]}
		inst.firstArrival = vs[0].enter
		inst.lastArrival = vs[0].enter
		inst.lastThread = vs[0].tid
		inst.arrivals = make(map[int]int64, len(vs))
		inst.exits = make(map[int]int64, len(vs))
		for _, v := range vs {
			inst.arrivals[v.tid] = v.enter
			inst.exits[v.tid] = v.exit
			if v.enter < inst.firstArrival {
				inst.firstArrival = v.enter
			}
			if v.enter > inst.lastArrival {
				inst.lastArrival = v.enter
				inst.lastThread = v.tid
			}
		}
		// Deterministic last-arriver tie-break: smallest tid among the
		// latest arrivals.
		for _, v := range vs {
			if v.enter == inst.lastArrival && v.tid < inst.lastThread {
				inst.lastThread = v.tid
			}
		}
		instances[k] = inst
		for _, v := range vs {
			visitIndex[v.tid] = append(visitIndex[v.tid], visitRef{inst: inst, enter: v.enter, exit: v.exit})
		}
		a.Barriers = append(a.Barriers, BarrierInstance{
			Region:       inst.name,
			Ordinal:      k.ordinal,
			Threads:      len(vs),
			FirstArrival: inst.firstArrival,
			LastArrival:  inst.lastArrival,
			LastThread:   inst.lastThread,
			Skew:         inst.lastArrival - inst.firstArrival,
		})
	}
	if a.Barriers == nil {
		a.Barriers = []BarrierInstance{}
	}
	for tid := range visitIndex {
		refs := visitIndex[tid]
		sort.Slice(refs, func(i, j int) bool { return refs[i].exit < refs[j].exit })
	}
	return instances, visitIndex
}

type instanceKey struct {
	region  string
	ordinal int
}

type instance struct {
	key          instanceKey
	name         string
	firstArrival int64
	lastArrival  int64
	lastThread   int
	arrivals     map[int]int64
	exits        map[int]int64
}

// visitRef ties one thread's barrier visit to its matched instance,
// sorted by exit time per thread for the critical-path walk.
type visitRef struct {
	inst        *instance
	enter, exit int64
}

// classifyIdle splits every idle span inside a sync region into a
// starved-thief portion (overlap with another thread's
// created-but-unstarted tasks), a barrier-imbalance portion (the
// remainder that falls between this thread's arrival and the last
// arrival of a matched barrier instance), and unclassified idle.
// Starved-thief takes precedence over barrier imbalance: work that
// existed but was not distributed is the actionable diagnosis.
func classifyIdle(a *Analysis, threads map[int]*threadCollector, tids []int, tasks map[uint64]*taskInfo, instances map[instanceKey]*instance, waits *waitTally) {
	// Pending windows, sorted by start, for the sweep.
	var pending []pendingWindow
	taskIDs := make([]uint64, 0, len(tasks))
	for id := range tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Slice(taskIDs, func(i, j int) bool { return taskIDs[i] < taskIDs[j] })
	for _, id := range taskIDs {
		ti := tasks[id]
		if !ti.created {
			continue
		}
		end := a.EndTime
		if ti.hasBegin {
			end = ti.firstBegin
		}
		if end <= ti.createEnd {
			continue
		}
		pending = append(pending, pendingWindow{
			task: id, creator: ti.creator, region: ti.region, start: ti.createEnd, end: end,
		})
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].start != pending[j].start {
			return pending[i].start < pending[j].start
		}
		return pending[i].task < pending[j].task
	})

	for _, tid := range tids {
		tc := threads[tid]
		tw := perThread(a, tid)
		// Barrier wait windows for this thread: [arrival, lastArrival]
		// of every matched instance it participated in where it was not
		// the last arriver.
		var barWins []span
		for _, inst := range instancesFor(instances, tid) {
			arr := inst.arrivals[tid]
			if inst.lastThread != tid && inst.lastArrival > arr {
				barWins = append(barWins, span{arr, inst.lastArrival})
			}
		}
		sort.Slice(barWins, func(i, j int) bool { return barWins[i].start < barWins[j].start })

		next := 0
		var active []pendingWindow
		for _, idle := range tc.idles {
			idleLen := idle.end - idle.start
			if idleLen <= 0 {
				continue
			}
			// Sweep pending windows into the active set.
			for next < len(pending) && pending[next].start < idle.end {
				active = append(active, pending[next])
				next++
			}
			// Prune windows that ended before this idle span.
			live := active[:0]
			for _, pw := range active {
				if pw.end > idle.start {
					live = append(live, pw)
				}
			}
			active = live

			// Starved-thief: overlap with other threads' pending tasks.
			// The classified portion is the union of the overlaps; the
			// cause is the creator with the largest summed overlap, the
			// region its single most-overlapping task.
			var overlaps []span
			perCreator := make(map[int]int64)
			bestTask := make(map[int]*pendingWindow)
			bestTaskOv := make(map[int]int64)
			for i := range active {
				pw := &active[i]
				if pw.creator == tid || pw.creator < 0 {
					continue
				}
				ov := overlap(idle, span{pw.start, pw.end})
				if ov.end <= ov.start {
					continue
				}
				overlaps = append(overlaps, ov)
				d := ov.end - ov.start
				perCreator[pw.creator] += d
				if d > bestTaskOv[pw.creator] || (d == bestTaskOv[pw.creator] && bestTask[pw.creator] != nil && pw.task < bestTask[pw.creator].task) {
					bestTaskOv[pw.creator] = d
					bestTask[pw.creator] = pw
				}
			}
			merged := mergeSpans(overlaps)
			var starved int64
			for _, s := range merged {
				starved += s.end - s.start
			}
			if starved > 0 {
				cause := -1
				var causeTime int64
				creators := make([]int, 0, len(perCreator))
				for c := range perCreator {
					creators = append(creators, c)
				}
				sort.Ints(creators)
				for _, c := range creators {
					if perCreator[c] > causeTime {
						causeTime = perCreator[c]
						cause = c
					}
				}
				reg := UnknownRegion
				if bt := bestTask[cause]; bt != nil {
					reg = bt.region
				}
				waits.add(analyze.StarvedThief, tid, cause, reg, starved)
				tw.StarvedWait += starved
			}

			// Barrier imbalance: the unclaimed remainder intersected
			// with this thread's barrier wait windows.
			remainder := subtractSpans(idle, merged)
			var barrier int64
			for _, r := range remainder {
				for _, bw := range barWins {
					ov := overlap(r, bw)
					if ov.end > ov.start {
						barrier += ov.end - ov.start
					}
				}
			}
			if barrier > 0 {
				// Attribute to the instance containing the idle span's
				// start (deterministic: windows are per-thread disjoint
				// in well-formed traces; first match wins).
				cause, reg := barrierCause(instances, tid, idle)
				waits.add(analyze.BarrierImbalance, tid, cause, reg, barrier)
				tw.BarrierWait += barrier
			}

			tw.UnclassifiedIdle += idleLen - starved - barrier
		}
	}
}

// instancesFor lists the matched instances thread tid participated in,
// in deterministic key order.
func instancesFor(instances map[instanceKey]*instance, tid int) []*instance {
	keys := make([]instanceKey, 0, len(instances))
	for k, inst := range instances {
		if _, ok := inst.arrivals[tid]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		return keys[i].ordinal < keys[j].ordinal
	})
	out := make([]*instance, len(keys))
	for i, k := range keys {
		out[i] = instances[k]
	}
	return out
}

// barrierCause names the last arriver and region of the instance whose
// wait window overlaps the idle span (first in key order).
func barrierCause(instances map[instanceKey]*instance, tid int, idle span) (int, string) {
	for _, inst := range instancesFor(instances, tid) {
		arr := inst.arrivals[tid]
		if inst.lastThread == tid {
			continue
		}
		if ov := overlap(idle, span{arr, inst.lastArrival}); ov.end > ov.start {
			return inst.lastThread, inst.name
		}
	}
	return -1, ""
}

func perThread(a *Analysis, tid int) *ThreadWaits {
	tw, ok := a.PerThread[tid]
	if !ok {
		tw = &ThreadWaits{ThreadID: tid}
		a.PerThread[tid] = tw
	}
	return tw
}

func overlap(a, b span) span {
	s, e := a.start, a.end
	if b.start > s {
		s = b.start
	}
	if b.end < e {
		e = b.end
	}
	return span{s, e}
}

// mergeSpans unions possibly-overlapping spans into disjoint ones.
func mergeSpans(spans []span) []span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// subtractSpans removes the (disjoint, sorted) holes from base.
func subtractSpans(base span, holes []span) []span {
	var out []span
	cur := base.start
	for _, h := range holes {
		if h.start > cur {
			out = append(out, span{cur, h.start})
		}
		if h.end > cur {
			cur = h.end
		}
	}
	if base.end > cur {
		out = append(out, span{cur, base.end})
	}
	return out
}
