// Package bottleneck implements Scalasca-style automatic bottleneck
// analysis over the per-thread task event streams: wait-state
// classification with root-cause attribution, a task-graph critical
// path, and per-region "what-if" savings projections.
//
// Where internal/trace answers "how much time went to task management
// vs. execution" in aggregate, this package answers *why threads
// waited* and *which wait matters*. It classifies three wait states,
// each the tasking transposition of a classic Scalasca MPI pattern:
//
//   - Late task spawn (late-sender): a thread's dispatch gap overlapped
//     the spawning of the task it then ran — the consumer was ready
//     before the producer had published the work.
//   - Starved thief: a thread sat idle inside a scheduling-point region
//     while another thread held created-but-unstarted tasks — work
//     existed elsewhere but was not distributed.
//   - Barrier imbalance (Wait-at-Barrier): per-thread arrival skew at a
//     matched barrier instance; every early arriver waits for the last.
//
// On top of the per-thread timelines it reconstructs the task-graph
// critical path — the chain of task fragments, spawn edges and barrier
// hand-offs that bounds the wall time — and projects what-if savings:
// how much wall time a 10/25/50% reduction of one region's on-path time
// could save, bounded by the critical path.
//
// The collectors mirror internal/trace's analyzers: a sequential
// Collector, and a ParallelCollector shardable per thread whose Finish
// is reflect.DeepEqual-identical to the sequential one at any worker
// count. The sync-region bookkeeping is driven through the same
// trace.SyncCoverage state machine as ThreadAnalysis.IdleInSync, so the
// two layers share one definition of sync coverage by construction.
// Analysis results carry region *names*, never *region.Region pointers,
// so results from different Registry instances compare equal.
package bottleneck

import (
	"runtime"
	"sync"

	"repro/internal/analyze"
	"repro/internal/region"
	"repro/internal/trace"
)

// ImplicitRegion is the pseudo-region name used for critical-path time
// spent outside explicit task fragments (the implicit task).
const ImplicitRegion = "<implicit task>"

// UnknownRegion is the pseudo-region name for fragments of tasks whose
// creation fell outside the analyzed window.
const UnknownRegion = "<unknown task>"

// Analysis is the full bottleneck report for one recording. All fields
// are value types and region names (no registry pointers), so analyses
// of the same event stream are reflect.DeepEqual-comparable regardless
// of worker count, archive format or registry instance.
type Analysis struct {
	// Threads is the number of threads observed.
	Threads int
	// StartTime and EndTime bound the observed events; WallTime is
	// their difference.
	StartTime int64
	EndTime   int64
	WallTime  int64
	// PerThread breaks each thread's waiting down by class.
	PerThread map[int]*ThreadWaits
	// WaitStates are the classified waits, aggregated per
	// (kind, victim, cause, region) and deterministically ordered.
	WaitStates []WaitState
	// Barriers are the matched collective barrier instances.
	Barriers []BarrierInstance
	// CriticalPath is the reconstructed task-graph critical path.
	CriticalPath CriticalPath
	// Findings are the wait states and path hotspot rendered as typed
	// findings with severity and root-cause attribution, ordered by
	// severity.
	Findings []analyze.Finding
}

// ThreadWaits partitions one thread's waiting time. Dispatch gaps split
// into LateSpawnWait + PlainDispatchWait; idle spans inside sync
// regions split into StarvedWait + BarrierWait + UnclassifiedIdle.
type ThreadWaits struct {
	ThreadID int
	// LateSpawnWait is dispatch-gap time overlapping the spawn of the
	// task the gap ended in (the spawner was still publishing).
	LateSpawnWait int64
	// PlainDispatchWait is the rest of the dispatch-gap time (scheduler
	// overhead proper).
	PlainDispatchWait int64
	// StarvedWait is idle time while another thread held
	// created-but-unstarted tasks.
	StarvedWait int64
	// BarrierWait is idle time attributable to barrier arrival skew
	// (waiting for the last arriver).
	BarrierWait int64
	// UnclassifiedIdle is the idle remainder no classifier claimed.
	UnclassifiedIdle int64
}

// TotalWait sums every classified and unclassified wait bucket.
func (t *ThreadWaits) TotalWait() int64 {
	return t.LateSpawnWait + t.PlainDispatchWait + t.StarvedWait + t.BarrierWait + t.UnclassifiedIdle
}

// WaitState is one classified wait aggregate: victim thread Thread
// waited Time ns (over Count intervals) because of CauseThread, tied to
// Region (the late-spawned task's region, the hoarded task's region, or
// the barrier region).
type WaitState struct {
	Kind        analyze.Kind
	Thread      int
	CauseThread int
	Region      string
	Time        int64
	Count       int64
}

// BarrierInstance is one matched collective barrier: the n-th visit
// (Ordinal, 0-based) of every participating thread to the same barrier
// region. Skew = LastArrival - FirstArrival; LastThread is the last
// arriver (the thread the others waited for).
type BarrierInstance struct {
	Region       string
	Ordinal      int
	Threads      int
	FirstArrival int64
	LastArrival  int64
	LastThread   int
	Skew         int64
}

// CriticalPath is the reconstructed longest dependency chain. Length =
// EndTime - StartTime and partitions exactly into the per-region times
// plus the three wait buckets: sum(Regions[i].Time) + SpawnWait +
// JoinWait + Other == Length.
type CriticalPath struct {
	StartTime int64
	EndTime   int64
	Length    int64
	// Segments counts the attributed path spans.
	Segments int64
	// SpawnWait is path time between a task's creation and its first
	// fragment (the task sat created-but-unstarted on the path).
	SpawnWait int64
	// JoinWait is path time between a child task's completion and the
	// parent's resumption.
	JoinWait int64
	// Other is barrier hand-off overhead plus any walk remainder the
	// reconstruction could not attribute.
	Other int64
	// Regions is the per-region on-path time, descending.
	Regions []PathRegion
}

// PathRegion is one region's share of the critical path, with what-if
// projections: WhatIfN is the projected wall-time saving if the
// region's on-path time shrank by N% (savings model: the path structure
// is held fixed, so the projection is an upper bound tight for
// path-dominating regions).
type PathRegion struct {
	Region   string
	Time     int64
	Share    float64
	WhatIf10 int64
	WhatIf25 int64
	WhatIf50 int64
}

// span is a half-open time interval [Start, End).
type span struct{ start, end int64 }

// taskCreate is one observed task creation (EvTaskCreateBegin ..
// EvTaskCreateEnd on the creating thread's stream).
type taskCreate struct {
	id         uint64
	region     string
	begin, end int64
}

// taskStamp is a (task, time) pair for begins and ends.
type taskStamp struct {
	id   uint64
	time int64
}

// frag is one executed task fragment.
type frag struct {
	task       uint64
	start, end int64
}

// dispatchGap is one consumed readiness window ending at a fragment
// begin; firstBegin records whether the fragment began via EvTaskBegin
// (the task's very first fragment) rather than a resume switch.
type dispatchGap struct {
	task       uint64
	start, end int64
	firstBegin bool
}

// barrierVisit is one enter/exit of an explicit or implicit barrier
// region on one thread. key is the region's full descriptor (used for
// cross-thread matching), name its display name.
type barrierVisit struct {
	key, name   string
	enter, exit int64
}

// threadCollector accumulates one thread's raw material. It owns no
// references into pipeline-recycled event slices: only region names and
// scalar facts are retained.
type threadCollector struct {
	tid int

	sc        trace.SyncCoverage
	coverEnd  int64 // end of the last covered span in the open sync instance
	fragStart int64
	inFrag    bool
	curTask   uint64
	inCreate  bool
	createAt  int64

	firstValid bool
	firstTime  int64
	lastTime   int64

	created  []taskCreate
	begins   []taskStamp
	ends     []taskStamp
	frags    []frag
	gaps     []dispatchGap
	idles    []span
	barriers []barrierVisit
	barStack []barrierVisit // open barrier enters (exit pending)
}

func barrierRegion(r *region.Region) bool {
	if r == nil {
		return false
	}
	return r.Type == region.Barrier || r.Type == region.ImplicitBarrier
}

func (tc *threadCollector) observe(ev trace.Event) {
	if !tc.firstValid {
		tc.firstTime = ev.Time
		tc.firstValid = true
	}
	tc.lastTime = ev.Time

	switch ev.Type {
	case trace.EvEnter:
		if trace.SchedulingPointEvent(ev) {
			if tc.sc.Depth == 0 {
				tc.coverEnd = ev.Time
			}
			tc.sc.EnterSync(ev.Time)
		}
		if barrierRegion(ev.Region) {
			tc.barStack = append(tc.barStack, barrierVisit{
				key: ev.Region.String(), name: ev.Region.Name, enter: ev.Time,
			})
		}
	case trace.EvExit:
		if trace.SchedulingPointEvent(ev) {
			if _, _, closed := tc.sc.ExitSync(ev.Time); closed {
				// Trailing idle: the tail of the instance no fragment
				// or dispatch gap covered.
				if ev.Time > tc.coverEnd {
					tc.idles = append(tc.idles, span{tc.coverEnd, ev.Time})
				}
			}
		}
		if barrierRegion(ev.Region) && len(tc.barStack) > 0 {
			b := tc.barStack[len(tc.barStack)-1]
			tc.barStack = tc.barStack[:len(tc.barStack)-1]
			b.exit = ev.Time
			tc.barriers = append(tc.barriers, b)
		}
	case trace.EvTaskCreateBegin:
		tc.createAt = ev.Time
		tc.inCreate = true
	case trace.EvTaskCreateEnd:
		if tc.inCreate {
			name := UnknownRegion
			if ev.Region != nil {
				name = ev.Region.Name
			}
			tc.created = append(tc.created, taskCreate{
				id: ev.TaskID, region: name, begin: tc.createAt, end: ev.Time,
			})
			tc.inCreate = false
		}
	case trace.EvTaskBegin:
		tc.endFragment(ev.Time)
		tc.beginFragment(ev.Time, ev.TaskID, true)
		tc.begins = append(tc.begins, taskStamp{ev.TaskID, ev.Time})
	case trace.EvTaskEnd:
		tc.endFragment(ev.Time)
		tc.ends = append(tc.ends, taskStamp{ev.TaskID, ev.Time})
		if tc.sc.Depth > 0 {
			tc.sc.MarkReady(ev.Time)
		}
	case trace.EvTaskSwitch:
		tc.endFragment(ev.Time)
		if ev.TaskID != 0 {
			tc.beginFragment(ev.Time, ev.TaskID, false)
		} else if tc.sc.Depth > 0 {
			tc.sc.MarkReady(ev.Time)
		}
	}
}

func (tc *threadCollector) endFragment(t int64) {
	if !tc.inFrag {
		return
	}
	tc.frags = append(tc.frags, frag{tc.curTask, tc.fragStart, t})
	tc.sc.Cover(t - tc.fragStart)
	if tc.sc.Depth > 0 {
		tc.coverEnd = t
	}
	tc.inFrag = false
}

func (tc *threadCollector) beginFragment(t int64, task uint64, firstBegin bool) {
	if start, _, ok := tc.sc.TakeDispatch(t); ok {
		// Idle between the last covered span and the (possibly
		// re-stamped) readiness the gap starts at.
		if tc.sc.Depth > 0 && start > tc.coverEnd {
			tc.idles = append(tc.idles, span{tc.coverEnd, start})
		}
		tc.gaps = append(tc.gaps, dispatchGap{task: task, start: start, end: t, firstBegin: firstBegin})
		if tc.sc.Depth > 0 {
			tc.coverEnd = t
		}
	} else if tc.sc.Depth > 0 && t > tc.coverEnd {
		// Fragment begins with no open readiness (e.g. directly after a
		// suspension): the uncovered span before it is idle.
		tc.idles = append(tc.idles, span{tc.coverEnd, t})
		tc.coverEnd = t
	}
	tc.fragStart = t
	tc.curTask = task
	tc.inFrag = true
}

// Collector is the sequential bottleneck collector. Feed every event of
// every thread in per-thread order via Observe, then call Finish once.
type Collector struct {
	threads map[int]*threadCollector
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{threads: make(map[int]*threadCollector)}
}

// Observe feeds one event of thread tid. Events of one thread must
// arrive in stream order; threads may interleave arbitrarily.
func (c *Collector) Observe(tid int, ev trace.Event) {
	tc, ok := c.threads[tid]
	if !ok {
		tc = &threadCollector{tid: tid}
		c.threads[tid] = tc
	}
	tc.observe(ev)
}

// ObserveQuery is Observe restricted to events matching q.
func (c *Collector) ObserveQuery(tid int, ev trace.Event, q trace.Query) {
	if q.Match(tid, ev) {
		c.Observe(tid, ev)
	}
}

// Finish runs classification and path reconstruction and returns the
// analysis. The collector must not be reused afterwards.
func (c *Collector) Finish() *Analysis { return finishCollectors(c.threads) }

// ParallelCollector is the shard-safe collector: ObserveBatch may be
// called concurrently for different threads, with each thread's batches
// delivered in order by one goroutine at a time (the same contract as
// trace.ParallelAnalyzer). Finish is reflect.DeepEqual-identical to the
// sequential Collector on the same stream.
type ParallelCollector struct {
	mu      sync.Mutex
	threads map[int]*threadCollector
}

// NewParallelCollector returns an empty parallel collector.
func NewParallelCollector() *ParallelCollector {
	return &ParallelCollector{threads: make(map[int]*threadCollector)}
}

// ObserveBatch feeds one in-order run of thread tid's events. The lock
// covers only the shard lookup; the scan runs unlocked under the
// per-thread serialization contract. The batch slice is not retained.
func (p *ParallelCollector) ObserveBatch(tid int, events []trace.Event) {
	p.mu.Lock()
	tc, ok := p.threads[tid]
	if !ok {
		tc = &threadCollector{tid: tid}
		p.threads[tid] = tc
	}
	p.mu.Unlock()
	for i := range events {
		tc.observe(events[i])
	}
}

// ObserveBatchQuery is ObserveBatch restricted to events matching q.
// Like trace.ParallelAnalyzer.ObserveBatchQuery, the thread's state is
// created lazily on the first matching event so threads the query
// excludes never surface in PerThread.
func (p *ParallelCollector) ObserveBatchQuery(tid int, events []trace.Event, q trace.Query) {
	if !q.MatchThread(tid) {
		return
	}
	if !q.Windowed {
		p.ObserveBatch(tid, events)
		return
	}
	var tc *threadCollector
	for i := range events {
		if !q.MatchTime(events[i].Time) {
			continue
		}
		if tc == nil {
			p.mu.Lock()
			tc = p.threads[tid]
			if tc == nil {
				tc = &threadCollector{tid: tid}
				p.threads[tid] = tc
			}
			p.mu.Unlock()
		}
		tc.observe(events[i])
	}
}

// Finish runs classification and returns the analysis. All ObserveBatch
// calls must have completed; the collector must not be reused.
func (p *ParallelCollector) Finish() *Analysis { return finishCollectors(p.threads) }

// Analyze runs the bottleneck analysis over an in-memory trace.
func Analyze(tr *trace.Trace) *Analysis {
	c := NewCollector()
	for tid, events := range tr.Threads {
		for i := range events {
			c.Observe(tid, events[i])
		}
	}
	return c.Finish()
}

// AnalyzeQuery analyzes the sub-trace matching q using up to workers
// goroutines (one per thread at a time; workers <= 0 uses GOMAXPROCS).
// The result is reflect.DeepEqual-identical at every worker count.
func AnalyzeQuery(tr *trace.Trace, q trace.Query, workers int) *Analysis {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(tr.Threads) <= 1 {
		c := NewCollector()
		for tid, events := range tr.Threads {
			for i := range events {
				c.ObserveQuery(tid, events[i], q)
			}
		}
		return c.Finish()
	}
	pc := NewParallelCollector()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for tid, events := range tr.Threads {
		wg.Add(1)
		sem <- struct{}{}
		go func(tid int, events []trace.Event) {
			defer wg.Done()
			pc.ObserveBatchQuery(tid, events, q)
			<-sem
		}(tid, events)
	}
	wg.Wait()
	return pc.Finish()
}
